# mlvfpga — build, test and reproduction targets.

GO ?= go

.PHONY: all build test race cover bench fuzz repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce the paper's evaluation with side-by-side published values.
repro:
	$(GO) run ./cmd/mlv-bench

# Short fuzz passes over the RTL frontend.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/rtl
	$(GO) test -fuzz=FuzzLexer -fuzztime=15s ./internal/rtl

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lstm-inference
	$(GO) run ./examples/multi-tenant-cloud
	$(GO) run ./examples/scaleout-overlap

clean:
	$(GO) clean ./...
