# mlvfpga — build, test and reproduction targets.

GO ?= go

.PHONY: all build test check race cover bench bench-infer bench-infer-smoke bench-cluster bench-compile bench-tenant bench-preempt lint soak fuzz simtest scenario scenario-smoke repro examples clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# Full gate: build, vet, plain tests, then everything again under the race
# detector — the parallel offline flow must stay race-clean.
check: build test race

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Run the online data-plane benchmarks and refresh BENCH_infer.json.
bench-infer:
	$(GO) test -run '^$$' -bench 'BenchmarkInferSteadyState|BenchmarkInferBatched|BenchmarkServeConcurrent' -benchmem .
	$(GO) run ./cmd/mlv-bench-infer

# CI smoke: a tiny open-loop Poisson A/B of the flush vs continuous
# serving planes. The binary self-validates its JSON report and exits
# non-zero on a malformed file, so this doubles as the report-format gate.
bench-infer-smoke:
	$(GO) run ./cmd/mlv-bench-infer -smoke -o /tmp/bench_infer_smoke.json

# Run the cluster soak + registry benchmarks and refresh BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/mlv-bench-cluster

# Run the compilation-cache benchmarks (cold vs warm deploy, repeat
# catalog sweep) and refresh BENCH_compile.json. SWEEP scales the sweep
# length (CI smoke uses a short one).
SWEEP ?= 10000
bench-compile:
	$(GO) test -run '^$$' -bench 'BenchmarkDeployColdVsWarm' -benchmem .
	$(GO) run ./cmd/mlv-bench-compile -sweep $(SWEEP)

# Multi-tenant fairness bench: a latency-class tenant's p99 under a
# batch-class tenant's standing backlog must stay within 2x its solo p99
# (the DRR fair-queue contract). Refreshes BENCH_tenant.json and fails on
# a bound violation.
bench-tenant:
	$(GO) run ./cmd/mlv-bench-tenant

# Preemptive-scheduling bench: a latency tenant's probe p99 against a
# machine saturated by full-length batch sequences must improve when the
# continuous plane may checkpoint batch streams instead of draining them.
# Refreshes BENCH_preempt.json and fails if preemption doesn't beat
# drain-only.
bench-preempt:
	$(GO) run ./cmd/mlv-bench-preempt

# Static analysis beyond go vet. Uses staticcheck when installed (CI
# installs the pinned STATICCHECK_VERSION below; locally:
# go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))
# and degrades to a notice when absent, so `make lint` never needs network.
STATICCHECK_VERSION ?= 2024.1.1
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "lint: staticcheck not installed, ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Failure-injection soak: kill one device mid-run, drain another, assert
# no request or lease is lost. -short keeps it CI-sized.
soak:
	$(GO) test -race -short -run 'TestSoak|TestControlLoop' -v ./internal/cluster

# Reproduce the paper's evaluation with side-by-side published values.
repro:
	$(GO) run ./cmd/mlv-bench

# Short fuzz passes: RTL frontend, partition shard ladder, number formats.
# Raise FUZZTIME for a longer hunt; committed seed corpora under each
# package's testdata/fuzz/ replay as plain regressions in `make test`.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/rtl
	$(GO) test -fuzz=FuzzLexer -fuzztime=$(FUZZTIME) ./internal/rtl
	$(GO) test -fuzz=FuzzBisect -fuzztime=$(FUZZTIME) ./internal/partition
	$(GO) test -fuzz=FuzzQuantizeRoundTrip -fuzztime=$(FUZZTIME) ./internal/bfp
	$(GO) test -fuzz=FuzzParseMLW -fuzztime=$(FUZZTIME) ./internal/wdsl

# Deterministic whole-cluster simulation sweep. Each seed drives one
# scripted run of the full stack (registry + control plane + data plane)
# on the discrete-event clock, checking invariants after every event; a
# failure prints the seed and a minimized schedule. Scale with
# SIMSEEDS/SIMSTEPS, replay one failure with SIMSEED.
SIMSEEDS ?= 20
SIMSTEPS ?= 500
SIMSEED ?= 0
simtest:
ifneq ($(SIMSEED),0)
	$(GO) test ./internal/simtest -run TestSimSeed -seed=$(SIMSEED) -steps=$(SIMSTEPS) -count=1 -v
else
	$(GO) test ./internal/simtest -run 'TestSimSweep|TestSimDeterminism' -seeds=$(SIMSEEDS) -steps=$(SIMSTEPS) -count=1 -v
endif

# Workload-DSL scenario runs: compile a .mlw spec's models to AS-ISA
# kernels and play its arrival process and fault storms on the
# deterministic simulation stack, every invariant family checked per
# event. SCENARIO picks the spec; the SLO report JSON lands in
# SCENARIO_REPORT_DIR (validated after a write-read round trip).
SCENARIO ?= testdata/scenarios/diurnal-1000.mlw
SCENARIO_REPORT_DIR ?= /tmp/scenario-reports
scenario:
	mkdir -p $(SCENARIO_REPORT_DIR)
	$(GO) run ./cmd/mlv-scenario run -out $(SCENARIO_REPORT_DIR)/$(notdir $(SCENARIO)).json $(SCENARIO)

# CI smoke: the small-fleet diurnal spec with a mid-run kill storm, plus
# the scenario package tests (committed specs, determinism at 10 and 1000
# devices, report round-trip).
scenario-smoke:
	mkdir -p $(SCENARIO_REPORT_DIR)
	$(GO) run ./cmd/mlv-scenario run -out $(SCENARIO_REPORT_DIR)/smoke.json testdata/scenarios/smoke.mlw
	$(GO) test ./internal/scenario ./internal/wdsl -count=1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lstm-inference
	$(GO) run ./examples/multi-tenant-cloud
	$(GO) run ./examples/scaleout-overlap

clean:
	$(GO) clean ./...
