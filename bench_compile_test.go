// Benchmarks for the content-addressed compilation cache: cold-compile vs
// cache-hit deploy latency, and the repeat catalog sweep that must be
// cache-bound. cmd/mlv-bench-compile records the same bodies into
// BENCH_compile.json. Run with:
//
//	go test -run '^$' -bench BenchmarkDeployColdVsWarm -benchmem .
package mlvfpga

import (
	"testing"

	"mlvfpga/internal/compilebench"
)

// BenchmarkDeployColdVsWarm contrasts a Deploy that pays the full
// decompose → partition → HS-compile pipeline (Cold: fresh artifact store
// every iteration) against a Deploy that hits the cache and goes straight
// to placement (Warm). The Warm body asserts through the store's counters
// that the hit path performs zero compile work.
func BenchmarkDeployColdVsWarm(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		compilebench.DeployCold(b)
	})
	b.Run("Warm", func(b *testing.B) {
		b.ReportAllocs()
		compilebench.DeployWarm(b)
	})
}

// BenchmarkRepeatCatalogSweep runs a 10k-instance catalog sweep twice over
// one artifact store and reports the repeat pass's speedup; the repeat
// pass must perform zero compiles (cache-bound).
func BenchmarkRepeatCatalogSweep(b *testing.B) {
	var last *compilebench.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := compilebench.RepeatCatalogSweep(10000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if r.SecondComputes != 0 {
			b.Fatalf("repeat sweep compiled %d times, want 0", r.SecondComputes)
		}
		last = r
	}
	b.Log(last.String())
	b.ReportMetric(last.Speedup, "repeat-speedup")
}
