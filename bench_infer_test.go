package mlvfpga

import (
	"testing"

	"mlvfpga/internal/inferbench"
)

// Online data-plane benchmarks (ISSUE 3). Refresh BENCH_infer.json with
// `make bench-infer`.

// BenchmarkInferSteadyState is a warm single-stream inference: weight
// tiles cached, zero allocation per run.
func BenchmarkInferSteadyState(b *testing.B) { inferbench.InferSteadyState(b) }

// BenchmarkInferBatched is one warm RunBatch over 8 input streams; divide
// ns/op by 8 for the per-inference cost.
func BenchmarkInferBatched(b *testing.B) { inferbench.InferBatched(b) }

// BenchmarkServeConcurrent drives the HTTP /infer endpoint with parallel
// clients sharing a micro-batching lease engine.
func BenchmarkServeConcurrent(b *testing.B) { inferbench.ServeConcurrent(b) }
