// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), plus microbenchmarks of the framework's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark*_Table*/Fig* benches execute the full experiment once per
// iteration and report the headline metric through b.ReportMetric, so the
// paper's numbers appear directly in the bench output.
package mlvfpga

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mlvfpga/internal/bfp"
	"mlvfpga/internal/core"
	"mlvfpga/internal/experiments"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/scaleout"
)

// BenchmarkTable2_BaselineImplementation regenerates the baseline
// accelerator implementation results (Table 2).
func BenchmarkTable2_BaselineImplementation(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PeakTFLOPS, "BW-V37-TFLOPS")
	b.ReportMetric(rows[1].PeakTFLOPS, "BW-K115-TFLOPS")
}

// BenchmarkTable3_VirtualBlock regenerates the per-virtual-block results
// (Table 3).
func BenchmarkTable3_VirtualBlock(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PeakTFLOPS, "vblock-V37-TFLOPS")
}

// BenchmarkTable4_InferenceLatency regenerates the single-FPGA latency
// comparison (Table 4) and reports the average virtualization overhead.
func BenchmarkTable4_InferenceLatency(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	sum, n := 0.0, 0
	for _, r := range rows {
		if r.Fits {
			sum += r.Overhead
			n++
		}
	}
	b.ReportMetric(100*sum/float64(n), "avg-overhead-%")
}

// BenchmarkFig11_ScaleOutLatency regenerates the inter-FPGA latency sweep
// (Fig. 11) and reports the small GRU's overlap budget.
func BenchmarkFig11_ScaleOutLatency(b *testing.B) {
	var series []experiments.Fig11Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Label == "GRU h=1024" {
			b.ReportMetric(s.CrossoverBudget.Seconds()*1e6, "gru1024-budget-us")
		}
	}
}

// BenchmarkFig12_SystemThroughput regenerates the aggregated-throughput
// comparison (Fig. 12) and reports the headline ratio (paper: 2.54x).
func BenchmarkFig12_SystemThroughput(b *testing.B) {
	opt := experiments.DefaultFig12Options()
	var sum *experiments.Fig12Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = experiments.Fig12(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.AvgVsBaseline, "x-vs-baseline")
	b.ReportMetric(sum.AvgVsRestricted, "x-vs-restricted")
}

// BenchmarkCompileOverhead regenerates the §4.3 compilation-overhead
// accounting (paper: decompose+partition <1%, amortized pieces 24.6%).
func BenchmarkCompileOverhead(b *testing.B) {
	var r *experiments.CompileOverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.CompileOverhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.OverheadFrac, "piece-overhead-%")
	b.ReportMetric(100*r.DecomposeFrac, "decompose-%")
}

// BenchmarkAblationPartition contrasts pattern-aware vs pattern-oblivious
// virtual-block partitioning (the §4.3 discussion).
func BenchmarkAblationPartition(b *testing.B) {
	var rows []experiments.AblationPartitionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationPartition()
		if err != nil {
			b.Fatal(err)
		}
	}
	worstNaive := 0.0
	for _, r := range rows {
		if r.OverheadNaive > worstNaive {
			worstNaive = r.OverheadNaive
		}
	}
	b.ReportMetric(100*worstNaive, "worst-naive-overhead-%")
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the framework's hot paths.

// BenchmarkOfflineFlow runs RTL generation + decompose + partition for an
// 8-tile instance (the §4.3 "added compilation steps").
func BenchmarkOfflineFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompileInstance(8, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineFlowParallel runs the §4.3 ten-instance catalog sweep
// (tile counts up to 21) with one worker per available CPU and reports the
// speedup over the strictly sequential flow, measured fresh in the same
// process. Run with -cpu 1,2,4 to see the scaling curve; the catalog is
// bit-identical at every worker count.
func BenchmarkOfflineFlowParallel(b *testing.B) {
	tiles := core.DefaultTileCounts()
	t0 := time.Now()
	if _, err := core.InstanceCatalogParallel(tiles, 2, 1, 1); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(t0)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.InstanceCatalogParallel(tiles, 2, 1, workers); err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(seq.Seconds()/perOp, "speedup-vs-seq")
	}
}

// BenchmarkFig12_SystemThroughputParallel is BenchmarkFig12_SystemThroughput
// with the ten workload-set simulations fanned out over the available CPUs
// (rows and averages stay identical); reports the speedup over the
// sequential sweep alongside the headline ratio.
func BenchmarkFig12_SystemThroughputParallel(b *testing.B) {
	opt := experiments.DefaultFig12Options()
	opt.Parallelism = 1
	t0 := time.Now()
	if _, err := experiments.Fig12(opt); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(t0)
	opt.Parallelism = runtime.GOMAXPROCS(0)
	var sum *experiments.Fig12Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = experiments.Fig12(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.AvgVsBaseline, "x-vs-baseline")
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(seq.Seconds()/perOp, "speedup-vs-seq")
	}
}

// BenchmarkRTLParse parses the generated 21-tile accelerator.
func BenchmarkRTLParse(b *testing.B) {
	src, err := GenerateAcceleratorRTL(21, true)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtl.ParseDesign(src, AcceleratorTopModule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalLSTMStep executes LSTM inference timesteps on the
// functional AS ISA simulator (h=64).
func BenchmarkFunctionalLSTMStep(b *testing.B) {
	w := kernels.RandomWeights(kernels.LSTM, 64, 1)
	k, err := kernels.Build(w, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := k.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 64)
	r := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = r.NormFloat64()
	}
	if err := k.SetInput(m, 0, x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(k.Prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleOutReorder runs the §2.3 instruction reordering tool over
// a 50-step scaled LSTM program.
func BenchmarkScaleOutReorder(b *testing.B) {
	w := kernels.RandomWeights(kernels.LSTM, 64, 1)
	sp, err := scaleout.BuildScaledPair(w, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scaleout.ReorderForOverlap(sp.Progs[0],
			uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr))
	}
}

// BenchmarkBFPMatVec measures one 256x256 block-floating-point
// matrix-vector product (a tile engine's inner loop).
func BenchmarkBFPMatVec(b *testing.B) {
	codec := bfp.MustCodec(5)
	r := rand.New(rand.NewSource(3))
	data := make([]float64, 256*256)
	for i := range data {
		data[i] = r.NormFloat64()
	}
	vec := make([]float64, 256)
	for i := range vec {
		vec[i] = r.NormFloat64()
	}
	m, err := codec.QuantizeMatrix(data, 256, 256, 128)
	if err != nil {
		b.Fatal(err)
	}
	vb, err := codec.QuantizeVector(vec, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bfp.MatVec(m, vb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFP16RoundTrip measures float16 encode/decode.
func BenchmarkFP16RoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := fp16.FromFloat32(float32(i) * 0.001)
		_ = n.Float32()
	}
}

// BenchmarkLatencyModel measures the Table 4 analytic model.
func BenchmarkLatencyModel(b *testing.B) {
	p := perf.DefaultParams()
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1024, TimeSteps: 25}
	inst, err := perf.ChooseInstance(spec, "XCVU37P")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base := perf.Baseline(spec, inst, p)
		virt, err := perf.Virtualized(spec, inst, 2, p)
		if err != nil {
			b.Fatal(err)
		}
		_ = perf.OverheadFrac(base, virt)
	}
}
