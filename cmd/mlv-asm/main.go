// mlv-asm is the AS ISA toolchain front end: it assembles, disassembles
// and statically validates BrainWave-like instruction chains.
//
// Usage:
//
//	mlv-asm -c prog.asm -o prog.bin      # assemble text -> machine code
//	mlv-asm -d prog.bin                  # disassemble machine code
//	mlv-asm -check prog.asm              # static validation (registers,
//	                                     # read-before-write, DRAM bounds,
//	                                     # buffer fit, termination)
package main

import (
	"flag"
	"fmt"
	"os"

	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
)

func main() {
	asmPath := flag.String("c", "", "assemble this source file")
	binPath := flag.String("d", "", "disassemble this machine-code file")
	checkPath := flag.String("check", "", "validate this source file")
	out := flag.String("o", "", "output file (default stdout)")
	vregs := flag.Int("vregs", 16, "vector register file size for -check")
	mregs := flag.Int("mregs", 8, "matrix register file size for -check")
	dram := flag.Int("dram", 64<<20, "DRAM words for -check")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mlv-asm:", err)
		os.Exit(1)
	}
	emit := func(data []byte) {
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail(err)
		}
	}

	switch {
	case *asmPath != "":
		src, err := os.ReadFile(*asmPath)
		if err != nil {
			fail(err)
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		emit(isa.EncodeProgram(prog))
		fmt.Fprintf(os.Stderr, "assembled %d instructions (%d bytes)\n", len(prog), prog.Bytes())

	case *binPath != "":
		data, err := os.ReadFile(*binPath)
		if err != nil {
			fail(err)
		}
		prog, err := isa.DecodeProgram(data)
		if err != nil {
			fail(err)
		}
		emit([]byte(prog.Disassemble()))

	case *checkPath != "":
		src, err := os.ReadFile(*checkPath)
		if err != nil {
			fail(err)
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		issues := isa.Validate(prog, isa.MachineSpec{
			VRegs:         *vregs,
			MRegs:         *mregs,
			DRAMWords:     *dram,
			InstrBufBytes: kernels.InstrBufBytes,
		})
		if len(issues) == 0 {
			fmt.Printf("%s: %d instructions, no issues\n", *checkPath, len(prog))
			return
		}
		for _, is := range issues {
			fmt.Printf("%s: %s\n", *checkPath, is)
		}
		os.Exit(1)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
