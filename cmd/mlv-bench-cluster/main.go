// mlv-bench-cluster runs the failure-injection soak and writes
// BENCH_cluster.json: control-plane pass latencies (the cost of one
// sweep + evacuate + rebalance tick over a serving fleet), soak verdicts
// (requests lost, leases lost, migrations) and per-operation timings for
// the registry hot paths.
//
// Usage:
//
//	mlv-bench-cluster [-o BENCH_cluster.json] [-short]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlvfpga/internal/benchhost"
	"mlvfpga/internal/cluster"
)

type report struct {
	Recorded string         `json:"recorded"`
	Host     benchhost.Info `json:"host"`
	Command  string         `json:"command"`
	Soak     struct {
		Scenario   string `json:"scenario"`
		Accepted   int    `json:"accepted"`
		Completed  int    `json:"completed"`
		Failed     int    `json:"failed"`
		LostLeases int    `json:"lost_leases"`
		Stranded   int    `json:"stranded"`
		Migrations int    `json:"migrations"`
		MaxDepth   int    `json:"max_depth"`
		Ticks      int    `json:"ticks"`
	} `json:"soak"`
	TickLatency struct {
		P50NS float64 `json:"p50_ns"`
		P90NS float64 `json:"p90_ns"`
		P99NS float64 `json:"p99_ns"`
		MaxNS float64 `json:"max_ns"`
		Note  string  `json:"note"`
	} `json:"tick_latency"`
	Registry struct {
		HeartbeatNS float64 `json:"heartbeat_ns_per_op"`
		SweepNS     float64 `json:"sweep_ns_per_op"`
		SnapshotNS  float64 `json:"snapshot_ns_per_op"`
		Devices     int     `json:"devices"`
	} `json:"registry"`
}

func main() {
	out := flag.String("o", "BENCH_cluster.json", "output file")
	short := flag.Bool("short", false, "run the CI-sized soak")
	flag.Parse()

	opts := cluster.DefaultSoakOptions()
	if *short {
		opts = cluster.ShortSoakOptions()
	}
	fmt.Printf("mlv-bench-cluster: soak (%d leases x %d requests, kill@%d drain@%d)...\n",
		opts.Leases, opts.Requests, opts.KillAtStep, opts.DrainAtStep)
	res, err := cluster.RunSoak(opts)
	if err != nil {
		log.Fatal(err)
	}

	var rep report
	rep.Recorded = time.Now().UTC().Format("2006-01-02")
	rep.Host = benchhost.Collect("tick latencies are wall-clock over a live serving fleet; compare shapes, not absolute ns")
	rep.Command = "go run ./cmd/mlv-bench-cluster"
	rep.Soak.Scenario = fmt.Sprintf("4 devices, kill device %d mid-run, drain device %d, %d clients/lease",
		res.KilledDevice, res.DrainedDevice, opts.Clients)
	rep.Soak.Accepted = res.Accepted
	rep.Soak.Completed = res.Completed
	rep.Soak.Failed = res.Failed
	rep.Soak.LostLeases = res.LostLeases
	rep.Soak.Stranded = res.Stranded
	rep.Soak.Migrations = res.Migrations
	rep.Soak.MaxDepth = res.MaxDepth
	rep.Soak.Ticks = len(res.Reports)
	rep.TickLatency.P50NS = float64(res.TickLatencyPercentile(0.50))
	rep.TickLatency.P90NS = float64(res.TickLatencyPercentile(0.90))
	rep.TickLatency.P99NS = float64(res.TickLatencyPercentile(0.99))
	rep.TickLatency.MaxNS = float64(res.TickLatencyPercentile(1.0))
	rep.TickLatency.Note = "one control pass: registry sweep + evacuation + load-driven rebalance (migrations included)"

	benchRegistry(&rep)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mlv-bench-cluster: %d/%d requests, %d migrations, tick p50 %.0fns p99 %.0fns -> %s\n",
		res.Completed, res.Accepted, res.Migrations, rep.TickLatency.P50NS, rep.TickLatency.P99NS, *out)
	if res.Failed != 0 || res.LostLeases != 0 || res.Stranded != 0 {
		log.Fatalf("soak failed: %d failed requests, %d lost leases, %d stranded placements",
			res.Failed, res.LostLeases, res.Stranded)
	}
}

// benchRegistry times the registry hot paths over a 64-device fleet.
func benchRegistry(rep *report) {
	const devices = 64
	clk := cluster.NewFakeClock(time.Unix(0, 0))
	reg := cluster.NewRegistry(clk, cluster.DefaultRegistryConfig())
	for i := 0; i < devices; i++ {
		if err := reg.Register(i, "XCVU37P", 12); err != nil {
			log.Fatal(err)
		}
	}
	rep.Registry.Devices = devices

	const iters = 100000
	start := time.Now()
	for i := 0; i < iters; i++ {
		_ = reg.Heartbeat(i % devices)
	}
	rep.Registry.HeartbeatNS = float64(time.Since(start)) / iters

	start = time.Now()
	for i := 0; i < iters/10; i++ {
		_ = reg.Sweep()
	}
	rep.Registry.SweepNS = float64(time.Since(start)) / (iters / 10)

	start = time.Now()
	for i := 0; i < iters/10; i++ {
		_ = reg.Snapshot()
	}
	rep.Registry.SnapshotNS = float64(time.Since(start)) / (iters / 10)
}
