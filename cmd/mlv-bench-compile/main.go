// mlv-bench-compile measures the content-addressed compilation cache and
// writes BENCH_compile.json: cold-compile vs cache-hit deploy latency
// (BenchmarkDeployColdVsWarm's bodies) and the 10k-instance repeat
// catalog sweep, which must be cache-bound — zero compiles on the second
// pass.
//
// Usage:
//
//	mlv-bench-compile [-o BENCH_compile.json] [-sweep 10000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlvfpga/internal/benchhost"
	"mlvfpga/internal/compilebench"
	"mlvfpga/internal/inferbench"
)

type report struct {
	Recorded   string                    `json:"recorded"`
	Host       benchhost.Info            `json:"host"`
	Command    string                    `json:"command"`
	Layer      string                    `json:"layer"`
	Benchmarks []inferbench.Result       `json:"benchmarks"`
	Sweep      *compilebench.SweepResult `json:"repeat_catalog_sweep"`
	Summary    struct {
		WarmDeploySpeedup  float64 `json:"warm_deploy_speedup_vs_cold"`
		RepeatSweepSpeedup float64 `json:"repeat_sweep_speedup"`
	} `json:"summary"`
}

func main() {
	out := flag.String("o", "BENCH_compile.json", "output file")
	entries := flag.Int("sweep", 10000, "repeat catalog sweep length (instances)")
	flag.Parse()

	fmt.Println("mlv-bench-compile: measuring cold-cache deploy (full offline flow per op)...")
	cold := inferbench.Measure("DeployCold", 1, compilebench.DeployCold,
		"fresh artifact store every op: decompose + partition + HS-compile before placement")
	fmt.Printf("  %.0f ns/op, %d allocs/op\n", cold.NsPerOp, cold.AllocsPerOp)

	fmt.Println("mlv-bench-compile: measuring warm-cache deploy (placement only)...")
	warm := inferbench.Measure("DeployWarm", 1, compilebench.DeployWarm,
		"cache hit: zero compile work (asserted via store counters), straight to placement")
	fmt.Printf("  %.0f ns/op, %d allocs/op\n", warm.NsPerOp, warm.AllocsPerOp)

	fmt.Printf("mlv-bench-compile: running %d-instance repeat catalog sweep...\n", *entries)
	sweep, err := compilebench.RepeatCatalogSweep(*entries, 0)
	if err != nil {
		log.Fatal(err)
	}
	if sweep.SecondComputes != 0 {
		log.Fatalf("repeat sweep compiled %d times, want 0 (not cache-bound)", sweep.SecondComputes)
	}
	fmt.Printf("  %s\n", sweep)

	var r report
	r.Recorded = time.Now().UTC().Format("2006-01-02")
	r.Host = benchhost.Collect("The recording container exposes a single hardware CPU, so parallel compile speedup is not observable here; the cold/warm ratio is host-independent (the warm path does no compile work at all). Compare ratios, not absolute ns.")
	r.Command = "go run ./cmd/mlv-bench-compile"
	r.Layer = "deploys: LSTM h=1536 t=2; sweep: DefaultTileCounts catalog cycled to length " + fmt.Sprint(*entries)
	r.Benchmarks = []inferbench.Result{cold, warm}
	r.Sweep = sweep
	if warm.NsPerOp > 0 {
		r.Summary.WarmDeploySpeedup = round2(cold.NsPerOp / warm.NsPerOp)
	}
	r.Summary.RepeatSweepSpeedup = round2(sweep.Speedup)

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mlv-bench-compile: warm deploy %.0fx vs cold, repeat sweep %.1fx; wrote %s\n",
		r.Summary.WarmDeploySpeedup, r.Summary.RepeatSweepSpeedup, *out)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
