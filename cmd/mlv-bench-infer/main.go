// mlv-bench-infer measures the online data plane's hot paths and writes
// BENCH_infer.json: steady-state single-stream inference, batched
// (RunBatch) inference, and the concurrent HTTP serving path. The "pre"
// section holds the numbers recorded on the allocation-per-instruction,
// quantize-every-m_rd engine this PR replaced, measured on the same layer
// shape (LSTM h=256 t=8, 2 tiles) and host class.
//
// Usage:
//
//	mlv-bench-infer [-o BENCH_infer.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlvfpga/internal/benchhost"
	"mlvfpga/internal/inferbench"
)

// Pre-optimization baseline, recorded at 65fca13 with the temporary
// BenchmarkPreInferSteadyState/BenchmarkPreInferBatch8 harness
// (go test -bench BenchmarkPreInfer -benchtime 20x -benchmem, single-CPU
// Intel Xeon @ 2.10GHz container). "Batch of 8" on the old engine is 8
// sequential Runs — it had no batched mode.
var pre = []inferbench.Result{
	{
		Name:        "InferSteadyState",
		NsPerOp:     24243298,
		AllocsPerOp: 6718,
		BytesPerOp:  7965250,
		Note:        "old engine: requantized all 8 tiles per run, allocated per instruction",
	},
	{
		Name:           "InferBatch8",
		NsPerOp:        96123868,
		AllocsPerOp:    53744,
		BytesPerOp:     63722005,
		NsPerInference: 96123868.0 / 8,
		Note:           "old engine: batch of 8 = 8 sequential Runs (no RunBatch)",
	},
}

type report struct {
	Recorded string              `json:"recorded"`
	Host     benchhost.Info      `json:"host"`
	Command  string              `json:"command"`
	Layer    string              `json:"layer"`
	Pre      []inferbench.Result `json:"pre"`
	Post     []inferbench.Result `json:"post"`
	Summary  struct {
		SteadyStateSpeedup float64 `json:"steady_state_speedup"`
		BatchedSpeedup     float64 `json:"batched_speedup_vs_pre_sequential"`
		BatchVsSingle      float64 `json:"batched_vs_post_single_stream"`
	} `json:"summary"`
}

func main() {
	out := flag.String("o", "BENCH_infer.json", "output file")
	flag.Parse()

	fmt.Println("mlv-bench-infer: measuring steady-state single-stream inference...")
	steady := inferbench.Measure("InferSteadyState", 1, inferbench.InferSteadyState,
		"warm machine, tiles cached, zero allocs")
	fmt.Printf("  %.0f ns/op, %d allocs/op\n", steady.NsPerOp, steady.AllocsPerOp)

	fmt.Printf("mlv-bench-infer: measuring RunBatch over %d streams...\n", inferbench.BatchStreams)
	batched := inferbench.Measure("InferBatch8", inferbench.BatchStreams, inferbench.InferBatched,
		"one RunBatch op carries 8 inferences")
	fmt.Printf("  %.0f ns/op (%.0f ns/inference), %d allocs/op\n",
		batched.NsPerOp, batched.NsPerInference, batched.AllocsPerOp)

	fmt.Println("mlv-bench-infer: measuring concurrent HTTP /infer...")
	serve := inferbench.Measure("ServeConcurrent", 1, inferbench.ServeConcurrent,
		"GRU h=512 t=1 lease, parallel clients, micro-batching engine")
	fmt.Printf("  %.0f ns/op end-to-end per request\n", serve.NsPerOp)

	var r report
	r.Recorded = time.Now().UTC().Format("2006-01-02")
	r.Host = benchhost.Collect("pre numbers were recorded on the same single-CPU container class; compare ratios, not absolute ns")
	r.Command = "go run ./cmd/mlv-bench-infer"
	r.Layer = "LSTM h=256 t=8, 2 tiles (ServeConcurrent: GRU h=512 t=1)"
	r.Pre = pre
	r.Post = []inferbench.Result{steady, batched, serve}
	r.Summary.SteadyStateSpeedup = round2(pre[0].NsPerOp / steady.NsPerOp)
	r.Summary.BatchedSpeedup = round2(pre[1].NsPerOp / batched.NsPerOp)
	r.Summary.BatchVsSingle = round2(steady.NsPerOp * float64(inferbench.BatchStreams) / batched.NsPerOp)

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mlv-bench-infer: steady-state %.1fx, batched %.1fx vs sequential pre; wrote %s\n",
		r.Summary.SteadyStateSpeedup, r.Summary.BatchedSpeedup, *out)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
