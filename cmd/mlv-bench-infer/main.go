// mlv-bench-infer measures the online data plane's hot paths and writes
// BENCH_infer.json: steady-state single-stream inference, batched
// (RunBatch) inference, the concurrent HTTP serving path, and an
// open-loop Poisson A/B of the flush vs continuous batching planes. The
// "pre" section holds the numbers recorded on the
// allocation-per-instruction, quantize-every-m_rd engine an earlier PR
// replaced, measured on the same layer shape (LSTM h=256 t=8, 2 tiles)
// and host class.
//
// Usage:
//
//	mlv-bench-infer [-o BENCH_infer.json]
//	mlv-bench-infer -smoke -o /tmp/bench.json   # CI: small open-loop only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlvfpga/internal/benchhost"
	"mlvfpga/internal/inferbench"
)

// Pre-optimization baseline, recorded at 65fca13 with the temporary
// BenchmarkPreInferSteadyState/BenchmarkPreInferBatch8 harness
// (go test -bench BenchmarkPreInfer -benchtime 20x -benchmem, single-CPU
// Intel Xeon @ 2.10GHz container). "Batch of 8" on the old engine is 8
// sequential Runs — it had no batched mode.
var pre = []inferbench.Result{
	{
		Name:        "InferSteadyState",
		NsPerOp:     24243298,
		AllocsPerOp: 6718,
		BytesPerOp:  7965250,
		Note:        "old engine: requantized all 8 tiles per run, allocated per instruction",
	},
	{
		Name:           "InferBatch8",
		NsPerOp:        96123868,
		AllocsPerOp:    53744,
		BytesPerOp:     63722005,
		NsPerInference: 96123868.0 / 8,
		Note:           "old engine: batch of 8 = 8 sequential Runs (no RunBatch)",
	},
}

// openLoopSection is the flush-vs-continuous A/B under one offered load.
type openLoopSection struct {
	Layer      string                     `json:"layer"`
	LengthMix  string                     `json:"length_mix"`
	Flush      *inferbench.OpenLoopResult `json:"flush"`
	Continuous *inferbench.OpenLoopResult `json:"continuous"`
	// ThroughputRatio is continuous/flush achieved RPS; P99Ratio is
	// continuous/flush p99 latency (< 1 means continuous is better).
	ThroughputRatio float64 `json:"throughput_ratio"`
	P99Ratio        float64 `json:"p99_ratio"`
}

type report struct {
	Recorded string              `json:"recorded"`
	Host     benchhost.Info      `json:"host"`
	Command  string              `json:"command"`
	Layer    string              `json:"layer"`
	Pre      []inferbench.Result `json:"pre"`
	Post     []inferbench.Result `json:"post"`
	Summary  struct {
		SteadyStateSpeedup float64 `json:"steady_state_speedup"`
		BatchedSpeedup     float64 `json:"batched_speedup_vs_pre_sequential"`
		BatchVsSingle      float64 `json:"batched_vs_post_single_stream"`
	} `json:"summary"`
	OpenLoop *openLoopSection `json:"open_loop,omitempty"`
}

func runOpenLoop(cfg inferbench.OpenLoopConfig) *openLoopSection {
	sec := &openLoopSection{
		Layer:     fmt.Sprintf("LSTM h=%d t=%d, %d tiles, %d machines x %d slots", cfg.Hidden, cfg.TimeSteps, cfg.Tiles, cfg.Machines, cfg.MaxBatch),
		LengthMix: "4 of 5 requests 1-2 timesteps, 1 of 5 full window",
	}
	for _, flush := range []bool{true, false} {
		cfg.Flush = flush
		plane := "continuous"
		if flush {
			plane = "flush"
		}
		fmt.Printf("mlv-bench-infer: open-loop %s plane (%d connections, %d requests @ %.0f rps)...\n",
			plane, cfg.Connections, cfg.Requests, cfg.Rate)
		res, err := inferbench.OpenLoop(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  served %d shed %d: %.0f rps, p50 %.2fms p99 %.2fms, mean occupancy %.2f\n",
			res.Served, res.Shed, res.AchievedRPS, res.P50Ms, res.P99Ms, res.MeanOccupancy)
		if flush {
			sec.Flush = res
		} else {
			sec.Continuous = res
		}
	}
	sec.ThroughputRatio = round2(sec.Continuous.AchievedRPS / sec.Flush.AchievedRPS)
	if sec.Flush.P99Ms > 0 {
		sec.P99Ratio = round2(sec.Continuous.P99Ms / sec.Flush.P99Ms)
	}
	return sec
}

func writeReport(r *report, out string) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	// Self-validate: the file must round-trip as JSON (the CI smoke job
	// relies on a non-zero exit to catch a malformed report).
	back, err := os.ReadFile(out)
	if err != nil {
		log.Fatal(err)
	}
	var check report
	if err := json.Unmarshal(back, &check); err != nil {
		log.Fatalf("mlv-bench-infer: wrote invalid JSON to %s: %v", out, err)
	}
}

func main() {
	out := flag.String("o", "BENCH_infer.json", "output file")
	smoke := flag.Bool("smoke", false, "CI mode: run only a small open-loop A/B and validate the JSON output")
	conns := flag.Int("open-connections", 10000, "open-loop client connections")
	reqs := flag.Int("open-requests", 25000, "open-loop total requests")
	rate := flag.Float64("open-rate", 3400, "open-loop offered load, requests/second")
	flag.Parse()

	cfg := inferbench.SmokeOpenLoopConfig(false)
	if !*smoke {
		cfg.Connections = *conns
		cfg.Requests = *reqs
		cfg.Rate = *rate
		cfg.Machines = 4
	} else {
		// Smoke keeps its tiny defaults, but explicit -open-* flags still
		// apply so the scale is tunable without the full micro-bench pass.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "open-connections":
				cfg.Connections = *conns
			case "open-requests":
				cfg.Requests = *reqs
			case "open-rate":
				cfg.Rate = *rate
			}
		})
	}

	var r report
	r.Recorded = time.Now().UTC().Format("2006-01-02")
	r.Command = "go run ./cmd/mlv-bench-infer"
	r.Layer = "LSTM h=256 t=8, 2 tiles (ServeConcurrent: GRU h=512 t=1)"
	r.Pre = pre

	if *smoke {
		r.Command = "go run ./cmd/mlv-bench-infer -smoke"
		r.Host = benchhost.Collect("smoke run: tiny open-loop only, numbers are not comparable")
		r.OpenLoop = runOpenLoop(cfg)
		writeReport(&r, *out)
		fmt.Printf("mlv-bench-infer: smoke ok, throughput ratio %.2fx, wrote %s\n",
			r.OpenLoop.ThroughputRatio, *out)
		return
	}

	fmt.Println("mlv-bench-infer: measuring steady-state single-stream inference...")
	steady := inferbench.Measure("InferSteadyState", 1, inferbench.InferSteadyState,
		"warm machine, tiles cached, zero allocs")
	fmt.Printf("  %.0f ns/op, %d allocs/op\n", steady.NsPerOp, steady.AllocsPerOp)

	fmt.Printf("mlv-bench-infer: measuring RunBatch over %d streams...\n", inferbench.BatchStreams)
	batched := inferbench.Measure("InferBatch8", inferbench.BatchStreams, inferbench.InferBatched,
		"one RunBatch op carries 8 inferences")
	fmt.Printf("  %.0f ns/op (%.0f ns/inference), %d allocs/op\n",
		batched.NsPerOp, batched.NsPerInference, batched.AllocsPerOp)

	fmt.Println("mlv-bench-infer: measuring concurrent HTTP /infer...")
	serve := inferbench.Measure("ServeConcurrent", 1, inferbench.ServeConcurrent,
		"GRU h=512 t=1 lease, parallel clients, micro-batching engine")
	fmt.Printf("  %.0f ns/op end-to-end per request\n", serve.NsPerOp)

	r.Host = benchhost.Collect("pre numbers were recorded on the same single-CPU container class; compare ratios, not absolute ns. When gomaxprocs exceeds hardware_cpus the sharded scheduler runs timesliced, so the open-loop A/B measures scheduling behavior, not parallel silicon speedup")
	r.Post = []inferbench.Result{steady, batched, serve}
	r.Summary.SteadyStateSpeedup = round2(pre[0].NsPerOp / steady.NsPerOp)
	r.Summary.BatchedSpeedup = round2(pre[1].NsPerOp / batched.NsPerOp)
	r.Summary.BatchVsSingle = round2(steady.NsPerOp * float64(inferbench.BatchStreams) / batched.NsPerOp)
	r.OpenLoop = runOpenLoop(cfg)

	writeReport(&r, *out)
	fmt.Printf("mlv-bench-infer: steady-state %.1fx, batched %.1fx vs sequential pre; open-loop %.2fx throughput; wrote %s\n",
		r.Summary.SteadyStateSpeedup, r.Summary.BatchedSpeedup, r.OpenLoop.ThroughputRatio, *out)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
