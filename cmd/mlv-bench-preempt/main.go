// mlv-bench-preempt measures what preemptive scheduling buys the latency
// class and writes BENCH_preempt.json: a latency tenant's probe-latency
// distribution against a machine whose slots are all held by a batch
// tenant's full-length sequences, drain-only vs preemptive. With Preempt
// off a probe waits for a batch stream to retire; with it on, a batch
// stream is checkpointed at the next round boundary, the probe is served,
// and the evicted stream is restored bit-identical afterwards. The run
// fails unless the preemptive p99 improves on drain-only by at least
// -min-improvement (default 1.1x).
//
// Usage:
//
//	mlv-bench-preempt [-o BENCH_preempt.json] [-probes 200] [-min-improvement 1.1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlvfpga/internal/benchhost"
	"mlvfpga/internal/preemptbench"
)

type report struct {
	Recorded string         `json:"recorded"`
	Host     benchhost.Info `json:"host"`
	Command  string         `json:"command"`
	Layer    string         `json:"layer"`
	Config   struct {
		Probes         int     `json:"probes"`
		ProbeSteps     int     `json:"probe_steps"`
		BatchSteps     int     `json:"batch_steps"`
		FloodDepth     int     `json:"flood_depth"`
		MaxBatch       int     `json:"max_batch"`
		Machines       int     `json:"machines"`
		MinImprovement float64 `json:"min_improvement"`
	} `json:"config"`
	Result  *preemptbench.Result `json:"result"`
	Summary struct {
		DrainP99Us     float64 `json:"drain_p99_us"`
		PreemptP99Us   float64 `json:"preempt_p99_us"`
		P99Improvement float64 `json:"p99_improvement"`
		Evictions      int64   `json:"evictions"`
		Restores       int64   `json:"restores"`
		ImprovementOK  bool    `json:"improvement_ok"`
	} `json:"summary"`
}

func main() {
	out := flag.String("o", "BENCH_preempt.json", "output file")
	probes := flag.Int("probes", 200, "timed latency-tenant probes per phase")
	min := flag.Float64("min-improvement", 1.1, "minimum required drain/preempt p99 ratio")
	flag.Parse()

	o := preemptbench.DefaultOptions()
	o.Probes = *probes

	fmt.Printf("mlv-bench-preempt: %d probes/phase against a %d-deep flood of %d-step sequences...\n",
		o.Probes, o.Flood, o.Spec.TimeSteps)
	res, err := preemptbench.Run(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  drain-only p50 %.0fus p99 %.0fus (batch: %d served)\n",
		res.DrainOnly.P50Us, res.DrainOnly.P99Us, res.DrainOnly.BatchCompleted)
	fmt.Printf("  preemptive p50 %.0fus p99 %.0fus (batch: %d served, %d evictions, %d restores)\n",
		res.Preemptive.P50Us, res.Preemptive.P99Us, res.Preemptive.BatchCompleted,
		res.Preemptive.Evictions, res.Preemptive.Restores)

	var r report
	r.Recorded = time.Now().UTC().Format("2006-01-02")
	r.Host = benchhost.Collect("closed-loop wall-clock latencies on a shared host; the asserted fact is the drain/preempt p99 ratio, not absolute us")
	r.Command = "go run ./cmd/mlv-bench-preempt"
	r.Layer = o.Spec.String()
	r.Config.Probes = o.Probes
	r.Config.ProbeSteps = o.ProbeSteps
	r.Config.BatchSteps = o.Spec.TimeSteps
	r.Config.FloodDepth = o.Flood
	r.Config.MaxBatch = o.Infer.MaxBatch
	r.Config.Machines = o.Infer.Machines
	r.Config.MinImprovement = *min
	r.Result = res
	r.Summary.DrainP99Us = res.DrainOnly.P99Us
	r.Summary.PreemptP99Us = res.Preemptive.P99Us
	r.Summary.P99Improvement = res.P99Improvement
	r.Summary.Evictions = res.Preemptive.Evictions
	r.Summary.Restores = res.Preemptive.Restores
	r.Summary.ImprovementOK = res.P99Improvement >= *min

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mlv-bench-preempt: drain/preempt p99 ratio %.2f (min %.1f); wrote %s\n",
		res.P99Improvement, *min, *out)
	if !r.Summary.ImprovementOK {
		log.Fatalf("improvement bound violated: preempt p99 %.0fus not %.1fx under drain p99 %.0fus",
			res.Preemptive.P99Us, *min, res.DrainOnly.P99Us)
	}
	if res.Preemptive.Evictions == 0 || res.Preemptive.Evictions != res.Preemptive.Restores {
		log.Fatalf("preemption accounting broken: %d evictions, %d restores",
			res.Preemptive.Evictions, res.Preemptive.Restores)
	}
}
