// mlv-bench-tenant measures multi-tenant fairness in the micro-batching
// data plane and writes BENCH_tenant.json: a latency-class tenant's
// request-latency distribution alone (solo) and under a batch-class
// tenant's standing backlog on the same lease (mixed). The run fails
// unless the latency tenant's mixed p99 stays within -bound (default 2x)
// of its solo p99 — the QoS contract the deficit-round-robin fair queue
// exists to keep.
//
// Usage:
//
//	mlv-bench-tenant [-o BENCH_tenant.json] [-probes 300] [-bound 2.0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlvfpga/internal/benchhost"
	"mlvfpga/internal/tenantbench"
)

type report struct {
	Recorded string         `json:"recorded"`
	Host     benchhost.Info `json:"host"`
	Command  string         `json:"command"`
	Layer    string         `json:"layer"`
	Config   struct {
		Probes        int     `json:"probes"`
		FloodWorkers  int     `json:"flood_workers"`
		BatchInFlight int     `json:"batch_max_in_flight"`
		MaxBatch      int     `json:"max_batch"`
		FlushDelayUs  float64 `json:"flush_delay_us"`
		Machines      int     `json:"machines"`
		LatencyWeight int     `json:"latency_weight"`
		BatchWeight   int     `json:"batch_weight"`
		FairnessBound float64 `json:"fairness_bound"`
	} `json:"config"`
	Result  *tenantbench.Result `json:"result"`
	Summary struct {
		SoloP99Us  float64 `json:"solo_p99_us"`
		MixedP99Us float64 `json:"mixed_p99_us"`
		P99Ratio   float64 `json:"p99_ratio"`
		FairnessOK bool    `json:"fairness_ok"`
	} `json:"summary"`
}

func main() {
	out := flag.String("o", "BENCH_tenant.json", "output file")
	probes := flag.Int("probes", 300, "timed latency-tenant requests per phase")
	bound := flag.Float64("bound", 2.0, "maximum allowed mixed/solo p99 ratio")
	flag.Parse()

	o := tenantbench.DefaultOptions()
	o.Probes = *probes

	fmt.Printf("mlv-bench-tenant: %d probes/phase, %d-worker batch flood (cap %d in flight)...\n",
		o.Probes, o.Flood, o.MaxInFlight)
	res, err := tenantbench.Run(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  solo  p50 %.0fus p99 %.0fus\n", res.Solo.P50Us, res.Solo.P99Us)
	fmt.Printf("  mixed p50 %.0fus p99 %.0fus (batch tenant: %d served, %.0f/s, occupancy %.2f)\n",
		res.Mixed.P50Us, res.Mixed.P99Us, res.Mixed.BatchCompleted, res.Mixed.BatchPerSec, res.BatchOccupancy)

	var r report
	r.Recorded = time.Now().UTC().Format("2006-01-02")
	r.Host = benchhost.Collect("closed-loop wall-clock latencies on a shared host; the asserted fact is the mixed/solo ratio, not absolute us")
	r.Command = "go run ./cmd/mlv-bench-tenant"
	r.Layer = o.Spec.String()
	r.Config.Probes = o.Probes
	r.Config.FloodWorkers = o.Flood
	r.Config.BatchInFlight = o.MaxInFlight
	r.Config.MaxBatch = o.Infer.MaxBatch
	r.Config.FlushDelayUs = float64(o.Infer.FlushDelay) / float64(time.Microsecond)
	r.Config.Machines = o.Infer.Machines
	r.Config.LatencyWeight = 8
	r.Config.BatchWeight = 1
	r.Config.FairnessBound = *bound
	r.Result = res
	r.Summary.SoloP99Us = res.Solo.P99Us
	r.Summary.MixedP99Us = res.Mixed.P99Us
	r.Summary.P99Ratio = res.P99Ratio
	r.Summary.FairnessOK = res.P99Ratio <= *bound

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mlv-bench-tenant: mixed/solo p99 ratio %.2f (bound %.1f); wrote %s\n",
		res.P99Ratio, *bound, *out)
	if !r.Summary.FairnessOK {
		log.Fatalf("fairness bound violated: mixed p99 %.0fus > %.1fx solo p99 %.0fus",
			res.Mixed.P99Us, *bound, res.Solo.P99Us)
	}
}
