// mlv-bench regenerates the paper's tables and figures and prints them
// with the published values side by side.
//
// Usage:
//
//	mlv-bench                 # everything
//	mlv-bench -only table4    # one experiment: table2|table3|table4|fig11|fig12|compile|ibuf|ablation
//	mlv-bench -tasks 500      # Fig. 12 workload size
package main

import (
	"flag"
	"fmt"
	"os"

	"mlvfpga/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table2|table3|table4|fig11|fig12|compile|ibuf|ablation|load|policy|numerics)")
	tasks := flag.Int("tasks", 0, "override the Fig. 12 workload size")
	flag.Parse()

	run := func(name string) bool { return *only == "" || *only == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mlv-bench:", err)
		os.Exit(1)
	}

	if run("table2") {
		rows, err := experiments.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable2(rows))
	}
	if run("table3") {
		rows, err := experiments.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable3(rows))
	}
	if run("table4") {
		rows, err := experiments.Table4()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable4(rows))
	}
	if run("fig11") {
		series, err := experiments.Fig11()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig11(series))
	}
	if run("fig12") {
		opt := experiments.DefaultFig12Options()
		if *tasks > 0 {
			opt.NumTasks = *tasks
		}
		sum, err := experiments.Fig12(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig12(sum))
	}
	if run("compile") {
		r, err := experiments.CompileOverhead()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatCompileOverhead(r))
	}
	if run("ibuf") {
		rows, err := experiments.InstructionBufferFit()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatInstructionBufferFit(rows))
	}
	if run("ablation") {
		rows, err := experiments.AblationPartition()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatAblationPartition(rows))
	}
	if run("load") {
		points, err := experiments.LoadSweep(7, 200, 1)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatLoadSweep(points))
	}
	if run("numerics") {
		rows, err := experiments.AblationNumerics()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatAblationNumerics(rows))
	}
	if run("policy") {
		n := 200
		if *tasks > 0 {
			n = *tasks
		}
		rows, err := experiments.AblationPolicy(n, 1)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatAblationPolicy(rows))
	}
}
