// mlv-cluster is the operator CLI for a running mlv-serve fleet: it talks
// to the /cluster HTTP surface to inspect device health, drain or revive
// devices, inject failures, and force a control-plane pass.
//
// Usage:
//
//	mlv-cluster [-addr host:port] [-tenant id -key secret] devices
//	mlv-cluster [-addr host:port] [-tenant id -key secret] drain <device-id>
//	mlv-cluster [-addr host:port] [-tenant id -key secret] undrain <device-id>
//	mlv-cluster [-addr host:port] [-tenant id -key secret] kill <device-id>
//	mlv-cluster [-addr host:port] [-tenant id -key secret] heartbeat <device-id>
//	mlv-cluster [-addr host:port] [-tenant id -key secret] rebalance
//	mlv-cluster [-addr host:port] [-tenant id -key secret] defrag
//	mlv-cluster [-addr host:port] [-tenant id -key secret] preempt <lease-id> [slots]
//	mlv-cluster [-addr host:port] status
//
// Against a server started with -tenants, the mutating subcommands need
// -tenant/-key credentials of an admin tenant (the /cluster/* surface is
// admin-only); reads work without credentials.
package main

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"mlvfpga/internal/cluster"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/tenant"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mlv-cluster [-addr host:port] [-tenant id -key secret] <devices|drain|undrain|kill|heartbeat|rebalance|defrag|preempt|status> [args]")
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "localhost:8080", "mlv-serve address")
	tenantID := flag.String("tenant", "", "tenant id for signed requests (admin required for mutations)")
	tenantKey := flag.String("key", "", "tenant HMAC key for signed requests")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	if (*tenantID == "") != (*tenantKey == "") {
		fatalf("-tenant and -key must be given together")
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: 10 * time.Second}

	deviceArg := func() int {
		if flag.NArg() != 2 {
			usage()
		}
		id, err := strconv.Atoi(flag.Arg(1))
		if err != nil {
			fatalf("bad device id %q", flag.Arg(1))
		}
		return id
	}
	post := func(path string, body any) []byte {
		b, err := json.Marshal(body)
		if err != nil {
			fatalf("%v", err)
		}
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(b))
		if err != nil {
			fatalf("%v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if *tenantID != "" {
			nonce := make([]byte, 16)
			if _, err := rand.Read(nonce); err != nil {
				fatalf("%v", err)
			}
			tenant.SignRequest(req, *tenantID, []byte(*tenantKey), b, time.Now(), hex.EncodeToString(nonce))
		}
		resp, err := client.Do(req)
		if err != nil {
			fatalf("%v", err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			fatalf("%s: %s %s", path, resp.Status, bytes.TrimSpace(out))
		}
		return out
	}
	get := func(path string, v any) {
		resp, err := client.Get(base + path)
		if err != nil {
			fatalf("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			out, _ := io.ReadAll(resp.Body)
			fatalf("%s: %s %s", path, resp.Status, bytes.TrimSpace(out))
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			fatalf("decoding %s: %v", path, err)
		}
	}

	switch flag.Arg(0) {
	case "devices":
		var devs []cluster.DeviceInfo
		get("/cluster/devices", &devs)
		fmt.Printf("%-4s %-10s %-7s %-9s %s\n", "ID", "TYPE", "BLOCKS", "STATE", "LAST BEAT")
		for _, d := range devs {
			fmt.Printf("%-4d %-10s %-7d %-9s %s ago\n", d.ID, d.Type, d.Blocks, d.State, d.SinceBeat.Round(time.Millisecond))
		}
	case "drain":
		post("/cluster/drain", map[string]any{"id": deviceArg()})
		fmt.Println("ok")
	case "undrain":
		post("/cluster/drain", map[string]any{"id": deviceArg(), "undrain": true})
		fmt.Println("ok")
	case "kill":
		post("/cluster/kill", map[string]any{"id": deviceArg()})
		fmt.Println("ok")
	case "heartbeat":
		post("/cluster/heartbeat", map[string]any{"id": deviceArg()})
		fmt.Println("ok")
	case "rebalance":
		out := post("/cluster/rebalance", struct{}{})
		var rep cluster.TickReport
		if err := json.Unmarshal(out, &rep); err != nil {
			fatalf("decoding report: %v", err)
		}
		fmt.Printf("tick %d: %d transitions, %d actions, %d deferred\n",
			rep.Tick, len(rep.Transitions), len(rep.Events), rep.Deferred)
		for _, tr := range rep.Transitions {
			fmt.Printf("  device %d: %s -> %s\n", tr.Device, tr.From, tr.To)
		}
		for _, ev := range rep.Events {
			line := fmt.Sprintf("  lease %d: %s %d -> %d", ev.Lease, ev.Kind, ev.FromDepth, ev.ToDepth)
			if ev.Err != "" {
				line += " FAILED: " + ev.Err
			}
			fmt.Println(line)
		}
	case "defrag":
		out := post("/cluster/defrag", struct{}{})
		var rep cluster.DefragReport
		if err := json.Unmarshal(out, &rep); err != nil {
			fatalf("decoding report: %v", err)
		}
		fmt.Printf("defrag %d: stranded blocks %d -> %d, empty devices %d -> %d, %d moves, %d skipped\n",
			rep.Run, rep.ScoreBefore, rep.ScoreAfter, rep.EmptyBefore, rep.EmptyAfter, len(rep.Moves), rep.Skipped)
		for _, ev := range rep.Moves {
			line := fmt.Sprintf("  lease %d: %s at depth %d", ev.Lease, ev.Kind, ev.ToDepth)
			if ev.Err != "" {
				line += " FAILED: " + ev.Err
			}
			fmt.Println(line)
		}
	case "preempt":
		if flag.NArg() < 2 || flag.NArg() > 3 {
			usage()
		}
		leaseID, err := strconv.Atoi(flag.Arg(1))
		if err != nil {
			fatalf("bad lease id %q", flag.Arg(1))
		}
		slots := 0 // server default: the lease's full batch width
		if flag.NArg() == 3 {
			if slots, err = strconv.Atoi(flag.Arg(2)); err != nil {
				fatalf("bad slot count %q", flag.Arg(2))
			}
		}
		out := post("/preempt", map[string]any{"id": leaseID, "slots": slots})
		var rep struct {
			Evicted int `json:"evicted"`
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			fatalf("decoding response: %v", err)
		}
		// The server reports synchronous evictions only; machines that were
		// mid-round consume the demand at their next round boundary.
		fmt.Printf("preempted %d resident streams of lease %d synchronously; busy machines evict at their next round (watch mlv_preempt_evictions)\n", rep.Evicted, leaseID)
	case "status":
		var st rms.ClusterStatus
		get("/status", &st)
		var devs []cluster.DeviceInfo
		get("/cluster/devices", &devs)
		states := map[int]cluster.State{}
		for _, d := range devs {
			states[d.ID] = d.State
		}
		fmt.Printf("utilization %.1f%%, %d active leases\n", st.Utilization*100, st.ActiveLeases)
		for _, f := range st.FPGAs {
			fmt.Printf("  fpga %d (%s): %d/%d blocks free, %s\n",
				f.ID, f.Device, f.FreeBlocks, f.TotalBlocks, states[f.ID])
		}
	default:
		usage()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mlv-cluster: "+format+"\n", args...)
	os.Exit(1)
}
