// mlv-compile runs the complete offline flow for a BrainWave-like
// accelerator instance: RTL generation, decomposing (§2.2.1), partitioning
// (§2.2.2) and mapping every piece onto the virtual-block abstraction of
// every feasible device type (Fig. 5), printing the mapping results that
// the runtime's database would store.
//
// Usage:
//
//	mlv-compile -tiles 8 -n 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlvfpga/internal/core"
)

func main() {
	tiles := flag.Int("tiles", 8, "tile engines")
	n := flag.Int("n", 2, "partition iterations")
	naive := flag.Bool("naive", false, "use the pattern-oblivious partitioner (ablation)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = sequential; output is identical)")
	flag.Parse()

	c, err := core.CompileAccelerator(core.Options{
		Tiles:               *tiles,
		PartitionIterations: *n,
		Seed:                1,
		PatternAware:        !*naive,
		Parallelism:         *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlv-compile:", err)
		os.Exit(1)
	}

	fmt.Printf("instance: %d tile engines, partitioned for up to %d devices\n",
		*tiles, c.Partition.MaxPieces())
	fmt.Printf("decompose: %v (%d basic instances, %d data merges, %d pipeline merges)\n",
		c.DecomposeTime.Round(time.Microsecond),
		c.DecomposeStats.BasicInstances, c.DecomposeStats.DataMerges, c.DecomposeStats.PipeMerges)
	fmt.Printf("partition: %v\n", c.PartitionTime.Round(time.Microsecond))
	fmt.Printf("modelled place-and-route (all images): %v\n\n", c.HSCompileTime.Round(time.Second))

	for dev, images := range c.Images {
		fmt.Printf("%s mapping results:\n", dev)
		for _, pi := range images {
			ctrl := ""
			if pi.WithControl {
				ctrl = " +control"
			}
			fmt.Printf("  piece %-10s lanes=%2d%s -> %d virtual blocks, %d boundary hops, %3.0f MHz, compile %v\n",
				pi.Image.PieceID, pi.Lanes, ctrl,
				pi.Image.Blocks, pi.Image.Hops, pi.Image.ClockMHz,
				pi.Image.CompileTime.Round(time.Second))
		}
	}
}
