// mlv-compile runs the complete offline flow for a BrainWave-like
// accelerator instance: RTL generation, decomposing (§2.2.1), partitioning
// (§2.2.2) and mapping every piece onto the virtual-block abstraction of
// every feasible device type (Fig. 5), printing the mapping results that
// the runtime's database would store.
//
// Usage:
//
//	mlv-compile -tiles 8 -n 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/core"
)

func main() {
	tiles := flag.Int("tiles", 8, "tile engines")
	n := flag.Int("n", 2, "partition iterations")
	naive := flag.Bool("naive", false, "use the pattern-oblivious partitioner (ablation)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = sequential; output is identical)")
	cacheDir := flag.String("cache-dir", "", "content-addressed artifact cache directory (empty = no cache); a warm hit skips the whole flow")
	flag.Parse()

	var store *artifactstore.Store
	if *cacheDir != "" {
		var err error
		store, err = artifactstore.Open(*cacheDir, artifactstore.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlv-compile:", err)
			os.Exit(1)
		}
	}
	c, _, warm, err := core.CompileAcceleratorCached(core.Options{
		Tiles:               *tiles,
		PartitionIterations: *n,
		Seed:                1,
		PatternAware:        !*naive,
		Parallelism:         *jobs,
	}, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlv-compile:", err)
		os.Exit(1)
	}

	from := ""
	if warm {
		from = " (from artifact cache)"
	}
	fmt.Printf("instance: %d tile engines, partitioned for up to %d devices%s\n",
		*tiles, c.Partition.MaxPieces(), from)
	fmt.Printf("decompose: %v (%d basic instances, %d data merges, %d pipeline merges)\n",
		c.DecomposeTime.Round(time.Microsecond),
		c.DecomposeStats.BasicInstances, c.DecomposeStats.DataMerges, c.DecomposeStats.PipeMerges)
	fmt.Printf("partition: %v\n", c.PartitionTime.Round(time.Microsecond))
	fmt.Printf("modelled place-and-route (all images): %v\n\n", c.HSCompileTime.Round(time.Second))

	devs := make([]string, 0, len(c.Images))
	for dev := range c.Images {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		fmt.Printf("%s mapping results:\n", dev)
		for _, pi := range c.Images[dev] {
			ctrl := ""
			if pi.WithControl {
				ctrl = " +control"
			}
			fmt.Printf("  piece %-10s lanes=%2d%s -> %d virtual blocks, %d boundary hops, %3.0f MHz, compile %v\n",
				pi.Image.PieceID, pi.Lanes, ctrl,
				pi.Image.Blocks, pi.Image.Hops, pi.Image.ClockMHz,
				pi.Image.CompileTime.Round(time.Second))
		}
	}
}
