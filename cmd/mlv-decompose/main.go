// mlv-decompose runs the §2.2.1 decomposing tool: it reads Verilog-subset
// RTL (or generates the built-in BrainWave-like accelerator), splits the
// control path from the data path, and prints or saves the resulting
// soft-block tree as JSON.
//
// Usage:
//
//	mlv-decompose -tiles 8                      # built-in accelerator
//	mlv-decompose -rtl design.v -top my_top -ctrl decoder,sequencer
//	mlv-decompose -tiles 4 -o accel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlvfpga/internal/bwrtl"
	"mlvfpga/internal/decompose"
	"mlvfpga/internal/rtl"
)

func main() {
	rtlPath := flag.String("rtl", "", "RTL source file (default: generate the BrainWave-like accelerator)")
	top := flag.String("top", bwrtl.TopModule, "top-level module name")
	ctrl := flag.String("ctrl", strings.Join(bwrtl.ControlModules(), ","), "comma-separated control-path module names")
	tiles := flag.Int("tiles", 8, "tile engines for the generated accelerator")
	uram := flag.Bool("uram", true, "use URAM weight memories in the generated accelerator")
	seed := flag.Int64("seed", 1, "equivalence-checker seed")
	out := flag.String("o", "", "write the accelerator JSON to this file (default: stdout summary)")
	dot := flag.String("dot", "", "write the data-path tree as Graphviz to this file")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mlv-decompose:", err)
		os.Exit(1)
	}

	var src string
	if *rtlPath != "" {
		data, err := os.ReadFile(*rtlPath)
		if err != nil {
			fail(err)
		}
		src = string(data)
	} else {
		var err error
		src, err = bwrtl.Generate(bwrtl.Profile{Tiles: *tiles, UseURAM: *uram})
		if err != nil {
			fail(err)
		}
	}

	design, err := rtl.ParseDesign(src, *top)
	if err != nil {
		fail(err)
	}
	var controls []string
	for _, c := range strings.Split(*ctrl, ",") {
		if c = strings.TrimSpace(c); c != "" {
			controls = append(controls, c)
		}
	}
	res, err := decompose.Decompose(design, *top, nil, decompose.Options{
		ControlModules: controls,
		Seed:           *seed,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("decomposed %s: %d basic instances, %d control, %d data merges, %d pipeline merges, %d iterations\n",
		*top, res.Stats.BasicInstances, res.Stats.ControlModules,
		res.Stats.DataMerges, res.Stats.PipeMerges, res.Stats.Iterations)
	fmt.Printf("control block: %s\n", res.Accelerator.Control.Resources)
	fmt.Printf("data-path tree (%d leaves, depth %d):\n%s",
		res.Accelerator.Data.NumLeaves(), res.Accelerator.Data.Depth(), res.Accelerator.Data)

	if *out != "" {
		data, err := res.Accelerator.Encode()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(res.Accelerator.Data.DOT(*top)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}
