// mlv-partition runs the §2.2.2 partitioning tool over a decomposed
// accelerator (JSON from mlv-decompose, or the built-in accelerator) and
// prints the Fig. 6 partition tree with its cut bandwidths.
//
// Usage:
//
//	mlv-partition -in accel.json -n 2
//	mlv-partition -tiles 8 -n 2       # decompose the built-in design first
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlvfpga/internal/bwrtl"
	"mlvfpga/internal/decompose"
	"mlvfpga/internal/partition"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/softblock"
)

func main() {
	in := flag.String("in", "", "decomposed accelerator JSON (default: decompose the built-in design)")
	tiles := flag.Int("tiles", 8, "tile engines for the built-in design")
	n := flag.Int("n", 2, "partition iterations (deployments up to 2^n devices)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mlv-partition:", err)
		os.Exit(1)
	}

	var acc *softblock.Accelerator
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fail(err)
		}
		acc, err = softblock.Decode(data)
		if err != nil {
			fail(err)
		}
		if err := acc.Validate(); err != nil {
			fail(err)
		}
	} else {
		src, err := bwrtl.Generate(bwrtl.Profile{Tiles: *tiles, UseURAM: true})
		if err != nil {
			fail(err)
		}
		design, err := rtl.ParseDesign(src, bwrtl.TopModule)
		if err != nil {
			fail(err)
		}
		res, err := decompose.Decompose(design, bwrtl.TopModule, nil, decompose.Options{
			ControlModules: bwrtl.ControlModules(),
			Seed:           1,
		})
		if err != nil {
			fail(err)
		}
		acc = res.Accelerator
	}

	res, err := partition.Partition(acc.Data, *n)
	if err != nil {
		fail(err)
	}
	fmt.Printf("partition tree (%d iterations, up to %d pieces):\n", *n, res.MaxPieces())
	res.Walk(func(node *partition.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if node.IsLeaf() {
			fmt.Printf("%s- piece %s: %d leaves, %s\n",
				indent, node.Block.ID, node.Block.NumLeaves(), node.Block.Resources)
			return
		}
		fmt.Printf("%s- %s split of %s (cut %d bits)\n",
			indent, node.CutKind, node.Block.ID, node.CutBits)
	})
	for k := 1; k <= res.MaxPieces(); k++ {
		fr, err := res.Frontier(k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("deployment onto %d device(s): total cut bandwidth %d bits\n",
			k, res.TotalCutBits(fr))
	}
}
