// mlv-scenario runs workload-DSL scenario specs (.mlw files) on the
// deterministic simulation stack: the spec's models compile to AS-ISA
// kernels, its fleet boots as a simulated cluster, arrivals and fault
// storms play out in virtual time with every simtest invariant family
// checked per event, and the run emits a machine-readable SLO report.
//
// Usage:
//
//	mlv-scenario run testdata/scenarios/smoke.mlw
//	mlv-scenario run -out report.json testdata/scenarios/diurnal-1000.mlw
//	mlv-scenario check testdata/scenarios/smoke.mlw
//
// run exits non-zero if any invariant is violated or the report fails its
// own validation. check parses, compiles and builds every kernel without
// running the scenario.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mlvfpga/internal/scenario"
	"mlvfpga/internal/wdsl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "check":
		checkCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mlv-scenario run [-out report.json] spec.mlw")
	fmt.Fprintln(os.Stderr, "       mlv-scenario check spec.mlw")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mlv-scenario:", err)
	os.Exit(1)
}

func load(path string) *wdsl.Spec {
	src, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	f, err := wdsl.Parse(string(src))
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	spec, err := wdsl.Compile(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return spec
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "", "write the SLO report JSON here (default: stdout only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	spec := load(path)

	rep, err := scenario.Run(spec, filepath.Base(path))
	if err != nil {
		fail(err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fail(err)
		}
		// Re-read what we wrote and validate that: the artifact on disk is
		// the contract, not the in-memory struct.
		back, rerr := os.ReadFile(*out)
		if rerr != nil {
			fail(rerr)
		}
		var rr scenario.Report
		if err := json.Unmarshal(back, &rr); err != nil {
			fail(fmt.Errorf("re-reading %s: %w", *out, err))
		}
		rep = &rr
	}
	if err := rep.Validate(); err != nil {
		fail(fmt.Errorf("report failed self-validation: %w", err))
	}

	summarize(rep)
	if !rep.Valid {
		fmt.Fprintf(os.Stderr, "mlv-scenario: INVARIANT VIOLATION: %s\n", rep.Violation)
		os.Exit(1)
	}
}

func summarize(rep *scenario.Report) {
	fmt.Printf("%s: seed %d, %d devices, %s, %d leases\n",
		rep.Spec, rep.Seed, rep.Devices, rep.Duration, rep.Leases)
	fmt.Printf("  arrivals %d  sampled-on-stack %d  trace %s\n",
		rep.Arrivals, rep.Sampled, rep.TraceHash)
	printSLOs := func(label string, m map[string]*scenario.SLO) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := m[k]
			fmt.Printf("  %s %-10s req %6d  served %6d  shed %5d (%.2f%%)  p50 %8.3fms  p99 %8.3fms\n",
				label, k, s.Requests, s.Served, s.Shed, 100*s.ShedRate, s.P50Ms, s.P99Ms)
		}
	}
	printSLOs("tenant", rep.Tenants)
	printSLOs("class ", rep.Classes)
	green := 0
	for _, v := range rep.Invariants {
		if v.Status == "green" {
			green++
		}
	}
	fmt.Printf("  invariants: %d/%d green\n", green, len(rep.Invariants))
	if rep.Valid {
		fmt.Println("  PASS")
	}
}

func checkCmd(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	spec := load(path)
	seed := int64(1)
	if spec.Scenario != nil {
		seed = spec.Scenario.Seed
	}
	counts, err := wdsl.BuildKernels(spec, seed)
	if err != nil {
		fail(err)
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s: %d layer(s), instructions %v\n", n, len(counts[n]), counts[n])
	}
	fmt.Println("OK")
}
