// mlv-serve runs the framework's system controller as a JSON HTTP service
// (the Fig. 7 integration API): a hypervisor or orchestrator deploys and
// releases AS ISA-based accelerators on the simulated heterogeneous
// cluster and observes virtual-block occupancy.
//
// Usage:
//
//	mlv-serve -addr :8080
//
//	curl -X POST localhost:8080/deploy -d '{"kind":"LSTM","hidden":512,"timesteps":25}'
//	curl localhost:8080/status
//	curl -X POST localhost:8080/release -d '{"id":1}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	restricted := flag.Bool("restricted", false, "use the same-type-only runtime policy")
	flag.Parse()

	mode := rms.Flexible
	if *restricted {
		mode = rms.SameTypeOnly
	}
	db := rms.NewDatabase(mode, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mlv-serve: system controller for 3x XCVU37P + 1x XCKU115 (%s policy) on %s\n",
		mode, *addr)
	log.Fatal(http.ListenAndServe(*addr, rms.Handler(svc)))
}
