// mlv-serve runs the framework's system controller as a JSON HTTP service
// (the Fig. 7 integration API): a hypervisor or orchestrator deploys and
// releases AS ISA-based accelerators on the simulated heterogeneous
// cluster, observes virtual-block occupancy, and serves inferences against
// admitted leases through a micro-batching data plane. The cluster control
// plane runs on top: simulated device agents heartbeat the fleet registry,
// a periodic control tick evacuates dead or draining devices and
// re-partitions leases against their live load, and the /cluster endpoints
// expose the fleet to operators (see cmd/mlv-cluster).
//
// Usage:
//
//	mlv-serve -addr :8080 -tenants tenants.json   # authenticated multi-tenant serving
//	mlv-serve -addr :8080 -insecure               # anonymous mode (explicit opt-in)
//
//	curl -X POST localhost:8080/deploy -d '{"kind":"GRU","hidden":512,"timesteps":1}'
//	curl -X POST localhost:8080/infer -d '{"id":1,"inputs":[[0.1, ... 512 floats]]}'
//	curl localhost:8080/status
//	curl localhost:8080/cluster/devices
//	curl -X POST localhost:8080/cluster/drain -d '{"id":2}'
//	curl localhost:8080/debug/vars
//	curl -X POST localhost:8080/release -d '{"id":1}'
//
// With -tenants, every mutating request must carry the X-MLV-* signed
// headers (see internal/tenant and cmd/mlv-sign); the /cluster/* mutations
// additionally require an admin tenant. The unauthenticated curl examples
// above only work under -insecure.
//
// SIGINT/SIGTERM stop admission, drain in-flight batches, and release
// every lease before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/cluster"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	restricted := flag.Bool("restricted", false, "use the same-type-only runtime policy")
	maxBatch := flag.Int("max-batch", 8, "largest inference micro-batch (continuous plane: per-machine slot count)")
	flushDelay := flag.Duration("flush-delay", 500*time.Microsecond, "partial-batch flush deadline (flush plane only)")
	machines := flag.Int("machines", 2, "per-lease machine pool size")
	flushPlane := flag.Bool("flush-plane", false, "serve with the legacy flush-and-wait micro-batching engine instead of continuous batching")
	shards := flag.Int("shards", 0, "continuous plane scheduler shards per lease (0 = GOMAXPROCS, capped at -machines)")
	preempt := flag.Bool("preempt", false, "preemptive scheduling: a full machine checkpoints batch-class streams while latency-class requests wait (continuous plane only)")
	drainDeadline := flag.Duration("drain-deadline", 10*time.Second, "shutdown drain budget; streams still running at the deadline are checkpointed instead of served (0 = drain unbounded)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this private address (empty = disabled); enables mutex and block profiling")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "simulated device heartbeat interval")
	tick := flag.Duration("tick", time.Second, "control-plane tick interval (0 disables the loop)")
	cacheDir := flag.String("cache-dir", "", "content-addressed compilation cache directory (empty = in-memory for this process); known designs warm-start deploys")
	tenantsFile := flag.String("tenants", "", "tenant registry JSON (id, HMAC key, class, quotas); enables signed-request auth")
	insecure := flag.Bool("insecure", false, "serve anonymously with no authentication or quotas (explicit opt-in)")
	flag.Parse()

	if *tenantsFile == "" && !*insecure {
		log.Fatal("mlv-serve: refusing to serve unauthenticated: pass -tenants <file> or the explicit -insecure flag")
	}
	if *tenantsFile != "" && *insecure {
		log.Fatal("mlv-serve: -tenants and -insecure are mutually exclusive")
	}

	mode := rms.Flexible
	if *restricted {
		mode = rms.SameTypeOnly
	}
	db := rms.NewDatabase(mode, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		log.Fatal(err)
	}
	store, err := artifactstore.Open(*cacheDir, artifactstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	svc.SetCompiler(rms.NewCompiler(store, rms.CompilerOptions{}))
	opts := rms.DefaultInferOptions()
	opts.MaxBatch = *maxBatch
	opts.FlushDelay = *flushDelay
	opts.Machines = *machines
	opts.Flush = *flushPlane
	opts.Shards = *shards
	opts.Preempt = *preempt
	dp := rms.NewDataPlane(svc, opts)

	// Opt-in profiling on a separate, private listener: the serving mux
	// never exposes pprof, so an operator can bind this to localhost while
	// the API listens publicly. Mutex and block sampling are turned on so
	// contention in the submit path and the shard scheduler is visible.
	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(10)
		runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{
				Addr:              *pprofAddr,
				Handler:           pmux,
				ReadHeaderTimeout: 5 * time.Second,
			}
			log.Printf("mlv-serve: pprof on %s (private listener)", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("mlv-serve: pprof listener: %v", err)
			}
		}()
	}

	var reg *tenant.Registry
	if *tenantsFile != "" {
		reg, err = tenant.LoadFile(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		svc.SetTenants(reg)
		dp.SetTenants(reg)
		// Per-tenant quota headroom under /debug/vars: used vs. remaining
		// (remaining omitted for unlimited dimensions).
		metrics.SetQuotaHeadroom(func() any {
			out := map[string]map[string]int{}
			for _, t := range reg.List() {
				leases, devices, blocks := svc.TenantUsage(t.ID)
				entry := map[string]int{
					"leases_used":  leases,
					"devices_used": devices,
					"blocks_used":  blocks,
				}
				if t.Quotas.MaxLeases > 0 {
					entry["leases_free"] = t.Quotas.MaxLeases - leases
				}
				if t.Quotas.MaxDevices > 0 {
					entry["devices_free"] = t.Quotas.MaxDevices - devices
				}
				if t.Quotas.MaxBlocks > 0 {
					entry["blocks_free"] = t.Quotas.MaxBlocks - blocks
				}
				out[t.ID] = entry
			}
			return out
		})
	}

	cp := cluster.New(cluster.WallClock{}, cluster.DefaultConfig(), svc, dp)

	// Simulated device agents: every registered device heartbeats on the
	// interval, except devices an operator killed (POST /cluster/kill) —
	// those stay Dead until an explicit /cluster/heartbeat revives them.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for _, d := range cp.Registry().Snapshot() {
					if d.State == cluster.Dead {
						continue
					}
					_ = cp.Heartbeat(d.ID)
				}
			case <-stop:
				return
			}
		}
	}()
	if *tick > 0 {
		go func() {
			t := time.NewTicker(*tick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					rep := cp.Tick()
					for _, ev := range rep.Events {
						log.Printf("mlv-serve: control: lease %d %s %d->%d %s",
							ev.Lease, ev.Kind, ev.FromDepth, ev.ToDepth, ev.Err)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	handler := cp.Handler(dp.Handler())
	authNote := "INSECURE anonymous mode"
	if reg != nil {
		// The guard wraps the whole mux: rms mutations need any valid
		// tenant signature, /cluster/* mutations an admin tenant; GETs
		// (status, devices, debug/vars, healthz) stay open.
		handler = tenant.NewGuard(reg, tenant.GuardOptions{}).Wrap(handler)
		authNote = fmt.Sprintf("signed-request auth, %d tenants", len(reg.List()))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	cacheNote := "in-memory compilation cache"
	if *cacheDir != "" {
		cacheNote = "compilation cache at " + *cacheDir
	}
	fmt.Printf("mlv-serve: system controller for 3x XCVU37P + 1x XCKU115 (%s policy) on %s, %s, %s\n",
		mode, *addr, cacheNote, authNote)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("mlv-serve: %v, draining\n", sig)
	case err := <-errCh:
		log.Fatal(err)
	}

	close(stop)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// The engine drain runs concurrently with the HTTP shutdown: /infer
	// handlers block on their in-flight inferences, so Shutdown can only
	// return once the data plane has answered them — gracefully within
	// -drain-deadline, or by checkpointing still-running streams at the
	// deadline (their callers get a 503 lease-closing answer and can retry
	// against the next instance). Draining after Shutdown instead would
	// make the deadline dead code: Shutdown would wait out the full
	// sequence first.
	drained := make(chan int, 1)
	go func() {
		if *drainDeadline > 0 {
			drained <- dp.CloseWithin(*drainDeadline)
		} else {
			dp.Close()
			drained <- 0
		}
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("mlv-serve: shutdown: %v", err)
	}
	if n := <-drained; n > 0 {
		log.Printf("mlv-serve: drain deadline: checkpointed %d in-flight streams", n)
	}
	for _, lease := range svc.Leases() {
		if err := svc.Release(lease.ID); err != nil {
			log.Printf("mlv-serve: releasing lease %d: %v", lease.ID, err)
		}
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mlv-serve: %v", err)
	}
	fmt.Println("mlv-serve: drained, bye")
}
