// mlv-serve runs the framework's system controller as a JSON HTTP service
// (the Fig. 7 integration API): a hypervisor or orchestrator deploys and
// releases AS ISA-based accelerators on the simulated heterogeneous
// cluster, observes virtual-block occupancy, and serves inferences against
// admitted leases through a micro-batching data plane.
//
// Usage:
//
//	mlv-serve -addr :8080
//
//	curl -X POST localhost:8080/deploy -d '{"kind":"GRU","hidden":512,"timesteps":1}'
//	curl -X POST localhost:8080/infer -d '{"id":1,"inputs":[[0.1, ... 512 floats]]}'
//	curl localhost:8080/status
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/release -d '{"id":1}'
//
// SIGINT/SIGTERM stop admission, drain in-flight batches, and release
// every lease before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	restricted := flag.Bool("restricted", false, "use the same-type-only runtime policy")
	maxBatch := flag.Int("max-batch", 8, "largest inference micro-batch")
	flushDelay := flag.Duration("flush-delay", 500*time.Microsecond, "partial-batch flush deadline")
	machines := flag.Int("machines", 2, "per-lease machine pool size")
	flag.Parse()

	mode := rms.Flexible
	if *restricted {
		mode = rms.SameTypeOnly
	}
	db := rms.NewDatabase(mode, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		log.Fatal(err)
	}
	opts := rms.DefaultInferOptions()
	opts.MaxBatch = *maxBatch
	opts.FlushDelay = *flushDelay
	opts.Machines = *machines
	dp := rms.NewDataPlane(svc, opts)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           dp.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	fmt.Printf("mlv-serve: system controller for 3x XCVU37P + 1x XCKU115 (%s policy) on %s\n",
		mode, *addr)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("mlv-serve: %v, draining\n", sig)
	case err := <-errCh:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("mlv-serve: shutdown: %v", err)
	}
	dp.Close()
	for _, lease := range svc.Leases() {
		if err := svc.Release(lease.ID); err != nil {
			log.Printf("mlv-serve: releasing lease %d: %v", lease.ID, err)
		}
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mlv-serve: %v", err)
	}
	fmt.Println("mlv-serve: drained, bye")
}
