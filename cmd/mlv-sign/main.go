// mlv-sign computes the signed-request headers a tenant must attach to a
// mutating mlv-serve call (see internal/tenant for the scheme: HMAC-SHA256
// over method, path, body hash, timestamp and nonce). It prints curl -H
// arguments, so a signed request is one command substitution away:
//
//	BODY='{"kind":"LSTM","hidden":512,"timesteps":25}'
//	curl -X POST localhost:8080/deploy \
//	  $(mlv-sign -tenant alice -key alice-secret -method POST -path /deploy -body "$BODY") \
//	  -d "$BODY"
//
// With -format headers it prints one "Name: value" line per header
// instead, for clients that are not curl.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"mlvfpga/internal/tenant"
)

func main() {
	id := flag.String("tenant", "", "tenant id")
	key := flag.String("key", "", "tenant HMAC key")
	method := flag.String("method", "POST", "HTTP method to sign")
	path := flag.String("path", "", "request path to sign (e.g. /deploy)")
	body := flag.String("body", "", "request body to sign (use -stdin to read it from stdin)")
	stdin := flag.Bool("stdin", false, "read the request body from stdin")
	format := flag.String("format", "curl", `output format: "curl" (-H arguments) or "headers" (Name: value lines)`)
	flag.Parse()
	if *id == "" || *key == "" || *path == "" {
		fmt.Fprintln(os.Stderr, "usage: mlv-sign -tenant id -key secret -method POST -path /deploy [-body JSON | -stdin]")
		os.Exit(2)
	}
	payload := []byte(*body)
	if *stdin {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlv-sign: reading stdin: %v\n", err)
			os.Exit(1)
		}
		payload = b
	}
	nonceBytes := make([]byte, 16)
	if _, err := rand.Read(nonceBytes); err != nil {
		fmt.Fprintf(os.Stderr, "mlv-sign: %v\n", err)
		os.Exit(1)
	}
	nonce := hex.EncodeToString(nonceBytes)
	ts := time.Now().Unix()
	sig := tenant.Sign([]byte(*key), *method, *path, payload, ts, nonce)

	headers := [][2]string{
		{tenant.HeaderTenant, *id},
		{tenant.HeaderTimestamp, strconv.FormatInt(ts, 10)},
		{tenant.HeaderNonce, nonce},
		{tenant.HeaderSignature, sig},
	}
	switch *format {
	case "curl":
		for _, h := range headers {
			fmt.Printf("-H %s:%s ", h[0], h[1])
		}
		fmt.Println()
	case "headers":
		for _, h := range headers {
			fmt.Printf("%s: %s\n", h[0], h[1])
		}
	default:
		fmt.Fprintf(os.Stderr, "mlv-sign: unknown format %q\n", *format)
		os.Exit(2)
	}
}
