// mlv-sim runs the system-level simulation (§4.4): a Table 1 workload set
// on the paper's 3x XCVU37P + 1x XCKU115 cluster under the AS ISA-only
// baseline, the restricted policy and the proposed framework.
//
// Usage:
//
//	mlv-sim -set 7 -tasks 300
//	mlv-sim -set 3 -tasks 500 -interarrival 50us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/workload"
)

func main() {
	setIdx := flag.Int("set", 7, "Table 1 workload set (1-10)")
	tasks := flag.Int("tasks", 300, "number of tasks")
	inter := flag.Duration("interarrival", 20*time.Microsecond, "mean interarrival time")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mlv-sim:", err)
		os.Exit(1)
	}

	comps := workload.Table1()
	if *setIdx < 1 || *setIdx > len(comps) {
		fail(fmt.Errorf("set %d out of range [1,%d]", *setIdx, len(comps)))
	}
	comp := comps[*setIdx-1]
	seq, err := workload.Generate(comp, workload.Options{
		NumTasks: *tasks, MeanInterarrival: *inter, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	s, m, l := workload.Mix(seq)
	fmt.Printf("%s (realized %.0f%%/%.0f%%/%.0f%%), %d tasks, mean interarrival %v\n\n",
		comp, 100*s, 100*m, 100*l, *tasks, *inter)

	p := perf.DefaultParams()
	cluster := resource.PaperCluster()

	base, err := rms.SimulateBaseline(seq, cluster, p)
	if err != nil {
		fail(err)
	}
	report := func(name string, r rms.Result) {
		fmt.Printf("%-22s throughput %8.0f tasks/s  completed %d  rejected %d  avg latency %v  peak queue %d\n",
			name, r.ThroughputPerSec, r.Completed, r.Rejected, r.AvgLatency.Round(time.Microsecond), r.PeakQueue)
	}
	report("baseline (AS ISA only)", base)

	for _, mode := range []rms.PolicyMode{rms.SameTypeOnly, rms.StaticTarget, rms.Flexible} {
		res, err := rms.Simulate(seq, rms.Config{
			Cluster: cluster,
			Mode:    mode,
			DB:      rms.NewDatabase(mode, p, scaleout.DefaultOptions()),
		})
		if err != nil {
			fail(err)
		}
		report(mode.String(), res)
	}
}
