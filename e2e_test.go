package mlvfpga

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example end to end, asserting
// clean exits and a recognizable line of output. This is the "does a new
// user's first command work" check.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"examples/quickstart", "max |err| vs float64 reference"},
		{"examples/lstm-inference", "modelled latency"},
		{"examples/multi-tenant-cloud", "throughput gain"},
		{"examples/scaleout-overlap", "Fig. 11 sweep"},
	}
	bin := t.TempDir()
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.dir), func(t *testing.T) {
			t.Parallel()
			exe := filepath.Join(bin, filepath.Base(c.dir))
			build := exec.Command("go", "build", "-o", exe, "./"+c.dir)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(exe).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}

// TestCLISmoke runs each CLI tool's cheapest invocation.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke is slow under -short")
	}
	bin := t.TempDir()
	asm := filepath.Join(t.TempDir(), "p.asm")
	if err := os.WriteFile(asm, []byte("v_const r0, 0\nend_chain\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tool string
		args []string
		want string
	}{
		{"mlv-decompose", []string{"-tiles", "2"}, "data-path tree"},
		{"mlv-partition", []string{"-tiles", "2", "-n", "1"}, "partition tree"},
		{"mlv-compile", []string{"-tiles", "2", "-n", "1"}, "mapping results"},
		{"mlv-sim", []string{"-set", "1", "-tasks", "40"}, "baseline (AS ISA only)"},
		{"mlv-bench", []string{"-only", "table2"}, "BW-V37"},
		{"mlv-asm", []string{"-check", asm}, "no issues"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.tool, func(t *testing.T) {
			t.Parallel()
			exe := filepath.Join(bin, c.tool)
			build := exec.Command("go", "build", "-o", exe, "./cmd/"+c.tool)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(exe, c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}
