// LSTM inference on the BrainWave-like AS ISA accelerator — the workload
// the paper's case study targets (§3): low-latency DNN inference with
// block-floating-point matrix math and float16 vector operations.
//
//	go run ./examples/lstm-inference
//
// The example assembles the per-step instruction chain, executes it on the
// functional simulator, validates against a float64 reference, and prints
// the modelled deployment latency on both cluster device types (Table 4's
// methodology).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mlvfpga"
	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
)

func main() {
	const hidden, steps = 128, 8
	w := kernels.RandomWeights(kernels.LSTM, hidden, 2024)
	k, err := kernels.Build(w, steps, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LSTM h=%d, %d timesteps\n", hidden, steps)
	fmt.Printf("machine code: %d instructions (%d bytes; buffer %d bytes)\n",
		len(k.Prog), k.Prog.Bytes(), k.Cfg.InstrBufBytes)
	fmt.Println("\nfirst timestep's chain:")
	for _, ins := range k.Prog[13:20] { // skip the weight-load prologue
		fmt.Printf("  %s\n", ins)
	}
	fmt.Println("  ...")

	// Execute on the functional simulator with a 9-bit BFP mantissa.
	k.Cfg.MantissaBits = 9
	m, err := k.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	ref := kernels.NewReference(w)
	inputs := make([][]float64, steps)
	for t := range inputs {
		x := make([]float64, hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[t] = x
		if err := k.SetInput(m, t, x); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.Run(k.Prog); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for t := range inputs {
		want, err := ref.Step(inputs[t])
		if err != nil {
			log.Fatal(err)
		}
		got, err := k.ReadOutput(m, t)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if d := got[i] - want[i]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
	}
	st := m.Stats()
	fmt.Printf("\nexecuted %d instructions, %d MACs, %d MFU element ops\n",
		st.Instructions, st.MACs, st.VectorOps)
	fmt.Printf("per-op counts: mv_mul=%d vv_add=%d v_sigm=%d v_tanh=%d\n",
		st.ByOp[isa.OpMVMul], st.ByOp[isa.OpVVAdd], st.ByOp[isa.OpVSigm], st.ByOp[isa.OpVTanh])
	fmt.Printf("max |error| vs float64 reference: %.4f\n", worst)

	// Modelled deployment latency for the Table 4 layers.
	fmt.Println("\nmodelled latency (Table 4 methodology):")
	for _, spec := range []mlvfpga.LayerSpec{
		{Kind: mlvfpga.LSTM, Hidden: 512, TimeSteps: 25},
		{Kind: mlvfpga.LSTM, Hidden: 1024, TimeSteps: 25},
		{Kind: mlvfpga.LSTM, Hidden: 1536, TimeSteps: 50},
	} {
		for _, dev := range []string{"XCVU37P", "XCKU115"} {
			base, virt, ovh, err := mlvfpga.PredictLatency(spec, dev)
			if err != nil {
				fmt.Printf("  %-20s %-8s cannot fit (the Table 4 '-')\n", spec, dev)
				continue
			}
			fmt.Printf("  %-20s %-8s baseline %8.4f ms, virtualized %8.4f ms (+%.1f%%)\n",
				spec, dev, base*1e3, virt*1e3, 100*ovh)
		}
	}
}
