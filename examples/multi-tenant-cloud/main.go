// Multi-tenant cloud: the system-level scenario of the paper's
// introduction — many tenants submit GRU/LSTM inference tasks of mixed
// sizes to a heterogeneous FPGA cluster, and the operator cares about
// aggregated throughput.
//
//	go run ./examples/multi-tenant-cloud
//
// The example generates a mixed workload (Table 1 set 7), runs it through
// the AS ISA-only baseline (whole-FPGA allocation) and the proposed
// framework (virtual-block sharing, heterogeneous multi-FPGA deployment),
// and reports how the 2.54x-class gain arises.
package main

import (
	"fmt"
	"log"
	"time"

	"mlvfpga"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

func main() {
	const setIndex, tasks = 7, 240
	proposed, baseline, err := mlvfpga.SimulateCluster(setIndex, tasks, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: Table 1 set %d (33%% S + 33%% M + 34%% L), %d tasks\n", setIndex, tasks)
	fmt.Println("cluster: 3x XCVU37P + 1x XCKU115 (paper section 4.2)")

	report := func(name string, r rms.Result) {
		fmt.Printf("\n%s:\n", name)
		fmt.Printf("  aggregated throughput: %8.0f tasks/s\n", r.ThroughputPerSec)
		fmt.Printf("  completed:             %d (rejected %d)\n", r.Completed, r.Rejected)
		fmt.Printf("  average task latency:  %v\n", r.AvgLatency.Round(time.Microsecond))
		fmt.Printf("  average sojourn:       %v\n", r.AvgSojourn.Round(time.Microsecond))
		fmt.Printf("  peak queue depth:      %d\n", r.PeakQueue)
	}
	report("AS ISA-only baseline (one task owns a whole FPGA)", baseline)
	report("proposed framework (virtual-block sharing + heterogeneous multi-FPGA)", proposed)
	fmt.Printf("\nthroughput gain: x%.2f (paper Fig. 12 average: x2.54)\n",
		proposed.ThroughputPerSec/baseline.ThroughputPerSec)

	// Show why: the mapping database for one small and one large tenant.
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	for _, spec := range []mlvfpga.LayerSpec{
		{Kind: mlvfpga.LSTM, Hidden: 512, TimeSteps: 25},
		{Kind: mlvfpga.GRU, Hidden: 2560, TimeSteps: 100},
	} {
		opts, err := db.Options(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmapping results for %v (greedy order):\n", spec)
		for i, dep := range opts {
			if i == 4 {
				fmt.Printf("  ... %d more\n", len(opts)-4)
				break
			}
			fmt.Printf("  %d piece(s), %2d virtual blocks total, modelled latency %v:",
				dep.NumPieces(), dep.TotalBlocks(), dep.Latency.Round(time.Microsecond))
			for _, piece := range dep.Pieces {
				fmt.Printf(" [%s x%d]", piece.Device, piece.Blocks)
			}
			fmt.Println()
		}
	}

	// Tasks too large for one FPGA stream weights from DRAM in the
	// baseline; the framework scales them out instead.
	big := mlvfpga.LayerSpec{Kind: mlvfpga.GRU, Hidden: 3072, TimeSteps: 80}
	p := perf.DefaultParams()
	stream, err := perf.StreamingLatency(big, "XCVU37P", p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v in the baseline (DRAM weight streaming): %v per inference\n",
		big, stream.Total.Round(time.Microsecond))
}
