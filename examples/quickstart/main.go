// Quickstart: the framework's offline flow end to end, on a small
// BrainWave-like accelerator instance.
//
//	go run ./examples/quickstart
//
// It generates the accelerator RTL, decomposes it onto the soft-block
// abstraction (paper §2.2.1), partitions the data path (§2.2.2), maps the
// pieces onto both device types' virtual-block abstractions, and finally
// runs a small GRU inference on the functional AS ISA simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mlvfpga"
)

func main() {
	// 1. Generate the parameterized accelerator RTL (4 tile engines).
	src, err := mlvfpga.GenerateAcceleratorRTL(4, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bytes of Verilog for %q\n", len(src), mlvfpga.AcceleratorTopModule)

	// 2. Parse and decompose: control path to one soft block, data path to
	// a tree of the two primitive parallel patterns.
	design, err := mlvfpga.ParseRTL(src, mlvfpga.AcceleratorTopModule)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := mlvfpga.Decompose(design, mlvfpga.AcceleratorTopModule,
		mlvfpga.AcceleratorControlModules(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndata-path soft-block tree (root: %s over %d lanes):\n%s",
		acc.Data.Kind, len(acc.Data.Children), acc.Data)

	// 3. Partition for deployments onto up to 4 devices.
	pr, err := mlvfpga.Partition(acc, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned into up to %d deployable pieces\n", pr.MaxPieces())

	// 4. Full offline flow with virtual-block mapping for both FPGA types.
	compiled, err := mlvfpga.CompileInstance(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	for dev, images := range compiled.Images {
		fmt.Printf("%s: %d mapping results (first: %d virtual blocks, %d hops)\n",
			dev, len(images), images[0].Image.Blocks, images[0].Image.Hops)
	}

	// 5. Run a small GRU on the functional simulator and check numerics.
	spec := mlvfpga.LayerSpec{Kind: mlvfpga.GRU, Hidden: 64, TimeSteps: 4}
	r := rand.New(rand.NewSource(42))
	inputs := make([][]float64, spec.TimeSteps)
	for t := range inputs {
		x := make([]float64, spec.Hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[t] = x
	}
	res, err := mlvfpga.RunInference(spec, inputs, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGRU h=%d, %d steps on the AS ISA simulator: %d instructions, %d MACs, max |err| vs float64 reference = %.4f\n",
		spec.Hidden, spec.TimeSteps, res.Instructions, res.MACs, res.MaxAbsError)
}
