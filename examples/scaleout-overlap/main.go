// Scale-out acceleration with the §2.3 optimization: instead of splitting
// one accelerator across FPGAs, scale it down into two smaller instances,
// exchange the hidden state through the sync template module's trapped
// DRAM addresses, and reorder instructions so the inter-FPGA transfer
// overlaps the next step's input-dependent compute.
//
//	go run ./examples/scaleout-overlap
//
// The example runs the two linked accelerators functionally (goroutines +
// the barrier in the sync module), validates against the float64
// reference, and then reproduces the Fig. 11 sweep analytically.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/scaleout"
)

func main() {
	// --- Functional part: two scaled-down LSTMs joined by sync modules.
	const hidden, steps = 64, 6
	w := kernels.RandomWeights(kernels.LSTM, hidden, 77)
	sp, err := scaleout.BuildScaledPair(w, steps, 1)
	if err != nil {
		log.Fatal(err)
	}
	sp.Cfg.MantissaBits = 9

	// The reordering tool sinks the blocking receive past the next step's
	// W*x products.
	for d := 0; d < 2; d++ {
		sp.Progs[d] = scaleout.ReorderForOverlap(sp.Progs[d],
			uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr))
	}
	fmt.Printf("scaled LSTM h=%d onto 2 devices: %d instructions each, sync addresses %d/%d (out of DRAM range)\n",
		hidden, len(sp.Progs[0]), sp.SyncCfg.SendAddr, sp.SyncCfg.RecvAddr)

	ms, syncs, err := sp.NewMachines()
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	ref := kernels.NewReference(w)
	inputs := make([][]float64, steps)
	for t := range inputs {
		x := make([]float64, hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[t] = x
		if err := sp.SetInput(ms, t, x); err != nil {
			log.Fatal(err)
		}
	}
	if err := sp.Run(ms); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for t := range inputs {
		want, _ := ref.Step(inputs[t])
		got, err := sp.ReadOutput(ms, t)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			worst = math.Max(worst, math.Abs(got[i]-want[i]))
		}
	}
	st := syncs[0].Stats()
	fmt.Printf("ran %d steps: %d half-vector exchanges per device, max |err| vs reference %.4f\n\n",
		steps, st.Sends, worst)

	// --- Analytic part: the Fig. 11 sweep.
	p := perf.DefaultParams()
	fmt.Println("Fig. 11 sweep: per-step latency on 2x XCVU37P vs added inter-FPGA latency")
	for _, line := range []struct {
		label string
		spec  kernels.LayerSpec
	}{
		{"LSTM h=1024", kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1024, TimeSteps: 1}},
		{"GRU  h=1024", kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 1}},
		{"GRU  h=2560", kernels.LayerSpec{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 1}},
	} {
		budget, err := scaleout.HiddenLatencyBudget(line.spec, "XCVU37P", p, netmodel.DefaultRingLink())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s (hides up to %v of added latency):\n", line.label, budget.Round(10*time.Nanosecond))
		for added := time.Duration(0); added <= time.Microsecond; added += 250 * time.Nanosecond {
			link := netmodel.DefaultRingLink()
			link.AddedLatency = added
			with, _, _, err := scaleout.TwoFPGAStep(line.spec, "XCVU37P", p,
				scaleout.TwoFPGAOptions{Overlap: true, Link: link})
			if err != nil {
				log.Fatal(err)
			}
			without, _, _, err := scaleout.TwoFPGAStep(line.spec, "XCVU37P", p,
				scaleout.TwoFPGAOptions{Overlap: false, Link: link})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    +%4.2fus: overlap %7.3fus | naive %7.3fus\n",
				added.Seconds()*1e6, with.Seconds()*1e6, without.Seconds()*1e6)
		}
	}
}
