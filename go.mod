module mlvfpga

go 1.22
