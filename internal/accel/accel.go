// Package accel is a functional (instruction-level) simulator of the
// BrainWave-like AS ISA accelerator from the paper's case study (§3): tile
// engines perform matrix-vector multiplication in block floating point,
// multi-function units perform float16 point-wise operations and
// activations, and an instruction buffer holds the machine code on-chip to
// minimize DRAM accesses (§4.4).
//
// The simulator validates numerics and programs; timing is modelled
// separately in internal/perf. The DRAM port is an interface so the
// scale-out sync template module (§2.3, internal/scaleout) can interpose on
// reads and writes to predefined addresses.
package accel

import (
	"errors"
	"fmt"

	"mlvfpga/internal/bfp"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
)

// Config sizes one accelerator instance. The number of tile engines is the
// knob the paper adjusts to generate instances with different computing
// capabilities (§3), and the knob the scale-down transform reduces (§2.3).
type Config struct {
	// Name identifies the instance, e.g. "bw_v37_t21".
	Name string
	// NativeDim is the hardware vector granularity (BFP block size).
	NativeDim int
	// NumTiles is the number of tile engines (SIMD data processing units).
	NumTiles int
	// VRegs and MRegs size the vector and matrix register files.
	VRegs, MRegs int
	// VecLen is the logical vector length (the model's hidden dimension);
	// v_rd and v_const produce vectors of this length.
	VecLen int
	// DRAMWords is the on-board DRAM capacity in float16 words.
	DRAMWords int
	// InstrBufBytes is the on-chip instruction buffer capacity.
	InstrBufBytes int
	// MantissaBits is the BFP mantissa width (default bfp.DefaultMantissaBits).
	MantissaBits int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NativeDim <= 0:
		return fmt.Errorf("accel: NativeDim = %d", c.NativeDim)
	case c.NumTiles <= 0:
		return fmt.Errorf("accel: NumTiles = %d", c.NumTiles)
	case c.VRegs <= 0 || c.VRegs > 256 || c.MRegs <= 0 || c.MRegs > 256:
		return fmt.Errorf("accel: register files VRegs=%d MRegs=%d", c.VRegs, c.MRegs)
	case c.VecLen <= 0:
		return fmt.Errorf("accel: VecLen = %d", c.VecLen)
	case c.DRAMWords <= 0:
		return fmt.Errorf("accel: DRAMWords = %d", c.DRAMWords)
	}
	return nil
}

// DRAM is the accelerator's memory port. The scale-out optimization wraps
// it to trap predefined addresses (§2.3 Fig. 8b).
type DRAM interface {
	ReadWords(addr, n int) ([]fp16.Num, error)
	WriteWords(addr int, vals []fp16.Num) error
}

// Memory is a plain in-memory DRAM.
type Memory struct {
	words []fp16.Num
}

// NewMemory allocates a DRAM of n float16 words.
func NewMemory(n int) *Memory { return &Memory{words: make([]fp16.Num, n)} }

// Size returns the capacity in words.
func (m *Memory) Size() int { return len(m.words) }

// ErrDRAMRange is returned for out-of-range accesses.
var ErrDRAMRange = errors.New("accel: DRAM access out of range")

// ReadWords copies n words starting at addr.
func (m *Memory) ReadWords(addr, n int) ([]fp16.Num, error) {
	if addr < 0 || n < 0 || addr+n > len(m.words) {
		return nil, fmt.Errorf("%w: read [%d,%d) of %d", ErrDRAMRange, addr, addr+n, len(m.words))
	}
	out := make([]fp16.Num, n)
	copy(out, m.words[addr:addr+n])
	return out, nil
}

// WriteWords stores vals starting at addr.
func (m *Memory) WriteWords(addr int, vals []fp16.Num) error {
	if addr < 0 || addr+len(vals) > len(m.words) {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrDRAMRange, addr, addr+len(vals), len(m.words))
	}
	copy(m.words[addr:], vals)
	return nil
}

// matrixReg is one matrix register: the BFP-quantized tile contents plus
// shape.
type matrixReg struct {
	rows, cols int
	mat        *bfp.Matrix
}

// ExecStats counts executed work, consumed by the timing model and the
// instruction-buffer experiment.
type ExecStats struct {
	Instructions int
	ByOp         map[isa.Opcode]int
	MACs         int64 // multiply-accumulates performed by mv_mul
	VectorOps    int64 // element-wise operations performed by the MFUs
	DRAMReads    int64 // words read
	DRAMWrites   int64 // words written
}

// Machine is one simulated accelerator instance.
type Machine struct {
	cfg    Config
	codec  *bfp.Codec
	vrf    [][]fp16.Num
	mshape []struct{ rows, cols int } // configured shapes for m_rd
	mrf    []*matrixReg
	dram   DRAM
	stats  ExecStats
}

// New builds a machine with a fresh private DRAM.
func New(cfg Config) (*Machine, error) {
	return NewWithDRAM(cfg, nil)
}

// NewWithDRAM builds a machine over the given DRAM port (nil allocates a
// private Memory of cfg.DRAMWords).
func NewWithDRAM(cfg Config, dram DRAM) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MantissaBits == 0 {
		cfg.MantissaBits = bfp.DefaultMantissaBits
	}
	codec, err := bfp.NewCodec(cfg.MantissaBits)
	if err != nil {
		return nil, err
	}
	if dram == nil {
		dram = NewMemory(cfg.DRAMWords)
	}
	m := &Machine{
		cfg:    cfg,
		codec:  codec,
		vrf:    make([][]fp16.Num, cfg.VRegs),
		mshape: make([]struct{ rows, cols int }, cfg.MRegs),
		mrf:    make([]*matrixReg, cfg.MRegs),
		dram:   dram,
	}
	m.stats.ByOp = map[isa.Opcode]int{}
	return m, nil
}

// Config returns the instance configuration.
func (m *Machine) Config() Config { return m.cfg }

// DRAMPort returns the machine's DRAM.
func (m *Machine) DRAMPort() DRAM { return m.dram }

// Stats returns execution statistics so far.
func (m *Machine) Stats() ExecStats { return m.stats }

// ResetStats zeroes the statistics.
func (m *Machine) ResetStats() {
	m.stats = ExecStats{ByOp: map[isa.Opcode]int{}}
}

// ConfigureMatrix sets the shape m_rd loads into matrix register reg; this
// models the control registers the host programs before launching a chain.
func (m *Machine) ConfigureMatrix(reg, rows, cols int) error {
	if reg < 0 || reg >= m.cfg.MRegs {
		return fmt.Errorf("accel: matrix register %d out of range", reg)
	}
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("accel: matrix shape %dx%d", rows, cols)
	}
	m.mshape[reg] = struct{ rows, cols int }{rows, cols}
	return nil
}

// ReadVector returns a copy of a vector register (for tests and the host
// interface).
func (m *Machine) ReadVector(reg int) ([]fp16.Num, error) {
	if reg < 0 || reg >= m.cfg.VRegs {
		return nil, fmt.Errorf("accel: vector register %d out of range", reg)
	}
	if m.vrf[reg] == nil {
		return nil, fmt.Errorf("accel: vector register %d is empty", reg)
	}
	return append([]fp16.Num{}, m.vrf[reg]...), nil
}

// ErrProgramTooLarge is returned when a program exceeds the instruction
// buffer.
var ErrProgramTooLarge = errors.New("accel: program exceeds instruction buffer")

// Run executes the program to completion (through end_chain or the end of
// the sequence).
func (m *Machine) Run(p isa.Program) error {
	if m.cfg.InstrBufBytes > 0 && p.Bytes() > m.cfg.InstrBufBytes {
		return fmt.Errorf("%w: %d > %d bytes", ErrProgramTooLarge, p.Bytes(), m.cfg.InstrBufBytes)
	}
	for pc, ins := range p {
		done, err := m.step(ins)
		if err != nil {
			return fmt.Errorf("accel: pc %d (%s): %w", pc, ins, err)
		}
		if done {
			return nil
		}
	}
	return nil
}

func (m *Machine) vreg(r uint8) (int, error) {
	if int(r) >= m.cfg.VRegs {
		return 0, fmt.Errorf("vector register r%d out of range (%d)", r, m.cfg.VRegs)
	}
	return int(r), nil
}

func (m *Machine) loadedV(r uint8) ([]fp16.Num, error) {
	idx, err := m.vreg(r)
	if err != nil {
		return nil, err
	}
	if m.vrf[idx] == nil {
		return nil, fmt.Errorf("vector register r%d read before write", r)
	}
	return m.vrf[idx], nil
}

// shardLen decodes a length-register selector: 0 = VecLen, 1 = VecLen/2,
// 2 = VecLen/4.
func (m *Machine) shardLen(mode uint8) (int, error) {
	switch mode {
	case 0:
		return m.cfg.VecLen, nil
	case 1:
		return m.cfg.VecLen / 2, nil
	case 2:
		return m.cfg.VecLen / 4, nil
	}
	return 0, fmt.Errorf("unknown vector length mode %d", mode)
}

// step executes one instruction; done reports end_chain.
func (m *Machine) step(ins isa.Instr) (done bool, err error) {
	m.stats.Instructions++
	m.stats.ByOp[ins.Op]++
	switch ins.Op {
	case isa.OpVRead:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return false, err
		}
		// Src2 selects the vector length register: 0 = full VecLen,
		// 1 = VecLen/2, 2 = VecLen/4 (scaled-down accelerators operate on
		// 1/n shards of the hidden dimension, §2.3).
		n, err := m.shardLen(ins.Src2)
		if err != nil {
			return false, err
		}
		vals, err := m.dram.ReadWords(int(ins.Imm), n)
		if err != nil {
			return false, err
		}
		m.vrf[dst] = vals
		m.stats.DRAMReads += int64(n)

	case isa.OpVWrite:
		src, err := m.loadedV(ins.Src1)
		if err != nil {
			return false, err
		}
		if err := m.dram.WriteWords(int(ins.Imm), src); err != nil {
			return false, err
		}
		m.stats.DRAMWrites += int64(len(src))

	case isa.OpMRead:
		if int(ins.Dst) >= m.cfg.MRegs {
			return false, fmt.Errorf("matrix register r%d out of range (%d)", ins.Dst, m.cfg.MRegs)
		}
		shape := m.mshape[ins.Dst]
		if shape.rows == 0 {
			return false, fmt.Errorf("matrix register r%d has no configured shape", ins.Dst)
		}
		words, err := m.dram.ReadWords(int(ins.Imm), shape.rows*shape.cols)
		if err != nil {
			return false, err
		}
		mat, err := m.codec.QuantizeMatrix(fp16.ToSlice64(words), shape.rows, shape.cols, m.cfg.NativeDim)
		if err != nil {
			return false, err
		}
		m.mrf[ins.Dst] = &matrixReg{rows: shape.rows, cols: shape.cols, mat: mat}
		m.stats.DRAMReads += int64(shape.rows * shape.cols)

	case isa.OpMVMul:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return false, err
		}
		if int(ins.Src1) >= m.cfg.MRegs || m.mrf[ins.Src1] == nil {
			return false, fmt.Errorf("matrix register r%d not loaded", ins.Src1)
		}
		vec, err := m.loadedV(ins.Src2)
		if err != nil {
			return false, err
		}
		mr := m.mrf[ins.Src1]
		if len(vec) != mr.cols {
			return false, fmt.Errorf("mv_mul shape mismatch: matrix %dx%d, vector %d", mr.rows, mr.cols, len(vec))
		}
		vb, err := m.codec.QuantizeVector(fp16.ToSlice64(vec), m.cfg.NativeDim)
		if err != nil {
			return false, err
		}
		prod, err := bfp.MatVec(mr.mat, vb)
		if err != nil {
			return false, err
		}
		m.vrf[dst] = fp16.FromSlice64(prod)
		m.stats.MACs += int64(mr.rows) * int64(mr.cols)

	case isa.OpVVAdd, isa.OpVVSub, isa.OpVVMul:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return false, err
		}
		a, err := m.loadedV(ins.Src1)
		if err != nil {
			return false, err
		}
		b, err := m.loadedV(ins.Src2)
		if err != nil {
			return false, err
		}
		if len(a) != len(b) {
			return false, fmt.Errorf("%s length mismatch: %d vs %d", ins.Op, len(a), len(b))
		}
		out := make([]fp16.Num, len(a))
		for i := range a {
			switch ins.Op {
			case isa.OpVVAdd:
				out[i] = fp16.Add(a[i], b[i])
			case isa.OpVVSub:
				out[i] = fp16.Sub(a[i], b[i])
			case isa.OpVVMul:
				out[i] = fp16.Mul(a[i], b[i])
			}
		}
		m.vrf[dst] = out
		m.stats.VectorOps += int64(len(a))

	case isa.OpVSigm, isa.OpVTanh, isa.OpVRelu, isa.OpVPass:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return false, err
		}
		a, err := m.loadedV(ins.Src1)
		if err != nil {
			return false, err
		}
		out := make([]fp16.Num, len(a))
		for i, x := range a {
			switch ins.Op {
			case isa.OpVSigm:
				out[i] = fp16.Sigmoid(x)
			case isa.OpVTanh:
				out[i] = fp16.Tanh(x)
			case isa.OpVRelu:
				if fp16.Less(x, fp16.PositiveZero) {
					out[i] = fp16.PositiveZero
				} else {
					out[i] = x
				}
			case isa.OpVPass:
				out[i] = x
			}
		}
		m.vrf[dst] = out
		m.stats.VectorOps += int64(len(a))

	case isa.OpVConst:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return false, err
		}
		// Src1 selects the length register, as for v_rd.
		n, err := m.shardLen(ins.Src1)
		if err != nil {
			return false, err
		}
		out := make([]fp16.Num, n)
		c := fp16.Num(ins.Imm)
		for i := range out {
			out[i] = c
		}
		m.vrf[dst] = out
		m.stats.VectorOps += int64(len(out))

	case isa.OpVRsub:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return false, err
		}
		a, err := m.loadedV(ins.Src1)
		if err != nil {
			return false, err
		}
		c := fp16.Num(ins.Imm)
		out := make([]fp16.Num, len(a))
		for i, x := range a {
			out[i] = fp16.Sub(c, x)
		}
		m.vrf[dst] = out
		m.stats.VectorOps += int64(len(a))

	case isa.OpEndChain:
		return true, nil

	default:
		return false, fmt.Errorf("unimplemented opcode %v", ins.Op)
	}
	return false, nil
}
