// Package accel is a functional (instruction-level) simulator of the
// BrainWave-like AS ISA accelerator from the paper's case study (§3): tile
// engines perform matrix-vector multiplication in block floating point,
// multi-function units perform float16 point-wise operations and
// activations, and an instruction buffer holds the machine code on-chip to
// minimize DRAM accesses (§4.4).
//
// The simulator validates numerics and programs; timing is modelled
// separately in internal/perf. The DRAM port is an interface so the
// scale-out sync template module (§2.3, internal/scaleout) can interpose on
// reads and writes to predefined addresses.
//
// The execution engine is weight-stationary: m_rd quantizes a matrix tile
// once and caches it in the packed on-chip layout until an overlapping DRAM
// write or a shape reconfiguration invalidates it, and the steady-state
// step loop reuses preallocated register/scratch buffers so repeated Run
// calls perform no heap allocation. RunBatch executes one program over
// several banked input streams, amortizing each cached tile across the
// whole micro-batch (see exec.go).
package accel

import (
	"errors"
	"fmt"

	"mlvfpga/internal/bfp"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
)

// Config sizes one accelerator instance. The number of tile engines is the
// knob the paper adjusts to generate instances with different computing
// capabilities (§3), and the knob the scale-down transform reduces (§2.3).
type Config struct {
	// Name identifies the instance, e.g. "bw_v37_t21".
	Name string
	// NativeDim is the hardware vector granularity (BFP block size).
	NativeDim int
	// NumTiles is the number of tile engines (SIMD data processing units).
	NumTiles int
	// VRegs and MRegs size the vector and matrix register files.
	VRegs, MRegs int
	// VecLen is the logical vector length (the model's hidden dimension);
	// v_rd and v_const produce vectors of this length.
	VecLen int
	// DRAMWords is the on-board DRAM capacity in float16 words.
	DRAMWords int
	// InstrBufBytes is the on-chip instruction buffer capacity.
	InstrBufBytes int
	// MantissaBits is the BFP mantissa width (default bfp.DefaultMantissaBits).
	MantissaBits int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NativeDim <= 0:
		return fmt.Errorf("accel: NativeDim = %d", c.NativeDim)
	case c.NumTiles <= 0:
		return fmt.Errorf("accel: NumTiles = %d", c.NumTiles)
	case c.VRegs <= 0 || c.VRegs > 256 || c.MRegs <= 0 || c.MRegs > 256:
		return fmt.Errorf("accel: register files VRegs=%d MRegs=%d", c.VRegs, c.MRegs)
	case c.VecLen <= 0:
		return fmt.Errorf("accel: VecLen = %d", c.VecLen)
	case c.DRAMWords <= 0:
		return fmt.Errorf("accel: DRAMWords = %d", c.DRAMWords)
	}
	return nil
}

// DRAM is the accelerator's memory port. The scale-out optimization wraps
// it to trap predefined addresses (§2.3 Fig. 8b).
type DRAM interface {
	ReadWords(addr, n int) ([]fp16.Num, error)
	WriteWords(addr int, vals []fp16.Num) error
}

// ReaderInto is an optional DRAM extension: reading into a caller-provided
// buffer lets the execution engine keep its steady-state v_rd path
// allocation-free. Ports that do not implement it fall back to ReadWords
// plus a copy.
type ReaderInto interface {
	ReadWordsInto(dst []fp16.Num, addr int) error
}

// Unwrapper is implemented by DRAM wrappers (such as the machine's
// write-tracking port) that interpose on another DRAM.
type Unwrapper interface {
	Unwrap() DRAM
}

// UnwrapDRAM peels any wrapping layers off a DRAM port and returns the
// innermost device — what callers that type-assert on a concrete port
// (e.g. the scale-out sync modules) should inspect.
func UnwrapDRAM(d DRAM) DRAM {
	for {
		u, ok := d.(Unwrapper)
		if !ok {
			return d
		}
		d = u.Unwrap()
	}
}

// Memory is a plain in-memory DRAM.
type Memory struct {
	words []fp16.Num
}

// NewMemory allocates a DRAM of n float16 words.
func NewMemory(n int) *Memory { return &Memory{words: make([]fp16.Num, n)} }

// Size returns the capacity in words.
func (m *Memory) Size() int { return len(m.words) }

// ErrDRAMRange is returned for out-of-range accesses.
var ErrDRAMRange = errors.New("accel: DRAM access out of range")

// ReadWords copies n words starting at addr.
func (m *Memory) ReadWords(addr, n int) ([]fp16.Num, error) {
	if addr < 0 || n < 0 || addr+n > len(m.words) {
		return nil, fmt.Errorf("%w: read [%d,%d) of %d", ErrDRAMRange, addr, addr+n, len(m.words))
	}
	out := make([]fp16.Num, n)
	copy(out, m.words[addr:addr+n])
	return out, nil
}

// ReadWordsInto copies len(dst) words starting at addr into dst without
// allocating.
func (m *Memory) ReadWordsInto(dst []fp16.Num, addr int) error {
	n := len(dst)
	if addr < 0 || addr+n > len(m.words) {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrDRAMRange, addr, addr+n, len(m.words))
	}
	copy(dst, m.words[addr:addr+n])
	return nil
}

// WriteWords stores vals starting at addr.
func (m *Memory) WriteWords(addr int, vals []fp16.Num) error {
	if addr < 0 || addr+len(vals) > len(m.words) {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrDRAMRange, addr, addr+len(vals), len(m.words))
	}
	copy(m.words[addr:], vals)
	return nil
}

// matrixReg is one matrix register: the BFP-quantized tile contents in the
// packed on-chip layout, plus shape.
type matrixReg struct {
	rows, cols int
	mat        *bfp.PackedMatrix
}

// tileEntry records which DRAM range a matrix register's current contents
// were quantized from. While valid, an m_rd of the same range and shape is
// served from the register without touching DRAM or requantizing — the
// weight-stationary fast path. Any DRAM write overlapping the range (from
// a program's v_wr or from the host through DRAMPort) invalidates it.
type tileEntry struct {
	addr, words int
	rows, cols  int
	valid       bool
}

// trackedDRAM interposes on the machine's DRAM port so every write — from
// programs and from the host alike — invalidates overlapping tile-cache
// entries. Reads pass straight through; Unwrap exposes the inner port.
type trackedDRAM struct {
	inner     DRAM
	innerInto ReaderInto // non-nil when inner supports buffer reads
	m         *Machine
}

func (t *trackedDRAM) ReadWords(addr, n int) ([]fp16.Num, error) {
	return t.inner.ReadWords(addr, n)
}

func (t *trackedDRAM) ReadWordsInto(dst []fp16.Num, addr int) error {
	if t.innerInto != nil {
		return t.innerInto.ReadWordsInto(dst, addr)
	}
	vals, err := t.inner.ReadWords(addr, len(dst))
	if err != nil {
		return err
	}
	copy(dst, vals)
	return nil
}

func (t *trackedDRAM) WriteWords(addr int, vals []fp16.Num) error {
	t.m.invalidateTiles(addr, len(vals))
	return t.inner.WriteWords(addr, vals)
}

// Unwrap returns the DRAM the tracker wraps.
func (t *trackedDRAM) Unwrap() DRAM { return t.inner }

// ExecStats counts executed work, consumed by the timing model, the
// instruction-buffer experiment, and the serving data plane's batching
// observability.
type ExecStats struct {
	Instructions int                `json:"instructions"`
	ByOp         map[isa.Opcode]int `json:"by_op,omitempty"`
	MACs         int64              `json:"macs"`        // multiply-accumulates performed by mv_mul
	VectorOps    int64              `json:"vector_ops"`  // element-wise operations performed by the MFUs
	DRAMReads    int64              `json:"dram_reads"`  // words read
	DRAMWrites   int64              `json:"dram_writes"` // words written
	// TileCacheHits counts m_rd instructions served from the
	// weight-stationary tile cache (no DRAM read, no requantization);
	// TileCacheMisses counts m_rd instructions that had to quantize.
	TileCacheHits   int64 `json:"tile_cache_hits"`
	TileCacheMisses int64 `json:"tile_cache_misses"`
}

// Minus returns the work accumulated since prev, an earlier snapshot of the
// same machine's stats — the per-batch delta the serving data plane reports.
func (s ExecStats) Minus(prev ExecStats) ExecStats {
	d := ExecStats{
		Instructions:    s.Instructions - prev.Instructions,
		ByOp:            map[isa.Opcode]int{},
		MACs:            s.MACs - prev.MACs,
		VectorOps:       s.VectorOps - prev.VectorOps,
		DRAMReads:       s.DRAMReads - prev.DRAMReads,
		DRAMWrites:      s.DRAMWrites - prev.DRAMWrites,
		TileCacheHits:   s.TileCacheHits - prev.TileCacheHits,
		TileCacheMisses: s.TileCacheMisses - prev.TileCacheMisses,
	}
	for op, c := range s.ByOp {
		if dc := c - prev.ByOp[op]; dc != 0 {
			d.ByOp[op] = dc
		}
	}
	return d
}

// Plus returns the element-wise sum of two stat deltas — how a stream's
// pre-preemption work is folded into the BatchStats its final retirement
// reports.
func (s ExecStats) Plus(o ExecStats) ExecStats {
	d := ExecStats{
		Instructions:    s.Instructions + o.Instructions,
		ByOp:            map[isa.Opcode]int{},
		MACs:            s.MACs + o.MACs,
		VectorOps:       s.VectorOps + o.VectorOps,
		DRAMReads:       s.DRAMReads + o.DRAMReads,
		DRAMWrites:      s.DRAMWrites + o.DRAMWrites,
		TileCacheHits:   s.TileCacheHits + o.TileCacheHits,
		TileCacheMisses: s.TileCacheMisses + o.TileCacheMisses,
	}
	for op, c := range s.ByOp {
		d.ByOp[op] += c
	}
	for op, c := range o.ByOp {
		d.ByOp[op] += c
	}
	return d
}

// Machine is one simulated accelerator instance. A Machine is not safe for
// concurrent use; the serving layer pools machines so each executes one
// (possibly batched) program at a time.
type Machine struct {
	cfg    Config
	codec  *bfp.Codec
	mshape []struct{ rows, cols int } // configured shapes for m_rd
	mrf    []*matrixReg
	tiles  []tileEntry
	dram   *trackedDRAM
	stats  ExecStats

	// streams holds per-stream register files and scratch arenas; stream 0
	// is the default context Run executes in. See exec.go.
	streams []*streamCtx
	base    int // banked-window base of the current RunBatch

	// bvecs/bprods gather per-stream operands for the batched MVM without
	// allocating per instruction.
	bvecs  [][]bfp.Block
	bprods [][]float64
	// runScs gathers the stream contexts a RunStreams call selects, reused
	// so slot-granular stepping stays allocation-free.
	runScs []*streamCtx

	sigm, tanh, exp, recip *[1 << 16]fp16.Num
}

// New builds a machine with a fresh private DRAM.
func New(cfg Config) (*Machine, error) {
	return NewWithDRAM(cfg, nil)
}

// NewWithDRAM builds a machine over the given DRAM port (nil allocates a
// private Memory of cfg.DRAMWords). The machine's own port (DRAMPort)
// wraps dram to track writes for tile-cache invalidation; use UnwrapDRAM
// to reach the device underneath.
func NewWithDRAM(cfg Config, dram DRAM) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MantissaBits == 0 {
		cfg.MantissaBits = bfp.DefaultMantissaBits
	}
	codec, err := bfp.NewCodec(cfg.MantissaBits)
	if err != nil {
		return nil, err
	}
	if dram == nil {
		dram = NewMemory(cfg.DRAMWords)
	}
	m := &Machine{
		cfg:    cfg,
		codec:  codec,
		mshape: make([]struct{ rows, cols int }, cfg.MRegs),
		mrf:    make([]*matrixReg, cfg.MRegs),
		tiles:  make([]tileEntry, cfg.MRegs),
	}
	inner, _ := dram.(ReaderInto)
	m.dram = &trackedDRAM{inner: dram, innerInto: inner, m: m}
	m.sigm, m.tanh, m.exp, m.recip = actTables()
	m.ensureStreams(1)
	m.stats.ByOp = map[isa.Opcode]int{}
	return m, nil
}

// Config returns the instance configuration.
func (m *Machine) Config() Config { return m.cfg }

// DRAMPort returns the machine's DRAM port. Writes through it are tracked
// for tile-cache invalidation; UnwrapDRAM recovers the wrapped device.
func (m *Machine) DRAMPort() DRAM { return m.dram }

// Stats returns execution statistics so far. The returned ByOp map is a
// copy, so the result is a stable snapshot (usable as a Minus baseline).
func (m *Machine) Stats() ExecStats {
	st := m.stats
	st.ByOp = make(map[isa.Opcode]int, len(m.stats.ByOp))
	for op, c := range m.stats.ByOp {
		st.ByOp[op] = c
	}
	return st
}

// ResetStats zeroes the statistics.
func (m *Machine) ResetStats() {
	m.stats = ExecStats{ByOp: map[isa.Opcode]int{}}
}

// invalidateTiles drops every cached tile overlapping the written range.
func (m *Machine) invalidateTiles(addr, n int) {
	if n <= 0 {
		return
	}
	for i := range m.tiles {
		t := &m.tiles[i]
		if t.valid && addr < t.addr+t.words && t.addr < addr+n {
			t.valid = false
		}
	}
}

// ConfigureMatrix sets the shape m_rd loads into matrix register reg; this
// models the control registers the host programs before launching a chain.
// Changing a register's shape invalidates its cached tile.
func (m *Machine) ConfigureMatrix(reg, rows, cols int) error {
	if reg < 0 || reg >= m.cfg.MRegs {
		return fmt.Errorf("accel: matrix register %d out of range", reg)
	}
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("accel: matrix shape %dx%d", rows, cols)
	}
	if m.mshape[reg].rows != rows || m.mshape[reg].cols != cols {
		m.tiles[reg].valid = false
	}
	m.mshape[reg] = struct{ rows, cols int }{rows, cols}
	return nil
}

// ReadVector returns a copy of a vector register (for tests and the host
// interface). It reads stream 0, the context Run executes in.
func (m *Machine) ReadVector(reg int) ([]fp16.Num, error) {
	return m.ReadVectorStream(0, reg)
}

// ReadVectorStream returns a copy of a vector register in the given batch
// stream's register file.
func (m *Machine) ReadVectorStream(stream, reg int) ([]fp16.Num, error) {
	if stream < 0 || stream >= len(m.streams) {
		return nil, fmt.Errorf("accel: stream %d out of range (%d)", stream, len(m.streams))
	}
	if reg < 0 || reg >= m.cfg.VRegs {
		return nil, fmt.Errorf("accel: vector register %d out of range", reg)
	}
	sc := m.streams[stream]
	if sc.vrf[reg] == nil {
		return nil, fmt.Errorf("accel: vector register %d is empty", reg)
	}
	return append([]fp16.Num{}, sc.vrf[reg]...), nil
}
