package accel

import (
	"errors"
	"math"
	"testing"

	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
)

func smallConfig() Config {
	return Config{
		Name: "test", NativeDim: 4, NumTiles: 1,
		VRegs: 16, MRegs: 4, VecLen: 4, DRAMWords: 4096,
		InstrBufBytes: 4096, MantissaBits: 9,
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.NativeDim = 0 },
		func(c *Config) { c.NumTiles = -1 },
		func(c *Config) { c.VRegs = 0 },
		func(c *Config) { c.MRegs = 300 },
		func(c *Config) { c.VecLen = 0 },
		func(c *Config) { c.DRAMWords = 0 },
	}
	for i, mod := range bads {
		c := smallConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(16)
	if m.Size() != 16 {
		t.Errorf("Size = %d", m.Size())
	}
	if _, err := m.ReadWords(10, 10); !errors.Is(err, ErrDRAMRange) {
		t.Error("overflow read must fail")
	}
	if err := m.WriteWords(-1, make([]fp16.Num, 1)); !errors.Is(err, ErrDRAMRange) {
		t.Error("negative write must fail")
	}
	want := []fp16.Num{1, 2, 3}
	if err := m.WriteWords(4, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadWords(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %v", i, got[i])
		}
	}
}

func runProgram(t *testing.T, src string, setup func(*Machine)) *Machine {
	t.Helper()
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(m)
	}
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	return m
}

func writeVec(t *testing.T, m *Machine, addr int, xs []float64) {
	t.Helper()
	if err := m.DRAMPort().WriteWords(addr, fp16.FromSlice64(xs)); err != nil {
		t.Fatal(err)
	}
}

func readVecReg(t *testing.T, m *Machine, reg int) []float64 {
	t.Helper()
	v, err := m.ReadVector(reg)
	if err != nil {
		t.Fatal(err)
	}
	return fp16.ToSlice64(v)
}

func TestVectorOps(t *testing.T) {
	m := runProgram(t, `
		v_rd r0, 0
		v_rd r1, 4
		vv_add r2, r0, r1
		vv_sub r3, r0, r1
		vv_mul r4, r0, r1
		v_pass r5, r4
		v_const r6, 0x4000
		v_rsub r7, r0, 0x3c00
		end_chain`,
		func(m *Machine) {
			writeVec(t, m, 0, []float64{1, 2, 3, 4})
			writeVec(t, m, 4, []float64{0.5, 0.5, -1, 2})
		})
	check := func(reg int, want []float64) {
		got := readVecReg(t, m, reg)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("r%d[%d] = %v, want %v", reg, i, got[i], want[i])
			}
		}
	}
	check(2, []float64{1.5, 2.5, 2, 6})
	check(3, []float64{0.5, 1.5, 4, 2})
	check(4, []float64{0.5, 1, -3, 8})
	check(5, []float64{0.5, 1, -3, 8})
	check(6, []float64{2, 2, 2, 2})
	check(7, []float64{0, -1, -2, -3})
}

func TestActivations(t *testing.T) {
	m := runProgram(t, `
		v_rd r0, 0
		v_sigm r1, r0
		v_tanh r2, r0
		v_relu r3, r0
		end_chain`,
		func(m *Machine) { writeVec(t, m, 0, []float64{0, -1, 1, -20}) })
	sig := readVecReg(t, m, 1)
	if sig[0] != 0.5 || sig[3] >= 0.001 {
		t.Errorf("sigmoid = %v", sig)
	}
	tanh := readVecReg(t, m, 2)
	if tanh[0] != 0 || math.Abs(tanh[2]-0.7616) > 0.001 {
		t.Errorf("tanh = %v", tanh)
	}
	relu := readVecReg(t, m, 3)
	if relu[1] != 0 || relu[2] != 1 || relu[3] != 0 {
		t.Errorf("relu = %v", relu)
	}
}

func TestMVMul(t *testing.T) {
	// 4x4 identity-ish matrix times vector.
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ConfigureMatrix(0, 4, 4); err != nil {
		t.Fatal(err)
	}
	mat := []float64{
		2, 0, 0, 0,
		0, 1, 0, 0,
		1, 1, 0, 0,
		0, 0, 0, -1,
	}
	writeVec(t, m, 0, mat)
	writeVec(t, m, 16, []float64{1, 2, 3, 4})
	p, _ := isa.Assemble(`
		m_rd r0, 0
		v_rd r1, 16
		mv_mul r2, r0, r1
		v_wr r2, 32
		end_chain`)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	got := readVecReg(t, m, 2)
	want := []float64{2, 2, 3, -4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Errorf("mv_mul[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Result also landed in DRAM.
	back, err := m.DRAMPort().ReadWords(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fp16.ToSlice64(back)[0] != got[0] {
		t.Error("v_wr did not store the register")
	}
	st := m.Stats()
	if st.MACs != 16 {
		t.Errorf("MACs = %d, want 16", st.MACs)
	}
	if st.ByOp[isa.OpMVMul] != 1 {
		t.Errorf("op counts = %v", st.ByOp)
	}
}

func TestRunErrors(t *testing.T) {
	m, _ := New(smallConfig())
	cases := []string{
		"v_sigm r1, r0\nend_chain",     // read before write
		"v_rd r0, 999999\nend_chain",   // DRAM out of range
		"mv_mul r1, r0, r2\nend_chain", // matrix not loaded
		"m_rd r0, 0\nend_chain",        // matrix shape not configured
	}
	for _, src := range cases {
		p, err := isa.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(p); err == nil {
			t.Errorf("program %q must fail", src)
		}
	}
}

func TestLengthMismatch(t *testing.T) {
	m, _ := New(smallConfig())
	m.ConfigureMatrix(0, 2, 2)
	writeVec(t, m, 0, []float64{1, 0, 0, 1})
	writeVec(t, m, 8, []float64{1, 2, 3, 4})
	p, _ := isa.Assemble(`
		m_rd r0, 0
		v_rd r1, 8
		mv_mul r2, r0, r1
		end_chain`)
	if err := m.Run(p); err == nil {
		t.Error("mv_mul with mismatched vector length must fail")
	}
}

func TestInstructionBufferLimit(t *testing.T) {
	cfg := smallConfig()
	cfg.InstrBufBytes = 16 // room for 2 instructions
	m, _ := New(cfg)
	p, _ := isa.Assemble("v_const r0, 0\nv_const r1, 0\nv_const r2, 0\nend_chain")
	if err := m.Run(p); !errors.Is(err, ErrProgramTooLarge) {
		t.Errorf("Run = %v, want ErrProgramTooLarge", err)
	}
}

func TestEndChainStopsExecution(t *testing.T) {
	m := runProgram(t, `
		v_const r0, 0x3c00
		end_chain
		v_const r0, 0x4000`, nil)
	if got := readVecReg(t, m, 0); got[0] != 1 {
		t.Errorf("instruction after end_chain executed: %v", got)
	}
	if m.Stats().Instructions != 2 {
		t.Errorf("executed %d instructions, want 2", m.Stats().Instructions)
	}
}

func TestResetStats(t *testing.T) {
	m := runProgram(t, "v_const r0, 0\nend_chain", nil)
	if m.Stats().Instructions == 0 {
		t.Fatal("no stats recorded")
	}
	m.ResetStats()
	if m.Stats().Instructions != 0 || len(m.Stats().ByOp) != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestConfigureMatrixErrors(t *testing.T) {
	m, _ := New(smallConfig())
	if err := m.ConfigureMatrix(99, 2, 2); err == nil {
		t.Error("register out of range")
	}
	if err := m.ConfigureMatrix(0, 0, 2); err == nil {
		t.Error("bad shape")
	}
}

func TestReadVectorErrors(t *testing.T) {
	m, _ := New(smallConfig())
	if _, err := m.ReadVector(99); err == nil {
		t.Error("register out of range")
	}
	if _, err := m.ReadVector(0); err == nil {
		t.Error("empty register")
	}
}
