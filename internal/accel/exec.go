package accel

import (
	"errors"
	"fmt"
	"sync"

	"mlvfpga/internal/bfp"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
)

// The MFU activation functions are pure maps over 16-bit inputs, so the
// simulator models them the way the hardware does: as lookup tables, built
// once from the exact fp16 routines (bit-identical by construction).
var (
	actOnce  sync.Once
	sigmTab  [1 << 16]fp16.Num
	tanhTab  [1 << 16]fp16.Num
	expTab   [1 << 16]fp16.Num
	recipTab [1 << 16]fp16.Num
)

func actTables() (sigm, tanh, exp, recip *[1 << 16]fp16.Num) {
	actOnce.Do(func() {
		for i := 0; i < 1<<16; i++ {
			sigmTab[i] = fp16.Sigmoid(fp16.Num(i))
			tanhTab[i] = fp16.Tanh(fp16.Num(i))
			expTab[i] = fp16.Exp(fp16.Num(i))
			recipTab[i] = fp16.Recip(fp16.Num(i))
		}
	})
	return &sigmTab, &tanhTab, &expTab, &recipTab
}

// streamCtx is one batch stream's architectural and scratch state: a
// private vector register file plus the preallocated buffers the
// steady-state step loop reuses instead of allocating per instruction.
type streamCtx struct {
	off int // DRAM offset applied to banked (>= window base) addresses

	vrf [][]fp16.Num
	ver []uint64 // bumped on every write to the corresponding vreg

	// qblk memoizes the BFP quantization of each vector register; qver
	// records the register version it was computed at. In an LSTM step the
	// same x/h vector feeds four mv_muls, so the memo cuts vector
	// quantization 4x.
	qver []uint64
	qblk [][]bfp.Block

	f64  []float64 // float64 staging for quantization
	prod []float64 // mv_mul product staging
}

func (m *Machine) newStream() *streamCtx {
	return &streamCtx{
		vrf:  make([][]fp16.Num, m.cfg.VRegs),
		ver:  make([]uint64, m.cfg.VRegs),
		qver: make([]uint64, m.cfg.VRegs),
		qblk: make([][]bfp.Block, m.cfg.VRegs),
	}
}

func (m *Machine) ensureStreams(n int) {
	for len(m.streams) < n {
		m.streams = append(m.streams, m.newStream())
	}
	for len(m.bvecs) < n {
		m.bvecs = append(m.bvecs, nil)
		m.bprods = append(m.bprods, nil)
	}
}

// StreamWindow describes how a batched execution banks DRAM: addresses at
// or above Base are per-stream (stream s accesses addr+Offsets[s]); lower
// addresses are shared across streams (weights, biases, code constants).
// m_rd addresses are never banked — the whole point of batching is that
// every stream multiplies against the same stationary tile.
type StreamWindow struct {
	Base    int
	Offsets []int
}

// ErrProgramTooLarge is returned when a program exceeds the instruction
// buffer.
var ErrProgramTooLarge = errors.New("accel: program exceeds instruction buffer")

// ErrNoStreams is returned by RunBatch when the window has no offsets.
var ErrNoStreams = errors.New("accel: RunBatch requires at least one stream")

// ErrStreamRange is returned by RunStreams for a negative stream index or
// mismatched streams/offsets lengths.
var ErrStreamRange = errors.New("accel: bad stream selection")

// Run executes the program to completion (through end_chain or the end of
// the sequence) in stream 0.
func (m *Machine) Run(p isa.Program) error {
	m.base = 0
	m.streams[0].off = 0
	return m.exec(p, m.streams[:1])
}

// RunBatch executes one program over len(w.Offsets) input streams.
// Stream s runs against a private register file, with DRAM accesses at or
// above w.Base shifted by w.Offsets[s]; each m_rd tile is fetched and
// quantized (or served from cache) once for the whole batch. The results —
// register files, DRAM writes and accumulated ExecStats — are bit-identical
// to running the program sequentially once per stream, provided the
// per-stream DRAM ranges do not overlap each other or the shared window.
func (m *Machine) RunBatch(p isa.Program, w StreamWindow) error {
	if len(w.Offsets) == 0 {
		return ErrNoStreams
	}
	m.ensureStreams(len(w.Offsets))
	for i, off := range w.Offsets {
		m.streams[i].off = off
	}
	m.base = w.Base
	return m.exec(p, m.streams[:len(w.Offsets)])
}

// RunStreams executes p over an explicit subset of the machine's streams:
// streams[i] selects a stream context and offsets[i] is the banking offset
// applied to its DRAM accesses at or above base. Unlike RunBatch, the
// selection need not be a contiguous prefix and the offsets are free per
// call, so a slot-granular serving engine can step a cohort of streams
// sitting at different positions of their programs: register files persist
// across calls, and each stream's results are bit-identical to running its
// instruction sequence alone (per-stream state is private; shared tiles
// are read-only).
func (m *Machine) RunStreams(p isa.Program, base int, streams, offsets []int) error {
	if len(streams) == 0 {
		return ErrNoStreams
	}
	if len(streams) != len(offsets) {
		return fmt.Errorf("%w: %d streams, %d offsets", ErrStreamRange, len(streams), len(offsets))
	}
	max := 0
	for _, s := range streams {
		if s < 0 {
			return fmt.Errorf("%w: stream %d", ErrStreamRange, s)
		}
		if s > max {
			max = s
		}
	}
	m.ensureStreams(max + 1)
	if cap(m.runScs) < len(streams) {
		m.runScs = make([]*streamCtx, len(streams))
	}
	scs := m.runScs[:len(streams)]
	for i, s := range streams {
		scs[i] = m.streams[s]
		scs[i].off = offsets[i]
	}
	m.base = base
	return m.exec(p, scs)
}

func (m *Machine) exec(p isa.Program, scs []*streamCtx) error {
	if m.cfg.InstrBufBytes > 0 && p.Bytes() > m.cfg.InstrBufBytes {
		return fmt.Errorf("%w: %d > %d bytes", ErrProgramTooLarge, p.Bytes(), m.cfg.InstrBufBytes)
	}
	for pc, ins := range p {
		done, err := m.stepAll(ins, scs)
		if err != nil {
			return fmt.Errorf("accel: pc %d (%s): %w", pc, ins, err)
		}
		if done {
			return nil
		}
	}
	return nil
}

// stepAll executes one instruction across every stream. Stats are counted
// once per stream so a batched run accumulates exactly what the equivalent
// sequential runs would.
func (m *Machine) stepAll(ins isa.Instr, scs []*streamCtx) (done bool, err error) {
	n := len(scs)
	m.stats.Instructions += n
	m.stats.ByOp[ins.Op] += n
	switch ins.Op {
	case isa.OpMRead:
		return false, m.mRead(ins, n)
	case isa.OpMVMul:
		return false, m.mvMul(ins, scs)
	case isa.OpEndChain:
		return true, nil
	default:
		for _, sc := range scs {
			if err := m.step1(sc, ins); err != nil {
				return false, err
			}
		}
		return false, nil
	}
}

func (m *Machine) vreg(r uint8) (int, error) {
	if int(r) >= m.cfg.VRegs {
		return 0, fmt.Errorf("vector register r%d out of range (%d)", r, m.cfg.VRegs)
	}
	return int(r), nil
}

func (m *Machine) loadedV(sc *streamCtx, r uint8) ([]fp16.Num, error) {
	idx, err := m.vreg(r)
	if err != nil {
		return nil, err
	}
	if sc.vrf[idx] == nil {
		return nil, fmt.Errorf("vector register r%d read before write", r)
	}
	return sc.vrf[idx], nil
}

// dstBuf returns vector register idx resized to n elements, reusing its
// backing array when capacity allows (the steady-state case: register
// shapes are fixed by the program, so after the first run every write
// lands in a preallocated buffer). The register's version is bumped,
// invalidating its quantization memo.
func (m *Machine) dstBuf(sc *streamCtx, idx, n int) []fp16.Num {
	buf := sc.vrf[idx]
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		c := n
		if c < m.cfg.VecLen {
			c = m.cfg.VecLen
		}
		buf = make([]fp16.Num, n, c)
	}
	sc.vrf[idx] = buf
	sc.ver[idx]++
	return buf
}

func ensureF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// bankAddr applies the stream's banking offset to a DRAM address inside
// the batched window.
func (m *Machine) bankAddr(sc *streamCtx, imm uint32) int {
	addr := int(imm)
	if sc.off != 0 && addr >= m.base {
		addr += sc.off
	}
	return addr
}

// shardLen decodes a length-register selector: 0 = VecLen, 1 = VecLen/2,
// 2 = VecLen/4.
func (m *Machine) shardLen(mode uint8) (int, error) {
	switch mode {
	case 0:
		return m.cfg.VecLen, nil
	case 1:
		return m.cfg.VecLen / 2, nil
	case 2:
		return m.cfg.VecLen / 4, nil
	}
	return 0, fmt.Errorf("unknown vector length mode %d", mode)
}

// mRead executes m_rd once for the whole batch: on a tile-cache hit the
// register already holds the quantized tile for that DRAM range and shape;
// on a miss the tile is read and quantized into the packed layout and the
// cache entry recorded. Stats mirror nStreams sequential runs: the first
// sequential run would miss and the remaining nStreams-1 would hit.
func (m *Machine) mRead(ins isa.Instr, nStreams int) error {
	if int(ins.Dst) >= m.cfg.MRegs {
		return fmt.Errorf("matrix register r%d out of range (%d)", ins.Dst, m.cfg.MRegs)
	}
	shape := m.mshape[ins.Dst]
	if shape.rows == 0 {
		return fmt.Errorf("matrix register r%d has no configured shape", ins.Dst)
	}
	// Matrix addresses are never banked: weights are shared by all streams.
	addr := int(ins.Imm)
	words := shape.rows * shape.cols
	t := &m.tiles[ins.Dst]
	if t.valid && t.addr == addr && t.words == words {
		m.stats.TileCacheHits += int64(nStreams)
		return nil
	}
	vals, err := m.dram.ReadWords(addr, words)
	if err != nil {
		return err
	}
	mat, err := m.codec.QuantizeMatrixPacked(fp16.ToSlice64(vals), shape.rows, shape.cols, m.cfg.NativeDim)
	if err != nil {
		return err
	}
	m.mrf[ins.Dst] = &matrixReg{rows: shape.rows, cols: shape.cols, mat: mat}
	m.tiles[ins.Dst] = tileEntry{addr: addr, words: words, rows: shape.rows, cols: shape.cols, valid: true}
	m.stats.DRAMReads += int64(words)
	m.stats.TileCacheMisses++
	m.stats.TileCacheHits += int64(nStreams - 1)
	return nil
}

// mvMul executes one matrix-vector multiply for every stream against the
// stationary tile: per-stream vectors are quantized (through the per-
// register memo), gathered, and multiplied rows-outer/streams-inner so the
// packed tile streams through the cache once per batch.
func (m *Machine) mvMul(ins isa.Instr, scs []*streamCtx) error {
	dst, err := m.vreg(ins.Dst)
	if err != nil {
		return err
	}
	if int(ins.Src1) >= m.cfg.MRegs || m.mrf[ins.Src1] == nil {
		return fmt.Errorf("matrix register r%d not loaded", ins.Src1)
	}
	mr := m.mrf[ins.Src1]
	src := int(ins.Src2)
	for si, sc := range scs {
		vec, err := m.loadedV(sc, ins.Src2)
		if err != nil {
			return err
		}
		if len(vec) != mr.cols {
			return fmt.Errorf("mv_mul shape mismatch: matrix %dx%d, vector %d", mr.rows, mr.cols, len(vec))
		}
		if sc.qver[src] != sc.ver[src] {
			f := ensureF64(&sc.f64, len(vec))
			fp16.ToSlice64Into(f, vec)
			qb, err := m.codec.QuantizeVectorInto(sc.qblk[src], f, m.cfg.NativeDim)
			if err != nil {
				return err
			}
			sc.qblk[src] = qb
			sc.qver[src] = sc.ver[src]
		}
		m.bvecs[si] = sc.qblk[src]
		m.bprods[si] = ensureF64(&sc.prod, mr.rows)
	}
	if err := mr.mat.MatVecBatchInto(m.bprods[:len(scs)], m.bvecs[:len(scs)]); err != nil {
		return err
	}
	for si, sc := range scs {
		out := m.dstBuf(sc, dst, mr.rows)
		fp16.FromSlice64Into(out, m.bprods[si])
		m.stats.MACs += int64(mr.rows) * int64(mr.cols)
	}
	return nil
}

// step1 executes one non-batched-special instruction in one stream.
// Element-wise destinations may alias their sources: each output element
// depends only on the same-index input elements, which are read before the
// write (the scratch-arena aliasing rule documented in DESIGN.md §7).
func (m *Machine) step1(sc *streamCtx, ins isa.Instr) error {
	switch ins.Op {
	case isa.OpVRead:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return err
		}
		// Src2 selects the vector length register: 0 = full VecLen,
		// 1 = VecLen/2, 2 = VecLen/4 (scaled-down accelerators operate on
		// 1/n shards of the hidden dimension, §2.3).
		n, err := m.shardLen(ins.Src2)
		if err != nil {
			return err
		}
		buf := m.dstBuf(sc, dst, n)
		if err := m.dram.ReadWordsInto(buf, m.bankAddr(sc, ins.Imm)); err != nil {
			sc.vrf[dst] = nil // failed load leaves the register unreadable
			return err
		}
		m.stats.DRAMReads += int64(n)

	case isa.OpVWrite:
		src, err := m.loadedV(sc, ins.Src1)
		if err != nil {
			return err
		}
		if err := m.dram.WriteWords(m.bankAddr(sc, ins.Imm), src); err != nil {
			return err
		}
		m.stats.DRAMWrites += int64(len(src))

	case isa.OpVVAdd, isa.OpVVSub, isa.OpVVMul:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return err
		}
		a, err := m.loadedV(sc, ins.Src1)
		if err != nil {
			return err
		}
		b, err := m.loadedV(sc, ins.Src2)
		if err != nil {
			return err
		}
		if len(a) != len(b) {
			return fmt.Errorf("%s length mismatch: %d vs %d", ins.Op, len(a), len(b))
		}
		out := m.dstBuf(sc, dst, len(a))
		switch ins.Op {
		case isa.OpVVAdd:
			for i := range a {
				out[i] = fp16.Add(a[i], b[i])
			}
		case isa.OpVVSub:
			for i := range a {
				out[i] = fp16.Sub(a[i], b[i])
			}
		case isa.OpVVMul:
			for i := range a {
				out[i] = fp16.Mul(a[i], b[i])
			}
		}
		m.stats.VectorOps += int64(len(a))

	case isa.OpVSigm, isa.OpVTanh, isa.OpVRelu, isa.OpVPass, isa.OpVExp, isa.OpVRecip:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return err
		}
		a, err := m.loadedV(sc, ins.Src1)
		if err != nil {
			return err
		}
		out := m.dstBuf(sc, dst, len(a))
		switch ins.Op {
		case isa.OpVSigm:
			for i, x := range a {
				out[i] = m.sigm[x]
			}
		case isa.OpVTanh:
			for i, x := range a {
				out[i] = m.tanh[x]
			}
		case isa.OpVExp:
			for i, x := range a {
				out[i] = m.exp[x]
			}
		case isa.OpVRecip:
			for i, x := range a {
				out[i] = m.recip[x]
			}
		case isa.OpVRelu:
			for i, x := range a {
				if fp16.Less(x, fp16.PositiveZero) {
					out[i] = fp16.PositiveZero
				} else {
					out[i] = x
				}
			}
		case isa.OpVPass:
			copy(out, a)
		}
		m.stats.VectorOps += int64(len(a))

	case isa.OpVConst:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return err
		}
		// Src1 selects the length register, as for v_rd.
		n, err := m.shardLen(ins.Src1)
		if err != nil {
			return err
		}
		out := m.dstBuf(sc, dst, n)
		c := fp16.Num(ins.Imm)
		for i := range out {
			out[i] = c
		}
		m.stats.VectorOps += int64(len(out))

	case isa.OpVRsub:
		dst, err := m.vreg(ins.Dst)
		if err != nil {
			return err
		}
		a, err := m.loadedV(sc, ins.Src1)
		if err != nil {
			return err
		}
		c := fp16.Num(ins.Imm)
		out := m.dstBuf(sc, dst, len(a))
		for i, x := range a {
			out[i] = fp16.Sub(c, x)
		}
		m.stats.VectorOps += int64(len(a))

	default:
		return fmt.Errorf("unimplemented opcode %v", ins.Op)
	}
	return nil
}
