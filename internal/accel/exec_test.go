package accel

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"mlvfpga/internal/isa"
)

// mvmMachine builds a warm-able machine with a 4x4 matrix at DRAM 0 and an
// input vector slot at 16.
func mvmMachine(t *testing.T) (*Machine, isa.Program) {
	t.Helper()
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ConfigureMatrix(0, 4, 4); err != nil {
		t.Fatal(err)
	}
	writeVec(t, m, 0, []float64{
		2, 0, 0, 0,
		0, 1, 0, 0,
		1, 1, 0, 0,
		0, 0, 0, -1,
	})
	writeVec(t, m, 16, []float64{1, 2, 3, 4})
	p, err := isa.Assemble(`
		m_rd r0, 0
		v_rd r1, 16
		mv_mul r2, r0, r1
		v_wr r2, 32
		end_chain`)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestTileCacheHitsAcrossRuns(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TileCacheMisses != 1 || st.TileCacheHits != 0 {
		t.Fatalf("cold run: misses=%d hits=%d, want 1/0", st.TileCacheMisses, st.TileCacheHits)
	}
	reads := st.DRAMReads
	for i := 0; i < 3; i++ {
		if err := m.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	st = m.Stats()
	if st.TileCacheMisses != 1 || st.TileCacheHits != 3 {
		t.Errorf("warm runs: misses=%d hits=%d, want 1/3", st.TileCacheMisses, st.TileCacheHits)
	}
	// Warm m_rd reads no DRAM; only the 4-word v_rd per run.
	if got := st.DRAMReads - reads; got != 3*4 {
		t.Errorf("warm DRAM reads = %d, want 12", got)
	}
}

func TestTileCacheInvalidatedByOverlappingWrite(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	// Overwrite one word inside the cached tile through the host port.
	writeVec(t, m, 5, []float64{3}) // matrix[1][1]: 1 -> 3
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TileCacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (write must invalidate)", st.TileCacheMisses)
	}
	got := readVecReg(t, m, 2)
	want := []float64{2, 6, 3, -4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Errorf("mv_mul[%d] = %v, want %v (stale tile?)", i, got[i], want[i])
		}
	}
}

func TestTileCacheSurvivesNonOverlappingWrite(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	// The input slot at 16 and output at 32 do not overlap the tile [0,16).
	writeVec(t, m, 16, []float64{4, 3, 2, 1})
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TileCacheMisses != 1 || st.TileCacheHits != 1 {
		t.Errorf("misses=%d hits=%d, want 1/1", st.TileCacheMisses, st.TileCacheHits)
	}
	got := readVecReg(t, m, 2)
	want := []float64{8, 3, 7, -1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Errorf("mv_mul[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTileCacheInvalidatedByReshape(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	// Same shape: cache stays.
	if err := m.ConfigureMatrix(0, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.TileCacheMisses != 1 || st.TileCacheHits != 1 {
		t.Fatalf("same-shape reconfigure: misses=%d hits=%d, want 1/1", st.TileCacheMisses, st.TileCacheHits)
	}
	// New shape: must requantize.
	if err := m.ConfigureMatrix(0, 2, 4); err != nil {
		t.Fatal(err)
	}
	p2, err := isa.Assemble("m_rd r0, 0\nend_chain")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(p2); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.TileCacheMisses != 2 {
		t.Errorf("reshape: misses = %d, want 2", st.TileCacheMisses)
	}
}

// TestSteadyStateZeroAllocs is the headline acceptance guard: a warm run
// touching every steady-state opcode performs no heap allocation.
func TestSteadyStateZeroAllocs(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ConfigureMatrix(0, 4, 4); err != nil {
		t.Fatal(err)
	}
	writeVec(t, m, 0, []float64{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1})
	writeVec(t, m, 16, []float64{0.5, -0.25, 1, -1})
	p, err := isa.Assemble(`
		m_rd r0, 0
		v_rd r1, 16
		mv_mul r2, r0, r1
		vv_add r3, r2, r1
		vv_sub r4, r3, r1
		vv_mul r5, r4, r2
		v_sigm r6, r5
		v_tanh r7, r5
		v_relu r8, r5
		v_pass r9, r8
		v_const r10, 0x3c00
		v_rsub r11, r5, 0x3c00
		v_wr r11, 32
		end_chain`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.Run(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Run allocates %v times, want 0", allocs)
	}
}

func TestCachedMReadZeroAllocs(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	mrd, err := isa.Assemble("m_rd r0, 0\nend_chain")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(mrd); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.Run(mrd); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached m_rd allocates %v times, want 0", allocs)
	}
}

func TestRunBatchRequiresStreams(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.RunBatch(p, StreamWindow{}); !errors.Is(err, ErrNoStreams) {
		t.Errorf("RunBatch with no offsets = %v, want ErrNoStreams", err)
	}
}

// TestRunBatchMatchesSequential checks the batch path against independent
// sequential machines at the ISA level: banked inputs/outputs, identical
// register results, identical accumulated stats.
func TestRunBatchMatchesSequential(t *testing.T) {
	const B = 3
	const base = 16 // words below 16 (the matrix) are shared
	mat := []float64{
		2, 0, 0, 0,
		0, 1, 0, 0,
		1, 1, 0, 0,
		0, 0, 0, -1,
	}
	inputs := [B][]float64{
		{1, 2, 3, 4},
		{-1, 0.5, 2, -0.25},
		{0, 0, 1, 0},
	}
	src := `
		m_rd r0, 0
		v_rd r1, 16
		mv_mul r2, r0, r1
		v_sigm r3, r2
		vv_add r4, r3, r1
		v_wr r4, 24
		end_chain`
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}

	// Batched machine: stream s's window is [16+8s, 24+8s).
	bm, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.ConfigureMatrix(0, 4, 4); err != nil {
		t.Fatal(err)
	}
	writeVec(t, bm, 0, mat)
	w := StreamWindow{Base: base}
	for s := 0; s < B; s++ {
		writeVec(t, bm, base+8*s, inputs[s])
		w.Offsets = append(w.Offsets, 8*s)
	}
	if err := bm.RunBatch(p, w); err != nil {
		t.Fatal(err)
	}

	// Reference: B independent sequential machines (same cold start).
	var wantStats ExecStats
	wantStats.ByOp = map[isa.Opcode]int{}
	for s := 0; s < B; s++ {
		sm, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := sm.ConfigureMatrix(0, 4, 4); err != nil {
			t.Fatal(err)
		}
		writeVec(t, sm, 0, mat)
		writeVec(t, sm, base, inputs[s])
		if err := sm.Run(p); err != nil {
			t.Fatal(err)
		}
		for _, reg := range []int{2, 3, 4} {
			want, err := sm.ReadVector(reg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bm.ReadVectorStream(s, reg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("stream %d r%d = %v, want %v (bit-exact)", s, reg, got, want)
			}
		}
		// Banked v_wr landed in the stream's window.
		got, err := bm.DRAMPort().ReadWords(24+8*s, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sm.DRAMPort().ReadWords(24, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stream %d DRAM output %v, want %v", s, got, want)
		}
		// Accumulate what B sequential runs on ONE machine would count:
		// the first misses the tile, later ones hit.
		st := sm.Stats()
		if s > 0 {
			st.TileCacheMisses = 0
			st.TileCacheHits = 1
			st.DRAMReads -= 16 // no tile refetch
		}
		wantStats.Instructions += st.Instructions
		wantStats.MACs += st.MACs
		wantStats.VectorOps += st.VectorOps
		wantStats.DRAMReads += st.DRAMReads
		wantStats.DRAMWrites += st.DRAMWrites
		wantStats.TileCacheHits += st.TileCacheHits
		wantStats.TileCacheMisses += st.TileCacheMisses
		for op, c := range st.ByOp {
			wantStats.ByOp[op] += c
		}
	}
	if got := bm.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Errorf("batched stats = %+v, want %+v", got, wantStats)
	}
}

func TestUnwrapDRAM(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.DRAMPort().(*Memory); ok {
		t.Fatal("DRAMPort should be wrapped for write tracking")
	}
	if _, ok := UnwrapDRAM(m.DRAMPort()).(*Memory); !ok {
		t.Errorf("UnwrapDRAM = %T, want *Memory", UnwrapDRAM(m.DRAMPort()))
	}
	// Unwrapping a bare DRAM is the identity.
	mem := NewMemory(4)
	if UnwrapDRAM(mem) != DRAM(mem) {
		t.Error("UnwrapDRAM of a bare Memory must return it")
	}
}

func TestStatsMinus(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	d := m.Stats().Minus(before)
	if d.Instructions != 5 || d.ByOp[isa.OpMVMul] != 1 {
		t.Errorf("delta = %+v, want one run's worth", d)
	}
	if d.TileCacheHits != 1 || d.TileCacheMisses != 0 {
		t.Errorf("delta cache stats = %d/%d, want 1 hit", d.TileCacheHits, d.TileCacheMisses)
	}
}

func TestRunStreamsValidation(t *testing.T) {
	m, p := mvmMachine(t)
	if err := m.RunStreams(p, 16, nil, nil); !errors.Is(err, ErrNoStreams) {
		t.Errorf("empty selection = %v, want ErrNoStreams", err)
	}
	if err := m.RunStreams(p, 16, []int{0, 1}, []int{0}); !errors.Is(err, ErrStreamRange) {
		t.Errorf("mismatched offsets = %v, want ErrStreamRange", err)
	}
	if err := m.RunStreams(p, 16, []int{-1}, []int{0}); !errors.Is(err, ErrStreamRange) {
		t.Errorf("negative stream = %v, want ErrStreamRange", err)
	}
}

// TestRunStreamsMatchesRunBatch runs the same program over the same banked
// windows through RunStreams (non-contiguous selection, explicit offsets)
// and RunBatch, and demands bit-identical registers and DRAM.
func TestRunStreamsMatchesRunBatch(t *testing.T) {
	const base = 16
	mat := []float64{
		2, 0, 0, 0,
		0, 1, 0, 0,
		1, 1, 0, 0,
		0, 0, 0, -1,
	}
	inputs := [][]float64{
		{1, 2, 3, 4},
		{-1, 0.5, 2, -0.25},
		{0, 0, 1, 0},
	}
	src := `
		m_rd r0, 0
		v_rd r1, 16
		mv_mul r2, r0, r1
		v_sigm r3, r2
		v_wr r3, 48
		end_chain`
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Machine {
		m, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ConfigureMatrix(0, 4, 4); err != nil {
			t.Fatal(err)
		}
		writeVec(t, m, 0, mat)
		for s, in := range inputs {
			writeVec(t, m, base+8*s, in)
		}
		return m
	}

	bm := build()
	if err := bm.RunBatch(p, StreamWindow{Base: base, Offsets: []int{0, 8, 16}}); err != nil {
		t.Fatal(err)
	}
	sm := build()
	// Same work, issued as two slot-granular calls over a shuffled,
	// non-contiguous stream selection.
	if err := sm.RunStreams(p, base, []int{2, 0}, []int{16, 0}); err != nil {
		t.Fatal(err)
	}
	if err := sm.RunStreams(p, base, []int{1}, []int{8}); err != nil {
		t.Fatal(err)
	}
	for s := range inputs {
		want, err := bm.ReadVectorStream(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sm.ReadVectorStream(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stream %d r3 = %v, want %v (bit-exact)", s, got, want)
		}
		a, err := bm.DRAMPort().ReadWords(48+8*s, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sm.DRAMPort().ReadWords(48+8*s, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("stream %d DRAM output %v, want %v", s, b, a)
		}
	}
}

// TestRunStreamsPersistentState drives two streams through a two-phase
// program split (load then accumulate) with a third stream admitted after
// the first phase — the continuous-batching access pattern: register state
// must persist across RunStreams calls and late admission must not
// perturb the running streams.
func TestRunStreamsPersistentState(t *testing.T) {
	const base = 16
	load, err := isa.Assemble(`
		v_rd r1, 16`)
	if err != nil {
		t.Fatal(err)
	}
	accum, err := isa.Assemble(`
		vv_add r1, r1, r1
		v_wr r1, 24`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		writeVec(t, m, base+8*s, []float64{float64(s + 1), 0, 1, -2})
	}
	// Streams 0 and 1 load, then stream 2 is admitted and loads while 0/1
	// accumulate in the same cohort later.
	if err := m.RunStreams(load, base, []int{0, 1}, []int{0, 8}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunStreams(load, base, []int{2}, []int{16}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunStreams(accum, base, []int{0, 1, 2}, []int{0, 8, 16}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		got, err := m.DRAMPort().ReadWords(24+8*s, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{2 * float64(s+1), 0, 2, -4}
		for i, w := range want {
			if v := got[i].Float64(); v != w {
				t.Errorf("stream %d out[%d] = %v, want %v", s, i, v, w)
			}
		}
	}
}
