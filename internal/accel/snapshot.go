package accel

import (
	"fmt"

	"mlvfpga/internal/fp16"
)

// SnapshotStream returns a copy of a stream's architectural vector
// register file: one slice per register, nil for registers the stream
// never wrote. Only architectural state is captured — the quantization
// memos (qver/qblk) are derived caches that RestoreStream invalidates,
// and requantization is deterministic, so a restored stream's numerics
// are bit-identical to the original's.
func (m *Machine) SnapshotStream(stream int) ([][]fp16.Num, error) {
	if stream < 0 || stream >= len(m.streams) {
		return nil, fmt.Errorf("accel: stream %d out of range (%d)", stream, len(m.streams))
	}
	sc := m.streams[stream]
	regs := make([][]fp16.Num, m.cfg.VRegs)
	for i, v := range sc.vrf {
		if v != nil {
			regs[i] = append([]fp16.Num{}, v...)
		}
	}
	return regs, nil
}

// RestoreStream installs a snapshotted register file into a stream,
// growing the stream table if needed. Every register's version is bumped
// so the next mv_mul requantizes from the restored values instead of a
// stale memo; a nil entry leaves the register unwritten (reading it
// errors, exactly as before the snapshot).
func (m *Machine) RestoreStream(stream int, regs [][]fp16.Num) error {
	if stream < 0 {
		return fmt.Errorf("accel: stream %d out of range", stream)
	}
	if len(regs) != m.cfg.VRegs {
		return fmt.Errorf("accel: restore has %d registers, machine has %d", len(regs), m.cfg.VRegs)
	}
	m.ensureStreams(stream + 1)
	sc := m.streams[stream]
	for i, v := range regs {
		if v == nil {
			sc.vrf[i] = nil
		} else {
			buf := sc.vrf[i]
			if cap(buf) >= len(v) {
				buf = buf[:len(v)]
			} else {
				buf = make([]fp16.Num, len(v))
			}
			copy(buf, v)
			sc.vrf[i] = buf
		}
		// ver only ever runs ahead of qver, so a bump always invalidates.
		sc.ver[i]++
	}
	return nil
}
