package artifactstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// On-disk blob layout, all integers little-endian:
//
//	offset  size  field
//	0       8     magic + format version ("MLVART01")
//	8       8     payload length in bytes
//	16      8     FNV-64a checksum of the payload
//	24      n     payload (codec-encoded artifact)
//
// The magic doubles as the layout version: any change to the framing or to
// a codec's wire format bumps the trailing digits, so a new binary treats
// old blobs as foreign files rather than corrupt ones. Writes go through a
// temp file plus rename, so a reader never observes a half-written blob —
// only complete blobs or blobs damaged at rest, which the checksum catches.

// blobMagic names the blob framing and its version.
const blobMagic = "MLVART01"

// blobHeaderLen is the fixed prefix before the payload.
const blobHeaderLen = len(blobMagic) + 8 + 8

// blobExt is the on-disk file suffix for stored artifacts.
const blobExt = ".mlva"

// ErrCorrupt marks a blob rejected by framing or checksum validation. The
// store treats it as a miss: the bad file is dropped and the artifact is
// recomputed and rewritten.
var ErrCorrupt = errors.New("artifactstore: corrupt blob")

// checksum is the blob payload digest: the same FNV-64a the structural
// hasher uses (see rtl.CanonHash), applied to raw bytes.
func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// blobSize is the on-disk footprint of a payload.
func blobSize(payloadLen int) int64 { return int64(blobHeaderLen + payloadLen) }

// encodeBlob frames a payload.
func encodeBlob(payload []byte) []byte {
	buf := make([]byte, blobHeaderLen+len(payload))
	copy(buf, blobMagic)
	binary.LittleEndian.PutUint64(buf[len(blobMagic):], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[len(blobMagic)+8:], checksum(payload))
	copy(buf[blobHeaderLen:], payload)
	return buf
}

// decodeBlob validates framing and checksum and returns the payload.
func decodeBlob(buf []byte) ([]byte, error) {
	if len(buf) < blobHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d header", ErrCorrupt, len(buf), blobHeaderLen)
	}
	if string(buf[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:len(blobMagic)])
	}
	n := binary.LittleEndian.Uint64(buf[len(blobMagic):])
	want := binary.LittleEndian.Uint64(buf[len(blobMagic)+8:])
	payload := buf[blobHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: %d payload bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	if got := checksum(payload); got != want {
		return nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// readBlob loads and validates one blob file. A missing file returns the
// underlying fs.ErrNotExist; a damaged one returns ErrCorrupt.
func readBlob(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeBlob(buf)
}

// writeBlob atomically persists a framed payload: temp file in the same
// directory, fsync-free write, rename into place.
func writeBlob(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeBlob(payload)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
