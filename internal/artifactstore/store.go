// Package artifactstore is the framework's persistent, content-addressed
// compilation cache — the durable half of the paper's "database of mapping
// results" (Fig. 7). Artifacts are addressed by a canonical structural hash
// of everything that determines the compilation product (see
// core.CompileKey), stored as versioned, checksummed blobs on disk, with an
// in-process LRU of decoded artifacts in front and a per-key singleflight
// guard so N concurrent requests for one design compute it exactly once.
//
// The store is value-agnostic: callers provide a Codec for their artifact
// type, and the store only ever sees opaque payload bytes. Corruption is
// never fatal — a blob rejected by checksum or decode is dropped, counted,
// recomputed and rewritten — so the cache can only ever make deploys
// faster, not wronger.
package artifactstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mlvfpga/internal/metrics"
)

// Key addresses one artifact: the fixed-width hex rendering of a canonical
// structural hash, optionally prefixed with a short kind tag
// (e.g. "compiled-9f8e7d6c5b4a3210"). Keys must be non-empty, at most 128
// bytes, and use only [a-z0-9._-] so they are safe as file names.
type Key string

func (k Key) valid() bool {
	if k == "" || len(k) > 128 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '.', c == '_':
		default:
			return false
		}
	}
	return true
}

// Codec (de)serializes one artifact type for blob storage. Decode must
// reject payloads it cannot faithfully reconstruct — a decode error is
// treated exactly like a checksum failure (drop, recompute, rewrite).
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// DefaultMaxMemEntries bounds the decoded-artifact LRU when Options leaves
// it zero. An entry is one fully compiled instance (~100s of KB), so the
// default comfortably covers the 10-instance catalog plus a fleet of
// distinct tenant designs.
const DefaultMaxMemEntries = 128

// Options configures a store.
type Options struct {
	// MaxMemEntries bounds the in-process LRU of decoded artifacts
	// (0 = DefaultMaxMemEntries).
	MaxMemEntries int
	// MaxDiskBytes bounds the total on-disk blob bytes. When a write
	// pushes past the bound, the oldest blobs (by modification time) are
	// evicted, never the one just written. 0 = unbounded.
	MaxDiskBytes int64
}

// Stats snapshots the store's counters. Hits = MemHits + DiskHits;
// Computes counts invocations of the caller's compute function, which is
// exactly the number of cold compiles the cache failed to absorb.
type Stats struct {
	Hits     int64
	MemHits  int64
	DiskHits int64
	Misses   int64
	Computes int64
	// SingleflightWaits counts calls that joined another caller's
	// in-flight computation instead of starting their own.
	SingleflightWaits int64
	MemEvictions      int64
	DiskEvictions     int64
	// CorruptDropped counts blobs rejected by framing, checksum, or codec
	// decode and removed from disk.
	CorruptDropped int64
	// WriteErrors counts failed blob writes (the artifact stays served
	// from memory; persistence is best-effort).
	WriteErrors int64
	BlobsOnDisk int64
	BytesOnDisk int64
}

// Store is a content-addressed artifact cache. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	mem     map[Key]*memEntry
	lruHead *memEntry // most recently used
	lruTail *memEntry
	flights map[Key]*flight
	disk    map[Key]int64 // on-disk blob size per key
	stats   Stats
}

// memEntry is one decoded artifact on the intrusive LRU list.
type memEntry struct {
	key        Key
	val        any
	prev, next *memEntry
}

// flight is one in-progress fill; followers block on done.
type flight struct {
	done chan struct{}
	val  any
	hit  bool
	err  error
}

// Open builds a store over dir, creating it if needed and indexing any
// existing blobs (sizes only; payloads are validated lazily on first use).
// An empty dir yields a memory-only store: no persistence, same LRU and
// singleflight semantics.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxMemEntries <= 0 {
		opts.MaxMemEntries = DefaultMaxMemEntries
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		mem:     map[Key]*memEntry{},
		flights: map[Key]*flight{},
		disk:    map[Key]int64{},
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifactstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifactstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, blobExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		key := Key(strings.TrimSuffix(name, blobExt))
		s.disk[key] = info.Size()
		s.stats.BlobsOnDisk++
		s.stats.BytesOnDisk += info.Size()
	}
	return s, nil
}

// NewMemory builds a memory-only store (no persistence), used by tests and
// the deterministic simulation harness.
func NewMemory(opts Options) *Store {
	s, err := Open("", opts)
	if err != nil {
		panic(err) // unreachable: the memory path cannot fail
	}
	return s
}

// Dir returns the backing directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) blobPath(key Key) string {
	return filepath.Join(s.dir, string(key)+blobExt)
}

// GetOrCompute returns the artifact for key, loading it from the memory
// LRU, then from disk, and finally by invoking compute. The hit result is
// true when the artifact came from cache and false when this call (or an
// in-flight call it joined) had to compute it. Concurrent calls for the
// same key are coalesced: exactly one runs the disk probe / compute, the
// rest block and share its result.
func (s *Store) GetOrCompute(key Key, codec Codec, compute func() (any, error)) (any, bool, error) {
	if !key.valid() {
		return nil, false, fmt.Errorf("artifactstore: invalid key %q", key)
	}
	if codec == nil || compute == nil {
		return nil, false, errors.New("artifactstore: nil codec or compute")
	}

	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		s.lruMoveFront(e)
		s.stats.Hits++
		s.stats.MemHits++
		v := e.val
		s.mu.Unlock()
		metrics.ArtifactHits.Add(1)
		return v, true, nil
	}
	if fl, ok := s.flights[key]; ok {
		s.stats.SingleflightWaits++
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		return fl.val, fl.hit, nil
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()

	fl.val, fl.hit, fl.err = s.fill(key, codec, compute)

	s.mu.Lock()
	delete(s.flights, key)
	if fl.err == nil {
		s.memInsertLocked(key, fl.val)
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.val, fl.hit, fl.err
}

// fill resolves one key without holding the store lock for the slow parts;
// the caller's flight entry guarantees exclusivity per key.
func (s *Store) fill(key Key, codec Codec, compute func() (any, error)) (any, bool, error) {
	if s.dir != "" {
		payload, err := readBlob(s.blobPath(key))
		switch {
		case err == nil:
			v, derr := codec.Decode(payload)
			if derr == nil {
				s.mu.Lock()
				s.stats.Hits++
				s.stats.DiskHits++
				s.mu.Unlock()
				metrics.ArtifactHits.Add(1)
				return v, true, nil
			}
			s.dropCorrupt(key)
		case errors.Is(err, ErrCorrupt):
			s.dropCorrupt(key)
		case errors.Is(err, fs.ErrNotExist):
			// plain miss
		default:
			// Unreadable for environmental reasons (permissions, IO):
			// fall through to recompute rather than failing the deploy.
		}
	}

	s.mu.Lock()
	s.stats.Misses++
	s.stats.Computes++
	s.mu.Unlock()
	metrics.ArtifactMisses.Add(1)
	metrics.ArtifactCompiles.Add(1)

	v, err := compute()
	if err != nil {
		return nil, false, err
	}
	if s.dir != "" {
		payload, eerr := codec.Encode(v)
		if eerr != nil {
			return nil, false, fmt.Errorf("artifactstore: encode %s: %w", key, eerr)
		}
		if werr := writeBlob(s.blobPath(key), payload); werr != nil {
			s.mu.Lock()
			s.stats.WriteErrors++
			s.mu.Unlock()
		} else {
			s.noteWrite(key, blobSize(len(payload)))
			s.evictDisk(key)
		}
	}
	return v, false, nil
}

// dropCorrupt removes a damaged blob and accounts for it.
func (s *Store) dropCorrupt(key Key) {
	_ = os.Remove(s.blobPath(key))
	s.mu.Lock()
	s.stats.CorruptDropped++
	if sz, ok := s.disk[key]; ok {
		delete(s.disk, key)
		s.stats.BlobsOnDisk--
		s.stats.BytesOnDisk -= sz
		metrics.ArtifactDiskBytes.Add(-sz)
	}
	s.mu.Unlock()
	metrics.ArtifactCorrupt.Add(1)
}

// noteWrite accounts a (re)written blob.
func (s *Store) noteWrite(key Key, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.disk[key]; ok {
		s.stats.BytesOnDisk -= old
		metrics.ArtifactDiskBytes.Add(-old)
	} else {
		s.stats.BlobsOnDisk++
	}
	s.disk[key] = size
	s.stats.BytesOnDisk += size
	metrics.ArtifactDiskBytes.Add(size)
}

// evictDisk enforces MaxDiskBytes by deleting the oldest blobs (by
// modification time, then name for determinism), never touching keep.
func (s *Store) evictDisk(keep Key) {
	if s.opts.MaxDiskBytes <= 0 {
		return
	}
	s.mu.Lock()
	over := s.stats.BytesOnDisk > s.opts.MaxDiskBytes
	var keys []Key
	if over {
		for k := range s.disk {
			if k != keep {
				keys = append(keys, k)
			}
		}
	}
	s.mu.Unlock()
	if !over {
		return
	}
	type cand struct {
		key   Key
		size  int64
		mtime int64
	}
	var cands []cand
	for _, k := range keys {
		info, err := os.Stat(s.blobPath(k))
		if err != nil {
			continue
		}
		cands = append(cands, cand{key: k, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mtime != cands[j].mtime {
			return cands[i].mtime < cands[j].mtime
		}
		return cands[i].key < cands[j].key
	})
	for _, c := range cands {
		s.mu.Lock()
		done := s.stats.BytesOnDisk <= s.opts.MaxDiskBytes
		s.mu.Unlock()
		if done {
			return
		}
		if err := os.Remove(s.blobPath(c.key)); err != nil {
			continue
		}
		s.mu.Lock()
		if sz, ok := s.disk[c.key]; ok {
			delete(s.disk, c.key)
			s.stats.BlobsOnDisk--
			s.stats.BytesOnDisk -= sz
			metrics.ArtifactDiskBytes.Add(-sz)
		}
		s.stats.DiskEvictions++
		s.mu.Unlock()
		metrics.ArtifactEvictions.Add(1)
	}
}

// memInsertLocked adds a decoded artifact to the LRU front, evicting the
// tail past capacity. Caller holds s.mu.
func (s *Store) memInsertLocked(key Key, val any) {
	if e, ok := s.mem[key]; ok {
		e.val = val
		s.lruMoveFront(e)
		return
	}
	e := &memEntry{key: key, val: val}
	s.mem[key] = e
	s.lruPushFront(e)
	for len(s.mem) > s.opts.MaxMemEntries {
		tail := s.lruTail
		s.lruUnlink(tail)
		delete(s.mem, tail.key)
		s.stats.MemEvictions++
		metrics.ArtifactEvictions.Add(1)
	}
}

func (s *Store) lruPushFront(e *memEntry) {
	e.prev = nil
	e.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

func (s *Store) lruUnlink(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) lruMoveFront(e *memEntry) {
	if s.lruHead == e {
		return
	}
	s.lruUnlink(e)
	s.lruPushFront(e)
}
