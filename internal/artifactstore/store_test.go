package artifactstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// jsonCodec round-trips a map payload; enough to exercise the store
// without dragging the compiler in.
type jsonCodec struct{}

func (jsonCodec) Encode(v any) ([]byte, error) { return json.Marshal(v) }

func (jsonCodec) Decode(data []byte) (any, error) {
	var m map[string]int
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return m, nil
}

func value(n int) map[string]int { return map[string]int{"n": n} }

func mustGet(t *testing.T, s *Store, key Key, n int) (any, bool) {
	t.Helper()
	v, hit, err := s.GetOrCompute(key, jsonCodec{}, func() (any, error) { return value(n), nil })
	if err != nil {
		t.Fatalf("GetOrCompute(%s): %v", key, err)
	}
	return v, hit
}

func TestBlobRoundTrip(t *testing.T) {
	payload := []byte("the artifact payload")
	buf := encodeBlob(payload)
	got, err := decodeBlob(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestBlobRejectsDamage(t *testing.T) {
	payload := []byte("some bytes worth caching")
	buf := encodeBlob(payload)
	cases := map[string][]byte{
		"empty":     {},
		"truncated": buf[:len(buf)-3],
		"short":     buf[:blobHeaderLen-1],
		"badmagic":  append([]byte("XXVART01"), buf[8:]...),
	}
	flipped := append([]byte{}, buf...)
	flipped[blobHeaderLen+2] ^= 0x40
	cases["bitflip"] = flipped
	for name, c := range cases {
		if _, err := decodeBlob(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestMemoryHitAndSingleCompute(t *testing.T) {
	s := NewMemory(Options{})
	v, hit := mustGet(t, s, "k1", 7)
	if hit {
		t.Fatal("first lookup was a hit")
	}
	if v.(map[string]int)["n"] != 7 {
		t.Fatalf("value = %v", v)
	}
	v2, hit2 := mustGet(t, s, "k1", 999) // compute must not run again
	if !hit2 || v2.(map[string]int)["n"] != 7 {
		t.Fatalf("second lookup hit=%v v=%v", hit2, v2)
	}
	st := s.Stats()
	if st.Computes != 1 || st.Hits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, s1, "persisted", 42)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, hit := mustGet(t, s2, "persisted", 0)
	if !hit {
		t.Fatal("reopened store recomputed instead of reading the blob")
	}
	if v.(map[string]int)["n"] != 42 {
		t.Fatalf("value = %v", v)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Computes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptBlobFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustGet(t, s1, "damaged", 5)
	path := filepath.Join(dir, "damaged"+blobExt)

	for name, damage := range map[string]func([]byte) []byte{
		"truncate": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage(buf), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			v, hit := mustGet(t, s, "damaged", 5)
			if hit {
				t.Fatal("damaged blob served as a hit")
			}
			if v.(map[string]int)["n"] != 5 {
				t.Fatalf("value = %v", v)
			}
			st := s.Stats()
			if st.CorruptDropped != 1 || st.Computes != 1 {
				t.Fatalf("stats = %+v", st)
			}
			// The bad entry must have been replaced with a valid blob.
			if _, err := readBlob(path); err != nil {
				t.Fatalf("rewritten blob unreadable: %v", err)
			}
		})
	}
}

func TestUndecodablePayloadIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A well-framed blob whose payload the codec rejects: valid checksum,
	// garbage JSON.
	path := filepath.Join(dir, "k"+blobExt)
	if err := os.WriteFile(path, encodeBlob([]byte("not json")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hit := mustGet(t, s, "k", 3)
	if hit {
		t.Fatal("undecodable payload served as a hit")
	}
	if st := s.Stats(); st.CorruptDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	s := NewMemory(Options{})
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := s.GetOrCompute("shared", jsonCodec{}, func() (any, error) {
				computes.Add(1)
				<-release
				return value(11), nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = v
		}(i)
	}
	// Let the flock pile onto the flight, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v == nil || v.(map[string]int)["n"] != 11 {
			t.Fatalf("goroutine %d got %v", i, v)
		}
	}
	if st := s.Stats(); st.Computes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestComputeErrorPropagatesAndRetries(t *testing.T) {
	s := NewMemory(Options{})
	boom := errors.New("boom")
	_, _, err := s.GetOrCompute("k", jsonCodec{}, func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// A failed compute caches nothing; the next call retries.
	v, hit := mustGet(t, s, "k", 8)
	if hit || v.(map[string]int)["n"] != 8 {
		t.Fatalf("retry hit=%v v=%v", hit, v)
	}
}

func TestMemLRUEviction(t *testing.T) {
	s := NewMemory(Options{MaxMemEntries: 2})
	mustGet(t, s, "a", 1)
	mustGet(t, s, "b", 2)
	mustGet(t, s, "a", 0) // touch a so b is the LRU victim
	mustGet(t, s, "c", 3) // evicts b
	if _, hit := mustGet(t, s, "a", 0); !hit {
		t.Fatal("recently used entry evicted")
	}
	if _, hit := mustGet(t, s, "b", 2); hit {
		t.Fatal("evicted entry still hit")
	}
	if st := s.Stats(); st.MemEvictions < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskEvictionBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxDiskBytes: 2 * blobSize(len(`{"n":1}`))})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		key := Key(fmt.Sprintf("k%d", i))
		mustGet(t, s, key, i)
		// Distinct mtimes so the eviction order is well-defined even on
		// coarse filesystem clocks.
		old := time.Now().Add(-time.Duration(4-i) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, string(key)+blobExt), old, old); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.BytesOnDisk > s.opts.MaxDiskBytes {
		t.Fatalf("disk bytes %d over bound %d", st.BytesOnDisk, s.opts.MaxDiskBytes)
	}
	if st.DiskEvictions == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The newest key survives.
	if _, err := readBlob(filepath.Join(dir, "k3"+blobExt)); err != nil {
		t.Fatalf("newest blob evicted: %v", err)
	}
}

func TestKeyValidation(t *testing.T) {
	s := NewMemory(Options{})
	for _, bad := range []Key{"", "UPPER", "has space", "dot/dot", "../escape"} {
		if _, _, err := s.GetOrCompute(bad, jsonCodec{}, func() (any, error) { return value(0), nil }); err == nil {
			t.Errorf("key %q accepted", bad)
		}
	}
}
