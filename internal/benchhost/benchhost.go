// Package benchhost snapshots the recording host's CPU topology for the
// BENCH_*.json reports. Every writer embeds Info as its "host" section,
// so scaling caveats — above all the 1-CPU recording container, where
// GOMAXPROCS can exceed the hardware and parallel speedups are not
// observable — are machine-checkable fields instead of prose notes.
package benchhost

import (
	"bufio"
	"os"
	"runtime"
	"strings"
)

// Info is the "host" section shared by the BENCH_*.json reports.
type Info struct {
	// CPU is the hardware model (from /proc/cpuinfo where available).
	CPU string `json:"cpu"`
	// HardwareCPUs is runtime.NumCPU: CPUs usable by this process.
	HardwareCPUs int `json:"hardware_cpus"`
	// GOMAXPROCS is the scheduler's parallelism at recording time. When
	// it exceeds HardwareCPUs, extra "cores" are timeslices, not silicon.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion is the recording toolchain.
	GoVersion string `json:"go_version"`
	// Note carries the report-specific caveat.
	Note string `json:"note,omitempty"`
}

// Collect snapshots the current process's view of the host; note carries
// the report-specific caveat into the record.
func Collect(note string) Info {
	return Info{
		CPU:          cpuModel(),
		HardwareCPUs: runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		Note:         note,
	}
}

// cpuModel reads the first "model name" from /proc/cpuinfo, falling back
// to the architecture on hosts without one (non-Linux, some arm64).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return runtime.GOARCH
}
