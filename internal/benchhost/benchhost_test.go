package benchhost

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestCollect(t *testing.T) {
	info := Collect("caveat")
	if info.CPU == "" {
		t.Error("CPU empty")
	}
	if info.HardwareCPUs != runtime.NumCPU() {
		t.Errorf("HardwareCPUs = %d, want %d", info.HardwareCPUs, runtime.NumCPU())
	}
	if info.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", info.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if info.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.Note != "caveat" {
		t.Errorf("Note = %q", info.Note)
	}
}

// The JSON field names are part of the BENCH_*.json schema: changing one
// silently breaks consumers diffing recorded reports.
func TestJSONFieldNames(t *testing.T) {
	b, err := json.Marshal(Collect(""))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"cpu", "hardware_cpus", "gomaxprocs", "go_version"} {
		if _, ok := m[k]; !ok {
			t.Errorf("host section lacks %q: %s", k, b)
		}
	}
}
