// Package bfp implements block floating-point (BFP) arithmetic, the number
// format the BrainWave-like accelerator uses for matrix-vector
// multiplication (paper §3). A block of values shares a single exponent;
// each value keeps only a narrow two's-complement mantissa. Multiplying two
// blocks therefore reduces to cheap integer multiply-accumulate plus one
// exponent addition, which is what lets the accelerator pack thousands of
// multipliers into the FPGA's DSP slices.
//
// The format implemented here matches the BrainWave publications: a shared
// 8-bit exponent per block with sign-magnitude-style narrow mantissas
// (default 5 bits including sign, "ms-fp9"-like when paired with blocks of
// the native dimension). Mantissa width is configurable so experiments can
// trade accuracy for density.
package bfp

import (
	"errors"
	"fmt"
	"math"
)

// DefaultMantissaBits is the mantissa width (including the sign bit) used by
// the accelerator's MVM tiles. 5 bits matches the BrainWave ms-fp9 style
// format when combined with the shared 8-bit exponent.
const DefaultMantissaBits = 5

// ErrBadWidth is returned when constructing a codec with an unsupported
// mantissa width.
var ErrBadWidth = errors.New("bfp: mantissa width must be in [2,24]")

// Codec quantizes float vectors into shared-exponent blocks.
type Codec struct {
	mantBits int   // total mantissa bits including sign
	maxMag   int32 // largest representable magnitude, 2^(mantBits-1)-1
}

// NewCodec returns a codec with the given mantissa width (including sign
// bit). Width must be between 2 and 24.
func NewCodec(mantissaBits int) (*Codec, error) {
	if mantissaBits < 2 || mantissaBits > 24 {
		return nil, fmt.Errorf("%w: %d", ErrBadWidth, mantissaBits)
	}
	return &Codec{
		mantBits: mantissaBits,
		maxMag:   int32(1)<<(mantissaBits-1) - 1,
	}, nil
}

// MustCodec is like NewCodec but panics on error; for package-level defaults.
func MustCodec(mantissaBits int) *Codec {
	c, err := NewCodec(mantissaBits)
	if err != nil {
		panic(err)
	}
	return c
}

// MantissaBits returns the configured mantissa width including the sign bit.
func (c *Codec) MantissaBits() int { return c.mantBits }

// Block is a quantized vector: integer mantissas scaled by 2^Exp.
// value[i] = Mant[i] * 2^Exp.
type Block struct {
	Mant []int32
	Exp  int
}

// Len returns the number of elements in the block.
func (b Block) Len() int { return len(b.Mant) }

// Quantize converts xs into one shared-exponent block. The exponent is
// chosen so the largest magnitude uses the full mantissa range; all other
// elements are rounded to nearest (ties away from zero, matching a simple
// hardware rounder).
func (c *Codec) Quantize(xs []float64) Block {
	maxAbs := 0.0
	for _, x := range xs {
		a := math.Abs(x)
		if a > maxAbs && !math.IsInf(x, 0) && !math.IsNaN(x) {
			maxAbs = a
		}
	}
	b := Block{Mant: make([]int32, len(xs))}
	if maxAbs == 0 {
		return b
	}
	// Choose exp so that maxAbs/2^exp fits in maxMag:
	// exp = ceil(log2(maxAbs / maxMag)).
	exp := int(math.Ceil(math.Log2(maxAbs / float64(c.maxMag))))
	// Guard against boundary rounding pushing past the max magnitude.
	for math.Round(maxAbs/math.Pow(2, float64(exp))) > float64(c.maxMag) {
		exp++
	}
	scale := math.Pow(2, float64(-exp))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue // encode as zero: hardware flushes non-finite input
		}
		m := math.Round(x * scale)
		if m > float64(c.maxMag) {
			m = float64(c.maxMag)
		}
		if m < -float64(c.maxMag) {
			m = -float64(c.maxMag)
		}
		b.Mant[i] = int32(m)
	}
	b.Exp = exp
	return b
}

// Dequantize converts a block back to float64.
func (b Block) Dequantize() []float64 {
	scale := math.Pow(2, float64(b.Exp))
	out := make([]float64, len(b.Mant))
	for i, m := range b.Mant {
		out[i] = float64(m) * scale
	}
	return out
}

// Dot computes the inner product of two blocks exactly in the integer
// domain: sum(a.Mant[i]*b.Mant[i]) * 2^(a.Exp+b.Exp). This is the operation
// one BFP dot-product lane performs. It returns an error if lengths differ.
func Dot(a, b Block) (float64, error) {
	if len(a.Mant) != len(b.Mant) {
		return 0, fmt.Errorf("bfp: dot length mismatch %d vs %d", len(a.Mant), len(b.Mant))
	}
	var acc int64
	for i := range a.Mant {
		acc += int64(a.Mant[i]) * int64(b.Mant[i])
	}
	return float64(acc) * math.Pow(2, float64(a.Exp+b.Exp)), nil
}

// Matrix is a row-major matrix quantized row-block-wise: each row is split
// into blocks of BlockSize elements sharing one exponent. This mirrors the
// accelerator's tile layout, where one MVM tile holds a native-dimension
// slice of the weight matrix.
type Matrix struct {
	Rows, Cols int
	BlockSize  int
	// Blocks[r][j] covers row r, columns [j*BlockSize, (j+1)*BlockSize).
	Blocks [][]Block
}

// QuantizeMatrix converts a row-major rows x cols float matrix into a
// block-quantized Matrix with the given block size. The final block in a row
// may be shorter when cols is not a multiple of blockSize.
func (c *Codec) QuantizeMatrix(data []float64, rows, cols, blockSize int) (*Matrix, error) {
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("bfp: matrix shape %dx%d does not match %d values", rows, cols, len(data))
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("bfp: block size must be positive, got %d", blockSize)
	}
	m := &Matrix{Rows: rows, Cols: cols, BlockSize: blockSize}
	m.Blocks = make([][]Block, rows)
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		nb := (cols + blockSize - 1) / blockSize
		m.Blocks[r] = make([]Block, nb)
		for j := 0; j < nb; j++ {
			lo := j * blockSize
			hi := lo + blockSize
			if hi > cols {
				hi = cols
			}
			m.Blocks[r][j] = c.Quantize(row[lo:hi])
		}
	}
	return m, nil
}

// QuantizeVector converts a vector into blocks matching a matrix's column
// blocking, so MatVec can pair them up.
func (c *Codec) QuantizeVector(xs []float64, blockSize int) ([]Block, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("bfp: block size must be positive, got %d", blockSize)
	}
	nb := (len(xs) + blockSize - 1) / blockSize
	out := make([]Block, nb)
	for j := 0; j < nb; j++ {
		lo := j * blockSize
		hi := lo + blockSize
		if hi > len(xs) {
			hi = len(xs)
		}
		out[j] = c.Quantize(xs[lo:hi])
	}
	return out, nil
}

// MatVec multiplies a block-quantized matrix by a block-quantized vector,
// accumulating per-block dot products in float64 (the accelerator
// accumulates in a wide fixed-point format; float64 is a superset). The
// vector blocking must match the matrix blocking.
func MatVec(m *Matrix, v []Block) ([]float64, error) {
	nb := (m.Cols + m.BlockSize - 1) / m.BlockSize
	if len(v) != nb {
		return nil, fmt.Errorf("bfp: vector has %d blocks, matrix needs %d", len(v), nb)
	}
	for j := 0; j < nb; j++ {
		want := m.BlockSize
		if j == nb-1 {
			want = m.Cols - j*m.BlockSize
		}
		if v[j].Len() != want {
			return nil, fmt.Errorf("bfp: vector block %d has %d elements, want %d", j, v[j].Len(), want)
		}
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for j := 0; j < nb; j++ {
			d, err := Dot(m.Blocks[r][j], v[j])
			if err != nil {
				return nil, err
			}
			sum += d
		}
		out[r] = sum
	}
	return out, nil
}

// QuantError returns the max absolute error introduced by quantizing xs with
// this codec, useful for accuracy experiments.
func (c *Codec) QuantError(xs []float64) float64 {
	back := c.Quantize(xs).Dequantize()
	max := 0.0
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if d := math.Abs(back[i] - x); d > max {
			max = d
		}
	}
	return max
}
