// Package bfp implements block floating-point (BFP) arithmetic, the number
// format the BrainWave-like accelerator uses for matrix-vector
// multiplication (paper §3). A block of values shares a single exponent;
// each value keeps only a narrow two's-complement mantissa. Multiplying two
// blocks therefore reduces to cheap integer multiply-accumulate plus one
// exponent addition, which is what lets the accelerator pack thousands of
// multipliers into the FPGA's DSP slices.
//
// The format implemented here matches the BrainWave publications: a shared
// 8-bit exponent per block with sign-magnitude-style narrow mantissas
// (default 5 bits including sign, "ms-fp9"-like when paired with blocks of
// the native dimension). Mantissa width is configurable so experiments can
// trade accuracy for density.
package bfp

import (
	"errors"
	"fmt"
	"math"
)

// DefaultMantissaBits is the mantissa width (including the sign bit) used by
// the accelerator's MVM tiles. 5 bits matches the BrainWave ms-fp9 style
// format when combined with the shared 8-bit exponent.
const DefaultMantissaBits = 5

// ErrBadWidth is returned when constructing a codec with an unsupported
// mantissa width.
var ErrBadWidth = errors.New("bfp: mantissa width must be in [2,24]")

// Codec quantizes float vectors into shared-exponent blocks.
type Codec struct {
	mantBits int   // total mantissa bits including sign
	maxMag   int32 // largest representable magnitude, 2^(mantBits-1)-1
}

// NewCodec returns a codec with the given mantissa width (including sign
// bit). Width must be between 2 and 24.
func NewCodec(mantissaBits int) (*Codec, error) {
	if mantissaBits < 2 || mantissaBits > 24 {
		return nil, fmt.Errorf("%w: %d", ErrBadWidth, mantissaBits)
	}
	return &Codec{
		mantBits: mantissaBits,
		maxMag:   int32(1)<<(mantissaBits-1) - 1,
	}, nil
}

// MustCodec is like NewCodec but panics on error; for package-level defaults.
func MustCodec(mantissaBits int) *Codec {
	c, err := NewCodec(mantissaBits)
	if err != nil {
		panic(err)
	}
	return c
}

// MantissaBits returns the configured mantissa width including the sign bit.
func (c *Codec) MantissaBits() int { return c.mantBits }

// Block is a quantized vector: integer mantissas scaled by 2^Exp.
// value[i] = Mant[i] * 2^Exp.
type Block struct {
	Mant []int32
	Exp  int
}

// Len returns the number of elements in the block.
func (b Block) Len() int { return len(b.Mant) }

// Quantize converts xs into one shared-exponent block. The exponent is
// chosen so the largest magnitude uses the full mantissa range; all other
// elements are rounded to nearest (ties away from zero, matching a simple
// hardware rounder).
func (c *Codec) Quantize(xs []float64) Block {
	var b Block
	c.QuantizeInto(&b, xs)
	return b
}

// QuantizeInto is Quantize writing into b, reusing b.Mant's backing array
// when it is large enough. It is the allocation-free quantization path the
// accelerator's steady-state execution engine runs per mv_mul; results are
// identical to Quantize.
func (c *Codec) QuantizeInto(b *Block, xs []float64) {
	mant := b.Mant
	if cap(mant) < len(xs) {
		mant = make([]int32, len(xs))
	}
	mant = mant[:len(xs)]
	b.Mant = mant
	b.Exp = 0

	maxAbs := 0.0
	for _, x := range xs {
		a := math.Abs(x)
		if a > maxAbs && !math.IsInf(x, 0) && !math.IsNaN(x) {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range mant {
			mant[i] = 0
		}
		return
	}
	// Choose exp so that maxAbs/2^exp fits in maxMag:
	// exp = ceil(log2(maxAbs / maxMag)). The log is taken via Frexp
	// because the direct quotient underflows to zero for deep-subnormal
	// maxAbs, and ceil(log2(0)) = MinInt64 wedges the guard loop below.
	fr, e2 := math.Frexp(maxAbs)
	exp := int(math.Ceil(float64(e2) + math.Log2(fr) - math.Log2(float64(c.maxMag))))
	// Guard against boundary rounding pushing past the max magnitude.
	for math.Round(math.Ldexp(maxAbs, -exp)) > float64(c.maxMag) {
		exp++
	}
	scale := math.Ldexp(1, -exp)
	// For deep-subnormal blocks -exp can exceed the float64 exponent range
	// and the precomputed scale degenerates to Inf (or 0); fall back to
	// per-element Ldexp, which scales exactly.
	slowScale := math.IsInf(scale, 0) || scale == 0
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			mant[i] = 0 // encode as zero: hardware flushes non-finite input
			continue
		}
		var m float64
		if slowScale {
			m = math.Round(math.Ldexp(x, -exp))
		} else {
			m = math.Round(x * scale)
		}
		if m > float64(c.maxMag) {
			m = float64(c.maxMag)
		}
		if m < -float64(c.maxMag) {
			m = -float64(c.maxMag)
		}
		mant[i] = int32(m)
	}
	b.Exp = exp
}

// Dequantize converts a block back to float64. Ldexp keeps the scaling
// exact across the whole exponent range (a precomputed 2^Exp would
// saturate for deep-subnormal blocks).
func (b Block) Dequantize() []float64 {
	out := make([]float64, len(b.Mant))
	for i, m := range b.Mant {
		out[i] = math.Ldexp(float64(m), b.Exp)
	}
	return out
}

// Dot computes the inner product of two blocks exactly in the integer
// domain: sum(a.Mant[i]*b.Mant[i]) * 2^(a.Exp+b.Exp). This is the operation
// one BFP dot-product lane performs. It returns an error if lengths differ.
func Dot(a, b Block) (float64, error) {
	if len(a.Mant) != len(b.Mant) {
		return 0, fmt.Errorf("bfp: dot length mismatch %d vs %d", len(a.Mant), len(b.Mant))
	}
	var acc int64
	for i := range a.Mant {
		acc += int64(a.Mant[i]) * int64(b.Mant[i])
	}
	return math.Ldexp(float64(acc), a.Exp+b.Exp), nil
}

// Matrix is a row-major matrix quantized row-block-wise: each row is split
// into blocks of BlockSize elements sharing one exponent. This mirrors the
// accelerator's tile layout, where one MVM tile holds a native-dimension
// slice of the weight matrix.
type Matrix struct {
	Rows, Cols int
	BlockSize  int
	// Blocks[r][j] covers row r, columns [j*BlockSize, (j+1)*BlockSize).
	Blocks [][]Block
}

// QuantizeMatrix converts a row-major rows x cols float matrix into a
// block-quantized Matrix with the given block size. The final block in a row
// may be shorter when cols is not a multiple of blockSize.
func (c *Codec) QuantizeMatrix(data []float64, rows, cols, blockSize int) (*Matrix, error) {
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("bfp: matrix shape %dx%d does not match %d values", rows, cols, len(data))
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("bfp: block size must be positive, got %d", blockSize)
	}
	m := &Matrix{Rows: rows, Cols: cols, BlockSize: blockSize}
	m.Blocks = make([][]Block, rows)
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		nb := (cols + blockSize - 1) / blockSize
		m.Blocks[r] = make([]Block, nb)
		for j := 0; j < nb; j++ {
			lo := j * blockSize
			hi := lo + blockSize
			if hi > cols {
				hi = cols
			}
			m.Blocks[r][j] = c.Quantize(row[lo:hi])
		}
	}
	return m, nil
}

// QuantizeVector converts a vector into blocks matching a matrix's column
// blocking, so MatVec can pair them up.
func (c *Codec) QuantizeVector(xs []float64, blockSize int) ([]Block, error) {
	return c.QuantizeVectorInto(nil, xs, blockSize)
}

// QuantizeVectorInto is QuantizeVector reusing dst's blocks and their
// mantissa arrays. It returns the (possibly regrown) block slice; after a
// warm-up call with the same shape it performs no allocation.
func (c *Codec) QuantizeVectorInto(dst []Block, xs []float64, blockSize int) ([]Block, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("bfp: block size must be positive, got %d", blockSize)
	}
	nb := (len(xs) + blockSize - 1) / blockSize
	if cap(dst) < nb {
		grown := make([]Block, nb)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:nb]
	for j := 0; j < nb; j++ {
		lo := j * blockSize
		hi := lo + blockSize
		if hi > len(xs) {
			hi = len(xs)
		}
		c.QuantizeInto(&dst[j], xs[lo:hi])
	}
	return dst, nil
}

// MatVec multiplies a block-quantized matrix by a block-quantized vector,
// accumulating per-block dot products in float64 (the accelerator
// accumulates in a wide fixed-point format; float64 is a superset). The
// vector blocking must match the matrix blocking.
func MatVec(m *Matrix, v []Block) ([]float64, error) {
	nb := (m.Cols + m.BlockSize - 1) / m.BlockSize
	if len(v) != nb {
		return nil, fmt.Errorf("bfp: vector has %d blocks, matrix needs %d", len(v), nb)
	}
	for j := 0; j < nb; j++ {
		want := m.BlockSize
		if j == nb-1 {
			want = m.Cols - j*m.BlockSize
		}
		if v[j].Len() != want {
			return nil, fmt.Errorf("bfp: vector block %d has %d elements, want %d", j, v[j].Len(), want)
		}
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for j := 0; j < nb; j++ {
			d, err := Dot(m.Blocks[r][j], v[j])
			if err != nil {
				return nil, err
			}
			sum += d
		}
		out[r] = sum
	}
	return out, nil
}

// PackedMatrix is the weight-stationary, on-chip form of a block-quantized
// matrix: every row's mantissas live in one flat row-major array (rows are
// padded to a whole number of blocks with zero lanes) and the per-block
// shared exponents in a parallel array. This is the layout one MVM tile
// actually holds after m_rd, and the flat contiguous storage is what lets
// the dot-product loop stream through memory with no per-block pointer
// chasing — the property the batched data plane relies on to keep a tile
// hot while several input vectors consume it.
type PackedMatrix struct {
	Rows, Cols, BlockSize int
	// Stride is the padded row length in mantissas: NumBlocks()*BlockSize.
	Stride int
	// Mant holds Rows*Stride mantissas row-major; padding lanes are zero.
	Mant []int32
	// Exp holds Rows*NumBlocks() shared exponents row-major.
	Exp []int32
}

// NumBlocks returns the number of column blocks per row.
func (pm *PackedMatrix) NumBlocks() int { return pm.Stride / pm.BlockSize }

// QuantizeMatrixPacked converts a row-major rows x cols float matrix
// directly into the packed on-chip layout. Mantissas and exponents are
// identical to QuantizeMatrix's: each row block is quantized independently
// with a shared exponent.
func (c *Codec) QuantizeMatrixPacked(data []float64, rows, cols, blockSize int) (*PackedMatrix, error) {
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("bfp: matrix shape %dx%d does not match %d values", rows, cols, len(data))
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("bfp: block size must be positive, got %d", blockSize)
	}
	nb := (cols + blockSize - 1) / blockSize
	pm := &PackedMatrix{
		Rows: rows, Cols: cols, BlockSize: blockSize,
		Stride: nb * blockSize,
		Mant:   make([]int32, rows*nb*blockSize),
		Exp:    make([]int32, rows*nb),
	}
	var scratch Block
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		for j := 0; j < nb; j++ {
			lo := j * blockSize
			hi := lo + blockSize
			if hi > cols {
				hi = cols
			}
			c.QuantizeInto(&scratch, row[lo:hi])
			copy(pm.Mant[r*pm.Stride+lo:], scratch.Mant)
			pm.Exp[r*nb+j] = int32(scratch.Exp)
		}
	}
	return pm, nil
}

// checkVec validates that v's blocking matches the matrix's columns, the
// same contract MatVec enforces.
func (pm *PackedMatrix) checkVec(v []Block) error {
	nb := pm.NumBlocks()
	if len(v) != nb {
		return fmt.Errorf("bfp: vector has %d blocks, matrix needs %d", len(v), nb)
	}
	for j := 0; j < nb; j++ {
		want := pm.BlockSize
		if j == nb-1 {
			want = pm.Cols - j*pm.BlockSize
		}
		if v[j].Len() != want {
			return fmt.Errorf("bfp: vector block %d has %d elements, want %d", j, v[j].Len(), want)
		}
	}
	return nil
}

// rowDot is one row's matrix-vector contribution: per-block integer dot
// products scaled by exact powers of two and accumulated in block order,
// bit-identical to summing Dot over the unpacked row.
func (pm *PackedMatrix) rowDot(r int, v []Block) float64 {
	nb := len(v)
	base := r * pm.Stride
	var sum float64
	for j := range v {
		vm := v[j].Mant
		lo := base + j*pm.BlockSize
		wm := pm.Mant[lo : lo+len(vm)]
		var acc int64
		for i := range vm {
			acc += int64(wm[i]) * int64(vm[i])
		}
		sum += math.Ldexp(float64(acc), int(pm.Exp[r*nb+j])+v[j].Exp)
	}
	return sum
}

// MatVecInto multiplies the packed matrix by a block-quantized vector into
// out (length Rows) without allocating. Results are bit-identical to
// MatVec on the equivalent unpacked Matrix.
func (pm *PackedMatrix) MatVecInto(out []float64, v []Block) error {
	if err := pm.checkVec(v); err != nil {
		return err
	}
	if len(out) != pm.Rows {
		return fmt.Errorf("bfp: output has %d elements, matrix has %d rows", len(out), pm.Rows)
	}
	for r := 0; r < pm.Rows; r++ {
		out[r] = pm.rowDot(r, v)
	}
	return nil
}

// MatVecBatchInto computes outs[s] = M * vs[s] for every stream s in one
// pass over the matrix: rows iterate in the outer loop so each row's
// mantissas are consumed by all B streams while hot in cache — the
// BrainWave-style batched MVM that amortizes one weight-stationary tile
// across a micro-batch. Each stream's result is bit-identical to a
// standalone MatVecInto.
func (pm *PackedMatrix) MatVecBatchInto(outs [][]float64, vs [][]Block) error {
	if len(outs) != len(vs) {
		return fmt.Errorf("bfp: %d outputs for %d vectors", len(outs), len(vs))
	}
	for s := range vs {
		if err := pm.checkVec(vs[s]); err != nil {
			return fmt.Errorf("stream %d: %w", s, err)
		}
		if len(outs[s]) != pm.Rows {
			return fmt.Errorf("bfp: stream %d output has %d elements, matrix has %d rows", s, len(outs[s]), pm.Rows)
		}
	}
	for r := 0; r < pm.Rows; r++ {
		for s := range vs {
			outs[s][r] = pm.rowDot(r, vs[s])
		}
	}
	return nil
}

// QuantError returns the max absolute error introduced by quantizing xs with
// this codec, useful for accuracy experiments.
func (c *Codec) QuantError(xs []float64) float64 {
	back := c.Quantize(xs).Dequantize()
	max := 0.0
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if d := math.Abs(back[i] - x); d > max {
			max = d
		}
	}
	return max
}
