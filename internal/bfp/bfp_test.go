package bfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCodecBounds(t *testing.T) {
	for _, w := range []int{1, 0, -3, 25, 100} {
		if _, err := NewCodec(w); err == nil {
			t.Errorf("NewCodec(%d) must fail", w)
		}
	}
	for _, w := range []int{2, 5, 9, 24} {
		c, err := NewCodec(w)
		if err != nil {
			t.Fatalf("NewCodec(%d): %v", w, err)
		}
		if c.MantissaBits() != w {
			t.Errorf("MantissaBits = %d, want %d", c.MantissaBits(), w)
		}
	}
}

func TestMustCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCodec(0) must panic")
		}
	}()
	MustCodec(0)
}

func TestQuantizeZeros(t *testing.T) {
	c := MustCodec(5)
	b := c.Quantize([]float64{0, 0, 0})
	if b.Exp != 0 {
		t.Errorf("zero block exp = %d", b.Exp)
	}
	for _, m := range b.Mant {
		if m != 0 {
			t.Errorf("zero block mantissa = %d", m)
		}
	}
}

func TestQuantizeExactPowersOfTwo(t *testing.T) {
	// With 5-bit mantissas (max magnitude 15), the vector {15, -15, 7.5}
	// quantizes exactly at exp = 0? No: maxAbs=15, exp=ceil(log2(15/15))=0.
	c := MustCodec(5)
	b := c.Quantize([]float64{15, -15, 8})
	got := b.Dequantize()
	want := []float64{15, -15, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dequantize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuantizeNonFinite(t *testing.T) {
	c := MustCodec(5)
	b := c.Quantize([]float64{math.NaN(), math.Inf(1), 4})
	if b.Mant[0] != 0 || b.Mant[1] != 0 {
		t.Errorf("non-finite inputs must quantize to 0, got %v", b.Mant)
	}
	if b.Dequantize()[2] != 4 {
		t.Errorf("finite input mangled: %v", b.Dequantize())
	}
}

func TestQuantErrorBound(t *testing.T) {
	// Quantization error is at most half an lsb = 2^(exp-1), and
	// exp <= ceil(log2(maxAbs/maxMag)) < log2(maxAbs/maxMag)+1.
	// So error <= maxAbs/maxMag.
	c := MustCodec(5)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		xs := make([]float64, 16)
		maxAbs := 0.0
		for i := range xs {
			xs[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(6)-3))
			if a := math.Abs(xs[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if e := c.QuantError(xs); e > maxAbs/15+1e-15 {
			t.Fatalf("trial %d: quant error %v exceeds bound %v", trial, e, maxAbs/15)
		}
	}
}

func TestDotExactOnRepresentable(t *testing.T) {
	c := MustCodec(8)
	a := c.Quantize([]float64{1, 2, 3, 4})
	b := c.Quantize([]float64{4, 3, 2, 1})
	got, err := Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1*4+2*3+3*2+4*1 {
		t.Errorf("Dot = %v, want 20", got)
	}
}

func TestDotLengthMismatch(t *testing.T) {
	c := MustCodec(5)
	if _, err := Dot(c.Quantize([]float64{1}), c.Quantize([]float64{1, 2})); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestQuantizeMatrixShapeErrors(t *testing.T) {
	c := MustCodec(5)
	if _, err := c.QuantizeMatrix([]float64{1, 2, 3}, 2, 2, 2); err == nil {
		t.Error("bad shape must error")
	}
	if _, err := c.QuantizeMatrix([]float64{1, 2, 3, 4}, 2, 2, 0); err == nil {
		t.Error("bad block size must error")
	}
	if _, err := c.QuantizeVector([]float64{1}, 0); err == nil {
		t.Error("bad vector block size must error")
	}
}

func TestMatVecAgainstFloat(t *testing.T) {
	c := MustCodec(9) // wide mantissa: small error
	r := rand.New(rand.NewSource(42))
	rows, cols, bs := 8, 12, 4
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = r.NormFloat64()
	}
	vec := make([]float64, cols)
	for i := range vec {
		vec[i] = r.NormFloat64()
	}
	m, err := c.QuantizeMatrix(data, rows, cols, bs)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := c.QuantizeVector(vec, bs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatVec(m, vb)
	if err != nil {
		t.Fatal(err)
	}
	for rI := 0; rI < rows; rI++ {
		want := 0.0
		for cI := 0; cI < cols; cI++ {
			want += data[rI*cols+cI] * vec[cI]
		}
		if math.Abs(got[rI]-want) > 0.05*float64(cols) {
			t.Errorf("row %d: MatVec = %v, float = %v", rI, got[rI], want)
		}
	}
}

func TestMatVecBlockMismatch(t *testing.T) {
	c := MustCodec(5)
	m, _ := c.QuantizeMatrix(make([]float64, 4), 2, 2, 2)
	if _, err := MatVec(m, nil); err == nil {
		t.Error("missing vector blocks must error")
	}
	vb, _ := c.QuantizeVector([]float64{1, 2, 3}, 3)
	if _, err := MatVec(m, vb); err == nil {
		t.Error("wrong-size vector block must error")
	}
}

func TestMatVecRaggedTail(t *testing.T) {
	// cols not a multiple of block size: the tail block is shorter.
	c := MustCodec(9)
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // 2x5
	m, err := c.QuantizeMatrix(data, 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := c.QuantizeVector([]float64{1, 1, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatVec(m, vb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-15) > 0.1 || math.Abs(got[1]-40) > 0.2 {
		t.Errorf("ragged MatVec = %v, want [15 40]", got)
	}
}

// Property: mantissas never exceed the representable magnitude.
func TestQuickMantissaRange(t *testing.T) {
	c := MustCodec(5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(32))
		for i := range xs {
			xs[i] = r.NormFloat64() * math.Pow(2, float64(r.Intn(40)-20))
		}
		b := c.Quantize(xs)
		for _, m := range b.Mant {
			if m > 15 || m < -15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantize/dequantize relative error of the max element is below
// one part in maxMag.
func TestQuickMaxElementAccuracy(t *testing.T) {
	c := MustCodec(9) // maxMag = 255
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 4+r.Intn(16))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		maxAbs, maxIdx := 0.0, 0
		for i, x := range xs {
			if math.Abs(x) > maxAbs {
				maxAbs, maxIdx = math.Abs(x), i
			}
		}
		if maxAbs == 0 {
			return true
		}
		back := c.Quantize(xs).Dequantize()
		return math.Abs(back[maxIdx]-xs[maxIdx]) <= maxAbs/255+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric.
func TestQuickDotSymmetric(t *testing.T) {
	c := MustCodec(5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = r.NormFloat64(), r.NormFloat64()
		}
		a, b := c.Quantize(xs), c.Quantize(ys)
		ab, err1 := Dot(a, b)
		ba, err2 := Dot(b, a)
		return err1 == nil && err2 == nil && ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
