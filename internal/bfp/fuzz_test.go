package bfp

import (
	"encoding/binary"
	"math"
	"testing"

	"mlvfpga/internal/fp16"
)

// fuzzVals decodes the payload into float64s (8 bytes each, any bit
// pattern: NaNs, infinities and subnormals included), capped so one
// input cannot dominate the fuzz budget.
func fuzzVals(data []byte) []float64 {
	const maxVals = 256
	var out []float64
	for len(data) >= 8 && len(out) < maxVals {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return out
}

// FuzzQuantizeRoundTrip checks the number-format contracts the
// accelerator's datapath rests on, for arbitrary inputs:
//
//   - bfp: quantize→dequantize error is within half a mantissa step
//     (0.5·2^Exp) for every finite element, non-finite elements encode as
//     zero, and mantissas respect the configured width;
//   - bfp: the allocation-free *Into variants produce bit-identical
//     blocks to the allocating variants, even over dirty reused buffers;
//   - fp16: FromSlice64/ToSlice64 match their *Into variants exactly, and
//     a binary16 value survives a float64 round trip unchanged.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add([]byte{5})
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0xF0, 0x3F, 0, 0, 0, 0, 0, 0, 0xF0, 0xBF})              // 1.0, -1.0
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0xF8, 0x7F, 0, 0, 0, 0, 0, 0, 0xF0, 0x7F})              // NaN, +Inf
	f.Add([]byte{23, 0x9A, 0x99, 0x99, 0x99, 0x99, 0x99, 0xB9, 0x3F, 1, 0, 0, 0, 0, 0, 0, 0}) // 0.1, subnormal
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		mantBits := 2 + int(data[0]%23)
		codec, err := NewCodec(mantBits)
		if err != nil {
			t.Fatalf("NewCodec(%d): %v", mantBits, err)
		}
		vals := fuzzVals(data[1:])
		if len(vals) == 0 {
			return
		}

		// Round-trip error bound. The BFP domain slightly exceeds
		// float64's at both ends: below Exp ≈ -1060 dequantized values
		// leave the subnormal range and the representation itself rounds,
		// and above Exp = 1000 a full-width mantissa (≤ 2^23) times 2^Exp
		// can overflow to Inf. The hardware never runs at either extreme,
		// so the bound is asserted only between them.
		b := codec.Quantize(vals)
		if b.Len() != len(vals) {
			t.Fatalf("block has %d elements for %d inputs", b.Len(), len(vals))
		}
		maxMag := int32(1)<<(mantBits-1) - 1
		for i, m := range b.Mant {
			if m > maxMag || m < -maxMag {
				t.Fatalf("mantissa %d is %d, width %d allows ±%d", i, m, mantBits, maxMag)
			}
		}
		back := b.Dequantize()
		bound := math.Ldexp(0.5, b.Exp)
		for i, x := range vals {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				if back[i] != 0 {
					t.Fatalf("element %d: non-finite %v decoded to %v, want 0", i, x, back[i])
				}
				continue
			}
			if b.Exp < -1060 || b.Exp > 1000 {
				continue
			}
			if diff := math.Abs(back[i] - x); diff > bound {
				t.Fatalf("element %d: |%v - %v| = %v exceeds 0.5·2^%d = %v",
					i, back[i], x, diff, b.Exp, bound)
			}
		}

		// QuantizeInto over a dirty reused block must match Quantize.
		dirty := Block{Mant: make([]int32, len(vals)+3), Exp: 99}
		for i := range dirty.Mant {
			dirty.Mant[i] = -7
		}
		codec.QuantizeInto(&dirty, vals)
		if dirty.Exp != b.Exp || len(dirty.Mant) != len(b.Mant) {
			t.Fatalf("QuantizeInto exp/len (%d, %d) != Quantize (%d, %d)",
				dirty.Exp, len(dirty.Mant), b.Exp, len(b.Mant))
		}
		for i := range b.Mant {
			if dirty.Mant[i] != b.Mant[i] {
				t.Fatalf("QuantizeInto mantissa %d is %d, Quantize says %d", i, dirty.Mant[i], b.Mant[i])
			}
		}

		// Vector blocking: allocating and Into paths must agree, for any
		// block size.
		blockSize := 1 + int(data[0]>>3)%8
		va, err := codec.QuantizeVector(vals, blockSize)
		if err != nil {
			t.Fatalf("QuantizeVector: %v", err)
		}
		vb := make([]Block, 1) // undersized and dirty on purpose
		vb[0] = Block{Mant: []int32{-7}, Exp: 99}
		vb, err = codec.QuantizeVectorInto(vb, vals, blockSize)
		if err != nil {
			t.Fatalf("QuantizeVectorInto: %v", err)
		}
		if len(va) != len(vb) {
			t.Fatalf("vector blocking diverged: %d vs %d blocks", len(va), len(vb))
		}
		for j := range va {
			if va[j].Exp != vb[j].Exp || len(va[j].Mant) != len(vb[j].Mant) {
				t.Fatalf("block %d diverged: exp %d/%d, len %d/%d",
					j, va[j].Exp, vb[j].Exp, len(va[j].Mant), len(vb[j].Mant))
			}
			for i := range va[j].Mant {
				if va[j].Mant[i] != vb[j].Mant[i] {
					t.Fatalf("block %d mantissa %d diverged: %d vs %d", j, i, va[j].Mant[i], vb[j].Mant[i])
				}
			}
		}

		// fp16: slice conversions match their Into variants bit for bit,
		// and binary16 survives the float64 round trip.
		ns := fp16.FromSlice64(vals)
		nsInto := make([]fp16.Num, len(vals))
		fp16.FromSlice64Into(nsInto, vals)
		for i := range ns {
			if ns[i] != nsInto[i] {
				t.Fatalf("fp16 element %d: FromSlice64 %#04x, Into %#04x", i, ns[i], nsInto[i])
			}
		}
		fs := fp16.ToSlice64(ns)
		fsInto := make([]float64, len(ns))
		fp16.ToSlice64Into(fsInto, ns)
		for i := range fs {
			if math.Float64bits(fs[i]) != math.Float64bits(fsInto[i]) {
				t.Fatalf("fp16 element %d: ToSlice64 %v, Into %v", i, fs[i], fsInto[i])
			}
		}
		rt := fp16.FromSlice64(fs)
		for i := range ns {
			if ns[i].IsNaN() {
				if !rt[i].IsNaN() {
					t.Fatalf("fp16 element %d: NaN %#04x round-tripped to %#04x", i, ns[i], rt[i])
				}
				continue
			}
			if rt[i] != ns[i] {
				t.Fatalf("fp16 element %d: %#04x round-tripped to %#04x", i, ns[i], rt[i])
			}
		}
	})
}
