package bwrtl

import (
	"testing"

	"mlvfpga/internal/decompose"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/softblock"
)

func generate(t *testing.T, p Profile) *rtl.Design {
	t.Helper()
	src, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.ParseDesign(src, TopModule)
	if err != nil {
		t.Fatalf("generated RTL does not parse: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated RTL does not validate: %v", err)
	}
	return d
}

func TestGenerateParses(t *testing.T) {
	for _, tiles := range []int{1, 2, 8, 21} {
		for _, uram := range []bool{true, false} {
			generate(t, Profile{Tiles: tiles, UseURAM: uram})
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	if _, err := Generate(Profile{Tiles: 0}); err == nil {
		t.Error("0 tiles must fail")
	}
	if _, err := Generate(Profile{Tiles: 100}); err == nil {
		t.Error("100 tiles must fail")
	}
}

func TestBasicModules(t *testing.T) {
	d := generate(t, Profile{Tiles: 2, UseURAM: true})
	basics := map[string]bool{}
	for _, b := range d.BasicModules() {
		basics[b] = true
	}
	for _, want := range []string{"instr_decoder", "sequencer", "fp16_to_bfp",
		"vector_regfile", "mvm_tile", "accum_unit", "mfu"} {
		if !basics[want] {
			t.Errorf("module %s must be basic; got %v", want, d.BasicModules())
		}
	}
}

func TestURAMParameterization(t *testing.T) {
	withURAM := generate(t, Profile{Tiles: 3, UseURAM: true})
	noURAM := generate(t, Profile{Tiles: 3, UseURAM: false})
	resU := estimateTop(t, withURAM)
	resB := estimateTop(t, noURAM)
	if resU.URAMKb == 0 {
		t.Error("URAM profile has no URAM")
	}
	if resB.URAMKb != 0 {
		t.Error("BRAM-only profile uses URAM")
	}
	if resB.BRAMKb <= resU.BRAMKb {
		t.Error("BRAM-only profile must compensate with more BRAM")
	}
	if resU.DSPs != resB.DSPs {
		t.Errorf("DSP count must not depend on memory choice: %d vs %d", resU.DSPs, resB.DSPs)
	}
}

func estimateTop(t *testing.T, d *rtl.Design) (v struct {
	LUTs, DFFs, BRAMKb, URAMKb, DSPs int64
}) {
	t.Helper()
	em, err := d.Elaborate(TopModule, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.EstimateResources(em)
	if err != nil {
		t.Fatal(err)
	}
	v.LUTs, v.DFFs, v.BRAMKb, v.URAMKb, v.DSPs = res.LUTs, res.DFFs, res.BRAMKb, res.URAMKb, res.DSPs
	return v
}

func TestResourcesScaleWithTiles(t *testing.T) {
	r2 := estimateTop(t, generate(t, Profile{Tiles: 2, UseURAM: true}))
	r4 := estimateTop(t, generate(t, Profile{Tiles: 4, UseURAM: true}))
	// 18 DSPs per slice (16 MVM + 2 MFU).
	if r4.DSPs-r2.DSPs != 36 {
		t.Errorf("DSP delta for 2 extra tiles = %d, want 36", r4.DSPs-r2.DSPs)
	}
	if r4.URAMKb-r2.URAMKb != 2*288 {
		t.Errorf("URAM delta = %d, want 576", r4.URAMKb-r2.URAMKb)
	}
}

// The headline integration check: the generated design decomposes into the
// Fig. 9 tree — a control block holding decoder/sequencer/converter/VRF,
// and a data-parallel root of NumTiles pipeline slices.
func TestDecomposesToFig9Tree(t *testing.T) {
	for _, tiles := range []int{2, 4, 8} {
		d := generate(t, Profile{Tiles: tiles, UseURAM: true})
		res, err := decompose.Decompose(d, TopModule, nil, decompose.Options{
			ControlModules: ControlModules(),
			Seed:           1,
		})
		if err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		root := res.Accelerator.Data
		if root.Kind != softblock.DataParallel {
			t.Fatalf("tiles=%d: root kind = %v, want data parallel\n%s", tiles, root.Kind, root)
		}
		if len(root.Children) != tiles {
			t.Fatalf("tiles=%d: root has %d children\n%s", tiles, len(root.Children), root)
		}
		for _, lane := range root.Children {
			if lane.Kind != softblock.Pipeline {
				t.Fatalf("tiles=%d: lane kind = %v, want pipeline\n%s", tiles, lane.Kind, root)
			}
			// mvm_tile -> accum -> mfu: exactly 3 stages.
			if len(lane.Children) != 3 {
				t.Errorf("tiles=%d: lane has %d stages, want 3", tiles, len(lane.Children))
			}
		}
		if res.Stats.ControlModules != 4 {
			t.Errorf("tiles=%d: control modules = %d, want 4", tiles, res.Stats.ControlModules)
		}
		// Control block carries the instruction buffer + VRF BRAM.
		if res.Accelerator.Control.Resources.BRAMKb < 16*36 {
			t.Errorf("control BRAM = %d Kb", res.Accelerator.Control.Resources.BRAMKb)
		}
	}
}

// The generated accelerator must survive an RTL write/re-parse round trip
// and still decompose to the same tree (exercises the writer across every
// construct the generator emits).
func TestWriterRoundTripDecomposesSame(t *testing.T) {
	src, err := Generate(Profile{Tiles: 3, UseURAM: true})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := rtl.ParseDesign(src, TopModule)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := rtl.ParseDesign(rtl.WriteDesign(d1), TopModule)
	if err != nil {
		t.Fatalf("rendered accelerator does not re-parse: %v", err)
	}
	r1, err := decompose.Decompose(d1, TopModule, nil, decompose.Options{ControlModules: ControlModules(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := decompose.Decompose(d2, TopModule, nil, decompose.Options{ControlModules: ControlModules(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accelerator.Data.Signature() != r2.Accelerator.Data.Signature() {
		t.Errorf("decomposition changed after round trip:\n%s\nvs\n%s",
			r1.Accelerator.Data, r2.Accelerator.Data)
	}
}
