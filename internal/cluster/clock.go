// Package cluster is the fleet-level control plane sitting above the
// runtime management system (rms): a device registry with heartbeats and
// health states, load-driven deployment-depth selection over the
// partition ladder, and elastic lease migration off dead or draining
// devices. The paper's system abstraction (§2.3) spans a heterogeneous
// cluster; this package supplies the control loop that keeps such a
// cluster serving when devices come, go and fail — the piece a single
// placed-once rms.Service lacks.
//
// Every time-dependent decision flows through an injectable Clock, so the
// control plane runs identically under the wall clock (mlv-serve), a
// hand-advanced fake (tests) and the discrete-event simulator (soak).
package cluster

import (
	"sync"
	"time"

	"mlvfpga/internal/des"
)

// Clock abstracts time for the control plane.
type Clock interface {
	Now() time.Time
}

// WallClock is the real time.Now clock used in production.
type WallClock struct{}

// Now returns the wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// FakeClock is a hand-advanced clock for deterministic tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// DESClock adapts a discrete-event engine's virtual time: Now() is Epoch
// plus the engine's current virtual time, so registry timeouts and
// backoffs resolve on the simulator's clock.
type DESClock struct {
	Engine *des.Engine
	Epoch  time.Time
}

// Now returns the virtual instant.
func (c DESClock) Now() time.Time { return c.Epoch.Add(c.Engine.Now()) }
