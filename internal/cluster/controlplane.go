package cluster

import (
	"errors"
	"sync"
	"time"

	"mlvfpga/internal/metrics"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

// LoadSource supplies a lease's live serving load. *rms.DataPlane
// implements it; tests and the soak harness script their own.
type LoadSource interface {
	Load(leaseID int) (rms.LoadStats, bool)
}

// Resizer adjusts a lease's data-plane concurrency after a depth change.
// *rms.DataPlane implements it.
type Resizer interface {
	Resize(leaseID, machines int) error
}

// Config tunes the control plane.
type Config struct {
	// Registry tunes the health state machine.
	Registry RegistryConfig
	// Planner tunes depth selection.
	Planner PlannerConfig
	// MigrationBudget bounds migrations attempted per tick (evacuations
	// and rebalances combined), so a mass failure cannot stampede the
	// fleet. Zero means the default.
	MigrationBudget int
	// RetryBackoff is the initial wait after a failed migration before
	// the lease is retried; it doubles per consecutive failure up to
	// MaxBackoff.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential retry backoff.
	MaxBackoff time.Duration
	// MachinesPerPiece sizes the data-plane machine pool as depth ×
	// MachinesPerPiece on depth changes.
	MachinesPerPiece int
	// Ring, when set, prices scale-ups (see PlannerConfig.MaxStepComm).
	Ring *netmodel.Ring
}

// DefaultConfig returns serving defaults.
func DefaultConfig() Config {
	return Config{
		Registry:         DefaultRegistryConfig(),
		Planner:          DefaultPlannerConfig(),
		MigrationBudget:  4,
		RetryBackoff:     250 * time.Millisecond,
		MaxBackoff:       4 * time.Second,
		MachinesPerPiece: 2,
	}
}

// Event is one control action taken (or attempted) during a tick.
type Event struct {
	Lease int `json:"lease"`
	// Kind is "evacuate", "scale_up", "scale_down" or "resize" (a retry
	// of a machine-pool resize that failed after a successful migration).
	Kind      string `json:"kind"`
	FromDepth int    `json:"from_depth"`
	ToDepth   int    `json:"to_depth"`
	// Err is set when the action failed (the lease backs off and
	// retries on a later tick).
	Err string `json:"err,omitempty"`
}

// TickReport is the deterministic record of one control-loop pass.
type TickReport struct {
	Tick        int          `json:"tick"`
	Transitions []Transition `json:"transitions,omitempty"`
	Events      []Event      `json:"events,omitempty"`
	// Deferred counts actions skipped because the migration budget was
	// exhausted or the lease was in backoff.
	Deferred int `json:"deferred,omitempty"`
}

// Faults enables deliberate bug injection for the deterministic
// simulation harness (internal/simtest), mirroring rms.Faults: each flag
// disables one bookkeeping mechanism so the harness's invariant checkers
// can be validated against a known bug. Zero value injects nothing.
type Faults struct {
	// SkipMigrationMetric suppresses the mlv_migrations counter increment
	// on successful migrations, breaking counter conservation — the
	// harness's expvar invariant must catch the drift.
	SkipMigrationMetric bool
}

// leaseState is the control plane's per-lease memory between ticks.
type leaseState struct {
	idleTicks    int
	backoff      time.Duration
	backoffUntil time.Time
	// wantMachines is a machine-pool size the data plane still owes the
	// lease: set when a resize fails after a successful migration, cleared
	// once a later tick's retry lands, so the pool never silently stays
	// sized for the old depth.
	wantMachines int
}

// ControlPlane is the fleet controller: it owns the device registry,
// installs its health view as the admission service's placement filter,
// and on every Tick evacuates dead/draining devices and re-partitions
// leases against their live load.
type ControlPlane struct {
	clock Clock
	cfg   Config
	reg   *Registry
	svc   *rms.Service
	loads LoadSource
	sizer Resizer

	mu      sync.Mutex
	leases  map[int]*leaseState
	ticks   int
	defrags int
	faults  Faults
	// comm caches the per-spec comm-cost function (keyed by spec string).
	comm map[string]func(depth int) time.Duration
}

// InjectFaults arms deliberate bugs for the simulation harness.
func (cp *ControlPlane) InjectFaults(f Faults) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.faults = f
}

// New builds a control plane over the admission service, seeding the
// registry from the service's device inventory and installing the
// health-based placement filter. dp supplies load signals and resizing;
// pass the *rms.DataPlane for both (or nil to run placement-only).
func New(clock Clock, cfg Config, svc *rms.Service, dp interface {
	LoadSource
	Resizer
}) *ControlPlane {
	def := DefaultConfig()
	if cfg.MigrationBudget <= 0 {
		cfg.MigrationBudget = def.MigrationBudget
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = def.RetryBackoff
	}
	if cfg.MaxBackoff < cfg.RetryBackoff {
		cfg.MaxBackoff = def.MaxBackoff
	}
	if cfg.MachinesPerPiece <= 0 {
		cfg.MachinesPerPiece = def.MachinesPerPiece
	}
	if cfg.Planner.ScaleUpQueue <= 0 {
		cfg.Planner.ScaleUpQueue = def.Planner.ScaleUpQueue
	}
	if cfg.Planner.ScaleDownIdleTicks <= 0 {
		cfg.Planner.ScaleDownIdleTicks = def.Planner.ScaleDownIdleTicks
	}
	cp := &ControlPlane{
		clock:  clock,
		cfg:    cfg,
		reg:    NewRegistry(clock, cfg.Registry),
		svc:    svc,
		leases: map[int]*leaseState{},
		comm:   map[string]func(depth int) time.Duration{},
	}
	if dp != nil {
		cp.loads = dp
		cp.sizer = dp
	}
	for _, f := range svc.Status().FPGAs {
		if err := cp.reg.Register(f.ID, f.Device, f.TotalBlocks); err != nil {
			panic(err) // unreachable: Status lists each device once
		}
	}
	svc.SetPlacementFilter(cp.reg.Placeable)
	return cp
}

// Registry exposes the device table (for the HTTP surface and tests).
func (cp *ControlPlane) Registry() *Registry { return cp.reg }

// Heartbeat records a device liveness beat.
func (cp *ControlPlane) Heartbeat(id int) error { return cp.reg.Heartbeat(id) }

// Drain starts a graceful evacuation of the device.
func (cp *ControlPlane) Drain(id int) error { return cp.reg.Drain(id) }

// Undrain returns a draining device to service.
func (cp *ControlPlane) Undrain(id int) error { return cp.reg.Undrain(id) }

// ReportDead marks a device failed immediately.
func (cp *ControlPlane) ReportDead(id int) error { return cp.reg.ReportDead(id) }

// ObserveError inspects a serving error from the lease for positive
// device-failure evidence (a scaleout.DeviceError) and marks the failed
// device Dead without waiting out the heartbeat timers, returning the
// condemned FPGA id. DeviceError.Device is the failing member's index
// within the scaled group (its shard position), so it is translated to a
// cluster-wide id through the lease's placements, which hold one entry
// per soft block in shard order.
func (cp *ControlPlane) ObserveError(leaseID int, err error) (int, bool) {
	var de *scaleout.DeviceError
	if !errors.As(err, &de) {
		return 0, false
	}
	lease, ok := cp.svc.Lease(leaseID)
	if !ok || de.Device < 0 || de.Device >= len(lease.Placements) {
		return 0, false
	}
	fpga := lease.Placements[de.Device].FPGA
	if cp.reg.ReportDead(fpga) != nil {
		return 0, false
	}
	return fpga, true
}

// Tick runs one control pass: sweep the health state machine, evacuate
// leases off dead and draining devices, then re-partition leases against
// their load — all under the migration budget, with per-lease exponential
// backoff on failure. Lease order is ascending by id and every time read
// comes from the injected clock, so a scripted run replays exactly.
func (cp *ControlPlane) Tick() *TickReport {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.ticks++
	rep := &TickReport{Tick: cp.ticks}
	rep.Transitions = cp.reg.Sweep()
	now := cp.clock.Now()
	budget := cp.cfg.MigrationBudget
	avoid := func(id int) bool { return !cp.reg.Placeable(id) }

	leases := cp.svc.Leases()
	live := map[int]bool{}
	for _, l := range leases {
		live[l.ID] = true
		if cp.leases[l.ID] == nil {
			cp.leases[l.ID] = &leaseState{}
		}
	}
	for id := range cp.leases {
		if !live[id] {
			delete(cp.leases, id)
		}
	}

	// Phase 1: evacuate leases touching dead or draining devices.
	evacuated := map[int]bool{}
	for _, l := range leases {
		force := false
		hit := false
		for _, pl := range l.Placements {
			if st, ok := cp.reg.State(pl.FPGA); ok {
				if st == Dead {
					hit, force = true, true
				} else if st == Draining {
					hit = true
				}
			}
		}
		if !hit {
			continue
		}
		st := cp.leases[l.ID]
		if budget <= 0 || now.Before(st.backoffUntil) {
			rep.Deferred++
			continue
		}
		budget--
		// Try the current depth first; if the shrunken fleet cannot host
		// it, walk down the ladder — a shallower placement beats a lease
		// stranded on a dead device.
		try := []int{l.Depth}
		if ladder, err := cp.svc.FeasibleDepths(l.Spec); err == nil {
			for i := len(ladder) - 1; i >= 0; i-- {
				if ladder[i] < l.Depth {
					try = append(try, ladder[i])
				}
			}
		}
		ev := Event{Lease: l.ID, Kind: "evacuate", FromDepth: l.Depth, ToDepth: l.Depth}
		for _, depth := range try {
			ev.ToDepth = depth
			_, err := cp.svc.Migrate(l.ID, depth, avoid, force)
			if err == nil {
				ev.Err = ""
				break
			}
			ev.Err = err.Error()
			// Walk the ladder on capacity AND quota misses alike: a
			// shallower rung needs fewer devices and may slip under the
			// tenant's remaining device quota.
			if !errors.Is(err, rms.ErrNoCapacity) && !errors.Is(err, rms.ErrQuotaExceeded) {
				break
			}
		}
		if ev.Err != "" {
			cp.failLocked(st, now)
			metrics.MigrationFailures.Add(1)
		} else {
			cp.okLocked(st)
			evacuated[l.ID] = true
			if !cp.faults.SkipMigrationMetric {
				metrics.Migrations.Add(1)
			}
			if ev.ToDepth != ev.FromDepth && cp.sizer != nil {
				st.wantMachines = 0
				if rerr := cp.sizer.Resize(l.ID, ev.ToDepth*cp.cfg.MachinesPerPiece); rerr != nil {
					// The migration landed but the pool is still sized
					// for the old depth: remember the debt and back off,
					// so a later tick retries the resize.
					ev.Err = rerr.Error()
					st.wantMachines = ev.ToDepth * cp.cfg.MachinesPerPiece
					cp.failLocked(st, now)
				}
			}
		}
		rep.Events = append(rep.Events, ev)
	}

	// Phase 2: load-driven re-partitioning.
	for _, l := range leases {
		if evacuated[l.ID] {
			continue // one move per lease per tick
		}
		st := cp.leases[l.ID]
		if st.wantMachines > 0 && cp.sizer != nil {
			// Settle the owed machine-pool resize before planning another
			// depth change for this lease.
			if now.Before(st.backoffUntil) {
				rep.Deferred++
				continue
			}
			ev := Event{Lease: l.ID, Kind: "resize", FromDepth: l.Depth, ToDepth: l.Depth}
			if rerr := cp.sizer.Resize(l.ID, st.wantMachines); rerr != nil {
				ev.Err = rerr.Error()
				cp.failLocked(st, now)
			} else {
				st.wantMachines = 0
				cp.okLocked(st)
			}
			rep.Events = append(rep.Events, ev)
			continue
		}
		var load rms.LoadStats
		if cp.loads != nil {
			load, _ = cp.loads.Load(l.ID) // ok=false reads as idle
		}
		if load.QueueDepth == 0 && load.InFlight == 0 {
			st.idleTicks++
		} else {
			st.idleTicks = 0
		}
		ladder, err := cp.svc.FeasibleDepths(l.Spec)
		if err != nil {
			continue
		}
		target := cp.cfg.Planner.TargetDepth(l.Depth, st.idleTicks, load, ladder, cp.commCostLocked(l))
		if target == l.Depth {
			continue
		}
		if budget <= 0 || now.Before(st.backoffUntil) {
			rep.Deferred++
			continue
		}
		budget--
		kind := "scale_up"
		if target < l.Depth {
			kind = "scale_down"
		}
		ev := Event{Lease: l.ID, Kind: kind, FromDepth: l.Depth, ToDepth: target}
		if _, err := cp.svc.Migrate(l.ID, target, avoid, false); err != nil {
			ev.Err = err.Error()
			cp.failLocked(st, now)
			metrics.MigrationFailures.Add(1)
		} else {
			cp.okLocked(st)
			st.idleTicks = 0
			if !cp.faults.SkipMigrationMetric {
				metrics.Migrations.Add(1)
			}
			if cp.sizer != nil {
				st.wantMachines = 0
				if rerr := cp.sizer.Resize(l.ID, target*cp.cfg.MachinesPerPiece); rerr != nil {
					ev.Err = rerr.Error()
					st.wantMachines = target * cp.cfg.MachinesPerPiece
					cp.failLocked(st, now)
				}
			}
		}
		rep.Events = append(rep.Events, ev)
	}
	return rep
}

// failLocked applies exponential backoff after a failed migration.
func (cp *ControlPlane) failLocked(st *leaseState, now time.Time) {
	if st.backoff <= 0 {
		st.backoff = cp.cfg.RetryBackoff
	} else if st.backoff *= 2; st.backoff > cp.cfg.MaxBackoff {
		st.backoff = cp.cfg.MaxBackoff
	}
	st.backoffUntil = now.Add(st.backoff)
}

// okLocked clears a lease's backoff after a successful migration.
func (cp *ControlPlane) okLocked(st *leaseState) {
	st.backoff = 0
	st.backoffUntil = time.Time{}
}

// commCostLocked returns the cached comm-cost function for a lease's spec
// (nil when no ring is configured — no veto).
func (cp *ControlPlane) commCostLocked(l *rms.Lease) func(depth int) time.Duration {
	if cp.cfg.Ring == nil {
		return nil
	}
	key := l.SpecString
	if fn, ok := cp.comm[key]; ok {
		return fn
	}
	depths, err := cp.svc.FeasibleDepths(l.Spec)
	if err != nil {
		return nil
	}
	fn := CommCost(cp.cfg.Ring, RNNLadder(l.Spec, depths))
	cp.comm[key] = fn
	return fn
}
