package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

// fakePlane scripts load observations and records resizes, standing in for
// the rms.DataPlane in deterministic control-plane tests.
type fakePlane struct {
	mu        sync.Mutex
	loads     map[int]rms.LoadStats
	resized   map[int]int
	resizeErr error
	resizeCnt int
}

func newFakePlane() *fakePlane {
	return &fakePlane{loads: map[int]rms.LoadStats{}, resized: map[int]int{}}
}

func (f *fakePlane) Load(id int) (rms.LoadStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.loads[id]
	return l, ok
}

func (f *fakePlane) Resize(id, machines int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resizeCnt++
	if f.resizeErr != nil {
		return f.resizeErr
	}
	f.resized[id] = machines
	return nil
}

func (f *fakePlane) setResizeErr(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resizeErr = err
}

func (f *fakePlane) setLoad(id int, l rms.LoadStats) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads[id] = l
}

func testControlPlane(t *testing.T, cluster resource.ClusterSpec, cfg Config) (*ControlPlane, *rms.Service, *fakePlane, *FakeClock) {
	t.Helper()
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(cluster, db)
	if err != nil {
		t.Fatal(err)
	}
	clk := NewFakeClock(time.Unix(1000, 0))
	fp := newFakePlane()
	return New(clk, cfg, svc, fp), svc, fp, clk
}

func testSpec() kernels.LayerSpec {
	return kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 10}
}

func TestNewSeedsRegistryFromService(t *testing.T) {
	cp, _, _, _ := testControlPlane(t, resource.PaperCluster(), DefaultConfig())
	snap := cp.Registry().Snapshot()
	if len(snap) != 4 {
		t.Fatalf("registry has %d devices, want 4", len(snap))
	}
	for i, d := range snap {
		if d.ID != i || d.State != Healthy || d.Blocks <= 0 || d.Type == "" {
			t.Fatalf("device %d seeded badly: %+v", i, d)
		}
	}
}

func TestPlacementFilterInstalled(t *testing.T) {
	cp, svc, _, _ := testControlPlane(t, resource.PaperCluster(), DefaultConfig())
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	home := lease.Placements[0].FPGA
	if err := svc.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	// A drained device must not receive the next placement even without a
	// control tick: the registry is the service's placement filter.
	if err := cp.Drain(home); err != nil {
		t.Fatal(err)
	}
	lease2, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range lease2.Placements {
		if pl.FPGA == home {
			t.Fatalf("placement landed on drained device %d", home)
		}
	}
}

func TestTickEvacuatesDrainedDevice(t *testing.T) {
	cp, svc, _, _ := testControlPlane(t, resource.PaperCluster(), DefaultConfig())
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	home := lease.Placements[0].FPGA
	if err := cp.Drain(home); err != nil {
		t.Fatal(err)
	}
	rep := cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Kind != "evacuate" || rep.Events[0].Err != "" {
		t.Fatalf("events = %+v, want one clean evacuation", rep.Events)
	}
	got, _ := svc.Lease(lease.ID)
	if got.Migrations != 1 || got.Depth != lease.Depth {
		t.Fatalf("lease after evacuation: %+v", got)
	}
	for _, pl := range got.Placements {
		if pl.FPGA == home {
			t.Fatalf("lease still on drained device %d", home)
		}
	}
	// A second tick is a no-op: nothing left to evacuate.
	if rep := cp.Tick(); len(rep.Events) != 0 {
		t.Fatalf("second tick acted: %+v", rep.Events)
	}
}

func TestTickEvacuatesDeadDevice(t *testing.T) {
	cp, svc, _, clk := testControlPlane(t, resource.PaperCluster(), DefaultConfig())
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	home := lease.Placements[0].FPGA

	// The device goes silent: everyone else heartbeats, it does not.
	clk.Advance(6 * time.Second)
	for _, d := range cp.Registry().Snapshot() {
		if d.ID != home {
			_ = cp.Heartbeat(d.ID)
		}
	}
	rep := cp.Tick()
	if len(rep.Transitions) != 1 || rep.Transitions[0].To != Dead {
		t.Fatalf("transitions = %+v, want %d -> dead", rep.Transitions, home)
	}
	if len(rep.Events) != 1 || rep.Events[0].Kind != "evacuate" || rep.Events[0].Err != "" {
		t.Fatalf("events = %+v, want one clean evacuation", rep.Events)
	}
	got, _ := svc.Lease(lease.ID)
	for _, pl := range got.Placements {
		if pl.FPGA == home {
			t.Fatalf("lease still on dead device %d", home)
		}
	}
}

func TestDepthAdaptsToLoad(t *testing.T) {
	// Four XCVU37P: the only cluster shape whose ladder reaches depth 4
	// (the depth-4 deployment is homogeneous 4×XCVU37P).
	cfg := DefaultConfig()
	cp, svc, fp, _ := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 4}, cfg)
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if lease.Depth != 1 {
		t.Fatalf("greedy deploy at depth %d, want 1", lease.Depth)
	}

	// Burst: a deep backlog scales the lease one rung up.
	fp.setLoad(lease.ID, rms.LoadStats{QueueDepth: cfg.Planner.ScaleUpQueue + 2})
	rep := cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Kind != "scale_up" || rep.Events[0].ToDepth != 2 {
		t.Fatalf("events = %+v, want scale_up to 2", rep.Events)
	}
	got, _ := svc.Lease(lease.ID)
	if got.Depth != 2 || len(got.Placements) != 2 {
		t.Fatalf("lease after burst: depth %d, %d placements", got.Depth, len(got.Placements))
	}
	if fp.resized[lease.ID] != 2*cfg.MachinesPerPiece {
		t.Fatalf("resized to %d machines, want %d", fp.resized[lease.ID], 2*cfg.MachinesPerPiece)
	}

	// Burst persists: up to the top rung.
	rep = cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].ToDepth != 4 {
		t.Fatalf("events = %+v, want scale_up to 4", rep.Events)
	}

	// Burst ends: hysteresis holds for ScaleDownIdleTicks ticks, then the
	// lease steps back down one rung per tick.
	fp.setLoad(lease.ID, rms.LoadStats{})
	for i := 0; i < cfg.Planner.ScaleDownIdleTicks-1; i++ {
		if rep := cp.Tick(); len(rep.Events) != 0 {
			t.Fatalf("tick %d acted during hysteresis: %+v", i, rep.Events)
		}
	}
	rep = cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Kind != "scale_down" || rep.Events[0].ToDepth != 2 {
		t.Fatalf("events = %+v, want scale_down to 2", rep.Events)
	}
	for i := 0; i < cfg.Planner.ScaleDownIdleTicks; i++ {
		rep = cp.Tick()
	}
	if len(rep.Events) != 1 || rep.Events[0].ToDepth != 1 {
		t.Fatalf("events = %+v, want scale_down to 1", rep.Events)
	}
	got, _ = svc.Lease(lease.ID)
	if got.Depth != 1 || len(got.Placements) != 1 {
		t.Fatalf("lease after cooldown: depth %d", got.Depth)
	}
}

func TestMigrationBudgetBoundsATick(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrationBudget = 1
	cp, svc, fp, _ := testControlPlane(t, resource.PaperCluster(), cfg)
	var ids []int
	for i := 0; i < 2; i++ {
		lease, err := svc.Deploy(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, lease.ID)
		fp.setLoad(lease.ID, rms.LoadStats{QueueDepth: 100})
	}
	rep := cp.Tick()
	if len(rep.Events) != 1 || rep.Deferred != 1 {
		t.Fatalf("budgeted tick: %d events, %d deferred, want 1 and 1", len(rep.Events), rep.Deferred)
	}
	// The deferred lease gets its turn on the next tick (the first one's
	// burst has passed, so it no longer competes for the budget).
	fp.setLoad(ids[0], rms.LoadStats{})
	rep = cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Lease != ids[1] {
		t.Fatalf("second tick events = %+v, want lease %d", rep.Events, ids[1])
	}
}

func TestFailedMigrationBacksOff(t *testing.T) {
	// A single-device cluster: evacuating its only device can never
	// succeed, so the control plane must retry with exponential backoff.
	cfg := DefaultConfig()
	cp, svc, _, clk := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 1}, cfg)
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Drain(0); err != nil {
		t.Fatal(err)
	}
	rep := cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Err == "" {
		t.Fatalf("events = %+v, want one failed evacuation", rep.Events)
	}
	if !strings.Contains(rep.Events[0].Err, "no capacity") {
		t.Fatalf("err = %q, want capacity failure", rep.Events[0].Err)
	}
	// Within the backoff window the lease is deferred, not retried.
	rep = cp.Tick()
	if len(rep.Events) != 0 || rep.Deferred != 1 {
		t.Fatalf("tick inside backoff: %+v (deferred %d)", rep.Events, rep.Deferred)
	}
	// Past the window it retries (and fails again, doubling the backoff).
	clk.Advance(cfg.RetryBackoff + time.Millisecond)
	rep = cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Err == "" {
		t.Fatalf("tick after backoff: %+v", rep.Events)
	}
	clk.Advance(cfg.RetryBackoff + time.Millisecond) // first doubling: still inside
	rep = cp.Tick()
	if rep.Deferred != 1 {
		t.Fatalf("backoff did not double: %+v", rep)
	}
	// The lease is stranded but intact the whole time.
	got, ok := svc.Lease(lease.ID)
	if !ok || len(got.Placements) != 1 {
		t.Fatalf("lease lost during failed evacuation: %+v", got)
	}
}

func TestObserveError(t *testing.T) {
	cp, svc, _, _ := testControlPlane(t, resource.PaperCluster(), DefaultConfig())
	// Drain device 0 so the lease lands elsewhere: the group's shard index
	// (DeviceError.Device) must then be translated through the lease's
	// placements, not used as an FPGA id directly.
	if err := cp.Drain(0); err != nil {
		t.Fatal(err)
	}
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	home := lease.Placements[0].FPGA
	if home == 0 {
		t.Fatal("placement landed on drained device 0")
	}
	serr := fmt.Errorf("serving: %w", &scaleout.DeviceError{Device: 0, Err: fmt.Errorf("link down")})
	dev, ok := cp.ObserveError(lease.ID, serr)
	if !ok || dev != home {
		t.Fatalf("ObserveError = %d,%v, want shard 0 condemned as FPGA %d", dev, ok, home)
	}
	if st, _ := cp.Registry().State(home); st != Dead {
		t.Fatalf("device %d state = %v, want dead", home, st)
	}
	if st, _ := cp.Registry().State(0); st == Dead {
		t.Fatal("shard index condemned FPGA 0 instead of the lease's placement")
	}
	if _, ok := cp.ObserveError(lease.ID, fmt.Errorf("plain error")); ok {
		t.Fatal("plain error condemned a device")
	}
	if _, ok := cp.ObserveError(lease.ID, &scaleout.DeviceError{Device: 99}); ok {
		t.Fatal("out-of-range shard index condemned a device")
	}
	if _, ok := cp.ObserveError(lease.ID+100, &scaleout.DeviceError{Device: 0}); ok {
		t.Fatal("unknown lease condemned a device")
	}
}

func TestFailedResizeRetries(t *testing.T) {
	cfg := DefaultConfig()
	cp, svc, fp, clk := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 4}, cfg)
	lease, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fp.setLoad(lease.ID, rms.LoadStats{QueueDepth: cfg.Planner.ScaleUpQueue + 2})
	fp.setResizeErr(fmt.Errorf("engine rebuild failed"))

	// The migration lands but the pool resize fails: the event carries the
	// error and the lease goes into backoff owing a resize.
	rep := cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Kind != "scale_up" || rep.Events[0].Err == "" {
		t.Fatalf("events = %+v, want a scale_up with a resize error", rep.Events)
	}
	if got, _ := svc.Lease(lease.ID); got.Depth != 2 {
		t.Fatalf("depth = %d, want 2 (migration itself succeeded)", got.Depth)
	}

	// Within the backoff window the owed resize is deferred, not retried,
	// and no further depth change is planned for the lease.
	rep = cp.Tick()
	if len(rep.Events) != 0 || rep.Deferred != 1 {
		t.Fatalf("tick inside backoff: %+v (deferred %d)", rep.Events, rep.Deferred)
	}
	if fp.resizeCnt != 1 {
		t.Fatalf("resize called %d times during backoff, want 1", fp.resizeCnt)
	}

	// Past the window the resize (and only the resize) is retried, so the
	// machine pool finally matches the depth.
	fp.setResizeErr(nil)
	clk.Advance(cfg.RetryBackoff + time.Millisecond)
	rep = cp.Tick()
	if len(rep.Events) != 1 || rep.Events[0].Kind != "resize" || rep.Events[0].Err != "" {
		t.Fatalf("events = %+v, want one clean resize retry", rep.Events)
	}
	if fp.resized[lease.ID] != 2*cfg.MachinesPerPiece {
		t.Fatalf("pool sized to %d machines, want %d", fp.resized[lease.ID], 2*cfg.MachinesPerPiece)
	}
}
