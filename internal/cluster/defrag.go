package cluster

import (
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/rms"
)

// DefragReport is the deterministic record of one defragmentation pass.
type DefragReport struct {
	Run int `json:"run"`
	// ScoreBefore and ScoreAfter are the fragmentation scores around the
	// pass: free blocks stranded on partially-occupied devices. Lower is
	// better — stranded blocks cannot host a deployment that needs a whole
	// device, even though the fleet-wide free total says it should fit.
	ScoreBefore int `json:"score_before"`
	ScoreAfter  int `json:"score_after"`
	// EmptyBefore and EmptyAfter count fully-free devices — the currency
	// deep (multi-piece) deployments actually spend.
	EmptyBefore int `json:"empty_before"`
	EmptyAfter  int `json:"empty_after"`
	// Moves are the consolidation migrations attempted (Kind "defrag").
	Moves []Event `json:"moves,omitempty"`
	// Skipped counts leases left alone: serving traffic, in backoff, over
	// budget, or with no placement that improves the score.
	Skipped int `json:"skipped,omitempty"`
}

// fragTable is the planner's working copy of device occupancy.
type fragTable struct {
	free  map[int]int
	total map[int]int
	typ   map[int]string
	ids   []int // ascending, for deterministic iteration
}

func newFragTable(st rms.ClusterStatus) *fragTable {
	t := &fragTable{free: map[int]int{}, total: map[int]int{}, typ: map[int]string{}}
	for _, f := range st.FPGAs { // Status lists devices sorted by id
		t.free[f.ID] = f.FreeBlocks
		t.total[f.ID] = f.TotalBlocks
		t.typ[f.ID] = f.Device
		t.ids = append(t.ids, f.ID)
	}
	return t
}

// score is the stranded-free-block count: free blocks on devices that are
// neither full nor empty.
func (t *fragTable) score() int {
	s := 0
	for _, id := range t.ids {
		if f := t.free[id]; f > 0 && f < t.total[id] {
			s += f
		}
	}
	return s
}

// empty counts fully-free devices.
func (t *fragTable) empty() int {
	n := 0
	for _, id := range t.ids {
		if t.free[id] == t.total[id] {
			n++
		}
	}
	return n
}

// preview best-fit places the lease's current piece shapes onto devices
// other than its own, mirroring the service's placement policy (fewest
// free blocks that still fit), and returns the score the move would
// yield. ok is false when no such placement exists.
func (t *fragTable) preview(l *rms.Lease, placeable func(int) bool) (score int, ok bool) {
	own := map[int]bool{}
	for _, pl := range l.Placements {
		own[pl.FPGA] = true
	}
	trial := map[int]int{}
	for id, f := range t.free {
		trial[id] = f
	}
	for _, pl := range l.Placements {
		trial[pl.FPGA] += pl.Blocks // vacating frees the old blocks first
	}
	used := map[int]bool{}
	for _, pl := range l.Placements {
		best, bestFree := -1, 1<<30
		for _, id := range t.ids {
			if own[id] || used[id] || t.typ[id] != pl.Device || !placeable(id) {
				continue
			}
			if f := trial[id]; f >= pl.Blocks && f < bestFree {
				best, bestFree = id, f
			}
		}
		if best < 0 {
			return 0, false
		}
		used[best] = true
		trial[best] -= pl.Blocks
	}
	saved := t.free
	t.free = trial
	score = t.score()
	t.free = saved
	return score, true
}

// apply replays a committed migration into the working table.
func (t *fragTable) apply(old, new []rms.Placement) {
	for _, pl := range old {
		t.free[pl.FPGA] += pl.Blocks
	}
	for _, pl := range new {
		t.free[pl.FPGA] -= pl.Blocks
	}
}

// Defrag runs one quiet-period defragmentation pass: idle leases are
// consolidated onto already-occupied devices (same-depth make-before-break
// migrations, best-fit like every placement) whenever the move lowers the
// fragmentation score — free blocks stranded on partially-occupied
// devices. Leases serving traffic are never touched; should load arrive
// mid-move, the data-plane Resize transplants queued and resident streams
// onto the new placement via checkpoint/restore, so callers see latency,
// not errors. The pass shares the control plane's migration budget and
// per-lease backoff, so defrag cannot stampede a fleet that Tick is
// already repairing. Lease order is ascending by id and every time read
// comes from the injected clock, so a scripted run replays exactly.
func (cp *ControlPlane) Defrag() *DefragReport {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.defrags++
	metrics.DefragRuns.Add(1)
	rep := &DefragReport{Run: cp.defrags}
	now := cp.clock.Now()
	budget := cp.cfg.MigrationBudget
	avoid := func(id int) bool { return !cp.reg.Placeable(id) }

	tab := newFragTable(cp.svc.Status())
	rep.ScoreBefore, rep.EmptyBefore = tab.score(), tab.empty()

	for _, l := range cp.svc.Leases() {
		st := cp.leases[l.ID]
		if st == nil {
			st = &leaseState{}
			cp.leases[l.ID] = st
		}
		if budget <= 0 || now.Before(st.backoffUntil) {
			rep.Skipped++
			continue
		}
		// Quiet gate: only leases with nothing queued and nothing resident
		// are candidates — defrag is maintenance, not load management.
		if cp.loads != nil {
			if load, ok := cp.loads.Load(l.ID); ok && (load.QueueDepth > 0 || load.InFlight > 0) {
				rep.Skipped++
				continue
			}
		}
		moved, ok := tab.preview(l, cp.reg.Placeable)
		if !ok || moved >= tab.score() {
			rep.Skipped++
			continue
		}
		budget--
		own := map[int]bool{}
		for _, pl := range l.Placements {
			own[pl.FPGA] = true
		}
		ev := Event{Lease: l.ID, Kind: "defrag", FromDepth: l.Depth, ToDepth: l.Depth}
		moved2, err := cp.svc.Migrate(l.ID, l.Depth,
			func(id int) bool { return avoid(id) || own[id] }, false)
		if err != nil {
			ev.Err = err.Error()
			cp.failLocked(st, now)
			metrics.MigrationFailures.Add(1)
		} else {
			cp.okLocked(st)
			tab.apply(l.Placements, moved2.Placements)
			metrics.DefragMoves.Add(1)
			if !cp.faults.SkipMigrationMetric {
				metrics.Migrations.Add(1)
			}
			if cp.sizer != nil {
				// Rebuild the engine pool against the new placement; the
				// transplant checkpoints any streams that slipped in since
				// the quiet check and resumes them on the new devices.
				st.wantMachines = 0
				if rerr := cp.sizer.Resize(l.ID, l.Depth*cp.cfg.MachinesPerPiece); rerr != nil {
					ev.Err = rerr.Error()
					st.wantMachines = l.Depth * cp.cfg.MachinesPerPiece
					cp.failLocked(st, now)
				}
			}
		}
		rep.Moves = append(rep.Moves, ev)
	}
	rep.ScoreAfter, rep.EmptyAfter = tab.score(), tab.empty()
	return rep
}
