package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mlvfpga/internal/metrics"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
)

// fragment deploys leases until one lands on a second device, then
// releases the intermediates, leaving exactly two idle single-piece
// leases stranded on two partially-occupied devices — the canonical
// fragmented layout a consolidation pass must fix.
func fragment(t *testing.T, svc *rms.Service) (*rms.Lease, *rms.Lease) {
	t.Helper()
	first, err := svc.Deploy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var extras []int
	for i := 0; i < 64; i++ {
		l, err := svc.Deploy(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if l.Placements[0].FPGA != first.Placements[0].FPGA {
			for _, id := range extras {
				if err := svc.Release(id); err != nil {
					t.Fatal(err)
				}
			}
			return first, l
		}
		extras = append(extras, l.ID)
	}
	t.Fatal("64 deploys never spilled onto a second device")
	return nil, nil
}

func TestDefragConsolidatesIdleLeases(t *testing.T) {
	cfg := DefaultConfig()
	cp, svc, fp, _ := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 4}, cfg)
	first, second := fragment(t, svc)
	runsBase := metrics.DefragRuns.Value()
	movesBase := metrics.DefragMoves.Value()

	rep := cp.Defrag()
	if rep.Run != 1 {
		t.Fatalf("run = %d, want 1", rep.Run)
	}
	if len(rep.Moves) != 1 || rep.Moves[0].Kind != "defrag" || rep.Moves[0].Err != "" {
		t.Fatalf("moves = %+v, want one clean defrag move", rep.Moves)
	}
	if rep.Moves[0].FromDepth != rep.Moves[0].ToDepth {
		t.Fatalf("defrag changed depth: %+v", rep.Moves[0])
	}
	if rep.ScoreAfter >= rep.ScoreBefore {
		t.Fatalf("score did not improve: %d -> %d", rep.ScoreBefore, rep.ScoreAfter)
	}
	if rep.EmptyAfter <= rep.EmptyBefore {
		t.Fatalf("empty devices did not increase: %d -> %d", rep.EmptyBefore, rep.EmptyAfter)
	}
	gotFirst, _ := svc.Lease(first.ID)
	gotSecond, _ := svc.Lease(second.ID)
	if gotFirst.Placements[0].FPGA != gotSecond.Placements[0].FPGA {
		t.Fatalf("leases still apart: fpga %d vs %d",
			gotFirst.Placements[0].FPGA, gotSecond.Placements[0].FPGA)
	}
	if gotFirst.Migrations+gotSecond.Migrations != 1 {
		t.Fatalf("migrations = %d+%d, want exactly one move",
			gotFirst.Migrations, gotSecond.Migrations)
	}
	// The mover's engine pool was rebuilt against the new placement (the
	// Resize transplant is what carries any in-flight streams across).
	moved := rep.Moves[0].Lease
	if fp.resized[moved] != 1*cfg.MachinesPerPiece {
		t.Fatalf("resized[%d] = %d, want %d", moved, fp.resized[moved], cfg.MachinesPerPiece)
	}
	if metrics.DefragRuns.Value()-runsBase != 1 || metrics.DefragMoves.Value()-movesBase != 1 {
		t.Fatalf("counters: runs +%d moves +%d, want +1 +1",
			metrics.DefragRuns.Value()-runsBase, metrics.DefragMoves.Value()-movesBase)
	}

	// The layout has converged: a second pass finds nothing to improve.
	rep = cp.Defrag()
	if len(rep.Moves) != 0 || rep.Run != 2 {
		t.Fatalf("second pass: %+v, want no moves", rep)
	}
	if rep.ScoreAfter != rep.ScoreBefore {
		t.Fatalf("idempotent pass changed score: %d -> %d", rep.ScoreBefore, rep.ScoreAfter)
	}
}

func TestDefragSkipsBusyLeases(t *testing.T) {
	cp, svc, fp, _ := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 4}, DefaultConfig())
	first, second := fragment(t, svc)
	fp.setLoad(first.ID, rms.LoadStats{InFlight: 1})
	fp.setLoad(second.ID, rms.LoadStats{QueueDepth: 3})

	rep := cp.Defrag()
	if len(rep.Moves) != 0 {
		t.Fatalf("defrag moved busy leases: %+v", rep.Moves)
	}
	if rep.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", rep.Skipped)
	}
	if rep.ScoreAfter != rep.ScoreBefore {
		t.Fatalf("no-op pass changed score: %d -> %d", rep.ScoreBefore, rep.ScoreAfter)
	}

	// Quiesce: the same layout now consolidates.
	fp.setLoad(first.ID, rms.LoadStats{})
	fp.setLoad(second.ID, rms.LoadStats{})
	if rep := cp.Defrag(); len(rep.Moves) != 1 {
		t.Fatalf("quiet pass: %+v, want one move", rep.Moves)
	}
}

func TestDefragRespectsBudgetAndBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrationBudget = 0 // floor-clamped to the default by New
	cp, svc, _, _ := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 4}, cfg)
	fragment(t, svc)

	// Exhaust the budget artificially by shrinking it after construction.
	cp.mu.Lock()
	cp.cfg.MigrationBudget = 0
	cp.mu.Unlock()
	rep := cp.Defrag()
	if len(rep.Moves) != 0 || rep.Skipped == 0 {
		t.Fatalf("budget-less pass acted: %+v", rep)
	}
}

func TestDefragHTTPAndCLIShape(t *testing.T) {
	cp, svc, _, _ := testControlPlane(t, resource.ClusterSpec{resource.XCVU37P.Name: 4}, DefaultConfig())
	fragment(t, svc)
	srv := httptest.NewServer(cp.Handler(rms.Handler(svc)))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/cluster/defrag", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /cluster/defrag: %d", resp.StatusCode)
	}
	var rep DefragReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != 1 || rep.Moves[0].Kind != "defrag" {
		t.Fatalf("report over HTTP: %+v", rep)
	}

	// Wrong method is a JSON 405, matching the rest of the surface.
	getResp, err := http.Get(srv.URL + "/cluster/defrag")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /cluster/defrag: %d, want 405", getResp.StatusCode)
	}
}
