package cluster

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

// goldenStack is one complete serving stack — admission service, batched
// data plane and control plane on a fake clock — isolated from its twin.
type goldenStack struct {
	svc *rms.Service
	dp  *rms.DataPlane
	cp  *ControlPlane
}

func newGoldenStack(t *testing.T, opts rms.InferOptions) *goldenStack {
	t.Helper()
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		t.Fatal(err)
	}
	dp := rms.NewDataPlane(svc, opts)
	t.Cleanup(dp.Close)
	cp := New(NewFakeClock(time.Unix(1000, 0)), DefaultConfig(), svc, dp)
	return &goldenStack{svc: svc, dp: dp, cp: cp}
}

func goldenInputs(spec kernels.LayerSpec, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, spec.TimeSteps)
	for ts := range in {
		v := make([]float64, spec.Hidden)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		in[ts] = v
	}
	return in
}

// TestMigratedLeaseServesGoldenOutputs streams the same requests at two
// twin leases on independent stacks and migrates one of them mid-stream
// (control-plane drain + evacuation tick). Every /infer response payload
// must stay byte-identical to the unmigrated twin's: migration moves the
// lease's placements but must not perturb a single output bit, because
// weights are regenerated from the lease identity, not copied state.
func TestMigratedLeaseServesGoldenOutputs(t *testing.T) {
	opts := rms.InferOptions{
		MaxBatch:   4,
		FlushDelay: 100 * time.Microsecond,
		Machines:   1,
		Tiles:      1,
		Seed:       42,
	}
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 64, TimeSteps: 4}

	migrated := newGoldenStack(t, opts)
	pristine := newGoldenStack(t, opts)

	// Both stacks assign lease ID 1 to their first deploy, so the twins
	// share weights by construction.
	leaseA, err := migrated.svc.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	leaseB, err := pristine.svc.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if leaseA.ID != leaseB.ID {
		t.Fatalf("twin leases diverged before the first request: IDs %d vs %d", leaseA.ID, leaseB.ID)
	}

	const requests = 24
	outputsAt := func(s *goldenStack, i int) []byte {
		t.Helper()
		res, err := s.dp.Infer(leaseA.ID, goldenInputs(spec, int64(i)))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		raw, err := json.Marshal(res.Outputs)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		return raw
	}
	migrate := func(i int) {
		t.Helper()
		lease, ok := migrated.svc.Lease(leaseA.ID)
		if !ok {
			t.Fatalf("lease %d vanished before migration", leaseA.ID)
		}
		home := lease.Placements[0].FPGA
		if err := migrated.cp.Drain(home); err != nil {
			t.Fatalf("request %d: drain device %d: %v", i, home, err)
		}
		rep := migrated.cp.Tick()
		for _, ev := range rep.Events {
			if ev.Err != "" {
				t.Fatalf("request %d: %s of lease %d failed: %s", i, ev.Kind, ev.Lease, ev.Err)
			}
		}
		moved, _ := migrated.svc.Lease(leaseA.ID)
		for _, pl := range moved.Placements {
			if pl.FPGA == home {
				t.Fatalf("request %d: lease still on drained device %d", i, home)
			}
		}
		if err := migrated.cp.Undrain(home); err != nil {
			t.Fatalf("request %d: undrain device %d: %v", i, home, err)
		}
	}

	migrations := 0
	for i := 0; i < requests; i++ {
		// Migrate twice mid-stream — at one third and two thirds of the
		// way through — so responses are compared before, between and
		// after migrations.
		if i == requests/3 || i == 2*requests/3 {
			migrate(i)
			migrations++
		}
		got, want := outputsAt(migrated, i), outputsAt(pristine, i)
		if string(got) != string(want) {
			t.Fatalf("request %d (after %d migrations): outputs diverged\n  migrated: %.120s\n  pristine: %.120s",
				i, migrations, got, want)
		}
	}

	lease, _ := migrated.svc.Lease(leaseA.ID)
	if lease.Migrations < 2 {
		t.Fatalf("stream finished with %d migrations recorded, want >= 2", lease.Migrations)
	}
}
