package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler exposes the control plane as a JSON HTTP API, layered over the
// base handler (the rms data-plane mux) so one server serves both:
//
//	GET  /cluster/devices                   -> []DeviceInfo
//	POST /cluster/drain     {"id":2}        -> 204 (add "undrain":true to revert)
//	POST /cluster/heartbeat {"id":2}        -> 204
//	POST /cluster/kill      {"id":2}        -> 204 (immediate Dead, as from failure evidence)
//	POST /cluster/rebalance                 -> TickReport (one control pass, on demand)
//	POST /cluster/defrag                    -> DefragReport (one consolidation pass)
//
// base may be nil when the control plane runs standalone.
//
// The mutating /cluster/* operations condemn hardware and move tenant
// workloads, so servers must put this handler behind a tenant.Guard
// (whose default AdminPrefixes covers /cluster/) unless running with an
// explicit -insecure flag; the guard rejects non-admin tenants with 403.
func (cp *ControlPlane) Handler(base http.Handler) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	// deviceOp decodes {"id":N} and applies fn, sharing the shape of the
	// drain/heartbeat/kill endpoints.
	deviceOp := func(fn func(id int) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
				return
			}
			var req struct {
				ID int `json:"id"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			if err := fn(req.ID); err != nil {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}

	mux.HandleFunc("/cluster/devices", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
			return
		}
		writeJSON(w, http.StatusOK, cp.reg.Snapshot())
	})

	mux.HandleFunc("/cluster/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req struct {
			ID      int  `json:"id"`
			Undrain bool `json:"undrain"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		op := cp.Drain
		if req.Undrain {
			op = cp.Undrain
		}
		if err := op(req.ID); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.Handle("/cluster/heartbeat", deviceOp(cp.Heartbeat))
	mux.Handle("/cluster/kill", deviceOp(cp.ReportDead))

	mux.HandleFunc("/cluster/rebalance", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		writeJSON(w, http.StatusOK, cp.Tick())
	})

	mux.HandleFunc("/cluster/defrag", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		writeJSON(w, http.StatusOK, cp.Defrag())
	})

	if base != nil {
		mux.Handle("/", base)
	}
	return mux
}
