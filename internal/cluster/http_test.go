package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
)

func TestClusterHTTP(t *testing.T) {
	cp, svc, _, _ := testControlPlane(t, resource.PaperCluster(), DefaultConfig())
	srv := httptest.NewServer(cp.Handler(rms.Handler(svc)))
	defer srv.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Device inventory.
	resp, err := http.Get(srv.URL + "/cluster/devices")
	if err != nil {
		t.Fatal(err)
	}
	var devs []DeviceInfo
	if err := json.NewDecoder(resp.Body).Decode(&devs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(devs) != 4 {
		t.Fatalf("got %d devices, want 4", len(devs))
	}

	// Deploy through the layered base handler, then drain the lease's home
	// device and rebalance.
	resp = post("/deploy", `{"kind":"LSTM","hidden":256,"timesteps":10}`)
	var lease rms.Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(lease.Placements) == 0 {
		t.Fatalf("deploy via base handler: %d %+v", resp.StatusCode, lease)
	}
	home := lease.Placements[0].FPGA

	resp = post("/cluster/drain", `{"id":`+itoa(home)+`}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	if st, _ := cp.Registry().State(home); st != Draining {
		t.Fatalf("device %d = %v after drain", home, st)
	}

	resp = post("/cluster/rebalance", ``)
	var rep TickReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rep.Events) != 1 || rep.Events[0].Kind != "evacuate" {
		t.Fatalf("rebalance report: %+v", rep)
	}

	resp = post("/cluster/drain", `{"id":`+itoa(home)+`,"undrain":true}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("undrain: %d", resp.StatusCode)
	}

	// Kill marks a device dead immediately; heartbeat revives it.
	resp = post("/cluster/kill", `{"id":2}`)
	resp.Body.Close()
	if st, _ := cp.Registry().State(2); st != Dead {
		t.Fatalf("device 2 = %v after kill", st)
	}
	resp = post("/cluster/heartbeat", `{"id":2}`)
	resp.Body.Close()
	if st, _ := cp.Registry().State(2); st != Healthy {
		t.Fatalf("device 2 = %v after heartbeat", st)
	}

	// Unknown devices are 404s; wrong methods are 405s.
	resp = post("/cluster/kill", `{"id":99}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("kill unknown: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/cluster/rebalance")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET rebalance: %d", resp.StatusCode)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
