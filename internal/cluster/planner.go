package cluster

import (
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/partition"
	"mlvfpga/internal/rms"
)

// PlannerConfig tunes the load-driven depth selection. The decision is a
// pure function of the lease's load observation, so control-plane runs
// replay deterministically.
type PlannerConfig struct {
	// ScaleUpQueue is the queue depth (waiting requests) at or above
	// which a lease climbs one rung on the partition ladder.
	ScaleUpQueue int
	// ScaleDownIdleTicks is how many consecutive idle observations
	// (empty queue, nothing in flight) a lease must accumulate before it
	// descends one rung — hysteresis against burst edges.
	ScaleDownIdleTicks int
	// MaxStepComm, when positive, vetoes a scale-up whose modelled
	// per-step communication cost exceeds it: beyond this point the
	// interconnect eats the throughput gain.
	MaxStepComm time.Duration
}

// DefaultPlannerConfig returns serving defaults: scale up under a backlog
// of 8, scale down after 3 consecutive idle control ticks.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{ScaleUpQueue: 8, ScaleDownIdleTicks: 3}
}

// TargetDepth picks the next rung for a lease: cur stays unless the
// backlog demands a deeper deployment (and the ladder plus comm budget
// allow one) or sustained idleness allows a shallower one. ladder must be
// ascending; commCost may be nil when no interconnect veto applies.
func (cfg PlannerConfig) TargetDepth(cur, idleTicks int, load rms.LoadStats, ladder []int, commCost func(depth int) time.Duration) int {
	if len(ladder) == 0 {
		return cur
	}
	idx := ladderIndex(ladder, cur)
	if load.QueueDepth >= cfg.ScaleUpQueue && idx+1 < len(ladder) {
		next := ladder[idx+1]
		if cfg.MaxStepComm > 0 && commCost != nil && commCost(next) > cfg.MaxStepComm {
			return cur
		}
		return next
	}
	if load.QueueDepth == 0 && load.InFlight == 0 && idleTicks >= cfg.ScaleDownIdleTicks && idx > 0 {
		return ladder[idx-1]
	}
	return cur
}

// ladderIndex locates cur on the ladder, clamping to the nearest rung.
func ladderIndex(ladder []int, cur int) int {
	for i, d := range ladder {
		if d >= cur {
			return i
		}
	}
	return len(ladder) - 1
}

// Rung mirrors partition.Rung at the control-plane level: deploying a
// lease onto Pieces devices moves StepBytes over the interconnect per
// timestep.
type Rung struct {
	Pieces    int
	StepBytes int64
}

// RNNLadder derives the communication ladder for an RNN layer served by
// the scale-out data plane: at depth k each device contributes an h/k
// shard of fp16 words to the per-step all-gather.
func RNNLadder(spec kernels.LayerSpec, depths []int) []Rung {
	out := make([]Rung, 0, len(depths))
	for _, k := range depths {
		var bytes int64
		if k > 1 {
			bytes = int64(spec.Hidden) / int64(k) * 2
		}
		out = append(out, Rung{Pieces: k, StepBytes: bytes})
	}
	return out
}

// LadderFromPartition converts a partition tree's ladder (§2.2.2, Fig. 6)
// into control-plane rungs: CutBits is bandwidth per element, so a depth's
// per-step traffic is CutBits/8 bytes times the element count.
func LadderFromPartition(res *partition.Result, elementsPerStep int) []Rung {
	prs := res.Ladder()
	out := make([]Rung, 0, len(prs))
	for _, r := range prs {
		out = append(out, Rung{
			Pieces:    r.Pieces,
			StepBytes: int64(r.CutBits) / 8 * int64(elementsPerStep),
		})
	}
	return out
}

// CommCost models a depth's per-step interconnect cost on the ring: the
// all-gather of the depth's shards across the first Pieces ring positions
// (the runtime places pieces on distinct devices; adjacency is the
// best case the planner budgets for).
func CommCost(ring *netmodel.Ring, rungs []Rung) func(depth int) time.Duration {
	if ring == nil {
		return nil
	}
	return func(depth int) time.Duration {
		for _, r := range rungs {
			if r.Pieces != depth {
				continue
			}
			if depth <= 1 || depth > ring.Nodes() {
				return 0
			}
			members := make([]int, depth)
			for i := range members {
				members[i] = i
			}
			d, err := ring.AllGatherTime(members, r.StepBytes)
			if err != nil {
				return 0
			}
			return d
		}
		return 0
	}
}
