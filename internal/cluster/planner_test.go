package cluster

import (
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/rms"
)

func TestTargetDepth(t *testing.T) {
	cfg := DefaultPlannerConfig()
	ladder := []int{1, 2, 4}

	hot := rms.LoadStats{QueueDepth: cfg.ScaleUpQueue}
	if got := cfg.TargetDepth(1, 0, hot, ladder, nil); got != 2 {
		t.Fatalf("hot depth-1 lease -> %d, want 2", got)
	}
	if got := cfg.TargetDepth(2, 0, hot, ladder, nil); got != 4 {
		t.Fatalf("hot depth-2 lease -> %d, want 4", got)
	}
	if got := cfg.TargetDepth(4, 0, hot, ladder, nil); got != 4 {
		t.Fatalf("hot lease at top rung -> %d, want 4", got)
	}

	idle := rms.LoadStats{}
	if got := cfg.TargetDepth(2, cfg.ScaleDownIdleTicks-1, idle, ladder, nil); got != 2 {
		t.Fatalf("briefly idle lease moved to %d, want hysteresis hold at 2", got)
	}
	if got := cfg.TargetDepth(2, cfg.ScaleDownIdleTicks, idle, ladder, nil); got != 1 {
		t.Fatalf("idle lease -> %d, want 1", got)
	}
	if got := cfg.TargetDepth(1, 100, idle, ladder, nil); got != 1 {
		t.Fatalf("idle lease at bottom rung -> %d, want 1", got)
	}
	// In-flight work blocks a scale-down even with an empty queue.
	busy := rms.LoadStats{InFlight: 1}
	if got := cfg.TargetDepth(2, 100, busy, ladder, nil); got != 2 {
		t.Fatalf("busy lease scaled down to %d", got)
	}
}

func TestTargetDepthCommVeto(t *testing.T) {
	cfg := DefaultPlannerConfig()
	cfg.MaxStepComm = time.Microsecond
	ladder := []int{1, 2}
	hot := rms.LoadStats{QueueDepth: cfg.ScaleUpQueue}
	cheap := func(int) time.Duration { return 100 * time.Nanosecond }
	costly := func(int) time.Duration { return 10 * time.Microsecond }
	if got := cfg.TargetDepth(1, 0, hot, ladder, cheap); got != 2 {
		t.Fatalf("cheap scale-up vetoed: got %d", got)
	}
	if got := cfg.TargetDepth(1, 0, hot, ladder, costly); got != 1 {
		t.Fatalf("costly scale-up allowed: got %d", got)
	}
}

func TestRNNLadderAndCommCost(t *testing.T) {
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 25}
	rungs := RNNLadder(spec, []int{1, 2, 4})
	if len(rungs) != 3 {
		t.Fatalf("ladder has %d rungs", len(rungs))
	}
	if rungs[0].StepBytes != 0 {
		t.Fatalf("single-device rung moves %d bytes, want 0", rungs[0].StepBytes)
	}
	// h/k fp16 words: 512/2*2 = 512, 512/4*2 = 256.
	if rungs[1].StepBytes != 512 || rungs[2].StepBytes != 256 {
		t.Fatalf("shard bytes = %d,%d, want 512,256", rungs[1].StepBytes, rungs[2].StepBytes)
	}

	ring, err := netmodel.NewRing(4, netmodel.DefaultRingLink())
	if err != nil {
		t.Fatal(err)
	}
	cost := CommCost(ring, rungs)
	if cost(1) != 0 {
		t.Fatalf("depth-1 comm cost = %v, want 0", cost(1))
	}
	if c2, c4 := cost(2), cost(4); c2 <= 0 || c4 <= c2 {
		t.Fatalf("comm costs %v (depth 2), %v (depth 4): want 0 < c2 < c4", c2, c4)
	}
	if CommCost(nil, rungs) != nil {
		t.Fatal("nil ring must yield nil cost function")
	}
}
