package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"mlvfpga/internal/metrics"
)

// State is a device's position in the health state machine:
//
//	            heartbeat                 heartbeat
//	   ┌─────────────────────┐   ┌─────────────────────────┐
//	   ▼                     │   ▼                         │
//	Healthy ──SuspectAfter──► Suspect ──DeadAfter──► Dead ─┘
//	   │
//	   └──Drain()──► Draining ──Undrain()──► Healthy
//
// Suspect devices take no new placements but keep their leases (the miss
// may be a hiccup); Dead and Draining devices are evacuated. A heartbeat
// revives Suspect and Dead devices; Draining is an administrative state
// cleared only by Undrain.
type State int

const (
	// Healthy devices heartbeat on time and accept placements.
	Healthy State = iota
	// Suspect devices missed heartbeats for SuspectAfter: no new
	// placements, existing leases stay put pending recovery.
	Suspect
	// Dead devices missed heartbeats for DeadAfter: leases are
	// force-migrated off.
	Dead
	// Draining devices are administratively leaving: no new placements
	// and leases migrate off gracefully (make-before-break).
	Draining
)

func (s State) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Draining:
		return "draining"
	}
	return "healthy"
}

// MarshalJSON renders the state name for API clients.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON parses a state name (the CLI reads device snapshots).
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "healthy":
		*s = Healthy
	case "suspect":
		*s = Suspect
	case "dead":
		*s = Dead
	case "draining":
		*s = Draining
	default:
		return fmt.Errorf("cluster: unknown state %q", name)
	}
	return nil
}

// RegistryConfig tunes the health state machine.
type RegistryConfig struct {
	// SuspectAfter is the missed-heartbeat window before Healthy devices
	// turn Suspect.
	SuspectAfter time.Duration
	// DeadAfter is the window before Suspect devices turn Dead.
	DeadAfter time.Duration
}

// DefaultRegistryConfig matches a 500ms heartbeat interval: suspect after
// three missed beats, dead after ten.
func DefaultRegistryConfig() RegistryConfig {
	return RegistryConfig{SuspectAfter: 1500 * time.Millisecond, DeadAfter: 5 * time.Second}
}

// device is the registry's record of one fleet member.
type device struct {
	id       int
	typ      string
	blocks   int
	state    State
	draining bool // sticky admin flag, survives health transitions
	lastBeat time.Time
}

// DeviceInfo is a point-in-time view of a registry entry.
type DeviceInfo struct {
	ID int `json:"id"`
	// Type is the device type name (the typed capacity's device class).
	Type string `json:"type"`
	// Blocks is the device's virtual-block capacity.
	Blocks int   `json:"blocks"`
	State  State `json:"state"`
	// SinceBeat is how long ago the device last heartbeat.
	SinceBeat time.Duration `json:"since_heartbeat_ns"`
}

// Transition is one state change observed by a sweep or report.
type Transition struct {
	Device int   `json:"device"`
	From   State `json:"from"`
	To     State `json:"to"`
}

// Registry is the fleet's device table: typed capacities plus the health
// state machine, driven entirely by the injected clock.
type Registry struct {
	mu      sync.Mutex
	clock   Clock
	cfg     RegistryConfig
	devices map[int]*device
}

// NewRegistry builds an empty registry.
func NewRegistry(clock Clock, cfg RegistryConfig) *Registry {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultRegistryConfig().SuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter * 3
	}
	return &Registry{clock: clock, cfg: cfg, devices: map[int]*device{}}
}

// Register adds a device with its typed capacity, initially Healthy as of
// the current clock.
func (r *Registry) Register(id int, deviceType string, blocks int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.devices[id]; ok {
		return fmt.Errorf("cluster: device %d already registered", id)
	}
	r.devices[id] = &device{id: id, typ: deviceType, blocks: blocks, lastBeat: r.clock.Now()}
	return nil
}

// Heartbeat records a liveness beat, reviving Suspect and Dead devices.
// Draining devices stay Draining — the beat only refreshes their clock.
func (r *Registry) Heartbeat(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("cluster: heartbeat from unknown device %d", id)
	}
	d.lastBeat = r.clock.Now()
	if d.state == Suspect || d.state == Dead {
		if d.draining {
			d.state = Draining
		} else {
			d.state = Healthy
		}
	}
	return nil
}

// Drain marks a device as administratively leaving.
func (r *Registry) Drain(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("cluster: drain of unknown device %d", id)
	}
	d.draining = true
	if d.state == Healthy {
		d.state = Draining
	}
	return nil
}

// Undrain returns a draining device to service.
func (r *Registry) Undrain(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("cluster: undrain of unknown device %d", id)
	}
	d.draining = false
	if d.state == Draining {
		d.state = Healthy
	}
	return nil
}

// ReportDead marks a device Dead immediately — the path for positive
// failure evidence (a scaleout.DeviceError) that should not wait out the
// heartbeat timers.
func (r *Registry) ReportDead(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("cluster: failure report for unknown device %d", id)
	}
	if d.state != Dead {
		metrics.DevicesCondemned.Add(1)
		d.state = Dead
	}
	return nil
}

// Sweep advances the health state machine against the clock and returns
// the transitions, sorted by device id (deterministic under a fake
// clock). Each downgrade counts as a heartbeat miss.
func (r *Registry) Sweep() []Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	var out []Transition
	for _, d := range r.devices {
		overdue := now.Sub(d.lastBeat)
		next := d.state
		switch d.state {
		case Healthy, Draining:
			if overdue > r.cfg.DeadAfter {
				next = Dead
			} else if overdue > r.cfg.SuspectAfter {
				next = Suspect
			}
		case Suspect:
			if overdue > r.cfg.DeadAfter {
				next = Dead
			}
		}
		if next != d.state {
			out = append(out, Transition{Device: d.id, From: d.state, To: next})
			d.state = next
			metrics.HeartbeatMisses.Add(1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// State returns a device's current state.
func (r *Registry) State(id int) (State, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return Healthy, false
	}
	return d.state, true
}

// Placeable reports whether new soft blocks may land on the device: only
// Healthy members take placements.
func (r *Registry) Placeable(id int) bool {
	st, ok := r.State(id)
	return ok && st == Healthy
}

// Evacuate reports whether leases must migrate off the device (Dead or
// Draining).
func (r *Registry) Evacuate(id int) bool {
	st, ok := r.State(id)
	return ok && (st == Dead || st == Draining)
}

// Snapshot lists every device sorted by id.
func (r *Registry) Snapshot() []DeviceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	out := make([]DeviceInfo, 0, len(r.devices))
	for _, d := range r.devices {
		out = append(out, DeviceInfo{
			ID: d.id, Type: d.typ, Blocks: d.blocks,
			State: d.state, SinceBeat: now.Sub(d.lastBeat),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
