package cluster

import (
	"encoding/json"
	"testing"
	"time"
)

func testRegistry(t *testing.T) (*Registry, *FakeClock) {
	t.Helper()
	clk := NewFakeClock(time.Unix(1000, 0))
	r := NewRegistry(clk, DefaultRegistryConfig())
	for id, typ := range []string{"a", "a", "b"} {
		if err := r.Register(id, typ, 12); err != nil {
			t.Fatal(err)
		}
	}
	return r, clk
}

func TestHealthStateMachine(t *testing.T) {
	r, clk := testRegistry(t)
	if tr := r.Sweep(); len(tr) != 0 {
		t.Fatalf("fresh registry swept to %v", tr)
	}
	if !r.Placeable(1) {
		t.Fatal("healthy device not placeable")
	}

	// Devices 0 and 2 heartbeat; device 1 goes silent.
	clk.Advance(2 * time.Second)
	for _, id := range []int{0, 2} {
		if err := r.Heartbeat(id); err != nil {
			t.Fatal(err)
		}
	}
	tr := r.Sweep()
	if len(tr) != 1 || tr[0] != (Transition{Device: 1, From: Healthy, To: Suspect}) {
		t.Fatalf("sweep = %v, want device 1 healthy->suspect", tr)
	}
	if r.Placeable(1) {
		t.Fatal("suspect device must not take placements")
	}
	if r.Evacuate(1) {
		t.Fatal("suspect device must keep its leases")
	}

	// Still silent past DeadAfter: suspect -> dead, now evacuated.
	clk.Advance(4 * time.Second)
	_ = r.Heartbeat(0)
	_ = r.Heartbeat(2)
	tr = r.Sweep()
	if len(tr) != 1 || tr[0] != (Transition{Device: 1, From: Suspect, To: Dead}) {
		t.Fatalf("sweep = %v, want device 1 suspect->dead", tr)
	}
	if !r.Evacuate(1) {
		t.Fatal("dead device must be evacuated")
	}

	// A late heartbeat revives it.
	if err := r.Heartbeat(1); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State(1); st != Healthy {
		t.Fatalf("state after revival = %v, want healthy", st)
	}
}

func TestDrainIsSticky(t *testing.T) {
	r, clk := testRegistry(t)
	if err := r.Drain(2); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State(2); st != Draining {
		t.Fatalf("state = %v, want draining", st)
	}
	if r.Placeable(2) || !r.Evacuate(2) {
		t.Fatal("draining device must refuse placements and evacuate leases")
	}

	// Heartbeats do not clear the admin flag.
	if err := r.Heartbeat(2); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State(2); st != Draining {
		t.Fatalf("heartbeat cleared draining: %v", st)
	}

	// Health transitions ride on top: silence turns it suspect, the next
	// beat returns it to Draining (not Healthy).
	clk.Advance(2 * time.Second)
	_ = r.Heartbeat(0)
	_ = r.Heartbeat(1)
	_ = r.Sweep()
	if st, _ := r.State(2); st != Suspect {
		t.Fatalf("silent draining device = %v, want suspect", st)
	}
	_ = r.Heartbeat(2)
	if st, _ := r.State(2); st != Draining {
		t.Fatalf("revived draining device = %v, want draining", st)
	}

	if err := r.Undrain(2); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State(2); st != Healthy || !r.Placeable(2) {
		t.Fatalf("undrained device = %v, want healthy", st)
	}
}

func TestReportDead(t *testing.T) {
	r, _ := testRegistry(t)
	if err := r.ReportDead(0); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State(0); st != Dead {
		t.Fatalf("state = %v, want dead", st)
	}
	if err := r.ReportDead(99); err == nil {
		t.Fatal("report for unknown device must fail")
	}
	if err := r.Heartbeat(99); err == nil {
		t.Fatal("heartbeat from unknown device must fail")
	}
	if err := r.Drain(99); err == nil {
		t.Fatal("drain of unknown device must fail")
	}
}

func TestSnapshotSortedAndJSON(t *testing.T) {
	r, clk := testRegistry(t)
	_ = r.Drain(1)
	clk.Advance(time.Second)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d devices, want 3", len(snap))
	}
	for i, d := range snap {
		if d.ID != i {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
		if d.SinceBeat != time.Second {
			t.Fatalf("since_beat = %v, want 1s", d.SinceBeat)
		}
	}
	b, err := json.Marshal(snap[1])
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got["state"] != "draining" {
		t.Fatalf("state marshalled as %v, want \"draining\"", got["state"])
	}
}
