package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/tenant"
)

// AutoDevice, used for KillDevice or DrainDevice, targets a device that
// actually hosts a lease at script time (the interesting victim).
const AutoDevice = -2

// SoakOptions scripts a failure-injection soak: concurrent clients serve
// real inferences through the data plane while the control loop runs,
// one device is killed mid-run (its heartbeats stop) and another is
// drained. The run passes only if every accepted request completes and no
// lease is lost.
type SoakOptions struct {
	// Cluster is the fleet shape (default: the paper's 4-device cluster).
	Cluster resource.ClusterSpec
	// Spec is the served layer (default: a small LSTM, kept small so the
	// soak's time goes to concurrency, not arithmetic).
	Spec kernels.LayerSpec
	// Leases is the number of concurrently served deployments.
	Leases int
	// Requests is the per-lease request count.
	Requests int
	// Clients is the per-lease client concurrency (the burst width that
	// drives queue depth and hence scale-ups).
	Clients int
	// Steps is the number of scripted control-loop iterations; ticking
	// continues past Steps until the request load drains.
	Steps int
	// KillAtStep stops a device's heartbeats at this control step; the
	// registry times it out to Suspect then Dead (-1 disables).
	KillAtStep int
	// KillDevice is the device whose heartbeats stop (AutoDevice picks a
	// lease-hosting device).
	KillDevice int
	// DrainAtStep drains DrainDevice at this step (-1 disables).
	DrainAtStep int
	// DrainDevice is the administratively drained device (AutoDevice
	// picks a lease-hosting device distinct from the killed one).
	DrainDevice int
	// Tenants, when non-empty, labels the load: leases are deployed
	// round-robin across the tenants (quota-checked) and every request is
	// submitted through InferAs, so the soak drives the fair-share queue
	// and per-tenant accounting under churn. Empty keeps the historical
	// anonymous load.
	Tenants []tenant.Tenant
	// Seed drives the input generator.
	Seed int64
}

// DefaultSoakOptions is the acceptance scenario: 4 devices, one killed
// mid-run, another drained, with enough client concurrency to trigger
// depth scale-ups.
func DefaultSoakOptions() SoakOptions {
	return SoakOptions{
		Cluster:     resource.PaperCluster(),
		Spec:        kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 64, TimeSteps: 4},
		Leases:      2,
		Requests:    160,
		Clients:     16,
		Steps:       24,
		KillAtStep:  4,
		KillDevice:  AutoDevice,
		DrainAtStep: 8,
		DrainDevice: AutoDevice,
		Tenants: []tenant.Tenant{
			{ID: "soak-lat", Key: "soak-lat-key", Class: tenant.Latency},
			{ID: "soak-bat", Key: "soak-bat-key", Class: tenant.Batch},
		},
		Seed: 1,
	}
}

// ShortSoakOptions shrinks the run for CI's -short mode while still
// reaching the Dead transition (kill early, keep enough steps for the
// heartbeat timers to expire).
func ShortSoakOptions() SoakOptions {
	o := DefaultSoakOptions()
	o.Requests = 48
	o.Steps = 16
	o.KillAtStep = 1
	o.DrainAtStep = 2
	return o
}

// SoakResult is the harness's verdict plus the evidence.
type SoakResult struct {
	Accepted  int `json:"accepted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// LostLeases counts leases that disappeared without a Release — must
	// be zero.
	LostLeases int `json:"lost_leases"`
	// Migrations is the sum over surviving leases of their migration
	// counters (evacuations plus depth changes).
	Migrations int `json:"migrations"`
	// MaxDepth is the deepest rung any lease reached during the run
	// (depth adaptation evidence: > 1 means the burst scaled something).
	MaxDepth int `json:"max_depth"`
	// KilledDevice and DrainedDevice are the resolved victims.
	KilledDevice  int `json:"killed_device"`
	DrainedDevice int `json:"drained_device"`
	// Stranded counts placements still sitting on dead or draining
	// devices at the end of the run — must be zero: every lease either
	// evacuated or re-partitioned onto healthy members.
	Stranded int `json:"stranded"`
	// Reports is the full control-loop decision log.
	Reports []*TickReport `json:"reports"`
	// TickLatencies are the wall-clock costs of each control pass,
	// sorted ascending (the control-plane latency numbers in
	// BENCH_cluster.json).
	TickLatencies []time.Duration `json:"tick_latencies_ns"`
	// Devices is the final fleet snapshot.
	Devices []DeviceInfo `json:"devices"`
	// TenantCompleted breaks Completed down by tenant id (only populated
	// for tenant-labeled runs). Σ TenantCompleted == Completed.
	TenantCompleted map[string]int `json:"tenant_completed,omitempty"`
}

// TickLatencyPercentile returns the p-th percentile control-pass latency.
func (r *SoakResult) TickLatencyPercentile(p float64) time.Duration {
	if len(r.TickLatencies) == 0 {
		return 0
	}
	i := int(p * float64(len(r.TickLatencies)-1))
	return r.TickLatencies[i]
}

// RunSoak executes the scripted soak. The control plane runs on a fake
// clock advanced one heartbeat interval per step, so every health
// transition and backoff decision is a deterministic function of the
// script; the serving load rides real goroutines underneath.
func RunSoak(o SoakOptions) (*SoakResult, error) {
	if o.Cluster == nil {
		o.Cluster = resource.PaperCluster()
	}
	if o.Spec.Hidden == 0 {
		o.Spec = DefaultSoakOptions().Spec
	}
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(o.Cluster, db)
	if err != nil {
		return nil, err
	}
	// One machine and small batches to start: the client burst piles up in
	// the queue, so depth scale-ups (which widen the machine pool) have
	// observable work to absorb.
	iopts := rms.DefaultInferOptions()
	iopts.FlushDelay = 200 * time.Microsecond
	iopts.MaxBatch = 4
	iopts.Machines = 1
	dp := rms.NewDataPlane(svc, iopts)
	defer dp.Close()

	cfg := DefaultConfig()
	cfg.RetryBackoff = 100 * time.Millisecond
	// The engine queue saturates at MaxBatch×Machines entries, so the
	// scale-up trigger must sit below that ceiling to ever observe a
	// backlog.
	cfg.Planner.ScaleUpQueue = 3
	clk := NewFakeClock(time.Unix(0, 0))
	cp := New(clk, cfg, svc, dp)

	if len(o.Tenants) > 0 {
		reg, err := tenant.NewRegistry(o.Tenants...)
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		svc.SetTenants(reg)
		dp.SetTenants(reg)
	}
	var leases []*rms.Lease
	leaseTenant := map[int]string{}
	for i := 0; i < o.Leases; i++ {
		po := rms.PlaceOptions{}
		if len(o.Tenants) > 0 {
			po.Tenant = o.Tenants[i%len(o.Tenants)].ID
		}
		l, err := svc.DeployWith(o.Spec, po)
		if err != nil {
			return nil, fmt.Errorf("soak: deploying lease %d: %w", i, err)
		}
		leases = append(leases, l)
		leaseTenant[l.ID] = l.Tenant
	}
	resolveVictims(&o, leases)
	if o.DrainDevice == -1 && o.DrainAtStep >= 0 {
		// Every lease lives on the killed device: drain any other member.
		for _, d := range cp.Registry().Snapshot() {
			if d.ID != o.KillDevice {
				o.DrainDevice = d.ID
				break
			}
		}
	}
	res := &SoakResult{MaxDepth: 1, KilledDevice: o.KillDevice, DrainedDevice: o.DrainDevice}

	var accepted, completed, failed atomic.Int64
	var tcMu sync.Mutex
	tenantCompleted := map[string]int{}
	var wg sync.WaitGroup
	for li, l := range leases {
		for c := 0; c < o.Clients; c++ {
			wg.Add(1)
			go func(leaseID int, who string, worker int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(o.Seed + int64(worker)*7919 + int64(leaseID)))
				n := o.Requests / o.Clients
				for i := 0; i < n; i++ {
					inputs := make([][]float64, o.Spec.TimeSteps)
					for t := range inputs {
						x := make([]float64, o.Spec.Hidden)
						for j := range x {
							x[j] = rng.Float64()*2 - 1
						}
						inputs[t] = x
					}
					accepted.Add(1)
					if _, err := dp.InferAs(who, leaseID, inputs); err != nil {
						failed.Add(1)
					} else {
						completed.Add(1)
						if who != "" {
							tcMu.Lock()
							tenantCompleted[who]++
							tcMu.Unlock()
						}
					}
				}
			}(l.ID, leaseTenant[l.ID], li*o.Clients+c)
		}
	}

	beat := cfg.Registry.SuspectAfter / 3 // the nominal heartbeat interval
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	// Keep ticking until the clients finish, the scripted steps have run,
	// and a cooldown of idle ticks has let scaled-up leases walk back down
	// the ladder.
	cooldown := 3*cfg.Planner.ScaleDownIdleTicks + 2
	for step := 0; ; step++ {
		select {
		case <-clientsDone:
			if step >= o.Steps {
				cooldown--
			}
		default:
		}
		if cooldown < 0 {
			break
		}
		clk.Advance(beat)
		if o.DrainAtStep >= 0 && step == o.DrainAtStep && o.DrainDevice >= 0 {
			if err := cp.Drain(o.DrainDevice); err != nil {
				return nil, err
			}
		}
		for _, d := range cp.Registry().Snapshot() {
			if o.KillAtStep >= 0 && step >= o.KillAtStep && d.ID == o.KillDevice {
				continue // the killed device goes silent
			}
			_ = cp.Heartbeat(d.ID)
		}
		start := time.Now()
		rep := cp.Tick()
		res.TickLatencies = append(res.TickLatencies, time.Since(start))
		res.Reports = append(res.Reports, rep)
		for _, l := range svc.Leases() {
			if l.Depth > res.MaxDepth {
				res.MaxDepth = l.Depth
			}
		}
		// Pace the ticks so the serving load evolves between control
		// passes (the fake clock still advances one beat per tick).
		time.Sleep(2 * time.Millisecond)
	}

	res.Accepted = int(accepted.Load())
	res.Completed = int(completed.Load())
	res.Failed = int(failed.Load())
	if len(tenantCompleted) > 0 {
		res.TenantCompleted = tenantCompleted
	}
	for _, l := range svc.Leases() {
		res.Migrations += l.Migrations
	}
	res.LostLeases = o.Leases - len(svc.Leases())
	res.Devices = cp.Registry().Snapshot()
	for _, l := range svc.Leases() {
		for _, pl := range l.Placements {
			if cp.Registry().Evacuate(pl.FPGA) {
				res.Stranded++
			}
		}
	}
	sort.Slice(res.TickLatencies, func(i, j int) bool { return res.TickLatencies[i] < res.TickLatencies[j] })

	for _, l := range leases {
		if err := svc.Release(l.ID); err != nil {
			return nil, fmt.Errorf("soak: releasing lease %d: %w", l.ID, err)
		}
	}
	return res, nil
}

// resolveVictims replaces AutoDevice markers with devices that actually
// host leases, so the injected failures hit serving placements.
func resolveVictims(o *SoakOptions, leases []*rms.Lease) {
	homes := []int{}
	seen := map[int]bool{}
	for _, l := range leases {
		for _, pl := range l.Placements {
			if !seen[pl.FPGA] {
				seen[pl.FPGA] = true
				homes = append(homes, pl.FPGA)
			}
		}
	}
	sort.Ints(homes)
	pick := func(avoid int) int {
		for _, h := range homes {
			if h != avoid {
				return h
			}
		}
		return -1
	}
	if o.KillDevice == AutoDevice {
		o.KillDevice = pick(-1)
	}
	if o.DrainDevice == AutoDevice {
		o.DrainDevice = pick(o.KillDevice)
	}
}
