package cluster

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

func rmsTestDatabase() *rms.Database {
	return rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
}

// TestSoakFailureInjection is the acceptance scenario: real serving
// across 4 simulated devices while one is killed mid-run and another is
// drained. Every accepted request must complete and no lease may be lost.
func TestSoakFailureInjection(t *testing.T) {
	o := DefaultSoakOptions()
	if testing.Short() {
		o = ShortSoakOptions()
	}
	res, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Accepted {
		t.Fatalf("lost requests: accepted %d, completed %d, failed %d",
			res.Accepted, res.Completed, res.Failed)
	}
	if res.LostLeases != 0 {
		t.Fatalf("%d leases lost", res.LostLeases)
	}
	// The killed device must have timed out to Dead and the drained one
	// must be Draining, with no lease left on either by the end.
	states := map[int]State{}
	for _, d := range res.Devices {
		states[d.ID] = d.State
	}
	if states[res.KilledDevice] != Dead {
		t.Fatalf("killed device %d ended %v, want dead", res.KilledDevice, states[res.KilledDevice])
	}
	if res.DrainedDevice >= 0 && states[res.DrainedDevice] != Draining {
		t.Fatalf("drained device %d ended %v, want draining", res.DrainedDevice, states[res.DrainedDevice])
	}
	// The end-state invariant: whether by evacuation or by a depth change
	// that re-placed it, no lease may still touch a dead or draining
	// device when the run settles.
	if res.Stranded != 0 {
		t.Fatalf("%d placements stranded on dead/draining devices", res.Stranded)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations recorded on surviving leases")
	}
	t.Logf("soak: %d requests, %d migrations, max depth %d, tick p50 %v p99 %v",
		res.Completed, res.Migrations, res.MaxDepth,
		res.TickLatencyPercentile(0.50), res.TickLatencyPercentile(0.99))
}

// TestSoakDepthScalesUnderBurst asserts the load-driven part end to end:
// the client burst drives a lease deeper than its deploy depth, and the
// decision log records both directions.
func TestSoakDepthScalesUnderBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("burst soak needs the full request count")
	}
	o := DefaultSoakOptions()
	o.KillAtStep, o.DrainAtStep = -1, -1 // isolate the load signal
	// The scale-up trigger needs one control tick to overlap a >=3-deep
	// queue. The default burst can drain between two paced ticks on a fast
	// machine, so sustain it: enough requests that the client phase spans
	// many ticks.
	o.Requests = 1280
	res, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d requests failed", res.Failed)
	}
	if res.MaxDepth < 2 {
		t.Fatalf("burst never scaled any lease deeper: max depth %d", res.MaxDepth)
	}
	ups, downs := 0, 0
	for _, rep := range res.Reports {
		for _, ev := range rep.Events {
			if ev.Err != "" {
				continue
			}
			switch ev.Kind {
			case "scale_up":
				ups++
			case "scale_down":
				downs++
			}
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("depth did not adapt both ways: %d scale-ups, %d scale-downs", ups, downs)
	}
}

// TestControlLoopDeterministic replays an identical scripted run — fake
// clock, scripted loads, scripted failures — twice and requires
// bit-identical decision logs.
func TestControlLoopDeterministic(t *testing.T) {
	run := func() []byte {
		db := rmsTestDatabase()
		svc, err := rms.NewService(resource.PaperCluster(), db)
		if err != nil {
			t.Fatal(err)
		}
		clk := NewFakeClock(time.Unix(42, 0))
		fp := newFakePlane()
		cp := New(clk, DefaultConfig(), svc, fp)
		var ids []int
		for i := 0; i < 3; i++ {
			l, err := svc.Deploy(testSpec())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, l.ID)
		}
		rng := rand.New(rand.NewSource(7))
		var log []*TickReport
		for step := 0; step < 40; step++ {
			clk.Advance(500 * time.Millisecond)
			for _, d := range cp.Registry().Snapshot() {
				if step >= 10 && d.ID == 1 {
					continue // scripted kill
				}
				_ = cp.Heartbeat(d.ID)
			}
			if step == 20 {
				_ = cp.Drain(3)
			}
			for _, id := range ids {
				// Scripted load: pseudo-random bursts from a fixed seed.
				q := 0
				if rng.Intn(3) == 0 {
					q = 10 + rng.Intn(10)
				}
				fp.setLoad(id, rms.LoadStats{QueueDepth: q})
			}
			log = append(log, cp.Tick())
		}
		b, err := json.Marshal(log)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("scripted control runs diverged:\n%s\n---\n%s", a, b)
	}
}
