// Package compilebench holds the compilation-cache benchmark bodies,
// shared by the repo's `go test -bench` wrappers and by
// cmd/mlv-bench-compile, which records them into BENCH_compile.json.
package compilebench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/core"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/parpool"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

// benchSpec is the deploy shape under measurement: the DeepBench LSTM
// h=1536 layer, whose instance is large enough that a cold deploy pays a
// multi-millisecond compile (the §4.3 offline-flow cost).
func benchSpec() kernels.LayerSpec {
	return kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1536, TimeSteps: 2}
}

func benchService(b *testing.B) *rms.Service {
	b.Helper()
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

// DeployCold measures a cold-cache Deploy: every iteration faces a fresh
// artifact store, so each op pays the full decompose → partition →
// HS-compile pipeline before placement.
func DeployCold(b *testing.B) {
	svc := benchService(b)
	spec := benchSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.SetCompiler(rms.NewCompiler(artifactstore.NewMemory(artifactstore.Options{}), rms.CompilerOptions{Parallelism: 1}))
		l, err := svc.Deploy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if l.WarmDeploy {
			b.Fatal("cold deploy reported warm")
		}
		b.StopTimer()
		if err := svc.Release(l.ID); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// DeployWarm measures a cache-hit Deploy: the store is populated once
// outside the timer, so every op skips compilation entirely and goes
// straight to placement. The body asserts via the store's counters that
// the hit path performed zero compile work.
func DeployWarm(b *testing.B) {
	svc := benchService(b)
	spec := benchSpec()
	store := artifactstore.NewMemory(artifactstore.Options{})
	svc.SetCompiler(rms.NewCompiler(store, rms.CompilerOptions{Parallelism: 1}))
	warm, err := svc.Deploy(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Release(warm.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := svc.Deploy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !l.WarmDeploy {
			b.Fatal("warm deploy missed the cache")
		}
		b.StopTimer()
		if err := svc.Release(l.ID); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if st := store.Stats(); st.Computes != 1 {
		b.Fatalf("warm loop compiled: %d computes, want the 1 from the warm-up (stats %+v)", st.Computes, st)
	}
}

// SweepResult records one repeat catalog sweep (see RepeatCatalogSweep).
type SweepResult struct {
	Entries        int           `json:"entries"`
	UniqueDesigns  int           `json:"unique_designs"`
	FirstWall      time.Duration `json:"first_wall_ns"`
	SecondWall     time.Duration `json:"second_wall_ns"`
	FirstComputes  int64         `json:"first_computes"`
	SecondComputes int64         `json:"second_computes"`
	// Speedup is FirstWall / SecondWall.
	Speedup float64 `json:"speedup"`
}

func (r *SweepResult) String() string {
	return fmt.Sprintf("%d-instance sweep (%d unique): first %v (%d compiles), repeat %v (%d compiles), %.1fx",
		r.Entries, r.UniqueDesigns, r.FirstWall.Round(time.Millisecond), r.FirstComputes,
		r.SecondWall.Round(time.Millisecond), r.SecondComputes, r.Speedup)
}

// RepeatCatalogSweep runs an entries-long instance compile sweep twice
// over one artifact store — the fleet-rollout shape, where a bounded set
// of designs (the DefaultTileCounts catalog at seedsPerTile decomposer
// seeds, 200 unique designs) is requested over and over. The first pass
// compiles each unique design exactly once; the repeat pass must perform
// zero compiles and be bound by cache lookups alone.
func RepeatCatalogSweep(entries, parallelism int) (*SweepResult, error) {
	const seedsPerTile = 20
	tiles := core.DefaultTileCounts()
	unique := len(tiles) * seedsPerTile
	opts := make([]core.Options, entries)
	for i := range opts {
		opts[i] = core.Options{
			Tiles:               tiles[i%len(tiles)],
			PartitionIterations: 2,
			Seed:                1 + int64((i/len(tiles))%seedsPerTile),
			PatternAware:        true,
			Parallelism:         1,
		}
	}
	store := artifactstore.NewMemory(artifactstore.Options{MaxMemEntries: 2 * unique})
	run := func() (time.Duration, error) {
		t0 := time.Now()
		_, err := parpool.Map(context.Background(), parpool.Workers(parallelism), len(opts),
			func(_ context.Context, i int) (*core.Compiled, error) {
				c, _, _, err := core.CompileAcceleratorCached(opts[i], store)
				return c, err
			})
		return time.Since(t0), err
	}

	first, err := run()
	if err != nil {
		return nil, err
	}
	firstComputes := store.Stats().Computes

	second, err := run()
	if err != nil {
		return nil, err
	}

	r := &SweepResult{
		Entries:        entries,
		UniqueDesigns:  unique,
		FirstWall:      first,
		SecondWall:     second,
		FirstComputes:  firstComputes,
		SecondComputes: store.Stats().Computes - firstComputes,
	}
	if second > 0 {
		r.Speedup = float64(first) / float64(second)
	}
	return r, nil
}
