package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/decompose"
	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/parpool"
	"mlvfpga/internal/partition"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/softblock"
)

// This file fronts the offline flow with the content-addressed artifact
// store: CompileKey derives the canonical structural hash of everything
// that determines a Compiled result, CompiledCodec frames the result as a
// blob payload, and CompileAcceleratorCached / InstanceCatalogCached are
// the cache-aware entry points the runtime and the experiment sweeps use.
// A cache hit skips the entire decompose → partition → HS-compile
// pipeline and, by construction, returns an artifact bit-identical to a
// cold compile (the decode/encode round trip is covered by golden tests).

// compiledSalt names the Compiled keyspace and its wire-format version.
// Bump it whenever Options, the snapshot layout, or any serialized type
// changes shape, so blobs written by older binaries miss cleanly instead
// of decoding into a differently-shaped artifact.
const compiledSalt = "mlvfpga/compiled/v1"

// CompileKey derives the content address of the Compiled artifact for
// opts: a canonical FNV-64a digest (rtl.CanonHash) over every input that
// determines the compilation product — the Options fields, the
// per-device-type calibration (control and per-tile resource vectors,
// virtual-block capacity and clock), and the format-version salt.
// Parallelism is deliberately excluded: the Compiled result is identical
// at every setting, so all settings share one artifact.
func CompileKey(opts Options) artifactstore.Key {
	h := rtl.NewCanonHash(compiledSalt)
	h.Field("tiles", opts.Tiles)
	h.Field("iterations", opts.PartitionIterations)
	h.Field("seed", opts.Seed)
	h.Field("pattern_aware", opts.PatternAware)
	h.Raw(calibrationBlock())
	return artifactstore.Key("compiled-" + h.Hex())
}

var (
	calOnce  sync.Once
	calBytes []byte
)

// calibrationBlock renders the per-device-type calibration fields once per
// process (the tables are fixed at init): key derivation is on the warm
// deploy path, and re-formatting the whole table per lookup would swamp
// the cache hit itself. The byte stream matches emitting the same fields
// through CanonHash.Field one by one.
func calibrationBlock() []byte {
	calOnce.Do(func() {
		var b []byte
		field := func(name string, v any) { b = fmt.Appendf(b, "%s=%v;", name, v) }
		for _, spec := range hsvital.AllSpecs() {
			dev := spec.Device.Name
			field("device", dev)
			field("blocks_per_device", spec.BlocksPerDevice)
			field("block_usable", spec.BlockUsable)
			field("clock_mhz", spec.ClockMHz)
			field("max_tiles", hsvital.MaxTiles(dev))
			if ctrl, err := hsvital.ControlResources(dev); err == nil {
				field("control_res", ctrl)
			}
			if perTile, err := hsvital.PerTileResources(dev); err == nil {
				field("per_tile_res", perTile)
			}
		}
		calBytes = b
	})
	return calBytes
}

// imageSnapshot is PieceImage with the piece pointer flattened to its
// pre-order index in Partition.AllPieces(), which both shrinks the blob
// (the partition tree is stored once) and lets decode re-attach images to
// the decoded tree's nodes, preserving the identity invariants the
// frontier/ladder walks rely on.
type imageSnapshot struct {
	Piece       int            `json:"piece"`
	Image       *hsvital.Image `json:"image"`
	Lanes       int            `json:"lanes"`
	WithControl bool           `json:"with_control,omitempty"`
}

// compiledSnapshot is the blob payload layout for one Compiled artifact.
type compiledSnapshot struct {
	Opts           Options                    `json:"opts"`
	Accelerator    *softblock.Accelerator     `json:"accelerator"`
	Partition      *partition.Result          `json:"partition"`
	Images         map[string][]imageSnapshot `json:"images"`
	DecomposeTime  time.Duration              `json:"decompose_time_ns"`
	PartitionTime  time.Duration              `json:"partition_time_ns"`
	HSCompileTime  time.Duration              `json:"hs_compile_time_ns"`
	DecomposeStats decompose.Stats            `json:"decompose_stats"`
}

// compiledCodec implements artifactstore.Codec for *Compiled.
type compiledCodec struct{}

// CompiledCodec (de)serializes Compiled artifacts for the artifact store.
var CompiledCodec artifactstore.Codec = compiledCodec{}

func (compiledCodec) Encode(v any) ([]byte, error) {
	c, ok := v.(*Compiled)
	if !ok || c == nil {
		return nil, fmt.Errorf("core: codec wants *Compiled, got %T", v)
	}
	idx := map[*partition.Node]int{}
	for i, n := range c.Partition.AllPieces() {
		idx[n] = i
	}
	snap := compiledSnapshot{
		Opts:           c.Opts,
		Accelerator:    c.Accelerator,
		Partition:      c.Partition,
		Images:         map[string][]imageSnapshot{},
		DecomposeTime:  c.DecomposeTime,
		PartitionTime:  c.PartitionTime,
		HSCompileTime:  c.HSCompileTime,
		DecomposeStats: c.DecomposeStats,
	}
	for dev, images := range c.Images {
		out := make([]imageSnapshot, 0, len(images))
		for _, pi := range images {
			i, ok := idx[pi.Piece]
			if !ok {
				return nil, fmt.Errorf("core: image piece %q not in partition tree", pi.Image.PieceID)
			}
			out = append(out, imageSnapshot{
				Piece: i, Image: pi.Image, Lanes: pi.Lanes, WithControl: pi.WithControl,
			})
		}
		snap.Images[dev] = out
	}
	return json.Marshal(snap)
}

func (compiledCodec) Decode(data []byte) (any, error) {
	var snap compiledSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	if snap.Accelerator == nil || snap.Partition == nil || snap.Partition.Root == nil {
		return nil, fmt.Errorf("core: snapshot missing accelerator or partition tree")
	}
	pieces := snap.Partition.AllPieces()
	c := &Compiled{
		Opts:           snap.Opts,
		Accelerator:    snap.Accelerator,
		Partition:      snap.Partition,
		Images:         map[string][]PieceImage{},
		DecomposeTime:  snap.DecomposeTime,
		PartitionTime:  snap.PartitionTime,
		HSCompileTime:  snap.HSCompileTime,
		DecomposeStats: snap.DecomposeStats,
	}
	for dev, images := range snap.Images {
		out := make([]PieceImage, 0, len(images))
		for _, is := range images {
			if is.Piece < 0 || is.Piece >= len(pieces) {
				return nil, fmt.Errorf("core: image piece index %d outside tree of %d", is.Piece, len(pieces))
			}
			if is.Image == nil {
				return nil, fmt.Errorf("core: snapshot image missing for piece %d", is.Piece)
			}
			out = append(out, PieceImage{
				Piece: pieces[is.Piece], Image: is.Image, Lanes: is.Lanes, WithControl: is.WithControl,
			})
		}
		c.Images[dev] = out
	}
	if len(c.Images) == 0 {
		return nil, ErrNoImages
	}
	return c, nil
}

// CompileAcceleratorCached is CompileAccelerator fronted by the artifact
// store: on hit (memory LRU or validated disk blob) the whole offline
// pipeline is skipped, and concurrent calls for one key compile exactly
// once via the store's singleflight guard. The returned artifact may be
// shared between callers and must be treated as immutable. A nil store
// degrades to a plain cold compile. warm reports whether the artifact came
// from cache.
func CompileAcceleratorCached(opts Options, store *artifactstore.Store) (c *Compiled, key artifactstore.Key, warm bool, err error) {
	key = CompileKey(opts)
	if store == nil {
		c, err = CompileAccelerator(opts)
		return c, key, false, err
	}
	v, hit, err := store.GetOrCompute(key, CompiledCodec, func() (any, error) {
		return CompileAccelerator(opts)
	})
	if err != nil {
		return nil, key, false, err
	}
	return v.(*Compiled), key, hit, nil
}

// InstanceCatalogCached compiles the instance catalog through the artifact
// store: a repeat sweep over a warm store performs zero compiles and is
// bound by cache lookups. Semantics otherwise match
// InstanceCatalogParallel (nil store degrades to it).
func InstanceCatalogCached(tileCounts []int, iterations int, seed int64, parallelism int, store *artifactstore.Store) ([]*Compiled, error) {
	if store == nil {
		return InstanceCatalogParallel(tileCounts, iterations, seed, parallelism)
	}
	workers := parpool.Workers(parallelism)
	const inner = 1 // see InstanceCatalogParallel: instance-level fan-out saturates the pool
	return parpool.Map(context.Background(), workers, len(tileCounts),
		func(_ context.Context, i int) (*Compiled, error) {
			c, _, _, err := CompileAcceleratorCached(Options{
				Tiles:               tileCounts[i],
				PartitionIterations: iterations,
				Seed:                seed,
				PatternAware:        true,
				Parallelism:         inner,
			}, store)
			if err != nil {
				return nil, fmt.Errorf("core: instance with %d tiles: %w", tileCounts[i], err)
			}
			return c, nil
		})
}
