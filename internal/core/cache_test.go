package core

import (
	"testing"

	"mlvfpga/internal/artifactstore"
)

func testOpts() Options {
	return Options{Tiles: 2, PartitionIterations: 2, Seed: 1, PatternAware: true, Parallelism: 1}
}

func TestCompileKeyCanonical(t *testing.T) {
	base := testOpts()
	if CompileKey(base) != CompileKey(base) {
		t.Fatal("key not stable for identical options")
	}
	// Parallelism never changes the compiled result, so it must not
	// change the address either.
	par := base
	par.Parallelism = 8
	if CompileKey(par) != CompileKey(base) {
		t.Fatal("key depends on Parallelism")
	}
	// Every result-determining field must move the key.
	for name, mut := range map[string]func(*Options){
		"tiles":      func(o *Options) { o.Tiles = 3 },
		"iterations": func(o *Options) { o.PartitionIterations = 3 },
		"seed":       func(o *Options) { o.Seed = 2 },
		"pattern":    func(o *Options) { o.PatternAware = false },
	} {
		o := testOpts()
		mut(&o)
		if CompileKey(o) == CompileKey(base) {
			t.Errorf("key ignores %s", name)
		}
	}
}

// TestCompiledCodecRoundTrip is the bit-identity golden test for the blob
// format: decode(encode(cold)) must fingerprint identically to the cold
// compile, and the decoded images must point into the decoded partition
// tree (the identity the frontier and ladder walks rely on).
func TestCompiledCodecRoundTrip(t *testing.T) {
	cold, err := CompileAccelerator(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := CompiledCodec.Encode(cold)
	if err != nil {
		t.Fatal(err)
	}
	v, err := CompiledCodec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	warm := v.(*Compiled)
	if got, want := compiledFingerprint(t, warm), compiledFingerprint(t, cold); got != want {
		t.Fatal("decoded artifact is not bit-identical to the cold compile")
	}
	if warm.Opts != cold.Opts {
		t.Fatalf("opts %+v, want %+v", warm.Opts, cold.Opts)
	}
	inTree := map[any]bool{}
	for _, n := range warm.Partition.AllPieces() {
		inTree[n] = true
	}
	for dev, images := range warm.Images {
		for _, pi := range images {
			if !inTree[pi.Piece] {
				t.Fatalf("%s image %q detached from decoded partition tree", dev, pi.Image.PieceID)
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	for name, payload := range map[string][]byte{
		"notjson": []byte("not json"),
		"empty":   []byte("{}"),
		"badidx":  []byte(`{"accelerator":{"name":"x","control":{"id":"c","kind":"leaf","module_key":"m","resources":{},"in_bits":0,"out_bits":0},"data":{"id":"d","kind":"leaf","module_key":"m","resources":{},"in_bits":0,"out_bits":0}},"partition":{"Root":{"Block":{"id":"d","kind":"leaf","module_key":"m","resources":{},"in_bits":0,"out_bits":0},"CutBits":0,"CutKind":"leaf"},"Iterations":0},"images":{"dev":[{"piece":9,"image":{},"lanes":1}]}}`),
	} {
		if _, err := CompiledCodec.Decode(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestCompileAcceleratorCached(t *testing.T) {
	dir := t.TempDir()
	store, err := artifactstore.Open(dir, artifactstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, key, warm, err := CompileAcceleratorCached(testOpts(), store)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("cold-cache compile reported warm")
	}
	if key != CompileKey(testOpts()) {
		t.Fatalf("key = %s", key)
	}
	hit, _, warm2, err := CompileAcceleratorCached(testOpts(), store)
	if err != nil {
		t.Fatal(err)
	}
	if !warm2 {
		t.Fatal("second compile missed the cache")
	}
	if hit != cold {
		t.Fatal("memory hit did not return the shared artifact")
	}
	if st := store.Stats(); st.Computes != 1 {
		t.Fatalf("stats = %+v, want exactly one compile", st)
	}

	// A fresh store over the same directory must serve the blob without
	// recompiling, bit-identical to the cold artifact.
	reopened, err := artifactstore.Open(dir, artifactstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, _, warm3, err := CompileAcceleratorCached(testOpts(), reopened)
	if err != nil {
		t.Fatal(err)
	}
	if !warm3 {
		t.Fatal("reopened store recompiled")
	}
	if got, want := compiledFingerprint(t, disk), compiledFingerprint(t, cold); got != want {
		t.Fatal("disk-loaded artifact is not bit-identical to the cold compile")
	}
	if st := reopened.Stats(); st.Computes != 0 || st.DiskHits != 1 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

func TestInstanceCatalogCachedRepeatSweepIsCacheBound(t *testing.T) {
	store := artifactstore.NewMemory(artifactstore.Options{})
	tiles := []int{1, 2, 3}
	first, err := InstanceCatalogCached(tiles, 2, 1, 1, store)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Computes != int64(len(tiles)) {
		t.Fatalf("first sweep stats = %+v", st)
	}
	second, err := InstanceCatalogCached(tiles, 2, 1, 1, store)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Computes != int64(len(tiles)) {
		t.Fatalf("repeat sweep compiled: stats = %+v", st)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("instance %d not shared on repeat sweep", i)
		}
	}
}
