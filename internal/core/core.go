// Package core ties the framework's custom tools into the offline
// compilation flow of Fig. 1c: generate (or accept) the AS ISA-based
// accelerator's RTL, decompose it onto the system abstraction (§2.2.1),
// partition the data-path tree (§2.2.2), and map every partition piece
// onto the HS abstraction of every feasible device type so the runtime can
// deploy flexibly. It also measures the wall-clock cost of the added steps
// for the §4.3 compilation-overhead evaluation.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mlvfpga/internal/bwrtl"
	"mlvfpga/internal/decompose"
	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/parpool"
	"mlvfpga/internal/partition"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/softblock"
)

// Options configures the offline flow.
type Options struct {
	// Tiles is the accelerator instance's tile-engine count.
	Tiles int
	// PartitionIterations is N in Fig. 6 (deployments up to 2^N devices).
	PartitionIterations int
	// Seed drives the equivalence checker.
	Seed int64
	// PatternAware selects the framework's partition tool when mapping
	// onto virtual blocks (§4.3); false falls back to ViTAL's own.
	PatternAware bool
	// Parallelism bounds the worker goroutines used across the offline
	// flow: per-module RTL parsing, the decomposer's estimation pre-pass
	// and equivalence-oracle simulation batches, and the per-device-type ×
	// per-partition-piece HS compilation fan-out. Zero (the default) means
	// one worker per logical CPU; 1 reproduces the strictly sequential
	// flow. The Compiled result is identical at every setting.
	Parallelism int
}

// PieceImage is one partition piece compiled for one device type.
type PieceImage struct {
	Piece *partition.Node
	Image *hsvital.Image
	// Lanes is how many of the instance's tile engines the piece covers.
	Lanes int
	// WithControl marks the piece that also hosts the control block.
	WithControl bool
}

// Compiled is the outcome of the offline flow for one accelerator
// instance: everything the runtime's mapping-result database stores.
type Compiled struct {
	Opts Options
	// Accelerator is the decomposed design (control block + data tree).
	Accelerator *softblock.Accelerator
	// Partition is the Fig. 6 binary partition tree.
	Partition *partition.Result
	// Images maps device type -> compiled images for every partition
	// piece feasible on that type.
	Images map[string][]PieceImage
	// Timing of the added compilation steps (measured, §4.3).
	DecomposeTime time.Duration
	PartitionTime time.Duration
	// HSCompileTime is the modelled place-and-route time summed over all
	// images (the dominant, pre-existing cost).
	HSCompileTime time.Duration
	// Stats reports what the decomposer did.
	DecomposeStats decompose.Stats
}

// ErrNoImages is returned when no partition piece maps onto any device.
var ErrNoImages = errors.New("core: accelerator maps onto no device type")

// CompileAccelerator runs the full offline flow for a BrainWave-like
// instance with opts.Tiles tile engines.
func CompileAccelerator(opts Options) (*Compiled, error) {
	if opts.Tiles < 1 {
		return nil, fmt.Errorf("core: tiles = %d", opts.Tiles)
	}
	if opts.PartitionIterations < 0 {
		return nil, fmt.Errorf("core: iterations = %d", opts.PartitionIterations)
	}

	workers := parpool.Workers(opts.Parallelism)

	// Generate and parse the RTL (URAM variant as the canonical source;
	// the memory module re-parameterizes per target, §3).
	src, err := bwrtl.Generate(bwrtl.Profile{Tiles: opts.Tiles, UseURAM: true})
	if err != nil {
		return nil, err
	}
	design, err := rtl.ParseDesignParallel(src, bwrtl.TopModule, workers)
	if err != nil {
		return nil, err
	}

	// Decomposing step (§2.2.1). The result is FPGA-independent and is
	// reused across device types, which is what keeps the added
	// compilation cost negligible (§4.3).
	t0 := time.Now()
	dres, err := decompose.Decompose(design, bwrtl.TopModule, nil, decompose.Options{
		ControlModules: bwrtl.ControlModules(),
		Seed:           opts.Seed,
		Parallelism:    workers,
	})
	if err != nil {
		return nil, err
	}
	decomposeTime := time.Since(t0)

	// Partitioning step (§2.2.2), also FPGA-independent.
	t1 := time.Now()
	pres, err := partition.Partition(dres.Accelerator.Data, opts.PartitionIterations)
	if err != nil {
		return nil, err
	}
	partitionTime := time.Since(t1)

	c := &Compiled{
		Opts:           opts,
		Accelerator:    dres.Accelerator,
		Partition:      pres,
		Images:         map[string][]PieceImage{},
		DecomposeTime:  decomposeTime,
		PartitionTime:  partitionTime,
		DecomposeStats: dres.Stats,
	}

	// Map every piece onto the HS abstraction of every feasible device
	// type (Fig. 5), with per-target calibrated resources: the soft-block
	// annotations from RTL estimation are relative; the Table 2
	// calibration provides the absolute per-target implementation costs.
	// Each (device type, partition piece) compile is independent — the
	// paper's "embarrassingly parallel" offline cost — so the jobs fan out
	// over a bounded pool and the results are reassembled in the same
	// nested order the sequential loop produced.
	specs := hsvital.AllSpecs()
	pieces := c.Partition.AllPieces()
	type pieceJob struct {
		image       *hsvital.Image // nil: infeasible on this device type
		lanes       int
		withControl bool
	}
	jobs, err := parpool.Map(context.Background(), workers, len(specs)*len(pieces),
		func(_ context.Context, j int) (pieceJob, error) {
			spec := specs[j/len(pieces)]
			i := j % len(pieces)
			node := pieces[i]
			perTile, err := hsvital.PerTileResources(spec.Device.Name)
			if err != nil {
				return pieceJob{}, err
			}
			lanes := countLanes(node.Block)
			res := perTile.Scale(int64(lanes))
			withControl := i == 0 // the root piece hosts the control block
			if withControl {
				ctrl, err := hsvital.ControlResources(spec.Device.Name)
				if err != nil {
					return pieceJob{}, err
				}
				res = res.Add(ctrl)
			}
			calibrated := calibratedBlock(node.Block, res)
			img, err := hsvital.Compile(calibrated, spec, opts.PatternAware)
			if err != nil {
				return pieceJob{}, nil // piece infeasible on this device type
			}
			return pieceJob{image: img, lanes: lanes, withControl: withControl}, nil
		})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		var images []PieceImage
		for i, node := range pieces {
			job := jobs[si*len(pieces)+i]
			if job.image == nil {
				continue
			}
			c.HSCompileTime += job.image.CompileTime
			images = append(images, PieceImage{
				Piece: node, Image: job.image, Lanes: job.lanes, WithControl: job.withControl,
			})
		}
		if len(images) > 0 {
			c.Images[spec.Device.Name] = images
		}
	}
	if len(c.Images) == 0 {
		return nil, ErrNoImages
	}
	return c, nil
}

// countLanes counts the tile-engine pipelines a data subtree covers: a
// leaf inside one lane counts via its pipeline parent, so the lane count
// is the number of data-parallel members at the top of the subtree (or 1
// for a single lane / lane fragment).
func countLanes(b *softblock.Block) int {
	if b.Kind == softblock.DataParallel {
		n := 0
		for _, ch := range b.Children {
			n += countLanes(ch)
		}
		return n
	}
	return 1
}

// calibratedBlock wraps a partition piece with calibrated absolute
// resources for one target, preserving its structure for the hop analysis.
func calibratedBlock(b *softblock.Block, res resource.Vector) *softblock.Block {
	cp := b.Clone()
	// Distribute the calibrated total uniformly over the lanes so the
	// per-lane fit analysis in hsvital.Compile stays meaningful.
	lanes := countLanes(cp)
	if lanes < 1 {
		lanes = 1
	}
	perLane := resource.Vector{
		LUTs:   res.LUTs / int64(lanes),
		DFFs:   res.DFFs / int64(lanes),
		BRAMKb: res.BRAMKb / int64(lanes),
		URAMKb: res.URAMKb / int64(lanes),
		DSPs:   res.DSPs / int64(lanes),
	}
	// Overwrite the leaf annotations lane-by-lane, then roll up.
	setLane := func(lane *softblock.Block) {
		leaves := lane.Leaves()
		if len(leaves) == 0 {
			return
		}
		share := resource.Vector{
			LUTs:   perLane.LUTs / int64(len(leaves)),
			DFFs:   perLane.DFFs / int64(len(leaves)),
			BRAMKb: perLane.BRAMKb / int64(len(leaves)),
			URAMKb: perLane.URAMKb / int64(len(leaves)),
			DSPs:   perLane.DSPs / int64(len(leaves)),
		}
		for _, l := range leaves {
			l.Resources = share
		}
	}
	if cp.Kind == softblock.DataParallel {
		for _, lane := range cp.Children {
			setLane(lane)
		}
	} else {
		setLane(cp)
	}
	cp.Recompute()
	// Rounding may drop a few units against the calibrated total; pin the
	// root annotation to the exact calibrated value.
	cp.Resources = res
	return cp
}

// InstanceCatalog compiles the set of accelerator instances the evaluation
// provides (§4.3: "10 different accelerator instances are provided for the
// two types of FPGAs"), returning one Compiled per tile count. Instances
// compile concurrently with one worker per logical CPU; use
// InstanceCatalogParallel to pin the worker count.
func InstanceCatalog(tileCounts []int, iterations int, seed int64) ([]*Compiled, error) {
	return InstanceCatalogParallel(tileCounts, iterations, seed, 0)
}

// InstanceCatalogParallel compiles the instance catalog over a bounded
// worker pool (parallelism < 1 defaults to one worker per logical CPU; 1 is
// strictly sequential). Instance-level fan-out dominates, so each instance
// compiles with its inner flow sequential when the catalog itself is
// parallel; the catalog is identical at every setting.
func InstanceCatalogParallel(tileCounts []int, iterations int, seed int64, parallelism int) ([]*Compiled, error) {
	workers := parpool.Workers(parallelism)
	// The pool is saturated by instance-level jobs; nesting per-piece
	// fan-out inside each would only oversubscribe the CPUs.
	const inner = 1
	out, err := parpool.Map(context.Background(), workers, len(tileCounts),
		func(_ context.Context, i int) (*Compiled, error) {
			c, err := CompileAccelerator(Options{
				Tiles:               tileCounts[i],
				PartitionIterations: iterations,
				Seed:                seed,
				PatternAware:        true,
				Parallelism:         inner,
			})
			if err != nil {
				return nil, fmt.Errorf("core: instance with %d tiles: %w", tileCounts[i], err)
			}
			return c, nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultTileCounts is the 10-instance catalog of §4.3.
func DefaultTileCounts() []int {
	return []int{1, 2, 3, 4, 6, 8, 10, 13, 17, 21}
}
