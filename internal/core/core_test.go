package core

import (
	"encoding/json"
	"testing"
	"time"

	"mlvfpga/internal/decompose"
	"mlvfpga/internal/partition"
	"mlvfpga/internal/softblock"
)

func TestCompileAcceleratorEndToEnd(t *testing.T) {
	c, err := CompileAccelerator(Options{Tiles: 8, PartitionIterations: 2, Seed: 1, PatternAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Accelerator.Data.Kind != softblock.DataParallel {
		t.Errorf("data root = %v", c.Accelerator.Data.Kind)
	}
	if len(c.Accelerator.Data.Children) != 8 {
		t.Errorf("lanes = %d, want 8", len(c.Accelerator.Data.Children))
	}
	if c.Partition.MaxPieces() != 4 {
		t.Errorf("max pieces = %d, want 4", c.Partition.MaxPieces())
	}
	// Both device types must host at least the smaller pieces.
	if len(c.Images["XCVU37P"]) == 0 {
		t.Error("no XCVU37P images")
	}
	if len(c.Images["XCKU115"]) == 0 {
		t.Error("no XCKU115 images")
	}
	if c.DecomposeTime <= 0 || c.PartitionTime < 0 || c.HSCompileTime <= 0 {
		t.Errorf("timing: decompose %v partition %v hs %v",
			c.DecomposeTime, c.PartitionTime, c.HSCompileTime)
	}
	// The added steps are negligible next to place-and-route (§4.3: <1%).
	added := c.DecomposeTime + c.PartitionTime
	if float64(added) > 0.01*float64(c.HSCompileTime) {
		t.Errorf("decompose+partition (%v) exceeds 1%% of HS compile (%v)", added, c.HSCompileTime)
	}
}

func TestCompiledImageCalibration(t *testing.T) {
	c, err := CompileAccelerator(Options{Tiles: 4, PartitionIterations: 1, Seed: 1, PatternAware: true})
	if err != nil {
		t.Fatal(err)
	}
	for dev, images := range c.Images {
		rootSeen := false
		for _, pi := range images {
			if pi.Image.Blocks < 1 {
				t.Errorf("%s piece %s: %d blocks", dev, pi.Image.PieceID, pi.Image.Blocks)
			}
			if pi.WithControl {
				rootSeen = true
			}
			if pi.Lanes < 1 || pi.Lanes > 4 {
				t.Errorf("%s piece covers %d lanes", dev, pi.Lanes)
			}
		}
		if !rootSeen {
			t.Errorf("%s: no piece hosts the control block", dev)
		}
	}
}

func TestPatternAwareHopsBeatNaive(t *testing.T) {
	aware, err := CompileAccelerator(Options{Tiles: 8, PartitionIterations: 0, Seed: 1, PatternAware: true})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CompileAccelerator(Options{Tiles: 8, PartitionIterations: 0, Seed: 1, PatternAware: false})
	if err != nil {
		t.Fatal(err)
	}
	a := aware.Images["XCVU37P"][0].Image
	n := naive.Images["XCVU37P"][0].Image
	if a.Hops >= n.Hops {
		t.Errorf("pattern-aware hops %d must beat naive %d", a.Hops, n.Hops)
	}
}

func TestInstanceCatalog(t *testing.T) {
	counts := []int{1, 4}
	cat, err := InstanceCatalog(counts, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 2 {
		t.Fatalf("catalog size = %d", len(cat))
	}
	if cat[1].Opts.Tiles != 4 {
		t.Errorf("catalog order wrong")
	}
	if len(DefaultTileCounts()) != 10 {
		t.Errorf("default catalog must list 10 instances (§4.3)")
	}
}

func TestCompileAcceleratorErrors(t *testing.T) {
	if _, err := CompileAccelerator(Options{Tiles: 0}); err == nil {
		t.Error("0 tiles must fail")
	}
	if _, err := CompileAccelerator(Options{Tiles: 2, PartitionIterations: -1}); err == nil {
		t.Error("negative iterations must fail")
	}
	if _, err := InstanceCatalog([]int{0}, 1, 1); err == nil {
		t.Error("bad catalog must fail")
	}
}

func TestCountLanes(t *testing.T) {
	c, err := CompileAccelerator(Options{Tiles: 6, PartitionIterations: 1, Seed: 1, PatternAware: true})
	if err != nil {
		t.Fatal(err)
	}
	root := c.Partition.Root
	if countLanes(root.Block) != 6 {
		t.Errorf("root lanes = %d", countLanes(root.Block))
	}
	if countLanes(root.Left.Block)+countLanes(root.Right.Block) != 6 {
		t.Error("split lanes must sum to 6")
	}
}

// compiledFingerprint serializes everything deterministic about a Compiled:
// the decomposed accelerator, the partition tree, every image with its
// modelled compile time, and the decompose stats. The measured wall-clock
// fields (DecomposeTime, PartitionTime) are inherently run-dependent and
// stay out.
func compiledFingerprint(t *testing.T, c *Compiled) string {
	t.Helper()
	blob, err := json.Marshal(struct {
		Accelerator   *softblock.Accelerator
		Partition     *partition.Result
		Images        map[string][]PieceImage
		HSCompile     time.Duration
		DecomposeStat decompose.Stats
	}{c.Accelerator, c.Partition, c.Images, c.HSCompileTime, c.DecomposeStats})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestCompileDeterministicAcrossParallelism is the regression test for the
// parallel offline flow: every Parallelism setting must produce the same
// Compiled result, bit for bit.
func TestCompileDeterministicAcrossParallelism(t *testing.T) {
	base := Options{Tiles: 8, PartitionIterations: 2, Seed: 1, PatternAware: true, Parallelism: 1}
	seq, err := CompileAccelerator(base)
	if err != nil {
		t.Fatal(err)
	}
	want := compiledFingerprint(t, seq)
	for _, par := range []int{8, 0} {
		opts := base
		opts.Parallelism = par
		got, err := CompileAccelerator(opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if fp := compiledFingerprint(t, got); fp != want {
			t.Errorf("parallelism %d produced a different Compiled result", par)
		}
	}
}

// TestInstanceCatalogDeterministicAcrossParallelism extends the guarantee to
// the catalog sweep.
func TestInstanceCatalogDeterministicAcrossParallelism(t *testing.T) {
	tiles := []int{1, 2, 4}
	seq, err := InstanceCatalogParallel(tiles, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := InstanceCatalogParallel(tiles, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("catalog sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if compiledFingerprint(t, seq[i]) != compiledFingerprint(t, par[i]) {
			t.Errorf("instance %d (tiles=%d) differs across parallelism", i, tiles[i])
		}
	}
}
