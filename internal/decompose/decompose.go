// Package decompose implements the decomposing step of the paper's mapping
// process (§2.2.1): an AS ISA-based accelerator, given as RTL, is split
// into a control-path soft block and a data-path soft-block tree whose
// internal nodes are the two primitive parallel patterns.
//
// The tool follows the paper's bottom-up flow in five steps:
//
//  1. Build block graph — parse the RTL, extract basic modules, keep the
//     ones on the data path (the designer marks control-path module names,
//     §2.2.1), connect them by bit width.
//  2. Extract intra-block data parallelism — equivalence checking inside a
//     leaf finds identical lanes (e.g. a module that is an array of
//     identical primitives over disjoint port slices).
//  3. Identify inter-block data parallelism — three merge cases over
//     sibling inputs (Fig. 4b).
//  4. Identify pipeline parallelism — pair up equal-count data-parallel
//     stages (Fig. 4c) and contract producer/consumer chains.
//  5. Iterate 3 and 4 to a fixpoint.
//
// Because soft blocks carry no resource constraint, no capacity checks
// appear anywhere in this package — that is the point of the indirection
// layer.
package decompose

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"mlvfpga/internal/parpool"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/softblock"
)

// Options configures the decomposer.
type Options struct {
	// ControlModules are RTL module names the system designer marks as the
	// control path (§2.2.1: "we need system designers' assistance to mark
	// the control path by providing the corresponding RTL module name").
	// Matching is by module name, not instance path.
	ControlModules []string
	// Seed drives the random-simulation equivalence checker.
	Seed int64
	// EquivVectors overrides the number of random vectors per equivalence
	// query (0 = checker default).
	EquivVectors int
	// Parallelism bounds the worker goroutines for the per-leaf resource
	// estimation pre-pass and the equivalence oracle's simulation batches
	// (1 strictly sequential; < 1 one worker per logical CPU). The result
	// is identical at every setting.
	Parallelism int
}

// Stats reports what each decomposition step did, for the compilation-
// overhead evaluation (§4.3).
type Stats struct {
	BasicInstances  int // block-graph nodes before merging
	ControlModules  int // basic instances assigned to the control block
	IntraBlockSplit int // leaves split by step 2
	DataMerges      int // step 3 merges
	PipeMerges      int // step 4 merges (pairing + chain contraction)
	Iterations      int // step 5 outer iterations
}

// Result is a decomposed accelerator plus bookkeeping.
type Result struct {
	Accelerator *softblock.Accelerator
	// Classes maps each elaborated module key to its equivalence-class
	// representative key. Leaves carry representative keys so that
	// interchangeable modules compare equal by signature.
	Classes map[string]string
	Stats   Stats
	// EquivStats reports the equivalence oracle's query/hit/miss counters
	// accumulated over the whole decomposition.
	EquivStats rtl.EquivStats
}

// ErrEmptyDataPath is returned when every basic module was marked control.
var ErrEmptyDataPath = errors.New("decompose: no basic modules remain on the data path")

// Decompose runs the five-step flow on design d elaborated at (top,
// params).
func Decompose(d *rtl.Design, top string, params map[string]uint64, opts Options) (*Result, error) {
	em, err := d.Elaborate(top, params)
	if err != nil {
		return nil, err
	}
	bg, err := d.BasicGraph(em)
	if err != nil {
		return nil, err
	}
	dec := &decomposer{
		d:       d,
		opts:    opts,
		checker: rtl.NewEquivChecker(d, opts.Seed),
		classes: map[string]string{},
		classOf: map[string]*rtl.ElabModule{},
	}
	if opts.EquivVectors > 0 {
		dec.checker.Vectors = opts.EquivVectors
	}
	dec.checker.Parallelism = parpool.Workers(opts.Parallelism)
	return dec.run(top, bg)
}

type decomposer struct {
	d       *rtl.Design
	opts    Options
	checker *rtl.EquivChecker
	// classes maps module key -> representative key.
	classes map[string]string
	// classOf maps representative key -> a representative elaboration.
	classOf map[string]*rtl.ElabModule
	nextID  int
	stats   Stats
}

func (dec *decomposer) blockID() string {
	id := fmt.Sprintf("sb%d", dec.nextID)
	dec.nextID++
	return id
}

// classKey canonicalizes a module to its equivalence-class representative.
func (dec *decomposer) classKey(emod *rtl.ElabModule) (string, error) {
	if rep, ok := dec.classes[emod.Key]; ok {
		return rep, nil
	}
	reps := make([]string, 0, len(dec.classOf))
	for rep := range dec.classOf {
		reps = append(reps, rep)
	}
	sort.Strings(reps)
	for _, rep := range reps {
		eq, err := dec.checker.Equivalent(emod, dec.classOf[rep])
		if err != nil {
			return "", err
		}
		if eq {
			dec.classes[emod.Key] = rep
			return rep, nil
		}
	}
	dec.classes[emod.Key] = emod.Key
	dec.classOf[emod.Key] = emod
	return emod.Key, nil
}

func (dec *decomposer) isControlModule(name string) bool {
	for _, c := range dec.opts.ControlModules {
		if c == name {
			return true
		}
	}
	return false
}

func (dec *decomposer) run(top string, bg *rtl.BasicGraph) (*Result, error) {
	dec.stats.BasicInstances = len(bg.Insts)

	// Step 0 (Fig. 3a): split control and data path at the top of the
	// design. All control-marked basic instances collapse into one
	// unmodified soft block.
	var controlRes resource.Vector
	var controlKeys []string
	controlBits := [2]int{}
	nodeOf := map[int]int{} // basic-graph index -> work-graph node id
	g := newWorkGraph()
	boundary := g.addAnchor()

	// Per-instance resource estimation is pure and independent, so it fans
	// out over the worker pool; everything that mutates decomposer or
	// work-graph state stays sequential below.
	type leafInfo struct {
		res             resource.Vector
		inBits, outBits int
	}
	infos, err := parpool.Map(context.Background(), dec.opts.Parallelism, len(bg.Insts),
		func(_ context.Context, i int) (leafInfo, error) {
			res, err := dec.d.EstimateResources(bg.Insts[i].Elab)
			if err != nil {
				return leafInfo{}, err
			}
			in, out := portBits(bg.Insts[i].Elab)
			return leafInfo{res: res, inBits: in, outBits: out}, nil
		})
	if err != nil {
		return nil, err
	}

	dataCount := 0
	for i, bi := range bg.Insts {
		res := infos[i].res
		inBits, outBits := infos[i].inBits, infos[i].outBits
		if dec.isControlModule(bi.Elab.Module.Name) {
			controlRes = controlRes.Add(res)
			controlKeys = append(controlKeys, bi.Elab.Key)
			controlBits[0] += inBits
			controlBits[1] += outBits
			dec.stats.ControlModules++
			// Control instances stay in the graph as anchors: parallel
			// data blocks that all feed (or are fed by) the control path
			// are siblings through these pseudo-nodes.
			nodeOf[i] = g.addAnchor()
			continue
		}
		rep, err := dec.classKey(bi.Elab)
		if err != nil {
			return nil, err
		}
		leafBlock := softblock.NewLeaf(dec.blockID(), rep, bi.Path, res, inBits, outBits)
		nodeOf[i] = g.addNode(leafBlock)
		dataCount++
	}
	if dataCount == 0 {
		return nil, ErrEmptyDataPath
	}
	for _, e := range bg.Edges {
		a, aok := nodeOf[e.From], e.From != rtl.Boundary
		b, bok := nodeOf[e.To], e.To != rtl.Boundary
		if !aok {
			a = boundary
		}
		if !bok {
			b = boundary
		}
		// Ignore 1-bit boundary fan-out (clock/reset distribution) so it
		// does not tie every block to the boundary anchor.
		if (!aok || !bok) && e.Bits <= 1 {
			continue
		}
		g.addEdge(a, b, e.Bits)
	}

	// Step 2: intra-block data parallelism inside each leaf.
	for _, id := range g.dataIds() {
		split, err := dec.intraBlockSplit(g.nodes[id], bg)
		if err != nil {
			return nil, err
		}
		if split != nil {
			g.nodes[id] = split
			dec.stats.IntraBlockSplit++
		}
	}

	// Steps 3-5: iterate inter-block data parallelism and pipeline
	// parallelism to a fixpoint.
	for {
		dec.stats.Iterations++
		merged := dec.stepDataParallel(g)
		merged = dec.stepPipelinePairs(g) || merged
		merged = dec.stepChains(g) || merged
		if !merged {
			break
		}
	}

	root := dec.finalize(g)

	ctrlKey := "ctrl:unmarked"
	if len(controlKeys) > 0 {
		sort.Strings(controlKeys)
		ctrlKey = "ctrl:" + strings.Join(controlKeys, "+")
	}
	control := softblock.NewLeaf(dec.blockID(), ctrlKey, "", controlRes, controlBits[0], controlBits[1])

	acc := &softblock.Accelerator{Name: top, Control: control, Data: root}
	if err := acc.Validate(); err != nil {
		return nil, fmt.Errorf("decompose: produced invalid tree: %w", err)
	}
	return &Result{
		Accelerator: acc,
		Classes:     dec.classes,
		Stats:       dec.stats,
		EquivStats:  dec.checker.Stats(),
	}, nil
}

// portBits sums input and output port widths, excluding clock/reset-like
// scalars.
func portBits(em *rtl.ElabModule) (in, out int) {
	for _, p := range em.Module.Ports {
		w := em.PortWidths[p.Name]
		if w == 1 && isClockResetName(p.Name) {
			continue
		}
		switch p.Dir {
		case rtl.Input:
			in += w
		case rtl.Output:
			out += w
		}
	}
	return in, out
}

func isClockResetName(name string) bool {
	n := strings.ToLower(name)
	return n == "clk" || n == "clock" || n == "rst" || n == "reset" ||
		strings.HasSuffix(n, "_clk") || strings.HasSuffix(n, "_rst")
}

// intraBlockSplit implements step 2 for one leaf: if the basic module is a
// pure array of K >= 2 identical primitive cells whose connections touch
// disjoint slices of the module ports, the leaf splits into a data-parallel
// block of K lanes. Returns nil when no parallelism is found.
func (dec *decomposer) intraBlockSplit(b *softblock.Block, bg *rtl.BasicGraph) (*softblock.Block, error) {
	if b.Kind != softblock.Leaf {
		return nil, nil
	}
	var em *rtl.ElabModule
	for _, bi := range bg.Insts {
		if bi.Path == b.Path {
			em = bi.Elab
			break
		}
	}
	if em == nil {
		return nil, nil
	}
	m := em.Module
	if len(m.Assigns) > 0 || len(m.Alwayses) > 0 || len(m.Instances) < 2 {
		return nil, nil
	}
	// All children must be the same primitive.
	first := m.Instances[0].ModuleName
	if !dec.d.IsPrimitive(first) {
		return nil, nil
	}
	for _, inst := range m.Instances {
		if inst.ModuleName != first {
			return nil, nil
		}
	}
	// Connections must not share any identifier (disjoint lanes). A shared
	// scalar clock is allowed.
	seen := map[string]bool{}
	for _, inst := range m.Instances {
		for _, e := range inst.Conns {
			if e == nil {
				continue
			}
			for _, name := range identsOf(e) {
				if isClockResetName(name) {
					continue
				}
				laneKey := name + "/" + e.String()
				if seen[laneKey] {
					return nil, nil
				}
				seen[laneKey] = true
			}
		}
	}
	k := len(m.Instances)
	lanes := make([]*softblock.Block, k)
	laneRes := divideVector(b.Resources, k)
	for i := range lanes {
		lanes[i] = softblock.NewLeaf(
			dec.blockID(),
			b.ModuleKey+"#lane",
			fmt.Sprintf("%s[%d]", b.Path, i),
			laneRes,
			b.InBits/k, b.OutBits/k,
		)
	}
	parent := softblock.NewDataParallel(dec.blockID(), lanes)
	return parent, nil
}

func identsOf(e rtl.Expr) []string {
	var out []string
	var walk func(x rtl.Expr)
	walk = func(x rtl.Expr) {
		switch v := x.(type) {
		case *rtl.Ident:
			out = append(out, v.Name)
		case *rtl.Unary:
			walk(v.X)
		case *rtl.Binary:
			walk(v.L)
			walk(v.R)
		case *rtl.Cond:
			walk(v.If)
			walk(v.Then)
			walk(v.Else)
		case *rtl.Index:
			walk(v.X)
			walk(v.At)
		case *rtl.Slice:
			walk(v.X)
			walk(v.Msb)
			walk(v.Lsb)
		case *rtl.Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case *rtl.Repl:
			walk(v.X)
		}
	}
	walk(e)
	return out
}

func divideVector(v resource.Vector, n int) resource.Vector {
	return resource.Vector{
		LUTs:   v.LUTs / int64(n),
		DFFs:   v.DFFs / int64(n),
		BRAMKb: v.BRAMKb / int64(n),
		URAMKb: v.URAMKb / int64(n),
		DSPs:   v.DSPs / int64(n),
	}
}

// interchangeable reports whether two block subtrees are interchangeable
// copies. Leaf module keys are already canonicalized to equivalence-class
// representatives, so the structural signature decides.
func interchangeable(a, b *softblock.Block) bool {
	return a.Signature() == b.Signature()
}

// stepDataParallel implements step 3 (Fig. 4b). For every block c, each
// pair of its producers (p1, p2) is examined:
//
//	case 1: p1 and p2 are interchangeable           -> new data parent
//	case 2: p1 is data-parallel, p2 matches a child -> fold p2 into p1
//	case 3: both data-parallel with matching children -> concatenate
//
// One merge is applied per call; the caller iterates to fixpoint. Returns
// whether anything merged.
func (dec *decomposer) stepDataParallel(g *workGraph) bool {
	mergedAny := false
	for {
		merged := dec.dataParallelOnce(g)
		if !merged {
			return mergedAny
		}
		dec.stats.DataMerges++
		mergedAny = true
	}
}

func (dec *decomposer) dataParallelOnce(g *workGraph) bool {
	for _, c := range g.ids() {
		// Examine producers of a common consumer (the paper's formulation)
		// and, symmetrically, consumers of a common producer — parallel
		// lanes typically share both their source and their sink.
		if dec.mergeSiblings(g, g.producers(c)) {
			return true
		}
		if dec.mergeSiblings(g, g.consumers(c)) {
			return true
		}
	}
	return false
}

// mergeSiblings applies the three Fig. 4b cases to one sibling set,
// performing at most one merge.
func (dec *decomposer) mergeSiblings(g *workGraph, sibs []int) bool {
	for i := 0; i < len(sibs); i++ {
		for j := i + 1; j < len(sibs); j++ {
			p1, p2 := sibs[i], sibs[j]
			if g.isAnchor(p1) || g.isAnchor(p2) {
				continue
			}
			// Truly parallel lanes are disjoint: a connection between the
			// candidates means producer/consumer, not data parallelism.
			if g.edgeBits(p1, p2) > 0 || g.edgeBits(p2, p1) > 0 {
				continue
			}
			b1, b2 := g.nodes[p1], g.nodes[p2]
			switch {
			case b1.Kind == softblock.DataParallel && b2.Kind == softblock.DataParallel &&
				len(b1.Children) > 0 && len(b2.Children) > 0 &&
				interchangeable(b1.Children[0], b2.Children[0]):
				// case 3: concatenate children under one data block.
				kids := append(append([]*softblock.Block{}, b1.Children...), b2.Children...)
				parent := softblock.NewDataParallel(dec.blockID(), kids)
				g.merge([]int{p1, p2}, parent)
				return true
			case b1.Kind == softblock.DataParallel && len(b1.Children) > 0 &&
				interchangeable(b1.Children[0], b2):
				// case 2: fold b2 into b1.
				kids := append(append([]*softblock.Block{}, b1.Children...), b2)
				parent := softblock.NewDataParallel(dec.blockID(), kids)
				g.merge([]int{p1, p2}, parent)
				return true
			case b2.Kind == softblock.DataParallel && len(b2.Children) > 0 &&
				interchangeable(b2.Children[0], b1):
				// case 2 mirrored.
				kids := append([]*softblock.Block{b1}, b2.Children...)
				parent := softblock.NewDataParallel(dec.blockID(), kids)
				g.merge([]int{p1, p2}, parent)
				return true
			case b1.Kind != softblock.DataParallel && b2.Kind != softblock.DataParallel &&
				interchangeable(b1, b2):
				// case 1: two identical inputs.
				parent := softblock.NewDataParallel(dec.blockID(), []*softblock.Block{b1, b2})
				g.merge([]int{p1, p2}, parent)
				return true
			}
		}
	}
	return false
}

// stepPipelinePairs implements step 4 (Fig. 4c): a data-parallel producer A
// feeding a data-parallel consumer B with the same child count regroups
// into data-parallel pairs of pipelines.
func (dec *decomposer) stepPipelinePairs(g *workGraph) bool {
	mergedAny := false
	for {
		merged := dec.pipelinePairsOnce(g)
		if !merged {
			return mergedAny
		}
		dec.stats.PipeMerges++
		mergedAny = true
	}
}

func (dec *decomposer) pipelinePairsOnce(g *workGraph) bool {
	for _, a := range g.dataIds() {
		ba := g.nodes[a]
		if ba.Kind != softblock.DataParallel {
			continue
		}
		for _, b := range g.consumers(a) {
			if g.isAnchor(b) {
				continue
			}
			bb := g.nodes[b]
			if bb.Kind != softblock.DataParallel {
				continue
			}
			if len(ba.Children) != len(bb.Children) || len(ba.Children) == 0 {
				continue
			}
			// Only safe when B's sole producer among data nodes is A and
			// A's sole consumer is B — otherwise pairing changes semantics.
			if len(g.consumers(a)) != 1 || len(g.producers(b)) != 1 {
				continue
			}
			k := len(ba.Children)
			perLane := g.edgeBits(a, b) / k
			pairs := make([]*softblock.Block, k)
			for i := 0; i < k; i++ {
				pairs[i] = joinPipeline(dec.blockID(), ba.Children[i], bb.Children[i], perLane)
			}
			parent := softblock.NewDataParallel(dec.blockID(), pairs)
			g.merge([]int{a, b}, parent)
			return true
		}
	}
	return false
}

// stepChains contracts linear producer/consumer chains into pipeline
// blocks: A -> B where B is A's only consumer and A is B's only producer.
func (dec *decomposer) stepChains(g *workGraph) bool {
	mergedAny := false
	for {
		merged := dec.chainOnce(g)
		if !merged {
			return mergedAny
		}
		dec.stats.PipeMerges++
		mergedAny = true
	}
}

// joinPipeline builds a pipeline from producer x and consumer y connected
// with bits, flattening nested pipelines so chains stay one level deep.
func joinPipeline(id string, x, y *softblock.Block, bits int) *softblock.Block {
	var children []*softblock.Block
	var stageBits []int
	appendBlock := func(blk *softblock.Block) {
		if blk.Kind == softblock.Pipeline {
			children = append(children, blk.Children...)
			stageBits = append(stageBits, blk.StageBits...)
			return
		}
		children = append(children, blk)
	}
	appendBlock(x)
	stageBits = append(stageBits, bits)
	appendBlock(y)
	return softblock.NewPipeline(id, children, stageBits)
}

func (dec *decomposer) chainOnce(g *workGraph) bool {
	if g.dataSize() < 2 {
		return false
	}
	for _, a := range g.dataIds() {
		cons := g.consumers(a)
		if len(cons) != 1 {
			continue
		}
		b := cons[0]
		if g.isAnchor(b) || len(g.producers(b)) != 1 {
			continue
		}
		parent := joinPipeline(dec.blockID(), g.nodes[a], g.nodes[b], g.edgeBits(a, b))
		g.merge([]int{a, b}, parent)
		return true
	}
	return false
}

// finalize reduces whatever remains to a single root. Ideally one node is
// left; a residual DAG is wrapped in a pipeline over its topological order
// (the general composition), with stage bandwidths read from the remaining
// edges.
func (dec *decomposer) finalize(g *workGraph) *softblock.Block {
	if ids := g.dataIds(); len(ids) == 1 {
		return g.nodes[ids[0]]
	}
	order := g.topoOrder()
	children := make([]*softblock.Block, len(order))
	for i, id := range order {
		children[i] = g.nodes[id]
	}
	stageBits := make([]int, len(order)-1)
	for i := 0; i+1 < len(order); i++ {
		stageBits[i] = g.edgeBits(order[i], order[i+1])
	}
	return softblock.NewPipeline(dec.blockID(), children, stageBits)
}
