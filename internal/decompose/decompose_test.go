package decompose

import (
	"errors"
	"testing"

	"mlvfpga/internal/rtl"
	"mlvfpga/internal/softblock"
)

func design(t *testing.T, src, top string) *rtl.Design {
	t.Helper()
	d, err := rtl.ParseDesign(src, top)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// simdDesign: a controller plus four identical processing elements fed by
// the controller and writing back to it — the canonical SIMD shape. The
// decomposer must produce a data-parallel root of four leaves.
const simdDesign = `
module ctrl(input clk, input [31:0] host_in, output [31:0] pe_cmd, input [31:0] pe_stat, output [31:0] host_out);
  reg [31:0] state;
  always @(posedge clk) state <= host_in + pe_stat;
  assign pe_cmd = state;
  assign host_out = state;
endmodule

module pe(input clk, input [31:0] cmd, output [31:0] stat);
  reg [31:0] acc;
  always @(posedge clk) acc <= acc + cmd;
  assign stat = acc;
endmodule

module top(input clk, input [31:0] host_in, output [31:0] host_out);
  wire [31:0] cmd;
  wire [31:0] s0;
  wire [31:0] s1;
  wire [31:0] s2;
  wire [31:0] s3;
  wire [31:0] merged;
  ctrl c (.clk(clk), .host_in(host_in), .pe_cmd(cmd), .pe_stat(merged), .host_out(host_out));
  pe p0 (.clk(clk), .cmd(cmd), .stat(s0));
  pe p1 (.clk(clk), .cmd(cmd), .stat(s1));
  pe p2 (.clk(clk), .cmd(cmd), .stat(s2));
  pe p3 (.clk(clk), .cmd(cmd), .stat(s3));
  assign merged = s0 | s1 | s2 | s3;
endmodule
`

func TestDecomposeSIMD(t *testing.T) {
	d := design(t, simdDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Accelerator
	if err := acc.Validate(); err != nil {
		t.Fatal(err)
	}
	if acc.Data.Kind != softblock.DataParallel {
		t.Fatalf("root kind = %v, want data parallel\n%s", acc.Data.Kind, acc.Data)
	}
	if len(acc.Data.Children) != 4 {
		t.Fatalf("root children = %d, want 4\n%s", len(acc.Data.Children), acc.Data)
	}
	for _, c := range acc.Data.Children {
		if c.Kind != softblock.Leaf {
			t.Errorf("child kind = %v, want leaf", c.Kind)
		}
	}
	if res.Stats.ControlModules != 1 {
		t.Errorf("control modules = %d, want 1", res.Stats.ControlModules)
	}
	if res.Stats.DataMerges == 0 {
		t.Error("expected data-parallel merges")
	}
	if acc.Control.Resources.IsZero() {
		t.Error("control block must carry the controller's resources")
	}
}

// chainDesign: a 3-stage pipeline of distinct modules.
const pipeDesign = `
module ctrl(input clk, input [31:0] i, output [31:0] o);
  assign o = i;
endmodule
module s1(input clk, input [63:0] d, output [63:0] q);
  reg [63:0] r;
  always @(posedge clk) r <= d + 64'd1;
  assign q = r;
endmodule
module s2(input clk, input [63:0] d, output [31:0] q);
  reg [31:0] r;
  always @(posedge clk) r <= d[31:0] ^ d[63:32];
  assign q = r;
endmodule
module s3(input clk, input [31:0] d, output [31:0] q);
  reg [31:0] r;
  always @(posedge clk) r <= r + d;
  assign q = r;
endmodule
module top(input clk, input [63:0] in, output [31:0] out);
  wire [63:0] w1;
  wire [31:0] w2;
  wire [31:0] w3;
  wire [31:0] cfg;
  ctrl c (.clk(clk), .i(w3), .o(cfg));
  s1 a (.clk(clk), .d(in), .q(w1));
  s2 b (.clk(clk), .d(w1), .q(w2));
  s3 e (.clk(clk), .d(w2), .q(w3));
  assign out = w3;
endmodule
`

func TestDecomposePipeline(t *testing.T) {
	d := design(t, pipeDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Accelerator.Data
	if root.Kind != softblock.Pipeline {
		t.Fatalf("root kind = %v, want pipeline\n%s", root.Kind, root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("pipeline stages = %d, want 3\n%s", len(root.Children), root)
	}
	// Stage bandwidths: s1->s2 is 64 bits, s2->s3 is 32 bits.
	if root.StageBits[0] != 64 || root.StageBits[1] != 32 {
		t.Errorf("stage bits = %v, want [64 32]", root.StageBits)
	}
	if res.Stats.PipeMerges == 0 {
		t.Error("expected chain contractions")
	}
}

// simdPipeDesign: Fig. 4c shape — four parallel A-lanes feeding four
// parallel B-lanes pairwise. Must become data(pipeline(A,B) x4).
const simdPipeDesign = `
module ctrl(input clk, input [31:0] i, output [31:0] o);
  assign o = i;
endmodule
module stageA(input clk, input [31:0] d, output [31:0] q);
  reg [31:0] r;
  always @(posedge clk) r <= d + 32'd1;
  assign q = r;
endmodule
module stageB(input clk, input [31:0] d, output [15:0] q);
  reg [15:0] r;
  always @(posedge clk) r <= d[15:0] & d[31:16];
  assign q = r;
endmodule
module lanes(input clk, input [31:0] c0, input [31:0] c1, input [31:0] c2, input [31:0] c3,
             output [15:0] r0, output [15:0] r1, output [15:0] r2, output [15:0] r3);
  wire [31:0] m0;
  wire [31:0] m1;
  wire [31:0] m2;
  wire [31:0] m3;
  stageA a0 (.clk(clk), .d(c0), .q(m0));
  stageA a1 (.clk(clk), .d(c1), .q(m1));
  stageA a2 (.clk(clk), .d(c2), .q(m2));
  stageA a3 (.clk(clk), .d(c3), .q(m3));
  stageB b0 (.clk(clk), .d(m0), .q(r0));
  stageB b1 (.clk(clk), .d(m1), .q(r1));
  stageB b2 (.clk(clk), .d(m2), .q(r2));
  stageB b3 (.clk(clk), .d(m3), .q(r3));
endmodule
module top(input clk, input [31:0] x, output [15:0] y);
  wire [31:0] cfg;
  wire [15:0] q0;
  wire [15:0] q1;
  wire [15:0] q2;
  wire [15:0] q3;
  ctrl c (.clk(clk), .i(x), .o(cfg));
  lanes l (.clk(clk), .c0(cfg), .c1(cfg), .c2(cfg), .c3(cfg),
           .r0(q0), .r1(q1), .r2(q2), .r3(q3));
  assign y = q0 ^ q1 ^ q2 ^ q3;
endmodule
`

func TestDecomposeSIMDPipelines(t *testing.T) {
	d := design(t, simdPipeDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Accelerator.Data
	if root.Kind != softblock.DataParallel {
		t.Fatalf("root kind = %v, want data\n%s", root.Kind, root)
	}
	if len(root.Children) != 4 {
		t.Fatalf("lanes = %d, want 4\n%s", len(root.Children), root)
	}
	for _, lane := range root.Children {
		if lane.Kind != softblock.Pipeline || len(lane.Children) != 2 {
			t.Fatalf("lane must be a 2-stage pipeline, got:\n%s", root)
		}
		if lane.StageBits[0] != 32 {
			t.Errorf("lane stage bits = %v, want [32]", lane.StageBits)
		}
	}
}

// renamedDesign: the four PEs use two different module names with identical
// logic — only the equivalence checker can unify them.
const renamedDesign = `
module ctrl(input clk, input [31:0] i, output [31:0] o); assign o = i; endmodule
module peA(input clk, input [31:0] cmd, output [31:0] stat);
  reg [31:0] acc;
  always @(posedge clk) acc <= acc + cmd;
  assign stat = acc;
endmodule
module peB(input clk, input [31:0] cmd, output [31:0] stat);
  reg [31:0] total;
  always @(posedge clk) total <= total + cmd;
  assign stat = total;
endmodule
module top(input clk, input [31:0] x, output [31:0] y);
  wire [31:0] cfg;
  wire [31:0] s0;
  wire [31:0] s1;
  ctrl c (.clk(clk), .i(x), .o(cfg));
  peA p0 (.clk(clk), .cmd(cfg), .stat(s0));
  peB p1 (.clk(clk), .cmd(cfg), .stat(s1));
  assign y = s0 + s1;
endmodule
`

func TestDecomposeEquivalenceUnifies(t *testing.T) {
	d := design(t, renamedDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Accelerator.Data
	if root.Kind != softblock.DataParallel || len(root.Children) != 2 {
		t.Fatalf("renamed PEs not unified:\n%s", root)
	}
	// Both leaves must share a class representative.
	if root.Children[0].ModuleKey != root.Children[1].ModuleKey {
		t.Errorf("class keys differ: %q vs %q",
			root.Children[0].ModuleKey, root.Children[1].ModuleKey)
	}
	if len(res.Classes) != 2 {
		t.Errorf("classes = %v", res.Classes)
	}
}

// intraDesign: a basic module that is a pure array of four identical DSP
// primitives over disjoint port slices — step 2 must split it.
const intraDesign = `
module ctrl(input clk, input [31:0] i, output [31:0] o); assign o = i; endmodule
module simd4(input clk, input [63:0] a, input [63:0] b, output [63:0] p);
  DSP48E2 m0 (.CLK(clk), .A(a[15:0]),  .B(b[15:0]),  .P(p[15:0]));
  DSP48E2 m1 (.CLK(clk), .A(a[31:16]), .B(b[31:16]), .P(p[31:16]));
  DSP48E2 m2 (.CLK(clk), .A(a[47:32]), .B(b[47:32]), .P(p[47:32]));
  DSP48E2 m3 (.CLK(clk), .A(a[63:48]), .B(b[63:48]), .P(p[63:48]));
endmodule
module top(input clk, input [63:0] x, output [63:0] y);
  wire [31:0] cfg;
  ctrl c (.clk(clk), .i(x[31:0]), .o(cfg));
  simd4 s (.clk(clk), .a(x), .b({cfg, cfg}), .p(y));
endmodule
`

func TestDecomposeIntraBlockSplit(t *testing.T) {
	d := design(t, intraDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IntraBlockSplit != 1 {
		t.Fatalf("intra-block splits = %d, want 1\n%s", res.Stats.IntraBlockSplit, res.Accelerator.Data)
	}
	root := res.Accelerator.Data
	if root.Kind != softblock.DataParallel || len(root.Children) != 4 {
		t.Fatalf("simd4 not split into 4 lanes:\n%s", root)
	}
	// Each lane carries a quarter of the DSPs.
	if root.Children[0].Resources.DSPs != 1 {
		t.Errorf("lane DSPs = %d, want 1", root.Children[0].Resources.DSPs)
	}
}

func TestDecomposeEmptyDataPath(t *testing.T) {
	d := design(t, `
		module only(input clk, input [7:0] a, output [7:0] y); assign y = a; endmodule
		module top(input clk, input [7:0] x, output [7:0] z);
		  only u (.clk(clk), .a(x), .y(z));
		endmodule`, "top")
	_, err := Decompose(d, "top", nil, Options{ControlModules: []string{"only"}})
	if !errors.Is(err, ErrEmptyDataPath) {
		t.Errorf("err = %v, want ErrEmptyDataPath", err)
	}
}

func TestDecomposeNoControlMark(t *testing.T) {
	d := design(t, pipeDesign, "top")
	res, err := Decompose(d, "top", nil, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accelerator.Control.ModuleKey != "ctrl:unmarked" {
		t.Errorf("control key = %q", res.Accelerator.Control.ModuleKey)
	}
	// ctrl becomes part of the data path; tree must still validate.
	if err := res.Accelerator.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeUnknownTop(t *testing.T) {
	d := design(t, pipeDesign, "top")
	if _, err := Decompose(d, "nothere", nil, Options{}); err == nil {
		t.Error("unknown top must error")
	}
}

// Property-style: decomposition preserves total data-path resources.
func TestDecomposeResourceConservation(t *testing.T) {
	for _, tc := range []struct{ src, top, ctrl string }{
		{simdDesign, "top", "ctrl"},
		{pipeDesign, "top", "ctrl"},
		{simdPipeDesign, "top", "ctrl"},
	} {
		d := design(t, tc.src, tc.top)
		em, err := d.Elaborate(tc.top, nil)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := d.BasicGraph(em)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, bi := range bg.Insts {
			r, err := d.EstimateResources(bi.Elab)
			if err != nil {
				t.Fatal(err)
			}
			want += r.LUTs + r.DFFs + r.DSPs
		}
		res, err := Decompose(d, tc.top, nil, Options{ControlModules: []string{tc.ctrl}, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		total := res.Accelerator.TotalResources()
		got := total.LUTs + total.DFFs + total.DSPs
		if got != want {
			t.Errorf("%s: resources not conserved: got %d, want %d", tc.top, got, want)
		}
	}
}

// reductionDesign implements the Fig. 2c reduction pattern: four mappers
// feed two combiners feeding one root combiner. The two primitive patterns
// must compose to represent it (data-parallel stages chained in a
// pipeline).
const reductionDesign = `
module ctrl(input clk, input [31:0] i, output [31:0] o); assign o = i; endmodule
module mapper(input clk, input [31:0] d, output [31:0] q);
  reg [31:0] r;
  always @(posedge clk) r <= d * d;
  assign q = r;
endmodule
module combiner(input clk, input [31:0] a, input [31:0] b, output [31:0] q);
  reg [31:0] r;
  always @(posedge clk) r <= a + b;
  assign q = r;
endmodule
module top(input clk, input [31:0] x, output [31:0] y);
  wire [31:0] cfg;
  wire [31:0] m0;
  wire [31:0] m1;
  wire [31:0] m2;
  wire [31:0] m3;
  wire [31:0] c0;
  wire [31:0] c1;
  ctrl c (.clk(clk), .i(x), .o(cfg));
  mapper p0 (.clk(clk), .d(cfg), .q(m0));
  mapper p1 (.clk(clk), .d(cfg), .q(m1));
  mapper p2 (.clk(clk), .d(cfg), .q(m2));
  mapper p3 (.clk(clk), .d(cfg), .q(m3));
  combiner r0 (.clk(clk), .a(m0), .b(m1), .q(c0));
  combiner r1 (.clk(clk), .a(m2), .b(m3), .q(c1));
  combiner rt (.clk(clk), .a(c0), .b(c1), .q(y));
endmodule
`

func TestDecomposeReductionPattern(t *testing.T) {
	d := design(t, reductionDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Accelerator.Data
	if err := res.Accelerator.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reduction must be represented with the two primitive patterns:
	// a pipeline whose stages include the data-parallel mapper wave and
	// the data-parallel combiner wave (Fig. 2c).
	if root.Kind != softblock.Pipeline {
		t.Fatalf("reduction root = %v, want pipeline composition\n%s", root.Kind, root)
	}
	dataStages := 0
	for _, st := range root.Children {
		if st.Kind == softblock.DataParallel {
			dataStages++
		}
	}
	if dataStages < 2 {
		t.Errorf("reduction must contain >= 2 data-parallel waves, got %d\n%s", dataStages, root)
	}
	if root.NumLeaves() != 7 {
		t.Errorf("leaves = %d, want 7 (4 mappers + 3 combiners)\n%s", root.NumLeaves(), root)
	}
}

// cacheDesign: three lanes with identical interfaces; laneA is functionally
// but not structurally identical to laneB, and laneC repeats laneB's
// structure under a new name. Classifying laneB against the laneA
// representative needs one simulation; classifying laneC lands on the same
// ordered hash pair and must come out of the oracle's memo cache.
const cacheDesign = `
module ctrl(input clk, input [7:0] i, output [7:0] o); assign o = i; endmodule
module laneA(input clk, input [7:0] cmd, output [8:0] stat); assign stat = {1'b0,cmd} + {1'b0,cmd}; endmodule
module laneB(input clk, input [7:0] cmd, output [8:0] stat); assign stat = {cmd, 1'b0}; endmodule
module laneC(input clk, input [7:0] cmd, output [8:0] stat); assign stat = {cmd, 1'b0}; endmodule
module top(input clk, input [7:0] x, output [8:0] y);
  wire [7:0] cfg;
  wire [8:0] s0;
  wire [8:0] s1;
  wire [8:0] s2;
  ctrl c (.clk(clk), .i(x), .o(cfg));
  laneA p0 (.clk(clk), .cmd(cfg), .stat(s0));
  laneB p1 (.clk(clk), .cmd(cfg), .stat(s1));
  laneC p2 (.clk(clk), .cmd(cfg), .stat(s2));
  assign y = s0 + s1 + s2;
endmodule
`

func TestDecomposeEquivCacheHits(t *testing.T) {
	d := design(t, cacheDesign, "top")
	res, err := Decompose(d, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Accelerator.Data
	if root.Kind != softblock.DataParallel || len(root.Children) != 3 {
		t.Fatalf("lanes not unified:\n%s", root)
	}
	for _, ch := range root.Children[1:] {
		if ch.ModuleKey != root.Children[0].ModuleKey {
			t.Errorf("class keys differ: %q vs %q", ch.ModuleKey, root.Children[0].ModuleKey)
		}
	}
	st := res.EquivStats
	if st.SimRuns != 1 {
		t.Errorf("SimRuns = %d, want exactly 1 (laneB vs laneA)", st.SimRuns)
	}
	if st.CacheHits < 1 {
		t.Errorf("CacheHits = %d, want >= 1 (laneC must reuse the laneB verdict)", st.CacheHits)
	}
	if st.Queries < st.StructuralHits+st.CacheHits+st.SimRuns {
		t.Errorf("inconsistent counters: %+v", st)
	}

	// The stats — like the result — must not depend on the worker count.
	d2 := design(t, cacheDesign, "top")
	res2, err := Decompose(d2, "top", nil, Options{ControlModules: []string{"ctrl"}, Seed: 1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res2.EquivStats != st {
		t.Errorf("parallel stats %+v != sequential %+v", res2.EquivStats, st)
	}
}
