package decompose

import (
	"fmt"
	"sort"

	"mlvfpga/internal/softblock"
)

// workGraph is the mutable block graph the bottom-up decomposer operates
// on: nodes hold soft-block (sub)trees, directed edges carry connection bit
// widths. Merging nodes under a new parent block contracts them into one
// node that inherits the union of their external edges.
type workGraph struct {
	nodes  map[int]*softblock.Block
	out    map[int]map[int]int // out[a][b] = bits a -> b
	in     map[int]map[int]int // in[b][a] = bits a -> b
	anchor map[int]bool        // pseudo-nodes: control blocks, design boundary
	nextID int
}

func newWorkGraph() *workGraph {
	return &workGraph{
		nodes:  map[int]*softblock.Block{},
		out:    map[int]map[int]int{},
		in:     map[int]map[int]int{},
		anchor: map[int]bool{},
	}
}

// addNode inserts a block and returns its node id.
func (g *workGraph) addNode(b *softblock.Block) int {
	id := g.nextID
	g.nextID++
	g.nodes[id] = b
	g.out[id] = map[int]int{}
	g.in[id] = map[int]int{}
	return id
}

// addAnchor inserts a pseudo-node that participates in connectivity but is
// never merged and never appears in the result (the control-path block and
// the design boundary).
func (g *workGraph) addAnchor() int {
	id := g.addNode(nil)
	g.anchor[id] = true
	return id
}

// isAnchor reports whether id is a pseudo-node.
func (g *workGraph) isAnchor(id int) bool { return g.anchor[id] }

// dataIds returns the non-anchor node ids in ascending order.
func (g *workGraph) dataIds() []int {
	var out []int
	for _, id := range g.ids() {
		if !g.anchor[id] {
			out = append(out, id)
		}
	}
	return out
}

// dataSize counts non-anchor nodes.
func (g *workGraph) dataSize() int {
	n := 0
	for id := range g.nodes {
		if !g.anchor[id] {
			n++
		}
	}
	return n
}

// addEdge accumulates bits on the a -> b edge.
func (g *workGraph) addEdge(a, b, bits int) {
	if a == b {
		return
	}
	g.out[a][b] += bits
	g.in[b][a] += bits
}

// size returns the node count.
func (g *workGraph) size() int { return len(g.nodes) }

// ids returns node ids in ascending order for deterministic iteration.
func (g *workGraph) ids() []int {
	out := make([]int, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// edgeBits returns the bits on a -> b.
func (g *workGraph) edgeBits(a, b int) int { return g.out[a][b] }

// merge contracts the member nodes into a single node holding parent.
// External edges are inherited (bits summed); edges among members vanish.
func (g *workGraph) merge(members []int, parent *softblock.Block) int {
	inSet := map[int]bool{}
	for _, m := range members {
		inSet[m] = true
	}
	id := g.addNode(parent)
	for _, m := range members {
		for to, bits := range g.out[m] {
			if !inSet[to] {
				g.addEdge(id, to, bits)
			}
		}
		for from, bits := range g.in[m] {
			if !inSet[from] {
				g.addEdge(from, id, bits)
			}
		}
	}
	for _, m := range members {
		g.removeNode(m)
	}
	return id
}

func (g *workGraph) removeNode(id int) {
	for to := range g.out[id] {
		delete(g.in[to], id)
	}
	for from := range g.in[id] {
		delete(g.out[from], id)
	}
	delete(g.out, id)
	delete(g.in, id)
	delete(g.nodes, id)
}

// consumers returns the ids this node feeds, ascending.
func (g *workGraph) consumers(id int) []int {
	out := make([]int, 0, len(g.out[id]))
	for to := range g.out[id] {
		out = append(out, to)
	}
	sort.Ints(out)
	return out
}

// producers returns the ids feeding this node, ascending.
func (g *workGraph) producers(id int) []int {
	out := make([]int, 0, len(g.in[id]))
	for from := range g.in[id] {
		out = append(out, from)
	}
	sort.Ints(out)
	return out
}

// topoOrder returns the non-anchor nodes in a topological order; back
// edges (cycles) are broken by visiting unvisited nodes in id order.
func (g *workGraph) topoOrder() []int {
	visited := map[int]bool{}
	onStack := map[int]bool{}
	var order []int
	var visit func(id int)
	visit = func(id int) {
		if visited[id] || onStack[id] || g.anchor[id] {
			return
		}
		onStack[id] = true
		for _, to := range g.consumers(id) {
			visit(to)
		}
		onStack[id] = false
		visited[id] = true
		order = append(order, id)
	}
	for _, id := range g.dataIds() {
		visit(id)
	}
	// Reverse post-order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func (g *workGraph) String() string {
	s := fmt.Sprintf("workGraph{%d nodes}\n", len(g.nodes))
	for _, id := range g.ids() {
		if g.anchor[id] {
			s += fmt.Sprintf("  [%d] anchor\n", id)
		} else {
			s += fmt.Sprintf("  [%d] %s %s\n", id, g.nodes[id].Kind, g.nodes[id].ID)
		}
		for to, bits := range g.out[id] {
			s += fmt.Sprintf("    -> %d (%d bits)\n", to, bits)
		}
	}
	return s
}
