// Package des is a minimal discrete-event simulation engine used by the
// system-level evaluation (§4.4): task arrivals, accelerator completions and
// deallocation are events on a virtual clock.
package des

import (
	"container/heap"
	"errors"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At time.Duration
	Fn func(now time.Duration)

	seq int // tie-break: FIFO among equal timestamps
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// ErrPast is returned when scheduling before the current virtual time.
var ErrPast = errors.New("des: cannot schedule event in the past")

// Engine runs events in timestamp order. Events scheduled for the same
// virtual time execute in FIFO order (the order they were scheduled): every
// event carries a monotonically increasing sequence number used as the heap
// tie-break. An Engine is not safe for concurrent use; concurrent
// simulations (e.g. parallel workload sets) must each own an engine.
type Engine struct {
	now    time.Duration
	queue  eventHeap
	nextID int
	// processed counts executed events.
	processed int
}

// New returns an engine at virtual time zero.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Reset returns the engine to its initial state: virtual time zero, an
// empty queue, and — so the sequence counter backing the FIFO tie-break
// cannot grow without bound across reuses — a zeroed event sequence.
// A Reset engine behaves identically to a fresh New one.
func (e *Engine) Reset() {
	e.now = 0
	for i := range e.queue {
		e.queue[i] = nil // release event callbacks for GC
	}
	e.queue = e.queue[:0]
	e.nextID = 0
	e.processed = 0
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn at absolute virtual time t.
func (e *Engine) At(t time.Duration, fn func(now time.Duration)) error {
	if t < e.now {
		return ErrPast
	}
	ev := &Event{At: t, Fn: fn, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
	return nil
}

// After schedules fn delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn func(now time.Duration)) error {
	if delay < 0 {
		return ErrPast
	}
	return e.At(e.now+delay, fn)
}

// Every schedules fn at start, then every interval thereafter for as long
// as fn returns true — the periodic pump used for heartbeats and control
// ticks in simulated clusters. Rescheduling happens after fn runs, so fn
// observes a strictly increasing virtual time.
func (e *Engine) Every(start, interval time.Duration, fn func(now time.Duration) bool) error {
	if interval <= 0 {
		return errors.New("des: non-positive interval")
	}
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if !fn(now) {
			return
		}
		if err := e.At(now+interval, tick); err != nil {
			panic(err) // unreachable: now+interval is never in the past
		}
	}
	return e.At(start, tick)
}

// Step executes the earliest pending event. It reports whether an event was
// executed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.processed++
	ev.Fn(e.now)
	return true
}

// Run executes events until the queue drains or until the virtual clock
// would pass horizon (0 means no horizon). It returns the virtual time at
// which it stopped.
func (e *Engine) Run(horizon time.Duration) time.Duration {
	for e.queue.Len() > 0 {
		next := e.queue[0].At
		if horizon > 0 && next > horizon {
			e.now = horizon
			return e.now
		}
		e.Step()
	}
	return e.now
}
