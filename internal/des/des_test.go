package des

import (
	"testing"
	"time"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(3*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	e.At(1*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	e.At(2*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []string
	e.At(time.Millisecond, func(time.Duration) { order = append(order, "a") })
	e.At(time.Millisecond, func(time.Duration) { order = append(order, "b") })
	e.Run(0)
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("equal timestamps must run FIFO: %v", order)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var fired []time.Duration
	e.After(time.Millisecond, func(now time.Duration) {
		fired = append(fired, now)
		e.After(2*time.Millisecond, func(now time.Duration) {
			fired = append(fired, now)
		})
	})
	e.Run(0)
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestPastRejected(t *testing.T) {
	e := New()
	e.At(5*time.Millisecond, func(time.Duration) {})
	e.Step()
	if err := e.At(time.Millisecond, func(time.Duration) {}); err != ErrPast {
		t.Errorf("scheduling in the past = %v, want ErrPast", err)
	}
	if err := e.After(-time.Millisecond, func(time.Duration) {}); err != ErrPast {
		t.Errorf("negative delay = %v, want ErrPast", err)
	}
}

func TestHorizon(t *testing.T) {
	e := New()
	ran := false
	e.At(10*time.Millisecond, func(time.Duration) { ran = true })
	stop := e.Run(5 * time.Millisecond)
	if ran {
		t.Error("event past horizon must not run")
	}
	if stop != 5*time.Millisecond {
		t.Errorf("Run returned %v, want horizon", stop)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
}

func TestReset(t *testing.T) {
	e := New()
	e.At(time.Millisecond, func(time.Duration) {})
	e.At(2*time.Millisecond, func(time.Duration) {})
	e.Run(0)
	e.At(5*time.Millisecond, func(time.Duration) {}) // left pending on purpose

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("after Reset: Now=%v Pending=%d Processed=%d, want all zero",
			e.Now(), e.Pending(), e.Processed())
	}

	// A reused engine must behave exactly like a fresh one, including the
	// FIFO tie-break among equal timestamps (the seq counter restarts at
	// zero rather than continuing to grow across reuses).
	var order []string
	e.At(time.Millisecond, func(time.Duration) { order = append(order, "a") })
	e.At(time.Millisecond, func(time.Duration) { order = append(order, "b") })
	e.Run(0)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("reused engine broke FIFO tie-break: %v", order)
	}
	if e.Now() != time.Millisecond || e.Processed() != 2 {
		t.Errorf("reused engine state: Now=%v Processed=%d", e.Now(), e.Processed())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	var fired []time.Duration
	if err := e.Every(10*time.Millisecond, 5*time.Millisecond, func(now time.Duration) bool {
		fired = append(fired, now)
		return len(fired) < 4
	}); err != nil {
		t.Fatal(err)
	}
	// An interleaved one-shot event must see the pump's FIFO behavior.
	if err := e.Every(0, time.Millisecond, func(now time.Duration) bool { return false }); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %d times, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, fired[i], want[i])
		}
	}
	if e.Pending() != 0 {
		t.Errorf("%d events pending after a stopped pump", e.Pending())
	}
	if err := e.Every(0, 0, func(time.Duration) bool { return false }); err == nil {
		t.Error("zero interval accepted")
	}
}
