package experiments

import (
	"fmt"
	"strings"

	"mlvfpga/internal/core"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
)

// AblationPartitionRow contrasts the framework's pattern-aware partition
// tool against ViTAL's pattern-oblivious one when mapping onto virtual
// blocks (§4.3 explains that the low Table 4 overhead comes from the
// pattern-aware tool avoiding cuts through a SIMD lane's pipeline).
type AblationPartitionRow struct {
	Spec          kernels.LayerSpec
	Device        string
	HopsAware     int
	HopsNaive     int
	OverheadAware float64
	OverheadNaive float64
}

// AblationPartition measures the virtualization overhead under both
// partitioners for every Table 4 layer on the XCVU37P.
func AblationPartition() ([]AblationPartitionRow, error) {
	p := perf.DefaultParams()
	const dev = "XCVU37P"
	var rows []AblationPartitionRow
	for _, spec := range kernels.DeepBenchSuite() {
		inst, err := perf.ChooseInstance(spec, dev)
		if err != nil {
			continue
		}
		aware, err := core.CompileAccelerator(core.Options{
			Tiles: inst.Tiles, PartitionIterations: 0, Seed: 1, PatternAware: true,
		})
		if err != nil {
			return nil, err
		}
		naive, err := core.CompileAccelerator(core.Options{
			Tiles: inst.Tiles, PartitionIterations: 0, Seed: 1, PatternAware: false,
		})
		if err != nil {
			return nil, err
		}
		hopsA := aware.Images[dev][0].Image.Hops
		hopsN := naive.Images[dev][0].Image.Hops
		base := perf.Baseline(spec, inst, p)
		va, err := perf.Virtualized(spec, inst, hopsA, p)
		if err != nil {
			return nil, err
		}
		vn, err := perf.Virtualized(spec, inst, hopsN, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationPartitionRow{
			Spec: spec, Device: dev,
			HopsAware: hopsA, HopsNaive: hopsN,
			OverheadAware: perf.OverheadFrac(base, va),
			OverheadNaive: perf.OverheadFrac(base, vn),
		})
	}
	return rows, nil
}

// FormatAblationPartition renders the comparison.
func FormatAblationPartition(rows []AblationPartitionRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: pattern-aware partitioning vs ViTAL's pattern-oblivious tool (XCVU37P)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-18s hops %d vs %d  overhead %4.1f%% vs %4.1f%%\n",
			r.Spec, r.HopsAware, r.HopsNaive, 100*r.OverheadAware, 100*r.OverheadNaive)
	}
	return sb.String()
}
