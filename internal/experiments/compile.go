package experiments

import (
	"fmt"
	"strings"
	"time"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/core"
	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
)

// CompileOverheadResult reproduces the §4.3 compilation-overhead
// evaluation: the framework adds three steps to the baseline flow —
// decomposing, partitioning, and mapping the scaled-down accelerators.
// The first two are negligible; the third amortizes across the instance
// catalog because scaled-down pieces are shared between instances.
type CompileOverheadResult struct {
	Instances int
	// BaselineCompile is the modelled place-and-route time of the ten
	// full instances on both device types (the pre-existing cost).
	BaselineCompile time.Duration
	// DecomposePartition is the measured wall-clock of the added
	// FPGA-independent steps across the catalog.
	DecomposePartition time.Duration
	// ExtraPieceCompile is the modelled place-and-route time of the
	// scaled-down pieces after reuse across instances.
	ExtraPieceCompile time.Duration
	// UniquePieces / TotalPieces quantify the §4.3 amortization.
	UniquePieces, TotalPieces int

	// DecomposeFrac is DecomposePartition / BaselineCompile (paper: <1%).
	DecomposeFrac float64
	// OverheadFrac is ExtraPieceCompile / BaselineCompile (paper: 24.6%).
	OverheadFrac float64
}

// CompileOverhead runs the offline flow for the 10-instance catalog and
// accounts compile time with piece reuse. The catalog sweep is the hot
// path: the ten instances compile concurrently (§4.3's per-piece builds are
// embarrassingly parallel), while the reuse accounting below stays
// sequential so the result is deterministic.
func CompileOverhead() (*CompileOverheadResult, error) {
	return CompileOverheadParallel(0)
}

// CompileOverheadParallel is CompileOverhead with an explicit worker bound
// for the instance sweep (1 reproduces the sequential flow; < 1 one worker
// per logical CPU).
func CompileOverheadParallel(parallelism int) (*CompileOverheadResult, error) {
	catalog, err := core.InstanceCatalogParallel(core.DefaultTileCounts(), 2, 1, parallelism)
	if err != nil {
		return nil, err
	}
	return compileOverheadFrom(catalog)
}

// CompileOverheadCached is CompileOverheadParallel with the catalog sweep
// running through the artifact store: a repeat run over a warm store
// performs zero compiles, so the experiment becomes cache-bound. The
// accounting is identical — the decompose/partition wall-clock rides in
// the cached artifact, so the recorded fractions are stable across runs.
func CompileOverheadCached(parallelism int, store *artifactstore.Store) (*CompileOverheadResult, error) {
	catalog, err := core.InstanceCatalogCached(core.DefaultTileCounts(), 2, 1, parallelism, store)
	if err != nil {
		return nil, err
	}
	return compileOverheadFrom(catalog)
}

// compileOverheadFrom folds a compiled catalog into the §4.3 accounting.
func compileOverheadFrom(catalog []*core.Compiled) (*CompileOverheadResult, error) {
	res := &CompileOverheadResult{Instances: len(catalog)}

	// pieceKey identifies a reusable scaled-down data-path piece: how many
	// tile engines it covers on which device type. A piece with k lanes is
	// the same hardware regardless of which instance's partition tree it
	// came from — this is exactly the §4.3 reuse ("most scaled-down
	// accelerators can be reused across these accelerator instances").
	// The control block is shared by all pieces and compiles once per
	// device type.
	type pieceKey struct {
		lanes  int
		device string
	}
	seen := map[pieceKey]bool{}
	for _, c := range catalog {
		res.DecomposePartition += c.DecomposeTime + c.PartitionTime
		// The baseline flow compiles each instance monolithically for every
		// device it fits on (whether or not ViTAL can host it — the
		// max-tile baselines of Table 2 occupy the whole part).
		for _, spec := range hsvital.AllSpecs() {
			dev := spec.Device.Name
			if c.Opts.Tiles > hsvital.MaxTiles(dev) {
				continue
			}
			m, err := hsvital.CalibratedAccelerator(dev, c.Opts.Tiles)
			if err != nil {
				return nil, err
			}
			res.BaselineCompile += hsvital.ModelCompileTime(m.Resources)
			seen[pieceKey{lanes: c.Opts.Tiles, device: dev}] = true
		}
		for dev, images := range c.Images {
			perTile, err := hsvital.PerTileResources(dev)
			if err != nil {
				return nil, err
			}
			for _, pi := range images {
				res.TotalPieces++
				key := pieceKey{lanes: pi.Lanes, device: dev}
				if seen[key] {
					continue // reused across instances (§4.3)
				}
				seen[key] = true
				res.UniquePieces++
				res.ExtraPieceCompile += hsvital.ModelCompileTime(perTile.Scale(int64(pi.Lanes)))
			}
		}
		// One standalone control-block compile per device type, shared by
		// every piece combination of this catalog.
	}
	for _, spec := range hsvital.AllSpecs() {
		ctrl, err := hsvital.ControlResources(spec.Device.Name)
		if err != nil {
			return nil, err
		}
		res.ExtraPieceCompile += hsvital.ModelCompileTime(ctrl)
	}
	if res.BaselineCompile > 0 {
		res.DecomposeFrac = float64(res.DecomposePartition) / float64(res.BaselineCompile)
		res.OverheadFrac = float64(res.ExtraPieceCompile) / float64(res.BaselineCompile)
	}
	return res, nil
}

// FormatCompileOverhead renders the result as text.
func FormatCompileOverhead(r *CompileOverheadResult) string {
	var sb strings.Builder
	sb.WriteString("Compilation overhead (paper section 4.3)\n")
	fmt.Fprintf(&sb, "  instances: %d, pieces compiled: %d unique of %d total\n",
		r.Instances, r.UniquePieces, r.TotalPieces)
	fmt.Fprintf(&sb, "  baseline place-and-route (modelled): %v\n", r.BaselineCompile.Round(time.Second))
	fmt.Fprintf(&sb, "  decompose+partition (measured):      %v = %.3f%% of baseline (paper: <1%%)\n",
		r.DecomposePartition.Round(time.Millisecond), 100*r.DecomposeFrac)
	fmt.Fprintf(&sb, "  scaled-down piece compile (modelled): %v = %.1f%% of baseline (paper: 24.6%%)\n",
		r.ExtraPieceCompile.Round(time.Second), 100*r.OverheadFrac)
	return sb.String()
}

// InstructionBufferRow is one §4.4 instruction-buffer fit check.
type InstructionBufferRow struct {
	Spec         kernels.LayerSpec
	ProgramBytes int
	BufferBytes  int
	Fits         bool
}

// InstructionBufferFit verifies the §4.4 claim: the entire machine code of
// every evaluated LSTM/GRU benchmark fits the on-chip instruction buffer,
// so inference avoids DRAM contention and stays performance-isolated.
func InstructionBufferFit() ([]InstructionBufferRow, error) {
	var rows []InstructionBufferRow
	for _, spec := range kernels.DeepBenchSuite() {
		w := kernels.RandomWeights(spec.Kind, 8, 1) // shape only; weights don't affect code size
		w.Hidden = 8
		k, err := kernels.Build(w, spec.TimeSteps, 1)
		if err != nil {
			return nil, err
		}
		bytes := k.Prog.Bytes()
		rows = append(rows, InstructionBufferRow{
			Spec:         spec,
			ProgramBytes: bytes,
			BufferBytes:  kernels.InstrBufBytes,
			Fits:         bytes <= kernels.InstrBufBytes,
		})
	}
	return rows, nil
}

// FormatInstructionBufferFit renders the fit table.
func FormatInstructionBufferFit(rows []InstructionBufferRow) string {
	var sb strings.Builder
	sb.WriteString("Instruction buffer fit (paper section 4.4)\n")
	for _, r := range rows {
		status := "fits"
		if !r.Fits {
			status = "EXCEEDS"
		}
		fmt.Fprintf(&sb, "  %-18s machine code %7d B of %7d B buffer (%s)\n",
			r.Spec, r.ProgramBytes, r.BufferBytes, status)
	}
	return sb.String()
}

// instrBytes is a compile-time assertion helper (kept for clarity).
var _ = isa.InstrBytes
