package experiments

import (
	"testing"

	"mlvfpga/internal/artifactstore"
)

// The §4.3 overhead sweep through the artifact store must be cache-bound
// on repeat: zero compiles the second time, and an accounting identical
// to the first run (the measured decompose/partition wall-clock rides in
// the cached artifacts).
func TestCompileOverheadCachedRepeatIsCacheBound(t *testing.T) {
	store := artifactstore.NewMemory(artifactstore.Options{MaxMemEntries: 32})
	first, err := CompileOverheadCached(1, store)
	if err != nil {
		t.Fatal(err)
	}
	computes := store.Stats().Computes
	if computes != int64(first.Instances) {
		t.Fatalf("first sweep: %d compiles for %d instances", computes, first.Instances)
	}
	second, err := CompileOverheadCached(1, store)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Computes; got != computes {
		t.Fatalf("repeat sweep compiled: %d computes, want %d", got, computes)
	}
	if *first != *second {
		t.Fatalf("repeat sweep accounting diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}
