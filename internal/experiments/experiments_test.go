package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
)

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(float64(r.Resources.LUTs-r.PaperLUTs))/float64(r.PaperLUTs) > 0.01 {
			t.Errorf("%s LUTs %d vs paper %d", r.Name, r.Resources.LUTs, r.PaperLUTs)
		}
		if r.Resources.DSPs != r.PaperDSPs {
			t.Errorf("%s DSPs %d vs paper %d", r.Name, r.Resources.DSPs, r.PaperDSPs)
		}
		if math.Abs(r.PeakTFLOPS-r.PaperPeakTFLOPS)/r.PaperPeakTFLOPS > 0.01 {
			t.Errorf("%s peak %.2f vs paper %.2f", r.Name, r.PeakTFLOPS, r.PaperPeakTFLOPS)
		}
		if r.UtilLUT <= 0 || r.UtilLUT >= 1 || r.UtilDSP <= 0 || r.UtilDSP > 1 {
			t.Errorf("%s utilization out of range: %+v", r.Name, r)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "BW-V37") || !strings.Contains(text, "BW-K115") {
		t.Error("formatted table incomplete")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Usable.LUTs != r.PaperLUTs || r.Usable.DSPs != r.PaperDSPs {
			t.Errorf("%s virtual block %v vs paper %d/%d", r.Device, r.Usable, r.PaperLUTs, r.PaperDSPs)
		}
		if r.PeakTFLOPS != r.PaperPeakTFLOPS {
			t.Errorf("%s peak %.2f vs paper %.2f", r.Device, r.PeakTFLOPS, r.PaperPeakTFLOPS)
		}
	}
	if !strings.Contains(FormatTable3(rows), "blocks/device") {
		t.Error("format missing")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14 (7 layers x 2 devices)", len(rows))
	}
	noFit := 0
	for _, r := range rows {
		if !r.Fits {
			noFit++
			if r.PaperBaselineMs >= 0 {
				t.Errorf("%v on %s: we say no-fit, paper says %v ms", r.Spec, r.Device, r.PaperBaselineMs)
			}
			continue
		}
		if r.PaperBaselineMs < 0 {
			t.Errorf("%v on %s: paper says no-fit, we fitted", r.Spec, r.Device)
		}
		// Overhead inside the paper's band (with slack).
		if r.Overhead < 0.02 || r.Overhead > 0.10 {
			t.Errorf("%v on %s: overhead %.1f%%", r.Spec, r.Device, 100*r.Overhead)
		}
		// Latency within 2.5x of the paper's absolute number (shape, not
		// exact testbed agreement).
		ratio := ms(r.Baseline) / r.PaperBaselineMs
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%v on %s: baseline %.4f ms vs paper %.4f ms (x%.2f)",
				r.Spec, r.Device, ms(r.Baseline), r.PaperBaselineMs, ratio)
		}
	}
	if noFit != 1 {
		t.Errorf("no-fit entries = %d, want exactly 1 (LSTM h=1536 on XCKU115)", noFit)
	}
	if !strings.Contains(FormatTable4(rows), "cannot fit") {
		t.Error("format must render the '-' entry")
	}
}

func TestFig11ShapeMatchesPaper(t *testing.T) {
	series, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byLabel := map[string]Fig11Series{}
	for _, s := range series {
		byLabel[s.Label] = s
		// Overlap never loses to no-overlap, and both are monotone.
		for i, pt := range s.Points {
			if pt.StepWithOverlap > pt.StepNoOverlap {
				t.Errorf("%s: overlap worse at %v", s.Label, pt.AddedLatency)
			}
			if i > 0 && pt.StepWithOverlap < s.Points[i-1].StepWithOverlap {
				t.Errorf("%s: non-monotone at %v", s.Label, pt.AddedLatency)
			}
		}
	}
	lstm := byLabel["LSTM h=1024"]
	for _, pt := range lstm.Points {
		if !pt.Hidden {
			t.Errorf("LSTM must hide the entire sweep; exposed at %v", pt.AddedLatency)
		}
	}
	gruS := byLabel["GRU h=1024"]
	if gruS.CrossoverBudget < 300*time.Nanosecond || gruS.CrossoverBudget > 900*time.Nanosecond {
		t.Errorf("small GRU crossover = %v, paper ~0.6us", gruS.CrossoverBudget)
	}
	gruL := byLabel["GRU h=2560"]
	if gruL.CrossoverBudget > 300*time.Nanosecond {
		t.Errorf("large GRU crossover = %v, paper: not hidden", gruL.CrossoverBudget)
	}
	if !strings.Contains(FormatFig11(series), "overlap budget") {
		t.Error("format missing")
	}
}

func TestFig12Headline(t *testing.T) {
	opt := DefaultFig12Options()
	opt.NumTasks = 150 // keep the test quick; the bench runs the full size
	sum, err := Fig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 10 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	if sum.AvgVsBaseline < 2.0 || sum.AvgVsBaseline > 4.0 {
		t.Errorf("avg vs baseline = %.2fx, want 2-4x (paper 2.54x)", sum.AvgVsBaseline)
	}
	for _, r := range sum.Rows {
		if r.VsBaseline < 1.0 {
			t.Errorf("%v: proposed lost to baseline (%.2fx)", r.Composition, r.VsBaseline)
		}
	}
	if sum.AvgVsRestricted < 0.9 {
		t.Errorf("avg vs restricted = %.2f", sum.AvgVsRestricted)
	}
	if !strings.Contains(FormatFig12(sum), "paper: 2.54x") {
		t.Error("format missing")
	}
}

func TestCompileOverhead(t *testing.T) {
	r, err := CompileOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if r.Instances != 10 {
		t.Errorf("instances = %d", r.Instances)
	}
	if r.DecomposeFrac > 0.01 {
		t.Errorf("decompose+partition = %.3f%% of baseline, paper says <1%%", 100*r.DecomposeFrac)
	}
	if r.OverheadFrac < 0.15 || r.OverheadFrac > 0.45 {
		t.Errorf("piece-compile overhead = %.1f%%, want 15-45%% (paper 24.6%%)", 100*r.OverheadFrac)
	}
	if r.UniquePieces >= r.TotalPieces {
		t.Error("amortization must reuse pieces across instances")
	}
	if !strings.Contains(FormatCompileOverhead(r), "24.6%") {
		t.Error("format missing paper reference")
	}
}

func TestInstructionBufferFit(t *testing.T) {
	rows, err := InstructionBufferFit()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kernels.DeepBenchSuite()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Fits {
			t.Errorf("%v: %d B exceeds the %d B buffer (breaks the §4.4 claim)",
				r.Spec, r.ProgramBytes, r.BufferBytes)
		}
	}
	if !strings.Contains(FormatInstructionBufferFit(rows), "fits") {
		t.Error("format missing")
	}
}

func TestAblationPartition(t *testing.T) {
	rows, err := AblationPartition()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	strict := 0
	for _, r := range rows {
		if r.HopsAware > r.HopsNaive {
			t.Errorf("%v: aware hops %d > naive %d", r.Spec, r.HopsAware, r.HopsNaive)
		}
		if r.HopsAware < r.HopsNaive {
			strict++
		}
		if r.OverheadAware > r.OverheadNaive {
			t.Errorf("%v: aware overhead %.1f%% > naive %.1f%%",
				r.Spec, 100*r.OverheadAware, 100*r.OverheadNaive)
		}
	}
	// Single-tile instances have one lane, where the two partitioners
	// coincide; every multi-lane instance must show a strict win.
	if strict < len(rows)/2 {
		t.Errorf("pattern-aware won strictly on %d of %d rows", strict, len(rows))
	}
	if !strings.Contains(FormatAblationPartition(rows), "pattern-aware") {
		t.Error("format missing")
	}
}

func TestLoadSweep(t *testing.T) {
	points, err := LoadSweep(7, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("points = %d", len(points))
	}
	// At the lightest load both systems keep up with arrivals (throughput
	// ~ offered); at the heaviest load the proposed system's plateau beats
	// the baseline's.
	first := points[0]
	if first.Baseline < 0.5*first.OfferedPerSec {
		t.Errorf("baseline cannot keep up at light load: %+v", first)
	}
	last := points[len(points)-1]
	if last.Proposed <= last.Baseline {
		t.Errorf("saturated proposed (%v) must beat baseline (%v)", last.Proposed, last.Baseline)
	}
	// Baseline sojourn explodes under saturation (queueing).
	if last.BaselineSojourn <= first.BaselineSojourn {
		t.Error("baseline sojourn must grow with load")
	}
	if !strings.Contains(FormatLoadSweep(points), "offered") {
		t.Error("format missing")
	}
	if _, err := LoadSweep(0, 10, 1); err == nil {
		t.Error("bad set index must fail")
	}
}

func TestAblationPolicy(t *testing.T) {
	rows, err := AblationPolicy(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// SJF must improve (or at least not catastrophically hurt) average
	// sojourn on mixed sets, the classic SJF effect.
	better := 0
	for _, r := range rows {
		if r.SJF.Completed+r.SJF.Rejected != r.FIFO.Completed+r.FIFO.Rejected {
			t.Errorf("%v: task accounting differs", r.Composition)
		}
		if r.SJF.AvgSojourn < r.FIFO.AvgSojourn {
			better++
		}
	}
	if better < 3 {
		t.Errorf("SJF improved sojourn on only %d of %d sets", better, len(rows))
	}
	if !strings.Contains(FormatAblationPolicy(rows), "sjf") {
		t.Error("format missing")
	}
}

func TestAblationNumerics(t *testing.T) {
	rows, err := AblationNumerics()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Accuracy improves (weakly) with mantissa width, and the production
	// width (5 bits) is usable while very narrow widths degrade.
	for i := 1; i < len(rows); i++ {
		if rows[i].RMSErr > rows[i-1].RMSErr*1.5 {
			t.Errorf("rms error grew from %d to %d bits: %v -> %v",
				rows[i-1].MantissaBits, rows[i].MantissaBits, rows[i-1].RMSErr, rows[i].RMSErr)
		}
	}
	byBits := map[int]NumericsRow{}
	for _, r := range rows {
		byBits[r.MantissaBits] = r
	}
	if byBits[5].MaxAbsErr > 0.15 {
		t.Errorf("5-bit max error %v too large for inference", byBits[5].MaxAbsErr)
	}
	if byBits[3].RMSErr <= byBits[9].RMSErr {
		t.Error("3-bit must be worse than 9-bit")
	}
	if !strings.Contains(FormatAblationNumerics(rows), "ms-fp9") {
		t.Error("format missing")
	}
}
