package experiments

import (
	"fmt"
	"strings"
	"time"

	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/workload"
)

// This file holds extension experiments beyond the paper's figures: a
// saturation (offered load) sweep, and the queue-policy ablation the paper
// defers to future work ("further exploration on more comprehensive
// runtime policy").

// LoadSweepPoint is one offered-load sample.
type LoadSweepPoint struct {
	MeanInterarrival time.Duration
	OfferedPerSec    float64
	// Throughputs of the two systems at this load.
	Baseline float64
	Proposed float64
	// Sojourn times (arrival to completion) show where queueing begins.
	BaselineSojourn time.Duration
	ProposedSojourn time.Duration
}

// LoadSweep sweeps the offered load on a mixed workload set and reports
// both systems' achieved throughput: at low load both track the arrival
// rate; past each system's capacity the curves flatten, and the gap
// between the plateaus is the Fig. 12 gain.
func LoadSweep(setIndex, numTasks int, seed int64) ([]LoadSweepPoint, error) {
	comps := workload.Table1()
	if setIndex < 1 || setIndex > len(comps) {
		return nil, fmt.Errorf("experiments: set %d out of range", setIndex)
	}
	p := perf.DefaultParams()
	cluster := resource.PaperCluster()
	var out []LoadSweepPoint
	for _, inter := range []time.Duration{
		2 * time.Millisecond, 1 * time.Millisecond, 500 * time.Microsecond,
		200 * time.Microsecond, 100 * time.Microsecond, 50 * time.Microsecond,
		20 * time.Microsecond,
	} {
		tasks, err := workload.Generate(comps[setIndex-1], workload.Options{
			NumTasks: numTasks, MeanInterarrival: inter, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		base, err := rms.SimulateBaseline(tasks, cluster, p)
		if err != nil {
			return nil, err
		}
		flex, err := rms.Simulate(tasks, rms.Config{
			Cluster: cluster, Mode: rms.Flexible,
			DB: rms.NewDatabase(rms.Flexible, p, scaleout.DefaultOptions()),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LoadSweepPoint{
			MeanInterarrival: inter,
			OfferedPerSec:    1 / inter.Seconds(),
			Baseline:         base.ThroughputPerSec,
			Proposed:         flex.ThroughputPerSec,
			BaselineSojourn:  base.AvgSojourn,
			ProposedSojourn:  flex.AvgSojourn,
		})
	}
	return out, nil
}

// FormatLoadSweep renders the sweep.
func FormatLoadSweep(points []LoadSweepPoint) string {
	var sb strings.Builder
	sb.WriteString("Extension: throughput vs offered load (workload set 7)\n")
	for _, pt := range points {
		fmt.Fprintf(&sb, "  offered %8.0f/s  baseline %8.0f/s (sojourn %9v)  proposed %8.0f/s (sojourn %9v)\n",
			pt.OfferedPerSec, pt.Baseline, pt.BaselineSojourn.Round(time.Microsecond),
			pt.Proposed, pt.ProposedSojourn.Round(time.Microsecond))
	}
	return sb.String()
}

// PolicyAblationRow compares queue disciplines under the proposed system.
type PolicyAblationRow struct {
	Composition workload.Composition
	FIFO        rms.Result
	SJF         rms.Result
}

// AblationPolicy contrasts the default FIFO-with-backfill queue against
// shortest-job-first on every workload set — the runtime-policy
// exploration the paper leaves as future work.
func AblationPolicy(numTasks int, seed int64) ([]PolicyAblationRow, error) {
	p := perf.DefaultParams()
	cluster := resource.PaperCluster()
	var rows []PolicyAblationRow
	for _, comp := range workload.Table1() {
		tasks, err := workload.Generate(comp, workload.Options{
			NumTasks: numTasks, MeanInterarrival: 20 * time.Microsecond, Seed: seed + int64(comp.Index),
		})
		if err != nil {
			return nil, err
		}
		run := func(q rms.QueueDiscipline) (rms.Result, error) {
			return rms.Simulate(tasks, rms.Config{
				Cluster: cluster, Mode: rms.Flexible,
				DB:         rms.NewDatabase(rms.Flexible, p, scaleout.DefaultOptions()),
				Discipline: q,
			})
		}
		fifo, err := run(rms.FIFOBackfill)
		if err != nil {
			return nil, err
		}
		sjf, err := run(rms.SJF)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PolicyAblationRow{Composition: comp, FIFO: fifo, SJF: sjf})
	}
	return rows, nil
}

// FormatAblationPolicy renders the comparison.
func FormatAblationPolicy(rows []PolicyAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: queue-policy ablation (proposed system, FIFO-backfill vs SJF)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-32s fifo %8.0f/s (sojourn %9v)  sjf %8.0f/s (sojourn %9v)\n",
			r.Composition,
			r.FIFO.ThroughputPerSec, r.FIFO.AvgSojourn.Round(time.Microsecond),
			r.SJF.ThroughputPerSec, r.SJF.AvgSojourn.Round(time.Microsecond))
	}
	return sb.String()
}
