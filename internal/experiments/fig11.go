package experiments

import (
	"fmt"
	"strings"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/scaleout"
)

// Fig11Point is one sample of the Fig. 11 sweep.
type Fig11Point struct {
	AddedLatency time.Duration
	// StepWithOverlap / StepNoOverlap are per-timestep latencies on the
	// 2-FPGA deployment with and without the §2.3 optimization.
	StepWithOverlap time.Duration
	StepNoOverlap   time.Duration
	// Hidden reports whether the added latency is fully hidden (the step
	// time equals the zero-added-latency step time).
	Hidden bool
}

// Fig11Series is the sweep for one benchmark line.
type Fig11Series struct {
	Label  string
	Spec   kernels.LayerSpec
	Device string
	Points []Fig11Point
	// CrossoverBudget is the largest added latency the overlap fully
	// hides (the paper: "less than 0.6 us" for the small GRU).
	CrossoverBudget time.Duration
}

// Fig11Specs returns the three benchmark lines of Fig. 11.
func Fig11Specs() []struct {
	Label string
	Spec  kernels.LayerSpec
} {
	return []struct {
		Label string
		Spec  kernels.LayerSpec
	}{
		{"LSTM h=1024", kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1024, TimeSteps: 1}},
		{"GRU h=1024", kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 1}},
		{"GRU h=2560", kernels.LayerSpec{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 1}},
	}
}

// Fig11 reproduces the inter-FPGA latency sweep: a 2-FPGA deployment with
// the programmable delay module adding 0..1us, with and without the
// communication/computation overlap.
func Fig11() ([]Fig11Series, error) {
	p := perf.DefaultParams()
	const device = "XCVU37P"
	var out []Fig11Series
	for _, line := range Fig11Specs() {
		series := Fig11Series{Label: line.Label, Spec: line.Spec, Device: device}
		budget, err := scaleout.HiddenLatencyBudget(line.Spec, device, p, netmodel.DefaultRingLink())
		if err != nil {
			return nil, err
		}
		series.CrossoverBudget = budget
		var base time.Duration
		for added := time.Duration(0); added <= time.Microsecond; added += 100 * time.Nanosecond {
			link := netmodel.DefaultRingLink()
			link.AddedLatency = added
			with, _, _, err := scaleout.TwoFPGAStep(line.Spec, device, p, scaleout.TwoFPGAOptions{Overlap: true, Link: link})
			if err != nil {
				return nil, err
			}
			without, _, _, err := scaleout.TwoFPGAStep(line.Spec, device, p, scaleout.TwoFPGAOptions{Overlap: false, Link: link})
			if err != nil {
				return nil, err
			}
			if added == 0 {
				base = with
			}
			series.Points = append(series.Points, Fig11Point{
				AddedLatency:    added,
				StepWithOverlap: with,
				StepNoOverlap:   without,
				Hidden:          with == base,
			})
		}
		out = append(out, series)
	}
	return out, nil
}

// FormatFig11 renders the sweep as text.
func FormatFig11(series []Fig11Series) string {
	var sb strings.Builder
	sb.WriteString("Fig. 11: per-step latency vs added inter-FPGA latency (2-FPGA deployment)\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "%s on %s (overlap budget %.2fus; paper: LSTM hidden across sweep, small GRU ~0.6us, large GRU not hidden)\n",
			s.Label, s.Device, s.CrossoverBudget.Seconds()*1e6)
		for _, pt := range s.Points {
			marker := " "
			if pt.Hidden {
				marker = "H"
			}
			fmt.Fprintf(&sb, "  added=%4.1fus overlap=%7.3fus  no-overlap=%7.3fus %s\n",
				pt.AddedLatency.Seconds()*1e6,
				pt.StepWithOverlap.Seconds()*1e6,
				pt.StepNoOverlap.Seconds()*1e6, marker)
		}
	}
	return sb.String()
}
