package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mlvfpga/internal/parpool"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/workload"
)

// Fig12Row is one workload set's aggregated throughput under the four
// systems.
type Fig12Row struct {
	Composition workload.Composition
	// Throughputs in tasks/second.
	Baseline     float64
	Restricted   float64 // same-type-only multi-FPGA (literal Fig. 12 policy)
	StaticTarget float64 // additionally pinned to the offline compile target
	Proposed     float64
	// Ratios.
	VsBaseline   float64
	VsRestricted float64
	VsStatic     float64
}

// Fig12Options tunes the system-level simulation.
type Fig12Options struct {
	NumTasks         int
	MeanInterarrival time.Duration
	Seed             int64
	// Parallelism bounds the goroutines simulating independent workload
	// sets (each with its own DES engine and mapping database). Zero means
	// one worker per logical CPU; 1 is strictly sequential. Rows are
	// identical at every setting.
	Parallelism int
}

// DefaultFig12Options saturates the paper cluster so throughput reflects
// capacity rather than the arrival rate.
func DefaultFig12Options() Fig12Options {
	return Fig12Options{NumTasks: 300, MeanInterarrival: 20 * time.Microsecond, Seed: 1}
}

// Fig12Summary aggregates the per-set rows.
type Fig12Summary struct {
	Rows []Fig12Row
	// AvgVsBaseline is the headline number (paper: 2.54x).
	AvgVsBaseline float64
	// AvgVsRestricted / AvgVsStatic bracket the paper's +16% restricted
	// comparison (see EXPERIMENTS.md for the interpretation discussion).
	AvgVsRestricted float64
	AvgVsStatic     float64
}

// Fig12 reproduces the aggregated-throughput comparison over the ten
// Table 1 workload sets. The sets are independent — every simulation owns
// its DES engine, controller state and mapping database — so they fan out
// over a bounded worker pool; rows keep Table 1 order and the averages are
// accumulated sequentially afterwards, so the summary is bit-identical to
// the sequential run.
func Fig12(opt Fig12Options) (*Fig12Summary, error) {
	p := perf.DefaultParams()
	net := scaleout.DefaultOptions()
	cluster := resource.PaperCluster()
	comps := workload.Table1()
	rows, err := parpool.Map(context.Background(), opt.Parallelism, len(comps),
		func(_ context.Context, i int) (Fig12Row, error) {
			return fig12Row(comps[i], opt, cluster, p, net)
		})
	if err != nil {
		return nil, err
	}
	sum := &Fig12Summary{Rows: rows}
	for _, row := range rows {
		sum.AvgVsBaseline += row.VsBaseline
		sum.AvgVsRestricted += row.VsRestricted
		sum.AvgVsStatic += row.VsStatic
	}
	n := float64(len(sum.Rows))
	sum.AvgVsBaseline /= n
	sum.AvgVsRestricted /= n
	sum.AvgVsStatic /= n
	return sum, nil
}

// fig12Row simulates one workload set under the four systems.
func fig12Row(comp workload.Composition, opt Fig12Options, cluster resource.ClusterSpec, p perf.Params, net scaleout.TwoFPGAOptions) (Fig12Row, error) {
	tasks, err := workload.Generate(comp, workload.Options{
		NumTasks:         opt.NumTasks,
		MeanInterarrival: opt.MeanInterarrival,
		Seed:             opt.Seed + int64(comp.Index),
	})
	if err != nil {
		return Fig12Row{}, err
	}
	base, err := rms.SimulateBaseline(tasks, cluster, p)
	if err != nil {
		return Fig12Row{}, err
	}
	run := func(mode rms.PolicyMode) (rms.Result, error) {
		return rms.Simulate(tasks, rms.Config{
			Cluster: cluster, Mode: mode,
			DB: rms.NewDatabase(mode, p, net),
		})
	}
	restr, err := run(rms.SameTypeOnly)
	if err != nil {
		return Fig12Row{}, err
	}
	pinned, err := run(rms.StaticTarget)
	if err != nil {
		return Fig12Row{}, err
	}
	flex, err := run(rms.Flexible)
	if err != nil {
		return Fig12Row{}, err
	}
	row := Fig12Row{
		Composition:  comp,
		Baseline:     base.ThroughputPerSec,
		Restricted:   restr.ThroughputPerSec,
		StaticTarget: pinned.ThroughputPerSec,
		Proposed:     flex.ThroughputPerSec,
	}
	if row.Baseline > 0 {
		row.VsBaseline = row.Proposed / row.Baseline
	}
	if row.Restricted > 0 {
		row.VsRestricted = row.Proposed / row.Restricted
	}
	if row.StaticTarget > 0 {
		row.VsStatic = row.Proposed / row.StaticTarget
	}
	return row, nil
}

// FormatFig12 renders the summary as text.
func FormatFig12(s *Fig12Summary) string {
	var sb strings.Builder
	sb.WriteString("Fig. 12: aggregated system throughput (tasks/s) per workload set\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&sb, "%-32s base=%8.0f restricted=%8.0f static=%8.0f proposed=%8.0f  x%.2f vs base, x%.2f vs restricted\n",
			r.Composition, r.Baseline, r.Restricted, r.StaticTarget, r.Proposed,
			r.VsBaseline, r.VsRestricted)
	}
	fmt.Fprintf(&sb, "average: x%.2f vs baseline (paper: 2.54x), x%.2f vs restricted / x%.2f vs static-target (paper: 1.16x)\n",
		s.AvgVsBaseline, s.AvgVsRestricted, s.AvgVsStatic)
	return sb.String()
}
