package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mlvfpga/internal/kernels"
)

// NumericsRow reports inference accuracy for one BFP mantissa width.
type NumericsRow struct {
	MantissaBits int
	// MaxAbsErr / RMSErr compare the accelerator's hidden states against
	// the float64 reference over the whole sequence.
	MaxAbsErr float64
	RMSErr    float64
}

// AblationNumerics sweeps the tile engines' BFP mantissa width on a GRU
// and measures output accuracy against the float64 reference. It grounds
// the case study's number-format choice (§3): narrow block floating point
// for the matrix-vector products (cheap DSP mapping) is accurate enough
// because the float16 point-wise path avoids re-quantizing activations,
// while widths below ~4 bits degrade quickly.
func AblationNumerics() ([]NumericsRow, error) {
	const (
		hidden = 64
		steps  = 8
		seed   = 2024
	)
	w := kernels.RandomWeights(kernels.GRU, hidden, seed)
	r := rand.New(rand.NewSource(seed + 1))
	inputs := make([][]float64, steps)
	for t := range inputs {
		x := make([]float64, hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[t] = x
	}
	// Golden trajectory.
	ref := kernels.NewReference(w)
	want := make([][]float64, steps)
	for t := range inputs {
		h, err := ref.Step(inputs[t])
		if err != nil {
			return nil, err
		}
		want[t] = h
	}

	var rows []NumericsRow
	for _, bits := range []int{3, 4, 5, 7, 9, 12} {
		k, err := kernels.Build(w, steps, 2)
		if err != nil {
			return nil, err
		}
		k.Cfg.MantissaBits = bits
		m, err := k.NewMachine()
		if err != nil {
			return nil, err
		}
		for t := range inputs {
			if err := k.SetInput(m, t, inputs[t]); err != nil {
				return nil, err
			}
		}
		if err := m.Run(k.Prog); err != nil {
			return nil, err
		}
		row := NumericsRow{MantissaBits: bits}
		var sq float64
		var n int
		for t := range inputs {
			got, err := k.ReadOutput(m, t)
			if err != nil {
				return nil, err
			}
			for i := range got {
				d := got[i] - want[t][i]
				if a := math.Abs(d); a > row.MaxAbsErr {
					row.MaxAbsErr = a
				}
				sq += d * d
				n++
			}
		}
		row.RMSErr = math.Sqrt(sq / float64(n))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblationNumerics renders the sweep.
func FormatAblationNumerics(rows []NumericsRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: BFP mantissa width vs GRU inference accuracy (vs float64 reference)\n")
	for _, r := range rows {
		marker := ""
		if r.MantissaBits == 5 {
			marker = "  <- BrainWave ms-fp9-class format (paper section 3)"
		}
		fmt.Fprintf(&sb, "  %2d-bit mantissa: max |err| %.4f, rms %.4f%s\n",
			r.MantissaBits, r.MaxAbsErr, r.RMSErr, marker)
	}
	return sb.String()
}
