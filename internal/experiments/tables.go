// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment returns typed rows/series consumed by
// the root benchmarks, cmd/mlv-bench, and EXPERIMENTS.md. Paper reference
// values are embedded so outputs can print side-by-side comparisons.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
)

// Table2Row is one baseline-accelerator implementation result.
type Table2Row struct {
	Name       string
	Device     string
	Tiles      int
	Resources  resource.Vector
	UtilLUT    float64 // fraction of device capacity
	UtilBRAM   float64
	UtilURAM   float64
	UtilDSP    float64
	ClockMHz   float64
	PeakTFLOPS float64

	// Paper values for comparison.
	PaperLUTs       int64
	PaperDSPs       int64
	PaperPeakTFLOPS float64
}

// Table2 reproduces the baseline accelerator implementation results.
func Table2() ([]Table2Row, error) {
	refs := []struct {
		name, device string
		tiles        int
		paperLUTs    int64
		paperDSPs    int64
		paperTFLOPS  float64
	}{
		{"BW-V37", "XCVU37P", 21, 610000, 7517, 36},
		{"BW-K115", "XCKU115", 13, 367000, 5073, 16.7},
	}
	var rows []Table2Row
	for _, r := range refs {
		m, err := hsvital.CalibratedAccelerator(r.device, r.tiles)
		if err != nil {
			return nil, err
		}
		dev, err := resource.LookupDevice(r.device)
		if err != nil {
			return nil, err
		}
		frac := func(n, c int64) float64 {
			if c == 0 {
				return 0
			}
			return float64(n) / float64(c)
		}
		rows = append(rows, Table2Row{
			Name: r.name, Device: r.device, Tiles: r.tiles,
			Resources:  m.Resources,
			UtilLUT:    frac(m.Resources.LUTs, dev.Capacity.LUTs),
			UtilBRAM:   frac(m.Resources.BRAMKb, dev.Capacity.BRAMKb),
			UtilURAM:   frac(m.Resources.URAMKb, dev.Capacity.URAMKb),
			UtilDSP:    frac(m.Resources.DSPs, dev.Capacity.DSPs),
			ClockMHz:   m.ClockMHz,
			PeakTFLOPS: m.PeakTFLOPS,
			PaperLUTs:  r.paperLUTs, PaperDSPs: r.paperDSPs, PaperPeakTFLOPS: r.paperTFLOPS,
		})
	}
	return rows, nil
}

// Table3Row is one virtual-block implementation result.
type Table3Row struct {
	Device          string
	BlocksPerDevice int
	Usable          resource.Vector
	ClockMHz        float64
	PeakTFLOPS      float64

	PaperLUTs       int64
	PaperDSPs       int64
	PaperPeakTFLOPS float64
}

// Table3 reproduces the per-virtual-block implementation results.
func Table3() ([]Table3Row, error) {
	refs := map[string]struct {
		luts, dsps int64
		tflops     float64
	}{
		"XCVU37P": {44900, 576, 3.69},
		"XCKU115": {39900, 552, 2.07},
	}
	var rows []Table3Row
	for _, spec := range hsvital.AllSpecs() {
		ref := refs[spec.Device.Name]
		rows = append(rows, Table3Row{
			Device:          spec.Device.Name,
			BlocksPerDevice: spec.BlocksPerDevice,
			Usable:          spec.BlockUsable,
			ClockMHz:        spec.ClockMHz,
			PeakTFLOPS:      spec.BlockPeakTFLOPS,
			PaperLUTs:       ref.luts, PaperDSPs: ref.dsps, PaperPeakTFLOPS: ref.tflops,
		})
	}
	return rows, nil
}

// Table4Row is one inference-latency comparison.
type Table4Row struct {
	Spec     kernels.LayerSpec
	Device   string
	Fits     bool
	Tiles    int
	Baseline time.Duration
	ThisWork time.Duration
	Overhead float64 // fraction

	PaperBaselineMs float64 // <0 when the paper reports "-"
	PaperOverhead   float64
}

// table4Paper holds the published Table 4 values (ms, overhead fraction);
// -1 marks "cannot fit into the FPGA".
var table4Paper = map[string][2][2]float64{
	// spec string -> [device][0]=baseline ms, [device][1]=overhead frac.
	"GRU h=512 t=1":     {{0.0131, 0.038}, {0.0227, 0.039}},
	"GRU h=1024 t=1500": {{5.01, 0.078}, {18.5, 0.078}},
	"GRU h=1536 t=375":  {{1.83, 0.075}, {6.91, 0.075}},
	"LSTM h=256 t=150":  {{0.726, 0.057}, {1.31, 0.056}},
	"LSTM h=512 t=25":   {{0.129, 0.053}, {0.232, 0.053}},
	"LSTM h=1024 t=25":  {{0.146, 0.070}, {0.263, 0.071}},
	"LSTM h=1536 t=50":  {{0.238, 0.084}, {-1, -1}},
}

// Table4 reproduces the single-FPGA inference latency comparison: the AS
// ISA-only baseline vs the virtualized deployment, per device type.
func Table4() ([]Table4Row, error) {
	p := perf.DefaultParams()
	devices := []string{"XCVU37P", "XCKU115"}
	var rows []Table4Row
	for _, spec := range kernels.DeepBenchSuite() {
		paper := table4Paper[spec.String()]
		for di, dev := range devices {
			row := Table4Row{
				Spec: spec, Device: dev,
				PaperBaselineMs: paper[di][0],
				PaperOverhead:   paper[di][1],
			}
			inst, err := perf.ChooseInstance(spec, dev)
			if err != nil {
				rows = append(rows, row) // Fits stays false: the "-" entry
				continue
			}
			base := perf.Baseline(spec, inst, p)
			virt, err := perf.Virtualized(spec, inst, 2, p)
			if err != nil {
				return nil, err
			}
			row.Fits = true
			row.Tiles = inst.Tiles
			row.Baseline = base.Total
			row.ThisWork = virt.Total
			row.Overhead = perf.OverheadFrac(base, virt)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable2 renders Table 2 rows as text.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: baseline accelerator implementation (measured | paper)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-8s tiles=%2d LUTs=%7d (%4.1f%% | paper %7d) DSPs=%5d (paper %5d) "+
			"BRAM=%5.1fMb URAM=%5.1fMb %3.0fMHz peak=%5.1f TFLOPS (paper %5.1f)\n",
			r.Name, r.Device, r.Tiles,
			r.Resources.LUTs, 100*r.UtilLUT, r.PaperLUTs,
			r.Resources.DSPs, r.PaperDSPs,
			float64(r.Resources.BRAMKb)/1024, float64(r.Resources.URAMKb)/1024,
			r.ClockMHz, r.PeakTFLOPS, r.PaperPeakTFLOPS)
	}
	return sb.String()
}

// FormatTable3 renders Table 3 rows as text.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: one ViTAL virtual block per device (measured | paper)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s blocks/device=%2d LUTs=%6d (paper %6d) DSPs=%4d (paper %4d) "+
			"BRAM=%4.1fMb URAM=%4.1fMb %3.0fMHz peak=%4.2f TFLOPS (paper %4.2f)\n",
			r.Device, r.BlocksPerDevice,
			r.Usable.LUTs, r.PaperLUTs, r.Usable.DSPs, r.PaperDSPs,
			float64(r.Usable.BRAMKb)/1024, float64(r.Usable.URAMKb)/1024,
			r.ClockMHz, r.PeakTFLOPS, r.PaperPeakTFLOPS)
	}
	return sb.String()
}

// FormatTable4 renders Table 4 rows as text.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: LSTM/GRU inference latency, baseline vs this work (measured | paper)\n")
	for _, r := range rows {
		if !r.Fits {
			fmt.Fprintf(&sb, "%-18s %-8s  -  (cannot fit; paper: -)\n", r.Spec, r.Device)
			continue
		}
		fmt.Fprintf(&sb, "%-18s %-8s tiles=%2d base=%9.4fms (paper %9.4f) virt=%9.4fms ovh=%4.1f%% (paper %4.1f%%)\n",
			r.Spec, r.Device, r.Tiles,
			ms(r.Baseline), r.PaperBaselineMs, ms(r.ThisWork),
			100*r.Overhead, 100*r.PaperOverhead)
	}
	return sb.String()
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
