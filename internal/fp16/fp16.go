// Package fp16 implements IEEE-754 binary16 ("half precision") arithmetic in
// software. The BrainWave-like accelerator (paper §3) uses float16 for all
// secondary vector operations — point-wise multiplication, addition and
// activation functions — to avoid the quantization noise of block floating
// point while keeping the datapath narrow.
//
// Values are stored in their 16-bit wire format (type Num). Arithmetic is
// performed by converting through float32, which is exact for binary16
// operands, and rounding the result back to binary16 with round-to-nearest-
// even. This matches the behaviour of a hardware FP16 unit with a single
// rounding at the end of each operation.
package fp16

import "math"

// Num is an IEEE-754 binary16 value in wire format:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Num uint16

// Special values.
const (
	PositiveZero     Num = 0x0000
	NegativeZero     Num = 0x8000
	PositiveInfinity Num = 0x7C00
	NegativeInfinity Num = 0xFC00
	// QuietNaN is the canonical quiet NaN produced by this package.
	QuietNaN Num = 0x7E00
	// MaxValue is the largest finite binary16 value, 65504.
	MaxValue Num = 0x7BFF
	// SmallestSubnormal is the smallest positive value, 2^-24.
	SmallestSubnormal Num = 0x0001
)

// FromFloat32 rounds a float32 to the nearest binary16 value using
// round-to-nearest-even, the IEEE default rounding mode.
func FromFloat32(f float32) Num {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if man != 0 {
			return Num(sign | 0x7E00) // quiet NaN, preserve sign
		}
		return Num(sign | 0x7C00)
	case exp == 0 && man == 0:
		return Num(sign) // signed zero
	}

	// Unbias float32 exponent, re-bias for binary16 (bias 15).
	e := exp - 127 + 15
	switch {
	case e >= 0x1F:
		// Overflow to infinity.
		return Num(sign | 0x7C00)
	case e <= 0:
		// Subnormal (or underflow to zero). Shift the 24-bit significand
		// (implicit leading 1) right so the exponent becomes 1-15.
		if e < -10 {
			return Num(sign) // underflows below the smallest subnormal
		}
		m := man | 0x800000 // add implicit bit
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		rounded := m + half
		// Round-to-nearest-even: if exactly halfway, clear the LSB.
		if m&(2*half-1) == half && rounded>>shift&1 == 1 {
			rounded--
		}
		return Num(sign | uint16(rounded>>shift))
	default:
		// Normal number: round 23-bit mantissa to 10 bits.
		const shift = 13
		half := uint32(1) << (shift - 1)
		rounded := man + half
		if man&(2*half-1) == half {
			rounded = man // tie: round to even below
			if man>>shift&1 == 1 {
				rounded = man + half
			} else {
				rounded = man
			}
		}
		m16 := rounded >> shift
		if m16 == 0x400 { // mantissa overflowed into exponent
			m16 = 0
			e++
			if e >= 0x1F {
				return Num(sign | 0x7C00)
			}
		}
		return Num(sign | uint16(e)<<10 | uint16(m16))
	}
}

// Float32 converts a binary16 value to float32 exactly.
func (n Num) Float32() float32 {
	sign := uint32(n&0x8000) << 16
	exp := uint32(n>>10) & 0x1F
	man := uint32(n) & 0x3FF

	switch {
	case exp == 0x1F: // Inf / NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7FC00000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
	}
}

// FromFloat64 rounds a float64 to binary16. The double rounding through
// float32 is harmless here because float32 has more than twice the mantissa
// bits of binary16.
func FromFloat64(f float64) Num { return FromFloat32(float32(f)) }

// Float64 converts to float64 exactly.
func (n Num) Float64() float64 { return float64(n.Float32()) }

// IsNaN reports whether n is a NaN.
func (n Num) IsNaN() bool { return n&0x7C00 == 0x7C00 && n&0x3FF != 0 }

// IsInf reports whether n is +Inf (sign>0), -Inf (sign<0) or either (sign=0).
func (n Num) IsInf(sign int) bool {
	if n&0x7FFF != 0x7C00 {
		return false
	}
	neg := n&0x8000 != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

// IsZero reports whether n is +0 or -0.
func (n Num) IsZero() bool { return n&0x7FFF == 0 }

// Neg returns -n.
func (n Num) Neg() Num { return n ^ 0x8000 }

// Abs returns |n|.
func (n Num) Abs() Num { return n &^ 0x8000 }

// Add returns a+b rounded to binary16.
func Add(a, b Num) Num { return FromFloat32(a.Float32() + b.Float32()) }

// Sub returns a-b rounded to binary16.
func Sub(a, b Num) Num { return FromFloat32(a.Float32() - b.Float32()) }

// Mul returns a*b rounded to binary16.
func Mul(a, b Num) Num { return FromFloat32(a.Float32() * b.Float32()) }

// Div returns a/b rounded to binary16.
func Div(a, b Num) Num { return FromFloat32(a.Float32() / b.Float32()) }

// FMA returns a*b+c with a single rounding, matching a fused hardware
// multiply-accumulate (the MFU's vv_madd path).
func FMA(a, b, c Num) Num {
	return FromFloat64(float64(a.Float32())*float64(b.Float32()) + float64(c.Float32()))
}

// Sigmoid returns 1/(1+exp(-n)) rounded to binary16, the accelerator's
// v_sigm activation.
func Sigmoid(n Num) Num {
	return FromFloat64(1 / (1 + math.Exp(-n.Float64())))
}

// Tanh returns tanh(n) rounded to binary16, the accelerator's v_tanh
// activation.
func Tanh(n Num) Num {
	return FromFloat64(math.Tanh(n.Float64()))
}

// Exp returns e^n rounded to binary16, the accelerator's v_exp
// activation (overflow saturates to +Inf per IEEE conversion).
func Exp(n Num) Num {
	return FromFloat64(math.Exp(n.Float64()))
}

// Recip returns 1/n rounded to binary16, the accelerator's v_recip
// activation (1/0 is +Inf, matching IEEE division).
func Recip(n Num) Num {
	return FromFloat64(1 / n.Float64())
}

// Less reports a < b with IEEE semantics (NaN compares false).
func Less(a, b Num) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	return a.Float32() < b.Float32()
}

// FromSlice64 converts a float64 slice to binary16, rounding each element.
func FromSlice64(xs []float64) []Num {
	out := make([]Num, len(xs))
	for i, x := range xs {
		out[i] = FromFloat64(x)
	}
	return out
}

// ToSlice64 converts a binary16 slice to float64.
func ToSlice64(ns []Num) []float64 {
	out := make([]float64, len(ns))
	for i, n := range ns {
		out[i] = n.Float64()
	}
	return out
}

// FromSlice64Into rounds xs element-wise into dst, which must be at least
// as long as xs. It is the allocation-free form of FromSlice64 used by the
// accelerator's steady-state execution engine.
func FromSlice64Into(dst []Num, xs []float64) {
	for i, x := range xs {
		dst[i] = FromFloat64(x)
	}
}

// ToSlice64Into widens ns element-wise into dst, which must be at least as
// long as ns. It is the allocation-free form of ToSlice64.
func ToSlice64Into(dst []float64, ns []Num) {
	for i, n := range ns {
		dst[i] = n.Float64()
	}
}
