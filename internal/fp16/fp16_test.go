package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		f    float64
		want Num
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},          // largest finite
		{65536, 0x7C00},          // overflows to +Inf
		{-70000, 0xFC00},         // overflows to -Inf
		{5.9604645e-8, 0x0001},   // smallest subnormal 2^-24
		{6.097555e-5, 0x03FF},    // largest subnormal
		{6.103515625e-5, 0x0400}, // smallest normal 2^-14
		{0.333251953125, 0x3555}, // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat64(c.f); got != c.want {
			t.Errorf("FromFloat64(%v) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
}

func TestDecodeKnown(t *testing.T) {
	cases := []struct {
		n    Num
		want float64
	}{
		{0x3C00, 1},
		{0xC000, -2},
		{0x7BFF, 65504},
		{0x0001, math.Pow(2, -24)},
		{0x0400, math.Pow(2, -14)},
		{0x3555, 0.333251953125},
	}
	for _, c := range cases {
		if got := c.n.Float64(); got != c.want {
			t.Errorf("%#04x.Float64() = %v, want %v", uint16(c.n), got, c.want)
		}
	}
}

func TestSpecials(t *testing.T) {
	if !PositiveInfinity.IsInf(1) || !NegativeInfinity.IsInf(-1) || !PositiveInfinity.IsInf(0) {
		t.Error("IsInf misclassifies infinities")
	}
	if PositiveInfinity.IsInf(-1) || NegativeInfinity.IsInf(1) {
		t.Error("IsInf sign confusion")
	}
	if !QuietNaN.IsNaN() || PositiveInfinity.IsNaN() {
		t.Error("IsNaN misclassifies")
	}
	if !PositiveZero.IsZero() || !NegativeZero.IsZero() || Num(0x3C00).IsZero() {
		t.Error("IsZero misclassifies")
	}
	if !FromFloat64(math.NaN()).IsNaN() {
		t.Error("NaN must round-trip to NaN")
	}
	if !math.IsNaN(QuietNaN.Float64()) {
		t.Error("NaN must decode to NaN")
	}
	if !FromFloat64(math.Inf(1)).IsInf(1) {
		t.Error("+Inf must encode to +Inf")
	}
	if FromFloat64(math.Copysign(0, -1)) != NegativeZero {
		t.Error("-0 must encode to negative zero")
	}
}

func TestNegAbs(t *testing.T) {
	one := FromFloat64(1)
	if one.Neg().Float64() != -1 {
		t.Error("Neg(1) != -1")
	}
	if one.Neg().Abs() != one {
		t.Error("Abs(-1) != 1")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 (0x3C00) and the next half
	// (0x3C01); round-to-even keeps 0x3C00.
	f := 1 + math.Pow(2, -11)
	if got := FromFloat64(f); got != 0x3C00 {
		t.Errorf("halfway tie rounded to %#04x, want 0x3C00 (even)", uint16(got))
	}
	// 1 + 3*2^-11 is halfway between 0x3C01 and 0x3C02; round-to-even picks
	// 0x3C02.
	f = 1 + 3*math.Pow(2, -11)
	if got := FromFloat64(f); got != 0x3C02 {
		t.Errorf("odd tie rounded to %#04x, want 0x3C02 (even)", uint16(got))
	}
	// Just above the tie must round up.
	f = 1 + math.Pow(2, -11) + math.Pow(2, -20)
	if got := FromFloat64(f); got != 0x3C01 {
		t.Errorf("above-tie rounded to %#04x, want 0x3C01", uint16(got))
	}
}

func TestArithmetic(t *testing.T) {
	a, b := FromFloat64(1.5), FromFloat64(2.25)
	if got := Add(a, b).Float64(); got != 3.75 {
		t.Errorf("1.5+2.25 = %v", got)
	}
	if got := Sub(a, b).Float64(); got != -0.75 {
		t.Errorf("1.5-2.25 = %v", got)
	}
	if got := Mul(a, b).Float64(); got != 3.375 {
		t.Errorf("1.5*2.25 = %v", got)
	}
	if got := Div(FromFloat64(1), FromFloat64(4)).Float64(); got != 0.25 {
		t.Errorf("1/4 = %v", got)
	}
	if got := FMA(a, b, FromFloat64(1)).Float64(); got != 4.375 {
		t.Errorf("fma(1.5,2.25,1) = %v", got)
	}
}

func TestActivations(t *testing.T) {
	if got := Sigmoid(PositiveZero).Float64(); got != 0.5 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if got := Tanh(PositiveZero).Float64(); got != 0 {
		t.Errorf("tanh(0) = %v", got)
	}
	// Saturation behaviour.
	if got := Sigmoid(FromFloat64(20)).Float64(); got != 1 {
		t.Errorf("sigmoid(20) = %v, want 1 after rounding", got)
	}
	if got := Tanh(FromFloat64(-20)).Float64(); got != -1 {
		t.Errorf("tanh(-20) = %v", got)
	}
}

func TestLess(t *testing.T) {
	if !Less(FromFloat64(1), FromFloat64(2)) || Less(FromFloat64(2), FromFloat64(1)) {
		t.Error("Less ordering wrong")
	}
	if Less(QuietNaN, FromFloat64(1)) || Less(FromFloat64(1), QuietNaN) {
		t.Error("NaN must compare false")
	}
}

func TestSliceConversions(t *testing.T) {
	xs := []float64{0, 1, -2, 0.5}
	back := ToSlice64(FromSlice64(xs))
	for i := range xs {
		if back[i] != xs[i] {
			t.Errorf("slice round trip [%d] = %v, want %v", i, back[i], xs[i])
		}
	}
}

// Property: every 16-bit pattern that is not NaN survives a
// Num -> float32 -> Num round trip exactly.
func TestExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		n := Num(i)
		if n.IsNaN() {
			if !FromFloat32(n.Float32()).IsNaN() {
				t.Fatalf("NaN pattern %#04x lost", i)
			}
			continue
		}
		if got := FromFloat32(n.Float32()); got != n {
			t.Fatalf("round trip %#04x -> %v -> %#04x", i, n.Float32(), uint16(got))
		}
	}
}

// Property: FromFloat32 returns the nearest representable half for random
// finite inputs (checked against a brute-force nearest search within one ulp).
func TestQuickNearest(t *testing.T) {
	f := func(u uint16, frac uint16) bool {
		n := Num(u)
		if n.IsNaN() || n.IsInf(0) {
			return true
		}
		// Perturb within half an ulp: result must round back to n or a
		// neighbour whose distance is not larger.
		x := n.Float32()
		eps := float32(math.Abs(float64(x)))*1e-4 + 1e-9
		y := x + eps*(float32(frac%128)/128-0.5)
		g := FromFloat32(y)
		if g.IsNaN() || g.IsInf(0) {
			return true
		}
		// The error of the chosen representation must be minimal vs its
		// adjacent representable values.
		d := math.Abs(float64(g.Float32()) - float64(y))
		for delta := -1; delta <= 1; delta += 2 {
			alt := Num(uint16(int(g) + delta))
			if alt.IsNaN() || alt.IsInf(0) || (g&0x8000) != (alt&0x8000) {
				continue
			}
			if math.Abs(float64(alt.Float32())-float64(y)) < d-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Mul by 1 is identity.
func TestQuickAlgebra(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Num(a), Num(b)
		if x.IsNaN() || y.IsNaN() {
			return true
		}
		if Add(x, y) != Add(y, x) && !Add(x, y).IsNaN() {
			return false
		}
		one := FromFloat64(1)
		if !x.IsNaN() && Mul(x, one) != x && !x.IsZero() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
