package hsvital

import (
	"fmt"
	"sync"
)

// Controller is the low-level controller of the HS abstraction (paper
// Fig. 7): it owns the physical FPGAs and configures virtual blocks on
// request from the framework's system controller. It tracks only block
// occupancy; which tenant owns which blocks is the runtime manager's
// bookkeeping.
type Controller struct {
	mu    sync.Mutex
	fpgas []*PhysFPGA
}

// PhysFPGA is one physical device in the cluster.
type PhysFPGA struct {
	// ID is the device's index in the cluster (also its ring position).
	ID int
	// Spec is the device's virtual-block abstraction.
	Spec Spec
	// free is the number of unoccupied virtual blocks.
	free int
}

// FreeBlocks returns the number of unoccupied virtual blocks.
func (f *PhysFPGA) FreeBlocks() int { return f.free }

// NewController builds a controller over the given cluster composition,
// e.g. resource.PaperCluster(). Devices are ordered largest type first,
// and IDs define the ring positions.
func NewController(spec map[string]int) (*Controller, error) {
	c := &Controller{}
	for _, s := range AllSpecs() {
		n := spec[s.Device.Name]
		for i := 0; i < n; i++ {
			c.fpgas = append(c.fpgas, &PhysFPGA{
				ID:   len(c.fpgas),
				Spec: s,
				free: s.BlocksPerDevice,
			})
		}
	}
	// Reject unknown device names.
	for name := range spec {
		if _, err := SpecFor(name); err != nil {
			return nil, err
		}
	}
	if len(c.fpgas) == 0 {
		return nil, fmt.Errorf("hsvital: empty cluster")
	}
	return c, nil
}

// Devices returns the physical FPGAs (callers must not mutate).
func (c *Controller) Devices() []*PhysFPGA {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*PhysFPGA{}, c.fpgas...)
}

// NumDevices returns the cluster size.
func (c *Controller) NumDevices() int { return len(c.fpgas) }

// Device returns one FPGA by id.
func (c *Controller) Device(id int) (*PhysFPGA, error) {
	if id < 0 || id >= len(c.fpgas) {
		return nil, fmt.Errorf("hsvital: device %d out of range", id)
	}
	return c.fpgas[id], nil
}

// Configure occupies n virtual blocks on device id (the "configure FPGA"
// request of Fig. 7). It fails without side effects if the device lacks
// free blocks.
func (c *Controller) Configure(id, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.fpgas) {
		return fmt.Errorf("hsvital: device %d out of range", id)
	}
	if n <= 0 {
		return fmt.Errorf("hsvital: configure %d blocks", n)
	}
	f := c.fpgas[id]
	if f.free < n {
		return fmt.Errorf("hsvital: device %d has %d free blocks, need %d", id, f.free, n)
	}
	f.free -= n
	return nil
}

// Release frees n virtual blocks on device id.
func (c *Controller) Release(id, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.fpgas) {
		return fmt.Errorf("hsvital: device %d out of range", id)
	}
	f := c.fpgas[id]
	if n <= 0 || f.free+n > f.Spec.BlocksPerDevice {
		return fmt.Errorf("hsvital: release %d blocks on device %d with %d free of %d",
			n, id, f.free, f.Spec.BlocksPerDevice)
	}
	f.free += n
	return nil
}

// TotalFreeBlocks sums free blocks across the cluster.
func (c *Controller) TotalFreeBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, f := range c.fpgas {
		total += f.free
	}
	return total
}

// Utilization returns occupied/total virtual blocks across the cluster.
func (c *Controller) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total, free := 0, 0
	for _, f := range c.fpgas {
		total += f.Spec.BlocksPerDevice
		free += f.free
	}
	if total == 0 {
		return 0
	}
	return float64(total-free) / float64(total)
}
