// Package hsvital models the hardware-specific (HS) abstraction the paper
// builds on: ViTAL [53] divides each FPGA into identical virtual blocks
// connected by latency-insensitive interfaces, shared by multiple tenants
// at sub-FPGA granularity and managed by a low-level controller.
//
// Because Vivado and physical FPGAs are unavailable here, the
// implementation results are an analytic model calibrated to the paper's
// published numbers (Tables 2 and 3) — see DESIGN.md §2 for the
// substitution rationale. The calibration constants below reproduce:
//
//   - Table 2: the baseline BrainWave-like accelerator fitted to each
//     device (BW-V37: 21 tiles, 400 MHz, 36 TFLOPS; BW-K115: 13 tiles,
//     300 MHz, 16.7 TFLOPS) with the published LUT/DFF/BRAM/URAM/DSP usage;
//   - Table 3: one virtual block per device type.
//
// The compiler maps a soft block (a cluster from the partitioning step)
// onto virtual blocks of a device type, reporting the block count, the
// latency-insensitive boundary hops on the data path's critical path, and
// a modelled place-and-route time used by the §4.3 compilation-overhead
// evaluation.
package hsvital

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mlvfpga/internal/resource"
	"mlvfpga/internal/softblock"
)

// TileMACsPerCycle is the multiply-accumulate throughput of one tile
// engine. Both baseline rows of Table 2 are consistent with ~2142
// MACs/cycle/tile (36 TFLOPS / 2 / 400 MHz / 21 and 16.7 / 2 / 300 MHz /
// 13).
const TileMACsPerCycle = 2142

// Spec describes the virtual-block abstraction of one device type.
type Spec struct {
	// Device is the physical part.
	Device resource.Device
	// BlocksPerDevice is how many virtual blocks ViTAL carves out of the
	// part (the remainder hosts the shell).
	BlocksPerDevice int
	// BlockUsable is the resource capacity a mapped design can actually
	// use within one virtual block — Table 3's reported usage at the
	// published utilization.
	BlockUsable resource.Vector
	// ClockMHz is the virtual block clock (Table 3).
	ClockMHz float64
	// BlockPeakTFLOPS is one virtual block's peak throughput (Table 3).
	BlockPeakTFLOPS float64
	// InterfaceLatencyCycles is the added pipeline latency per virtual
	// block boundary crossing (the latency-insensitive interface).
	InterfaceLatencyCycles int
	// HandshakeStallFrac is the steady-state throughput loss of the
	// elastic (valid/ready) interfaces, as a fraction of compute cycles.
	HandshakeStallFrac float64
}

// Table 3 calibration.
var (
	specVU37P = Spec{
		Device:          resource.XCVU37P,
		BlocksPerDevice: 12,
		BlockUsable: resource.Vector{
			LUTs: 44900, DFFs: 48800, BRAMKb: 3994, URAMKb: 2150, DSPs: 576,
		},
		ClockMHz:               400,
		BlockPeakTFLOPS:        3.69,
		InterfaceLatencyCycles: 8,
		HandshakeStallFrac:     0.052,
	}
	specKU115 = Spec{
		Device:          resource.XCKU115,
		BlocksPerDevice: 9,
		BlockUsable: resource.Vector{
			LUTs: 39900, DFFs: 34900, BRAMKb: 4608, URAMKb: 0, DSPs: 552,
		},
		ClockMHz:               300,
		BlockPeakTFLOPS:        2.07,
		InterfaceLatencyCycles: 8,
		HandshakeStallFrac:     0.052,
	}
)

// AllSpecs lists the virtual-block specs of every device type in the
// cluster, largest first.
func AllSpecs() []Spec { return []Spec{specVU37P, specKU115} }

// ErrUnknownSpec is returned for devices without a ViTAL calibration.
var ErrUnknownSpec = errors.New("hsvital: no virtual-block spec for device")

// SpecFor returns the spec for a device type name.
func SpecFor(device string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Device.Name == device {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("%w: %q", ErrUnknownSpec, device)
}

// ---------------------------------------------------------------------------
// Table 2: calibrated baseline accelerator model.

// AccelModel is one accelerator instance fitted to a device (a Table 2
// row, generalized over the tile count).
type AccelModel struct {
	Device     string
	Tiles      int
	Resources  resource.Vector
	ClockMHz   float64
	PeakTFLOPS float64
}

// accelCalib holds the per-device control and per-tile resource costs
// reverse-fitted from Table 2.
type accelCalib struct {
	control  resource.Vector
	perTile  resource.Vector
	maxTiles int
	clockMHz float64
}

var accelCalibs = map[string]accelCalib{
	// BW-V37: 21 tiles -> 610k LUT, 659k DFF, 51.5 Mb BRAM, 22.5 Mb URAM,
	// 7517 DSP at 400 MHz.
	"XCVU37P": {
		control:  resource.Vector{LUTs: 40000, DFFs: 29000, BRAMKb: 4448, URAMKb: 0, DSPs: 20},
		perTile:  resource.Vector{LUTs: 27143, DFFs: 30000, BRAMKb: 2299, URAMKb: 1097, DSPs: 357},
		maxTiles: 21,
		clockMHz: 400,
	},
	// BW-K115: 13 tiles -> 367k LUT, 386k DFF, 45.4 Mb BRAM, 5073 DSP at
	// 300 MHz. Weights live entirely in BRAM (no URAM on this part, §3).
	"XCKU115": {
		control:  resource.Vector{LUTs: 40000, DFFs: 29000, BRAMKb: 4448, URAMKb: 0, DSPs: 16},
		perTile:  resource.Vector{LUTs: 25154, DFFs: 27462, BRAMKb: 3234, URAMKb: 0, DSPs: 389},
		maxTiles: 13,
		clockMHz: 300,
	},
}

// MaxTiles returns the largest instance that fits the device (the Table 2
// baselines: 21 on XCVU37P, 13 on XCKU115).
func MaxTiles(device string) int {
	if c, ok := accelCalibs[device]; ok {
		return c.maxTiles
	}
	return 0
}

// CalibratedAccelerator returns the modelled implementation results for an
// instance with the given tile count on the device.
func CalibratedAccelerator(device string, tiles int) (AccelModel, error) {
	c, ok := accelCalibs[device]
	if !ok {
		return AccelModel{}, fmt.Errorf("%w: %q", ErrUnknownSpec, device)
	}
	if tiles < 1 || tiles > c.maxTiles {
		return AccelModel{}, fmt.Errorf("hsvital: %d tiles out of range [1,%d] for %s",
			tiles, c.maxTiles, device)
	}
	return AccelModel{
		Device:     device,
		Tiles:      tiles,
		Resources:  c.control.Add(c.perTile.Scale(int64(tiles))),
		ClockMHz:   c.clockMHz,
		PeakTFLOPS: 2 * float64(tiles) * TileMACsPerCycle * c.clockMHz * 1e6 / 1e12,
	}, nil
}

// ControlResources returns the calibrated control-path cost on a device.
func ControlResources(device string) (resource.Vector, error) {
	c, ok := accelCalibs[device]
	if !ok {
		return resource.Vector{}, fmt.Errorf("%w: %q", ErrUnknownSpec, device)
	}
	return c.control, nil
}

// PerTileResources returns the calibrated per-tile cost on a device.
func PerTileResources(device string) (resource.Vector, error) {
	c, ok := accelCalibs[device]
	if !ok {
		return resource.Vector{}, fmt.Errorf("%w: %q", ErrUnknownSpec, device)
	}
	return c.perTile, nil
}

// ---------------------------------------------------------------------------
// Compiler: soft block -> virtual blocks.

// ErrNoFit is returned when a soft block cannot be mapped onto the
// device's virtual blocks (e.g. it demands URAM on a URAM-less part, or
// needs more blocks than one device provides — repartition and retry).
var ErrNoFit = errors.New("hsvital: soft block does not fit device")

// Image is the result of mapping one soft block onto one device type's
// virtual-block abstraction: the deployable unit the runtime allocates.
type Image struct {
	// PieceID is the soft block's ID.
	PieceID string
	// Device is the target device type.
	Device string
	// Blocks is the number of virtual blocks the piece occupies.
	Blocks int
	// Hops is the number of latency-insensitive boundary crossings on the
	// data path's critical path.
	Hops int
	// Resources is the demand used for the block count.
	Resources resource.Vector
	// ClockMHz is the achieved frequency.
	ClockMHz float64
	// CompileTime is the modelled place-and-route time for this image.
	CompileTime time.Duration
}

// BlocksFor computes how many virtual blocks a resource demand occupies on
// a device type, the quantity the runtime manager packs against free
// blocks.
func BlocksFor(need resource.Vector, spec Spec) (int, error) {
	blocks := 1
	for _, k := range resource.Kinds {
		n, cap := need.Get(k), spec.BlockUsable.Get(k)
		if n == 0 {
			continue
		}
		if cap == 0 {
			return 0, fmt.Errorf("%w: needs %d %v, device %s has none",
				ErrNoFit, n, k, spec.Device.Name)
		}
		b := int((n + cap - 1) / cap)
		if b > blocks {
			blocks = b
		}
	}
	return blocks, nil
}

// Compile maps a soft block onto the virtual-block abstraction of one
// device type. patternAware selects the paper's partition tool, which
// avoids placing a SIMD lane's internal pipeline across virtual blocks
// (§4.3); false models ViTAL's pattern-oblivious partitioner, used as an
// ablation baseline.
func Compile(piece *softblock.Block, spec Spec, patternAware bool) (*Image, error) {
	if piece == nil {
		return nil, errors.New("hsvital: nil soft block")
	}
	blocks, err := BlocksFor(piece.Resources, spec)
	if err != nil {
		return nil, err
	}
	if blocks > spec.BlocksPerDevice {
		return nil, fmt.Errorf("%w: needs %d virtual blocks, %s provides %d",
			ErrNoFit, blocks, spec.Device.Name, spec.BlocksPerDevice)
	}
	hops := boundaryHops(piece, spec, blocks, patternAware)
	return &Image{
		PieceID:     piece.ID,
		Device:      spec.Device.Name,
		Blocks:      blocks,
		Hops:        hops,
		Resources:   piece.Resources,
		ClockMHz:    spec.ClockMHz,
		CompileTime: ModelCompileTime(piece.Resources),
	}, nil
}

// boundaryHops estimates the latency-insensitive interface crossings on
// the critical path. With the pattern-aware partitioner each SIMD lane's
// pipeline stays inside virtual blocks whenever a lane fits one block, so
// a data element crosses only the lane's own block boundaries plus one
// hop into and out of the region. The pattern-oblivious partitioner slices
// the design by area, so the critical path crosses on the order of every
// block boundary.
func boundaryHops(piece *softblock.Block, spec Spec, blocks int, patternAware bool) int {
	if !patternAware {
		if blocks < 1 {
			return 1
		}
		return blocks + 1
	}
	lane := piece
	if piece.Kind == softblock.DataParallel && len(piece.Children) > 0 {
		lane = piece.Children[0]
	}
	laneBlocks, err := BlocksFor(lane.Resources, spec)
	if err != nil || laneBlocks < 1 {
		laneBlocks = 1
	}
	return laneBlocks + 1
}

// ModelCompileTime is the place-and-route time model: a fixed setup cost
// plus time proportional to logic volume. Calibrated so the full 21-tile
// XCVU37P baseline costs ~5.3 hours, typical for a highly utilized
// UltraScale+ part.
func ModelCompileTime(need resource.Vector) time.Duration {
	// Place-and-route effort grows superlinearly with logic volume: a
	// highly utilized UltraScale+ part takes disproportionally longer than
	// a lightly loaded one (congestion-driven iterations). The exponent
	// and scale put the full 21-tile XCVU37P baseline at ~4 hours and a
	// single-lane piece at ~10 minutes.
	const (
		setupSec = 300.0
		scale    = 2.6e-6
		exponent = 1.7
	)
	sec := setupSec + scale*math.Pow(float64(need.LUTs), exponent) + 0.012*float64(need.DSPs)
	return time.Duration(sec * float64(time.Second))
}
