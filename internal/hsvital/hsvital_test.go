package hsvital

import (
	"errors"
	"math"
	"testing"

	"mlvfpga/internal/resource"
	"mlvfpga/internal/softblock"
)

func TestSpecFor(t *testing.T) {
	v, err := SpecFor("XCVU37P")
	if err != nil || v.BlocksPerDevice != 12 {
		t.Fatalf("SpecFor(XCVU37P) = %+v, %v", v, err)
	}
	k, err := SpecFor("XCKU115")
	if err != nil || k.BlocksPerDevice != 9 {
		t.Fatalf("SpecFor(XCKU115) = %+v, %v", k, err)
	}
	if _, err := SpecFor("XC7A35T"); !errors.Is(err, ErrUnknownSpec) {
		t.Errorf("unknown device = %v", err)
	}
}

// The virtual blocks must physically fit their device.
func TestSpecsFitDevices(t *testing.T) {
	for _, s := range AllSpecs() {
		total := s.BlockUsable.Scale(int64(s.BlocksPerDevice))
		if !total.Fits(s.Device.Capacity) {
			t.Errorf("%s: %d virtual blocks demand %v, capacity %v",
				s.Device.Name, s.BlocksPerDevice, total, s.Device.Capacity)
		}
	}
}

// Table 2 reproduction: the calibrated model must match the paper's
// baseline rows.
func TestCalibratedAcceleratorTable2(t *testing.T) {
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	v37, err := CalibratedAccelerator("XCVU37P", 21)
	if err != nil {
		t.Fatal(err)
	}
	if !within(float64(v37.Resources.LUTs), 610000, 0.01) {
		t.Errorf("BW-V37 LUTs = %d, want ~610k", v37.Resources.LUTs)
	}
	if !within(float64(v37.Resources.BRAMKb), 51.5*1024, 0.02) {
		t.Errorf("BW-V37 BRAM = %d Kb, want ~51.5 Mb", v37.Resources.BRAMKb)
	}
	if !within(float64(v37.Resources.URAMKb), 22.5*1024, 0.02) {
		t.Errorf("BW-V37 URAM = %d Kb, want ~22.5 Mb", v37.Resources.URAMKb)
	}
	if v37.Resources.DSPs != 7517 {
		t.Errorf("BW-V37 DSPs = %d, want 7517", v37.Resources.DSPs)
	}
	if !within(v37.PeakTFLOPS, 36, 0.01) {
		t.Errorf("BW-V37 peak = %.2f TFLOPS, want 36", v37.PeakTFLOPS)
	}
	k115, err := CalibratedAccelerator("XCKU115", 13)
	if err != nil {
		t.Fatal(err)
	}
	if !within(float64(k115.Resources.LUTs), 367000, 0.01) {
		t.Errorf("BW-K115 LUTs = %d, want ~367k", k115.Resources.LUTs)
	}
	if k115.Resources.URAMKb != 0 {
		t.Error("BW-K115 must not use URAM")
	}
	if k115.Resources.DSPs != 5073 {
		t.Errorf("BW-K115 DSPs = %d, want 5073", k115.Resources.DSPs)
	}
	if !within(k115.PeakTFLOPS, 16.7, 0.01) {
		t.Errorf("BW-K115 peak = %.2f TFLOPS, want 16.7", k115.PeakTFLOPS)
	}
}

// The baselines must actually fit their parts.
func TestBaselinesFitDevices(t *testing.T) {
	for _, dev := range []string{"XCVU37P", "XCKU115"} {
		m, err := CalibratedAccelerator(dev, MaxTiles(dev))
		if err != nil {
			t.Fatal(err)
		}
		d, _ := resource.LookupDevice(dev)
		if !m.Resources.Fits(d.Capacity) {
			t.Errorf("%s baseline %v exceeds capacity %v", dev, m.Resources, d.Capacity)
		}
	}
}

func TestCalibratedAcceleratorErrors(t *testing.T) {
	if _, err := CalibratedAccelerator("nope", 1); err == nil {
		t.Error("unknown device")
	}
	if _, err := CalibratedAccelerator("XCVU37P", 0); err == nil {
		t.Error("0 tiles")
	}
	if _, err := CalibratedAccelerator("XCVU37P", 22); err == nil {
		t.Error("too many tiles")
	}
	if MaxTiles("nope") != 0 {
		t.Error("unknown device MaxTiles")
	}
}

func TestPerTileAndControl(t *testing.T) {
	ctrl, err := ControlResources("XCVU37P")
	if err != nil {
		t.Fatal(err)
	}
	tile, err := PerTileResources("XCVU37P")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := CalibratedAccelerator("XCVU37P", 5)
	want := ctrl.Add(tile.Scale(5))
	if m.Resources != want {
		t.Errorf("5-tile model = %v, want ctrl+5*tile = %v", m.Resources, want)
	}
	if _, err := ControlResources("x"); err == nil {
		t.Error("unknown device control")
	}
	if _, err := PerTileResources("x"); err == nil {
		t.Error("unknown device tile")
	}
}

func pieceWith(res resource.Vector) *softblock.Block {
	return softblock.NewLeaf("piece", "m", "", res, 64, 64)
}

func TestCompileBlockCount(t *testing.T) {
	spec, _ := SpecFor("XCVU37P")
	// Half a block of everything -> 1 block.
	img, err := Compile(pieceWith(resource.Vector{LUTs: 20000, DSPs: 200}), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if img.Blocks != 1 {
		t.Errorf("Blocks = %d, want 1", img.Blocks)
	}
	// DSP-bound: 3 blocks worth of DSPs.
	img, err = Compile(pieceWith(resource.Vector{LUTs: 1000, DSPs: 1500}), spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if img.Blocks != 3 {
		t.Errorf("Blocks = %d, want 3 (DSP-bound)", img.Blocks)
	}
	if img.ClockMHz != 400 || img.Device != "XCVU37P" {
		t.Errorf("image metadata: %+v", img)
	}
}

func TestCompileNoFit(t *testing.T) {
	k115, _ := SpecFor("XCKU115")
	// URAM demand cannot map to KU115.
	if _, err := Compile(pieceWith(resource.Vector{URAMKb: 100}), k115, true); !errors.Is(err, ErrNoFit) {
		t.Errorf("URAM on KU115 = %v, want ErrNoFit", err)
	}
	// More blocks than one device provides.
	if _, err := Compile(pieceWith(resource.Vector{DSPs: 552 * 10}), k115, true); !errors.Is(err, ErrNoFit) {
		t.Errorf("oversized piece = %v, want ErrNoFit", err)
	}
	if _, err := Compile(nil, k115, true); err == nil {
		t.Error("nil piece must error")
	}
}

func TestBoundaryHopsPatternAware(t *testing.T) {
	spec, _ := SpecFor("XCVU37P")
	// Data-parallel piece whose lanes each fit one virtual block: the
	// pattern-aware mapping pays lane hops (2), the oblivious one pays a
	// hop per block boundary.
	lanes := make([]*softblock.Block, 8)
	for i := range lanes {
		lanes[i] = softblock.NewLeaf(
			string(rune('a'+i)), "lane", "", resource.Vector{LUTs: 30000, DSPs: 400}, 64, 64)
	}
	piece := softblock.NewDataParallel("dp", lanes)
	aware, err := Compile(piece, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Compile(piece, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Blocks != naive.Blocks {
		t.Errorf("block count must not depend on partitioner: %d vs %d", aware.Blocks, naive.Blocks)
	}
	if aware.Hops >= naive.Hops {
		t.Errorf("pattern-aware hops (%d) must beat oblivious hops (%d)", aware.Hops, naive.Hops)
	}
	if aware.Hops != 2 {
		t.Errorf("aware hops = %d, want 2 (lane fits one block)", aware.Hops)
	}
	if naive.Hops != naive.Blocks+1 {
		t.Errorf("naive hops = %d, want blocks+1 = %d", naive.Hops, naive.Blocks+1)
	}
}

func TestModelCompileTime(t *testing.T) {
	m, _ := CalibratedAccelerator("XCVU37P", 21)
	full := ModelCompileTime(m.Resources)
	if full.Hours() < 4 || full.Hours() > 7 {
		t.Errorf("full-device compile = %v, want ~5h", full)
	}
	small := ModelCompileTime(resource.Vector{LUTs: 10000})
	if small >= full || small <= 0 {
		t.Errorf("small compile = %v", small)
	}
}

func TestControllerLifecycle(t *testing.T) {
	c, err := NewController(resource.PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 4 {
		t.Fatalf("NumDevices = %d", c.NumDevices())
	}
	// 3x12 + 1x9 = 45 blocks.
	if c.TotalFreeBlocks() != 45 {
		t.Errorf("TotalFreeBlocks = %d, want 45", c.TotalFreeBlocks())
	}
	if c.Utilization() != 0 {
		t.Errorf("initial utilization = %v", c.Utilization())
	}
	if err := c.Configure(0, 5); err != nil {
		t.Fatal(err)
	}
	d, err := c.Device(0)
	if err != nil || d.FreeBlocks() != 7 {
		t.Errorf("device 0 free = %d, want 7", d.FreeBlocks())
	}
	if c.Utilization() <= 0 {
		t.Error("utilization must rise")
	}
	if err := c.Configure(0, 8); err == nil {
		t.Error("over-allocation must fail")
	}
	if err := c.Release(0, 5); err != nil {
		t.Fatal(err)
	}
	if c.TotalFreeBlocks() != 45 {
		t.Errorf("after release = %d", c.TotalFreeBlocks())
	}
	if err := c.Release(0, 1); err == nil {
		t.Error("over-release must fail")
	}
	if err := c.Configure(99, 1); err == nil {
		t.Error("bad device id must fail")
	}
	if err := c.Configure(0, 0); err == nil {
		t.Error("zero blocks must fail")
	}
	if _, err := c.Device(-1); err == nil {
		t.Error("bad device lookup must fail")
	}
}

func TestControllerErrors(t *testing.T) {
	if _, err := NewController(map[string]int{"bogus": 1}); err == nil {
		t.Error("unknown device in cluster must fail")
	}
	if _, err := NewController(map[string]int{}); err == nil {
		t.Error("empty cluster must fail")
	}
}

// Device ordering: VU37P devices come before the KU115 (ring positions).
func TestControllerOrdering(t *testing.T) {
	c, _ := NewController(resource.PaperCluster())
	devs := c.Devices()
	for i := 0; i < 3; i++ {
		if devs[i].Spec.Device.Name != "XCVU37P" {
			t.Errorf("device %d = %s, want XCVU37P", i, devs[i].Spec.Device.Name)
		}
	}
	if devs[3].Spec.Device.Name != "XCKU115" {
		t.Errorf("device 3 = %s, want XCKU115", devs[3].Spec.Device.Name)
	}
}

// The controller must stay consistent under concurrent configure/release
// (exercised with -race in CI).
func TestControllerConcurrency(t *testing.T) {
	c, err := NewController(resource.PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	done := make(chan bool, workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			ok := true
			for i := 0; i < 200; i++ {
				dev := (id + i) % c.NumDevices()
				if err := c.Configure(dev, 1); err == nil {
					if err := c.Release(dev, 1); err != nil {
						ok = false
					}
				}
				_ = c.Utilization()
				_ = c.TotalFreeBlocks()
			}
			done <- ok
		}(w)
	}
	for w := 0; w < workers; w++ {
		if !<-done {
			t.Error("release failed after successful configure")
		}
	}
	if c.TotalFreeBlocks() != 45 {
		t.Errorf("blocks leaked: %d free, want 45", c.TotalFreeBlocks())
	}
}
