// Package inferbench holds the online data-plane benchmark bodies, shared
// by the repo's `go test -bench` wrappers and by cmd/mlv-bench-infer,
// which records them into BENCH_infer.json.
package inferbench

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

// The steady-state shape matches the recorded pre-optimization baseline:
// DeepBench LSTM h=256 truncated to 8 timesteps on a 2-tile instance.
const (
	ssHidden = 256
	ssSteps  = 8
	ssTiles  = 2
	// BatchStreams is the RunBatch width measured by InferBatched.
	BatchStreams = 8
)

func steadyKernel(b *testing.B) (*kernels.Kernel, [][]float64) {
	b.Helper()
	w := kernels.RandomWeights(kernels.LSTM, ssHidden, 1)
	k, err := kernels.Build(w, ssSteps, ssTiles)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	xs := make([][]float64, ssSteps)
	for t := range xs {
		x := make([]float64, ssHidden)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		xs[t] = x
	}
	return k, xs
}

// InferSteadyState measures one warm single-stream inference: tiles cached,
// register files sized, zero allocation per run.
func InferSteadyState(b *testing.B) {
	k, xs := steadyKernel(b)
	m, err := k.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	for t, x := range xs {
		if err := k.SetInput(m, t, x); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Run(k.Prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(k.Prog); err != nil {
			b.Fatal(err)
		}
	}
}

// InferBatched measures one warm RunBatch over BatchStreams input streams
// (one op = a whole batch; per-inference cost is ns_per_op/BatchStreams).
func InferBatched(b *testing.B) {
	k, xs := steadyKernel(b)
	m, err := k.NewBatchMachine(BatchStreams)
	if err != nil {
		b.Fatal(err)
	}
	w, err := k.Window(BatchStreams)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < BatchStreams; s++ {
		for t, x := range xs {
			if err := k.SetInputStream(m, s, t, x); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := m.RunBatch(k.Prog, w); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunBatch(k.Prog, w); err != nil {
			b.Fatal(err)
		}
	}
}

// ServeConcurrent measures the full HTTP data plane under concurrent
// clients: a DeepBench GRU h=512 t=1 lease served through /infer with
// micro-batching.
func ServeConcurrent(b *testing.B) {
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		b.Fatal(err)
	}
	lease, err := svc.Deploy(kernels.LayerSpec{Kind: kernels.GRU, Hidden: 512, TimeSteps: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := rms.DefaultInferOptions()
	dp := rms.NewDataPlane(svc, opts)
	defer dp.Close()
	srv := httptest.NewServer(dp.Handler())
	defer srv.Close()

	r := rand.New(rand.NewSource(3))
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"id":%d,"inputs":[[`, lease.ID)
	for i := 0; i < 512; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%.4f", r.NormFloat64())
	}
	sb.WriteString("]]}")
	body := sb.String()

	// Warm the engine (kernel build + machine pool) outside the timer.
	if err := postInfer(srv.URL, body); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := postInfer(srv.URL, body); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func postInfer(url, body string) error {
	resp, err := http.Post(url+"/infer", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("infer: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Result is one recorded measurement for BENCH_infer.json.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// NsPerInference normalizes batched results to a single stream.
	NsPerInference float64 `json:"ns_per_inference,omitempty"`
	Note           string  `json:"note,omitempty"`
}

// Measure runs fn through testing.Benchmark with memory stats.
func Measure(name string, streams int, fn func(*testing.B), note string) Result {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	r := Result{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Note:        note,
	}
	if streams > 1 {
		r.NsPerInference = float64(res.NsPerOp()) / float64(streams)
	}
	return r
}
