package inferbench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
)

// OpenLoopConfig drives one open-loop serving run. Arrivals are a
// precomputed Poisson process: the generator never waits for a response
// before issuing the next request, so queueing delay shows up in the
// latency numbers instead of silently throttling the offered load
// (no coordinated omission).
type OpenLoopConfig struct {
	// Flush selects the plane under test: true = the flush-and-wait
	// micro-batching engine, false = continuous batching.
	Flush bool
	// Connections is the number of concurrent client goroutines; the
	// arrival stream is dealt across them round-robin.
	Connections int
	// Requests is the total request count across all connections.
	Requests int
	// Rate is the aggregate offered load in requests/second.
	Rate float64
	// Seed derives arrivals and inputs.
	Seed int64

	// Layer shape and pool. Variable-length requests follow a serving-like
	// mix: of every 5 requests, four are short (1–2 timesteps) and one is
	// the full window — the same mix for both planes, so the flush plane's
	// obligation to run every rider to the full window is measured, not
	// assumed.
	Hidden, TimeSteps, Tiles int
	Machines, MaxBatch       int
	// Shards is the continuous plane's scheduler shard count (0 =
	// GOMAXPROCS).
	Shards int
}

// SmokeOpenLoopConfig returns the CI-sized configuration: small enough to
// finish in seconds, still exercising both planes end to end.
func SmokeOpenLoopConfig(flush bool) OpenLoopConfig {
	return OpenLoopConfig{
		Flush:       flush,
		Connections: 64,
		Requests:    256,
		Rate:        400,
		Seed:        1,
		Hidden:      64,
		TimeSteps:   16,
		Tiles:       1,
		Machines:    2,
		MaxBatch:    8,
	}
}

// OpenLoopResult is one plane's verdict under the offered load.
type OpenLoopResult struct {
	Plane       string  `json:"plane"`
	Connections int     `json:"connections"`
	Requests    int     `json:"requests"`
	OfferedRPS  float64 `json:"offered_rps"`
	// Served and Shed partition the requests; AchievedRPS is served
	// divided by the makespan (first scheduled arrival to last
	// completion), so shed load cannot inflate it.
	Served      int     `json:"served"`
	Shed        int     `json:"shed"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Latency is measured from the scheduled arrival time, not the
	// dispatch time, over served requests only.
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	DurationS float64 `json:"duration_s"`
	// Slot-occupancy evidence (continuous plane; zero on the flush
	// plane, which has no slots): MeanOccupancy is the average
	// co-resident cohort across step rounds. A flush plane drains to
	// empty between batches; continuous admission holds this near
	// MaxBatch under load, and AdmissionsIntoRunning counts the refills
	// that prove it.
	SlotRounds            int64   `json:"slot_rounds"`
	MeanOccupancy         float64 `json:"mean_slot_occupancy"`
	AdmissionsIntoRunning int64   `json:"admissions_into_running"`
	Steals                int64   `json:"steals"`
}

// reqLen returns request i's timestep count under the 4-short:1-full mix.
func reqLen(i, timeSteps int) int {
	if i%5 == 4 {
		return timeSteps
	}
	return 1 + i%2
}

// OpenLoop stands up a fresh service + data plane on the selected engine
// and drives the configured Poisson arrival stream through it.
func OpenLoop(cfg OpenLoopConfig) (*OpenLoopResult, error) {
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		return nil, err
	}
	lease, err := svc.Deploy(kernels.LayerSpec{
		Kind: kernels.LSTM, Hidden: cfg.Hidden, TimeSteps: cfg.TimeSteps,
	})
	if err != nil {
		return nil, err
	}
	opts := rms.DefaultInferOptions()
	opts.Flush = cfg.Flush
	opts.Machines = cfg.Machines
	opts.MaxBatch = cfg.MaxBatch
	opts.Shards = cfg.Shards
	opts.Tiles = cfg.Tiles
	dp := rms.NewDataPlane(svc, opts)
	defer dp.Close()

	// Precompute one input tensor per distinct length, shared read-only by
	// every connection, so 10k goroutines do not allocate 10k tensors.
	rng := rand.New(rand.NewSource(cfg.Seed))
	byLen := map[int][][]float64{}
	for _, n := range []int{1, 2, cfg.TimeSteps} {
		xs := make([][]float64, n)
		for t := range xs {
			x := make([]float64, cfg.Hidden)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			xs[t] = x
		}
		byLen[n] = xs
	}

	// Warm the engine (kernel build, machine pool, tile loads) before the
	// clock starts.
	if _, err := dp.Infer(lease.ID, byLen[cfg.TimeSteps]); err != nil {
		return nil, fmt.Errorf("openloop: warming: %w", err)
	}

	// Poisson arrivals: exponential inter-arrival gaps at the aggregate
	// rate, dealt round-robin across connections. Precomputed so the hot
	// loop only sleeps and submits.
	arrivals := make([]time.Duration, cfg.Requests)
	var at float64
	for i := range arrivals {
		at += rng.ExpFloat64() / cfg.Rate
		arrivals[i] = time.Duration(at * float64(time.Second))
	}

	slotsBase := metrics.SlotCounters()
	lat := make([]time.Duration, cfg.Requests) // -1 = shed
	done := make([]time.Time, cfg.Requests)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Connections; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < cfg.Requests; i += cfg.Connections {
				sched := start.Add(arrivals[i])
				time.Sleep(time.Until(sched))
				_, err := dp.Infer(lease.ID, byLen[reqLen(i, cfg.TimeSteps)])
				done[i] = time.Now()
				if err != nil {
					lat[i] = -1
					continue
				}
				lat[i] = done[i].Sub(sched)
			}
		}(c)
	}
	wg.Wait()
	slotsNow := metrics.SlotCounters()

	served := make([]time.Duration, 0, cfg.Requests)
	shed := 0
	last := start
	for i, l := range lat {
		if l < 0 {
			shed++
			continue
		}
		served = append(served, l)
		if done[i].After(last) {
			last = done[i]
		}
	}
	sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })
	makespan := last.Sub(start)
	res := &OpenLoopResult{
		Plane:       map[bool]string{true: "flush", false: "continuous"}[cfg.Flush],
		Connections: cfg.Connections,
		Requests:    cfg.Requests,
		OfferedRPS:  cfg.Rate,
		Served:      len(served),
		Shed:        shed,
		AchievedRPS: round2f(float64(len(served)) / makespan.Seconds()),
		P50Ms:       pctMs(served, 50),
		P99Ms:       pctMs(served, 99),
		MaxMs:       pctMs(served, 100),
		DurationS:   round2f(makespan.Seconds()),
	}
	sdelta := func(name string) int64 { return slotsNow[name] - slotsBase[name] }
	res.SlotRounds = sdelta("mlv_slot_rounds")
	res.AdmissionsIntoRunning = sdelta("mlv_admissions_into_running")
	res.Steals = sdelta("mlv_steals")
	if res.SlotRounds > 0 {
		res.MeanOccupancy = round2f(float64(sdelta("mlv_slot_round_occupancy")) / float64(res.SlotRounds))
	}
	return res, nil
}

// pctMs reads the p-th percentile (nearest-rank; 100 = max) of a sorted
// latency slice in milliseconds.
func pctMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(float64(p)/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return round2f(float64(sorted[idx]) / float64(time.Millisecond))
}

func round2f(x float64) float64 { return math.Round(x*100) / 100 }
