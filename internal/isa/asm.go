package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembly text into a program. Syntax is one instruction
// per line, comments start with '#' or ';', registers are written rN,
// immediates are decimal or 0x-prefixed hex:
//
//	m_rd r0, 4096        # load matrix
//	v_rd r1, 0           # load input vector
//	mv_mul r2, r0, r1
//	v_sigm r3, r2
//	v_wr r3, 128
//	end_chain
func Assemble(src string) (Program, error) {
	var prog Program
	for lineNo, rawLine := range strings.Split(src, "\n") {
		line := rawLine
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		instr, err := assembleLine(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		prog = append(prog, instr)
	}
	return prog, nil
}

func assembleLine(line string) (Instr, error) {
	fields := strings.Fields(line)
	mnemonic := fields[0]
	op, ok := opByName[mnemonic]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, mnemonic))
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}

	reg := func(s string) (uint8, error) {
		if !strings.HasPrefix(s, "r") {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.ParseUint(s[1:], 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (uint32, error) {
		n, err := strconv.ParseUint(s, 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return uint32(n), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	var i Instr
	i.Op = op
	var err error
	switch op {
	case OpVRead, OpMRead:
		if err = need(2); err != nil {
			return i, err
		}
		if i.Dst, err = reg(args[0]); err != nil {
			return i, err
		}
		i.Imm, err = imm(args[1])
		return i, err
	case OpVWrite:
		if err = need(2); err != nil {
			return i, err
		}
		if i.Src1, err = reg(args[0]); err != nil {
			return i, err
		}
		i.Imm, err = imm(args[1])
		return i, err
	case OpMVMul, OpVVAdd, OpVVSub, OpVVMul:
		if err = need(3); err != nil {
			return i, err
		}
		if i.Dst, err = reg(args[0]); err != nil {
			return i, err
		}
		if i.Src1, err = reg(args[1]); err != nil {
			return i, err
		}
		i.Src2, err = reg(args[2])
		return i, err
	case OpVSigm, OpVTanh, OpVRelu, OpVPass, OpVExp, OpVRecip:
		if err = need(2); err != nil {
			return i, err
		}
		if i.Dst, err = reg(args[0]); err != nil {
			return i, err
		}
		i.Src1, err = reg(args[1])
		return i, err
	case OpVConst:
		if err = need(2); err != nil {
			return i, err
		}
		if i.Dst, err = reg(args[0]); err != nil {
			return i, err
		}
		i.Imm, err = imm(args[1])
		return i, err
	case OpVRsub:
		if err = need(3); err != nil {
			return i, err
		}
		if i.Dst, err = reg(args[0]); err != nil {
			return i, err
		}
		if i.Src1, err = reg(args[1]); err != nil {
			return i, err
		}
		i.Imm, err = imm(args[2])
		return i, err
	case OpEndChain:
		return i, need(0)
	}
	return i, fmt.Errorf("unhandled opcode %v", op)
}
