// Package isa defines the application-specific ISA of the BrainWave-like
// accelerator used as the paper's case study (§3). Like the original [18],
// it is a vector ISA for low-latency DNN inference: logical vector and
// matrix registers, a matrix-vector multiply executed in block floating
// point on the tile engines, and float16 point-wise/activation operations
// on the multi-function units. Reads and writes to the on-board DRAM move
// vectors in and out — the scale-out optimization (§2.3) reuses exactly
// these instructions for inter-FPGA communication.
//
// Instructions encode to a fixed 8-byte wire format, giving compact code
// that fits the on-chip instruction buffer (§4.4).
package isa

import (
	"errors"
	"fmt"
	"strings"
)

// Opcode identifies an instruction.
type Opcode uint8

// The instruction set.
const (
	// OpVRead loads a vector register from DRAM: v_rd dst, imm(addr).
	OpVRead Opcode = iota + 1
	// OpVWrite stores a vector register to DRAM: v_wr src, imm(addr).
	OpVWrite
	// OpMRead loads a matrix register from DRAM: m_rd dst, imm(addr).
	// The matrix shape is configured per-register ahead of time.
	OpMRead
	// OpMVMul multiplies a matrix register by a vector register in block
	// floating point: mv_mul dst, msrc, vsrc.
	OpMVMul
	// OpVVAdd adds two vectors element-wise in float16.
	OpVVAdd
	// OpVVSub subtracts element-wise in float16.
	OpVVSub
	// OpVVMul multiplies element-wise (Hadamard) in float16.
	OpVVMul
	// OpVSigm applies the logistic sigmoid element-wise.
	OpVSigm
	// OpVTanh applies tanh element-wise.
	OpVTanh
	// OpVRelu applies max(0, x) element-wise.
	OpVRelu
	// OpVPass copies a vector register.
	OpVPass
	// OpVConst fills a vector register with a float16 constant (imm holds
	// the 16-bit pattern).
	OpVConst
	// OpVRsub computes imm - x element-wise (used for 1-z in GRU).
	OpVRsub
	// OpEndChain terminates an instruction chain (one inference).
	OpEndChain
	// OpVExp applies e^x element-wise (the attention cell's unnormalized
	// key weighting; like sigmoid/tanh it is an MFU lookup table).
	OpVExp
	// OpVRecip applies 1/x element-wise (the attention cell's
	// normalization, replacing a divide the MFUs do not have).
	OpVRecip

	opMax
)

var opNames = map[Opcode]string{
	OpVRead:    "v_rd",
	OpVWrite:   "v_wr",
	OpMRead:    "m_rd",
	OpMVMul:    "mv_mul",
	OpVVAdd:    "vv_add",
	OpVVSub:    "vv_sub",
	OpVVMul:    "vv_mul",
	OpVSigm:    "v_sigm",
	OpVTanh:    "v_tanh",
	OpVRelu:    "v_relu",
	OpVPass:    "v_pass",
	OpVConst:   "v_const",
	OpVRsub:    "v_rsub",
	OpEndChain: "end_chain",
	OpVExp:     "v_exp",
	OpVRecip:   "v_recip",
}

var opByName = func() map[string]Opcode {
	m := map[string]Opcode{}
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// String returns the mnemonic.
func (op Opcode) String() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether the opcode is defined.
func (op Opcode) Valid() bool { _, ok := opNames[op]; return ok }

// Instr is one decoded instruction. Operand meaning depends on the opcode:
//
//	v_rd   Dst=vreg              Imm=dram word address
//	       Src2=length mode (0 = full vector, 1 = half, 2 = quarter;
//	       scaled-down accelerators operate on 1/n shards, §2.3)
//	v_wr   Src1=vreg             Imm=dram word address
//	m_rd   Dst=mreg              Imm=dram word address
//	mv_mul Dst=vreg Src1=mreg Src2=vreg
//	vv_*   Dst=vreg Src1=vreg Src2=vreg
//	v_*    Dst=vreg Src1=vreg
//	v_const Dst=vreg             Imm=float16 bits
//	v_rsub Dst=vreg Src1=vreg    Imm=float16 bits
type Instr struct {
	Op   Opcode
	Dst  uint8
	Src1 uint8
	Src2 uint8
	Imm  uint32
}

// InstrBytes is the fixed wire size of one instruction.
const InstrBytes = 8

// Encode serializes the instruction into its 8-byte wire format.
func (i Instr) Encode() [InstrBytes]byte {
	return [InstrBytes]byte{
		byte(i.Op), i.Dst, i.Src1, i.Src2,
		byte(i.Imm), byte(i.Imm >> 8), byte(i.Imm >> 16), byte(i.Imm >> 24),
	}
}

// ErrBadEncoding is returned when decoding an invalid instruction word.
var ErrBadEncoding = errors.New("isa: bad instruction encoding")

// Decode parses an 8-byte instruction word.
func Decode(b [InstrBytes]byte) (Instr, error) {
	i := Instr{
		Op:   Opcode(b[0]),
		Dst:  b[1],
		Src1: b[2],
		Src2: b[3],
		Imm:  uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
	if !i.Op.Valid() {
		return Instr{}, fmt.Errorf("%w: opcode %d", ErrBadEncoding, b[0])
	}
	return i, nil
}

// String renders the instruction in assembly syntax.
func (i Instr) String() string {
	switch i.Op {
	case OpVRead, OpMRead:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Dst, i.Imm)
	case OpVWrite:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Src1, i.Imm)
	case OpMVMul, OpVVAdd, OpVVSub, OpVVMul:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Dst, i.Src1, i.Src2)
	case OpVSigm, OpVTanh, OpVRelu, OpVPass, OpVExp, OpVRecip:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Dst, i.Src1)
	case OpVConst:
		return fmt.Sprintf("%s r%d, %#04x", i.Op, i.Dst, i.Imm)
	case OpVRsub:
		return fmt.Sprintf("%s r%d, r%d, %#04x", i.Op, i.Dst, i.Src1, i.Imm)
	case OpEndChain:
		return i.Op.String()
	}
	return fmt.Sprintf("%s r%d, r%d, r%d, %d", i.Op, i.Dst, i.Src1, i.Src2, i.Imm)
}

// Program is an instruction sequence.
type Program []Instr

// EncodeProgram serializes a program.
func EncodeProgram(p Program) []byte {
	out := make([]byte, 0, len(p)*InstrBytes)
	for _, i := range p {
		w := i.Encode()
		out = append(out, w[:]...)
	}
	return out
}

// DecodeProgram parses a serialized program.
func DecodeProgram(data []byte) (Program, error) {
	if len(data)%InstrBytes != 0 {
		return nil, fmt.Errorf("%w: %d bytes is not a multiple of %d", ErrBadEncoding, len(data), InstrBytes)
	}
	p := make(Program, 0, len(data)/InstrBytes)
	for off := 0; off < len(data); off += InstrBytes {
		var w [InstrBytes]byte
		copy(w[:], data[off:off+InstrBytes])
		i, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", off, err)
		}
		p = append(p, i)
	}
	return p, nil
}

// Bytes returns the machine-code size of the program, the quantity checked
// against the instruction buffer capacity (§4.4).
func (p Program) Bytes() int { return len(p) * InstrBytes }

// Disassemble renders the program as assembly text.
func (p Program) Disassemble() string {
	var sb strings.Builder
	for _, i := range p {
		sb.WriteString(i.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Reads lists the registers the instruction reads. Vector registers are
// returned as-is; matrix register ids are offset by MRegBase so the two
// files do not alias in dependency analysis.
func (i Instr) Reads() []int {
	switch i.Op {
	case OpVWrite:
		return []int{int(i.Src1)}
	case OpMVMul:
		return []int{MRegBase + int(i.Src1), int(i.Src2)}
	case OpVVAdd, OpVVSub, OpVVMul:
		return []int{int(i.Src1), int(i.Src2)}
	case OpVSigm, OpVTanh, OpVRelu, OpVPass, OpVRsub, OpVExp, OpVRecip:
		return []int{int(i.Src1)}
	}
	return nil
}

// MRegBase offsets matrix register ids in dependency analysis.
const MRegBase = 1000

// Writes lists the registers the instruction writes (same id space as
// Reads).
func (i Instr) Writes() []int {
	switch i.Op {
	case OpVRead, OpMVMul, OpVVAdd, OpVVSub, OpVVMul,
		OpVSigm, OpVTanh, OpVRelu, OpVPass, OpVConst, OpVRsub,
		OpVExp, OpVRecip:
		return []int{int(i.Dst)}
	case OpMRead:
		return []int{MRegBase + int(i.Dst)}
	}
	return nil
}

// TouchesDRAM reports whether the instruction accesses DRAM, and whether
// the access is a write.
func (i Instr) TouchesDRAM() (touches, isWrite bool) {
	switch i.Op {
	case OpVRead, OpMRead:
		return true, false
	case OpVWrite:
		return true, true
	}
	return false, false
}

// DependsOn reports whether instruction b must stay after instruction a
// (true data dependence, anti-dependence or output dependence, plus DRAM
// ordering: DRAM accesses to any address stay ordered when at least one is
// a write, since the sync template module gives addresses side effects).
func DependsOn(a, b Instr) bool {
	aw, bw := a.Writes(), b.Writes()
	ar, br := a.Reads(), b.Reads()
	inter := func(x, y []int) bool {
		for _, i := range x {
			for _, j := range y {
				if i == j {
					return true
				}
			}
		}
		return false
	}
	if inter(aw, br) || inter(ar, bw) || inter(aw, bw) {
		return true
	}
	at, awr := a.TouchesDRAM()
	bt, bwr := b.TouchesDRAM()
	if at && bt && (awr || bwr) {
		return true
	}
	return false
}
