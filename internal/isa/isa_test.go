package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := Instr{Op: OpMVMul, Dst: 3, Src1: 7, Src2: 12, Imm: 0xDEADBEEF}
	got, err := Decode(ins.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != ins {
		t.Errorf("round trip = %+v, want %+v", got, ins)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var w [InstrBytes]byte
	w[0] = 0
	if _, err := Decode(w); err == nil {
		t.Error("opcode 0 must be invalid")
	}
	w[0] = byte(opMax)
	if _, err := Decode(w); err == nil {
		t.Error("opcode past range must be invalid")
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p := Program{
		{Op: OpMRead, Dst: 0, Imm: 4096},
		{Op: OpVRead, Dst: 1, Imm: 0},
		{Op: OpMVMul, Dst: 2, Src1: 0, Src2: 1},
		{Op: OpVSigm, Dst: 3, Src1: 2},
		{Op: OpVWrite, Src1: 3, Imm: 128},
		{Op: OpEndChain},
	}
	data := EncodeProgram(p)
	if len(data) != p.Bytes() {
		t.Errorf("Bytes = %d, len = %d", p.Bytes(), len(data))
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(p) {
		t.Fatalf("decoded %d instrs, want %d", len(back), len(p))
	}
	for i := range p {
		if back[i] != p[i] {
			t.Errorf("instr %d = %+v, want %+v", i, back[i], p[i])
		}
	}
	if _, err := DecodeProgram(data[:5]); err == nil {
		t.Error("truncated program must error")
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
		# load weights and input
		m_rd r0, 4096
		v_rd r1, 0      ; input x
		mv_mul r2, r0, r1
		vv_add r3, r2, r1
		vv_sub r4, r3, r1
		vv_mul r5, r4, r4
		v_sigm r6, r5
		v_tanh r7, r6
		v_relu r8, r7
		v_pass r9, r8
		v_const r10, 0x3c00
		v_rsub r11, r9, 0x3c00
		v_wr r11, 128
		end_chain
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 14 {
		t.Fatalf("assembled %d instrs, want 14", len(p))
	}
	// Disassemble and re-assemble: must be identical.
	p2, err := Assemble(p.Disassemble())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, p.Disassemble())
	}
	for i := range p {
		if p[i] != p2[i] {
			t.Errorf("instr %d differs: %v vs %v", i, p[i], p2[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r0, r1",
		"mv_mul r0, r1",           // wrong arity
		"v_rd x0, 5",              // bad register
		"v_rd r300, 5",            // register out of range
		"v_rd r0, notanum",        // bad immediate
		"end_chain r0",            // extra operand
		"mv_mul r0, r1, 5",        // immediate where register expected
		"v_const r0, 99999999999", // immediate overflow
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestReadsWrites(t *testing.T) {
	mv := Instr{Op: OpMVMul, Dst: 2, Src1: 0, Src2: 1}
	r := mv.Reads()
	if len(r) != 2 || r[0] != MRegBase+0 || r[1] != 1 {
		t.Errorf("mv_mul reads = %v", r)
	}
	w := mv.Writes()
	if len(w) != 1 || w[0] != 2 {
		t.Errorf("mv_mul writes = %v", w)
	}
	vw := Instr{Op: OpVWrite, Src1: 3, Imm: 100}
	if len(vw.Writes()) != 0 || len(vw.Reads()) != 1 {
		t.Errorf("v_wr deps wrong: %v / %v", vw.Reads(), vw.Writes())
	}
	if touches, isWrite := vw.TouchesDRAM(); !touches || !isWrite {
		t.Error("v_wr must touch DRAM as a write")
	}
	if touches, isWrite := mv.TouchesDRAM(); touches || isWrite {
		t.Error("mv_mul must not touch DRAM")
	}
}

func TestDependsOn(t *testing.T) {
	load := Instr{Op: OpVRead, Dst: 1, Imm: 0}
	use := Instr{Op: OpVSigm, Dst: 2, Src1: 1}
	indep := Instr{Op: OpVSigm, Dst: 4, Src1: 3}
	if !DependsOn(load, use) {
		t.Error("RAW dependence missed")
	}
	if DependsOn(load, indep) {
		t.Error("false dependence")
	}
	// WAR: use reads r1, overwrite writes r1.
	overwrite := Instr{Op: OpVConst, Dst: 1, Imm: 0}
	if !DependsOn(use, overwrite) {
		t.Error("WAR dependence missed")
	}
	// WAW.
	if !DependsOn(load, Instr{Op: OpVRead, Dst: 1, Imm: 64}) {
		t.Error("WAW dependence missed")
	}
	// DRAM ordering: read then write stays ordered.
	dramWr := Instr{Op: OpVWrite, Src1: 9, Imm: 500}
	dramRd := Instr{Op: OpVRead, Dst: 8, Imm: 600}
	if !DependsOn(dramRd, dramWr) || !DependsOn(dramWr, dramRd) {
		t.Error("DRAM write ordering missed")
	}
	// Two DRAM reads may reorder.
	if DependsOn(dramRd, Instr{Op: OpVRead, Dst: 7, Imm: 700}) {
		t.Error("two DRAM reads must be independent")
	}
	// Matrix and vector register files do not alias.
	mrd := Instr{Op: OpMRead, Dst: 1, Imm: 0}
	vuse := Instr{Op: OpVSigm, Dst: 5, Src1: 1}
	if DependsOn(mrd, vuse) {
		t.Error("m1 and v1 must not alias")
	}
}

// Property: every valid instruction survives encode/decode.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(op, dst, s1, s2 uint8, im uint32) bool {
		o := Opcode(op%uint8(opMax-1)) + 1
		ins := Instr{Op: o, Dst: dst, Src1: s1, Src2: s2, Imm: im}
		got, err := Decode(ins.Encode())
		return err == nil && got == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: disassembly of a random program reassembles identically.
func TestQuickAsmRoundTrip(t *testing.T) {
	f := func(ops []uint8) bool {
		var p Program
		for _, b := range ops {
			o := Opcode(b%uint8(opMax-1)) + 1
			p = append(p, Instr{Op: o, Dst: b % 16, Src1: (b + 1) % 16, Src2: (b + 2) % 16, Imm: uint32(b) * 3})
		}
		// Normalize: String omits fields an opcode does not use, so zero
		// them first the same way assembly would produce them.
		for i := range p {
			p[i] = normalize(p[i])
		}
		back, err := Assemble(p.Disassemble())
		if err != nil {
			return false
		}
		for i := range p {
			if back[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func normalize(i Instr) Instr {
	out := Instr{Op: i.Op}
	switch i.Op {
	case OpVRead, OpMRead:
		out.Dst, out.Imm = i.Dst, i.Imm
	case OpVWrite:
		out.Src1, out.Imm = i.Src1, i.Imm
	case OpMVMul, OpVVAdd, OpVVSub, OpVVMul:
		out.Dst, out.Src1, out.Src2 = i.Dst, i.Src1, i.Src2
	case OpVSigm, OpVTanh, OpVRelu, OpVPass:
		out.Dst, out.Src1 = i.Dst, i.Src1
	case OpVConst:
		out.Dst, out.Imm = i.Dst, i.Imm&0xFFFF
	case OpVRsub:
		out.Dst, out.Src1, out.Imm = i.Dst, i.Src1, i.Imm&0xFFFF
	}
	return out
}

func TestDisassembleContainsMnemonics(t *testing.T) {
	p := Program{{Op: OpEndChain}}
	if !strings.Contains(p.Disassemble(), "end_chain") {
		t.Error("disassembly missing mnemonic")
	}
}
