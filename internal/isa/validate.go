package isa

import "fmt"

// MachineSpec is the static contract a program is validated against.
type MachineSpec struct {
	// VRegs and MRegs size the register files.
	VRegs, MRegs int
	// DRAMWords bounds direct DRAM addresses. Zero disables the check.
	DRAMWords int
	// TrappedAddrs are addresses outside DRAM that the §2.3 sync template
	// module handles; accesses to them are legal.
	TrappedAddrs []uint32
	// InstrBufBytes bounds the program's machine-code size. Zero disables
	// the check.
	InstrBufBytes int
}

// Issue is one static-validation finding.
type Issue struct {
	PC    int
	Instr Instr
	Msg   string
}

func (i Issue) String() string {
	if !i.Instr.Op.Valid() {
		return fmt.Sprintf("pc %d: %s", i.PC, i.Msg)
	}
	return fmt.Sprintf("pc %d (%s): %s", i.PC, i.Instr, i.Msg)
}

// Validate statically checks a program: register indices in range, no
// read-before-write, DRAM addresses in bounds (modulo trapped sync
// addresses), instruction-buffer fit, and termination by end_chain with no
// dead code after it. It returns every issue found (empty = clean).
func Validate(p Program, spec MachineSpec) []Issue {
	var issues []Issue
	add := func(pc int, ins Instr, format string, args ...any) {
		issues = append(issues, Issue{PC: pc, Instr: ins, Msg: fmt.Sprintf(format, args...)})
	}
	if spec.InstrBufBytes > 0 && p.Bytes() > spec.InstrBufBytes {
		issues = append(issues, Issue{PC: 0, Msg: fmt.Sprintf(
			"program is %d bytes, instruction buffer holds %d", p.Bytes(), spec.InstrBufBytes)})
	}

	trapped := map[uint32]bool{}
	for _, a := range spec.TrappedAddrs {
		trapped[a] = true
	}
	checkAddr := func(pc int, ins Instr) {
		if spec.DRAMWords <= 0 || trapped[ins.Imm] {
			return
		}
		if ins.Imm >= uint32(spec.DRAMWords) {
			add(pc, ins, "DRAM address %d out of range (%d words)", ins.Imm, spec.DRAMWords)
		}
	}

	written := map[int]bool{}
	ended := false
	for pc, ins := range p {
		if !ins.Op.Valid() {
			add(pc, ins, "invalid opcode %d", uint8(ins.Op))
			continue
		}
		if ended {
			add(pc, ins, "unreachable: follows end_chain")
			continue
		}
		// Register ranges.
		checkReg := func(r uint8, isMatrix bool) {
			limit := spec.VRegs
			file := "vector"
			if isMatrix {
				limit = spec.MRegs
				file = "matrix"
			}
			if limit > 0 && int(r) >= limit {
				add(pc, ins, "%s register r%d out of range (%d)", file, r, limit)
			}
		}
		switch ins.Op {
		case OpMRead:
			checkReg(ins.Dst, true)
		case OpMVMul:
			checkReg(ins.Dst, false)
			checkReg(ins.Src1, true)
			checkReg(ins.Src2, false)
		case OpVRead, OpVConst:
			checkReg(ins.Dst, false)
		case OpVWrite:
			checkReg(ins.Src1, false)
		case OpVVAdd, OpVVSub, OpVVMul:
			checkReg(ins.Dst, false)
			checkReg(ins.Src1, false)
			checkReg(ins.Src2, false)
		case OpVSigm, OpVTanh, OpVRelu, OpVPass, OpVRsub, OpVExp, OpVRecip:
			checkReg(ins.Dst, false)
			checkReg(ins.Src1, false)
		}
		// Read-before-write.
		for _, r := range ins.Reads() {
			if !written[r] {
				name := fmt.Sprintf("r%d", r)
				if r >= MRegBase {
					name = fmt.Sprintf("m%d", r-MRegBase)
				}
				add(pc, ins, "%s read before any write", name)
			}
		}
		for _, r := range ins.Writes() {
			written[r] = true
		}
		// Addresses.
		if touches, _ := ins.TouchesDRAM(); touches {
			checkAddr(pc, ins)
		}
		if ins.Op == OpEndChain {
			ended = true
		}
	}
	if !ended {
		issues = append(issues, Issue{PC: len(p), Msg: "program does not end with end_chain"})
	}
	return issues
}
