package isa

import (
	"strings"
	"testing"
)

func spec() MachineSpec {
	return MachineSpec{VRegs: 16, MRegs: 8, DRAMWords: 4096, InstrBufBytes: 1024}
}

func assemble(t *testing.T, src string) Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateClean(t *testing.T) {
	p := assemble(t, `
		m_rd r0, 0
		v_rd r1, 64
		mv_mul r2, r0, r1
		v_sigm r3, r2
		v_wr r3, 128
		end_chain`)
	if issues := Validate(p, spec()); len(issues) != 0 {
		t.Errorf("clean program flagged: %v", issues)
	}
}

func TestValidateReadBeforeWrite(t *testing.T) {
	p := assemble(t, "v_sigm r1, r0\nend_chain")
	issues := Validate(p, spec())
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "read before") {
		t.Errorf("issues = %v", issues)
	}
	// Matrix file tracked separately.
	p2 := assemble(t, "v_rd r0, 0\nmv_mul r1, r0, r0\nend_chain")
	issues2 := Validate(p2, spec())
	if len(issues2) != 1 || !strings.Contains(issues2[0].Msg, "m0 read before") {
		t.Errorf("matrix issues = %v", issues2)
	}
}

func TestValidateRegisterRange(t *testing.T) {
	p := Program{
		{Op: OpVConst, Dst: 20},
		{Op: OpEndChain},
	}
	issues := Validate(p, spec())
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "out of range") {
		t.Errorf("issues = %v", issues)
	}
}

func TestValidateDRAMBounds(t *testing.T) {
	p := assemble(t, "v_rd r0, 5000\nend_chain")
	issues := Validate(p, spec())
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "out of range (4096") {
		t.Errorf("issues = %v", issues)
	}
	// Trapped sync addresses are legal.
	s := spec()
	s.TrappedAddrs = []uint32{5000}
	if issues := Validate(p, s); len(issues) != 0 {
		t.Errorf("trapped address flagged: %v", issues)
	}
	// Disabled check.
	s2 := spec()
	s2.DRAMWords = 0
	if issues := Validate(p, s2); len(issues) != 0 {
		t.Errorf("disabled bound flagged: %v", issues)
	}
}

func TestValidateTermination(t *testing.T) {
	p := assemble(t, "v_const r0, 0")
	issues := Validate(p, spec())
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "end_chain") {
		t.Errorf("issues = %v", issues)
	}
	p2 := assemble(t, "end_chain\nv_const r0, 0")
	issues2 := Validate(p2, spec())
	if len(issues2) != 1 || !strings.Contains(issues2[0].Msg, "unreachable") {
		t.Errorf("issues = %v", issues2)
	}
}

func TestValidateBufferFit(t *testing.T) {
	var p Program
	for i := 0; i < 200; i++ {
		p = append(p, Instr{Op: OpVConst, Dst: 0})
	}
	p = append(p, Instr{Op: OpEndChain})
	issues := Validate(p, spec()) // 201*8 = 1608 > 1024
	found := false
	for _, is := range issues {
		if strings.Contains(is.Msg, "instruction buffer") {
			found = true
		}
	}
	if !found {
		t.Errorf("buffer overflow not flagged: %v", issues)
	}
}

func TestValidateInvalidOpcode(t *testing.T) {
	p := Program{{Op: Opcode(99)}, {Op: OpEndChain}}
	issues := Validate(p, spec())
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "invalid opcode") {
		t.Errorf("issues = %v", issues)
	}
}

func TestIssueString(t *testing.T) {
	is := Issue{PC: 3, Instr: Instr{Op: OpEndChain}, Msg: "x"}
	if !strings.Contains(is.String(), "pc 3") || !strings.Contains(is.String(), "end_chain") {
		t.Errorf("String = %q", is.String())
	}
	// Synthetic issues (no instruction) omit the opcode.
	syn := Issue{PC: 9, Msg: "y"}
	if strings.Contains(syn.String(), "op(") {
		t.Errorf("synthetic issue leaks zero instruction: %q", syn.String())
	}
}
