package kernels

import (
	"reflect"
	"testing"

	"mlvfpga/internal/isa"
)

// The attention cell's golden coverage: the float64 reference match here,
// plus the kind-parameterized bit-identity suites (snapshot round-trip in
// snapshot_test.go, continuous-batching step equivalence in step_test.go)
// which run the Attention case alongside LSTM/GRU.

func TestAttentionMatchesReference(t *testing.T) {
	runKernel(t, Attention, 48, 4, 0.08)
}

func TestAttentionLongerSequenceStaysBounded(t *testing.T) {
	// The running normalizer z grows with t; the normalized state S/z must
	// keep quantization error bounded over longer sequences.
	runKernel(t, Attention, 32, 12, 0.15)
}

func TestAttentionWeightsShape(t *testing.T) {
	w := RandomWeights(Attention, 32, 5)
	if len(w.M) != 4 || len(w.B) != 4 {
		t.Fatalf("attention has %d matrices, %d biases, want 4/4", len(w.M), len(w.B))
	}
	for _, name := range []string{"Wq", "Wk", "Wv", "Wo"} {
		if len(w.M[name]) != 32*32 {
			t.Errorf("matrix %s has %d elements", name, len(w.M[name]))
		}
	}
}

// TestAttentionProgramUsesNewOps pins that the generated step program
// actually exercises the v_exp/v_recip MFU ops (a silent fallback to
// sigmoid-only code would still pass a tolerance test).
func TestAttentionProgramUsesNewOps(t *testing.T) {
	w := RandomWeights(Attention, 32, 5)
	k, err := Build(w, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[isa.Opcode]int{}
	for _, ins := range k.Step {
		counts[ins.Op]++
	}
	if counts[isa.OpVExp] != 1 || counts[isa.OpVRecip] != 1 {
		t.Fatalf("step program has %d v_exp and %d v_recip, want 1 each", counts[isa.OpVExp], counts[isa.OpVRecip])
	}
	if counts[isa.OpMVMul] != MVMsPerStep(Attention) {
		t.Fatalf("step program has %d mv_mul, want %d", counts[isa.OpMVMul], MVMsPerStep(Attention))
	}
}

// TestAttentionDeterministic pins bit-identical replay: two machines built
// from the same weights produce exactly the same output words.
func TestAttentionDeterministic(t *testing.T) {
	w := RandomWeights(Attention, 32, 11)
	k, err := Build(w, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(k, 1, 29)[0]
	run := func() [][]float64 {
		m, err := k.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		for tt, x := range inputs {
			if err := k.SetInput(m, tt, x); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(k.Prog); err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, k.Spec.TimeSteps)
		for tt := range out {
			o, err := k.ReadOutput(m, tt)
			if err != nil {
				t.Fatal(err)
			}
			out[tt] = o
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("identical kernels produced different output bits")
	}
}
