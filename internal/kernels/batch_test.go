package kernels

import (
	"math/rand"
	"reflect"
	"testing"

	"mlvfpga/internal/fp16"
)

// batchInputs draws B deterministic input sequences for a kernel.
func batchInputs(k *Kernel, b int, seed int64) [][][]float64 {
	r := rand.New(rand.NewSource(seed))
	seqs := make([][][]float64, b)
	for s := range seqs {
		seqs[s] = make([][]float64, k.Spec.TimeSteps)
		for t := range seqs[s] {
			x := make([]float64, k.Spec.Hidden)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			seqs[s][t] = x
		}
	}
	return seqs
}

// TestRunBatchGolden is the ISSUE's golden test: RunBatch over B streams is
// bit-identical — outputs as fp16 words AND accumulated ExecStats — to B
// sequential Runs on one warm machine.
func TestRunBatchGolden(t *testing.T) {
	for _, kind := range []RNNKind{LSTM, GRU} {
		t.Run(kind.String(), func(t *testing.T) {
			const B = 4
			w := RandomWeights(kind, 64, 7)
			k, err := Build(w, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			seqs := batchInputs(k, B, 11)

			// Sequential reference: one machine, warmed, B runs in a row.
			sm, err := k.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.Run(k.Prog); err != nil {
				t.Fatal(err)
			}
			seqBase := sm.Stats()
			seqOut := make([][][]fp16.Num, B)
			for s := 0; s < B; s++ {
				for tt, x := range seqs[s] {
					if err := k.SetInput(sm, tt, x); err != nil {
						t.Fatal(err)
					}
				}
				if err := sm.Run(k.Prog); err != nil {
					t.Fatal(err)
				}
				seqOut[s] = make([][]fp16.Num, k.Spec.TimeSteps)
				for tt := range seqOut[s] {
					words, err := sm.DRAMPort().ReadWords(k.OutputAddr(tt), k.Spec.Hidden)
					if err != nil {
						t.Fatal(err)
					}
					seqOut[s][tt] = words
				}
			}
			seqDelta := sm.Stats().Minus(seqBase)

			// Batched: one warm machine, one RunBatch.
			bm, err := k.NewBatchMachine(B)
			if err != nil {
				t.Fatal(err)
			}
			if err := bm.Run(k.Prog); err != nil {
				t.Fatal(err)
			}
			batchBase := bm.Stats()
			win, err := k.Window(B)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < B; s++ {
				for tt, x := range seqs[s] {
					if err := k.SetInputStream(bm, s, tt, x); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := bm.RunBatch(k.Prog, win); err != nil {
				t.Fatal(err)
			}
			batchDelta := bm.Stats().Minus(batchBase)

			for s := 0; s < B; s++ {
				for tt := 0; tt < k.Spec.TimeSteps; tt++ {
					words, err := bm.DRAMPort().ReadWords(k.StreamOutputAddr(s, tt), k.Spec.Hidden)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(words, seqOut[s][tt]) {
						t.Fatalf("stream %d t=%d output differs from sequential run (not bit-identical)", s, tt)
					}
				}
			}
			if !reflect.DeepEqual(batchDelta, seqDelta) {
				t.Errorf("RunBatch stats delta = %+v,\nsequential delta = %+v", batchDelta, seqDelta)
			}
		})
	}
}

func TestNewBatchMachineBounds(t *testing.T) {
	w := RandomWeights(LSTM, 64, 1)
	k, err := Build(w, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.NewBatchMachine(0); err == nil {
		t.Error("batch 0 must fail")
	}
	m, err := k.NewBatchMachine(4)
	if err != nil {
		t.Fatal(err)
	}
	// Right-sized DRAM: image plus 4 banked stream windows, not the full
	// default board.
	want := k.inputBase + 4*k.StreamStride()
	if got := m.Config().DRAMWords; got != want {
		t.Errorf("DRAMWords = %d, want %d", got, want)
	}
	// A batch that cannot fit the default board fails loudly.
	huge := (k.Cfg.DRAMWords-k.inputBase)/k.StreamStride() + 1
	if _, err := k.NewBatchMachine(huge); err == nil {
		t.Errorf("batch %d exceeding DRAM must fail", huge)
	}
}

func TestStreamAddrLayout(t *testing.T) {
	w := RandomWeights(GRU, 32, 1)
	k, err := Build(w, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.StreamInputAddr(0, 2) != k.InputAddr(2) || k.StreamOutputAddr(0, 4) != k.OutputAddr(4) {
		t.Error("stream 0 must alias the unbatched addresses")
	}
	stride := k.StreamStride()
	if stride != 2*32*5 {
		t.Errorf("stride = %d, want %d", stride, 2*32*5)
	}
	// Stream windows are disjoint: stream s ends before stream s+1 begins.
	endOfS0 := k.StreamOutputAddr(0, 4) + 32
	if k.StreamInputAddr(1, 0) != endOfS0 {
		t.Errorf("stream 1 starts at %d, stream 0 ends at %d", k.StreamInputAddr(1, 0), endOfS0)
	}
}
