// Package kernels generates AS ISA programs for the GRU/LSTM inference
// tasks the paper evaluates (DeepBench layers, §4.1), together with
// float64 reference implementations used to validate the accelerator
// simulator's numerics.
package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
)

// RNNKind selects the recurrent cell.
type RNNKind int

// Supported cells.
const (
	LSTM RNNKind = iota
	GRU
	// Attention is a recurrent attention cell (AFT-style): instead of
	// materializing a softmax over the whole history — which the AS ISA
	// cannot express (no cross-lane reduction) — the cell keeps a running
	// key-weighted value sum S_t and normalizer z_t:
	//
	//	S_t = S_{t-1} + exp(k_t) ⊙ v_t
	//	z_t = z_{t-1} + exp(k_t)
	//	y_t = σ(q_t) ⊙ (S_t ⊙ recip(z_t)), then h_t = Wo·y_t + bo
	//
	// with q/k/v = W{q,k,v}·x_t + b{q,k,v}. The state (S, z) is two vector
	// registers, so the cell steps under the same banked Step program,
	// snapshot/restore and scale-out machinery as LSTM/GRU.
	Attention
)

func (k RNNKind) String() string {
	switch k {
	case LSTM:
		return "LSTM"
	case GRU:
		return "GRU"
	case Attention:
		return "Attention"
	}
	return fmt.Sprintf("RNNKind(%d)", int(k))
}

// gateNames lists the weight matrices of each cell: W* act on the input
// x_t, U* act on the recurrent state h_{t-1}.
func (k RNNKind) gateNames() (wx, uh, bias []string) {
	switch k {
	case LSTM:
		return []string{"Wi", "Wf", "Wo", "Wc"},
			[]string{"Ui", "Uf", "Uo", "Uc"},
			[]string{"bi", "bf", "bo", "bc"}
	case GRU:
		return []string{"Wz", "Wr", "Wn"},
			[]string{"Uz", "Ur", "Un"},
			[]string{"bz", "br", "bn"}
	case Attention:
		// All four projections act on the step input (the recurrence runs
		// through the (S, z) accumulators, not through matrices on h).
		return []string{"Wq", "Wk", "Wv", "Wo"},
			nil,
			[]string{"bq", "bk", "bv", "bo"}
	}
	return nil, nil, nil
}

// LayerSpec is one benchmark layer: the paper reports latency per
// (cell, hidden size, timesteps) configuration (Table 4).
type LayerSpec struct {
	Kind      RNNKind
	Hidden    int
	TimeSteps int
}

func (s LayerSpec) String() string {
	return fmt.Sprintf("%s h=%d t=%d", s.Kind, s.Hidden, s.TimeSteps)
}

// DeepBenchSuite returns the seven Table 4 benchmark layers.
func DeepBenchSuite() []LayerSpec {
	return []LayerSpec{
		{GRU, 512, 1},
		{GRU, 1024, 1500},
		{GRU, 1536, 375},
		{LSTM, 256, 150},
		{LSTM, 512, 25},
		{LSTM, 1024, 25},
		{LSTM, 1536, 50},
	}
}

// Weights holds a cell's parameters in float64 (row-major h x h matrices;
// the DeepBench layers use input dimension equal to the hidden dimension).
type Weights struct {
	Kind   RNNKind
	Hidden int
	M      map[string][]float64 // matrices, h*h
	B      map[string][]float64 // biases, h
}

// RandomWeights draws parameters from N(0, 1/sqrt(h)), keeping activations
// in the well-conditioned range for BFP quantization.
func RandomWeights(kind RNNKind, hidden int, seed int64) *Weights {
	r := rand.New(rand.NewSource(seed))
	w := &Weights{Kind: kind, Hidden: hidden, M: map[string][]float64{}, B: map[string][]float64{}}
	wx, uh, bias := kind.gateNames()
	scale := 1.0 / sqrtf(float64(hidden))
	for _, name := range append(append([]string{}, wx...), uh...) {
		m := make([]float64, hidden*hidden)
		for i := range m {
			m[i] = r.NormFloat64() * scale
		}
		w.M[name] = m
	}
	for _, name := range bias {
		b := make([]float64, hidden)
		for i := range b {
			b[i] = r.NormFloat64() * 0.1
		}
		w.B[name] = b
	}
	return w
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}

// Kernel is a compiled inference task: the program, the initial DRAM
// image, and the address map.
type Kernel struct {
	Spec LayerSpec
	Prog isa.Program
	// Step-program decomposition for continuous batching. The monolithic
	// Prog keeps every m_rd in its prologue (weights stay resident across
	// the whole run) and advances both banked addresses by exactly Hidden
	// words per timestep, so it factors into three programs that slot-
	// granular admission can replay piecewise:
	//
	//   SharedInit — the m_rd tile loads. Matrix registers are machine
	//     state, so this runs once per machine (re-running it is an
	//     idempotent tile-cache hit).
	//   StreamInit — bias v_rd loads plus state zeroing for one slot.
	//     Runs once when a stream is admitted into a slot.
	//   Step — one timestep at the t=0 addresses. A slot at timestep τ
	//     executes it under banking offset SlotOffset(slot, τ); the two
	//     banked accesses (x_t load, h_t store) land exactly where the
	//     monolithic program's timestep τ would put them.
	//
	// Because every per-stream quantity (vector registers, banked DRAM
	// window) is private to the slot and mv_mul computes each stream's
	// product independently, a stream's results are bit-identical to the
	// monolithic Prog no matter which cohort it shares step rounds with.
	SharedInit isa.Program
	StreamInit isa.Program
	Step       isa.Program
	// Image is the initial DRAM contents (weights, biases; inputs are
	// written by SetInput before running).
	Image []fp16.Num
	// Cfg is the machine configuration the program assumes.
	Cfg accel.Config
	// inputBase/outputBase locate per-timestep vectors.
	inputBase, outputBase int
}

// InputAddr returns the DRAM word address of x_t.
func (k *Kernel) InputAddr(t int) int { return k.inputBase + t*k.Spec.Hidden }

// OutputAddr returns the DRAM word address where h_t is stored.
func (k *Kernel) OutputAddr(t int) int { return k.outputBase + t*k.Spec.Hidden }

// NewMachine builds a machine loaded with the kernel's DRAM image and
// matrix shapes.
func (k *Kernel) NewMachine() (*accel.Machine, error) {
	return k.newMachine(k.Cfg, nil)
}

// NewMachineWithDRAM is NewMachine over a caller-provided DRAM port.
func (k *Kernel) NewMachineWithDRAM(dram accel.DRAM) (*accel.Machine, error) {
	return k.newMachine(k.Cfg, dram)
}

// NewBatchMachine builds a machine sized for RunBatch over up to batch
// input streams. The DRAM is right-sized to the shared image plus the
// banked per-stream windows instead of the full default board, so a
// serving pool of batch machines stays cheap.
func (k *Kernel) NewBatchMachine(batch int) (*accel.Machine, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("kernels: batch = %d", batch)
	}
	cfg := k.Cfg
	need := k.inputBase + batch*k.StreamStride()
	if need > cfg.DRAMWords {
		return nil, fmt.Errorf("kernels: batch %d needs %d DRAM words, board has %d", batch, need, cfg.DRAMWords)
	}
	cfg.DRAMWords = need
	return k.newMachine(cfg, nil)
}

func (k *Kernel) newMachine(cfg accel.Config, dram accel.DRAM) (*accel.Machine, error) {
	m, err := accel.NewWithDRAM(cfg, dram)
	if err != nil {
		return nil, err
	}
	if err := m.DRAMPort().WriteWords(0, k.Image); err != nil {
		return nil, err
	}
	wx, uh, _ := k.Spec.Kind.gateNames()
	h := k.Spec.Hidden
	for i := range append(append([]string{}, wx...), uh...) {
		if err := m.ConfigureMatrix(i, h, h); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// WindowBase is the banking base address for RunStreams/RunBatch:
// addresses below it (weights, biases) are shared by every stream,
// addresses at or above it are banked per slot.
func (k *Kernel) WindowBase() int { return k.inputBase }

// SlotOffset returns the banking offset under which the Step program
// advances slot's timestep step: the slot's window plus step input/output
// vectors. Both banked addresses in Step (x_0 load, h_0 store) shift by
// the same offset, landing on StreamInputAddr(slot, step) and
// StreamOutputAddr(slot, step).
func (k *Kernel) SlotOffset(slot, step int) int {
	return slot*k.StreamStride() + step*k.Spec.Hidden
}

// StreamStride is the DRAM footprint of one stream's banked window: the
// per-timestep input block followed by the per-timestep output block
// (contiguous in the kernel layout).
func (k *Kernel) StreamStride() int { return 2 * k.Spec.Hidden * k.Spec.TimeSteps }

// Window returns the StreamWindow for a RunBatch over batch streams:
// everything below inputBase (weights, biases) is shared; stream s's
// inputs and outputs live at the kernel's addresses shifted by
// s*StreamStride().
func (k *Kernel) Window(batch int) (accel.StreamWindow, error) {
	if batch <= 0 {
		return accel.StreamWindow{}, fmt.Errorf("kernels: batch = %d", batch)
	}
	offs := make([]int, batch)
	for s := range offs {
		offs[s] = s * k.StreamStride()
	}
	return accel.StreamWindow{Base: k.inputBase, Offsets: offs}, nil
}

// StreamInputAddr returns the DRAM word address of stream s's x_t.
func (k *Kernel) StreamInputAddr(s, t int) int { return k.InputAddr(t) + s*k.StreamStride() }

// StreamOutputAddr returns the DRAM word address of stream s's h_t.
func (k *Kernel) StreamOutputAddr(s, t int) int { return k.OutputAddr(t) + s*k.StreamStride() }

// SetInput writes x_t into the machine's DRAM.
func (k *Kernel) SetInput(m *accel.Machine, t int, x []float64) error {
	return k.SetInputStream(m, 0, t, x)
}

// SetInputStream writes stream s's x_t into the machine's DRAM.
func (k *Kernel) SetInputStream(m *accel.Machine, s, t int, x []float64) error {
	if len(x) != k.Spec.Hidden {
		return fmt.Errorf("kernels: input length %d, want %d", len(x), k.Spec.Hidden)
	}
	return m.DRAMPort().WriteWords(k.StreamInputAddr(s, t), fp16.FromSlice64(x))
}

// ReadOutput reads h_t back from DRAM.
func (k *Kernel) ReadOutput(m *accel.Machine, t int) ([]float64, error) {
	return k.ReadOutputStream(m, 0, t)
}

// ReadOutputStream reads stream s's h_t back from DRAM.
func (k *Kernel) ReadOutputStream(m *accel.Machine, s, t int) ([]float64, error) {
	words, err := m.DRAMPort().ReadWords(k.StreamOutputAddr(s, t), k.Spec.Hidden)
	if err != nil {
		return nil, err
	}
	return fp16.ToSlice64(words), nil
}

// allocator hands out DRAM addresses sequentially.
type allocator struct{ next int }

func (a *allocator) alloc(words int) int {
	addr := a.next
	a.next += words
	return addr
}

// InstrBufBytes is the on-chip instruction buffer capacity: 4 Mb of BRAM
// in the control block (§3), enough to hold the entire machine code of
// every Table 4 layer and thereby avoid DRAM contention (§4.4).
const InstrBufBytes = 512 << 10

// DefaultConfig sizes a machine for a layer: native dimension 128 (the
// BrainWave tile granularity), 16 vector and 8 matrix registers, and the
// on-chip instruction buffer of §3.
func DefaultConfig(spec LayerSpec, tiles int) accel.Config {
	return accel.Config{
		Name:          fmt.Sprintf("bw_%s_h%d_t%d", spec.Kind, spec.Hidden, tiles),
		NativeDim:     128,
		NumTiles:      tiles,
		VRegs:         16,
		MRegs:         8,
		VecLen:        spec.Hidden,
		DRAMWords:     64 << 20, // 64M half words = 128 MiB
		InstrBufBytes: InstrBufBytes,
	}
}

// Build compiles a layer into a kernel: weights and biases are laid out in
// DRAM, the per-timestep instruction sequence is generated, and the
// program is terminated with end_chain.
func Build(w *Weights, timeSteps, tiles int) (*Kernel, error) {
	if timeSteps <= 0 {
		return nil, fmt.Errorf("kernels: timeSteps = %d", timeSteps)
	}
	switch w.Kind {
	case LSTM, GRU, Attention:
	default:
		return nil, fmt.Errorf("kernels: unknown cell %v", w.Kind)
	}
	spec := LayerSpec{Kind: w.Kind, Hidden: w.Hidden, TimeSteps: timeSteps}
	cfg := DefaultConfig(spec, tiles)
	k := &Kernel{Spec: spec, Cfg: cfg}
	h := w.Hidden

	var alloc allocator
	wx, uh, bias := w.Kind.gateNames()
	matAddr := map[string]int{}
	for _, name := range append(append([]string{}, wx...), uh...) {
		matAddr[name] = alloc.alloc(h * h)
	}
	biasAddr := map[string]int{}
	for _, name := range bias {
		biasAddr[name] = alloc.alloc(h)
	}
	k.inputBase = alloc.alloc(h * timeSteps)
	k.outputBase = alloc.alloc(h * timeSteps)
	if alloc.next > cfg.DRAMWords {
		return nil, fmt.Errorf("kernels: layer needs %d DRAM words, have %d", alloc.next, cfg.DRAMWords)
	}

	// DRAM image: weights then biases (inputs/outputs zero).
	k.Image = make([]fp16.Num, k.inputBase)
	place := func(addr int, vals []float64) {
		copy(k.Image[addr:], fp16.FromSlice64(vals))
	}
	for name, addr := range matAddr {
		place(addr, w.M[name])
	}
	for name, addr := range biasAddr {
		place(addr, w.B[name])
	}

	// Prologue: load matrices (m0..), biases (r3..), zero the state.
	var p isa.Program
	var shared, sinit, step isa.Program
	for i, name := range append(append([]string{}, wx...), uh...) {
		ins := isa.Instr{Op: isa.OpMRead, Dst: uint8(i), Imm: uint32(matAddr[name])}
		p = append(p, ins)
		shared = append(shared, ins)
	}
	for i, name := range bias {
		ins := isa.Instr{Op: isa.OpVRead, Dst: uint8(3 + i), Imm: uint32(biasAddr[name])}
		p = append(p, ins)
		sinit = append(sinit, ins)
	}
	zero := isa.Instr{Op: isa.OpVConst, Dst: 1, Imm: 0} // h = 0
	p = append(p, zero)
	sinit = append(sinit, zero)
	switch w.Kind {
	case LSTM:
		zc := isa.Instr{Op: isa.OpVConst, Dst: 2, Imm: 0} // c = 0
		p = append(p, zc)
		sinit = append(sinit, zc)
	case Attention:
		for _, dst := range []uint8{2, 15} { // S = 0, z = 0
			zs := isa.Instr{Op: isa.OpVConst, Dst: dst, Imm: 0}
			p = append(p, zs)
			sinit = append(sinit, zs)
		}
	}

	cell := func() isa.Program {
		switch w.Kind {
		case LSTM:
			return lstmStep()
		case Attention:
			return attnStep()
		}
		return gruStep()
	}
	for t := 0; t < timeSteps; t++ {
		p = append(p, isa.Instr{Op: isa.OpVRead, Dst: 0, Imm: uint32(k.InputAddr(t))})
		p = append(p, cell()...)
		p = append(p, isa.Instr{Op: isa.OpVWrite, Src1: 1, Imm: uint32(k.OutputAddr(t))})
	}
	p = append(p, isa.Instr{Op: isa.OpEndChain})
	k.Prog = p

	// The step program is timestep 0's slice; SlotOffset banks it onto any
	// (slot, timestep) pair.
	step = append(step, isa.Instr{Op: isa.OpVRead, Dst: 0, Imm: uint32(k.InputAddr(0))})
	step = append(step, cell()...)
	step = append(step, isa.Instr{Op: isa.OpVWrite, Src1: 1, Imm: uint32(k.OutputAddr(0))})
	k.SharedInit = append(shared, isa.Instr{Op: isa.OpEndChain})
	k.StreamInit = append(sinit, isa.Instr{Op: isa.OpEndChain})
	k.Step = append(step, isa.Instr{Op: isa.OpEndChain})
	return k, nil
}

// lstmStep emits one LSTM timestep. Register convention:
// r0=x_t r1=h r2=c r3..r6=bi,bf,bo,bc; m0..m3=Wi,Wf,Wo,Wc; m4..m7=Ui..Uc.
func lstmStep() isa.Program {
	I := func(op isa.Opcode, d, s1, s2 uint8) isa.Instr {
		return isa.Instr{Op: op, Dst: d, Src1: s1, Src2: s2}
	}
	return isa.Program{
		I(isa.OpMVMul, 7, 0, 0), // Wi x
		I(isa.OpMVMul, 8, 4, 1), // Ui h
		I(isa.OpVVAdd, 7, 7, 8),
		I(isa.OpVVAdd, 7, 7, 3),
		I(isa.OpVSigm, 7, 7, 0), // i
		I(isa.OpMVMul, 8, 1, 0), // Wf x
		I(isa.OpMVMul, 9, 5, 1), // Uf h
		I(isa.OpVVAdd, 8, 8, 9),
		I(isa.OpVVAdd, 8, 8, 4),
		I(isa.OpVSigm, 8, 8, 0),  // f
		I(isa.OpMVMul, 9, 2, 0),  // Wo x
		I(isa.OpMVMul, 10, 6, 1), // Uo h
		I(isa.OpVVAdd, 9, 9, 10),
		I(isa.OpVVAdd, 9, 9, 5),
		I(isa.OpVSigm, 9, 9, 0),  // o
		I(isa.OpMVMul, 10, 3, 0), // Wc x
		I(isa.OpMVMul, 11, 7, 1), // Uc h
		I(isa.OpVVAdd, 10, 10, 11),
		I(isa.OpVVAdd, 10, 10, 6),
		I(isa.OpVTanh, 10, 10, 0), // g
		I(isa.OpVVMul, 11, 8, 2),  // f*c
		I(isa.OpVVMul, 12, 7, 10), // i*g
		I(isa.OpVVAdd, 2, 11, 12), // c'
		I(isa.OpVTanh, 13, 2, 0),  // tanh(c')
		I(isa.OpVVMul, 1, 9, 13),  // h' = o * tanh(c')
	}
}

// gruStep emits one GRU timestep. Register convention:
// r0=x_t r1=h r3..r5=bz,br,bn; m0..m2=Wz,Wr,Wn; m3..m5=Uz,Ur,Un.
func gruStep() isa.Program {
	const one = 0x3C00 // float16 1.0
	I := func(op isa.Opcode, d, s1, s2 uint8) isa.Instr {
		return isa.Instr{Op: op, Dst: d, Src1: s1, Src2: s2}
	}
	return isa.Program{
		I(isa.OpMVMul, 7, 0, 0), // Wz x
		I(isa.OpMVMul, 8, 3, 1), // Uz h
		I(isa.OpVVAdd, 7, 7, 8),
		I(isa.OpVVAdd, 7, 7, 3),
		I(isa.OpVSigm, 7, 7, 0), // z
		I(isa.OpMVMul, 8, 1, 0), // Wr x
		I(isa.OpMVMul, 9, 4, 1), // Ur h
		I(isa.OpVVAdd, 8, 8, 9),
		I(isa.OpVVAdd, 8, 8, 4),
		I(isa.OpVSigm, 8, 8, 0),  // r
		I(isa.OpMVMul, 9, 5, 1),  // Un h
		I(isa.OpVVMul, 9, 8, 9),  // r ⊙ (Un h)
		I(isa.OpMVMul, 10, 2, 0), // Wn x
		I(isa.OpVVAdd, 9, 9, 10),
		I(isa.OpVVAdd, 9, 9, 5),
		I(isa.OpVTanh, 9, 9, 0),                       // n
		{Op: isa.OpVRsub, Dst: 10, Src1: 7, Imm: one}, // 1-z
		I(isa.OpVVMul, 10, 10, 9),                     // (1-z) n
		I(isa.OpVVMul, 11, 7, 1),                      // z h
		I(isa.OpVVAdd, 1, 10, 11),                     // h'
	}
}

// attnStep emits one recurrent-attention timestep. Register convention:
// r0=x_t r1=h r2=S r15=z r3..r6=bq,bk,bv,bo; m0..m3=Wq,Wk,Wv,Wo.
func attnStep() isa.Program {
	I := func(op isa.Opcode, d, s1, s2 uint8) isa.Instr {
		return isa.Instr{Op: op, Dst: d, Src1: s1, Src2: s2}
	}
	return isa.Program{
		I(isa.OpMVMul, 7, 0, 0), // Wq x
		I(isa.OpVVAdd, 7, 7, 3), // q
		I(isa.OpMVMul, 8, 1, 0), // Wk x
		I(isa.OpVVAdd, 8, 8, 4), // k
		I(isa.OpMVMul, 9, 2, 0), // Wv x
		I(isa.OpVVAdd, 9, 9, 5), // v
		I(isa.OpVExp, 8, 8, 0),  // e = exp(k)
		I(isa.OpVVMul, 10, 8, 9),
		I(isa.OpVVAdd, 2, 2, 10),  // S += e ⊙ v
		I(isa.OpVVAdd, 15, 15, 8), // z += e
		I(isa.OpVSigm, 7, 7, 0),   // σ(q)
		I(isa.OpVRecip, 10, 15, 0),
		I(isa.OpVVMul, 10, 2, 10), // S / z
		I(isa.OpVVMul, 10, 7, 10), // y = σ(q) ⊙ (S/z)
		I(isa.OpMVMul, 11, 3, 10), // Wo y
		I(isa.OpVVAdd, 1, 11, 6),  // h' = Wo y + bo
	}
}

// StepInstructions returns the number of instructions one timestep costs
// (including the x_t load and h_t store), used by the timing model.
func StepInstructions(kind RNNKind) int {
	switch kind {
	case LSTM:
		return len(lstmStep()) + 2
	case GRU:
		return len(gruStep()) + 2
	case Attention:
		return len(attnStep()) + 2
	}
	return 0
}

// MVMsPerStep returns how many h x h matrix-vector products one timestep
// performs.
func MVMsPerStep(kind RNNKind) int {
	switch kind {
	case LSTM:
		return 8
	case Attention:
		return 4
	}
	return 6
}
