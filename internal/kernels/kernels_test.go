package kernels

import (
	"math"
	"math/rand"
	"testing"

	"mlvfpga/internal/isa"
)

func TestDeepBenchSuite(t *testing.T) {
	suite := DeepBenchSuite()
	if len(suite) != 7 {
		t.Fatalf("suite size = %d, want 7 (Table 4)", len(suite))
	}
	gru, lstm := 0, 0
	for _, s := range suite {
		if s.Kind == GRU {
			gru++
		} else {
			lstm++
		}
		if s.Hidden <= 0 || s.TimeSteps <= 0 {
			t.Errorf("bad spec %v", s)
		}
	}
	if gru != 3 || lstm != 4 {
		t.Errorf("composition = %d GRU + %d LSTM, want 3+4", gru, lstm)
	}
}

func TestRandomWeightsShape(t *testing.T) {
	w := RandomWeights(LSTM, 64, 1)
	if len(w.M) != 8 || len(w.B) != 4 {
		t.Errorf("LSTM has %d matrices, %d biases", len(w.M), len(w.B))
	}
	for name, m := range w.M {
		if len(m) != 64*64 {
			t.Errorf("%s size = %d", name, len(m))
		}
	}
	g := RandomWeights(GRU, 32, 1)
	if len(g.M) != 6 || len(g.B) != 3 {
		t.Errorf("GRU has %d matrices, %d biases", len(g.M), len(g.B))
	}
	// Determinism.
	w2 := RandomWeights(LSTM, 64, 1)
	if w.M["Wi"][0] != w2.M["Wi"][0] {
		t.Error("same seed must give same weights")
	}
	w3 := RandomWeights(LSTM, 64, 2)
	if w.M["Wi"][0] == w3.M["Wi"][0] {
		t.Error("different seeds must differ")
	}
}

// runKernel executes a kernel on the simulator with random inputs and
// compares every timestep against the float64 reference.
func runKernel(t *testing.T, kind RNNKind, hidden, steps int, tolerance float64) {
	t.Helper()
	w := RandomWeights(kind, hidden, 42)
	k, err := Build(w, steps, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Use a wide BFP mantissa so quantization noise stays below tolerance.
	k.Cfg.MantissaBits = 9
	m, err := k.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	ref := NewReference(w)
	inputs := make([][]float64, steps)
	for tt := 0; tt < steps; tt++ {
		x := make([]float64, hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[tt] = x
		if err := k.SetInput(m, tt, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(k.Prog); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < steps; tt++ {
		want, err := ref.Step(inputs[tt])
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.ReadOutput(m, tt)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > worst {
				worst = d
			}
		}
		if worst > tolerance {
			t.Fatalf("%v step %d: max error %.4f > %.4f", kind, tt, worst, tolerance)
		}
	}
}

func TestLSTMMatchesReference(t *testing.T) {
	runKernel(t, LSTM, 48, 4, 0.08)
}

func TestGRUMatchesReference(t *testing.T) {
	runKernel(t, GRU, 48, 4, 0.08)
}

func TestLSTMLongerSequenceStaysBounded(t *testing.T) {
	// Error must not blow up over more steps (states are re-quantized each
	// step but activations are saturating).
	runKernel(t, LSTM, 32, 12, 0.15)
}

func TestBuildProgramShape(t *testing.T) {
	w := RandomWeights(GRU, 32, 1)
	k, err := Build(w, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue: 6 m_rd + 3 v_rd + 1 v_const. Per step: v_rd + 20 + v_wr.
	wantLen := 10 + 3*StepInstructions(GRU) + 1
	if len(k.Prog) != wantLen {
		t.Errorf("program length = %d, want %d", len(k.Prog), wantLen)
	}
	if k.Prog[len(k.Prog)-1].Op != isa.OpEndChain {
		t.Error("program must end with end_chain")
	}
	// Addresses must not overlap.
	if k.InputAddr(0) >= k.OutputAddr(0) && k.OutputAddr(0) >= k.InputAddr(0)+32*3 {
		t.Error("input/output regions overlap")
	}
}

func TestBuildErrors(t *testing.T) {
	w := RandomWeights(GRU, 32, 1)
	if _, err := Build(w, 0, 1); err == nil {
		t.Error("zero timesteps must fail")
	}
}

func TestStepInstructionCounts(t *testing.T) {
	if StepInstructions(LSTM) != 27 {
		t.Errorf("LSTM step = %d instrs", StepInstructions(LSTM))
	}
	if StepInstructions(GRU) != 22 {
		t.Errorf("GRU step = %d instrs", StepInstructions(GRU))
	}
	if StepInstructions(Attention) != 18 {
		t.Errorf("Attention step = %d instrs", StepInstructions(Attention))
	}
	if MVMsPerStep(LSTM) != 8 || MVMsPerStep(GRU) != 6 || MVMsPerStep(Attention) != 4 {
		t.Error("MVM counts wrong")
	}
}

// Instruction-buffer fit (§4.4): the entire machine code of every Table 4
// layer must fit the 32 KiB on-chip buffer... except that long sequences
// replay the per-step block; verify at least that per-step code plus
// prologue fits comfortably.
func TestInstructionFootprint(t *testing.T) {
	for _, spec := range DeepBenchSuite() {
		perStep := StepInstructions(spec.Kind) * isa.InstrBytes
		if perStep > 1024 {
			t.Errorf("%v: per-step code %d bytes", spec, perStep)
		}
	}
}

// Every generated program must pass the ISA static validator.
func TestGeneratedProgramsValidate(t *testing.T) {
	for _, kind := range []RNNKind{LSTM, GRU, Attention} {
		w := RandomWeights(kind, 64, 3)
		k, err := Build(w, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		issues := isa.Validate(k.Prog, isa.MachineSpec{
			VRegs:         k.Cfg.VRegs,
			MRegs:         k.Cfg.MRegs,
			DRAMWords:     k.Cfg.DRAMWords,
			InstrBufBytes: k.Cfg.InstrBufBytes,
		})
		if len(issues) != 0 {
			t.Errorf("%v program has %d static issues; first: %v", kind, len(issues), issues[0])
		}
	}
}
