package kernels

import (
	"fmt"
	"math/rand"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
)

// This file adds a feed-forward (MLP) kernel alongside the recurrent
// cells: the AS ISA is application-specific, not model-specific, and the
// same instruction set expresses y = act(W_n ... act(W_1 x)) chains. The
// paper's BrainWave reference serves MLP/CNN-style layers with the same
// ISA; this generator demonstrates that generality.

// Activation selects the per-layer nonlinearity of an MLP.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	SigmoidAct
	TanhAct
	NoAct
)

func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case SigmoidAct:
		return "sigmoid"
	case TanhAct:
		return "tanh"
	case NoAct:
		return "linear"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

func (a Activation) opcode() (isa.Opcode, bool) {
	switch a {
	case ReLU:
		return isa.OpVRelu, true
	case SigmoidAct:
		return isa.OpVSigm, true
	case TanhAct:
		return isa.OpVTanh, true
	}
	return 0, false
}

// MLPSpec describes a multi-layer perceptron with square layers (the
// accelerator's logical vector length is fixed per chain, so every layer
// is Dim x Dim).
type MLPSpec struct {
	// Dim is the width of every layer.
	Dim int
	// Layers is the number of weight matrices.
	Layers int
	// Act is applied after every layer except the last.
	Act Activation
}

// MLPWeights holds the per-layer parameters.
type MLPWeights struct {
	Spec MLPSpec
	// W[i] is layer i's Dim x Dim matrix, row-major; B[i] its bias.
	W [][]float64
	B [][]float64
}

// RandomMLPWeights draws N(0, 1/sqrt(dim)) weights.
func RandomMLPWeights(spec MLPSpec, seed int64) (*MLPWeights, error) {
	if spec.Dim <= 0 || spec.Layers <= 0 {
		return nil, fmt.Errorf("kernels: bad MLP spec %+v", spec)
	}
	r := rand.New(rand.NewSource(seed))
	w := &MLPWeights{Spec: spec}
	scale := 1.0 / sqrtf(float64(spec.Dim))
	for l := 0; l < spec.Layers; l++ {
		mat := make([]float64, spec.Dim*spec.Dim)
		for i := range mat {
			mat[i] = r.NormFloat64() * scale
		}
		bias := make([]float64, spec.Dim)
		for i := range bias {
			bias[i] = r.NormFloat64() * 0.1
		}
		w.W = append(w.W, mat)
		w.B = append(w.B, bias)
	}
	return w, nil
}

// MLPKernel is a compiled feed-forward chain.
type MLPKernel struct {
	Spec MLPSpec
	Prog isa.Program
	// Image is the initial DRAM contents.
	Image []fp16.Num
	// Cfg sizes the machine.
	Cfg       accel.Config
	inputAddr int
	outAddr   int
}

// BuildMLP compiles the chain: load all matrices and biases, then per
// inference one v_rd, Layers x (mv_mul, vv_add, activation), one v_wr.
// Matrix registers bound the depth (Layers <= MRegs, biases need
// Layers + 2 vector registers).
func BuildMLP(w *MLPWeights, tiles int) (*MLPKernel, error) {
	spec := w.Spec
	cfg := DefaultConfig(LayerSpec{Kind: LSTM, Hidden: spec.Dim, TimeSteps: 1}, tiles)
	if spec.Layers > cfg.MRegs {
		return nil, fmt.Errorf("kernels: %d layers exceed %d matrix registers", spec.Layers, cfg.MRegs)
	}
	if spec.Layers+3 > cfg.VRegs {
		return nil, fmt.Errorf("kernels: %d layers exceed the vector register file", spec.Layers)
	}
	k := &MLPKernel{Spec: spec, Cfg: cfg}

	var alloc allocator
	matAddr := make([]int, spec.Layers)
	biasAddr := make([]int, spec.Layers)
	for l := 0; l < spec.Layers; l++ {
		matAddr[l] = alloc.alloc(spec.Dim * spec.Dim)
		biasAddr[l] = alloc.alloc(spec.Dim)
	}
	k.inputAddr = alloc.alloc(spec.Dim)
	k.outAddr = alloc.alloc(spec.Dim)

	k.Image = make([]fp16.Num, k.inputAddr)
	for l := 0; l < spec.Layers; l++ {
		copy(k.Image[matAddr[l]:], fp16.FromSlice64(w.W[l]))
		copy(k.Image[biasAddr[l]:], fp16.FromSlice64(w.B[l]))
	}

	var p isa.Program
	for l := 0; l < spec.Layers; l++ {
		p = append(p,
			isa.Instr{Op: isa.OpMRead, Dst: uint8(l), Imm: uint32(matAddr[l])},
			isa.Instr{Op: isa.OpVRead, Dst: uint8(2 + l), Imm: uint32(biasAddr[l])},
		)
	}
	p = append(p, isa.Instr{Op: isa.OpVRead, Dst: 0, Imm: uint32(k.inputAddr)})
	for l := 0; l < spec.Layers; l++ {
		p = append(p,
			isa.Instr{Op: isa.OpMVMul, Dst: 1, Src1: uint8(l), Src2: 0},
			isa.Instr{Op: isa.OpVVAdd, Dst: 1, Src1: 1, Src2: uint8(2 + l)},
		)
		if op, ok := spec.Act.opcode(); ok && l < spec.Layers-1 {
			p = append(p, isa.Instr{Op: op, Dst: 1, Src1: 1})
		}
		if l < spec.Layers-1 {
			p = append(p, isa.Instr{Op: isa.OpVPass, Dst: 0, Src1: 1})
		}
	}
	p = append(p,
		isa.Instr{Op: isa.OpVWrite, Src1: 1, Imm: uint32(k.outAddr)},
		isa.Instr{Op: isa.OpEndChain},
	)
	k.Prog = p
	return k, nil
}

// NewMachine builds a machine loaded with weights and matrix shapes.
func (k *MLPKernel) NewMachine() (*accel.Machine, error) {
	m, err := accel.New(k.Cfg)
	if err != nil {
		return nil, err
	}
	if err := m.DRAMPort().WriteWords(0, k.Image); err != nil {
		return nil, err
	}
	for l := 0; l < k.Spec.Layers; l++ {
		if err := m.ConfigureMatrix(l, k.Spec.Dim, k.Spec.Dim); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SetInput writes x into DRAM.
func (k *MLPKernel) SetInput(m *accel.Machine, x []float64) error {
	if len(x) != k.Spec.Dim {
		return fmt.Errorf("kernels: MLP input length %d, want %d", len(x), k.Spec.Dim)
	}
	return m.DRAMPort().WriteWords(k.inputAddr, fp16.FromSlice64(x))
}

// ReadOutput reads y back.
func (k *MLPKernel) ReadOutput(m *accel.Machine) ([]float64, error) {
	words, err := m.DRAMPort().ReadWords(k.outAddr, k.Spec.Dim)
	if err != nil {
		return nil, err
	}
	return fp16.ToSlice64(words), nil
}

// ReferenceMLP evaluates the chain in float64.
func ReferenceMLP(w *MLPWeights, x []float64) ([]float64, error) {
	if len(x) != w.Spec.Dim {
		return nil, fmt.Errorf("kernels: MLP input length %d, want %d", len(x), w.Spec.Dim)
	}
	dim := w.Spec.Dim
	cur := append([]float64{}, x...)
	for l := 0; l < w.Spec.Layers; l++ {
		next := make([]float64, dim)
		for i := 0; i < dim; i++ {
			sum := w.B[l][i]
			for j := 0; j < dim; j++ {
				sum += w.W[l][i*dim+j] * cur[j]
			}
			next[i] = sum
		}
		if l < w.Spec.Layers-1 {
			for i := range next {
				next[i] = applyAct(w.Spec.Act, next[i])
			}
		}
		cur = next
	}
	return cur, nil
}

func applyAct(a Activation, x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case SigmoidAct:
		return sigmoid(x)
	case TanhAct:
		return tanh64(x)
	}
	return x
}

func tanh64(x float64) float64 {
	// tanh via the sigmoid identity to avoid importing math twice here.
	return 2*sigmoid(2*x) - 1
}
