package kernels

import (
	"math"
	"math/rand"
	"testing"

	"mlvfpga/internal/isa"
)

func runMLP(t *testing.T, spec MLPSpec, tolerance float64) {
	t.Helper()
	w, err := RandomMLPWeights(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	k, err := BuildMLP(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	k.Cfg.MantissaBits = 9
	m, err := k.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	x := make([]float64, spec.Dim)
	for i := range x {
		x[i] = r.NormFloat64() * 0.5
	}
	if err := k.SetInput(m, x); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(k.Prog); err != nil {
		t.Fatal(err)
	}
	got, err := k.ReadOutput(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceMLP(w, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tolerance {
			t.Fatalf("%v elem %d: got %v, want %v", spec, i, got[i], want[i])
		}
	}
}

func TestMLPReLU(t *testing.T)    { runMLP(t, MLPSpec{Dim: 48, Layers: 3, Act: ReLU}, 0.1) }
func TestMLPSigmoid(t *testing.T) { runMLP(t, MLPSpec{Dim: 32, Layers: 2, Act: SigmoidAct}, 0.08) }
func TestMLPTanh(t *testing.T)    { runMLP(t, MLPSpec{Dim: 32, Layers: 4, Act: TanhAct}, 0.12) }
func TestMLPLinear(t *testing.T)  { runMLP(t, MLPSpec{Dim: 32, Layers: 2, Act: NoAct}, 0.1) }

func TestMLPErrors(t *testing.T) {
	if _, err := RandomMLPWeights(MLPSpec{Dim: 0, Layers: 1}, 1); err == nil {
		t.Error("bad dim must fail")
	}
	w, _ := RandomMLPWeights(MLPSpec{Dim: 16, Layers: 2, Act: ReLU}, 1)
	w.Spec.Layers = 99
	if _, err := BuildMLP(w, 1); err == nil {
		t.Error("too many layers must fail")
	}
	w.Spec.Layers = 2
	k, err := BuildMLP(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := k.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetInput(m, make([]float64, 3)); err == nil {
		t.Error("wrong input length must fail")
	}
	if _, err := ReferenceMLP(w, make([]float64, 3)); err == nil {
		t.Error("wrong reference input length must fail")
	}
}

func TestMLPProgramValidates(t *testing.T) {
	w, _ := RandomMLPWeights(MLPSpec{Dim: 32, Layers: 4, Act: ReLU}, 1)
	k, err := BuildMLP(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	issues := isa.Validate(k.Prog, isa.MachineSpec{
		VRegs:         k.Cfg.VRegs,
		MRegs:         k.Cfg.MRegs,
		DRAMWords:     k.Cfg.DRAMWords,
		InstrBufBytes: k.Cfg.InstrBufBytes,
	})
	if len(issues) != 0 {
		t.Errorf("MLP program has %d static issues; first: %v", len(issues), issues[0])
	}
}

func TestActivationString(t *testing.T) {
	names := map[Activation]string{ReLU: "relu", SigmoidAct: "sigmoid", TanhAct: "tanh", NoAct: "linear"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
}
