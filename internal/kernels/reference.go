package kernels

import (
	"fmt"
	"math"
)

// Reference executes the cell in float64, the golden model against which
// the accelerator simulator's BFP/float16 numerics are validated.
type Reference struct {
	w *Weights
	h []float64
	c []float64 // LSTM cell state
	s []float64 // attention running key-weighted value sum
	z []float64 // attention running normalizer
}

// NewReference builds a reference evaluator with zero initial state.
func NewReference(w *Weights) *Reference {
	return &Reference{
		w: w,
		h: make([]float64, w.Hidden),
		c: make([]float64, w.Hidden),
		s: make([]float64, w.Hidden),
		z: make([]float64, w.Hidden),
	}
}

// State returns the current hidden state.
func (r *Reference) State() []float64 { return append([]float64{}, r.h...) }

// Step consumes one input vector and returns the new hidden state.
func (r *Reference) Step(x []float64) ([]float64, error) {
	if len(x) != r.w.Hidden {
		return nil, fmt.Errorf("kernels: reference input length %d, want %d", len(x), r.w.Hidden)
	}
	switch r.w.Kind {
	case LSTM:
		return r.stepLSTM(x), nil
	case GRU:
		return r.stepGRU(x), nil
	case Attention:
		return r.stepAttention(x), nil
	}
	return nil, fmt.Errorf("kernels: unknown cell %v", r.w.Kind)
}

func (r *Reference) stepLSTM(x []float64) []float64 {
	h := r.w.Hidden
	gate := func(wName, uName, bName string, act func(float64) float64) []float64 {
		out := make([]float64, h)
		w, u, b := r.w.M[wName], r.w.M[uName], r.w.B[bName]
		for i := 0; i < h; i++ {
			sum := b[i]
			for j := 0; j < h; j++ {
				sum += w[i*h+j]*x[j] + u[i*h+j]*r.h[j]
			}
			out[i] = act(sum)
		}
		return out
	}
	i := gate("Wi", "Ui", "bi", sigmoid)
	f := gate("Wf", "Uf", "bf", sigmoid)
	o := gate("Wo", "Uo", "bo", sigmoid)
	g := gate("Wc", "Uc", "bc", math.Tanh)
	newC := make([]float64, h)
	newH := make([]float64, h)
	for k := 0; k < h; k++ {
		newC[k] = f[k]*r.c[k] + i[k]*g[k]
		newH[k] = o[k] * math.Tanh(newC[k])
	}
	r.c, r.h = newC, newH
	return append([]float64{}, newH...)
}

func (r *Reference) stepGRU(x []float64) []float64 {
	h := r.w.Hidden
	mul := func(m []float64, v []float64) []float64 {
		out := make([]float64, h)
		for i := 0; i < h; i++ {
			sum := 0.0
			for j := 0; j < h; j++ {
				sum += m[i*h+j] * v[j]
			}
			out[i] = sum
		}
		return out
	}
	wzx, uzh := mul(r.w.M["Wz"], x), mul(r.w.M["Uz"], r.h)
	wrx, urh := mul(r.w.M["Wr"], x), mul(r.w.M["Ur"], r.h)
	wnx, unh := mul(r.w.M["Wn"], x), mul(r.w.M["Un"], r.h)
	newH := make([]float64, h)
	for k := 0; k < h; k++ {
		z := sigmoid(wzx[k] + uzh[k] + r.w.B["bz"][k])
		rr := sigmoid(wrx[k] + urh[k] + r.w.B["br"][k])
		n := math.Tanh(rr*unh[k] + wnx[k] + r.w.B["bn"][k])
		newH[k] = (1-z)*n + z*r.h[k]
	}
	r.h = newH
	return append([]float64{}, newH...)
}

// stepAttention mirrors attnStep's recurrence exactly: running
// accumulators (S, z) instead of a softmax over the materialized history,
// so a float64 evaluation is a step-for-step twin of the kernel.
func (r *Reference) stepAttention(x []float64) []float64 {
	h := r.w.Hidden
	proj := func(wName, bName string) []float64 {
		out := make([]float64, h)
		w, b := r.w.M[wName], r.w.B[bName]
		for i := 0; i < h; i++ {
			sum := b[i]
			for j := 0; j < h; j++ {
				sum += w[i*h+j] * x[j]
			}
			out[i] = sum
		}
		return out
	}
	q := proj("Wq", "bq")
	k := proj("Wk", "bk")
	v := proj("Wv", "bv")
	y := make([]float64, h)
	for i := 0; i < h; i++ {
		e := math.Exp(k[i])
		r.s[i] += e * v[i]
		r.z[i] += e
		y[i] = sigmoid(q[i]) * (r.s[i] / r.z[i])
	}
	newH := make([]float64, h)
	wo, bo := r.w.M["Wo"], r.w.B["bo"]
	for i := 0; i < h; i++ {
		sum := bo[i]
		for j := 0; j < h; j++ {
			sum += wo[i*h+j] * y[j]
		}
		newH[i] = sum
	}
	r.h = newH
	return append([]float64{}, newH...)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
