package kernels

import (
	"fmt"
	"hash/fnv"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/bfp"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/snapshot"
)

// StateHash identifies the architectural contract a slot snapshot
// depends on: the cell kind and shapes fix the register-file layout and
// DRAM window geometry, and the quantization parameters fix the
// numerics. Two kernels with equal hashes restore each other's
// snapshots bit-identically — NumTiles and DRAM capacity are deliberately
// excluded, since they are capacity knobs that do not change a stream's
// results, which is what lets a checkpoint move to a different
// placement depth.
func (k *Kernel) StateHash() uint64 {
	mant := k.Cfg.MantissaBits
	if mant == 0 {
		mant = bfp.DefaultMantissaBits
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "mlvfpga/snapshot/v1|%s|h=%d|t=%d|nd=%d|vr=%d|vl=%d|mb=%d",
		k.Spec.Kind, k.Spec.Hidden, k.Spec.TimeSteps,
		k.Cfg.NativeDim, k.Cfg.VRegs, k.Cfg.VecLen, mant)
	return h.Sum64()
}

// SnapshotSlot captures slot's live stream state: the vector register
// file (biases and recurrent state) and the slot's banked DRAM window
// (inputs plus outputs written so far), tagged with the stream program
// counter tau (the next timestep to run) and the kernel identity hash.
// Matrix tiles are machine-level state excluded by design: SharedInit
// re-establishes them idempotently on any machine built from this
// kernel.
func (k *Kernel) SnapshotSlot(m *accel.Machine, slot, tau, steps int) (*snapshot.Slot, error) {
	if slot < 0 {
		return nil, fmt.Errorf("kernels: snapshot slot %d", slot)
	}
	regs, err := m.SnapshotStream(slot)
	if err != nil {
		return nil, err
	}
	stride := k.StreamStride()
	words, err := m.DRAMPort().ReadWords(k.WindowBase()+slot*stride, stride)
	if err != nil {
		return nil, err
	}
	s := &snapshot.Slot{
		KernelHash: k.StateHash(),
		Tau:        uint32(tau),
		Steps:      uint32(steps),
		Regs:       make([][]uint16, len(regs)),
		Window:     make([]uint16, len(words)),
	}
	for i, r := range regs {
		if r == nil {
			continue
		}
		u := make([]uint16, len(r))
		for j, v := range r {
			u[j] = uint16(v)
		}
		s.Regs[i] = u
	}
	for i, w := range words {
		s.Window[i] = uint16(w)
	}
	return s, nil
}

// RestoreSlot installs a snapshot into slot on m — any machine built
// from a kernel with the same StateHash, including one backing a
// different placement depth. The DRAM window is written first (the
// write-tracking port invalidates any overlapping cached tile), then
// the register file; the caller resumes the stream by running Step
// under SlotOffset(slot, tau).
func (k *Kernel) RestoreSlot(m *accel.Machine, slot int, snap *snapshot.Slot) error {
	if snap.KernelHash != k.StateHash() {
		return fmt.Errorf("kernels: snapshot kernel hash %016x does not match kernel %016x (%s)",
			snap.KernelHash, k.StateHash(), k.Spec)
	}
	stride := k.StreamStride()
	if len(snap.Window) != stride {
		return fmt.Errorf("kernels: snapshot window %d words, kernel stride %d", len(snap.Window), stride)
	}
	if slot < 0 {
		return fmt.Errorf("kernels: restore slot %d", slot)
	}
	words := make([]fp16.Num, stride)
	for i, w := range snap.Window {
		words[i] = fp16.Num(w)
	}
	if err := m.DRAMPort().WriteWords(k.WindowBase()+slot*stride, words); err != nil {
		return err
	}
	regs := make([][]fp16.Num, len(snap.Regs))
	for i, r := range snap.Regs {
		if r == nil {
			continue
		}
		v := make([]fp16.Num, len(r))
		for j, u := range r {
			v[j] = fp16.Num(u)
		}
		regs[i] = v
	}
	return m.RestoreStream(slot, regs)
}
