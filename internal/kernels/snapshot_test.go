package kernels

import (
	"reflect"
	"testing"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/snapshot"
)

// TestSnapshotRestoreBitIdentical is the kernel-level golden
// preempted-twin test: a stream stepped to timestep tau, snapshotted,
// encoded through the wire codec, and restored into a different slot on
// a fresh machine (built from a re-derived kernel with a different tile
// count, as a migration would) finishes with outputs bit-identical to
// the same stream run without interruption.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, kind := range []RNNKind{LSTM, GRU, Attention} {
		t.Run(kind.String(), func(t *testing.T) {
			w := RandomWeights(kind, 32, 17)
			k, err := Build(w, 5, 1)
			if err != nil {
				t.Fatal(err)
			}
			T := k.Spec.TimeSteps
			inputs := batchInputs(k, 1, 23)[0]

			runSlot := func(kk *Kernel, m *accel.Machine, slot, from, to int) {
				t.Helper()
				for tau := from; tau < to; tau++ {
					if err := m.RunStreams(kk.Step, kk.WindowBase(), []int{slot}, []int{kk.SlotOffset(slot, tau)}); err != nil {
						t.Fatal(err)
					}
				}
			}
			start := func(kk *Kernel, m *accel.Machine, slot int) {
				t.Helper()
				if err := m.RunStreams(kk.SharedInit, kk.WindowBase(), []int{0}, []int{0}); err != nil {
					t.Fatal(err)
				}
				for tt, x := range inputs {
					if err := kk.SetInputStream(m, slot, tt, x); err != nil {
						t.Fatal(err)
					}
				}
				if err := m.RunStreams(kk.StreamInit, kk.WindowBase(), []int{slot}, []int{kk.SlotOffset(slot, 0)}); err != nil {
					t.Fatal(err)
				}
			}

			// Twin: the stream run start-to-finish in slot 0.
			twin, err := k.NewBatchMachine(1)
			if err != nil {
				t.Fatal(err)
			}
			start(k, twin, 0)
			runSlot(k, twin, 0, 0, T)
			want := make([][]float64, T)
			for tt := 0; tt < T; tt++ {
				out, err := k.ReadOutputStream(twin, 0, tt)
				if err != nil {
					t.Fatal(err)
				}
				want[tt] = out
			}

			// Preempted run: slot 2 on machine A, stopped after 2 steps.
			const cut = 2
			ma, err := k.NewBatchMachine(3)
			if err != nil {
				t.Fatal(err)
			}
			start(k, ma, 2)
			runSlot(k, ma, 2, 0, cut)
			snap, err := k.SnapshotSlot(ma, 2, cut, T)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Tau != cut || snap.Steps != uint32(T) {
				t.Fatalf("snapshot pc tau=%d steps=%d, want %d/%d", snap.Tau, snap.Steps, cut, T)
			}

			// The checkpoint crosses a wire: encode, decode, restore into a
			// *different* slot on a fresh machine built from a re-derived
			// kernel with a different tile count.
			restored, err := snapshot.Decode(snap.Encode())
			if err != nil {
				t.Fatal(err)
			}
			k2, err := Build(RandomWeights(kind, 32, 17), 5, 2)
			if err != nil {
				t.Fatal(err)
			}
			if k2.StateHash() != k.StateHash() {
				t.Fatalf("tile count changed StateHash: %x vs %x", k2.StateHash(), k.StateHash())
			}
			mb, err := k2.NewBatchMachine(2)
			if err != nil {
				t.Fatal(err)
			}
			if err := mb.RunStreams(k2.SharedInit, k2.WindowBase(), []int{0}, []int{0}); err != nil {
				t.Fatal(err)
			}
			if err := k2.RestoreSlot(mb, 1, restored); err != nil {
				t.Fatal(err)
			}
			runSlot(k2, mb, 1, int(restored.Tau), T)
			for tt := 0; tt < T; tt++ {
				got, err := k2.ReadOutputStream(mb, 1, tt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want[tt]) {
					t.Errorf("t=%d restored output differs from never-preempted twin (not bit-identical)", tt)
				}
			}
		})
	}
}

// TestRestoreSlotRejectsForeignSnapshot pins the identity check: a
// snapshot taken under one kernel contract must not restore under a
// kernel whose layout or numerics differ.
func TestRestoreSlotRejectsForeignSnapshot(t *testing.T) {
	k, err := Build(RandomWeights(LSTM, 32, 1), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Build(RandomWeights(LSTM, 16, 1), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.StateHash() == other.StateHash() {
		t.Fatal("different hidden sizes hash equal")
	}
	m, err := k.NewBatchMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := k.SnapshotSlot(m, 0, 0, k.Spec.TimeSteps)
	if err != nil {
		t.Fatal(err)
	}
	om, err := other.NewBatchMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreSlot(om, 0, snap); err == nil {
		t.Fatal("foreign snapshot restored without error")
	}
}
