package kernels

import (
	"reflect"
	"testing"

	"mlvfpga/internal/fp16"
)

// stepSlot is one continuously-batched stream in the test driver below:
// which machine slot it occupies, which input sequence it carries, and
// how far it has advanced.
type stepSlot struct {
	seq int // index into the input sequences
	tau int // next timestep to execute
}

// TestStepProgramsMatchMonolithic is the continuous-batching golden test:
// driving a machine with SharedInit + per-admission StreamInit + banked
// Step rounds over a cohort whose members sit at heterogeneous timesteps
// — including a stream admitted into a slot freed mid-run — produces
// outputs bit-identical to the monolithic Prog run per stream.
func TestStepProgramsMatchMonolithic(t *testing.T) {
	for _, kind := range []RNNKind{LSTM, GRU, Attention} {
		t.Run(kind.String(), func(t *testing.T) {
			w := RandomWeights(kind, 32, 9)
			k, err := Build(w, 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			T := k.Spec.TimeSteps
			// Four sequences with heterogeneous lengths; seq 3 is admitted
			// into slot 1 after seq 1 retires at length 2.
			seqs := batchInputs(k, 4, 13)
			lens := []int{4, 2, 3, 3}

			// Reference: each sequence on its own machine under the
			// monolithic program (full T steps; h_t for t < len depends
			// only on inputs up to t).
			ref := make([][][]fp16.Num, len(seqs))
			for s := range seqs {
				rm, err := k.NewMachine()
				if err != nil {
					t.Fatal(err)
				}
				for tt, x := range seqs[s] {
					if err := k.SetInput(rm, tt, x); err != nil {
						t.Fatal(err)
					}
				}
				if err := rm.Run(k.Prog); err != nil {
					t.Fatal(err)
				}
				ref[s] = make([][]fp16.Num, T)
				for tt := 0; tt < T; tt++ {
					words, err := rm.DRAMPort().ReadWords(k.OutputAddr(tt), k.Spec.Hidden)
					if err != nil {
						t.Fatal(err)
					}
					ref[s][tt] = words
				}
			}

			// Stepped machine: 3 slots, SharedInit once, then step rounds
			// with slot-granular admission and retirement.
			m, err := k.NewBatchMachine(3)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.RunStreams(k.SharedInit, k.inputBase, []int{0}, []int{0}); err != nil {
				t.Fatal(err)
			}
			got := make([][][]fp16.Num, len(seqs))
			for s := range got {
				got[s] = make([][]fp16.Num, T)
			}
			admit := func(slot, seq int) *stepSlot {
				for tt := 0; tt < lens[seq]; tt++ {
					if err := k.SetInputStream(m, slot, tt, seqs[seq][tt]); err != nil {
						t.Fatal(err)
					}
				}
				if err := m.RunStreams(k.StreamInit, k.inputBase, []int{slot}, []int{k.SlotOffset(slot, 0)}); err != nil {
					t.Fatal(err)
				}
				return &stepSlot{seq: seq}
			}
			slots := map[int]*stepSlot{0: admit(0, 0), 1: admit(1, 1), 2: admit(2, 2)}
			pendingSeq := 3
			for len(slots) > 0 {
				var streams, offs []int
				for slot, st := range slots {
					streams = append(streams, slot)
					offs = append(offs, k.SlotOffset(slot, st.tau))
				}
				if err := m.RunStreams(k.Step, k.inputBase, streams, offs); err != nil {
					t.Fatal(err)
				}
				for slot, st := range slots {
					words, err := m.DRAMPort().ReadWords(k.StreamOutputAddr(slot, st.tau), k.Spec.Hidden)
					if err != nil {
						t.Fatal(err)
					}
					got[st.seq][st.tau] = words
					st.tau++
					if st.tau == lens[st.seq] {
						// Retire; admit the waiting stream into the freed
						// slot mid-run (the continuous-batching move).
						delete(slots, slot)
						if pendingSeq < len(seqs) {
							slots[slot] = admit(slot, pendingSeq)
							pendingSeq++
						}
					}
				}
			}

			for s := range seqs {
				for tt := 0; tt < lens[s]; tt++ {
					if got[s][tt] == nil {
						t.Fatalf("seq %d t=%d never executed", s, tt)
					}
					if !reflect.DeepEqual(got[s][tt], ref[s][tt]) {
						t.Errorf("seq %d t=%d stepped output differs from monolithic (not bit-identical)", s, tt)
					}
				}
			}
		})
	}
}

// TestStepProgramShapes pins the decomposition's structure: SharedInit is
// exactly the m_rd prologue, StreamInit the bias loads + state zeroing,
// Step one timestep, and SlotOffset the banked-window arithmetic.
func TestStepProgramShapes(t *testing.T) {
	w := RandomWeights(LSTM, 16, 3)
	k, err := Build(w, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(k.SharedInit), 8+1; got != want {
		t.Errorf("SharedInit = %d instrs, want %d", got, want)
	}
	if got, want := len(k.StreamInit), 4+2+1; got != want {
		t.Errorf("StreamInit = %d instrs, want %d", got, want)
	}
	if got, want := len(k.Step), StepInstructions(LSTM)+1; got != want {
		t.Errorf("Step = %d instrs, want %d", got, want)
	}
	if got, want := k.SlotOffset(2, 3), 2*k.StreamStride()+3*16; got != want {
		t.Errorf("SlotOffset(2,3) = %d, want %d", got, want)
	}
	// Step's banked addresses under SlotOffset land on the stream/timestep
	// addresses the monolithic program uses.
	off := k.SlotOffset(1, 2)
	if got, want := k.InputAddr(0)+off, k.StreamInputAddr(1, 2); got != want {
		t.Errorf("banked input addr = %d, want %d", got, want)
	}
	if got, want := k.OutputAddr(0)+off, k.StreamOutputAddr(1, 2); got != want {
		t.Errorf("banked output addr = %d, want %d", got, want)
	}
}
