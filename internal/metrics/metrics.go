// Package metrics holds the process-wide expvar counters shared by the
// runtime manager's data plane and the cluster control plane, so operators
// and the control loop read one view. The counters are registered once at
// init (expvar panics on duplicate names) and exported on every serving
// mux under /debug/vars.
package metrics

import "expvar"

// Counters snapshots every mlv_ counter by its expvar name. The
// deterministic simulation harness (internal/simtest) diffs two snapshots
// to check counter conservation: the delta across a simulated run must
// equal the event-derived expectation (expvar counters are process-wide,
// so absolute values are meaningless inside a shared test binary).
func Counters() map[string]int64 {
	return map[string]int64{
		"mlv_leases_active":      LeasesActive.Value(),
		"mlv_infers_served":      InfersServed.Value(),
		"mlv_batches_flushed":    BatchesFlushed.Value(),
		"mlv_migrations":         Migrations.Value(),
		"mlv_migration_failures": MigrationFailures.Value(),
		"mlv_heartbeat_misses":   HeartbeatMisses.Value(),
		"mlv_devices_condemned":  DevicesCondemned.Value(),
	}
}

var (
	// LeasesActive is a gauge of admitted deployments (+1 on Deploy,
	// -1 on Release).
	LeasesActive = expvar.NewInt("mlv_leases_active")
	// InfersServed counts answered inference requests.
	InfersServed = expvar.NewInt("mlv_infers_served")
	// BatchesFlushed counts executed micro-batches.
	BatchesFlushed = expvar.NewInt("mlv_batches_flushed")
	// Migrations counts lease re-placements (depth changes and
	// evacuations) performed by the cluster control plane.
	Migrations = expvar.NewInt("mlv_migrations")
	// MigrationFailures counts migration attempts that found no
	// capacity and went into backoff.
	MigrationFailures = expvar.NewInt("mlv_migration_failures")
	// HeartbeatMisses counts device health downgrades caused by missed
	// heartbeats (healthy→suspect and suspect→dead sweep transitions).
	HeartbeatMisses = expvar.NewInt("mlv_heartbeat_misses")
	// DevicesCondemned counts devices marked Dead on positive failure
	// evidence (an explicit ReportDead, e.g. /cluster/kill or an observed
	// scaleout.DeviceError) — kept separate from HeartbeatMisses so
	// operators can tell confirmed failures from timeouts.
	DevicesCondemned = expvar.NewInt("mlv_devices_condemned")
)
