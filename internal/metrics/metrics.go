// Package metrics holds the process-wide expvar counters shared by the
// runtime manager's data plane and the cluster control plane, so operators
// and the control loop read one view. The counters are registered once at
// init (expvar panics on duplicate names) and exported on every serving
// mux under /debug/vars.
package metrics

import "expvar"

// Counters snapshots every mlv_ counter by its expvar name. The
// deterministic simulation harness (internal/simtest) diffs two snapshots
// to check counter conservation: the delta across a simulated run must
// equal the event-derived expectation (expvar counters are process-wide,
// so absolute values are meaningless inside a shared test binary).
func Counters() map[string]int64 {
	return map[string]int64{
		"mlv_leases_active":      LeasesActive.Value(),
		"mlv_infers_served":      InfersServed.Value(),
		"mlv_batches_flushed":    BatchesFlushed.Value(),
		"mlv_migrations":         Migrations.Value(),
		"mlv_migration_failures": MigrationFailures.Value(),
		"mlv_heartbeat_misses":   HeartbeatMisses.Value(),
		"mlv_devices_condemned":  DevicesCondemned.Value(),
	}
}

// ArtifactCounters snapshots the offline-compilation cache counters (the
// artifact store plus the RTL equivalence oracle) by expvar name. They are
// kept out of Counters() because the simulation harness's conservation
// check models serving-path events only; cache behaviour is asserted
// directly against artifactstore.Stats.
func ArtifactCounters() map[string]int64 {
	return map[string]int64{
		"mlv_artifact_hits":       ArtifactHits.Value(),
		"mlv_artifact_misses":     ArtifactMisses.Value(),
		"mlv_artifact_compiles":   ArtifactCompiles.Value(),
		"mlv_artifact_evictions":  ArtifactEvictions.Value(),
		"mlv_artifact_corrupt":    ArtifactCorrupt.Value(),
		"mlv_artifact_disk_bytes": ArtifactDiskBytes.Value(),
		"mlv_equiv_queries":       EquivQueries.Value(),
		"mlv_equiv_struct_hits":   EquivStructuralHits.Value(),
		"mlv_equiv_cache_hits":    EquivCacheHits.Value(),
		"mlv_equiv_sim_runs":      EquivSimRuns.Value(),
	}
}

var (
	// LeasesActive is a gauge of admitted deployments (+1 on Deploy,
	// -1 on Release).
	LeasesActive = expvar.NewInt("mlv_leases_active")
	// InfersServed counts answered inference requests.
	InfersServed = expvar.NewInt("mlv_infers_served")
	// BatchesFlushed counts executed micro-batches.
	BatchesFlushed = expvar.NewInt("mlv_batches_flushed")
	// Migrations counts lease re-placements (depth changes and
	// evacuations) performed by the cluster control plane.
	Migrations = expvar.NewInt("mlv_migrations")
	// MigrationFailures counts migration attempts that found no
	// capacity and went into backoff.
	MigrationFailures = expvar.NewInt("mlv_migration_failures")
	// HeartbeatMisses counts device health downgrades caused by missed
	// heartbeats (healthy→suspect and suspect→dead sweep transitions).
	HeartbeatMisses = expvar.NewInt("mlv_heartbeat_misses")
	// DevicesCondemned counts devices marked Dead on positive failure
	// evidence (an explicit ReportDead, e.g. /cluster/kill or an observed
	// scaleout.DeviceError) — kept separate from HeartbeatMisses so
	// operators can tell confirmed failures from timeouts.
	DevicesCondemned = expvar.NewInt("mlv_devices_condemned")
)

// Offline-compilation cache counters: the content-addressed artifact store
// (internal/artifactstore) and the equivalence oracle's memo
// (rtl.EquivChecker) export through the same /debug/vars page so online
// serving and offline caching are observable together.
var (
	// ArtifactHits counts artifact-store lookups served from cache
	// (memory LRU or validated disk blob).
	ArtifactHits = expvar.NewInt("mlv_artifact_hits")
	// ArtifactMisses counts lookups that found no usable artifact.
	ArtifactMisses = expvar.NewInt("mlv_artifact_misses")
	// ArtifactCompiles counts cold compiles the cache failed to absorb
	// (one per miss; singleflight followers add nothing).
	ArtifactCompiles = expvar.NewInt("mlv_artifact_compiles")
	// ArtifactEvictions counts artifacts dropped by the memory LRU or the
	// disk-bytes bound.
	ArtifactEvictions = expvar.NewInt("mlv_artifact_evictions")
	// ArtifactCorrupt counts blobs rejected by checksum/framing/decode
	// validation and deleted (each one falls back to a recompile).
	ArtifactCorrupt = expvar.NewInt("mlv_artifact_corrupt")
	// ArtifactDiskBytes gauges the bytes currently held in blob files.
	ArtifactDiskBytes = expvar.NewInt("mlv_artifact_disk_bytes")

	// EquivQueries counts rtl.EquivChecker.Equivalent calls.
	EquivQueries = expvar.NewInt("mlv_equiv_queries")
	// EquivStructuralHits counts queries decided by structural hashing
	// alone (no simulation considered).
	EquivStructuralHits = expvar.NewInt("mlv_equiv_struct_hits")
	// EquivCacheHits counts queries answered from the hash-pair memo.
	EquivCacheHits = expvar.NewInt("mlv_equiv_cache_hits")
	// EquivSimRuns counts memo misses that ran random-simulation
	// equivalence.
	EquivSimRuns = expvar.NewInt("mlv_equiv_sim_runs")
)
