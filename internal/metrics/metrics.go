// Package metrics holds the process-wide expvar counters shared by the
// runtime manager's data plane and the cluster control plane, so operators
// and the control loop read one view. The counters are registered once at
// init (expvar panics on duplicate names) and exported on every serving
// mux under /debug/vars.
package metrics

import (
	"expvar"
	"sync/atomic"
)

// Counters snapshots every mlv_ counter by its expvar name. The
// deterministic simulation harness (internal/simtest) diffs two snapshots
// to check counter conservation: the delta across a simulated run must
// equal the event-derived expectation (expvar counters are process-wide,
// so absolute values are meaningless inside a shared test binary).
func Counters() map[string]int64 {
	return map[string]int64{
		"mlv_leases_active":      LeasesActive.Value(),
		"mlv_infers_served":      InfersServed.Value(),
		"mlv_batches_flushed":    BatchesFlushed.Value(),
		"mlv_migrations":         Migrations.Value(),
		"mlv_migration_failures": MigrationFailures.Value(),
		"mlv_heartbeat_misses":   HeartbeatMisses.Value(),
		"mlv_devices_condemned":  DevicesCondemned.Value(),
	}
}

// ArtifactCounters snapshots the offline-compilation cache counters (the
// artifact store plus the RTL equivalence oracle) by expvar name. They are
// kept out of Counters() because the simulation harness's conservation
// check models serving-path events only; cache behaviour is asserted
// directly against artifactstore.Stats.
func ArtifactCounters() map[string]int64 {
	return map[string]int64{
		"mlv_artifact_hits":       ArtifactHits.Value(),
		"mlv_artifact_misses":     ArtifactMisses.Value(),
		"mlv_artifact_compiles":   ArtifactCompiles.Value(),
		"mlv_artifact_evictions":  ArtifactEvictions.Value(),
		"mlv_artifact_corrupt":    ArtifactCorrupt.Value(),
		"mlv_artifact_disk_bytes": ArtifactDiskBytes.Value(),
		"mlv_equiv_queries":       EquivQueries.Value(),
		"mlv_equiv_struct_hits":   EquivStructuralHits.Value(),
		"mlv_equiv_cache_hits":    EquivCacheHits.Value(),
		"mlv_equiv_sim_runs":      EquivSimRuns.Value(),
	}
}

var (
	// LeasesActive is a gauge of admitted deployments (+1 on Deploy,
	// -1 on Release).
	LeasesActive = expvar.NewInt("mlv_leases_active")
	// InfersServed counts answered inference requests.
	InfersServed = expvar.NewInt("mlv_infers_served")
	// BatchesFlushed counts executed micro-batches.
	BatchesFlushed = expvar.NewInt("mlv_batches_flushed")
	// Migrations counts lease re-placements (depth changes and
	// evacuations) performed by the cluster control plane.
	Migrations = expvar.NewInt("mlv_migrations")
	// MigrationFailures counts migration attempts that found no
	// capacity and went into backoff.
	MigrationFailures = expvar.NewInt("mlv_migration_failures")
	// HeartbeatMisses counts device health downgrades caused by missed
	// heartbeats (healthy→suspect and suspect→dead sweep transitions).
	HeartbeatMisses = expvar.NewInt("mlv_heartbeat_misses")
	// DevicesCondemned counts devices marked Dead on positive failure
	// evidence (an explicit ReportDead, e.g. /cluster/kill or an observed
	// scaleout.DeviceError) — kept separate from HeartbeatMisses so
	// operators can tell confirmed failures from timeouts.
	DevicesCondemned = expvar.NewInt("mlv_devices_condemned")
)

// Offline-compilation cache counters: the content-addressed artifact store
// (internal/artifactstore) and the equivalence oracle's memo
// (rtl.EquivChecker) export through the same /debug/vars page so online
// serving and offline caching are observable together.
var (
	// ArtifactHits counts artifact-store lookups served from cache
	// (memory LRU or validated disk blob).
	ArtifactHits = expvar.NewInt("mlv_artifact_hits")
	// ArtifactMisses counts lookups that found no usable artifact.
	ArtifactMisses = expvar.NewInt("mlv_artifact_misses")
	// ArtifactCompiles counts cold compiles the cache failed to absorb
	// (one per miss; singleflight followers add nothing).
	ArtifactCompiles = expvar.NewInt("mlv_artifact_compiles")
	// ArtifactEvictions counts artifacts dropped by the memory LRU or the
	// disk-bytes bound.
	ArtifactEvictions = expvar.NewInt("mlv_artifact_evictions")
	// ArtifactCorrupt counts blobs rejected by checksum/framing/decode
	// validation and deleted (each one falls back to a recompile).
	ArtifactCorrupt = expvar.NewInt("mlv_artifact_corrupt")
	// ArtifactDiskBytes gauges the bytes currently held in blob files.
	ArtifactDiskBytes = expvar.NewInt("mlv_artifact_disk_bytes")

	// EquivQueries counts rtl.EquivChecker.Equivalent calls.
	EquivQueries = expvar.NewInt("mlv_equiv_queries")
	// EquivStructuralHits counts queries decided by structural hashing
	// alone (no simulation considered).
	EquivStructuralHits = expvar.NewInt("mlv_equiv_struct_hits")
	// EquivCacheHits counts queries answered from the hash-pair memo.
	EquivCacheHits = expvar.NewInt("mlv_equiv_cache_hits")
	// EquivSimRuns counts memo misses that ran random-simulation
	// equivalence.
	EquivSimRuns = expvar.NewInt("mlv_equiv_sim_runs")
)

// Continuous-batching data-plane counters. Kept out of Counters() — the
// simulation harness audits them through SlotCounters() with its own
// slot-conservation model (see internal/simtest).
var (
	// SlotsActive gauges streams currently resident in batch slots
	// (+1 on admission, -1 when the slot is freed). At quiescence it must
	// return to its baseline: a persistent residue is a leaked slot.
	SlotsActive = expvar.NewInt("mlv_slots_active")
	// SlotRounds counts executed step rounds; SlotRoundOccupancy sums the
	// cohort size over those rounds, so occupancy/rounds is the mean
	// co-resident stream count — the "batches no longer drain to empty"
	// signal (a flush plane drains to zero between batches; continuous
	// admission keeps this near MaxBatch under load).
	SlotRounds         = expvar.NewInt("mlv_slot_rounds")
	SlotRoundOccupancy = expvar.NewInt("mlv_slot_round_occupancy")
	// Admissions counts streams admitted into slots;
	// AdmissionsIntoRunning counts the subset admitted into a machine
	// that already had live streams mid-flight — the continuous-batching
	// moves a flush plane cannot make.
	Admissions            = expvar.NewInt("mlv_admissions")
	AdmissionsIntoRunning = expvar.NewInt("mlv_admissions_into_running")
	// Steals counts scheduler rounds a worker ran on a machine stolen
	// from another shard's run queue.
	Steals = expvar.NewInt("mlv_steals")
	// AdmissionWaitNS gauges the most recent per-engine EWMA of
	// queue-to-slot admission latency in nanoseconds.
	AdmissionWaitNS = expvar.NewInt("mlv_admission_wait_ns")
)

// SlotCounters snapshots the continuous-batching counters by expvar name
// (the simulation harness diffs two snapshots for slot conservation).
func SlotCounters() map[string]int64 {
	return map[string]int64{
		"mlv_slots_active":            SlotsActive.Value(),
		"mlv_slot_rounds":             SlotRounds.Value(),
		"mlv_slot_round_occupancy":    SlotRoundOccupancy.Value(),
		"mlv_admissions":              Admissions.Value(),
		"mlv_admissions_into_running": AdmissionsIntoRunning.Value(),
		"mlv_steals":                  Steals.Value(),
	}
}

// Checkpoint/restore counters: snapshot volume, preemptive scheduling
// and defragmentation. Kept out of Counters() — the simulation harness
// audits them through SnapshotCounters() with its own snapshot-
// conservation model (captures from preemption must be matched by
// restores; see internal/simtest).
var (
	// SnapshotCaptures counts slot checkpoints taken (preemption,
	// transplant on resize, drain-deadline checkpointing);
	// SnapshotRestores counts checkpoints installed into a slot.
	SnapshotCaptures = expvar.NewInt("mlv_snapshot_captures")
	SnapshotRestores = expvar.NewInt("mlv_snapshot_restores")
	// SnapshotBytes sums the encoded payload size of every capture.
	SnapshotBytes = expvar.NewInt("mlv_snapshot_bytes")
	// PreemptEvictions counts streams evicted mid-flight from a slot
	// (their checkpoints re-enter the fair queue as resume tokens);
	// PreemptRestores counts evicted streams re-admitted from a token.
	PreemptEvictions = expvar.NewInt("mlv_preempt_evictions")
	PreemptRestores  = expvar.NewInt("mlv_preempt_restores")
	// PreemptRequests counts explicit or automatic preemption triggers
	// (each may evict zero or more slots).
	PreemptRequests = expvar.NewInt("mlv_preempt_requests")
	// DrainCheckpoints counts streams checkpointed because a shutdown
	// drain deadline expired before they finished. Not part of the
	// simtest conservation model (the harness never deadline-drains).
	DrainCheckpoints = expvar.NewInt("mlv_drain_checkpoints")
	// DefragRuns counts defragmentation planner invocations; DefragMoves
	// counts the checkpoint-migrations those runs performed.
	DefragRuns  = expvar.NewInt("mlv_defrag_runs")
	DefragMoves = expvar.NewInt("mlv_defrag_moves")
)

// SnapshotCounters snapshots the checkpoint/restore counters by expvar
// name (the simulation harness diffs two snapshots for snapshot
// conservation; DrainCheckpoints and DefragRuns are excluded from the
// equality model and audited directly).
func SnapshotCounters() map[string]int64 {
	return map[string]int64{
		"mlv_snapshot_captures": SnapshotCaptures.Value(),
		"mlv_snapshot_restores": SnapshotRestores.Value(),
		"mlv_snapshot_bytes":    SnapshotBytes.Value(),
		"mlv_preempt_evictions": PreemptEvictions.Value(),
		"mlv_preempt_restores":  PreemptRestores.Value(),
		"mlv_preempt_requests":  PreemptRequests.Value(),
		"mlv_defrag_moves":      DefragMoves.Value(),
	}
}

// Multi-tenant serving counters. The per-tenant maps are keyed by tenant
// id; they are kept out of Counters() because the simulation harness
// checks them through TenantCounters() with its own per-tenant event
// model, and the serving-path counters above stay tenant-blind.
var (
	// CapacityRejections counts HTTP requests shed for lack of capacity
	// (503 + Retry-After: deploy with no free blocks, serving queue full,
	// lease draining) so load-shedding is observable and clients can back
	// off.
	CapacityRejections = expvar.NewInt("mlv_capacity_rejections")

	// TenantRequests counts admission attempts per tenant (deploys and
	// infer submissions, accepted or not).
	TenantRequests = expvar.NewMap("mlv_tenant_requests")
	// TenantServed counts answered inference requests per tenant.
	TenantServed = expvar.NewMap("mlv_tenant_infers_served")
	// TenantRejections counts per-tenant denials: quota exceeded,
	// in-flight cap hit, and authentication failures attributed to a
	// claimed tenant id.
	TenantRejections = expvar.NewMap("mlv_tenant_rejections")
	// TenantAuthFailures counts signed-request authentication failures by
	// claimed tenant id ("unknown" when the request named no tenant).
	TenantAuthFailures = expvar.NewMap("mlv_tenant_auth_failures")
	// TenantQueueDepth gauges requests waiting in the fair-share queues
	// per tenant (+1 on enqueue, -1 when a batch collects the request).
	TenantQueueDepth = expvar.NewMap("mlv_tenant_queue_depth")
	// TenantBatchRiders counts micro-batch slots occupied per tenant;
	// TenantBatches counts batches that carried at least one of the
	// tenant's requests. Riders/Batches is the tenant's mean batch
	// occupancy.
	TenantBatchRiders = expvar.NewMap("mlv_tenant_batch_riders")
	// TenantBatches counts batches carrying at least one request of the
	// tenant (see TenantBatchRiders).
	TenantBatches = expvar.NewMap("mlv_tenant_batches")
)

// TenantCounters snapshots every per-tenant map by expvar name, then by
// tenant id. The simulation harness diffs two snapshots against its
// per-tenant event model (maps are process-wide, so absolute values are
// meaningless inside a shared test binary).
func TenantCounters() map[string]map[string]int64 {
	out := map[string]map[string]int64{}
	for _, m := range []*expvar.Map{
		TenantRequests, TenantServed, TenantRejections,
		TenantAuthFailures, TenantQueueDepth, TenantBatchRiders, TenantBatches,
	} {
		byTenant := map[string]int64{}
		m.Do(func(kv expvar.KeyValue) {
			if v, ok := kv.Value.(*expvar.Int); ok {
				byTenant[kv.Key] = v.Value()
			}
		})
		out[mapName(m)] = byTenant
	}
	return out
}

// mapName recovers the registered expvar name of one of the package's
// tenant maps (expvar.Map does not expose its name).
func mapName(m *expvar.Map) string {
	switch m {
	case TenantRequests:
		return "mlv_tenant_requests"
	case TenantServed:
		return "mlv_tenant_infers_served"
	case TenantRejections:
		return "mlv_tenant_rejections"
	case TenantAuthFailures:
		return "mlv_tenant_auth_failures"
	case TenantQueueDepth:
		return "mlv_tenant_queue_depth"
	case TenantBatchRiders:
		return "mlv_tenant_batch_riders"
	case TenantBatches:
		return "mlv_tenant_batches"
	}
	return "unknown"
}

// quotaHeadroom holds the callback behind the mlv_tenant_quota_headroom
// expvar (expvar.Publish panics on duplicate names, so the Func is
// registered once and indirects through this swappable pointer — tests
// and servers can install their own view without re-registering).
var quotaHeadroom atomic.Value // of func() any

func init() {
	expvar.Publish("mlv_tenant_quota_headroom", expvar.Func(func() any {
		if fn, ok := quotaHeadroom.Load().(func() any); ok && fn != nil {
			return fn()
		}
		return map[string]any{}
	}))
}

// SetQuotaHeadroom installs the callback that renders per-tenant quota
// headroom (remaining leases/devices/blocks) under /debug/vars.
func SetQuotaHeadroom(fn func() any) { quotaHeadroom.Store(fn) }
