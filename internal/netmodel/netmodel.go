// Package netmodel models the cluster interconnect of the paper's testbed
// (§4.2): FPGAs attach to the host over PCIe and to each other over a
// secondary bidirectional ring network.
//
// The model is analytic: a transfer of B bytes over a path with latency L
// and bandwidth W takes L + B/W. The paper's §4.3 evaluation inserts a
// programmable delay module (counter + FIFO) into the inter-FPGA link to
// sweep added latency; AddedLatency reproduces that knob.
package netmodel

import (
	"errors"
	"fmt"
	"time"
)

// Link is a point-to-point channel with fixed latency and bandwidth.
type Link struct {
	// Latency is the propagation + serialization setup latency per transfer.
	Latency time.Duration
	// BandwidthGBs is the sustained bandwidth in gigabytes per second.
	BandwidthGBs float64
	// AddedLatency models the paper's programmable delay module inserted
	// into the inter-FPGA path for the Fig. 11 sweep.
	AddedLatency time.Duration
}

// ErrBadLink is returned for non-positive bandwidth.
var ErrBadLink = errors.New("netmodel: bandwidth must be positive")

// TransferTime returns the time to move n bytes across the link.
func (l Link) TransferTime(n int64) (time.Duration, error) {
	if l.BandwidthGBs <= 0 {
		return 0, ErrBadLink
	}
	if n < 0 {
		return 0, fmt.Errorf("netmodel: negative transfer size %d", n)
	}
	serialization := time.Duration(float64(n) / (l.BandwidthGBs * 1e9) * float64(time.Second))
	return l.Latency + l.AddedLatency + serialization, nil
}

// DefaultRingLink is the inter-FPGA ring channel: the paper's custom ring
// delivers on the order of a few GB/s with sub-microsecond base latency
// (serial transceiver links between boards).
func DefaultRingLink() Link {
	return Link{Latency: 400 * time.Nanosecond, BandwidthGBs: 3.0}
}

// DefaultPCIeLink is the host attachment (PCIe Gen3 x16 class).
func DefaultPCIeLink() Link {
	return Link{Latency: 900 * time.Nanosecond, BandwidthGBs: 12.0}
}

// Ring is a bidirectional ring of n nodes connected by identical links.
type Ring struct {
	n    int
	link Link
}

// NewRing builds a bidirectional ring over n nodes.
func NewRing(n int, link Link) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("netmodel: ring needs at least 1 node, got %d", n)
	}
	if link.BandwidthGBs <= 0 {
		return nil, ErrBadLink
	}
	return &Ring{n: n, link: link}, nil
}

// Nodes returns the ring size.
func (r *Ring) Nodes() int { return r.n }

// Hops returns the hop count of the shortest direction between nodes a and
// b on the bidirectional ring.
func (r *Ring) Hops(a, b int) (int, error) {
	if a < 0 || a >= r.n || b < 0 || b >= r.n {
		return 0, fmt.Errorf("netmodel: node out of range: %d,%d (ring size %d)", a, b, r.n)
	}
	cw := (b - a + r.n) % r.n
	ccw := (a - b + r.n) % r.n
	if ccw < cw {
		return ccw, nil
	}
	return cw, nil
}

// TransferTime returns the time to move n bytes from node a to node b,
// paying the per-hop link latency once per hop but serializing only once
// (cut-through routing). The AddedLatency knob is charged once per
// transfer, matching the paper's single inserted delay module.
func (r *Ring) TransferTime(a, b int, n int64) (time.Duration, error) {
	hops, err := r.Hops(a, b)
	if err != nil {
		return 0, err
	}
	if hops == 0 {
		return 0, nil
	}
	if n < 0 {
		return 0, fmt.Errorf("netmodel: negative transfer size %d", n)
	}
	serialization := time.Duration(float64(n) / (r.link.BandwidthGBs * 1e9) * float64(time.Second))
	return time.Duration(hops)*r.link.Latency + r.link.AddedLatency + serialization, nil
}

// AllGatherTime models the per-step all-gather of a scaled-out deployment
// whose members each contribute shardBytes: every member broadcasts its
// shard while receiving the others'. The modelled time is the worst-case
// member-to-member hop latency plus serialization of the (k-1) incoming
// shards, charged once per step (the sync modules pipeline the two ring
// directions). The control plane uses this to veto depth scale-ups whose
// communication cost would eat the throughput gain.
func (r *Ring) AllGatherTime(members []int, shardBytes int64) (time.Duration, error) {
	if len(members) <= 1 {
		return 0, nil
	}
	if shardBytes < 0 {
		return 0, fmt.Errorf("netmodel: negative shard size %d", shardBytes)
	}
	worst := 0
	for i, a := range members {
		for _, b := range members[i+1:] {
			hops, err := r.Hops(a, b)
			if err != nil {
				return 0, err
			}
			if hops > worst {
				worst = hops
			}
		}
	}
	serialization := time.Duration(float64(shardBytes) * float64(len(members)-1) /
		(r.link.BandwidthGBs * 1e9) * float64(time.Second))
	return time.Duration(worst)*r.link.Latency + r.link.AddedLatency + serialization, nil
}

// WithAddedLatency returns a copy of the ring with the programmable delay
// module set to d.
func (r *Ring) WithAddedLatency(d time.Duration) *Ring {
	link := r.link
	link.AddedLatency = d
	return &Ring{n: r.n, link: link}
}

// Link returns the per-hop link parameters.
func (r *Ring) Link() Link { return r.link }
