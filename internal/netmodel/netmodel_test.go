package netmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{Latency: 100 * time.Nanosecond, BandwidthGBs: 1}
	got, err := l.TransferTime(1000) // 1000 B at 1 GB/s = 1 us
	if err != nil {
		t.Fatal(err)
	}
	want := 100*time.Nanosecond + time.Microsecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestLinkAddedLatency(t *testing.T) {
	l := Link{Latency: 100 * time.Nanosecond, BandwidthGBs: 1, AddedLatency: 600 * time.Nanosecond}
	got, _ := l.TransferTime(0)
	if got != 700*time.Nanosecond {
		t.Errorf("added latency not charged: %v", got)
	}
}

func TestLinkErrors(t *testing.T) {
	if _, err := (Link{BandwidthGBs: 0}).TransferTime(1); err == nil {
		t.Error("zero bandwidth must error")
	}
	if _, err := (Link{BandwidthGBs: 1}).TransferTime(-1); err == nil {
		t.Error("negative size must error")
	}
}

func TestRingHops(t *testing.T) {
	r, err := NewRing(4, DefaultRingLink())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 1}, {3, 1, 2}, {2, 3, 1},
	}
	for _, c := range cases {
		got, err := r.Hops(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := r.Hops(0, 4); err == nil {
		t.Error("out-of-range node must error")
	}
}

func TestRingTransfer(t *testing.T) {
	link := Link{Latency: 100 * time.Nanosecond, BandwidthGBs: 1}
	r, _ := NewRing(4, link)
	got, err := r.TransferTime(0, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*100*time.Nanosecond + time.Microsecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Same node: free.
	if d, _ := r.TransferTime(1, 1, 1000); d != 0 {
		t.Errorf("self transfer = %v, want 0", d)
	}
}

func TestRingWithAddedLatency(t *testing.T) {
	r, _ := NewRing(2, Link{Latency: 100 * time.Nanosecond, BandwidthGBs: 1})
	r2 := r.WithAddedLatency(time.Microsecond)
	base, _ := r.TransferTime(0, 1, 0)
	delayed, _ := r2.TransferTime(0, 1, 0)
	if delayed-base != time.Microsecond {
		t.Errorf("added latency delta = %v, want 1us", delayed-base)
	}
	if r.Link().AddedLatency != 0 {
		t.Error("WithAddedLatency must not mutate the original")
	}
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(0, DefaultRingLink()); err == nil {
		t.Error("empty ring must error")
	}
	if _, err := NewRing(2, Link{}); err == nil {
		t.Error("zero-bandwidth link must error")
	}
}

// Property: hop count is symmetric and at most n/2.
func TestQuickHopsSymmetric(t *testing.T) {
	r, _ := NewRing(7, DefaultRingLink())
	f := func(a, b uint8) bool {
		x, y := int(a%7), int(b%7)
		h1, err1 := r.Hops(x, y)
		h2, err2 := r.Hops(y, x)
		return err1 == nil && err2 == nil && h1 == h2 && h1 <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer time is monotone in transfer size.
func TestQuickTransferMonotone(t *testing.T) {
	r, _ := NewRing(4, DefaultRingLink())
	f := func(a, b uint8, n1, n2 uint32) bool {
		x, y := int(a%4), int(b%4)
		small, big := int64(n1), int64(n2)
		if small > big {
			small, big = big, small
		}
		t1, err1 := r.TransferTime(x, y, small)
		t2, err2 := r.TransferTime(x, y, big)
		return err1 == nil && err2 == nil && t1 <= t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllGatherTime(t *testing.T) {
	ring, err := NewRing(4, Link{Latency: 100 * time.Nanosecond, BandwidthGBs: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Single member: no exchange.
	if d, err := ring.AllGatherTime([]int{2}, 1000); err != nil || d != 0 {
		t.Errorf("1-member all-gather = %v, %v", d, err)
	}
	// Adjacent pair: one hop plus one incoming shard (1000 B at 1 GB/s = 1us).
	d, err := ring.AllGatherTime([]int{0, 1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100*time.Nanosecond + time.Microsecond; d != want {
		t.Errorf("pair all-gather = %v, want %v", d, want)
	}
	// Full ring: worst hop distance is 2, three incoming shards.
	d4, err := ring.AllGatherTime([]int{0, 1, 2, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 200*time.Nanosecond + 3*time.Microsecond; d4 != want {
		t.Errorf("4-way all-gather = %v, want %v", d4, want)
	}
	if d4 <= d {
		t.Error("deeper deployments must pay more for the all-gather")
	}
	if _, err := ring.AllGatherTime([]int{0, 9}, 10); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := ring.AllGatherTime([]int{0, 1}, -1); err == nil {
		t.Error("negative shard size accepted")
	}
}
