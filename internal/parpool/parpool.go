// Package parpool is a minimal bounded worker pool for the framework's
// embarrassingly parallel offline work: per-device-type × per-piece HS
// compilation, the §4.3 instance-catalog sweep, equivalence-oracle
// simulation batches, and the Fig. 12 workload-set simulations.
//
// The pool is deliberately tiny and stdlib-only. Jobs are identified by a
// dense index range [0, n); results are collected positionally, so output
// order — and therefore every downstream artifact — is independent of
// scheduling. With workers <= 1 the pool degenerates to an inline loop,
// reproducing strictly sequential behaviour.
package parpool

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a parallelism knob: values < 1 mean "one worker per
// logical CPU" (the framework-wide default), anything else is taken as-is.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines. It returns the error of the lowest-indexed failing job (so
// error propagation is deterministic regardless of scheduling); once any
// job fails, the context passed to the remaining jobs is cancelled and
// undispatched jobs are skipped. A nil ctx means context.Background().
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		next     int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i, ok := take()
				if !ok {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. Error semantics match ForEach;
// on error the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
