package parpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Error("non-positive parallelism must default to NumCPU")
	}
	if Workers(5) != 5 {
		t.Error("positive parallelism must pass through")
	}
}

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("must not run")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, cap is %d", p, workers)
	}
}

func TestLowestIndexedErrorWins(t *testing.T) {
	wantErr := errors.New("boom-10")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 40, func(_ context.Context, i int) error {
			if i == 10 {
				return wantErr
			}
			if i == 30 {
				return fmt.Errorf("boom-30")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Errorf("workers=%d: err = %v, want lowest-indexed boom-10", workers, err)
		}
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := ForEach(context.Background(), 2, 10000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("a failing job must stop the remaining dispatch")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	started := 0
	err := ForEach(ctx, 2, 1000, func(ctx context.Context, i int) error {
		mu.Lock()
		started++
		if started == 5 {
			cancel()
		}
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if started == 1000 {
		t.Error("cancellation must stop dispatch")
	}
}

func TestMapDiscardsOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map on error = (%v, %v), want (nil, err)", out, err)
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(context.Background(), workers, 64, func(_ context.Context, i int) (int, error) {
			return 31*i + 7, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}
