package partition

import (
	"errors"
	"fmt"
	"testing"

	"mlvfpga/internal/resource"
	"mlvfpga/internal/softblock"
)

// treeDecoder derives an arbitrary (but always structurally valid)
// soft-block tree from fuzz bytes: each byte chooses leaf vs pipeline vs
// data-parallel, child counts, resource weights and stage bandwidths.
// Past the end of the input it reads zeros, so every prefix decodes.
type treeDecoder struct {
	data []byte
	pos  int
	next int
}

func (d *treeDecoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *treeDecoder) id() string {
	d.next++
	return fmt.Sprintf("n%d", d.next)
}

func (d *treeDecoder) leaf() *softblock.Block {
	res := resource.Vector{
		LUTs:   int64(1 + d.byte()%100),
		DSPs:   int64(d.byte() % 8),
		BRAMKb: int64(d.byte() % 16),
	}
	key := fmt.Sprintf("mod%d", d.byte()%4)
	in := 1 + int(d.byte()%64)
	out := 1 + int(d.byte()%64)
	return softblock.NewLeaf(d.id(), key, "top.u", res, in, out)
}

func (d *treeDecoder) build(depth int) *softblock.Block {
	sel := d.byte()
	if depth >= 3 || sel%4 == 0 {
		return d.leaf()
	}
	n := 2 + int(d.byte()%3)
	if sel%2 == 0 {
		kids := make([]*softblock.Block, n)
		for i := range kids {
			kids[i] = d.build(depth + 1)
		}
		bits := make([]int, n-1)
		for i := range bits {
			bits[i] = 1 + int(d.byte()%200)
		}
		return softblock.NewPipeline(d.id(), kids, bits)
	}
	// Data-parallel children must be interchangeable: clone one prototype
	// and re-ID the copies.
	proto := d.build(depth + 1)
	kids := []*softblock.Block{proto}
	for i := 1; i < n; i++ {
		c := proto.Clone()
		c.Walk(func(b *softblock.Block) { b.ID = d.id() })
		kids = append(kids, c)
	}
	return softblock.NewDataParallel(d.id(), kids)
}

// FuzzBisect drives Partition over arbitrary soft-block trees and checks
// the shard ladder's structural guarantees: rungs are consecutive with
// monotonically non-decreasing cut bandwidth, every frontier's shards
// cover exactly the tree's leaves in order (no lost, duplicated or empty
// shard), and shard resources conserve the root's roll-up.
func FuzzBisect(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 3, 9, 1, 40, 7, 2, 120, 0, 60, 3, 1, 14, 200, 90})
	f.Add([]byte{4, 2, 0, 10, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{6, 4, 6, 4, 6, 4, 255, 254, 253, 1, 1, 1, 1, 30, 31, 32, 33, 34, 35, 36, 37, 38})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &treeDecoder{data: data}
		root := d.build(0)
		if err := root.Validate(); err != nil {
			t.Fatalf("generator built an invalid tree: %v\n%s", err, root)
		}
		iterations := int(d.byte() % 4)
		p, err := Partition(root, iterations)
		if err != nil {
			t.Fatalf("Partition(%d iterations): %v\n%s", iterations, err, root)
		}
		max := p.MaxPieces()
		if max < 1 || max > root.NumLeaves() {
			t.Fatalf("MaxPieces %d outside [1, %d leaves]", max, root.NumLeaves())
		}

		ladder := p.Ladder()
		if len(ladder) != max {
			t.Fatalf("ladder has %d rungs, MaxPieces is %d", len(ladder), max)
		}
		prevBits := -1
		for i, rung := range ladder {
			if rung.Pieces != i+1 {
				t.Fatalf("rung %d deploys %d pieces, ladder must be consecutive", i, rung.Pieces)
			}
			if rung.CutBits < prevBits {
				t.Fatalf("ladder cut bits decreased: %d pieces cost %d, %d pieces cost %d",
					rung.Pieces-1, prevBits, rung.Pieces, rung.CutBits)
			}
			prevBits = rung.CutBits
		}

		rootLeaves := root.Leaves()
		for k := 1; k <= max; k++ {
			fr, err := p.Frontier(k)
			if err != nil {
				t.Fatalf("Frontier(%d) with MaxPieces %d: %v", k, max, err)
			}
			if len(fr) != k {
				t.Fatalf("Frontier(%d) returned %d pieces", k, len(fr))
			}
			var got []*softblock.Block
			var luts, dsps int64
			for i, n := range fr {
				ls := n.Block.Leaves()
				if len(ls) == 0 {
					t.Fatalf("Frontier(%d) piece %d is empty", k, i)
				}
				got = append(got, ls...)
				luts += n.Block.Resources.LUTs
				dsps += n.Block.Resources.DSPs
			}
			if len(got) != len(rootLeaves) {
				t.Fatalf("Frontier(%d) shards hold %d leaves, tree has %d", k, len(got), len(rootLeaves))
			}
			for i := range got {
				if got[i] != rootLeaves[i] {
					t.Fatalf("Frontier(%d) leaf %d is %q, tree order says %q", k, i, got[i].ID, rootLeaves[i].ID)
				}
			}
			if luts != root.Resources.LUTs || dsps != root.Resources.DSPs {
				t.Fatalf("Frontier(%d) resources %d LUTs/%d DSPs, root rolls up %d/%d",
					k, luts, dsps, root.Resources.LUTs, root.Resources.DSPs)
			}
		}
		if _, err := p.Frontier(max + 1); !errors.Is(err, ErrTooManyPieces) {
			t.Fatalf("Frontier(MaxPieces+1) = %v, want ErrTooManyPieces", err)
		}
	})
}
