// Package partition implements the partitioning step of the paper's mapping
// process (§2.2.2): the decomposed data-path tree is iteratively bisected so
// the accelerator can be deployed onto multiple FPGAs. The extracted
// parallel patterns prune the search space:
//
//   - a Pipeline block is cut at the inter-stage connection with the
//     minimal communication bandwidth;
//   - a DataParallel block is split evenly into two halves.
//
// With N iterations the result is a binary partition tree whose frontiers
// support deployments onto 1..2^N devices (Fig. 6): e.g. pieces #2, #3 and
// #4 of a 2-iteration tree deploy the accelerator onto 3 FPGAs.
package partition

import (
	"errors"
	"fmt"

	"mlvfpga/internal/softblock"
)

// Node is one vertex of the binary partition tree.
type Node struct {
	// Block is the soft block this node deploys as a unit.
	Block *softblock.Block
	// CutBits is the communication bandwidth (bits per element) crossing
	// the cut between Left and Right. Zero for data-parallel splits (the
	// halves do not talk to each other in steady state) and for
	// unsplittable nodes.
	CutBits int
	// CutKind records which pattern was split.
	CutKind softblock.Kind
	// Left and Right are the two halves; nil for an unsplit node.
	Left, Right *Node
}

// IsLeaf reports whether the node was not split further.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Result is the partition tree plus bookkeeping.
type Result struct {
	Root       *Node
	Iterations int
}

// ErrAtomic is returned when a requested split cannot proceed because the
// block is a leaf soft block (a basic module is never divided).
var ErrAtomic = errors.New("partition: block is atomic")

// ErrTooManyPieces is returned when a frontier of the requested size does
// not exist.
var ErrTooManyPieces = errors.New("partition: not enough partition-tree leaves")

// Partition bisects the data-path block for the given number of iterations.
// Atomic blocks simply stop splitting — the tree may be shallower than
// requested on some branches, matching the paper's observation that one or
// two iterations suffice for most designs.
func Partition(data *softblock.Block, iterations int) (*Result, error) {
	if data == nil {
		return nil, errors.New("partition: nil block")
	}
	if iterations < 0 {
		return nil, fmt.Errorf("partition: negative iteration count %d", iterations)
	}
	root := &Node{Block: data}
	frontier := []*Node{root}
	for it := 0; it < iterations; it++ {
		var next []*Node
		for _, n := range frontier {
			l, r, cutBits, kind, err := bisect(n.Block)
			if errors.Is(err, ErrAtomic) {
				next = append(next, n)
				continue
			}
			if err != nil {
				return nil, err
			}
			n.Left = &Node{Block: l}
			n.Right = &Node{Block: r}
			n.CutBits = cutBits
			n.CutKind = kind
			next = append(next, n.Left, n.Right)
		}
		frontier = next
	}
	return &Result{Root: root, Iterations: iterations}, nil
}

// bisect splits one soft block into two clusters following §2.2.2.
func bisect(b *softblock.Block) (left, right *softblock.Block, cutBits int, kind softblock.Kind, err error) {
	switch b.Kind {
	case softblock.Leaf:
		return nil, nil, 0, b.Kind, ErrAtomic

	case softblock.Pipeline:
		cut := minBandwidthCut(b)
		left = sliceAsBlock(b, 0, cut+1, "L")
		right = sliceAsBlock(b, cut+1, len(b.Children), "R")
		return left, right, b.StageBits[cut], softblock.Pipeline, nil

	case softblock.DataParallel:
		k := len(b.Children)
		if k < 2 {
			return nil, nil, 0, b.Kind, ErrAtomic
		}
		half := k / 2
		left = groupAsBlock(b, b.Children[:half], "L")
		right = groupAsBlock(b, b.Children[half:], "R")
		return left, right, 0, softblock.DataParallel, nil
	}
	return nil, nil, 0, b.Kind, fmt.Errorf("partition: unknown kind %v", b.Kind)
}

// minBandwidthCut returns the index of the inter-stage connection with the
// minimal bandwidth; ties break toward the most resource-balanced cut.
func minBandwidthCut(b *softblock.Block) int {
	best := 0
	bestBits := b.StageBits[0]
	bestImb := imbalanceAfterCut(b, 0)
	for i := 1; i < len(b.StageBits); i++ {
		imb := imbalanceAfterCut(b, i)
		if b.StageBits[i] < bestBits || (b.StageBits[i] == bestBits && imb < bestImb) {
			best, bestBits, bestImb = i, b.StageBits[i], imb
		}
	}
	return best
}

// imbalanceAfterCut scores the resource imbalance of cutting after stage i
// (lower is better), using LUTs+DSPs as the packing-critical classes.
func imbalanceAfterCut(b *softblock.Block, i int) int64 {
	var left, right int64
	for j, c := range b.Children {
		w := c.Resources.LUTs + 100*c.Resources.DSPs
		if j <= i {
			left += w
		} else {
			right += w
		}
	}
	if left > right {
		return left - right
	}
	return right - left
}

// sliceAsBlock wraps children [lo,hi) of a pipeline as a block.
func sliceAsBlock(b *softblock.Block, lo, hi int, tag string) *softblock.Block {
	if hi-lo == 1 {
		return b.Children[lo]
	}
	kids := append([]*softblock.Block{}, b.Children[lo:hi]...)
	bits := append([]int{}, b.StageBits[lo:hi-1]...)
	return softblock.NewPipeline(b.ID+"/"+tag, kids, bits)
}

// groupAsBlock wraps a subset of data-parallel children as a block.
func groupAsBlock(b *softblock.Block, kids []*softblock.Block, tag string) *softblock.Block {
	if len(kids) == 1 {
		return kids[0]
	}
	return softblock.NewDataParallel(b.ID+"/"+tag, append([]*softblock.Block{}, kids...))
}

// MaxPieces returns the number of leaves of the partition tree — the
// largest supported deployment.
func (r *Result) MaxPieces() int { return countLeaves(r.Root) }

func countLeaves(n *Node) int {
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Frontier returns a deployment of exactly k pieces: starting from the
// root, the piece with the largest resource demand is split until k pieces
// exist. This is how the runtime picks mapping results for a k-FPGA
// deployment (Fig. 6).
func (r *Result) Frontier(k int) ([]*Node, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: frontier size %d", k)
	}
	if k > r.MaxPieces() {
		return nil, fmt.Errorf("%w: want %d pieces, have %d", ErrTooManyPieces, k, r.MaxPieces())
	}
	frontier := []*Node{r.Root}
	for len(frontier) < k {
		// Split the heaviest splittable piece.
		bestIdx := -1
		var bestW int64 = -1
		for i, n := range frontier {
			if n.IsLeaf() {
				continue
			}
			w := weight(n.Block)
			if w > bestW {
				bestW, bestIdx = w, i
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("%w: want %d pieces", ErrTooManyPieces, k)
		}
		n := frontier[bestIdx]
		frontier = append(frontier[:bestIdx], append([]*Node{n.Left, n.Right}, frontier[bestIdx+1:]...)...)
	}
	return frontier, nil
}

func weight(b *softblock.Block) int64 {
	return b.Resources.LUTs + 100*b.Resources.DSPs + b.Resources.BRAMKb
}

// TotalCutBits sums the cut bandwidths of the internal nodes above the
// given frontier — the total inter-FPGA communication bandwidth of that
// deployment.
func (r *Result) TotalCutBits(frontier []*Node) int {
	inFrontier := map[*Node]bool{}
	for _, n := range frontier {
		inFrontier[n] = true
	}
	total := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if inFrontier[n] || n.IsLeaf() {
			return
		}
		total += n.CutBits
		walk(n.Left)
		walk(n.Right)
	}
	walk(r.Root)
	return total
}

// Rung is one supported deployment depth of the partition tree: deploying
// onto Pieces devices costs CutBits of inter-device bandwidth per element.
type Rung struct {
	// Pieces is the deployment's device count.
	Pieces int
	// CutBits is the total communication bandwidth (bits per element)
	// crossing the cuts above this frontier — what the runtime pays the
	// interconnect for every step at this depth.
	CutBits int
}

// Ladder enumerates every supported deployment depth with its
// communication cost: rung k deploys the accelerator onto k devices
// (Fig. 6's 1..2^N ladder). The cluster control plane walks this ladder
// when trading extra devices (throughput) against inter-device traffic.
func (r *Result) Ladder() []Rung {
	max := r.MaxPieces()
	out := make([]Rung, 0, max)
	for k := 1; k <= max; k++ {
		frontier, err := r.Frontier(k)
		if err != nil {
			// Frontier(k) for k <= MaxPieces only fails on degenerate
			// trees; skip the rung rather than invent a cost.
			continue
		}
		out = append(out, Rung{Pieces: k, CutBits: r.TotalCutBits(frontier)})
	}
	return out
}

// Walk visits every node of the partition tree, parents first.
func (r *Result) Walk(fn func(*Node, int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fn(n, depth)
		if !n.IsLeaf() {
			rec(n.Left, depth+1)
			rec(n.Right, depth+1)
		}
	}
	rec(r.Root, 0)
}

// AllPieces lists every node in the tree (every deployable unit the
// compiler must map onto each HS abstraction).
func (r *Result) AllPieces() []*Node {
	var out []*Node
	r.Walk(func(n *Node, _ int) { out = append(out, n) })
	return out
}
