package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mlvfpga/internal/resource"
	"mlvfpga/internal/softblock"
)

func leaf(id string, luts int64) *softblock.Block {
	return softblock.NewLeaf(id, "m_"+id, "", resource.Vector{LUTs: luts}, 32, 32)
}

func simdLeaf(id string) *softblock.Block {
	return softblock.NewLeaf(id, "simd", "", resource.Vector{LUTs: 100, DSPs: 4}, 32, 32)
}

func TestPartitionPipelineMinCut(t *testing.T) {
	// Pipeline a-b-c-d with bandwidths 64, 8, 64: must cut at the 8-bit edge.
	p := softblock.NewPipeline("p", []*softblock.Block{
		leaf("a", 10), leaf("b", 10), leaf("c", 10), leaf("d", 10),
	}, []int{64, 8, 64})
	res, err := Partition(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root
	if root.IsLeaf() {
		t.Fatal("pipeline must split")
	}
	if root.CutBits != 8 || root.CutKind != softblock.Pipeline {
		t.Errorf("cut = %d bits kind %v, want 8 bits pipeline", root.CutBits, root.CutKind)
	}
	if root.Left.Block.NumLeaves() != 2 || root.Right.Block.NumLeaves() != 2 {
		t.Errorf("split shape = %d/%d leaves", root.Left.Block.NumLeaves(), root.Right.Block.NumLeaves())
	}
}

func TestPartitionPipelineTieBreaksBalanced(t *testing.T) {
	// Equal bandwidths: prefer the resource-balanced cut.
	p := softblock.NewPipeline("p", []*softblock.Block{
		leaf("a", 10), leaf("b", 10), leaf("c", 10), leaf("d", 10),
	}, []int{32, 32, 32})
	res, err := Partition(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root.Left.Block.NumLeaves() != 2 {
		t.Errorf("tie must cut in the middle, got %d/%d",
			res.Root.Left.Block.NumLeaves(), res.Root.Right.Block.NumLeaves())
	}
}

func TestPartitionDataEvenSplit(t *testing.T) {
	d := softblock.NewDataParallel("d", []*softblock.Block{
		simdLeaf("x0"), simdLeaf("x1"), simdLeaf("x2"), simdLeaf("x3"), simdLeaf("x4"), simdLeaf("x5"),
	})
	res, err := Partition(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root
	if root.CutBits != 0 || root.CutKind != softblock.DataParallel {
		t.Errorf("data cut = %d bits kind %v", root.CutBits, root.CutKind)
	}
	if root.Left.Block.NumLeaves() != 3 || root.Right.Block.NumLeaves() != 3 {
		t.Errorf("uneven split: %d/%d", root.Left.Block.NumLeaves(), root.Right.Block.NumLeaves())
	}
}

func TestPartitionAtomicStops(t *testing.T) {
	l := leaf("solo", 10)
	res, err := Partition(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Root.IsLeaf() {
		t.Error("atomic block must not split")
	}
	if res.MaxPieces() != 1 {
		t.Errorf("MaxPieces = %d", res.MaxPieces())
	}
}

func TestPartitionTwoIterations(t *testing.T) {
	d := softblock.NewDataParallel("d", []*softblock.Block{
		simdLeaf("x0"), simdLeaf("x1"), simdLeaf("x2"), simdLeaf("x3"),
	})
	res, err := Partition(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPieces() != 4 {
		t.Errorf("MaxPieces = %d, want 4", res.MaxPieces())
	}
	// Every frontier size 1..4 must exist (Fig. 6).
	for k := 1; k <= 4; k++ {
		fr, err := res.Frontier(k)
		if err != nil {
			t.Fatalf("Frontier(%d): %v", k, err)
		}
		if len(fr) != k {
			t.Fatalf("Frontier(%d) has %d pieces", k, len(fr))
		}
		total := 0
		for _, n := range fr {
			total += n.Block.NumLeaves()
		}
		if total != 4 {
			t.Errorf("Frontier(%d) covers %d leaves, want 4", k, total)
		}
	}
	if _, err := res.Frontier(5); !errors.Is(err, ErrTooManyPieces) {
		t.Errorf("Frontier(5) = %v, want ErrTooManyPieces", err)
	}
	if _, err := res.Frontier(0); err == nil {
		t.Error("Frontier(0) must error")
	}
}

func TestPartitionNested(t *testing.T) {
	// data(pipeline(a,b) x4): first split is data-even; second splits each
	// half's pipelines at the min-bandwidth edge? No: halves are data blocks
	// of 2 lanes, so the second iteration splits them evenly again.
	lanes := make([]*softblock.Block, 4)
	for i := range lanes {
		lanes[i] = softblock.NewPipeline(
			fmt.Sprintf("lane%d", i),
			[]*softblock.Block{simdLeaf(fmt.Sprintf("a%d", i)), simdLeaf(fmt.Sprintf("b%d", i))},
			[]int{16},
		)
	}
	root := softblock.NewDataParallel("root", lanes)
	res, err := Partition(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPieces() != 4 {
		t.Fatalf("MaxPieces = %d, want 4", res.MaxPieces())
	}
	fr, _ := res.Frontier(4)
	for _, n := range fr {
		if n.Block.Kind != softblock.Pipeline {
			t.Errorf("4-piece frontier must be single lanes, got %v", n.Block.Kind)
		}
	}
	// Data splits carry no cut bandwidth.
	if bits := res.TotalCutBits(fr); bits != 0 {
		t.Errorf("TotalCutBits = %d, want 0 for data splits", bits)
	}
}

func TestTotalCutBitsPipeline(t *testing.T) {
	p := softblock.NewPipeline("p", []*softblock.Block{
		leaf("a", 10), leaf("b", 10), leaf("c", 10), leaf("d", 10),
	}, []int{64, 8, 64})
	res, err := Partition(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := res.Frontier(res.MaxPieces())
	// All three cuts pay off: 8 + 64 + 64.
	if bits := res.TotalCutBits(full); bits != 136 {
		t.Errorf("TotalCutBits(full) = %d, want 136", bits)
	}
	two, _ := res.Frontier(2)
	if bits := res.TotalCutBits(two); bits != 8 {
		t.Errorf("TotalCutBits(2) = %d, want 8 (min cut only)", bits)
	}
	one, _ := res.Frontier(1)
	if bits := res.TotalCutBits(one); bits != 0 {
		t.Errorf("TotalCutBits(1) = %d, want 0", bits)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(nil, 1); err == nil {
		t.Error("nil block must error")
	}
	if _, err := Partition(leaf("a", 1), -1); err == nil {
		t.Error("negative iterations must error")
	}
}

func TestAllPiecesCount(t *testing.T) {
	d := softblock.NewDataParallel("d", []*softblock.Block{
		simdLeaf("x0"), simdLeaf("x1"), simdLeaf("x2"), simdLeaf("x3"),
	})
	res, _ := Partition(d, 2)
	// Full binary tree with 4 leaves: 7 nodes.
	if got := len(res.AllPieces()); got != 7 {
		t.Errorf("AllPieces = %d, want 7", got)
	}
}

// Property: every frontier conserves the leaf soft blocks (no leaf lost or
// duplicated) and piece resources sum to the whole.
func TestQuickFrontierConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		kids := make([]*softblock.Block, n)
		for i := range kids {
			kids[i] = simdLeaf(fmt.Sprintf("x%d", i))
		}
		var root *softblock.Block
		if r.Intn(2) == 0 {
			root = softblock.NewDataParallel("root", kids)
		} else {
			bits := make([]int, n-1)
			for i := range bits {
				bits[i] = 8 * (1 + r.Intn(16))
			}
			root = softblock.NewPipeline("root", kids, bits)
		}
		res, err := Partition(root, 1+r.Intn(3))
		if err != nil {
			return false
		}
		for k := 1; k <= res.MaxPieces(); k++ {
			fr, err := res.Frontier(k)
			if err != nil {
				return false
			}
			var sum resource.Vector
			leaves := 0
			for _, nd := range fr {
				sum = sum.Add(nd.Block.Resources)
				leaves += nd.Block.NumLeaves()
			}
			if leaves != n || sum != root.Resources {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the chosen pipeline cut bandwidth is minimal among all edges.
func TestQuickMinCutIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		kids := make([]*softblock.Block, n)
		for i := range kids {
			kids[i] = leaf(fmt.Sprintf("x%d", i), int64(10+r.Intn(100)))
		}
		bits := make([]int, n-1)
		min := 1 << 30
		for i := range bits {
			bits[i] = 8 * (1 + r.Intn(64))
			if bits[i] < min {
				min = bits[i]
			}
		}
		p := softblock.NewPipeline("p", kids, bits)
		res, err := Partition(p, 1)
		if err != nil {
			return false
		}
		return res.Root.CutBits == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLadder(t *testing.T) {
	// Pipeline a-b-c-d with bandwidths 64, 8, 64, partitioned twice:
	// depth 1 costs nothing, depth 2 pays the 8-bit min cut, depth 4 pays
	// every cut.
	p := softblock.NewPipeline("p", []*softblock.Block{
		leaf("a", 10), leaf("b", 10), leaf("c", 10), leaf("d", 10),
	}, []int{64, 8, 64})
	res, err := Partition(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ladder := res.Ladder()
	if len(ladder) != res.MaxPieces() {
		t.Fatalf("ladder has %d rungs, want %d", len(ladder), res.MaxPieces())
	}
	if ladder[0] != (Rung{Pieces: 1, CutBits: 0}) {
		t.Errorf("rung 1 = %+v, want free single-device deployment", ladder[0])
	}
	if ladder[1] != (Rung{Pieces: 2, CutBits: 8}) {
		t.Errorf("rung 2 = %+v, want the 8-bit min cut", ladder[1])
	}
	last := ladder[len(ladder)-1]
	if last.Pieces != res.MaxPieces() || last.CutBits != 64+8+64 {
		t.Errorf("deepest rung = %+v, want all cuts paid (%d bits)", last, 64+8+64)
	}
	// Cost must be monotonic: more devices never talk less.
	for i := 1; i < len(ladder); i++ {
		if ladder[i].CutBits < ladder[i-1].CutBits {
			t.Errorf("ladder cost not monotonic: %+v after %+v", ladder[i], ladder[i-1])
		}
	}
}
