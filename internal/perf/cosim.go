package perf

import (
	"fmt"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
)

// FromStats derives an inference latency from the functional simulator's
// execution statistics instead of the analytic per-step formula: every
// executed instruction pays its issue slot, the measured MACs flow through
// the tile engines, and the measured element operations through the MFUs.
//
// This is the co-simulation path: running a kernel on internal/accel and
// feeding its ExecStats here must agree with the analytic Baseline for the
// same layer (the suite asserts a few-percent match), which ties the
// timing model to what the programs actually execute rather than to
// hand-counted instruction totals.
func FromStats(st accel.ExecStats, inst Instance, p Params) (Breakdown, error) {
	issuePer, ok := p.IssueCyclesPerInstr[inst.Device]
	if !ok {
		return Breakdown{}, fmt.Errorf("perf: no issue calibration for device %q", inst.Device)
	}
	issue := issuePer * float64(st.Instructions)

	macsPerCycle := float64(inst.Tiles) * hsvital.TileMACsPerCycle
	nMVM := float64(st.ByOp[isa.OpMVMul])
	mvm := float64(st.MACs)/macsPerCycle + nMVM*p.MVMFillCycles

	lanes := float64(inst.Tiles) * p.VecLanesPerTile
	nVec := 0.0
	for op, count := range st.ByOp {
		switch op {
		case isa.OpVVAdd, isa.OpVVSub, isa.OpVVMul,
			isa.OpVSigm, isa.OpVTanh, isa.OpVRelu, isa.OpVPass,
			isa.OpVConst, isa.OpVRsub, isa.OpVExp, isa.OpVRecip:
			nVec += float64(count)
		}
	}
	vec := float64(st.VectorOps)/lanes + nVec*p.VecFillCycles

	cycles := issue + mvm + vec
	total := p.InvokeOverhead + cyclesToTime(cycles, inst.ClockMHz)
	return Breakdown{
		Instance:    inst,
		IssueCycles: issue,
		MVMCycles:   mvm,
		VecCycles:   vec,
		StepTime:    cyclesToTime(cycles, inst.ClockMHz),
		Invoke:      p.InvokeOverhead,
		Total:       total,
	}, nil
}

// Cosim builds a kernel for the layer, executes it functionally on the AS
// ISA simulator with zero inputs, and returns both the stats-derived and
// the analytic latencies for comparison.
func Cosim(spec kernels.LayerSpec, inst Instance, p Params, seed int64) (fromStats, analytic Breakdown, err error) {
	w := kernels.RandomWeights(spec.Kind, spec.Hidden, seed)
	k, err := kernels.Build(w, spec.TimeSteps, inst.Tiles)
	if err != nil {
		return Breakdown{}, Breakdown{}, err
	}
	// Functional execution only measures instruction/op counts; a narrow
	// mantissa is fine and fast.
	m, err := k.NewMachine()
	if err != nil {
		return Breakdown{}, Breakdown{}, err
	}
	if err := m.Run(k.Prog); err != nil {
		return Breakdown{}, Breakdown{}, err
	}
	fromStats, err = FromStats(m.Stats(), inst, p)
	if err != nil {
		return Breakdown{}, Breakdown{}, err
	}
	analytic = Baseline(spec, inst, p)
	return fromStats, analytic, nil
}
