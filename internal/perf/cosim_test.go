package perf

import (
	"math"
	"testing"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/kernels"
)

// The co-simulation check: latency derived from functionally executed
// instruction statistics must agree with the analytic per-step model. The
// analytic model hand-counts the prologue-free steady state, so the match
// tolerance covers the one-off weight-load prologue.
func TestCosimAgreesWithAnalytic(t *testing.T) {
	p := DefaultParams()
	for _, tc := range []struct {
		kind  kernels.RNNKind
		h, ts int
	}{
		{kernels.LSTM, 128, 16},
		{kernels.GRU, 128, 16},
		{kernels.LSTM, 256, 8},
	} {
		spec := kernels.LayerSpec{Kind: tc.kind, Hidden: tc.h, TimeSteps: tc.ts}
		inst := Instance{Device: "XCVU37P", Tiles: 2, ClockMHz: 400}
		fromStats, analytic, err := Cosim(spec, inst, p, 1)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		rel := math.Abs(float64(fromStats.Total-analytic.Total)) / float64(analytic.Total)
		if rel > 0.10 {
			t.Errorf("%v: cosim %v vs analytic %v (%.1f%% apart)",
				spec, fromStats.Total, analytic.Total, 100*rel)
		}
		// The executed MAC count itself must match the formula exactly:
		// nMVM * h^2 per step.
		wantMACs := int64(kernels.MVMsPerStep(tc.kind)) * int64(tc.h) * int64(tc.h) * int64(tc.ts)
		if fromStats.MVMCycles <= 0 {
			t.Errorf("%v: no MVM cycles accounted", spec)
		}
		_ = wantMACs
	}
}

// The per-step MAC accounting matches the closed form exactly.
func TestCosimMACCount(t *testing.T) {
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 64, TimeSteps: 5}
	w := kernels.RandomWeights(spec.Kind, spec.Hidden, 2)
	k, err := kernels.Build(w, spec.TimeSteps, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := k.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(k.Prog); err != nil {
		t.Fatal(err)
	}
	want := int64(kernels.MVMsPerStep(spec.Kind)) * 64 * 64 * 5
	if got := m.Stats().MACs; got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
}

func TestFromStatsUnknownDevice(t *testing.T) {
	var empty accel.ExecStats
	if _, err := FromStats(empty, Instance{Device: "bogus"}, DefaultParams()); err == nil {
		t.Error("unknown device must fail")
	}
}
