// Package perf is the analytic timing model for GRU/LSTM inference on the
// BrainWave-like accelerator (paper §4.3, Table 4 and Fig. 11).
//
// The model is cycle-accounting: one inference of t timesteps costs a
// fixed invocation overhead (host/PCIe/chain setup) plus t per-step times.
// One step costs
//
//	issue   — in-order instruction issue, per instruction;
//	mvm     — matrix-vector multiplies: MACs / (tiles * TileMACsPerCycle)
//	          plus a pipeline fill per MVM;
//	vec     — MFU element-wise/activation passes.
//
// Virtualization (mapping onto ViTAL virtual blocks) adds the
// latency-insensitive interface cost: elastic-handshake stalls as a
// fraction of issue/compute cycles plus boundary-hop latency per step.
// Constants are calibrated against the paper's Table 4; EXPERIMENTS.md
// records the per-row deltas.
package perf

import (
	"errors"
	"fmt"
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/resource"
)

// Params are the calibration constants of the timing model.
type Params struct {
	// IssueCyclesPerInstr is the per-device in-order issue cost.
	IssueCyclesPerInstr map[string]float64
	// MVMFillCycles is the tile-engine pipeline fill per mv_mul.
	MVMFillCycles float64
	// VecFillCycles is the MFU pipeline fill per vector instruction.
	VecFillCycles float64
	// VecLanesPerTile is the MFU element throughput per tile per cycle.
	VecLanesPerTile float64
	// InvokeOverhead is the fixed per-inference cost (host, PCIe, chain
	// launch).
	InvokeOverhead time.Duration
	// WeightBitsPerValue is the effective on-chip storage per weight
	// (BFP mantissa plus amortized shared exponent and packing).
	WeightBitsPerValue float64
	// StallIssueFrac / StallComputeFrac are the virtualization throughput
	// losses of the latency-insensitive interfaces, applied to issue and
	// compute cycles respectively.
	StallIssueFrac   float64
	StallComputeFrac float64
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		IssueCyclesPerInstr: map[string]float64{
			"XCVU37P": 42,
			"XCKU115": 88,
		},
		MVMFillCycles:      40,
		VecFillCycles:      12,
		VecLanesPerTile:    128,
		InvokeOverhead:     8 * time.Microsecond,
		WeightBitsPerValue: 1.82,
		StallIssueFrac:     0.05,
		StallComputeFrac:   0.10,
	}
}

// Instance is one accelerator instance deployed for a task.
type Instance struct {
	Device   string
	Tiles    int
	ClockMHz float64
}

// ErrDoesNotFit is returned when a layer's weights exceed the device's
// on-chip storage even at the maximum tile count — the Table 4 "-" entry
// (LSTM h=1536 on XCKU115).
var ErrDoesNotFit = errors.New("perf: layer does not fit device")

// WeightKb returns the on-chip weight storage a layer needs.
func WeightKb(spec kernels.LayerSpec, p Params) float64 {
	nMat := float64(matCount(spec.Kind))
	bits := nMat * float64(spec.Hidden) * float64(spec.Hidden) * p.WeightBitsPerValue
	return bits / 1024
}

// matCount is the number of h×h weight matrices the cell holds resident:
// W*+U* pairs for the recurrent cells, the four projections for attention
// (whose recurrence runs through vector accumulators, not matrices).
func matCount(kind kernels.RNNKind) int {
	switch kind {
	case kernels.LSTM:
		return 8
	case kernels.Attention:
		return 4
	}
	return 6
}

// gateCount is the number of input-dependent (W*·x) products per step:
// one per gate for LSTM/GRU, the q/k/v projections for attention.
func gateCount(kind kernels.RNNKind) int {
	if kind == kernels.LSTM {
		return 4
	}
	return 3
}

// weightFrac is the share of a tile's memory that can hold weights. On the
// XCVU37P the deep URAMs store weights almost exclusively; on the BRAM-only
// XCKU115 the same BRAMs also serve vectors, buffers and the latency-
// insensitive interfaces, leaving a smaller share (§3 discusses exactly
// this memory-organization asymmetry).
var weightFrac = map[string]float64{
	"XCVU37P": 0.99,
	"XCKU115": 0.79,
}

// tileWeightKb returns the weight storage one tile provides on a device.
func tileWeightKb(device string) (float64, error) {
	tile, err := hsvital.PerTileResources(device)
	if err != nil {
		return 0, err
	}
	frac, ok := weightFrac[device]
	if !ok {
		frac = 0.9
	}
	return frac * float64(tile.BRAMKb+tile.URAMKb), nil
}

// DeviceWeightCapacityKb is the total on-chip weight storage of the
// largest instance on a device.
func DeviceWeightCapacityKb(device string) (float64, error) {
	perTile, err := tileWeightKb(device)
	if err != nil {
		return 0, err
	}
	return perTile * float64(hsvital.MaxTiles(device)), nil
}

// MinTiles returns the smallest instance whose on-chip memory holds the
// layer's weights on the device.
func MinTiles(spec kernels.LayerSpec, device string) (int, error) {
	return minTilesWith(spec, device, DefaultParams())
}

func minTilesWith(spec kernels.LayerSpec, device string, p Params) (int, error) {
	perTile, err := tileWeightKb(device)
	if err != nil {
		return 0, err
	}
	need := WeightKb(spec, p)
	tiles := int(need/perTile) + 1
	if float64(tiles-1)*perTile >= need {
		tiles--
	}
	if tiles < 1 {
		tiles = 1
	}
	if tiles > hsvital.MaxTiles(device) {
		return 0, fmt.Errorf("%w: %v needs %d tiles, %s holds %d",
			ErrDoesNotFit, spec, tiles, device, hsvital.MaxTiles(device))
	}
	return tiles, nil
}

// MinTilesScaled returns the per-device instance size when the layer's
// weights are sharded row-wise across nDevices scaled-down accelerators
// (the §2.3 scale-out transform).
func MinTilesScaled(spec kernels.LayerSpec, device string, nDevices int) (int, error) {
	if nDevices < 1 {
		return 0, fmt.Errorf("perf: nDevices = %d", nDevices)
	}
	p := DefaultParams()
	perTile, err := tileWeightKb(device)
	if err != nil {
		return 0, err
	}
	need := WeightKb(spec, p) / float64(nDevices)
	tiles := int(need/perTile) + 1
	if float64(tiles-1)*perTile >= need {
		tiles--
	}
	if tiles < 1 {
		tiles = 1
	}
	if tiles > hsvital.MaxTiles(device) {
		return 0, fmt.Errorf("%w: %v needs %d tiles per device across %d devices, %s holds %d",
			ErrDoesNotFit, spec, tiles, nDevices, device, hsvital.MaxTiles(device))
	}
	return tiles, nil
}

// ChooseInstance picks the instance the runtime would deploy for a layer
// on a device: the smallest tile count whose memory holds the weights
// (minimizing allocated resources, §2.3's greedy policy).
func ChooseInstance(spec kernels.LayerSpec, device string) (Instance, error) {
	tiles, err := MinTiles(spec, device)
	if err != nil {
		return Instance{}, err
	}
	m, err := hsvital.CalibratedAccelerator(device, tiles)
	if err != nil {
		return Instance{}, err
	}
	return Instance{Device: device, Tiles: tiles, ClockMHz: m.ClockMHz}, nil
}

// Breakdown itemizes one inference's modelled time.
type Breakdown struct {
	Spec     kernels.LayerSpec
	Instance Instance

	IssueCycles float64 // per step
	MVMCycles   float64 // per step
	VecCycles   float64 // per step
	HopCycles   float64 // per step (virtualized only)
	StallFrac   float64 // effective stall applied (virtualized only)

	StepTime time.Duration
	Invoke   time.Duration
	Total    time.Duration
}

// stepCycles computes the baseline per-step cycle breakdown.
func stepCycles(spec kernels.LayerSpec, inst Instance, p Params) (issue, mvm, vec float64) {
	h := float64(spec.Hidden)
	nInstr := float64(kernels.StepInstructions(spec.Kind))
	issue = p.IssueCyclesPerInstr[inst.Device] * nInstr

	nMVM := float64(kernels.MVMsPerStep(spec.Kind))
	macsPerCycle := float64(inst.Tiles) * hsvital.TileMACsPerCycle
	mvm = nMVM * (h*h/macsPerCycle + p.MVMFillCycles)

	nVec := nInstr - nMVM - 2 // minus the per-step v_rd and v_wr
	lanes := float64(inst.Tiles) * p.VecLanesPerTile
	vec = nVec * (h/lanes + p.VecFillCycles)
	return issue, mvm, vec
}

// Baseline models one inference on the non-virtualized accelerator (the
// AS ISA-only baseline system of Table 4).
func Baseline(spec kernels.LayerSpec, inst Instance, p Params) Breakdown {
	issue, mvm, vec := stepCycles(spec, inst, p)
	cyclesPerStep := issue + mvm + vec
	step := cyclesToTime(cyclesPerStep, inst.ClockMHz)
	total := p.InvokeOverhead + time.Duration(spec.TimeSteps)*step
	return Breakdown{
		Spec: spec, Instance: inst,
		IssueCycles: issue, MVMCycles: mvm, VecCycles: vec,
		StepTime: step, Invoke: p.InvokeOverhead, Total: total,
	}
}

// Virtualized models the same inference with the accelerator mapped onto
// ViTAL virtual blocks: handshake stalls scale issue/compute cycles and
// each latency-insensitive boundary hop adds pipeline latency per step.
// hops comes from hsvital.Image.Hops.
func Virtualized(spec kernels.LayerSpec, inst Instance, hops int, p Params) (Breakdown, error) {
	vspec, err := hsvital.SpecFor(inst.Device)
	if err != nil {
		return Breakdown{}, err
	}
	issue, mvm, vec := stepCycles(spec, inst, p)
	issueV := issue * (1 + p.StallIssueFrac)
	computeV := (mvm + vec) * (1 + p.StallComputeFrac)
	hopCycles := float64(hops * vspec.InterfaceLatencyCycles)
	cyclesPerStep := issueV + computeV + hopCycles
	step := cyclesToTime(cyclesPerStep, inst.ClockMHz)
	total := p.InvokeOverhead + time.Duration(spec.TimeSteps)*step
	base := issue + mvm + vec
	return Breakdown{
		Spec: spec, Instance: inst,
		IssueCycles: issueV, MVMCycles: mvm * (1 + p.StallComputeFrac),
		VecCycles: vec * (1 + p.StallComputeFrac), HopCycles: hopCycles,
		StallFrac: (cyclesPerStep - base) / base,
		StepTime:  step, Invoke: p.InvokeOverhead, Total: total,
	}, nil
}

// StreamingLatency models the AS ISA-only fallback for layers whose
// weights exceed the device's on-chip storage: the maximum instance is
// deployed and the weights stream from on-board DRAM every timestep, so
// the step time is bounded below by weight volume over DRAM bandwidth.
// This is how the per-device baseline system serves large tasks that the
// proposed framework would instead scale out across FPGAs.
func StreamingLatency(spec kernels.LayerSpec, device string, p Params) (Breakdown, error) {
	m, err := hsvital.CalibratedAccelerator(device, hsvital.MaxTiles(device))
	if err != nil {
		return Breakdown{}, err
	}
	dev, err := resource.LookupDevice(device)
	if err != nil {
		return Breakdown{}, err
	}
	inst := Instance{Device: device, Tiles: m.Tiles, ClockMHz: m.ClockMHz}
	b := Baseline(spec, inst, p)
	// Only the overflow past the on-chip capacity streams from DRAM each
	// step; the resident portion is reused.
	capKb, err := DeviceWeightCapacityKb(device)
	if err != nil {
		return Breakdown{}, err
	}
	overflowKb := WeightKb(spec, p) - capKb
	if overflowKb > 0 {
		overflowBytes := overflowKb * 1024 / 8
		streamTime := time.Duration(overflowBytes / (dev.DRAMBandwidthGBs * 1e9) * float64(time.Second))
		b.StepTime += streamTime
	}
	b.Total = b.Invoke + time.Duration(spec.TimeSteps)*b.StepTime
	return b, nil
}

// XPrefixTime returns the per-step time of the input-dependent prefix —
// the W*x matrix-vector products and their issue slots, which do not
// depend on h_{t-1}. The scale-out optimization (§2.3) overlaps the
// inter-FPGA transfer of h_t with exactly this window of the next step.
func XPrefixTime(spec kernels.LayerSpec, inst Instance, p Params) time.Duration {
	h := float64(spec.Hidden)
	nX := float64(gateCount(spec.Kind)) // one W*x MVM per gate
	macsPerCycle := float64(inst.Tiles) * hsvital.TileMACsPerCycle
	mvm := nX * (h*h/macsPerCycle + p.MVMFillCycles)
	issue := nX * p.IssueCyclesPerInstr[inst.Device]
	return cyclesToTime(mvm+issue, inst.ClockMHz)
}

func cyclesToTime(cycles, clockMHz float64) time.Duration {
	return time.Duration(cycles / clockMHz * float64(time.Microsecond))
}

// OverheadFrac compares a virtualized breakdown to its baseline: the
// Table 4 "Overhead" column.
func OverheadFrac(base, virt Breakdown) float64 {
	if base.Total == 0 {
		return 0
	}
	return float64(virt.Total-base.Total) / float64(base.Total)
}
