package perf

import (
	"errors"
	"testing"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
)

func TestMinTilesScaled(t *testing.T) {
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 1}
	// Full model does not fit one XCVU37P instance's blocks; halves and
	// quarters shrink monotonically.
	half, err := MinTilesScaled(spec, "XCVU37P", 2)
	if err != nil {
		t.Fatal(err)
	}
	quarter, err := MinTilesScaled(spec, "XCVU37P", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(quarter < half) {
		t.Errorf("quarter tiles %d must be < half tiles %d", quarter, half)
	}
	one, err := MinTilesScaled(spec, "XCVU37P", 1)
	if err != nil {
		t.Fatal(err)
	}
	if one != hsvital.MaxTiles("XCVU37P") {
		t.Errorf("unscaled GRU h=2560 = %d tiles, want the max instance", one)
	}
	// Half of GRU h=2560 does not fit the XCKU115's weight storage.
	if _, err := MinTilesScaled(spec, "XCKU115", 2); !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("GRU h=2560 half on XCKU115 = %v, want ErrDoesNotFit", err)
	}
	if _, err := MinTilesScaled(spec, "XCVU37P", 0); err == nil {
		t.Error("zero devices must fail")
	}
	if _, err := MinTilesScaled(spec, "bogus", 2); err == nil {
		t.Error("unknown device must fail")
	}
}

func TestDeviceWeightCapacityKb(t *testing.T) {
	v37, err := DeviceWeightCapacityKb("XCVU37P")
	if err != nil {
		t.Fatal(err)
	}
	k115, err := DeviceWeightCapacityKb("XCKU115")
	if err != nil {
		t.Fatal(err)
	}
	if v37 <= k115 {
		t.Errorf("XCVU37P capacity (%v) must exceed XCKU115 (%v)", v37, k115)
	}
	// Table 4 fit pattern depends on these bounds: LSTM h=1536 above K115,
	// below V37.
	p := DefaultParams()
	lstm1536 := WeightKb(kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1536}, p)
	if lstm1536 <= k115 || lstm1536 >= v37 {
		t.Errorf("LSTM h=1536 weights (%v Kb) must lie between K115 (%v) and V37 (%v)",
			lstm1536, k115, v37)
	}
	if _, err := DeviceWeightCapacityKb("bogus"); err == nil {
		t.Error("unknown device must fail")
	}
}

func TestStreamingLatency(t *testing.T) {
	p := DefaultParams()
	// GRU h=3072 exceeds on-chip storage: streaming dominates the step.
	big := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 3072, TimeSteps: 10}
	stream, err := StreamingLatency(big, "XCVU37P", p)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Device: "XCVU37P", Tiles: hsvital.MaxTiles("XCVU37P"), ClockMHz: 400}
	resident := Baseline(big, inst, p)
	if stream.Total <= resident.Total {
		t.Errorf("streaming (%v) must exceed the hypothetical resident latency (%v)",
			stream.Total, resident.Total)
	}
	// A layer that fits on-chip streams nothing: same as Baseline.
	small := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 10}
	s2, err := StreamingLatency(small, "XCVU37P", p)
	if err != nil {
		t.Fatal(err)
	}
	b2 := Baseline(small, Instance{Device: "XCVU37P", Tiles: hsvital.MaxTiles("XCVU37P"), ClockMHz: 400}, p)
	if s2.Total != b2.Total {
		t.Errorf("resident layer must not pay streaming: %v vs %v", s2.Total, b2.Total)
	}
	if _, err := StreamingLatency(big, "bogus", p); err == nil {
		t.Error("unknown device must fail")
	}
}

// Property-style check: streaming latency is monotone in the overflow.
func TestStreamingMonotoneInHidden(t *testing.T) {
	p := DefaultParams()
	prev := int64(0)
	for _, h := range []int{2304, 2560, 3072, 4096} {
		spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: h, TimeSteps: 5}
		b, err := StreamingLatency(spec, "XCVU37P", p)
		if err != nil {
			t.Fatal(err)
		}
		if int64(b.Total) < prev {
			t.Errorf("streaming latency decreased at h=%d", h)
		}
		prev = int64(b.Total)
	}
}
