package perf

import (
	"errors"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
)

func TestChooseInstanceFitPattern(t *testing.T) {
	// The Table 4 fit pattern: everything fits XCVU37P; LSTM h=1536 is the
	// only layer that does not fit XCKU115.
	for _, spec := range kernels.DeepBenchSuite() {
		if _, err := ChooseInstance(spec, "XCVU37P"); err != nil {
			t.Errorf("%v must fit XCVU37P: %v", spec, err)
		}
		_, err := ChooseInstance(spec, "XCKU115")
		isBig := spec.Kind == kernels.LSTM && spec.Hidden == 1536
		if isBig && !errors.Is(err, ErrDoesNotFit) {
			t.Errorf("LSTM h=1536 must not fit XCKU115, got %v", err)
		}
		if !isBig && err != nil {
			t.Errorf("%v must fit XCKU115: %v", spec, err)
		}
	}
}

func TestMinTilesMonotoneInHidden(t *testing.T) {
	prev := 0
	for _, h := range []int{256, 512, 1024, 1536} {
		tiles, err := MinTiles(kernels.LayerSpec{Kind: kernels.LSTM, Hidden: h, TimeSteps: 1}, "XCVU37P")
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if tiles < prev {
			t.Errorf("tiles must grow with h: h=%d -> %d after %d", h, tiles, prev)
		}
		prev = tiles
	}
}

func TestMinTilesErrors(t *testing.T) {
	if _, err := MinTiles(kernels.LayerSpec{Kind: kernels.GRU, Hidden: 256, TimeSteps: 1}, "bogus"); err == nil {
		t.Error("unknown device must error")
	}
	if _, err := ChooseInstance(kernels.LayerSpec{Kind: kernels.GRU, Hidden: 256, TimeSteps: 1}, "bogus"); err == nil {
		t.Error("unknown device must error in ChooseInstance")
	}
}

func TestBaselineScalesWithTimeSteps(t *testing.T) {
	p := DefaultParams()
	spec1 := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 10}
	spec2 := spec1
	spec2.TimeSteps = 20
	inst, err := ChooseInstance(spec1, "XCVU37P")
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := Baseline(spec1, inst, p), Baseline(spec2, inst, p)
	delta := b2.Total - b1.Total
	if delta != 10*b1.StepTime {
		t.Errorf("latency must be linear in steps: delta %v, step %v", delta, b1.StepTime)
	}
	if b1.Invoke != p.InvokeOverhead {
		t.Errorf("invoke = %v", b1.Invoke)
	}
}

func TestMoreTilesFaster(t *testing.T) {
	p := DefaultParams()
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 100}
	small := Instance{Device: "XCVU37P", Tiles: 4, ClockMHz: 400}
	big := Instance{Device: "XCVU37P", Tiles: 16, ClockMHz: 400}
	if Baseline(spec, big, p).Total >= Baseline(spec, small, p).Total {
		t.Error("more tiles must not be slower")
	}
}

func TestKU115SlowerThanVU37P(t *testing.T) {
	p := DefaultParams()
	for _, spec := range kernels.DeepBenchSuite() {
		v37, err := ChooseInstance(spec, "XCVU37P")
		if err != nil {
			t.Fatal(err)
		}
		k115, err := ChooseInstance(spec, "XCKU115")
		if err != nil {
			continue // LSTM h=1536
		}
		if Baseline(spec, k115, p).Total <= Baseline(spec, v37, p).Total {
			t.Errorf("%v: XCKU115 must be slower than XCVU37P", spec)
		}
	}
}

// The headline Table 4 property: virtualization overhead stays within the
// paper's band (3.8%--8.4%, we accept 2.5%--9%) for every layer and
// device, and grows from the tiny single-step task to the large models.
func TestVirtualizationOverheadBand(t *testing.T) {
	p := DefaultParams()
	var minOvh, maxOvh float64 = 1, 0
	for _, spec := range kernels.DeepBenchSuite() {
		for _, dev := range []string{"XCVU37P", "XCKU115"} {
			inst, err := ChooseInstance(spec, dev)
			if err != nil {
				continue
			}
			base := Baseline(spec, inst, p)
			virt, err := Virtualized(spec, inst, 2, p)
			if err != nil {
				t.Fatal(err)
			}
			ovh := OverheadFrac(base, virt)
			if ovh < 0.025 || ovh > 0.09 {
				t.Errorf("%v on %s: overhead %.2f%% outside [2.5,9]", spec, dev, 100*ovh)
			}
			if ovh < minOvh {
				minOvh = ovh
			}
			if ovh > maxOvh {
				maxOvh = ovh
			}
		}
	}
	if maxOvh-minOvh < 0.02 {
		t.Errorf("overhead must vary across layers: [%.2f%%, %.2f%%]", 100*minOvh, 100*maxOvh)
	}
}

func TestVirtualizedHopsMatter(t *testing.T) {
	p := DefaultParams()
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 100}
	inst, _ := ChooseInstance(spec, "XCVU37P")
	v2, err := Virtualized(spec, inst, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	v10, err := Virtualized(spec, inst, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	if v10.Total <= v2.Total {
		t.Error("more boundary hops must cost more")
	}
	if _, err := Virtualized(spec, Instance{Device: "bogus"}, 2, p); err == nil {
		t.Error("unknown device must error")
	}
}

func TestXPrefixTime(t *testing.T) {
	p := DefaultParams()
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1024, TimeSteps: 1}
	inst, _ := ChooseInstance(spec, "XCVU37P")
	prefix := XPrefixTime(spec, inst, p)
	full := Baseline(spec, inst, p).StepTime
	if prefix <= 0 || prefix >= full {
		t.Errorf("x-prefix %v must be positive and below the full step %v", prefix, full)
	}
	// LSTM (4 W*x MVMs) has a longer prefix than GRU (3) at equal h/tiles.
	gspec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 1}
	gprefix := XPrefixTime(gspec, inst, p)
	if gprefix >= prefix {
		t.Errorf("GRU prefix %v must be below LSTM prefix %v", gprefix, prefix)
	}
}

func TestWeightKb(t *testing.T) {
	p := DefaultParams()
	lstm := WeightKb(kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 1024}, p)
	gru := WeightKb(kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024}, p)
	if lstm/gru < 1.32 || lstm/gru > 1.34 {
		t.Errorf("LSTM/GRU weight ratio = %v, want 8/6", lstm/gru)
	}
}

func TestOverheadFracZeroBase(t *testing.T) {
	if OverheadFrac(Breakdown{}, Breakdown{Total: time.Second}) != 0 {
		t.Error("zero base must yield 0")
	}
}
