// Package preemptbench measures what preemptive scheduling buys the
// latency class, for cmd/mlv-bench-preempt and BENCH_preempt.json. The
// scenario is the drain path's worst case: a batch-class tenant floods a
// shared one-machine lease with full-length sequences, so every
// continuous-batching slot is held for the whole unrolled sequence, while
// a latency-class tenant sends short probes. Drain-only scheduling can do
// no better than wait for the soonest batch stream to retire; preemptive
// scheduling checkpoints a batch stream at the next round boundary and
// admits the probe immediately, restoring the evicted stream afterwards.
// Every probe is released against a machine whose slots are all held by
// batch streams, and the probe p99 under that contention, drain-only vs
// preemptive, is the number the report asserts on.
package preemptbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/tenant"
)

// Options sizes one preemption A/B run.
type Options struct {
	// Probes is the number of timed latency-tenant requests per phase.
	Probes int
	// Warmup requests run (and are discarded) before timing starts.
	Warmup int
	// Flood is the batch tenant's closed-loop worker count; workers
	// resubmit full-length sequences immediately, keeping every slot
	// contended for the whole phase.
	Flood int
	// MaxInFlight caps the batch tenant's admission-control quota.
	MaxInFlight int
	// ProbeSteps is the latency probe's sequence length — short, so the
	// probe's own service time is small next to the batch residency it
	// would otherwise wait behind. Spec.Hidden is sized so one full batch
	// sequence outlasts a scheduler timeslice: the flood's submitters can
	// then interleave with the engine and keep the queue backlog standing
	// even on a single-CPU host.
	ProbeSteps int
	// Spec is the layer the shared lease serves; Spec.TimeSteps is the
	// batch tenant's (full) sequence length.
	Spec kernels.LayerSpec
	// Infer tunes the data plane under test. Preempt is overridden per
	// phase: off for the drain-only baseline, on for the measured run.
	Infer rms.InferOptions
}

// DefaultOptions is the recorded configuration: one machine, micro-batches
// of 4, 16-step batch sequences against 2-step probes. Flood is sized
// well past the slot count so the fair queue holds a standing backlog —
// the machine refills instantly on every retirement and a probe always
// arrives against fully-occupied slots.
func DefaultOptions() Options {
	return Options{
		Probes:      200,
		Warmup:      20,
		Flood:       16,
		MaxInFlight: 24,
		ProbeSteps:  2,
		Spec:        kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 32},
		Infer: rms.InferOptions{
			MaxBatch:   4,
			FlushDelay: 500 * time.Microsecond,
			Machines:   1,
			Tiles:      1,
			Seed:       11,
		},
	}
}

// Phase is one scheduling mode's measurement: the latency tenant's probe
// distribution under flood, the batch tenant's concurrent progress, and
// the preemption machinery's counters for the phase.
type Phase struct {
	Probes          int     `json:"probes"`
	P50Us           float64 `json:"p50_us"`
	P90Us           float64 `json:"p90_us"`
	P99Us           float64 `json:"p99_us"`
	MaxUs           float64 `json:"max_us"`
	BatchCompleted  int     `json:"batch_completed"`
	BatchPerSec     float64 `json:"batch_per_sec,omitempty"`
	PreemptRequests int64   `json:"preempt_requests"`
	Evictions       int64   `json:"evictions"`
	Restores        int64   `json:"restores"`
}

// Result is one A/B run.
type Result struct {
	DrainOnly  Phase `json:"drain_only"`
	Preemptive Phase `json:"preemptive"`
	// P99Improvement is DrainOnly.P99Us / Preemptive.P99Us — above 1.0
	// means preemption shortened the probe tail.
	P99Improvement float64 `json:"p99_improvement"`
}

// Run executes the drain-only baseline then the preemptive phase, each
// against a freshly built stack (same seed, same placements), and returns
// both distributions. The caller asserts the improvement bound.
func Run(o Options) (*Result, error) {
	if o.ProbeSteps <= 0 || o.ProbeSteps > o.Spec.TimeSteps {
		return nil, fmt.Errorf("preemptbench: probe steps %d outside 1..%d", o.ProbeSteps, o.Spec.TimeSteps)
	}
	res := &Result{}
	drain, err := runPhase(o, false)
	if err != nil {
		return nil, err
	}
	res.DrainOnly = drain
	pre, err := runPhase(o, true)
	if err != nil {
		return nil, err
	}
	res.Preemptive = pre
	if pre.P99Us > 0 {
		res.P99Improvement = drain.P99Us / pre.P99Us
	}
	return res, nil
}

// runPhase builds the full stack (service, tenants, data plane, one
// shared lease) with preemption on or off and measures Warmup+Probes
// sequential short probes under the batch flood.
func runPhase(o Options, preempt bool) (Phase, error) {
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		return Phase{}, err
	}
	reg, err := tenant.NewRegistry(
		tenant.Tenant{ID: "lat", Key: "lat-key", Class: tenant.Latency},
		tenant.Tenant{ID: "bat", Key: "bat-key", Class: tenant.Batch,
			Quotas: tenant.Quotas{MaxInFlight: o.MaxInFlight}},
	)
	if err != nil {
		return Phase{}, err
	}
	svc.SetTenants(reg)
	opts := o.Infer
	opts.Preempt = preempt
	dp := rms.NewDataPlane(svc, opts)
	defer dp.Close()
	dp.SetTenants(reg)

	lease, err := svc.DeployWith(o.Spec, rms.PlaceOptions{Tenant: "lat"})
	if err != nil {
		return Phase{}, fmt.Errorf("preemptbench: deploy: %w", err)
	}

	full := make([][][]float64, 8)
	for i := range full {
		full[i] = randInputs(o.Spec.Hidden, o.Spec.TimeSteps, int64(i)+1)
	}
	probe := randInputs(o.Spec.Hidden, o.ProbeSteps, 101)

	// The flood is driven from this goroutine, not from free-running
	// workers: each submission is a one-shot goroutine, and before every
	// probe the main loop tops the flood back up to Flood outstanding and
	// yields until the fair queue holds a standing backlog. The backlog —
	// not momentary slot occupancy, which a single-CPU host serves and
	// retires entirely inside one scheduler timeslice, invisible to any
	// outside sampler — is what guarantees the scenario: the machine
	// refills from the queue on every retirement, so slots are
	// continuously occupied by batch streams whenever the engine runs and
	// every probe queues against a full machine. Free-running closed-loop
	// workers can't provide this; the probe/engine channel ping-pong
	// starves them and the machine drains to one resident stream.
	base := metrics.SnapshotCounters()
	floor := o.Flood / 2
	var (
		done        = make(chan error, o.Flood)
		outstanding = 0
		completed   = 0
		submitted   = 0
	)
	reap := func(block bool) error {
		for outstanding > 0 {
			if block {
				if err := <-done; err != nil {
					return err
				}
				outstanding--
				completed++
				continue
			}
			select {
			case err := <-done:
				if err != nil {
					return err
				}
				outstanding--
				completed++
			default:
				return nil
			}
		}
		return nil
	}
	topUp := func() error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := reap(false); err != nil {
				return fmt.Errorf("preemptbench: batch stream (preempt=%v): %w", preempt, err)
			}
			for outstanding < o.Flood {
				in := full[submitted%len(full)]
				submitted++
				outstanding++
				go func() {
					_, err := dp.InferAs("bat", lease.ID, in)
					done <- err
				}()
			}
			if st, ok := dp.Load(lease.ID); ok && st.QueueDepth >= floor {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("preemptbench: batch flood never built a backlog (preempt=%v)", preempt)
			}
			runtime.Gosched()
		}
	}

	lat := make([]time.Duration, 0, o.Probes)
	started := time.Now()
	for i := 0; i < o.Warmup+o.Probes; i++ {
		if err := topUp(); err != nil {
			reap(true)
			return Phase{}, err
		}
		t0 := time.Now()
		if _, err := dp.InferAs("lat", lease.ID, probe); err != nil {
			reap(true)
			return Phase{}, fmt.Errorf("preemptbench: probe %d (preempt=%v): %w", i, preempt, err)
		}
		if i >= o.Warmup {
			lat = append(lat, time.Since(t0))
		}
	}
	elapsed := time.Since(started)
	if err := reap(true); err != nil {
		return Phase{}, fmt.Errorf("preemptbench: batch stream (preempt=%v): %w", preempt, err)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Microsecond)
	}
	cur := metrics.SnapshotCounters()
	ph := Phase{
		Probes:          len(lat),
		P50Us:           pct(0.50),
		P90Us:           pct(0.90),
		P99Us:           pct(0.99),
		MaxUs:           pct(1.0),
		BatchCompleted:  completed,
		PreemptRequests: cur["mlv_preempt_requests"] - base["mlv_preempt_requests"],
		Evictions:       cur["mlv_preempt_evictions"] - base["mlv_preempt_evictions"],
		Restores:        cur["mlv_preempt_restores"] - base["mlv_preempt_restores"],
	}
	if elapsed > 0 {
		ph.BatchPerSec = float64(completed) / elapsed.Seconds()
	}
	return ph, nil
}

// randInputs derives a deterministic input tensor of the given length.
func randInputs(hidden, steps int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, steps)
	for t := range in {
		v := make([]float64, hidden)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		in[t] = v
	}
	return in
}
