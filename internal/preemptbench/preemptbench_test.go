package preemptbench

import "testing"

// TestRunSmoke runs a miniature A/B measurement end to end: both phases
// complete, distributions are populated and ordered, the batch flood made
// progress in both, and preemption machinery fired only in the preemptive
// phase. The p99-improvement bound is asserted by cmd/mlv-bench-preempt
// when recording BENCH_preempt.json, not here — wall-clock ratios on a
// loaded CI box are not a unit-test fact.
func TestRunSmoke(t *testing.T) {
	o := DefaultOptions()
	o.Probes = 30
	o.Warmup = 5
	// Flood stays at the default: auto-preemption only fires on a full
	// machine, so the flood must outnumber the slots (MaxBatch).
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for name, ph := range map[string]Phase{"drain": res.DrainOnly, "preempt": res.Preemptive} {
		if ph.Probes != o.Probes {
			t.Errorf("%s probes = %d, want %d", name, ph.Probes, o.Probes)
		}
		if ph.P50Us <= 0 || ph.P99Us < ph.P50Us || ph.MaxUs < ph.P99Us {
			t.Errorf("%s distribution out of order: p50=%.0f p99=%.0f max=%.0f",
				name, ph.P50Us, ph.P99Us, ph.MaxUs)
		}
		if ph.BatchCompleted == 0 {
			t.Errorf("%s phase: batch flood made no progress", name)
		}
	}
	if res.DrainOnly.Evictions != 0 || res.DrainOnly.PreemptRequests != 0 {
		t.Errorf("drain-only phase preempted: %d requests, %d evictions",
			res.DrainOnly.PreemptRequests, res.DrainOnly.Evictions)
	}
	if res.Preemptive.Evictions == 0 {
		t.Error("preemptive phase never evicted a batch stream")
	}
	if res.Preemptive.Evictions != res.Preemptive.Restores {
		t.Errorf("evictions %d != restores %d: a checkpoint was dropped",
			res.Preemptive.Evictions, res.Preemptive.Restores)
	}
	if res.P99Improvement <= 0 {
		t.Errorf("p99 improvement = %v", res.P99Improvement)
	}
}

// TestRejectsBadProbeLength pins the options validation.
func TestRejectsBadProbeLength(t *testing.T) {
	o := DefaultOptions()
	o.ProbeSteps = o.Spec.TimeSteps + 1
	if _, err := Run(o); err == nil {
		t.Fatal("over-long probe accepted")
	}
	o.ProbeSteps = 0
	if _, err := Run(o); err == nil {
		t.Fatal("zero-length probe accepted")
	}
}
