// Package resource models FPGA hardware resources and the device catalog of
// the heterogeneous cluster evaluated in the paper (3x Xilinx XCVU37P and
// 1x XCKU115). A resource Vector counts the five resource classes that the
// paper's tables report: LUTs, DFFs, BRAM, URAM and DSP slices.
//
// Everything downstream — the soft-block abstraction, the ViTAL-like
// virtual-block compiler and the runtime manager — speaks in these vectors.
package resource

import (
	"errors"
	"fmt"
)

// Kind identifies one FPGA resource class.
type Kind int

// The five resource classes tracked throughout the framework.
const (
	LUT Kind = iota
	DFF
	BRAMKb // block RAM capacity in kilobits
	URAMKb // UltraRAM capacity in kilobits
	DSP
	numKinds
)

// Kinds lists every resource class in canonical order.
var Kinds = [...]Kind{LUT, DFF, BRAMKb, URAMKb, DSP}

// String returns the conventional short name of the resource class.
func (k Kind) String() string {
	switch k {
	case LUT:
		return "LUT"
	case DFF:
		return "DFF"
	case BRAMKb:
		return "BRAM(Kb)"
	case URAMKb:
		return "URAM(Kb)"
	case DSP:
		return "DSP"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Vector is a count of resources per class. The zero value is an empty
// vector, ready to use.
type Vector struct {
	LUTs   int64
	DFFs   int64
	BRAMKb int64 // kilobits
	URAMKb int64 // kilobits
	DSPs   int64
}

// Get returns the count for one resource class.
func (v Vector) Get(k Kind) int64 {
	switch k {
	case LUT:
		return v.LUTs
	case DFF:
		return v.DFFs
	case BRAMKb:
		return v.BRAMKb
	case URAMKb:
		return v.URAMKb
	case DSP:
		return v.DSPs
	}
	return 0
}

// Set overwrites the count for one resource class and returns the updated
// vector.
func (v Vector) Set(k Kind, n int64) Vector {
	switch k {
	case LUT:
		v.LUTs = n
	case DFF:
		v.DFFs = n
	case BRAMKb:
		v.BRAMKb = n
	case URAMKb:
		v.URAMKb = n
	case DSP:
		v.DSPs = n
	}
	return v
}

// Add returns v + o element-wise.
func (v Vector) Add(o Vector) Vector {
	return Vector{
		LUTs:   v.LUTs + o.LUTs,
		DFFs:   v.DFFs + o.DFFs,
		BRAMKb: v.BRAMKb + o.BRAMKb,
		URAMKb: v.URAMKb + o.URAMKb,
		DSPs:   v.DSPs + o.DSPs,
	}
}

// Sub returns v - o element-wise. Counts may go negative; use Fits to test
// capacity instead.
func (v Vector) Sub(o Vector) Vector {
	return Vector{
		LUTs:   v.LUTs - o.LUTs,
		DFFs:   v.DFFs - o.DFFs,
		BRAMKb: v.BRAMKb - o.BRAMKb,
		URAMKb: v.URAMKb - o.URAMKb,
		DSPs:   v.DSPs - o.DSPs,
	}
}

// Scale returns v * n element-wise.
func (v Vector) Scale(n int64) Vector {
	return Vector{
		LUTs:   v.LUTs * n,
		DFFs:   v.DFFs * n,
		BRAMKb: v.BRAMKb * n,
		URAMKb: v.URAMKb * n,
		DSPs:   v.DSPs * n,
	}
}

// Fits reports whether v fits within capacity c on every resource class.
func (v Vector) Fits(c Vector) bool {
	return v.LUTs <= c.LUTs && v.DFFs <= c.DFFs &&
		v.BRAMKb <= c.BRAMKb && v.URAMKb <= c.URAMKb && v.DSPs <= c.DSPs
}

// IsZero reports whether every count is zero.
func (v Vector) IsZero() bool {
	return v == Vector{}
}

// NonNegative reports whether every count is >= 0.
func (v Vector) NonNegative() bool {
	return v.LUTs >= 0 && v.DFFs >= 0 && v.BRAMKb >= 0 && v.URAMKb >= 0 && v.DSPs >= 0
}

// Max returns the element-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	m := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	return Vector{
		LUTs:   m(v.LUTs, o.LUTs),
		DFFs:   m(v.DFFs, o.DFFs),
		BRAMKb: m(v.BRAMKb, o.BRAMKb),
		URAMKb: m(v.URAMKb, o.URAMKb),
		DSPs:   m(v.DSPs, o.DSPs),
	}
}

// Utilization returns v/c as a fraction in [0,1] per class, taking the
// maximum across classes. Classes with zero capacity are skipped unless v
// demands them, in which case the utilization is reported as +Inf via >1.
func (v Vector) Utilization(c Vector) float64 {
	max := 0.0
	for _, k := range Kinds {
		need, have := v.Get(k), c.Get(k)
		if have == 0 {
			if need > 0 {
				return 2 // cannot fit: signal over-utilization
			}
			continue
		}
		u := float64(need) / float64(have)
		if u > max {
			max = u
		}
	}
	return max
}

// String renders the vector in table form, e.g.
// "610000 LUT, 659000 DFF, 51500 BRAM(Kb), 22500 URAM(Kb), 7517 DSP".
func (v Vector) String() string {
	return fmt.Sprintf("%d LUT, %d DFF, %d BRAM(Kb), %d URAM(Kb), %d DSP",
		v.LUTs, v.DFFs, v.BRAMKb, v.URAMKb, v.DSPs)
}

// ErrUnknownDevice is returned by LookupDevice for names not in the catalog.
var ErrUnknownDevice = errors.New("resource: unknown device")

// Device describes one FPGA type in the heterogeneous cluster.
type Device struct {
	// Name is the Xilinx part name, e.g. "XCVU37P".
	Name string
	// Capacity is the total usable resources of the part.
	Capacity Vector
	// ClockMHz is the frequency achieved by the accelerator and virtual
	// blocks on this part in the paper's evaluation (Tables 2-3).
	ClockMHz float64
	// HasURAM reports whether the part provides UltraRAM.
	HasURAM bool
	// DRAMBandwidthGBs is the on-board DRAM bandwidth available to one
	// accelerator, in GB/s.
	DRAMBandwidthGBs float64
}

// Catalog of the two device types used in the paper's custom cluster.
// Capacities are the published totals for the parts:
//
//	XCVU37P : 1304k LUTs, 2607k FFs, 70.9 Mb BRAM, 270 Mb URAM, 9024 DSPs
//	XCKU115 : 663k LUTs, 1326k FFs, 75.9 Mb BRAM, no URAM, 5520 DSPs
//
// Frequencies come from Tables 2-3 (400 MHz / 300 MHz).
var (
	XCVU37P = Device{
		Name: "XCVU37P",
		Capacity: Vector{
			LUTs:   1303680,
			DFFs:   2607360,
			BRAMKb: 70912,  // 70.9 Mb
			URAMKb: 276480, // 270 Mb
			DSPs:   9024,
		},
		ClockMHz:         400,
		HasURAM:          true,
		DRAMBandwidthGBs: 19.2,
	}
	XCKU115 = Device{
		Name: "XCKU115",
		Capacity: Vector{
			LUTs:   663360,
			DFFs:   1326720,
			BRAMKb: 75900, // 75.9 Mb
			URAMKb: 0,
			DSPs:   5520,
		},
		ClockMHz:         300,
		HasURAM:          false,
		DRAMBandwidthGBs: 19.2,
	}
)

// Devices lists the catalog in canonical order (largest first).
var Devices = []Device{XCVU37P, XCKU115}

// LookupDevice returns the catalog entry for name.
func LookupDevice(name string) (Device, error) {
	for _, d := range Devices {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
}

// ClusterSpec describes the composition of a physical cluster as device
// name -> count.
type ClusterSpec map[string]int

// PaperCluster is the custom-built cluster from §4.2: three XCVU37P and one
// XCKU115 attached over PCIe with a secondary bidirectional ring.
func PaperCluster() ClusterSpec {
	return ClusterSpec{XCVU37P.Name: 3, XCKU115.Name: 1}
}

// TotalCapacity sums the capacity of every device in the spec.
func (s ClusterSpec) TotalCapacity() (Vector, error) {
	var total Vector
	for name, n := range s {
		d, err := LookupDevice(name)
		if err != nil {
			return Vector{}, err
		}
		total = total.Add(d.Capacity.Scale(int64(n)))
	}
	return total, nil
}
