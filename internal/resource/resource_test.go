package resource

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	a := Vector{LUTs: 10, DFFs: 20, BRAMKb: 30, URAMKb: 40, DSPs: 50}
	b := Vector{LUTs: 1, DFFs: 2, BRAMKb: 3, URAMKb: 4, DSPs: 5}
	got := a.Add(b)
	want := Vector{LUTs: 11, DFFs: 22, BRAMKb: 33, URAMKb: 44, DSPs: 55}
	if got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if back := got.Sub(b); back != a {
		t.Errorf("Sub = %v, want %v", back, a)
	}
}

func TestVectorScale(t *testing.T) {
	a := Vector{LUTs: 3, DSPs: 7}
	got := a.Scale(4)
	if got.LUTs != 12 || got.DSPs != 28 || got.DFFs != 0 {
		t.Errorf("Scale = %v", got)
	}
}

func TestVectorFits(t *testing.T) {
	cap := XCVU37P.Capacity
	if !(Vector{LUTs: 100}).Fits(cap) {
		t.Error("small vector should fit VU37P")
	}
	if (Vector{LUTs: cap.LUTs + 1}).Fits(cap) {
		t.Error("over-LUT vector must not fit")
	}
	// URAM demand must not fit a device without URAM.
	if (Vector{URAMKb: 1}).Fits(XCKU115.Capacity) {
		t.Error("URAM demand must not fit XCKU115")
	}
}

func TestVectorGetSetRoundTrip(t *testing.T) {
	var v Vector
	for i, k := range Kinds {
		v = v.Set(k, int64(i+1))
	}
	for i, k := range Kinds {
		if v.Get(k) != int64(i+1) {
			t.Errorf("Get(%v) = %d, want %d", k, v.Get(k), i+1)
		}
	}
}

func TestUtilization(t *testing.T) {
	cap := Vector{LUTs: 100, DFFs: 100, BRAMKb: 100, URAMKb: 100, DSPs: 100}
	v := Vector{LUTs: 50, DSPs: 80}
	if u := v.Utilization(cap); u != 0.8 {
		t.Errorf("Utilization = %v, want 0.8", u)
	}
	// Demand on a zero-capacity class over-utilizes.
	if u := (Vector{URAMKb: 1}).Utilization(XCKU115.Capacity); u <= 1 {
		t.Errorf("URAM on KU115 utilization = %v, want >1", u)
	}
	if u := (Vector{}).Utilization(cap); u != 0 {
		t.Errorf("empty utilization = %v, want 0", u)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{LUT: "LUT", DFF: "DFF", BRAMKb: "BRAM(Kb)", URAMKb: "URAM(Kb)", DSP: "DSP"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestLookupDevice(t *testing.T) {
	d, err := LookupDevice("XCVU37P")
	if err != nil || d.Name != "XCVU37P" {
		t.Fatalf("LookupDevice(XCVU37P) = %v, %v", d, err)
	}
	if !d.HasURAM {
		t.Error("VU37P must have URAM")
	}
	if _, err := LookupDevice("XC7Z020"); err == nil {
		t.Error("unknown device must error")
	}
}

func TestPaperCluster(t *testing.T) {
	spec := PaperCluster()
	if spec["XCVU37P"] != 3 || spec["XCKU115"] != 1 {
		t.Fatalf("PaperCluster = %v", spec)
	}
	total, err := spec.TotalCapacity()
	if err != nil {
		t.Fatal(err)
	}
	want := XCVU37P.Capacity.Scale(3).Add(XCKU115.Capacity)
	if total != want {
		t.Errorf("TotalCapacity = %v, want %v", total, want)
	}
}

func TestTotalCapacityUnknown(t *testing.T) {
	if _, err := (ClusterSpec{"nope": 1}).TotalCapacity(); err == nil {
		t.Error("unknown device in spec must error")
	}
}

func randomVector(r *rand.Rand) Vector {
	return Vector{
		LUTs:   r.Int63n(1 << 20),
		DFFs:   r.Int63n(1 << 20),
		BRAMKb: r.Int63n(1 << 20),
		URAMKb: r.Int63n(1 << 20),
		DSPs:   r.Int63n(1 << 20),
	}
}

// Property: Add is commutative and Sub inverts Add.
func TestQuickAddSub(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVector(r), randomVector(r)
		return a.Add(b) == b.Add(a) && a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Max is idempotent, commutative, and an upper bound.
func TestQuickMax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVector(r), randomVector(r)
		m := a.Max(b)
		return m == b.Max(a) && a.Max(a) == a && a.Fits(m) && b.Fits(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: x.Fits(c) && y.Fits(c.Sub(x)) implies x.Add(y).Fits(c).
func TestQuickFitsAdditive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomVector(r)
		x, y := randomVector(r), randomVector(r)
		if !x.Fits(c) {
			return true
		}
		rem := c.Sub(x)
		if !y.Fits(rem) {
			return true
		}
		return x.Add(y).Fits(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
