package rms

import (
	"fmt"
	"time"

	"mlvfpga/internal/des"
	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/workload"
)

// SimulateBaseline models the AS ISA-only baseline system of Fig. 12:
// resources are managed at per-device granularity, so every task occupies
// a whole FPGA for its duration regardless of the accelerator's actual
// footprint (the statically compiled instance owns the device). Layers
// whose weights exceed the device's on-chip storage fall back to streaming
// weights from DRAM (there is no multi-FPGA scale-out without the
// framework).
func SimulateBaseline(tasks []workload.Task, cluster resource.ClusterSpec, p perf.Params) (Result, error) {
	type device struct {
		name string
		busy bool
	}
	var devices []*device
	for _, s := range hsvital.AllSpecs() {
		for i := 0; i < cluster[s.Device.Name]; i++ {
			devices = append(devices, &device{name: s.Device.Name})
		}
	}
	if len(devices) == 0 {
		return Result{}, fmt.Errorf("rms: empty cluster")
	}

	// latencyOn caches the baseline latency per (spec, device type).
	latCache := map[string]time.Duration{}
	latencyOn := func(spec kernels.LayerSpec, dev string) (time.Duration, error) {
		key := spec.String() + "@" + dev
		if d, ok := latCache[key]; ok {
			return d, nil
		}
		var total time.Duration
		if inst, err := perf.ChooseInstance(spec, dev); err == nil {
			total = perf.Baseline(spec, inst, p).Total
		} else {
			b, err := perf.StreamingLatency(spec, dev, p)
			if err != nil {
				return 0, err
			}
			total = b.Total
		}
		latCache[key] = total
		return total, nil
	}

	engine := des.New()
	var res Result
	var queue []workload.Task
	var sumLatency, sumSojourn time.Duration
	var lastCompletion time.Duration

	var dispatchQueued func(now time.Duration)

	// tryDispatch picks the free device offering the lowest latency.
	tryDispatch := func(now time.Duration, task workload.Task) (bool, error) {
		var best *device
		var bestLat time.Duration
		for _, d := range devices {
			if d.busy {
				continue
			}
			lat, err := latencyOn(task.Spec, d.name)
			if err != nil {
				return false, err
			}
			if best == nil || lat < bestLat {
				best, bestLat = d, lat
			}
		}
		if best == nil {
			return false, nil
		}
		best.busy = true
		sumLatency += bestLat
		sumSojourn += now - task.Arrival + bestLat
		return true, engine.At(now+bestLat, func(n time.Duration) {
			best.busy = false
			res.Completed++
			if n > lastCompletion {
				lastCompletion = n
			}
			dispatchQueued(n)
		})
	}

	dispatchQueued = func(now time.Duration) {
		remaining := queue[:0]
		for _, task := range queue {
			started, err := tryDispatch(now, task)
			if err != nil {
				panic(fmt.Sprintf("rms: baseline dispatch: %v", err))
			}
			if !started {
				remaining = append(remaining, task)
			}
		}
		queue = remaining
	}

	for _, task := range tasks {
		task := task
		if err := engine.At(task.Arrival, func(now time.Duration) {
			started, err := tryDispatch(now, task)
			if err != nil {
				panic(fmt.Sprintf("rms: baseline dispatch: %v", err))
			}
			if !started {
				queue = append(queue, task)
				if len(queue) > res.PeakQueue {
					res.PeakQueue = len(queue)
				}
			}
		}); err != nil {
			return Result{}, err
		}
	}
	engine.Run(0)
	if len(queue) > 0 {
		return Result{}, fmt.Errorf("rms: baseline left %d tasks queued", len(queue))
	}
	res.Makespan = lastCompletion
	if res.Completed > 0 {
		res.AvgLatency = sumLatency / time.Duration(res.Completed)
		res.AvgSojourn = sumSojourn / time.Duration(res.Completed)
	}
	if res.Makespan > 0 {
		res.ThroughputPerSec = float64(res.Completed) / res.Makespan.Seconds()
	}
	return res, nil
}
