package rms

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/resource"
)

func cacheTestSpec() kernels.LayerSpec {
	return kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
}

// newCachedService builds a service with the warm-start compile path over
// the given store.
func newCachedService(t *testing.T, cluster resource.ClusterSpec, store *artifactstore.Store) (*Service, *Compiler) {
	t.Helper()
	svc, err := NewService(cluster, testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	comp := NewCompiler(store, CompilerOptions{Parallelism: 1})
	svc.SetCompiler(comp)
	return svc, comp
}

func TestDeployWarmStart(t *testing.T) {
	store := artifactstore.NewMemory(artifactstore.Options{})
	svc, _ := newCachedService(t, resource.PaperCluster(), store)
	spec := cacheTestSpec()

	cold, err := svc.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmDeploy {
		t.Fatal("first deploy reported warm against a cold cache")
	}
	if cold.ArtifactKey == "" {
		t.Fatal("deploy recorded no artifact key")
	}
	warm, err := svc.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmDeploy {
		t.Fatal("second deploy of a known design missed the cache")
	}
	if warm.ArtifactKey != cold.ArtifactKey {
		t.Fatalf("artifact keys differ: %s vs %s", warm.ArtifactKey, cold.ArtifactKey)
	}
	// The hit path must perform zero decompose/partition/HS-compile work.
	if st := store.Stats(); st.Computes != 1 || st.Hits < 1 {
		t.Fatalf("stats = %+v, want exactly one compile and a hit", st)
	}
}

func TestDeployUndeployableWithCompiler(t *testing.T) {
	store := artifactstore.NewMemory(artifactstore.Options{})
	svc, _ := newCachedService(t, resource.PaperCluster(), store)
	// LSTM h=8192 is too large for the whole cluster, so the error path
	// must surface before any compile is attempted.
	if _, err := svc.Deploy(kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 8192, TimeSteps: 1}); err == nil {
		t.Fatal("undeployable layer deployed")
	}
	if st := store.Stats(); st.Computes != 0 {
		t.Fatalf("undeployable layer triggered a compile: %+v", st)
	}
}

// deterministicInputs derives a fixed input tensor for a spec.
func deterministicInputs(spec kernels.LayerSpec) [][]float64 {
	inputs := make([][]float64, spec.TimeSteps)
	for t := range inputs {
		x := make([]float64, spec.Hidden)
		for i := range x {
			x[i] = float64((t*31+i*7)%17)/16.0 - 0.5
		}
		inputs[t] = x
	}
	return inputs
}

// TestConcurrentDeploySingleflight is the satellite race test: 32
// goroutines deploy the same spec against a cold cache; exactly one
// compile runs (the store's singleflight guard), every deploy succeeds,
// and every lease serves outputs bit-identical to a compiler-less twin
// stack deployed with the same lease ids (per-lease weights derive from
// Seed + lease id, so the comparison is id-to-id).
func TestConcurrentDeploySingleflight(t *testing.T) {
	const deploys = 32
	cluster := resource.ClusterSpec{resource.XCVU37P.Name: deploys}
	spec := cacheTestSpec()

	store := artifactstore.NewMemory(artifactstore.Options{})
	svc, _ := newCachedService(t, cluster, store)

	var wg sync.WaitGroup
	leases := make([]*Lease, deploys)
	errs := make([]error, deploys)
	for i := 0; i < deploys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leases[i], errs[i] = svc.Deploy(spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	st := store.Stats()
	if st.Computes != 1 {
		t.Fatalf("%d compiles for %d concurrent deploys, want exactly 1 (stats %+v)", st.Computes, deploys, st)
	}

	// Twin stack without a compiler: the reference data-plane behaviour.
	twinSvc, err := NewService(cluster, testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < deploys; i++ {
		if _, err := twinSvc.Deploy(spec); err != nil {
			t.Fatalf("twin deploy %d: %v", i, err)
		}
	}

	opts := InferOptions{MaxBatch: 1, Machines: 1, Tiles: 1, Seed: 7}
	dp := NewDataPlane(svc, opts)
	defer dp.Close()
	twin := NewDataPlane(twinSvc, opts)
	defer twin.Close()

	inputs := deterministicInputs(spec)
	for _, lease := range leases {
		got, err := dp.Infer(lease.ID, inputs)
		if err != nil {
			t.Fatalf("infer lease %d: %v", lease.ID, err)
		}
		want, err := twin.Infer(lease.ID, inputs)
		if err != nil {
			t.Fatalf("twin infer lease %d: %v", lease.ID, err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("lease %d outputs differ between cached and twin stacks", lease.ID)
		}
	}
}

// TestDeployCorruptBlobRecovery is the satellite corruption test at the
// deploy level: damage the stored blob, redeploy through a fresh stack,
// and require checksum rejection, a recompile fallback, a replaced blob —
// and a fully serving lease. Never a panic, never a wrong artifact.
func TestDeployCorruptBlobRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := cacheTestSpec()

	store1, err := artifactstore.Open(dir, artifactstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc1, _ := newCachedService(t, resource.PaperCluster(), store1)
	first, err := svc1.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}

	blobs, err := filepath.Glob(filepath.Join(dir, "*.mlva"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("blobs = %v (err %v), want exactly one", blobs, err)
	}
	corruptFile(t, blobs[0])

	store2, err := artifactstore.Open(dir, artifactstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc2, _ := newCachedService(t, resource.PaperCluster(), store2)
	lease, err := svc2.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lease.WarmDeploy {
		t.Fatal("deploy against a corrupt blob reported warm")
	}
	if lease.ArtifactKey != first.ArtifactKey {
		t.Fatalf("artifact key changed after recovery: %s vs %s", lease.ArtifactKey, first.ArtifactKey)
	}
	st := store2.Stats()
	if st.CorruptDropped != 1 || st.Computes != 1 {
		t.Fatalf("stats = %+v, want one corrupt drop and one recompile", st)
	}

	// The bad entry was replaced: a third stack warm-starts from disk.
	store3, err := artifactstore.Open(dir, artifactstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc3, _ := newCachedService(t, resource.PaperCluster(), store3)
	healed, err := svc3.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !healed.WarmDeploy {
		t.Fatal("rewritten blob did not serve a warm deploy")
	}

	// The recovered lease serves.
	dp := NewDataPlane(svc2, InferOptions{MaxBatch: 1, Machines: 1, Tiles: 1, Seed: 7})
	defer dp.Close()
	if _, err := dp.Infer(lease.ID, deterministicInputs(spec)); err != nil {
		t.Fatalf("infer on recovered lease: %v", err)
	}
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWarmDeployTwinInferGolden is the acceptance golden test: a
// warm-deployed lease and a cold-deployed twin must return bit-identical
// end-to-end /infer payloads (modulo the wall-clock and batching
// observability fields, which are timing, not results).
func TestWarmDeployTwinInferGolden(t *testing.T) {
	spec := cacheTestSpec()
	inputs := deterministicInputs(spec)
	opts := InferOptions{MaxBatch: 1, Machines: 1, Tiles: 1, Seed: 5}

	// Warm stack: the store is pre-populated by a throwaway service, so
	// the lease under test is a pure cache-hit deploy.
	store := artifactstore.NewMemory(artifactstore.Options{})
	warmup, _ := newCachedService(t, resource.PaperCluster(), store)
	if _, err := warmup.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	warmSvc, _ := newCachedService(t, resource.PaperCluster(), store)
	warmDP := NewDataPlane(warmSvc, opts)
	defer warmDP.Close()

	// Cold twin: no compiler at all.
	coldSvc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	coldDP := NewDataPlane(coldSvc, opts)
	defer coldDP.Close()

	infer := func(h http.Handler, deployBody string) (leaseID int, outputs [][]float64, warm bool) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/deploy", bytes.NewBufferString(deployBody)))
		if rec.Code != http.StatusOK {
			t.Fatalf("/deploy: %d %s", rec.Code, rec.Body)
		}
		var lease Lease
		if err := json.Unmarshal(rec.Body.Bytes(), &lease); err != nil {
			t.Fatal(err)
		}
		req := struct {
			ID     int         `json:"id"`
			Inputs [][]float64 `json:"inputs"`
		}{ID: lease.ID, Inputs: inputs}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewBuffer(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("/infer: %d %s", rec.Code, rec.Body)
		}
		var res InferResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		return lease.ID, res.Outputs, lease.WarmDeploy
	}

	deployBody := `{"kind":"LSTM","hidden":256,"timesteps":2}`
	warmID, warmOut, wasWarm := infer(warmDP.Handler(), deployBody)
	if !wasWarm {
		t.Fatal("lease under test was not a warm deploy")
	}
	coldID, coldOut, _ := infer(coldDP.Handler(), deployBody)
	if warmID != coldID {
		t.Fatalf("lease ids diverged (%d vs %d); weight derivation no longer comparable", warmID, coldID)
	}
	if !reflect.DeepEqual(warmOut, coldOut) {
		t.Fatal("warm-deployed lease and cold twin returned different /infer outputs")
	}
}
