package rms

import (
	"fmt"
	"sync"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/core"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/rtl"
)

// This file gives the admission service the paper's warm-start deploy: the
// system controller's "database of mapping results" is persisted as a
// content-addressed artifact store, so deploying a known design skips the
// whole decompose → partition → HS-compile pipeline and goes straight to
// placement. The compiler resolves a layer to its accelerator instance
// once (the plan memo), addresses the full compilation product by its
// structural hash, and relies on the store's singleflight guard so N
// concurrent deploys of one design compile exactly once.

// planSalt names the layer→instance plan keyspace; it shares the artifact
// keys' canonical FNV-64a machinery (rtl.CanonHash).
const planSalt = "mlvfpga/deploy-plan/v1"

// SpecKey hashes a layer spec through the canonical hasher: the stable
// identity of a deployment request, independent of how the layer renders.
// Two specs that resolve to the same accelerator instance still share one
// artifact — SpecKey names the request, core.CompileKey names the product.
func SpecKey(spec kernels.LayerSpec) string {
	return rtl.NewCanonHash(planSalt).
		Field("kind", spec.Kind).
		Field("hidden", spec.Hidden).
		Field("timesteps", spec.TimeSteps).
		Hex()
}

// CompilerOptions configures Deploy-triggered compiles.
type CompilerOptions struct {
	// PartitionIterations is the offline flow's ladder depth
	// (0 = 2, matching the database's 1/2/4-device deployments).
	PartitionIterations int
	// Seed drives the decomposer's equivalence oracle (0 = 1).
	Seed int64
	// Parallelism bounds worker goroutines for cold compiles
	// (0 = one per logical CPU).
	Parallelism int
}

// Compiler ensures the full compilation product of a layer's accelerator
// instance is present in the artifact store. Safe for concurrent use.
type Compiler struct {
	store *artifactstore.Store
	opts  CompilerOptions

	mu    sync.Mutex
	plans map[kernels.LayerSpec]planEntry
}

// planEntry memoizes the layer→instance resolution (including a negative
// verdict, so repeated deploys of an undeployable layer stay cheap).
type planEntry struct {
	opts core.Options
	err  error
}

// NewCompiler builds a compiler over the store (nil store = compile cold
// on every miss of the plan memo's instance, without persistence).
func NewCompiler(store *artifactstore.Store, opts CompilerOptions) *Compiler {
	if opts.PartitionIterations <= 0 {
		opts.PartitionIterations = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Compiler{store: store, opts: opts, plans: map[kernels.LayerSpec]planEntry{}}
}

// Store exposes the backing artifact store for stats and ops surfaces.
func (c *Compiler) Store() *artifactstore.Store { return c.store }

// optionsFor resolves a layer to the accelerator instance the offline
// flow compiles for it: the smallest feasible single-device instance in
// the database's largest-first device order, falling back to the scaled
// per-piece instance for layers no single device can host.
func (c *Compiler) optionsFor(spec kernels.LayerSpec) (core.Options, error) {
	c.mu.Lock()
	if pe, ok := c.plans[spec]; ok {
		c.mu.Unlock()
		return pe.opts, pe.err
	}
	c.mu.Unlock()

	tiles, err := chooseTiles(spec)
	pe := planEntry{err: err}
	if err == nil {
		pe.opts = core.Options{
			Tiles:               tiles,
			PartitionIterations: c.opts.PartitionIterations,
			Seed:                c.opts.Seed,
			PatternAware:        true,
			Parallelism:         c.opts.Parallelism,
		}
	}
	c.mu.Lock()
	c.plans[spec] = pe
	c.mu.Unlock()
	return pe.opts, pe.err
}

// chooseTiles picks the instance tile count for a layer, mirroring the
// database's feasibility order.
func chooseTiles(spec kernels.LayerSpec) (int, error) {
	for _, dev := range deviceTypes() {
		if inst, err := perf.ChooseInstance(spec, dev); err == nil {
			return inst.Tiles, nil
		}
	}
	for _, n := range []int{2, 4} {
		if spec.Hidden%n != 0 {
			continue
		}
		for _, dev := range deviceTypes() {
			if tiles, err := perf.MinTilesScaled(spec, dev, n); err == nil {
				return tiles, nil
			}
		}
	}
	return 0, fmt.Errorf("%w: %v", ErrUndeployable, spec)
}

// PlanKey returns the artifact key a deploy of the layer would ensure,
// without compiling anything. Distinct layers that resolve to the same
// accelerator instance share one key — and therefore one cached
// compilation product — because the artifact is the virtualized
// accelerator, not the model loaded onto it.
func (c *Compiler) PlanKey(spec kernels.LayerSpec) (artifactstore.Key, error) {
	opts, err := c.optionsFor(spec)
	if err != nil {
		return "", err
	}
	return core.CompileKey(opts), nil
}

// Ensure makes the layer's full compilation product present in the
// artifact store and returns it. warm reports a cache hit: the deploy can
// skip straight to placement. The returned artifact is shared and must be
// treated as immutable.
func (c *Compiler) Ensure(spec kernels.LayerSpec) (art *core.Compiled, key artifactstore.Key, warm bool, err error) {
	opts, err := c.optionsFor(spec)
	if err != nil {
		return nil, "", false, err
	}
	return core.CompileAcceleratorCached(opts, c.store)
}
