package rms

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
)

// contEngine is one lease's continuous-batching serving state: the same
// compiled kernel and DRR fair queue as the flush engine, but machines
// keep persistent batch slots. A stream that finishes retires its slot
// immediately and the next request from the fair queue is admitted into
// the freed slot of the already-running batch — no flush boundary, no
// drain-to-empty between batches. The machine pool is sharded across
// worker goroutines with per-shard run queues and work stealing, so one
// lease's machines execute step rounds on every core at once.
//
// Bit-identity: the kernel's Step program reads and writes only the
// slot's private banked window and vector registers, and mv_mul computes
// each stream's product independently, so a stream's outputs are
// byte-identical to a solo run of the monolithic program regardless of
// which cohorts it shares step rounds with (see kernels.Kernel and
// TestStepProgramsMatchMonolithic).
type contEngine struct {
	leaseID int
	kern    *kernels.Kernel
	opts    InferOptions
	faults  func() Faults

	queue    *fairQueue
	queueCap int

	shards   []*engineShard
	machines []*contMachine
	done     chan struct{}
	wg       sync.WaitGroup

	// Load observability (LoadStats).
	served   atomic.Int64
	cohorts  atomic.Int64 // admission cohorts — the "batches" analogue
	pending  atomic.Int64
	waitEWMA atomic.Int64 // admission wait ns, alpha = 1/4

	// resident counts streams currently occupying live slots across all
	// machines (stepping, summed) — the transplant path polls it to zero.
	resident atomic.Int64
	// preemptReq is outstanding explicit-preemption demand in slots;
	// each run round consumes what it can evict (see preempt.go).
	preemptReq atomic.Int64
	// evacuating switches run rounds to evict-only: every resident stream
	// is checkpointed back into the queue so transplantTo can move it.
	evacuating atomic.Bool
	// drainCheckpoint switches run rounds to checkpoint-and-abandon:
	// resident streams are snapshotted and their callers answered
	// ErrLeaseClosing (deadline-bounded shutdown, see closeWithin).
	drainCheckpoint   atomic.Bool
	drainCheckpointed atomic.Int64

	// leakedSlot arms the LeakSlot fault at most once per engine, so the
	// injected capacity leak never starves serving outright; leakedSnap
	// does the same for the LeakSnapshot fault.
	leakedSlot atomic.Bool
	leakedSnap atomic.Bool

	mu     sync.RWMutex
	closed bool
}

// engineShard is one scheduler shard: a mutex-guarded run queue of
// machines plus a one-token wake channel for its worker. Workers pop
// their own queue from the front and steal from other shards' tails.
type engineShard struct {
	mu   sync.Mutex
	runq []*contMachine
	wake chan struct{}
}

func (s *engineShard) pop() *contMachine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.runq) == 0 {
		return nil
	}
	cm := s.runq[0]
	s.runq = s.runq[1:]
	return cm
}

func (s *engineShard) steal() *contMachine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.runq) == 0 {
		return nil
	}
	cm := s.runq[len(s.runq)-1]
	s.runq = s.runq[:len(s.runq)-1]
	return cm
}

// contMachine state machine: idle (no slots, not scheduled) → queued (in
// a shard run queue) → running (a worker owns it for one step round) →
// queued | idle. A machine is in at most one run queue; only the owning
// worker touches slots, so slot state needs no lock — the shard mutex
// hand-off orders the accesses.
const (
	cmIdle int32 = iota
	cmQueued
	cmRunning
)

type contMachine struct {
	m     *accel.Machine
	home  int // home shard
	state atomic.Int32

	slots    []*contSlot // len MaxBatch; nil = free
	occupied int         // non-nil slots, including leaked ones
	stepping int         // occupied minus leaked: the live cohort

	// Scratch reused across rounds so the steady state is allocation-free.
	streams, offs []int
}

// contSlot is one admitted stream's residency in a batch slot.
type contSlot struct {
	req      *inferRequest
	tau      int // next timestep to execute
	steps    int // total timesteps = len(req.inputs)
	admitted time.Time
	base     accel.ExecStats
	leaked   bool // LeakSlot fault: slot permanently lost

	// resumedFrom is the timestep this residency started at (0 for a
	// fresh admission, the snapshot's tau for a restore). A slot is only
	// preemptible once tau > resumedFrom, so every admission cycle makes
	// at least one step of progress — no preemption livelock.
	resumedFrom int
	// carry folds in the work and queue wait accrued in earlier
	// residencies of a preempted stream.
	carry     accel.ExecStats
	carryWait time.Duration
}

func newContEngine(lease *Lease, opts InferOptions, faults func() Faults) (*contEngine, error) {
	kern, err := buildKernel(lease, opts)
	if err != nil {
		return nil, err
	}
	shardN := opts.Shards
	if shardN <= 0 {
		shardN = runtime.GOMAXPROCS(0)
	}
	if shardN > opts.Machines {
		shardN = opts.Machines
	}
	e := &contEngine{
		leaseID:  lease.ID,
		kern:     kern,
		opts:     opts,
		faults:   faults,
		queue:    newFairQueue(),
		queueCap: opts.MaxBatch * opts.Machines * 8,
		done:     make(chan struct{}),
	}
	for i := 0; i < shardN; i++ {
		e.shards = append(e.shards, &engineShard{wake: make(chan struct{}, 1)})
	}
	for i := 0; i < opts.Machines; i++ {
		m, err := kern.NewBatchMachine(opts.MaxBatch)
		if err != nil {
			return nil, err
		}
		// Load the weight tiles once; they stay resident across every
		// stream the machine will ever serve.
		if err := m.Run(kern.SharedInit); err != nil {
			return nil, fmt.Errorf("rms: warming lease %d: %w", lease.ID, err)
		}
		e.machines = append(e.machines, &contMachine{
			m: m, home: i % shardN,
			slots:   make([]*contSlot, opts.MaxBatch),
			streams: make([]int, 0, opts.MaxBatch),
			offs:    make([]int, 0, opts.MaxBatch),
		})
	}
	for i := range e.shards {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// submit enqueues a request and kicks an idle machine. Same load-shed
// contract as the flush engine: never block the caller.
func (e *contEngine) submit(req *inferRequest) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrLeaseClosing
	}
	if int(e.pending.Load()) >= e.queueCap {
		return ErrBusy
	}
	e.pending.Add(1)
	e.queue.push(req)
	e.kick()
	return nil
}

// kick schedules one idle machine to pick the queue up. If every machine
// is queued or running, nothing to do — running machines re-admit from
// the queue every round and requeue themselves while work remains.
func (e *contEngine) kick() {
	for _, cm := range e.machines {
		if cm.state.CompareAndSwap(cmIdle, cmQueued) {
			e.enqueue(cm)
			return
		}
	}
}

func (e *contEngine) enqueue(cm *contMachine) {
	sh := e.shards[cm.home]
	sh.mu.Lock()
	sh.runq = append(sh.runq, cm)
	sh.mu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// dequeue pops the worker's own shard, then tries to steal from the
// other shards' tails.
func (e *contEngine) dequeue(worker int) (cm *contMachine, stolen bool) {
	if cm := e.shards[worker].pop(); cm != nil {
		return cm, false
	}
	n := len(e.shards)
	for i := 1; i < n; i++ {
		if cm := e.shards[(worker+i)%n].steal(); cm != nil {
			return cm, true
		}
	}
	return nil, false
}

// close stops admission, serves everything already queued, and joins the
// workers. Idempotent; concurrent closers all block until drained.
func (e *contEngine) close() {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		close(e.done)
	}
	e.wg.Wait()
}

func (e *contEngine) worker(sh int) {
	defer e.wg.Done()
	for {
		if cm, stolen := e.dequeue(sh); cm != nil {
			e.runRound(cm, stolen)
			continue
		}
		select {
		case <-e.shards[sh].wake:
		case <-e.done:
			// Graceful drain: keep running rounds until every admitted
			// request has been answered, then exit.
			if cm, stolen := e.dequeue(sh); cm != nil {
				e.runRound(cm, stolen)
				continue
			}
			if e.pending.Load() == 0 {
				return
			}
			// Another worker is finishing the tail; don't spin hard.
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// runRound is one scheduler turn on one machine: admit from the fair
// queue into free slots, execute one step round over the resident
// cohort, retire finished streams, and reschedule. Taking at most one
// step per turn before requeueing keeps machines of the same shard (and
// leases sharing a worker) round-robin fair.
func (e *contEngine) runRound(cm *contMachine, stolen bool) {
	cm.state.Store(cmRunning)
	if stolen {
		metrics.Steals.Add(1)
	}
	if e.drainCheckpoint.Load() {
		// Deadline-bounded shutdown: checkpoint and abandon (closeWithin).
		e.checkpointAbandon(cm)
		cm.state.Store(cmIdle)
		return
	}
	if e.evacuating.Load() {
		// Transplant: evict everything back into the queue; transplantTo
		// moves the queue to the destination engine. No admission here.
		e.evictSlots(cm, len(cm.slots), 0, false, true)
		cm.state.Store(cmIdle)
		return
	}
	// Explicit preemption demand: evict what this machine can supply,
	// lowest priority class first.
	if want := e.preemptReq.Load(); want > 0 {
		if n := e.evictSlots(cm, int(want), 0, true, false); n > 0 {
			if e.preemptReq.Add(-int64(n)) < 0 {
				clampNonNegative(&e.preemptReq)
			}
		}
	}
	// Automatic preemption: a full machine evicts batch-class streams
	// while latency-class requests wait in the fair queue, so priority is
	// preemptive rather than drain-and-hope.
	if e.opts.Preempt && cm.occupied >= e.opts.MaxBatch {
		if lw := e.queue.latencyDepth(); lw > 0 {
			if n := e.evictSlots(cm, lw, 1, true, false); n > 0 {
				metrics.PreemptRequests.Add(1)
			}
		}
	}
	if free := e.opts.MaxBatch - cm.occupied; free > 0 {
		if reqs := e.queue.take(free); len(reqs) > 0 {
			e.admitCohort(cm, reqs)
		}
	}
	if cm.stepping == 0 {
		e.park(cm)
		return
	}

	cm.streams = cm.streams[:0]
	cm.offs = cm.offs[:0]
	for s, sl := range cm.slots {
		if sl == nil || sl.leaked {
			continue
		}
		cm.streams = append(cm.streams, s)
		cm.offs = append(cm.offs, e.kern.SlotOffset(s, sl.tau))
	}
	cohort := len(cm.streams)
	if err := cm.m.RunStreams(e.kern.Step, e.kern.WindowBase(), cm.streams, cm.offs); err != nil {
		e.failCohort(cm, err)
		e.park(cm)
		return
	}
	metrics.SlotRounds.Add(1)
	metrics.SlotRoundOccupancy.Add(int64(cohort))
	for _, s := range cm.streams {
		sl := cm.slots[s]
		sl.tau++
		if sl.tau >= sl.steps {
			e.retire(cm, s, sl, cohort)
		}
	}

	if cm.stepping > 0 {
		cm.state.Store(cmQueued)
		e.enqueue(cm)
		return
	}
	e.park(cm)
}

// park sets the machine idle, then re-checks the queue: a submit that
// raced the machine's last (empty) take would otherwise be stranded with
// every machine idle and no wake owed. The CAS loses to a concurrent
// kick, which has already enqueued the machine.
func (e *contEngine) park(cm *contMachine) {
	cm.state.Store(cmIdle)
	if e.queue.depth() > 0 && cm.state.CompareAndSwap(cmIdle, cmQueued) {
		e.enqueue(cm)
	}
}

// admitCohort installs a batch of freshly popped requests into free
// slots. One take'n cohort counts as one "batch" for the flush-era
// counters, so batches ≤ served holds in both planes and mean riders per
// batch stays comparable.
func (e *contEngine) admitCohort(cm *contMachine, reqs []*inferRequest) {
	now := time.Now()
	intoRunning := cm.stepping > 0
	fresh := 0
	riders := map[string]int64{}
	for _, req := range reqs {
		resumed := req.resume != nil
		if e.admit(cm, req, now) && !resumed {
			// Restored streams already rode (and were counted in) the
			// batch of their first admission; only fresh admissions make
			// a new cohort.
			fresh++
			if intoRunning {
				metrics.AdmissionsIntoRunning.Add(1)
			}
			if req.tenant != "" {
				riders[req.tenant]++
			}
		}
	}
	if fresh == 0 {
		return
	}
	e.cohorts.Add(1)
	metrics.BatchesFlushed.Add(1)
	for id, n := range riders {
		metrics.TenantBatchRiders.Add(id, n)
		metrics.TenantBatches.Add(id, 1)
	}
}

// admit writes one request's inputs into a free slot and runs the
// stream-init program (bias loads, state zeroing). Reports whether the
// request now occupies a slot; on error the request is answered and
// finished here.
func (e *contEngine) admit(cm *contMachine, req *inferRequest, now time.Time) bool {
	slot := -1
	for s, sl := range cm.slots {
		if sl == nil {
			slot = s
			break
		}
	}
	if slot < 0 {
		// Cannot happen: take() is bounded by the free-slot count.
		req.resp <- inferResponse{err: fmt.Errorf("rms: lease %d: no free slot", e.leaseID)}
		e.pending.Add(-1)
		return false
	}
	fail := func(err error) bool {
		req.resp <- inferResponse{err: err}
		e.pending.Add(-1)
		return false
	}
	if tok := req.resume; tok != nil {
		// A preempted or transplanted stream: install its checkpoint and
		// resume at the saved timestep instead of re-running StreamInit.
		req.resume = nil
		return e.restore(cm, req, tok, slot, now, fail)
	}
	for t, x := range req.inputs {
		if err := e.kern.SetInputStream(cm.m, slot, t, x); err != nil {
			return fail(err)
		}
	}
	if err := cm.m.RunStreams(e.kern.StreamInit, e.kern.WindowBase(),
		[]int{slot}, []int{e.kern.SlotOffset(slot, 0)}); err != nil {
		return fail(err)
	}
	cm.slots[slot] = &contSlot{
		req: req, steps: len(req.inputs), admitted: now, base: cm.m.Stats(),
	}
	cm.occupied++
	cm.stepping++
	e.resident.Add(1)
	metrics.SlotsActive.Add(1)
	metrics.Admissions.Add(1)
	ewmaUpdate(&e.waitEWMA, int64(now.Sub(req.enqueued)))
	metrics.AdmissionWaitNS.Set(e.waitEWMA.Load())
	return true
}

// retire answers a finished stream and frees its slot — or, under the
// injected LeakSlot fault, answers it and leaks the slot (a one-off
// permanent capacity loss the simtest slot-conservation invariant must
// catch: mlv_slots_active stays elevated at quiescence).
func (e *contEngine) retire(cm *contMachine, s int, sl *contSlot, cohort int) {
	req := sl.req
	outs := make([][]float64, sl.steps)
	var rerr error
	for t := range outs {
		if outs[t], rerr = e.kern.ReadOutputStream(cm.m, s, t); rerr != nil {
			break
		}
	}
	resp := inferResponse{err: rerr}
	if rerr == nil {
		resp = inferResponse{result: &InferResult{
			LeaseID: e.leaseID,
			Outputs: outs,
			// BatchSize is the retire round's co-resident cohort;
			// BatchStats spans the slot's residency, so it includes the
			// co-riders' overlapping work — the continuous analogue of
			// "the batch that carried it".
			BatchSize: cohort,
			Stream:    s,
			// A preempted stream's earlier residencies carry into the
			// final report, so the totals match a never-preempted run's.
			QueueWait:  sl.carryWait + sl.admitted.Sub(req.enqueued),
			BatchStats: cm.m.Stats().Minus(sl.base).Plus(sl.carry),
		}}
	}
	// All accounting lands before the response: a caller that has joined
	// every request (the simtest harness) must see the slot gauge and
	// pending count already settled. The resp channel is buffered, so the
	// late send cannot block.
	e.served.Add(1)
	metrics.InfersServed.Add(1)
	if req.tenant != "" && !(e.faults != nil && e.faults().SkipTenantServedMetric) {
		metrics.TenantServed.Add(req.tenant, 1)
	}
	if e.faults != nil && e.faults().LeakSlot && !e.leakedSlot.Swap(true) {
		sl.req = nil
		sl.leaked = true
		cm.stepping--
		e.resident.Add(-1)
		e.pending.Add(-1)
		req.resp <- resp
		return
	}
	cm.slots[s] = nil
	cm.occupied--
	cm.stepping--
	e.resident.Add(-1)
	metrics.SlotsActive.Add(-1)
	e.pending.Add(-1)
	req.resp <- resp
}

// failCohort answers every live slot with err and frees them; a step
// round that failed has no per-stream result to salvage.
func (e *contEngine) failCohort(cm *contMachine, err error) {
	for _, s := range cm.streams {
		sl := cm.slots[s]
		req := sl.req
		cm.slots[s] = nil
		cm.occupied--
		cm.stepping--
		e.resident.Add(-1)
		metrics.SlotsActive.Add(-1)
		e.pending.Add(-1)
		req.resp <- inferResponse{err: err}
	}
}

func (e *contEngine) load() LoadStats {
	inFlight := 0
	for _, cm := range e.machines {
		if cm.state.Load() != cmIdle {
			inFlight++
		}
	}
	return LoadStats{
		QueueDepth:   e.queue.depth(),
		InFlight:     inFlight,
		Pending:      int(e.pending.Load()),
		Served:       e.served.Load(),
		Batches:      e.cohorts.Load(),
		Machines:     e.opts.Machines,
		AvgQueueWait: time.Duration(e.waitEWMA.Load()),
	}
}

// ewmaUpdate folds sample into the EWMA at a with alpha = 1/4.
func ewmaUpdate(a *atomic.Int64, sample int64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, old+(sample-old)/4) {
			return
		}
	}
}
