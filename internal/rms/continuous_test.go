package rms

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"mlvfpga/internal/metrics"
)

// TestContinuousInferMatchesSolo is the continuous plane's end-to-end
// golden: concurrent variable-length requests through the sharded
// scheduler must each return exactly the solo-machine answer
// (bit-identical float64s from the same fp16 words), and slot accounting
// must conserve — every admission retires and the active-slot gauge
// returns to its baseline.
func TestContinuousInferMatchesSolo(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 2
	opts.MaxBatch = 4
	opts.Shards = 2
	_, dp, lease := testPlane(t, opts)

	slotsBase := metrics.SlotCounters()
	const N = 16
	inputs := make([][][]float64, N)
	results := make([]*InferResult, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		full := testInputs(lease.Spec, int64(100+i))
		// Variable lengths: cycle 1..TimeSteps so streams retire at
		// different rounds and slots turn over mid-batch.
		inputs[i] = full[:1+i%lease.Spec.TimeSteps]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := dp.Infer(lease.ID, inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res == nil {
			t.Fatal("missing result")
		}
		if len(res.Outputs) != len(inputs[i]) {
			t.Fatalf("request %d: %d outputs for %d input steps", i, len(res.Outputs), len(inputs[i]))
		}
		ref := referenceOutputs(t, lease, opts, inputs[i])
		if !reflect.DeepEqual(res.Outputs, ref[:len(inputs[i])]) {
			t.Errorf("request %d: continuous result differs from solo execution", i)
		}
		if res.BatchSize < 1 || res.BatchSize > opts.MaxBatch {
			t.Errorf("request %d: batch size %d outside [1,%d]", i, res.BatchSize, opts.MaxBatch)
		}
	}

	// Slot conservation: admissions == retirements == served, and the
	// gauge drains back to its baseline (retirement decrements may land
	// just after the response, so poll).
	waitFor(t, "slot gauge to drain", func() bool {
		return metrics.SlotCounters()["mlv_slots_active"] == slotsBase["mlv_slots_active"]
	})
	delta := func(name string) int64 {
		return metrics.SlotCounters()[name] - slotsBase[name]
	}
	if got := delta("mlv_admissions"); got != N {
		t.Errorf("admissions delta = %d, want %d", got, N)
	}
	if rounds := delta("mlv_slot_rounds"); rounds <= 0 {
		t.Error("no step rounds recorded")
	} else if occ := delta("mlv_slot_round_occupancy"); occ < rounds {
		t.Errorf("occupancy sum %d < rounds %d", occ, rounds)
	}
}

// TestContinuousAdmitsIntoRunningBatch pins the tentpole behavior: with a
// backlog of alternating short and long requests on one two-slot
// machine, a short stream's retirement must open its slot to the next
// queued request while the long co-rider is still mid-flight — an
// admission into a running batch, which the flush plane cannot do.
func TestContinuousAdmitsIntoRunningBatch(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.Shards = 1
	_, dp, lease := testPlane(t, opts)

	base := metrics.SlotCounters()["mlv_admissions_into_running"]
	e, err := dp.engine(mustLease(t, dp.svc, lease.ID))
	if err != nil {
		t.Fatal(err)
	}
	// Submit directly so queue order is deterministic: alternating
	// lengths guarantee mixed-length cohorts.
	const N = 12
	reqs := make([]*inferRequest, N)
	for i := 0; i < N; i++ {
		full := testInputs(lease.Spec, int64(i))
		reqs[i] = &inferRequest{
			inputs:   full[:1+i%2],
			enqueued: time.Now(),
			resp:     make(chan inferResponse, 1),
		}
		if err := e.submit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, req := range reqs {
		r := <-req.resp
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
	}
	if got := metrics.SlotCounters()["mlv_admissions_into_running"] - base; got == 0 {
		t.Error("no admissions into a running batch — slots drained to empty between cohorts")
	}
}

// TestContinuousResize exercises the engine-swap path over the sharded
// pools: the lease keeps serving across a Resize and the new engine
// reports the new pool size.
func TestContinuousResize(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	_, dp, lease := testPlane(t, opts)

	if _, err := dp.Infer(lease.ID, testInputs(lease.Spec, 1)); err != nil {
		t.Fatal(err)
	}
	if err := dp.Resize(lease.ID, 3); err != nil {
		t.Fatal(err)
	}
	res, err := dp.Infer(lease.ID, testInputs(lease.Spec, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, lease, opts, testInputs(lease.Spec, 2))
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Error("post-resize result differs from solo execution")
	}
	st, ok := dp.Load(lease.ID)
	if !ok || st.Machines != 3 {
		t.Errorf("post-resize load = %+v, ok=%v, want 3 machines", st, ok)
	}
}

// TestContinuousReleaseDrains asserts the close contract: a Release
// racing live traffic loses no admitted request — every Infer either
// completes or is shed with a closing/unknown-lease error, and close
// itself does not hang.
func TestContinuousReleaseDrains(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 2
	_, dp, lease := testPlane(t, opts)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := dp.Infer(lease.ID, testInputs(lease.Spec, int64(i)))
			if err != nil && !errors.Is(err, ErrLeaseClosing) && !errors.Is(err, ErrUnknownLease) {
				t.Errorf("infer during release: %v", err)
			}
		}(i)
	}
	if err := dp.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
