package rms

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/resource"
)

// Regression test: Service.Release (the admission-surface release, not
// DataPlane.Release) must drain the lease's in-flight data-plane batches
// before freeing placements. The request below sits in the micro-batch
// flush window when Release lands; the drain hook must serve it
// immediately instead of leaving it to race the deallocation (or to wait
// out the full FlushDelay on a leaked engine).
func TestServiceReleaseDrainsDataPlane(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Flush = true // the batch window under test is a flush-plane state
	opts.Machines = 1
	opts.MaxBatch = 4
	opts.FlushDelay = 5 * time.Second
	svc, dp, lease := testPlane(t, opts)

	type answer struct {
		res *InferResult
		err error
	}
	got := make(chan answer, 1)
	go func() {
		res, err := dp.Infer(lease.ID, testInputs(lease.Spec, 7))
		got <- answer{res, err}
	}()

	// Wait until the request is admitted (Pending), out of the queue, and
	// not yet executing: the collector holds it and is sitting in the
	// flush wait — the exact state Release must drain.
	waitFor(t, "request to reach the batch window", func() bool {
		st, ok := dp.Load(lease.ID)
		return ok && st.Pending == 1 && st.QueueDepth == 0 && st.InFlight == 0 && st.Served == 0
	})

	start := time.Now()
	if err := svc.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-got:
		if a.err != nil {
			t.Fatalf("queued infer lost to release: %v", a.err)
		}
		if len(a.res.Outputs) != lease.Spec.TimeSteps {
			t.Errorf("drained infer returned %d outputs", len(a.res.Outputs))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued infer still pending after Release returned")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("release drain took %v, want well under the %v flush delay", el, opts.FlushDelay)
	}
	if st := svc.Status(); st.ActiveLeases != 0 || st.Utilization != 0 {
		t.Errorf("after release: %d leases, utilization %v", st.ActiveLeases, st.Utilization)
	}
	if _, ok := dp.Load(lease.ID); ok {
		t.Error("engine still registered after Service.Release")
	}
}

func TestDeployWithDepth(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 256, TimeSteps: 2}

	depths, err := svc.Depths(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(depths) < 3 || depths[0] != 1 {
		t.Fatalf("ladder = %v, want [1 2 4]", depths)
	}

	for _, d := range depths {
		lease, err := svc.DeployWith(spec, PlaceOptions{Depth: d})
		if err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
		if lease.Depth != d || len(lease.Placements) != d {
			t.Errorf("depth %d: got depth %d with %d placements", d, lease.Depth, len(lease.Placements))
		}
		seen := map[int]bool{}
		for _, pl := range lease.Placements {
			if seen[pl.FPGA] {
				t.Errorf("depth %d: device %d used twice", d, pl.FPGA)
			}
			seen[pl.FPGA] = true
		}
		if err := svc.Release(lease.ID); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := svc.DeployWith(spec, PlaceOptions{Depth: 3}); !errors.Is(err, ErrNoSuchDepth) {
		t.Errorf("depth 3: %v, want ErrNoSuchDepth", err)
	}

	// Avoid must keep placements off the vetoed device.
	lease, err := svc.DeployWith(spec, PlaceOptions{Depth: 2, Avoid: func(id int) bool { return id == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range lease.Placements {
		if pl.FPGA == 0 {
			t.Error("placement landed on avoided device 0")
		}
	}
}

func TestPlacementFilterVetoes(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
	svc.SetPlacementFilter(func(id int) bool { return id != 1 })
	lease, err := svc.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range lease.Placements {
		if pl.FPGA == 1 {
			t.Error("placement landed on filtered device 1")
		}
	}
	// Veto everything: capacity error, typed for the 503 mapping.
	svc.SetPlacementFilter(func(int) bool { return false })
	if _, err := svc.Deploy(spec); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("all-vetoed deploy: %v, want ErrNoCapacity", err)
	}
}

func TestMigrateAcrossDepths(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 256, TimeSteps: 2}
	lease, err := svc.DeployWith(spec, PlaceOptions{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	id := lease.ID
	baseline := svc.Status().Utilization

	up, err := svc.Migrate(id, 2, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if up.ID != id || up.Depth != 2 || len(up.Placements) != 2 || up.Migrations != 1 {
		t.Errorf("after scale-up: %+v", up)
	}

	down, err := svc.Migrate(id, 1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if down.Depth != 1 || len(down.Placements) != 1 || down.Migrations != 2 {
		t.Errorf("after scale-down: %+v", down)
	}
	if got := svc.Status().Utilization; got != baseline {
		t.Errorf("utilization %v after round-trip migration, want %v", got, baseline)
	}

	if _, err := svc.Migrate(id, 3, nil, false); !errors.Is(err, ErrNoSuchDepth) {
		t.Errorf("migrate to depth 3: %v, want ErrNoSuchDepth", err)
	}
	if _, err := svc.Migrate(9999, 1, nil, false); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("migrate unknown lease: %v, want ErrUnknownLease", err)
	}

	// A migration that cannot place (every device vetoed) must fail with
	// ErrNoCapacity and — even when forced — leave the lease placed
	// exactly as before.
	before, _ := svc.Lease(id)
	all := func(int) bool { return true }
	if _, err := svc.Migrate(id, 2, all, false); !errorsIsCapacity(err) {
		t.Errorf("vetoed migrate: %v, want ErrNoCapacity", err)
	}
	if _, err := svc.Migrate(id, 2, all, true); !errorsIsCapacity(err) {
		t.Errorf("forced vetoed migrate: %v, want ErrNoCapacity", err)
	}
	after, ok := svc.Lease(id)
	if !ok || len(after.Placements) != len(before.Placements) || after.Placements[0] != before.Placements[0] {
		t.Errorf("failed forced migration did not restore placements: %+v vs %+v", after, before)
	}
}

func errorsIsCapacity(err error) bool { return errors.Is(err, ErrNoCapacity) }

// Migration must avoid a named device even when force-releasing first —
// the evacuation path for dead devices.
func TestForcedMigrationEvacuatesDevice(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 256, TimeSteps: 2}
	lease, err := svc.DeployWith(spec, PlaceOptions{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	dead := lease.Placements[0].FPGA
	avoid := func(id int) bool { return id == dead }
	moved, err := svc.Migrate(lease.ID, 1, avoid, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range moved.Placements {
		if pl.FPGA == dead {
			t.Errorf("evacuated lease still on dead device %d", dead)
		}
	}
}

func TestDataPlaneResize(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	_, dp, lease := testPlane(t, opts)
	inputs := testInputs(lease.Spec, 11)
	want, err := dp.Infer(lease.ID, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := dp.Load(lease.ID); st.Machines != 1 {
		t.Fatalf("machines = %d, want 1", st.Machines)
	}
	if err := dp.Resize(lease.ID, 3); err != nil {
		t.Fatal(err)
	}
	got, err := dp.Infer(lease.ID, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Outputs) != len(want.Outputs) {
		t.Fatal("resize changed output shape")
	}
	for ti := range got.Outputs {
		for i := range got.Outputs[ti] {
			if got.Outputs[ti][i] != want.Outputs[ti][i] {
				t.Fatal("resize changed inference results")
			}
		}
	}
	st, ok := dp.Load(lease.ID)
	if !ok || st.Machines != 3 {
		t.Errorf("after resize: %+v ok=%v, want 3 machines", st, ok)
	}
	if st.Served != 1 {
		t.Errorf("new engine served = %d, want 1", st.Served)
	}
	if err := dp.Resize(9999, 2); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("resize unknown lease: %v", err)
	}
}

// Capacity exhaustion over HTTP must answer 503 (load balancers retry
// elsewhere), never 500 (bugs).
func TestDeployCapacity503(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(svc))
	defer srv.Close()

	body := `{"kind":"LSTM","hidden":1024,"timesteps":4}`
	saw503 := false
	for i := 0; i < 64; i++ {
		resp, err := http.Post(srv.URL+"/deploy", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			continue
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("deploy %d: status %d, want 503", i, resp.StatusCode)
		}
		saw503 = true
		break
	}
	if !saw503 {
		t.Fatal("cluster never filled up — test layer too small")
	}
}

func TestExpvarOnMux(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(svc))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"mlv_leases_active", "mlv_infers_served", "mlv_batches_flushed",
		"mlv_migrations", "mlv_heartbeat_misses", "mlv_devices_condemned",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("expvar %q missing from /debug/vars (have %s)", key, strings.Join(keysOf(vars), ","))
		}
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestFeasibleDepths(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 10}
	all, err := svc.Depths(spec)
	if err != nil {
		t.Fatal(err)
	}
	feasible, err := svc.FeasibleDepths(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The database offers a depth-4 deployment (4×XCVU37P), but the paper
	// cluster has only three of that type: the rung exists on paper, not
	// in the fleet.
	if len(all) != 3 || all[2] != 4 {
		t.Fatalf("Depths = %v, want [1 2 4]", all)
	}
	if len(feasible) != 2 || feasible[0] != 1 || feasible[1] != 2 {
		t.Fatalf("FeasibleDepths = %v, want [1 2]", feasible)
	}

	wide, err := NewService(resource.ClusterSpec{resource.XCVU37P.Name: 4}, testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	feasible, err = wide.FeasibleDepths(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(feasible) != 3 {
		t.Fatalf("FeasibleDepths on 4-wide cluster = %v, want [1 2 4]", feasible)
	}
}
