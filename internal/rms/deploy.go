// Package rms is the runtime management system of the framework (§2.3):
// a system controller that keeps a database of mapping results (clusters
// of soft blocks compiled for every feasible device type), allocates
// physical FPGAs with a greedy policy that minimizes the number of
// allocated devices (and therefore the inter-FPGA communication), and
// sends configuration requests to the HS abstraction's low-level
// controller. Soft blocks of different accelerators share one FPGA when
// virtual blocks are available — the fine-grained sharing the AS ISA-only
// baseline cannot do.
package rms

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/scaleout"
)

// PolicyMode selects the runtime policy of §4.4.
type PolicyMode int

const (
	// Flexible is the proposed policy: one accelerator's soft blocks may
	// deploy onto FPGAs of different types.
	Flexible PolicyMode = iota
	// SameTypeOnly restricts one accelerator's pieces to FPGAs of a single
	// type, chosen at runtime — the literal reading of Fig. 12's
	// "restricted runtime policy".
	SameTypeOnly
	// StaticTarget additionally pins every accelerator to the one device
	// type it was compiled for offline (its lowest-latency feasible
	// target), the way HS abstractions built for homogeneous clusters are
	// actually operated. Fig. 12's restricted system lies between
	// SameTypeOnly and StaticTarget; the experiments report both.
	StaticTarget
)

func (m PolicyMode) String() string {
	switch m {
	case SameTypeOnly:
		return "restricted"
	case StaticTarget:
		return "static-target"
	}
	return "flexible"
}

// PieceReq is one soft block's demand: a device type and a virtual-block
// count.
type PieceReq struct {
	Device string
	Blocks int
}

// Deployment is one mapping result from the database: the pieces to place
// and the modelled task latency when running this way.
type Deployment struct {
	Pieces  []PieceReq
	Latency time.Duration
}

// NumPieces returns the soft-block count (the greedy policy's sort key).
func (d Deployment) NumPieces() int { return len(d.Pieces) }

// TotalBlocks sums virtual blocks across pieces.
func (d Deployment) TotalBlocks() int {
	n := 0
	for _, p := range d.Pieces {
		n += p.Blocks
	}
	return n
}

// Database caches deployment options per layer (the system controller's
// mapping-result store, Fig. 7). It is safe for concurrent use: the
// admission service and the cluster control plane consult it from
// different goroutines.
type Database struct {
	mode PolicyMode
	p    perf.Params
	net  scaleout.TwoFPGAOptions

	mu    sync.Mutex
	cache map[kernels.LayerSpec][]Deployment
}

// NewDatabase builds an empty database.
func NewDatabase(mode PolicyMode, p perf.Params, net scaleout.TwoFPGAOptions) *Database {
	return &Database{mode: mode, p: p, net: net, cache: map[kernels.LayerSpec][]Deployment{}}
}

// ErrUndeployable is returned when no deployment exists for a layer.
var ErrUndeployable = errors.New("rms: no feasible deployment for layer")

// deviceTypes lists device type names largest-first.
func deviceTypes() []string {
	var out []string
	for _, s := range hsvital.AllSpecs() {
		out = append(out, s.Device.Name)
	}
	return out
}

// Options returns the deployments for a layer, sorted by the greedy key:
// ascending soft-block count (§2.3), then latency, then total blocks.
func (db *Database) Options(spec kernels.LayerSpec) ([]Deployment, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if opts, ok := db.cache[spec]; ok {
		return opts, nil
	}
	var opts []Deployment

	// Single-FPGA deployments.
	for _, dev := range deviceTypes() {
		inst, err := perf.ChooseInstance(spec, dev)
		if err != nil {
			continue
		}
		blocks, err := instanceBlocks(dev, inst.Tiles)
		if err != nil {
			continue
		}
		virt, err := perf.Virtualized(spec, inst, 2, db.p)
		if err != nil {
			return nil, err
		}
		opts = append(opts, Deployment{
			Pieces:  []PieceReq{{Device: dev, Blocks: blocks}},
			Latency: virt.Total,
		})
	}

	// Scaled-out deployments across 2 and 4 devices.
	for _, n := range []int{2, 4} {
		if spec.Hidden%n != 0 {
			continue
		}
		for _, combo := range deviceCombos(n, db.mode) {
			dep, err := db.scaledDeployment(spec, combo)
			if err != nil {
				continue
			}
			opts = append(opts, dep)
		}
	}

	if db.mode == StaticTarget && len(opts) > 0 {
		// Keep only deployments for the statically chosen target: the
		// device type of the lowest-latency option.
		best := opts[0]
		for _, o := range opts[1:] {
			if o.Latency < best.Latency {
				best = o
			}
		}
		target := best.Pieces[0].Device
		var kept []Deployment
		for _, o := range opts {
			ok := true
			for _, piece := range o.Pieces {
				if piece.Device != target {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, o)
			}
		}
		opts = kept
	}

	if len(opts) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrUndeployable, spec)
	}
	// Prune mapping results whose modelled latency is more than twice the
	// task's best option: deploying them would trade a small packing gain
	// for a large latency regression (and would violate the performance
	// isolation story of §4.4). The task instead waits for a better slot.
	best := opts[0].Latency
	for _, o := range opts[1:] {
		if o.Latency < best {
			best = o.Latency
		}
	}
	kept := opts[:0]
	for _, o := range opts {
		if float64(o.Latency) <= 2*float64(best) {
			kept = append(kept, o)
		}
	}
	opts = kept
	sort.SliceStable(opts, func(i, j int) bool {
		if opts[i].NumPieces() != opts[j].NumPieces() {
			return opts[i].NumPieces() < opts[j].NumPieces()
		}
		if opts[i].Latency != opts[j].Latency {
			return opts[i].Latency < opts[j].Latency
		}
		return opts[i].TotalBlocks() < opts[j].TotalBlocks()
	})
	db.cache[spec] = opts
	return opts, nil
}

// deviceCombos enumerates device-type multisets of size n. Under the
// restricted policy only uniform combos are allowed.
func deviceCombos(n int, mode PolicyMode) [][]string {
	types := deviceTypes()
	var out [][]string
	if mode != Flexible {
		for _, t := range types {
			combo := make([]string, n)
			for i := range combo {
				combo[i] = t
			}
			out = append(out, combo)
		}
		return out
	}
	// Multisets over two types: k of the first, n-k of the second.
	for k := n; k >= 0; k-- {
		combo := make([]string, 0, n)
		for i := 0; i < k; i++ {
			combo = append(combo, types[0])
		}
		for i := k; i < n; i++ {
			combo = append(combo, types[1])
		}
		out = append(out, combo)
	}
	return out
}

// scaledDeployment builds the deployment for one device combo.
func (db *Database) scaledDeployment(spec kernels.LayerSpec, devices []string) (Deployment, error) {
	n := len(devices)
	pieces := make([]PieceReq, n)
	for i, dev := range devices {
		tiles, err := perf.MinTilesScaled(spec, dev, n)
		if err != nil {
			return Deployment{}, err
		}
		blocks, err := instanceBlocks(dev, tiles)
		if err != nil {
			return Deployment{}, err
		}
		pieces[i] = PieceReq{Device: dev, Blocks: blocks}
	}
	lat, err := scaleout.NFPGALatency(spec, devices, db.p, db.net)
	if err != nil {
		return Deployment{}, err
	}
	return Deployment{Pieces: pieces, Latency: lat}, nil
}

// instanceBlocks converts an instance (device, tiles) into a virtual-block
// count via the Table 2/3 calibration.
func instanceBlocks(device string, tiles int) (int, error) {
	m, err := hsvital.CalibratedAccelerator(device, tiles)
	if err != nil {
		return 0, err
	}
	vspec, err := hsvital.SpecFor(device)
	if err != nil {
		return 0, err
	}
	blocks, err := hsvital.BlocksFor(m.Resources, vspec)
	if err != nil {
		return 0, err
	}
	if blocks > vspec.BlocksPerDevice {
		return 0, fmt.Errorf("%w: instance needs %d blocks on %s", hsvital.ErrNoFit, blocks, device)
	}
	return blocks, nil
}
