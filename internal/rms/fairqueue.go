package rms

import (
	"sync"

	"mlvfpga/internal/metrics"
)

// fairQueue is the weighted fair-share request queue feeding one lease's
// micro-batch assembly: one FIFO per tenant, drained by deficit
// round-robin. Each visit grants a tenant its weight in fresh deficit and
// serves requests (cost 1 each) until the deficit or the FIFO runs out,
// so over any window a tenant's share of batch slots converges to
// weight/Σweights — a batch-class tenant with a deep backlog cannot push
// a latency-class tenant's requests more than one round back.
type fairQueue struct {
	mu sync.Mutex
	// ready carries one wake-up token for collectors; pushes re-arm it and
	// takes re-arm it when requests remain.
	ready chan struct{}

	byID map[string]*tenantFIFO
	// ring holds the tenants with queued requests in round-robin order;
	// pos is the DRR cursor (persisted across takes so leftover deficit
	// carries over).
	ring []*tenantFIFO
	pos  int
	// resuming marks that the last take filled up mid-visit with deficit
	// left at ring[pos]; the next take finishes that visit without
	// re-crediting the quantum.
	resuming bool
	size     int
	// latency counts queued requests with weight > 1 (latency-class
	// tenants) — the automatic-preemption trigger: a machine with no free
	// slots evicts batch-class streams only while latency work waits.
	latency int
}

type tenantFIFO struct {
	id      string
	weight  int
	deficit int
	reqs    []*inferRequest
	active  bool
}

func newFairQueue() *fairQueue {
	return &fairQueue{ready: make(chan struct{}, 1), byID: map[string]*tenantFIFO{}}
}

// push enqueues a request under its tenant and wakes a collector.
func (q *fairQueue) push(r *inferRequest) {
	q.mu.Lock()
	tf := q.byID[r.tenant]
	if tf == nil {
		tf = &tenantFIFO{id: r.tenant, weight: 1}
		q.byID[r.tenant] = tf
	}
	if r.weight > 0 {
		tf.weight = r.weight
	}
	tf.reqs = append(tf.reqs, r)
	if r.weight > 1 {
		q.latency++
	}
	if !tf.active {
		tf.active = true
		q.ring = append(q.ring, tf)
	}
	q.size++
	q.mu.Unlock()
	if r.tenant != "" {
		metrics.TenantQueueDepth.Add(r.tenant, 1)
	}
	q.signal()
}

func (q *fairQueue) signal() {
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

// take collects up to max requests by deficit round-robin. It never
// blocks; an empty queue returns nil. When requests remain after the
// take, the ready token is re-armed so the next collector wakes
// immediately.
func (q *fairQueue) take(max int) []*inferRequest {
	q.mu.Lock()
	var out []*inferRequest
	for q.size > 0 && len(out) < max {
		if q.pos >= len(q.ring) {
			q.pos = 0
		}
		tf := q.ring[q.pos]
		if !q.resuming {
			tf.deficit += tf.weight
		}
		q.resuming = false
		for tf.deficit > 0 && len(tf.reqs) > 0 && len(out) < max {
			r := tf.reqs[0]
			tf.reqs = tf.reqs[1:]
			tf.deficit--
			q.size--
			if r.weight > 1 {
				q.latency--
			}
			out = append(out, r)
		}
		if len(tf.reqs) == 0 {
			// Emptied: leave the ring and forfeit leftover deficit, so an
			// idle tenant cannot bank credit against the others.
			tf.deficit = 0
			tf.active = false
			q.ring = append(q.ring[:q.pos], q.ring[q.pos+1:]...)
			continue // pos now indexes the next tenant
		}
		if len(out) >= max {
			if tf.deficit > 0 {
				// Mid-visit cutoff: finish this tenant's quantum on the
				// next take instead of re-crediting it.
				q.resuming = true
			} else {
				q.pos++ // visit complete, next take starts the next tenant
			}
			break
		}
		q.pos++
	}
	remaining := q.size
	q.mu.Unlock()
	for _, r := range out {
		if r.tenant != "" {
			metrics.TenantQueueDepth.Add(r.tenant, -1)
		}
	}
	if remaining > 0 {
		q.signal()
	}
	return out
}

// depth reports the queued request count (LoadStats.QueueDepth).
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// latencyDepth reports how many queued requests carry a latency-class
// weight — the signal automatic preemption acts on.
func (q *fairQueue) latencyDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.latency
}
