package rms

import (
	"testing"
	"time"
)

func fqReq(tenant string, weight int) *inferRequest {
	return &inferRequest{tenant: tenant, weight: weight, enqueued: time.Now(), resp: make(chan inferResponse, 1)}
}

func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := newFairQueue()
	a1, a2, a3 := fqReq("a", 1), fqReq("a", 1), fqReq("a", 1)
	q.push(a1)
	q.push(a2)
	q.push(a3)
	got := q.take(2)
	if len(got) != 2 || got[0] != a1 || got[1] != a2 {
		t.Fatalf("take(2) broke single-tenant FIFO order: %v", got)
	}
	if got := q.take(8); len(got) != 1 || got[0] != a3 {
		t.Fatalf("second take = %v, want [a3]", got)
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d after draining", q.depth())
	}
}

func TestFairQueueWeightedShare(t *testing.T) {
	// A latency tenant (weight 8) and a batch tenant (weight 1) both have
	// deep backlogs: one DRR round over a 9-slot take must yield an 8:1
	// split.
	q := newFairQueue()
	for i := 0; i < 20; i++ {
		q.push(fqReq("lat", 8))
		q.push(fqReq("bat", 1))
	}
	got := q.take(9)
	counts := map[string]int{}
	for _, r := range got {
		counts[r.tenant]++
	}
	if counts["lat"] != 8 || counts["bat"] != 1 {
		t.Fatalf("9-slot DRR round split %v, want lat:8 bat:1", counts)
	}
}

func TestFairQueueBatchTenantCannotStarve(t *testing.T) {
	// The batch tenant floods first; a latency request arriving later must
	// appear in the very next take, not behind the whole backlog.
	q := newFairQueue()
	for i := 0; i < 64; i++ {
		q.push(fqReq("bat", 1))
	}
	lat := fqReq("lat", 8)
	q.push(lat)
	got := q.take(4)
	found := false
	for _, r := range got {
		if r == lat {
			found = true
		}
	}
	if !found {
		t.Fatalf("latency request missing from next batch: got %d batch riders", len(got))
	}
}

func TestFairQueueDeficitCarriesAcrossTakes(t *testing.T) {
	// A take that fills mid-tenant must resume the same tenant's leftover
	// deficit on the next take rather than re-crediting from zero.
	q := newFairQueue()
	for i := 0; i < 6; i++ {
		q.push(fqReq("a", 4))
	}
	for i := 0; i < 6; i++ {
		q.push(fqReq("b", 4))
	}
	first := q.take(2) // tenant a: deficit 4, serves 2, 2 left
	second := q.take(4)
	counts := map[string]int{}
	for _, r := range append(first, second...) {
		counts[r.tenant]++
	}
	// Across both takes one full round completes: a gets its 4-quantum, b
	// gets the next 2 slots of its own quantum.
	if counts["a"] != 4 || counts["b"] != 2 {
		t.Fatalf("cross-take split %v, want a:4 b:2", counts)
	}
}

func TestFairQueueIdleTenantBanksNoCredit(t *testing.T) {
	q := newFairQueue()
	q.push(fqReq("a", 8))
	if got := q.take(8); len(got) != 1 {
		t.Fatalf("drain take = %d requests", len(got))
	}
	// a emptied out with 7 unused deficit; re-joining must start fresh,
	// not with banked credit from the idle period.
	q.push(fqReq("a", 1))
	q.push(fqReq("b", 1))
	got := q.take(2)
	counts := map[string]int{}
	for _, r := range got {
		counts[r.tenant]++
	}
	if counts["a"] != 1 || counts["b"] != 1 {
		t.Fatalf("post-idle split %v, want a:1 b:1", counts)
	}
}

func TestFairQueueReadySignal(t *testing.T) {
	q := newFairQueue()
	q.push(fqReq("a", 1))
	q.push(fqReq("a", 1))
	select {
	case <-q.ready:
	default:
		t.Fatal("push did not arm the ready token")
	}
	// Partial drain re-arms the token for the remaining request.
	if got := q.take(1); len(got) != 1 {
		t.Fatalf("take(1) = %d requests", len(got))
	}
	select {
	case <-q.ready:
	default:
		t.Fatal("partial take did not re-arm the ready token")
	}
	// Full drain does not.
	if got := q.take(1); len(got) != 1 {
		t.Fatalf("final take = %d requests", len(got))
	}
	select {
	case <-q.ready:
		t.Fatal("empty queue left a stale ready token")
	default:
	}
}

// TestFairQueueLatencyFloodQuantumBound is the inverse starvation case
// under continuous admission: a latency-class flood (weight 8) is
// draining the queue one slot at a time — the slot-granular take pattern
// of continuous batching — and a batch-class request (weight 1) must
// still be served within one DRR cycle, i.e. within Σweights = 9 pops.
func TestFairQueueLatencyFloodQuantumBound(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 64; i++ {
		q.push(fqReq("lat", 8))
	}
	bat := fqReq("bat", 1)
	q.push(bat)
	const bound = 8 + 1 // one full DRR cycle over both quanta
	for pop := 1; pop <= bound; pop++ {
		got := q.take(1)
		if len(got) != 1 {
			t.Fatalf("pop %d returned %d requests", pop, len(got))
		}
		if got[0] == bat {
			return
		}
	}
	t.Fatalf("batch-class request not served within the DRR quantum bound (%d pops)", bound)
}
