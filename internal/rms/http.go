package rms

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strings"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/tenant"
)

// Handler exposes a Service as a JSON HTTP API (the integration surface of
// Fig. 7's "APIs for communicating with the high-level system"):
//
//	POST /deploy   {"kind":"LSTM","hidden":512,"timesteps":25} -> Lease
//	POST /release  {"id":3}                                    -> 204
//	GET  /status                                               -> ClusterStatus
//	GET  /lease/{id}                                           -> Lease
//
// Handler exposes the admission API only; DataPlane.Handler adds the
// /infer and /healthz serving endpoints.
//
// Behind a tenant.Guard the authenticated tenant in the request context
// attributes deploys, gates releases (owner or admin only) and drives
// quota and fair-share decisions. Without a guard (the -insecure server)
// requests are anonymous.
//
// Error responses are uniform JSON {"error": "..."}: 405 on a wrong
// method, 400 on malformed JSON, 404 for unknown leases, 429 +
// Retry-After when the caller's quota or in-flight cap is spent, 503 +
// Retry-After when the cluster is out of capacity (also counted in
// mlv_capacity_rejections).
func Handler(s *Service) http.Handler { return handler(s, nil) }

// Handler exposes the admission API plus the serving endpoints:
//
//	POST /infer    {"id":3,"inputs":[[...h floats...], ...]}   -> InferResult
//	POST /preempt  {"id":3,"slots":2}                          -> {"evicted":N}
//	GET  /healthz                                              -> 200 "ok"
//
// /release drains the lease's engine before freeing its blocks; /preempt
// checkpoints up to slots resident streams of the lease back into its
// fair queue (409 when the lease serves on the flush plane, which has no
// resident streams to preempt).
func (dp *DataPlane) Handler() http.Handler { return handler(dp.svc, dp) }

// retryAfter is the backoff hint stamped on 429/503 responses.
const retryAfter = "1"

func handler(s *Service, dp *DataPlane) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	// shed answers a capacity (503) or quota (429) rejection with a
	// Retry-After hint; 503s count in mlv_capacity_rejections so
	// load-shedding is observable.
	shed := func(w http.ResponseWriter, code int, err error) {
		w.Header().Set("Retry-After", retryAfter)
		if code == http.StatusServiceUnavailable {
			metrics.CapacityRejections.Add(1)
		}
		writeErr(w, code, err)
	}
	// caller resolves the authenticated tenant id ("" when no guard is
	// installed, i.e. anonymous -insecure mode).
	caller := func(r *http.Request) (string, bool) {
		t, _ := tenant.FromContext(r.Context())
		return t.ID, t.Admin
	}

	mux.HandleFunc("/deploy", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req struct {
			Kind      string `json:"kind"`
			Hidden    int    `json:"hidden"`
			TimeSteps int    `json:"timesteps"`
			Depth     int    `json:"depth"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
			return
		}
		var kind kernels.RNNKind
		switch strings.ToUpper(req.Kind) {
		case "LSTM":
			kind = kernels.LSTM
		case "GRU":
			kind = kernels.GRU
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown cell kind %q", req.Kind))
			return
		}
		if req.Hidden <= 0 || req.TimeSteps <= 0 {
			writeErr(w, http.StatusBadRequest, errors.New("hidden and timesteps must be positive"))
			return
		}
		who, _ := caller(r)
		lease, err := s.DeployWith(
			kernels.LayerSpec{Kind: kind, Hidden: req.Hidden, TimeSteps: req.TimeSteps},
			PlaceOptions{Depth: req.Depth, Tenant: who},
		)
		switch {
		case errors.Is(err, ErrQuotaExceeded):
			shed(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrNoCapacity):
			shed(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrUndeployable), errors.Is(err, ErrNoSuchDepth):
			writeErr(w, http.StatusUnprocessableEntity, err)
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, lease)
		}
	})

	mux.HandleFunc("/release", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req struct {
			ID int `json:"id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
			return
		}
		// Ownership: an authenticated tenant may only release its own
		// leases; admins may release anything. Anonymous mode (no tenant
		// in context) keeps the historical allow-all behaviour.
		if who, admin := caller(r); who != "" && !admin {
			if lease, ok := s.Lease(req.ID); ok && lease.Tenant != who {
				metrics.TenantRejections.Add(who, 1)
				writeErr(w, http.StatusForbidden,
					fmt.Errorf("lease %d is not owned by tenant %s", req.ID, who))
				return
			}
		}
		release := s.Release
		if dp != nil {
			release = dp.Release
		}
		if err := release(req.ID); err != nil {
			if errors.Is(err, ErrUnknownLease) {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})

	// Process-wide counters (leases, infers, batches, migrations,
	// heartbeat misses, per-tenant maps — see internal/metrics) for
	// operators and the cluster control plane.
	mux.Handle("/debug/vars", expvar.Handler())

	if dp != nil {
		mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
				return
			}
			var req struct {
				ID     int         `json:"id"`
				Inputs [][]float64 `json:"inputs"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
				return
			}
			who, _ := caller(r)
			res, err := dp.InferAs(who, req.ID, req.Inputs)
			switch {
			case errors.Is(err, ErrUnknownLease):
				writeErr(w, http.StatusNotFound, err)
			case errors.Is(err, ErrTenantBusy):
				shed(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrBusy), errors.Is(err, ErrLeaseClosing):
				shed(w, http.StatusServiceUnavailable, err)
			case err != nil:
				writeErr(w, http.StatusBadRequest, err)
			default:
				writeJSON(w, http.StatusOK, res)
			}
		})
	}

	if dp != nil {
		mux.HandleFunc("/preempt", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
				return
			}
			var req struct {
				ID    int `json:"id"`
				Slots int `json:"slots"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
				return
			}
			// Ownership mirrors /release: a tenant may only preempt its own
			// leases, admins (and anonymous mode) may preempt any.
			if who, admin := caller(r); who != "" && !admin {
				if lease, ok := s.Lease(req.ID); ok && lease.Tenant != who {
					metrics.TenantRejections.Add(who, 1)
					writeErr(w, http.StatusForbidden,
						fmt.Errorf("lease %d is not owned by tenant %s", req.ID, who))
					return
				}
			}
			evicted, err := dp.Preempt(req.ID, req.Slots)
			switch {
			case errors.Is(err, ErrUnknownLease):
				writeErr(w, http.StatusNotFound, err)
			case errors.Is(err, ErrFlushPlane):
				writeErr(w, http.StatusConflict, err)
			case err != nil:
				writeErr(w, http.StatusInternalServerError, err)
			default:
				writeJSON(w, http.StatusOK, map[string]int{"evicted": evicted})
			}
		})
	}

	mux.HandleFunc("/lease/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("GET required"))
			return
		}
		var id int
		if _, err := fmt.Sscanf(r.URL.Path, "/lease/%d", &id); err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("bad lease id"))
			return
		}
		lease, ok := s.Lease(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %d", ErrUnknownLease, id))
			return
		}
		writeJSON(w, http.StatusOK, lease)
	})

	return mux
}
