package rms

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strings"

	"mlvfpga/internal/kernels"
)

// Handler exposes a Service as a JSON HTTP API (the integration surface of
// Fig. 7's "APIs for communicating with the high-level system"):
//
//	POST /deploy   {"kind":"LSTM","hidden":512,"timesteps":25} -> Lease
//	POST /release  {"id":3}                                    -> 204
//	GET  /status                                               -> ClusterStatus
//	GET  /lease/{id}                                           -> Lease
//
// Handler exposes the admission API only; DataPlane.Handler adds the
// /infer and /healthz serving endpoints.
func Handler(s *Service) http.Handler { return handler(s, nil) }

// Handler exposes the admission API plus the serving endpoints:
//
//	POST /infer    {"id":3,"inputs":[[...h floats...], ...]}   -> InferResult
//	GET  /healthz                                              -> 200 "ok"
//
// /release drains the lease's engine before freeing its blocks.
func (dp *DataPlane) Handler() http.Handler { return handler(dp.svc, dp) }

func handler(s *Service, dp *DataPlane) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("/deploy", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req struct {
			Kind      string `json:"kind"`
			Hidden    int    `json:"hidden"`
			TimeSteps int    `json:"timesteps"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var kind kernels.RNNKind
		switch strings.ToUpper(req.Kind) {
		case "LSTM":
			kind = kernels.LSTM
		case "GRU":
			kind = kernels.GRU
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown cell kind %q", req.Kind))
			return
		}
		if req.Hidden <= 0 || req.TimeSteps <= 0 {
			writeErr(w, http.StatusBadRequest, errors.New("hidden and timesteps must be positive"))
			return
		}
		lease, err := s.Deploy(kernels.LayerSpec{Kind: kind, Hidden: req.Hidden, TimeSteps: req.TimeSteps})
		switch {
		case errors.Is(err, ErrNoCapacity):
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrUndeployable):
			writeErr(w, http.StatusUnprocessableEntity, err)
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, lease)
		}
	})

	mux.HandleFunc("/release", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		var req struct {
			ID int `json:"id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		release := s.Release
		if dp != nil {
			release = dp.Release
		}
		if err := release(req.ID); err != nil {
			if errors.Is(err, ErrUnknownLease) {
				writeErr(w, http.StatusNotFound, err)
				return
			}
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})

	// Process-wide counters (leases, infers, batches, migrations,
	// heartbeat misses — see internal/metrics) for operators and the
	// cluster control plane.
	mux.Handle("/debug/vars", expvar.Handler())

	if dp != nil {
		mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
				return
			}
			var req struct {
				ID     int         `json:"id"`
				Inputs [][]float64 `json:"inputs"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			res, err := dp.Infer(req.ID, req.Inputs)
			switch {
			case errors.Is(err, ErrUnknownLease):
				writeErr(w, http.StatusNotFound, err)
			case errors.Is(err, ErrLeaseClosing):
				writeErr(w, http.StatusServiceUnavailable, err)
			case err != nil:
				writeErr(w, http.StatusBadRequest, err)
			default:
				writeJSON(w, http.StatusOK, res)
			}
		})
	}

	mux.HandleFunc("/lease/", func(w http.ResponseWriter, r *http.Request) {
		var id int
		if _, err := fmt.Sscanf(r.URL.Path, "/lease/%d", &id); err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("bad lease id"))
			return
		}
		lease, ok := s.Lease(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %d", ErrUnknownLease, id))
			return
		}
		writeJSON(w, http.StatusOK, lease)
	})

	return mux
}
