package rms

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlvfpga/internal/metrics"
	"mlvfpga/internal/tenant"
)

// TestHTTPErrorPaths table-drives the hardened error contract: every
// endpoint answers a wrong method with 405 and malformed JSON with 400,
// always as a JSON {"error": ...} body.
func TestHTTPErrorPaths(t *testing.T) {
	svc, dp, lease := testPlane(t, DefaultInferOptions())
	_ = svc
	h := dp.Handler()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   int
	}{
		{"deploy wrong method", http.MethodGet, "/deploy", "", http.StatusMethodNotAllowed},
		{"deploy delete", http.MethodDelete, "/deploy", "", http.StatusMethodNotAllowed},
		{"deploy malformed json", http.MethodPost, "/deploy", "{not json", http.StatusBadRequest},
		{"deploy unknown kind", http.MethodPost, "/deploy", `{"kind":"CNN","hidden":8,"timesteps":2}`, http.StatusBadRequest},
		{"deploy non-positive dims", http.MethodPost, "/deploy", `{"kind":"LSTM","hidden":0,"timesteps":2}`, http.StatusBadRequest},
		{"release wrong method", http.MethodGet, "/release", "", http.StatusMethodNotAllowed},
		{"release malformed json", http.MethodPost, "/release", "][", http.StatusBadRequest},
		{"release unknown lease", http.MethodPost, "/release", `{"id":424242}`, http.StatusNotFound},
		{"infer wrong method", http.MethodPut, "/infer", "", http.StatusMethodNotAllowed},
		{"infer malformed json", http.MethodPost, "/infer", `{"id":`, http.StatusBadRequest},
		{"infer unknown lease", http.MethodPost, "/infer", `{"id":424242,"inputs":[[0]]}`, http.StatusNotFound},
		{fmt.Sprintf("infer bad shape for lease %d", lease.ID), http.MethodPost, "/infer",
			fmt.Sprintf(`{"id":%d,"inputs":[[1,2,3]]}`, lease.ID), http.StatusBadRequest},
		{"lease wrong method", http.MethodPost, "/lease/1", "", http.StatusMethodNotAllowed},
		{"lease bad id", http.MethodGet, "/lease/banana", "", http.StatusBadRequest},
		{"lease unknown id", http.MethodGet, "/lease/424242", "", http.StatusNotFound},
		{"status wrong method", http.MethodPost, "/status", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *bytes.Reader
			if tc.body == "" {
				body = bytes.NewReader(nil)
			} else {
				body = bytes.NewReader([]byte(tc.body))
			}
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(tc.method, tc.path, body))
			if w.Code != tc.code {
				t.Fatalf("code %d, want %d (body %s)", w.Code, tc.code, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("body %q is not a JSON error", w.Body.String())
			}
		})
	}
}

// TestHTTPQuotaResponses checks the 429-with-Retry-After contract for
// quota and in-flight breaches surfaced through the HTTP layer.
func TestHTTPQuotaResponses(t *testing.T) {
	svc, dp, _ := testPlane(t, DefaultInferOptions())
	reg, err := tenant.NewRegistry(
		tenant.Tenant{ID: "tiny", Key: "tiny-key", Quotas: tenant.Quotas{MaxLeases: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetTenants(reg)
	dp.SetTenants(reg)
	now := time.Unix(1_700_000_000, 0)
	nonce := 0
	guard := tenant.NewGuard(reg, tenant.GuardOptions{Now: func() time.Time { return now }})
	h := guard.Wrap(dp.Handler())

	post := func(path, body string) *httptest.ResponseRecorder {
		nonce++
		r := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		tenant.SignRequest(r, "tiny", []byte("tiny-key"), []byte(body), now, fmt.Sprintf("n%d", nonce))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	deployBody := `{"kind":"LSTM","hidden":256,"timesteps":2}`
	if w := post("/deploy", deployBody); w.Code != http.StatusOK {
		t.Fatalf("first deploy: %d %s", w.Code, w.Body.String())
	}
	before := metrics.CapacityRejections.Value()
	w := post("/deploy", deployBody)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("quota-blocked deploy: %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 lacks Retry-After")
	}
	// Quota rejections are the tenant's problem, not the cluster's: they
	// must NOT count as capacity rejections.
	if got := metrics.CapacityRejections.Value(); got != before {
		t.Fatalf("capacity rejections moved by %d on a quota 429", got-before)
	}
}

// TestHTTPCapacity503RetryAfter checks that a genuine out-of-capacity
// deploy answers 503 + Retry-After and counts in mlv_capacity_rejections.
func TestHTTPCapacity503RetryAfter(t *testing.T) {
	svc := newService(t)
	h := Handler(svc)
	// Fill the paper cluster with big leases until a deploy fails.
	spec := `{"kind":"GRU","hidden":2560,"timesteps":100}`
	before := metrics.CapacityRejections.Value()
	var last *httptest.ResponseRecorder
	for i := 0; i < 32; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/deploy", strings.NewReader(spec)))
		last = w
		if w.Code != http.StatusOK {
			break
		}
	}
	if last.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturating deploy: %d, want 503 (body %s)", last.Code, last.Body.String())
	}
	if last.Header().Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
	if got := metrics.CapacityRejections.Value(); got != before+1 {
		t.Fatalf("capacity rejections delta = %d, want 1", got-before)
	}
}

// TestHTTPReleaseOwnership checks lease ownership on /release: a tenant
// cannot release another tenant's lease, an admin can.
func TestHTTPReleaseOwnership(t *testing.T) {
	svc, dp, _ := testPlane(t, DefaultInferOptions())
	reg, err := tenant.NewRegistry(
		tenant.Tenant{ID: "owner", Key: "ko"},
		tenant.Tenant{ID: "other", Key: "kx"},
		tenant.Tenant{ID: "root", Key: "kr", Admin: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetTenants(reg)
	dp.SetTenants(reg)
	now := time.Unix(1_700_000_000, 0)
	nonce := 0
	guard := tenant.NewGuard(reg, tenant.GuardOptions{Now: func() time.Time { return now }})
	h := guard.Wrap(dp.Handler())

	post := func(id, key, path, body string) *httptest.ResponseRecorder {
		nonce++
		r := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		tenant.SignRequest(r, id, []byte(key), []byte(body), now, fmt.Sprintf("own%d", nonce))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	w := post("owner", "ko", "/deploy", `{"kind":"LSTM","hidden":256,"timesteps":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("deploy: %d %s", w.Code, w.Body.String())
	}
	var lease Lease
	if err := json.Unmarshal(w.Body.Bytes(), &lease); err != nil {
		t.Fatal(err)
	}
	if lease.Tenant != "owner" {
		t.Fatalf("lease tenant = %q, want owner", lease.Tenant)
	}
	releaseBody := fmt.Sprintf(`{"id":%d}`, lease.ID)
	if w := post("other", "kx", "/release", releaseBody); w.Code != http.StatusForbidden {
		t.Fatalf("cross-tenant release: %d, want 403 (body %s)", w.Code, w.Body.String())
	}
	if _, ok := svc.Lease(lease.ID); !ok {
		t.Fatal("lease vanished after forbidden release")
	}
	if w := post("root", "kr", "/release", releaseBody); w.Code != http.StatusNoContent {
		t.Fatalf("admin release: %d, want 204 (body %s)", w.Code, w.Body.String())
	}
}

// TestHTTPUnauthenticatedMutationsRejected drives every mutating endpoint
// through a guard with no credentials: all must reject 401.
func TestHTTPUnauthenticatedMutationsRejected(t *testing.T) {
	_, dp, lease := testPlane(t, DefaultInferOptions())
	reg, err := tenant.NewRegistry(tenant.Tenant{ID: "a", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	guard := tenant.NewGuard(reg, tenant.GuardOptions{})
	h := guard.Wrap(dp.Handler())

	for _, tc := range []struct{ path, body string }{
		{"/deploy", `{"kind":"LSTM","hidden":256,"timesteps":2}`},
		{"/release", fmt.Sprintf(`{"id":%d}`, lease.ID)},
		{"/infer", fmt.Sprintf(`{"id":%d,"inputs":[[0]]}`, lease.ID)},
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body)))
		if w.Code != http.StatusUnauthorized {
			t.Errorf("unsigned POST %s: %d, want 401", tc.path, w.Code)
		}
	}
	// Reads stay open.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/status", nil))
	if w.Code != http.StatusOK {
		t.Errorf("GET /status through guard: %d, want 200", w.Code)
	}
}

// TestHTTPDeployWithDepthField checks the /deploy depth constraint maps
// ErrNoSuchDepth to 422.
func TestHTTPDeployWithDepthField(t *testing.T) {
	svc := newService(t)
	h := Handler(svc)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/deploy",
		strings.NewReader(`{"kind":"LSTM","hidden":256,"timesteps":2,"depth":3}`)))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("impossible depth: %d, want 422 (body %s)", w.Code, w.Body.String())
	}
}

// TestHTTPPreempt drives the /preempt endpoint: error contract, the
// flush-plane 409, ownership gating, and a successful eviction count.
func TestHTTPPreempt(t *testing.T) {
	_, dp, lease := testPlane(t, DefaultInferOptions())
	h := dp.Handler()

	do := func(method, body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(method, "/preempt", strings.NewReader(body)))
		return w
	}

	if w := do(http.MethodGet, ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /preempt: %d, want 405", w.Code)
	}
	if w := do(http.MethodPost, "{oops"); w.Code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", w.Code)
	}
	if w := do(http.MethodPost, `{"id":424242,"slots":1}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown lease: %d, want 404", w.Code)
	}

	// No engine yet: a valid no-op answering zero evictions.
	w := do(http.MethodPost, fmt.Sprintf(`{"id":%d,"slots":1}`, lease.ID))
	if w.Code != http.StatusOK {
		t.Fatalf("preempt idle lease: %d %s", w.Code, w.Body.String())
	}
	var rep struct {
		Evicted int `json:"evicted"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil || rep.Evicted != 0 {
		t.Fatalf("body %q, want {\"evicted\":0}", w.Body.String())
	}

	// Flush-plane leases have no resident streams to checkpoint: 409.
	fopts := DefaultInferOptions()
	fopts.Flush = true
	_, fdp, flease := testPlane(t, fopts)
	if _, err := fdp.Infer(flease.ID, testInputs(flease.Spec, 1)); err != nil {
		t.Fatal(err)
	}
	fw := httptest.NewRecorder()
	fdp.Handler().ServeHTTP(fw, httptest.NewRequest(http.MethodPost, "/preempt",
		strings.NewReader(fmt.Sprintf(`{"id":%d,"slots":1}`, flease.ID))))
	if fw.Code != http.StatusConflict {
		t.Errorf("flush-plane preempt: %d, want 409 (body %s)", fw.Code, fw.Body.String())
	}
}

// TestHTTPPreemptOwnership checks a tenant cannot preempt another
// tenant's lease while admins can.
func TestHTTPPreemptOwnership(t *testing.T) {
	svc, dp, _ := testPlane(t, DefaultInferOptions())
	reg, err := tenant.NewRegistry(
		tenant.Tenant{ID: "owner", Key: "ko"},
		tenant.Tenant{ID: "other", Key: "kx"},
		tenant.Tenant{ID: "root", Key: "kr", Admin: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetTenants(reg)
	dp.SetTenants(reg)
	now := time.Unix(1_700_000_000, 0)
	nonce := 0
	guard := tenant.NewGuard(reg, tenant.GuardOptions{Now: func() time.Time { return now }})
	h := guard.Wrap(dp.Handler())

	post := func(id, key, path, body string) *httptest.ResponseRecorder {
		nonce++
		r := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		tenant.SignRequest(r, id, []byte(key), []byte(body), now, fmt.Sprintf("pre%d", nonce))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	w := post("owner", "ko", "/deploy", `{"kind":"LSTM","hidden":256,"timesteps":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("deploy: %d %s", w.Code, w.Body.String())
	}
	var lease Lease
	if err := json.Unmarshal(w.Body.Bytes(), &lease); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"id":%d,"slots":1}`, lease.ID)
	if w := post("other", "kx", "/preempt", body); w.Code != http.StatusForbidden {
		t.Fatalf("cross-tenant preempt: %d, want 403 (body %s)", w.Code, w.Body.String())
	}
	if w := post("owner", "ko", "/preempt", body); w.Code != http.StatusOK {
		t.Fatalf("owner preempt: %d (body %s)", w.Code, w.Body.String())
	}
	if w := post("root", "kr", "/preempt", body); w.Code != http.StatusOK {
		t.Fatalf("admin preempt: %d (body %s)", w.Code, w.Body.String())
	}
}
