package rms

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/tenant"
)

// ErrLeaseClosing is returned by Infer when the lease's engine is shutting
// down (release or server drain).
var ErrLeaseClosing = errors.New("rms: lease is closing")

// ErrBusy is returned when a lease's serving queue is full — the cluster
// is saturated, shed load and retry (HTTP maps this to 503 +
// Retry-After).
var ErrBusy = errors.New("rms: serving queue full")

// ErrTenantBusy is returned when the calling tenant is at its in-flight
// request cap — the cluster may be idle, the tenant has spent its share
// (HTTP maps this to 429 + Retry-After).
var ErrTenantBusy = errors.New("rms: tenant at in-flight request cap")

// ErrFlushPlane is returned by preemption operations against a lease
// served by the legacy flush plane, which has no persistent slots to
// checkpoint.
var ErrFlushPlane = errors.New("rms: lease is on the flush plane; preemption needs continuous batching")

// InferOptions tunes the online data plane.
type InferOptions struct {
	// MaxBatch is the largest micro-batch one machine executes; a full
	// batch flushes immediately. Under continuous batching it is the
	// per-machine slot count.
	MaxBatch int
	// FlushDelay bounds how long a partial batch waits for co-riders
	// before it flushes (flush plane only; continuous admission has no
	// flush boundary to wait for).
	FlushDelay time.Duration
	// Machines is the per-lease machine pool size: how many batches of a
	// lease can execute concurrently.
	Machines int
	// Flush selects the legacy flush-and-wait micro-batching plane. The
	// default (false) is continuous batching: persistent per-machine
	// batch slots, immediate retirement, admission into running batches,
	// and a sharded work-stealing scheduler (see contEngine).
	Flush bool
	// Shards is the continuous plane's scheduler shard count (per-shard
	// run queues, one worker each, work stealing between them).
	// 0 = GOMAXPROCS; capped at Machines.
	Shards int
	// Tiles is the simulated tile-engine count per machine.
	Tiles int
	// MantissaBits overrides the BFP mantissa width (0 = default).
	MantissaBits int
	// Seed derives per-lease weights (Seed + lease id), standing in for a
	// real deployment's model upload.
	Seed int64
	// Preempt enables automatic preemption in the continuous plane: a
	// machine with no free slots checkpoints batch-class streams while
	// latency-class requests wait in the fair queue, instead of making
	// them wait for a natural retirement. Explicit preemption
	// (DataPlane.Preempt) works regardless of this flag.
	Preempt bool
}

// DefaultInferOptions returns the serving defaults.
func DefaultInferOptions() InferOptions {
	return InferOptions{
		MaxBatch:   8,
		FlushDelay: 500 * time.Microsecond,
		Machines:   2,
		Tiles:      2,
		Seed:       1,
	}
}

// InferResult is one request's answer plus batching observability: which
// stream of how large a batch served it, how long it queued, and the
// execution-stat delta of the batch that carried it (shared by its
// co-riders — TileCacheHits there is what weight-stationary batching
// saves). Under continuous batching, BatchSize is the co-resident cohort
// at the request's retire round and BatchStats spans its slot residency.
type InferResult struct {
	LeaseID    int             `json:"lease_id"`
	Outputs    [][]float64     `json:"outputs"`
	BatchSize  int             `json:"batch_size"`
	Stream     int             `json:"stream"`
	QueueWait  time.Duration   `json:"queue_wait_ns"`
	BatchStats accel.ExecStats `json:"batch_stats"`
}

type inferRequest struct {
	inputs   [][]float64
	enqueued time.Time
	resp     chan inferResponse
	// tenant and weight drive the fair-share queue: requests are queued
	// per tenant and drained by deficit round-robin with this DRR quantum.
	// Anonymous requests share the "" tenant at weight 1.
	tenant string
	weight int
	// resume, when set, carries a preempted stream's checkpoint: admission
	// restores it and continues from the saved timestep instead of running
	// StreamInit (continuous plane only).
	resume *resumeToken
}

type inferResponse struct {
	result *InferResult
	err    error
}

// leaseEngine is the data plane's per-lease serving engine: the legacy
// flush-and-wait micro-batcher (inferEngine) or the continuous-batching
// plane (contEngine). Both preserve the DRR fair-queue contract and the
// load-shed error surface.
type leaseEngine interface {
	submit(req *inferRequest) error
	close()
	load() LoadStats
}

// newLeaseEngine builds the engine the options select.
func newLeaseEngine(lease *Lease, opts InferOptions, faults func() Faults) (leaseEngine, error) {
	if opts.Flush {
		return newInferEngine(lease, opts, faults)
	}
	return newContEngine(lease, opts, faults)
}

// buildKernel compiles a lease's layer with per-lease weights (Seed +
// lease id stands in for a real deployment's model upload).
func buildKernel(lease *Lease, opts InferOptions) (*kernels.Kernel, error) {
	spec := lease.Spec
	w := kernels.RandomWeights(spec.Kind, spec.Hidden, opts.Seed+int64(lease.ID))
	kern, err := kernels.Build(w, spec.TimeSteps, opts.Tiles)
	if err != nil {
		return nil, fmt.Errorf("rms: building kernel for lease %d: %w", lease.ID, err)
	}
	kern.Cfg.MantissaBits = opts.MantissaBits
	return kern, nil
}

// inferEngine is one lease's serving state: the compiled kernel, a
// free-list of warm machines (weights resident in every tile cache), and
// the micro-batching collector goroutine.
type inferEngine struct {
	leaseID int
	kern    *kernels.Kernel
	opts    InferOptions
	// faults reads the owning data plane's injected-fault flags (nil in
	// tests that build engines directly).
	faults func() Faults

	queue *fairQueue
	// queueCap bounds admitted-but-unanswered requests; submit sheds load
	// with ErrBusy beyond it.
	queueCap int
	pool     chan *accel.Machine
	done     chan struct{}
	loopDone chan struct{}
	running  sync.WaitGroup
	// flushTimer is reused across partial-batch waits (collector-only).
	flushTimer *time.Timer

	// Load observability for the cluster control plane.
	served   atomic.Int64
	batches  atomic.Int64
	inFlight atomic.Int64
	pending  atomic.Int64
	waitEWMA atomic.Int64 // nanoseconds, alpha = 1/4

	mu     sync.RWMutex
	closed bool
}

func newInferEngine(lease *Lease, opts InferOptions, faults func() Faults) (*inferEngine, error) {
	kern, err := buildKernel(lease, opts)
	if err != nil {
		return nil, err
	}
	e := &inferEngine{
		leaseID:  lease.ID,
		kern:     kern,
		opts:     opts,
		faults:   faults,
		queue:    newFairQueue(),
		queueCap: opts.MaxBatch * opts.Machines * 8,
		pool:     make(chan *accel.Machine, opts.Machines),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for i := 0; i < opts.Machines; i++ {
		m, err := kern.NewBatchMachine(opts.MaxBatch)
		if err != nil {
			return nil, err
		}
		// Warm the tile cache (and size the register files) so the first
		// request already runs the steady-state path.
		if err := m.Run(kern.Prog); err != nil {
			return nil, fmt.Errorf("rms: warming lease %d: %w", lease.ID, err)
		}
		e.pool <- m
	}
	go e.loop()
	return e, nil
}

// submit enqueues a request unless the engine is closing or the queue is
// at its bound (load shed: ErrBusy, never block the caller).
func (e *inferEngine) submit(req *inferRequest) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrLeaseClosing
	}
	if int(e.pending.Load()) >= e.queueCap {
		return ErrBusy
	}
	e.pending.Add(1)
	e.queue.push(req)
	return nil
}

// close stops admission, serves everything already queued, and waits for
// in-flight batches to finish.
func (e *inferEngine) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	<-e.loopDone
	e.running.Wait()
}

// loop collects micro-batches and dispatches each to a pooled machine.
// Collection continues while a batch executes, so up to opts.Machines
// batches of one lease run concurrently.
func (e *inferEngine) loop() {
	defer close(e.loopDone)
	for {
		batch, ok := e.collect()
		if !ok {
			return
		}
		m := <-e.pool
		e.running.Add(1)
		go e.execute(m, batch)
	}
}

// collect blocks for the first request, then drains the fair-share queue
// by deficit round-robin; a partial batch waits up to FlushDelay for
// co-riders. A full batch flushes immediately. The queue's ready channel
// carries one wake-up token re-armed whenever requests remain, so a take
// that empties nothing (token raced a previous drain) just loops.
func (e *inferEngine) collect() ([]*inferRequest, bool) {
	var batch []*inferRequest
	for len(batch) == 0 {
		select {
		case <-e.queue.ready:
			batch = e.queue.take(e.opts.MaxBatch)
		case <-e.done:
			// Graceful drain: serve what is already queued, then stop.
			batch = e.queue.take(e.opts.MaxBatch)
			if len(batch) == 0 {
				return nil, false
			}
		}
	}
	if len(batch) >= e.opts.MaxBatch || e.opts.FlushDelay <= 0 {
		return batch, true
	}
	// One timer per engine, reused across partial-batch waits, instead of
	// an allocation per collection. On every exit except the timer firing
	// itself the timer is stopped and its channel drained, so the next
	// Reset starts from a clean state. Only the collector goroutine
	// touches it.
	if e.flushTimer == nil {
		e.flushTimer = time.NewTimer(e.opts.FlushDelay)
	} else {
		e.flushTimer.Reset(e.opts.FlushDelay)
	}
	fired := false
	defer func() {
		if fired {
			return
		}
		if !e.flushTimer.Stop() {
			select {
			case <-e.flushTimer.C:
			default:
			}
		}
	}()
	for len(batch) < e.opts.MaxBatch {
		select {
		case <-e.queue.ready:
			batch = append(batch, e.queue.take(e.opts.MaxBatch-len(batch))...)
		case <-e.flushTimer.C:
			fired = true
			return batch, true
		case <-e.done:
			return batch, true
		}
	}
	return batch, true
}

// execute runs one micro-batch on m and answers every rider.
func (e *inferEngine) execute(m *accel.Machine, batch []*inferRequest) {
	defer e.running.Done()
	defer func() { e.pool <- m }()
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	defer e.pending.Add(-int64(len(batch)))

	fail := func(err error) {
		for _, req := range batch {
			req.resp <- inferResponse{err: err}
		}
	}
	w, err := e.kern.Window(len(batch))
	if err != nil {
		fail(err)
		return
	}
	for s, req := range batch {
		for t, x := range req.inputs {
			if err := e.kern.SetInputStream(m, s, t, x); err != nil {
				fail(err)
				return
			}
		}
	}
	started := time.Now()
	before := m.Stats()
	if err := m.RunBatch(e.kern.Prog, w); err != nil {
		fail(err)
		return
	}
	delta := m.Stats().Minus(before)
	e.batches.Add(1)
	e.served.Add(int64(len(batch)))
	metrics.BatchesFlushed.Add(1)
	metrics.InfersServed.Add(int64(len(batch)))
	skipServed := e.faults != nil && e.faults().SkipTenantServedMetric
	riders := map[string]int64{}
	for _, req := range batch {
		if req.tenant != "" {
			riders[req.tenant]++
		}
	}
	for id, n := range riders {
		metrics.TenantBatchRiders.Add(id, n)
		metrics.TenantBatches.Add(id, 1)
		if !skipServed {
			metrics.TenantServed.Add(id, n)
		}
	}
	for _, req := range batch {
		// EWMA of queue wait, alpha 1/4: new = old + (sample-old)/4.
		wait := int64(started.Sub(req.enqueued))
		for {
			old := e.waitEWMA.Load()
			if e.waitEWMA.CompareAndSwap(old, old+(wait-old)/4) {
				break
			}
		}
	}
	for s, req := range batch {
		// Variable-length requests: only len(inputs) timesteps are live
		// (the program still runs the full unrolled sequence; h_t for
		// t < len depends only on inputs up to t).
		outs := make([][]float64, len(req.inputs))
		var rerr error
		for t := range outs {
			if outs[t], rerr = e.kern.ReadOutputStream(m, s, t); rerr != nil {
				break
			}
		}
		if rerr != nil {
			req.resp <- inferResponse{err: rerr}
			continue
		}
		req.resp <- inferResponse{result: &InferResult{
			LeaseID:    e.leaseID,
			Outputs:    outs,
			BatchSize:  len(batch),
			Stream:     s,
			QueueWait:  started.Sub(req.enqueued),
			BatchStats: delta,
		}}
	}
}

func (e *inferEngine) load() LoadStats {
	return LoadStats{
		QueueDepth:   e.queue.depth(),
		InFlight:     int(e.inFlight.Load()),
		Pending:      int(e.pending.Load()),
		Served:       e.served.Load(),
		Batches:      e.batches.Load(),
		Machines:     e.opts.Machines,
		AvgQueueWait: time.Duration(e.waitEWMA.Load()),
	}
}

// Faults enables deliberate bug injection for the deterministic
// simulation harness (internal/simtest): each flag disables one
// correctness mechanism so the harness's invariant checkers and failure
// minimizer can be validated against a known, reproducible bug. The zero
// value injects nothing. Never set in production code paths.
type Faults struct {
	// SkipReleaseTombstone makes a release leave the lease's engine
	// registered and un-tombstoned — recreating the engine-leak bug class
	// the tombstone map exists to prevent. CheckInvariants must catch the
	// orphaned engine on the next sweep.
	SkipReleaseTombstone bool
	// SkipTenantServedMetric makes execute skip the per-tenant served
	// counter — recreating the accounting-drift bug class the simtest
	// per-tenant counter invariant exists to catch (served deltas must
	// equal the event model's answered-request count).
	SkipTenantServedMetric bool
	// LeakSlot makes the continuous plane leak one batch slot: the first
	// stream to retire is answered but its slot is never freed —
	// recreating the slot-leak bug class (permanent capacity loss) the
	// simtest slot-conservation invariant exists to catch
	// (mlv_slots_active must return to its baseline at quiescence).
	LeakSlot bool
	// LeakSnapshot makes the continuous plane drop one preemption
	// checkpoint: the eviction counts its capture but the resume token is
	// discarded, so the stream restarts from scratch — recreating the
	// lost-checkpoint bug class the simtest snapshot-conservation
	// invariant (mlv_snapshot_captures == mlv_snapshot_restores at
	// quiescence) exists to catch.
	LeakSnapshot bool
	// RestoreAtZero makes a restore resume at timestep 0 instead of the
	// checkpoint's saved stream PC — recreating the stale-PC bug class the
	// golden preempted-twin invariant (restored outputs bit-identical to a
	// never-preempted run) exists to catch.
	RestoreAtZero bool
}

// DataPlane serves inferences against admitted leases: per-lease machine
// pools with resident (weight-stationary) tiles, fed by a fair-share
// queue — continuously batched by default, flush micro-batched when
// InferOptions.Flush is set.
//
// The submit path is de-contended: the engine table sits behind an
// RWMutex taken shared on the hot path, fault flags and the tenant
// registry are atomic pointers, and the per-tenant in-flight gate is
// striped by tenant-id hash so unrelated tenants never serialize on one
// lock.
type DataPlane struct {
	svc  *Service
	opts InferOptions

	mu      sync.RWMutex
	engines map[int]*engineSlot
	// released tombstones drained lease ids (lease ids are never reused),
	// so a Resize or lazy engine build racing a Release can never install
	// an engine for a lease whose placements are already freed.
	released map[int]bool

	faults atomic.Pointer[Faults]
	// tenants, when set, turns on per-tenant in-flight caps and fair-share
	// weights for InferAs.
	tenants atomic.Pointer[tenant.Registry]
	// inflight counts each tenant's admitted-and-unanswered requests
	// across all leases (the MaxInFlight quota gate), striped by tenant-id
	// hash: a tenant always maps to one stripe, so its check-and-increment
	// stays atomic while different tenants proceed in parallel.
	inflight [inflightStripes]inflightStripe
}

const inflightStripes = 32

type inflightStripe struct {
	mu sync.Mutex
	n  map[string]int
}

// stripe maps a tenant id to its in-flight stripe (FNV-1a).
func (dp *DataPlane) stripe(tenantID string) *inflightStripe {
	h := uint32(2166136261)
	for i := 0; i < len(tenantID); i++ {
		h ^= uint32(tenantID[i])
		h *= 16777619
	}
	return &dp.inflight[h%inflightStripes]
}

// SetTenants installs the tenant registry: InferAs resolves fair-share
// weights and enforces MaxInFlight caps against it. A nil registry
// restores anonymous serving.
func (dp *DataPlane) SetTenants(reg *tenant.Registry) {
	dp.tenants.Store(reg)
}

// InjectFaults arms deliberate bugs for the simulation harness.
func (dp *DataPlane) InjectFaults(f Faults) {
	dp.faults.Store(&f)
}

// CheckInvariants audits the data plane's engine and tombstone tables
// against the admission service's live-lease set: every registered engine
// must belong to a live lease, and no live lease may carry a release
// tombstone. The deterministic simulation harness runs this after every
// event; any error is a consistency bug, not an operational condition.
func (dp *DataPlane) CheckInvariants() error {
	live := map[int]bool{}
	for _, l := range dp.svc.Leases() {
		live[l.ID] = true
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	for id := range dp.engines {
		if !live[id] {
			return fmt.Errorf("rms: engine registered for non-live lease %d", id)
		}
	}
	for id := range dp.released {
		if live[id] {
			return fmt.Errorf("rms: release tombstone for live lease %d", id)
		}
	}
	return nil
}

type engineSlot struct {
	once sync.Once
	// ready flips after e/err are final, so lock-free readers (Load) can
	// check it without racing the once body.
	ready atomic.Bool
	e     leaseEngine
	err   error
}

// NewDataPlane builds a data plane over the admission service and
// registers its drain hook, so Service.Release (called directly or via
// HTTP) always drains the lease's engine before freeing placements.
func NewDataPlane(svc *Service, opts InferOptions) *DataPlane {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1
	}
	if opts.Machines <= 0 {
		opts.Machines = 1
	}
	if opts.Tiles <= 0 {
		opts.Tiles = 1
	}
	dp := &DataPlane{
		svc: svc, opts: opts,
		engines:  map[int]*engineSlot{},
		released: map[int]bool{},
	}
	for i := range dp.inflight {
		dp.inflight[i].n = map[string]int{}
	}
	svc.SetDrainer(dp.drainEngine)
	return dp
}

// LoadStats is a lease's live serving load, the control plane's
// depth-selection signal.
type LoadStats struct {
	// QueueDepth is the number of requests waiting for a batch right now.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of batches executing right now.
	InFlight int `json:"in_flight"`
	// Pending is the number of requests admitted and not yet answered:
	// queued, riding an open batch window, or executing.
	Pending int `json:"pending"`
	// Served and Batches are lifetime totals for the engine.
	Served  int64 `json:"served"`
	Batches int64 `json:"batches"`
	// Machines is the engine's current pool size.
	Machines int `json:"machines"`
	// AvgQueueWait is an EWMA of request queue wait.
	AvgQueueWait time.Duration `json:"avg_queue_wait_ns"`
}

// Load reports a lease's serving load. ok is false when the lease has no
// engine yet (nothing inferred since deploy or resize) — callers should
// treat that as an idle lease.
func (dp *DataPlane) Load(leaseID int) (LoadStats, bool) {
	dp.mu.RLock()
	slot := dp.engines[leaseID]
	dp.mu.RUnlock()
	if slot == nil || !slot.ready.Load() || slot.e == nil {
		return LoadStats{}, false
	}
	return slot.e.load(), true
}

// Resize swaps the lease's engine for one with the given machine-pool
// size (the data-plane side of a depth migration: a deeper deployment
// executes more concurrent batches). The swap is lossless — new requests
// go to the new engine immediately while the old engine drains its queue
// and finishes in-flight batches before retiring.
func (dp *DataPlane) Resize(leaseID, machines int) error {
	lease, ok := dp.svc.Lease(leaseID)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, leaseID)
	}
	if machines <= 0 {
		machines = 1
	}
	opts := dp.opts
	opts.Machines = machines
	e, err := newLeaseEngine(lease, opts, dp.faultState)
	if err != nil {
		return err
	}
	slot := &engineSlot{e: e}
	slot.once.Do(func() {}) // mark resolved: e is pre-built
	slot.ready.Store(true)
	dp.mu.Lock()
	if dp.released[leaseID] {
		// A concurrent Release drained the lease after the lookup above:
		// installing now would leak an engine for a freed lease.
		dp.mu.Unlock()
		e.close()
		return fmt.Errorf("%w: %d", ErrUnknownLease, leaseID)
	}
	old := dp.engines[leaseID]
	dp.engines[leaseID] = slot
	dp.mu.Unlock()
	if old != nil {
		old.once.Do(func() {})
		if old.e != nil {
			if oldCE, ok := old.e.(*contEngine); ok {
				if newCE, ok2 := e.(*contEngine); ok2 {
					// Make-before-break: the new engine is serving, so move
					// the old engine's queued and resident streams over —
					// residents are checkpointed and resume mid-sequence on
					// the new pool instead of being re-run.
					oldCE.transplantTo(newCE)
				}
			}
			old.e.close()
		}
	}
	return nil
}

// Preempt checkpoints up to n of the lease's resident streams back into
// its fair queue (n <= 0 means one machine's full slot count). The
// returned count is what was evicted synchronously from idle machines;
// the remainder is posted as demand the running machines consume on
// their next step rounds. A lease with no engine yet has nothing
// resident and reports 0.
func (dp *DataPlane) Preempt(leaseID, n int) (int, error) {
	if _, ok := dp.svc.Lease(leaseID); !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownLease, leaseID)
	}
	if n <= 0 {
		n = dp.opts.MaxBatch
	}
	dp.mu.RLock()
	slot := dp.engines[leaseID]
	dp.mu.RUnlock()
	if slot == nil || !slot.ready.Load() || slot.e == nil {
		return 0, nil
	}
	ce, ok := slot.e.(*contEngine)
	if !ok {
		return 0, ErrFlushPlane
	}
	return ce.preempt(n), nil
}

// faultState reads the injected-fault flags (passed to engines as their
// faults accessor).
func (dp *DataPlane) faultState() Faults {
	if f := dp.faults.Load(); f != nil {
		return *f
	}
	return Faults{}
}

// Infer runs the lease's layer on inputs anonymously (see InferAs).
func (dp *DataPlane) Infer(leaseID int, inputs [][]float64) (*InferResult, error) {
	return dp.InferAs("", leaseID, inputs)
}

// InferAs runs the lease's layer on inputs (one vector of the layer's
// hidden size per timestep, up to the layer's unrolled length — shorter
// sequences retire early under continuous batching) on behalf of
// tenantID and returns the per-timestep hidden states. The request rides
// a batch with whatever else is in flight for the lease, scheduled by
// weighted fair share across tenants; a tenant at its MaxInFlight cap is
// shed with ErrTenantBusy. An empty tenantID is anonymous: weight 1, no
// cap.
func (dp *DataPlane) InferAs(tenantID string, leaseID int, inputs [][]float64) (*InferResult, error) {
	weight := 0
	if tenantID != "" {
		metrics.TenantRequests.Add(tenantID, 1)
		st := dp.stripe(tenantID)
		st.mu.Lock()
		if reg := dp.tenants.Load(); reg != nil {
			t, ok := reg.Lookup(tenantID)
			if !ok {
				st.mu.Unlock()
				metrics.TenantRejections.Add(tenantID, 1)
				return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, tenantID)
			}
			if limit := t.Quotas.MaxInFlight; limit > 0 && st.n[tenantID] >= limit {
				st.mu.Unlock()
				metrics.TenantRejections.Add(tenantID, 1)
				return nil, fmt.Errorf("%w: %s", ErrTenantBusy, tenantID)
			}
			weight = t.EffectiveWeight()
		}
		st.n[tenantID]++
		st.mu.Unlock()
		defer func() {
			st.mu.Lock()
			st.n[tenantID]--
			if st.n[tenantID] <= 0 {
				delete(st.n, tenantID)
			}
			st.mu.Unlock()
		}()
	}
	lease, ok := dp.svc.Lease(leaseID)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownLease, leaseID)
	}
	spec := lease.Spec
	if len(inputs) == 0 || len(inputs) > spec.TimeSteps {
		return nil, fmt.Errorf("rms: got %d input vectors, layer takes 1..%d timesteps", len(inputs), spec.TimeSteps)
	}
	for t, x := range inputs {
		if len(x) != spec.Hidden {
			return nil, fmt.Errorf("rms: input %d has %d elements, hidden size is %d", t, len(x), spec.Hidden)
		}
	}
	e, err := dp.engine(lease)
	if err != nil {
		return nil, err
	}
	req := &inferRequest{
		inputs: inputs, enqueued: time.Now(), resp: make(chan inferResponse, 1),
		tenant: tenantID, weight: weight,
	}
	if err := e.submit(req); err != nil {
		return nil, err
	}
	r := <-req.resp
	return r.result, r.err
}

// engine returns the lease's serving engine, building it on first use.
// The steady-state lookup takes the read lock only.
func (dp *DataPlane) engine(lease *Lease) (leaseEngine, error) {
	dp.mu.RLock()
	released := dp.released[lease.ID]
	slot, ok := dp.engines[lease.ID]
	dp.mu.RUnlock()
	if released {
		return nil, ErrLeaseClosing
	}
	if !ok {
		dp.mu.Lock()
		if dp.released[lease.ID] {
			dp.mu.Unlock()
			return nil, ErrLeaseClosing
		}
		slot, ok = dp.engines[lease.ID]
		if !ok {
			slot = &engineSlot{}
			dp.engines[lease.ID] = slot
		}
		dp.mu.Unlock()
	}
	slot.once.Do(func() {
		slot.e, slot.err = newLeaseEngine(lease, dp.opts, dp.faultState)
		slot.ready.Store(true)
	})
	if slot.err != nil {
		return nil, slot.err
	}
	return slot.e, nil
}

// Release frees the lease. The engine drain happens inside
// Service.Release via the registered drain hook, so releasing through
// either surface is equivalent.
func (dp *DataPlane) Release(leaseID int) error {
	return dp.svc.Release(leaseID)
}

// drainEngine retires the lease's engine: admission stops, queued
// requests are served, in-flight batches finish. Idempotent.
func (dp *DataPlane) drainEngine(leaseID int) {
	if dp.faultState().SkipReleaseTombstone {
		return
	}
	dp.mu.Lock()
	dp.released[leaseID] = true
	slot := dp.engines[leaseID]
	delete(dp.engines, leaseID)
	dp.mu.Unlock()
	if slot != nil {
		// Ensure the once has resolved before closing.
		slot.once.Do(func() {})
		if slot.e != nil {
			slot.e.close()
		}
	}
}

// Close drains and stops every engine (leases stay admitted; pair with
// Service.Release for a full teardown).
func (dp *DataPlane) Close() {
	dp.mu.Lock()
	slots := make([]*engineSlot, 0, len(dp.engines))
	for id, s := range dp.engines {
		slots = append(slots, s)
		delete(dp.engines, id)
	}
	dp.mu.Unlock()
	for _, s := range slots {
		s.once.Do(func() {})
		if s.e != nil {
			s.e.close()
		}
	}
}

// CloseWithin drains and stops every engine like Close, but bounded by
// one shared deadline: continuous engines that cannot drain in time
// checkpoint their still-running streams and answer their callers
// ErrLeaseClosing (flush engines drain unbounded — they have no
// checkpoint path). Returns how many in-flight streams were
// checkpointed, for the server's shutdown log.
func (dp *DataPlane) CloseWithin(d time.Duration) int {
	dp.mu.Lock()
	slots := make([]*engineSlot, 0, len(dp.engines))
	for id, s := range dp.engines {
		slots = append(slots, s)
		delete(dp.engines, id)
	}
	dp.mu.Unlock()
	deadline := time.Now().Add(d)
	checkpointed := 0
	for _, s := range slots {
		s.once.Do(func() {})
		if s.e == nil {
			continue
		}
		if ce, ok := s.e.(*contEngine); ok {
			remain := time.Until(deadline)
			if remain < 0 {
				remain = 0
			}
			checkpointed += ce.closeWithin(remain)
			continue
		}
		s.e.close()
	}
	return checkpointed
}
