package rms

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/resource"
)

func testPlane(t *testing.T, opts InferOptions) (*Service, *DataPlane, *Lease) {
	t.Helper()
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	lease, err := svc.Deploy(kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDataPlane(svc, opts)
	t.Cleanup(dp.Close)
	return svc, dp, lease
}

// waitFor polls a state predicate until it holds, failing the test after a
// generous deadline. Tests wait on observable state, never on bare sleeps:
// a sleep tuned to "usually long enough" flakes under -race and load, while
// a predicate poll is exact and terminates as soon as the state is reached.
func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func testInputs(spec kernels.LayerSpec, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([][]float64, spec.TimeSteps)
	for t := range xs {
		x := make([]float64, spec.Hidden)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		xs[t] = x
	}
	return xs
}

// referenceOutputs runs the lease's layer directly on a standalone machine
// (same derived weights), bypassing the data plane.
func referenceOutputs(t *testing.T, lease *Lease, opts InferOptions, inputs [][]float64) [][]float64 {
	t.Helper()
	spec := lease.Spec
	w := kernels.RandomWeights(spec.Kind, spec.Hidden, opts.Seed+int64(lease.ID))
	k, err := kernels.Build(w, spec.TimeSteps, opts.Tiles)
	if err != nil {
		t.Fatal(err)
	}
	m, err := k.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for tt, x := range inputs {
		if err := k.SetInput(m, tt, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(k.Prog); err != nil {
		t.Fatal(err)
	}
	outs := make([][]float64, spec.TimeSteps)
	for tt := range outs {
		if outs[tt], err = k.ReadOutput(m, tt); err != nil {
			t.Fatal(err)
		}
	}
	return outs
}

func TestInferMatchesDirectKernel(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	_, dp, lease := testPlane(t, opts)
	inputs := testInputs(lease.Spec, 3)
	res, err := dp.Infer(lease.ID, inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, lease, opts, inputs)
	if !reflect.DeepEqual(res.Outputs, want) {
		t.Error("data-plane inference differs from direct kernel execution")
	}
	if res.LeaseID != lease.ID || res.BatchSize < 1 {
		t.Errorf("result metadata = %+v", res)
	}
	if res.BatchStats.Instructions == 0 {
		t.Error("batch stats not threaded through")
	}
}

// TestInferBatchesConcurrentRequests forces co-riding: with a generous
// flush delay, 4 concurrent requests must share one batch, every rider
// must see BatchSize 4, and each must still get exactly its own
// single-stream answer (batching determinism through the whole stack).
func TestInferBatchesConcurrentRequests(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Flush = true // co-riding via the flush window is the behavior under test
	opts.Machines = 1
	opts.MaxBatch = 4
	opts.FlushDelay = 200 * time.Millisecond
	_, dp, lease := testPlane(t, opts)

	// Prime the engine so the batch window opens after all goroutines are
	// submitting.
	if _, err := dp.Infer(lease.ID, testInputs(lease.Spec, 99)); err != nil {
		t.Fatal(err)
	}

	const B = 4
	results := make([]*InferResult, B)
	inputs := make([][][]float64, B)
	var wg sync.WaitGroup
	for i := 0; i < B; i++ {
		inputs[i] = testInputs(lease.Spec, int64(i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := dp.Infer(lease.ID, inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatal("missing result")
		}
		if res.BatchSize != B {
			t.Errorf("request %d rode batch of %d, want %d", i, res.BatchSize, B)
		}
		want := referenceOutputs(t, lease, opts, inputs[i])
		if !reflect.DeepEqual(res.Outputs, want) {
			t.Errorf("request %d: batched result differs from solo execution", i)
		}
	}
	// A warm batch serves every rider's m_rd from the tile cache.
	if hits := results[0].BatchStats.TileCacheHits; hits == 0 {
		t.Error("batched run recorded no tile-cache hits")
	}
	if misses := results[0].BatchStats.TileCacheMisses; misses != 0 {
		t.Errorf("warm batch missed the tile cache %d times", misses)
	}
}

func TestInferUnknownAndReleasedLease(t *testing.T) {
	opts := DefaultInferOptions()
	_, dp, lease := testPlane(t, opts)
	if _, err := dp.Infer(9999, testInputs(lease.Spec, 1)); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("unknown lease: %v", err)
	}
	if _, err := dp.Infer(lease.ID, testInputs(lease.Spec, 1)); err != nil {
		t.Fatal(err)
	}
	if err := dp.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Infer(lease.ID, testInputs(lease.Spec, 1)); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("released lease: %v", err)
	}
}

func TestInferValidatesShape(t *testing.T) {
	opts := DefaultInferOptions()
	_, dp, lease := testPlane(t, opts)
	if _, err := dp.Infer(lease.ID, [][]float64{{1, 2}}); err == nil {
		t.Error("short input accepted")
	}
	bad := testInputs(lease.Spec, 1)
	bad[1] = bad[1][:10]
	if _, err := dp.Infer(lease.ID, bad); err == nil {
		t.Error("wrong hidden size accepted")
	}
}

// TestInferConcurrentLoad hammers one lease from many goroutines; run
// under -race this is the data plane's concurrency guard.
func TestInferConcurrentLoad(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 2
	opts.MaxBatch = 4
	opts.FlushDelay = 100 * time.Microsecond
	_, dp, lease := testPlane(t, opts)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := dp.Infer(lease.ID, testInputs(lease.Spec, int64(g*10+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestInferHTTP(t *testing.T) {
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultInferOptions()
	dp := NewDataPlane(svc, opts)
	defer dp.Close()
	srv := httptest.NewServer(dp.Handler())
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp = post("/deploy", map[string]any{"kind": "LSTM", "hidden": 256, "timesteps": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: %d", resp.StatusCode)
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
	resp = post("/infer", map[string]any{"id": lease.ID, "inputs": testInputs(spec, 5)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d", resp.StatusCode)
	}
	var res InferResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Outputs) != 2 || len(res.Outputs[0]) != 256 {
		t.Errorf("infer outputs shape %dx%d", len(res.Outputs), len(res.Outputs[0]))
	}

	resp = post("/infer", map[string]any{"id": lease.ID, "inputs": [][]float64{{1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad shape: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = post("/release", map[string]any{"id": lease.ID})
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("release: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = post("/infer", map[string]any{"id": lease.ID, "inputs": testInputs(spec, 5)})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("infer after release: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	if got := svc.Status().ActiveLeases; got != 0 {
		t.Errorf("active leases after release = %d", got)
	}
}

func TestResizeRacingReleaseDoesNotLeakEngine(t *testing.T) {
	svc, dp, lease := testPlane(t, DefaultInferOptions())
	// Keep resizing while the lease is released; the loop stops at the
	// first error (unknown lease, or the tombstone blocking the install).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for dp.Resize(lease.ID, 2) == nil {
		}
	}()
	// Release only after at least one resize landed, so the loop is
	// provably mid-flight when the lease goes away.
	waitFor(t, "first resize to land", func() bool {
		st, ok := dp.Load(lease.ID)
		return ok && st.Machines == 2
	})
	if err := svc.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	<-done
	dp.mu.Lock()
	_, leaked := dp.engines[lease.ID]
	dp.mu.Unlock()
	if leaked {
		t.Fatal("engine installed for a released lease")
	}
	if _, ok := dp.Load(lease.ID); ok {
		t.Fatal("Load reports an engine for a released lease")
	}
	// The tombstone also blocks the lazy engine build from a stale lease
	// snapshot (an Infer that looked the lease up before the release) and
	// a Resize that passed its lease lookup before the drain.
	if _, err := dp.engine(lease); !errors.Is(err, ErrLeaseClosing) {
		t.Fatalf("engine() on released lease: %v, want ErrLeaseClosing", err)
	}
	if err := dp.Resize(lease.ID, 2); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("Resize on released lease: %v, want ErrUnknownLease", err)
	}
}
