package rms

import (
	"sync/atomic"
	"time"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/snapshot"
)

// resumeToken carries a preempted (or transplant-evacuated) stream's
// checkpoint back through the fair queue: the encoded snapshot blob plus
// the work and queue-wait accrued in earlier residencies, so the final
// retirement reports the same totals a never-preempted run would.
type resumeToken struct {
	data      []byte
	stats     accel.ExecStats
	wait      time.Duration
	preempted bool
}

// evictSlots checkpoints up to max resident streams of cm back into the
// fair queue, batch-class victims first. maxWeight > 0 restricts victims
// to that DRR weight class (automatic preemption never displaces
// latency-class streams); maxWeight == 0 allows any. ignoreProgress
// skips the livelock guard — evacuation and drain move every stream
// regardless of progress because they never re-admit on this engine.
// Caller must own cm (cmRunning).
func (e *contEngine) evictSlots(cm *contMachine, max, maxWeight int, preempted, ignoreProgress bool) int {
	if max <= 0 {
		return 0
	}
	evicted := 0
	pass := func(limit int) {
		for s, sl := range cm.slots {
			if evicted >= max {
				return
			}
			if sl == nil || sl.leaked {
				continue
			}
			if limit > 0 && sl.req.weight > limit {
				continue
			}
			// Progress guard: a slot is preemptible only once it has
			// stepped past where this residency started, so every
			// admission cycle completes at least one timestep and a
			// preemption storm cannot livelock a stream.
			if !ignoreProgress && sl.tau <= sl.resumedFrom {
				continue
			}
			e.evictOne(cm, s, sl, preempted)
			evicted++
		}
	}
	pass(1)
	if maxWeight == 0 && evicted < max {
		pass(0)
	}
	return evicted
}

// evictOne checkpoints one resident stream and requeues its request with
// a resume token. The request stays pending (admitted-but-unanswered),
// so the push bypasses the queue cap by design — eviction must never
// shed load the engine already accepted.
func (e *contEngine) evictOne(cm *contMachine, s int, sl *contSlot, preempted bool) {
	req := sl.req
	free := func() {
		cm.slots[s] = nil
		cm.occupied--
		cm.stepping--
		e.resident.Add(-1)
		metrics.SlotsActive.Add(-1)
	}
	snap, err := e.kern.SnapshotSlot(cm.m, s, sl.tau, sl.steps)
	if err != nil {
		// Unsnapshottable slot: the stream cannot be moved, answer it.
		free()
		e.pending.Add(-1)
		req.resp <- inferResponse{err: err}
		return
	}
	blob := snap.Encode()
	metrics.SnapshotCaptures.Add(1)
	metrics.SnapshotBytes.Add(int64(len(blob)))
	if preempted {
		metrics.PreemptEvictions.Add(1)
	}
	tok := &resumeToken{
		data:      blob,
		stats:     cm.m.Stats().Minus(sl.base).Plus(sl.carry),
		wait:      sl.carryWait + sl.admitted.Sub(req.enqueued),
		preempted: preempted,
	}
	if e.faults != nil && e.faults().LeakSnapshot && !e.leakedSnap.Swap(true) {
		// Injected bug: the checkpoint is dropped and the stream restarts
		// from scratch — the capture above never pairs with a restore.
		tok = nil
	}
	req.resume = tok
	req.enqueued = time.Now()
	free()
	e.queue.push(req)
}

// restore installs a checkpoint into a free slot (the resume-token arm
// of admit). It deliberately does not bump the Admissions counter: the
// stream was admitted when it first entered a slot, and the simtest
// admission model counts each request once.
func (e *contEngine) restore(cm *contMachine, req *inferRequest, tok *resumeToken, slot int, now time.Time, fail func(error) bool) bool {
	snap, err := snapshot.Decode(tok.data)
	if err != nil {
		return fail(err)
	}
	if err := e.kern.RestoreSlot(cm.m, slot, snap); err != nil {
		return fail(err)
	}
	tau := int(snap.Tau)
	if e.faults != nil && e.faults().RestoreAtZero {
		// Injected bug: resume at timestep 0 instead of the saved PC; the
		// restored register state is step-tau state, so outputs diverge
		// from the never-preempted twin.
		tau = 0
	}
	cm.slots[slot] = &contSlot{
		req: req, tau: tau, resumedFrom: tau, steps: int(snap.Steps),
		admitted: now, base: cm.m.Stats(),
		carry: tok.stats, carryWait: tok.wait,
	}
	cm.occupied++
	cm.stepping++
	e.resident.Add(1)
	metrics.SlotsActive.Add(1)
	metrics.SnapshotRestores.Add(1)
	if tok.preempted {
		metrics.PreemptRestores.Add(1)
	}
	ewmaUpdate(&e.waitEWMA, int64(now.Sub(req.enqueued)))
	metrics.AdmissionWaitNS.Set(e.waitEWMA.Load())
	return true
}

// preempt evicts up to n resident streams: synchronously from machines
// it can CAS-own while they are idle, and by posting the remainder as
// demand the running machines consume at their next rounds (kicked so
// nothing waits for organic traffic). Returns the synchronous count;
// the rest drains asynchronously.
func (e *contEngine) preempt(n int) int {
	if n <= 0 {
		return 0
	}
	metrics.PreemptRequests.Add(1)
	total := 0
	for _, cm := range e.machines {
		if total >= n {
			break
		}
		// CAS-owning an idle machine makes this goroutine its worker for
		// the duration, preserving the single-owner slot rule.
		if cm.state.CompareAndSwap(cmIdle, cmRunning) {
			total += e.evictSlots(cm, n-total, 0, true, false)
			e.park(cm)
		}
	}
	if total < n {
		e.preemptReq.Add(int64(n - total))
		e.kickAll()
	}
	return total
}

// kickAll schedules every idle machine (preemption demand and drains
// must not wait for organic submits to wake the pool).
func (e *contEngine) kickAll() {
	for _, cm := range e.machines {
		if cm.state.CompareAndSwap(cmIdle, cmQueued) {
			e.enqueue(cm)
		}
	}
}

// clampNonNegative floors an over-consumed demand counter at zero.
func clampNonNegative(a *atomic.Int64) {
	for {
		v := a.Load()
		if v >= 0 || a.CompareAndSwap(v, 0) {
			return
		}
	}
}

// adopt enqueues a request moved from another engine of the same lease
// (transplant). The request was already admitted there, so the queue cap
// does not apply; pending transfers with it.
func (e *contEngine) adopt(req *inferRequest) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrLeaseClosing
	}
	e.pending.Add(1)
	e.queue.push(req)
	e.kick()
	return nil
}

// transplantTo moves every request this engine holds — queued or
// resident in a slot — to dst, checkpointing resident streams so they
// resume on dst's machines mid-sequence. Admission stops first; the
// engine is left drained (pending 0) but its workers still need close()
// to join. Returns the number of requests moved.
func (e *contEngine) transplantTo(dst *contEngine) int {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	e.evacuating.Store(true)
	if !already {
		close(e.done)
	}
	moved := 0
	for e.pending.Load() > 0 {
		e.kickAll()
		if take := int(e.pending.Load()); take > 0 {
			for _, req := range e.queue.take(take) {
				e.pending.Add(-1)
				if err := dst.adopt(req); err != nil {
					req.resp <- inferResponse{err: err}
					continue
				}
				moved++
			}
		}
		if e.pending.Load() > 0 {
			// Residents are still being checkpointed into the queue by
			// the evacuating run rounds.
			time.Sleep(20 * time.Microsecond)
		}
	}
	return moved
}

// closeWithin closes the engine like close(), but bounded: if the
// graceful drain has not finished within d, resident streams are
// checkpointed and abandoned (callers answered ErrLeaseClosing) and
// queued requests are shed the same way. Returns how many in-flight
// streams were checkpointed at the deadline (0 for a clean drain).
func (e *contEngine) closeWithin(d time.Duration) int {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		close(e.done)
	}
	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-drained:
		return 0
	case <-timer.C:
	}
	e.drainCheckpoint.Store(true)
	for e.pending.Load() > 0 {
		e.kickAll()
		for _, req := range e.queue.take(64) {
			e.pending.Add(-1)
			req.resp <- inferResponse{err: ErrLeaseClosing}
		}
		if e.pending.Load() > 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	<-drained
	return int(e.drainCheckpointed.Load())
}

// checkpointAbandon is the drain-deadline round: every resident stream
// is checkpointed (counted as a drain checkpoint, not a preemption
// capture — there is no restore coming) and its caller answered
// ErrLeaseClosing. Caller must own cm (cmRunning).
func (e *contEngine) checkpointAbandon(cm *contMachine) {
	for s, sl := range cm.slots {
		if sl == nil || sl.leaked {
			continue
		}
		req := sl.req
		if snap, err := e.kern.SnapshotSlot(cm.m, s, sl.tau, sl.steps); err == nil {
			metrics.DrainCheckpoints.Add(1)
			metrics.SnapshotBytes.Add(int64(len(snap.Encode())))
			e.drainCheckpointed.Add(1)
		}
		cm.slots[s] = nil
		cm.occupied--
		cm.stepping--
		e.resident.Add(-1)
		metrics.SlotsActive.Add(-1)
		e.pending.Add(-1)
		req.resp <- inferResponse{err: ErrLeaseClosing}
	}
}
