package rms

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/resource"
)

// preemptPlane builds a plane over a longer-sequence lease than
// testPlane's, so streams stay resident across many step rounds and
// preemption reliably catches them mid-flight.
func preemptPlane(t *testing.T, opts InferOptions) (*Service, *DataPlane, *Lease) {
	t.Helper()
	svc, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	lease, err := svc.Deploy(kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 16})
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDataPlane(svc, opts)
	t.Cleanup(dp.Close)
	return svc, dp, lease
}

func snapDelta(base map[string]int64, name string) int64 {
	return metrics.SnapshotCounters()[name] - base[name]
}

// TestPreemptGoldenTwin is the data-plane golden preempted-twin: streams
// evicted mid-sequence by explicit preemption and restored into whatever
// slot frees up next must return outputs bit-identical to a
// never-preempted solo run, and every checkpoint captured must be
// matched by a restore.
func TestPreemptGoldenTwin(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.Shards = 1
	_, dp, lease := preemptPlane(t, opts)

	base := metrics.SnapshotCounters()
	const N = 6
	inputs := make([][][]float64, N)
	results := make([]*InferResult, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		inputs[i] = testInputs(lease.Spec, int64(300+i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := dp.Infer(lease.ID, inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	// Hammer explicit preemption while the backlog drains. The progress
	// guard (one step minimum per residency) bounds the churn, so the
	// backlog still finishes.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for snapDelta(base, "mlv_preempt_evictions") == 0 {
		select {
		case <-done:
			t.Fatal("backlog drained before any preemption landed")
		default:
		}
		if _, err := dp.Preempt(lease.ID, 1); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Microsecond)
	}
	<-done

	for i, res := range results {
		if res == nil {
			t.Fatal("missing result")
		}
		ref := referenceOutputs(t, lease, opts, inputs[i])
		if !reflect.DeepEqual(res.Outputs, ref) {
			t.Errorf("request %d: restored stream differs from never-preempted twin", i)
		}
	}
	// Snapshot conservation: by the time every request is answered, each
	// capture has been consumed by exactly one restore.
	if c, r := snapDelta(base, "mlv_snapshot_captures"), snapDelta(base, "mlv_snapshot_restores"); c != r {
		t.Errorf("captures %d != restores %d", c, r)
	}
	if ev, re := snapDelta(base, "mlv_preempt_evictions"), snapDelta(base, "mlv_preempt_restores"); ev != re {
		t.Errorf("preempt evictions %d != preempt restores %d", ev, re)
	}
}

// TestResizeTransplantsResidentStreams pins the make-before-break data
// path of a depth migration: a Resize mid-flight checkpoints the old
// pool's resident streams and resumes them on the new pool — different
// machine count, same bit-exact outputs, nothing re-run from scratch and
// nothing answered with an error.
func TestResizeTransplantsResidentStreams(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.Shards = 1
	_, dp, lease := preemptPlane(t, opts)

	base := metrics.SnapshotCounters()
	slotsBase := metrics.SlotCounters()["mlv_slots_active"]
	// A deep backlog (retrying past the queue cap and the brief
	// engine-swap window) keeps the old pool's slots full for the whole
	// time Resize spends building the new pool, so the transplant always
	// finds resident streams to checkpoint.
	const N, patterns = 64, 8
	refs := make([][][]float64, patterns)
	for p := 0; p < patterns; p++ {
		refs[p] = referenceOutputs(t, lease, opts, testInputs(lease.Spec, int64(500+p)))
	}
	results := make([]*InferResult, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := testInputs(lease.Spec, int64(500+i%patterns))
			deadline := time.Now().Add(30 * time.Second)
			for {
				res, err := dp.Infer(lease.ID, in)
				if errors.Is(err, ErrBusy) || errors.Is(err, ErrLeaseClosing) {
					if time.Now().After(deadline) {
						t.Errorf("request %d: still shed at deadline: %v", i, err)
						return
					}
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = res
				return
			}
		}(i)
	}
	// Busy-wait (yield, don't sleep): the residency window outlives the
	// whole backlog, but coarse-timer kernels can starve a sleeping poller
	// under load.
	resDeadline := time.Now().Add(10 * time.Second)
	for metrics.SlotCounters()["mlv_slots_active"] <= slotsBase {
		if time.Now().After(resDeadline) {
			t.Fatal("streams never became resident")
		}
		runtime.Gosched()
	}
	if err := dp.Resize(lease.ID, 2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, res := range results {
		if res == nil {
			t.Fatal("missing result")
		}
		if !reflect.DeepEqual(res.Outputs, refs[i%patterns]) {
			t.Errorf("request %d: transplanted stream differs from solo run", i)
		}
	}
	if st, ok := dp.Load(lease.ID); !ok || st.Machines != 2 {
		t.Errorf("post-resize load = %+v, ok=%v, want 2 machines", st, ok)
	}
	if moved := snapDelta(base, "mlv_snapshot_captures"); moved == 0 {
		t.Error("resize moved no checkpoints — transplant did not run")
	}
	if c, r := snapDelta(base, "mlv_snapshot_captures"), snapDelta(base, "mlv_snapshot_restores"); c != r {
		t.Errorf("captures %d != restores %d", c, r)
	}
}

// TestAutoPreemptFavorsLatencyClass pins the scheduling tentpole: with
// Preempt on, a full machine checkpoints a batch-class stream the moment
// a latency-class request waits in the fair queue, instead of letting it
// queue behind full-length sequences — and the displaced streams still
// finish bit-identical.
func TestAutoPreemptFavorsLatencyClass(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.Shards = 1
	opts.Preempt = true
	_, dp, lease := preemptPlane(t, opts)

	e, err := dp.engine(mustLease(t, dp.svc, lease.ID))
	if err != nil {
		t.Fatal(err)
	}
	base := metrics.SnapshotCounters()
	slotsBase := metrics.SlotCounters()["mlv_slots_active"]

	const B = 6
	reqs := make([]*inferRequest, 0, B+1)
	inputs := make([][][]float64, 0, B+1)
	for i := 0; i < B; i++ {
		in := testInputs(lease.Spec, int64(700+i))
		req := &inferRequest{
			inputs: in, enqueued: time.Now(), resp: make(chan inferResponse, 1),
			tenant: "bulk", weight: 1,
		}
		if err := e.submit(req); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
		inputs = append(inputs, in)
	}
	// Once the machine is full of batch-class streams, a latency-class
	// arrival must preempt rather than wait for a retirement.
	waitFor(t, "machine to fill", func() bool {
		return metrics.SlotCounters()["mlv_slots_active"]-slotsBase >= int64(opts.MaxBatch)
	})
	in := testInputs(lease.Spec, 799)
	rt := &inferRequest{
		inputs: in, enqueued: time.Now(), resp: make(chan inferResponse, 1),
		tenant: "rt", weight: 8,
	}
	if err := e.submit(rt); err != nil {
		t.Fatal(err)
	}
	reqs = append(reqs, rt)
	inputs = append(inputs, in)

	for i, req := range reqs {
		r := <-req.resp
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		ref := referenceOutputs(t, lease, opts, inputs[i])
		if !reflect.DeepEqual(r.result.Outputs, ref) {
			t.Errorf("request %d: outputs differ from solo run", i)
		}
	}
	if snapDelta(base, "mlv_preempt_evictions") == 0 {
		t.Error("latency-class arrival triggered no preemption on a full machine")
	}
	if c, r := snapDelta(base, "mlv_snapshot_captures"), snapDelta(base, "mlv_snapshot_restores"); c != r {
		t.Errorf("captures %d != restores %d", c, r)
	}
}

// TestCloseWithinCheckpointsAtDeadline pins the deadline-bounded drain:
// streams still resident when the deadline passes are checkpointed
// (counted for the shutdown log) and their callers answered
// ErrLeaseClosing, and the slot gauge still drains to its baseline.
func TestCloseWithinCheckpointsAtDeadline(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.Shards = 1
	_, dp, lease := preemptPlane(t, opts)

	slotsBase := metrics.SlotCounters()["mlv_slots_active"]
	drainBase := metrics.DrainCheckpoints.Value()
	e, err := dp.engine(mustLease(t, dp.svc, lease.ID))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue to its cap (MaxBatch * Machines * 8 = 16) with direct
	// submissions, so the engine provably holds a deep backlog when the
	// already-expired deadline lands.
	reqs := make([]*inferRequest, 16)
	for i := range reqs {
		reqs[i] = &inferRequest{
			inputs:   testInputs(lease.Spec, int64(900+i)),
			enqueued: time.Now(), resp: make(chan inferResponse, 1),
		}
		if err := e.submit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Busy-wait for the machine to fill: the residency window is a few
	// milliseconds, finer than time.Sleep's granularity on coarse-timer
	// kernels, so yield instead of sleeping.
	fillDeadline := time.Now().Add(5 * time.Second)
	for metrics.SlotCounters()["mlv_slots_active"]-slotsBase < int64(opts.MaxBatch) {
		if time.Now().After(fillDeadline) {
			t.Fatal("machine never filled")
		}
		runtime.Gosched()
	}
	n := dp.CloseWithin(0)
	if n == 0 {
		t.Error("deadline drain checkpointed no streams")
	}
	shed := 0
	for i, req := range reqs {
		r := <-req.resp
		if r.err != nil {
			if !errors.Is(r.err, ErrLeaseClosing) {
				t.Errorf("request %d: %v", i, r.err)
			}
			shed++
		}
	}
	if shed == 0 {
		t.Error("deadline drain shed no requests")
	}
	if got := metrics.DrainCheckpoints.Value() - drainBase; got != int64(n) {
		t.Errorf("drain checkpoint counter delta = %d, CloseWithin reported %d", got, n)
	}
	if got := metrics.SlotCounters()["mlv_slots_active"]; got != slotsBase {
		t.Errorf("slot gauge residue after deadline drain: %d", got-slotsBase)
	}
}

// TestPreemptErrorSurface pins the operation's edges: unknown leases
// error, leases with no engine yet report zero work, and the legacy
// flush plane (no persistent slots) refuses with ErrFlushPlane.
func TestPreemptErrorSurface(t *testing.T) {
	opts := DefaultInferOptions()
	_, dp, lease := testPlane(t, opts)
	if _, err := dp.Preempt(lease.ID+999, 1); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("unknown lease: err = %v, want ErrUnknownLease", err)
	}
	if n, err := dp.Preempt(lease.ID, 1); err != nil || n != 0 {
		t.Errorf("no engine yet: got (%d, %v), want (0, nil)", n, err)
	}

	fopts := DefaultInferOptions()
	fopts.Flush = true
	_, fdp, flease := testPlane(t, fopts)
	if _, err := fdp.Infer(flease.ID, testInputs(flease.Spec, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fdp.Preempt(flease.ID, 1); !errors.Is(err, ErrFlushPlane) {
		t.Errorf("flush plane: err = %v, want ErrFlushPlane", err)
	}
}

// TestReleaseMidFlightCleansUp is the Release regression for the
// preemption-era engine: releasing a lease while weighted tenants have
// requests queued, resident, and mid-preemption must retire every slot
// cleanly (no gauge residue), leave no per-tenant queue-depth residue,
// and keep serving other deployments afterwards.
func TestReleaseMidFlightCleansUp(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.Shards = 1
	opts.Preempt = true
	svc, dp, lease := preemptPlane(t, opts)

	slotsBase := metrics.SlotCounters()["mlv_slots_active"]
	depthBase := metrics.TenantCounters()["mlv_tenant_queue_depth"]

	e, err := dp.engine(mustLease(t, dp.svc, lease.ID))
	if err != nil {
		t.Fatal(err)
	}
	const N = 8
	reqs := make([]*inferRequest, N)
	for i := 0; i < N; i++ {
		tenant, weight := "bulk", 1
		if i%4 == 3 {
			tenant, weight = "rt", 8
		}
		reqs[i] = &inferRequest{
			inputs:   testInputs(lease.Spec, int64(1100+i)),
			enqueued: time.Now(), resp: make(chan inferResponse, 1),
			tenant: tenant, weight: weight,
		}
		if err := e.submit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Kick a preemption into the mix so eviction/restore state is live
	// when the release lands.
	if _, err := dp.Preempt(lease.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := dp.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		r := <-req.resp
		if r.err != nil && !errors.Is(r.err, ErrLeaseClosing) {
			t.Errorf("request %d: %v", i, r.err)
		}
	}

	if got := metrics.SlotCounters()["mlv_slots_active"]; got != slotsBase {
		t.Errorf("slot gauge residue after release: %d", got-slotsBase)
	}
	depth := metrics.TenantCounters()["mlv_tenant_queue_depth"]
	for _, id := range []string{"bulk", "rt"} {
		if depth[id] != depthBase[id] {
			t.Errorf("tenant %q queue-depth residue: %d", id, depth[id]-depthBase[id])
		}
	}
	if _, ok := dp.Load(lease.ID); ok {
		t.Error("released lease still has an engine")
	}
	// The plane still serves fresh deployments with weighted tenants.
	l2, err := svc.Deploy(kernels.LayerSpec{Kind: kernels.GRU, Hidden: 64, TimeSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := testInputs(l2.Spec, 7)
	res, err := dp.InferAs("bulk", l2.ID, in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outputs, referenceOutputs(t, l2, opts, in)) {
		t.Error("post-release deployment serves wrong outputs")
	}
}
