package rms

import (
	"testing"
	"time"

	"mlvfpga/internal/des"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/workload"
)

func testDB(mode PolicyMode) *Database {
	return NewDatabase(mode, perf.DefaultParams(), scaleout.DefaultOptions())
}

func TestOptionsGreedyOrder(t *testing.T) {
	db := testDB(Flexible)
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 25}
	opts, err := db.Options(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		t.Fatal("no options")
	}
	for i := 1; i < len(opts); i++ {
		if opts[i].NumPieces() < opts[i-1].NumPieces() {
			t.Fatal("options must be sorted by ascending piece count")
		}
		if opts[i].NumPieces() == opts[i-1].NumPieces() && opts[i].Latency < opts[i-1].Latency {
			t.Fatal("equal piece counts must sort by latency")
		}
	}
	// A small LSTM has single-FPGA options on both device types.
	if opts[0].NumPieces() != 1 {
		t.Errorf("first option uses %d pieces, want 1", opts[0].NumPieces())
	}
	// Cached result is returned.
	opts2, _ := db.Options(spec)
	if &opts[0] != &opts2[0] {
		t.Error("options must be cached")
	}
}

func TestOptionsLargeTaskNeedsMultiFPGA(t *testing.T) {
	db := testDB(Flexible)
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 100}
	opts, err := db.Options(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		if o.NumPieces() < 2 {
			t.Errorf("GRU h=2560 must not have a single-FPGA deployment (needs 14 virtual blocks): %+v", o)
		}
	}
}

func TestOptionsRestrictedSameType(t *testing.T) {
	db := testDB(SameTypeOnly)
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 2048, TimeSteps: 50}
	opts, err := db.Options(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		first := o.Pieces[0].Device
		for _, piece := range o.Pieces {
			if piece.Device != first {
				t.Errorf("restricted option mixes types: %+v", o)
			}
		}
	}
}

func TestOptionsFlexibleHasMixed(t *testing.T) {
	db := testDB(Flexible)
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 2048, TimeSteps: 50}
	opts, err := db.Options(spec)
	if err != nil {
		t.Fatal(err)
	}
	mixed := false
	for _, o := range opts {
		types := map[string]bool{}
		for _, piece := range o.Pieces {
			types[piece.Device] = true
		}
		if len(types) > 1 {
			mixed = true
		}
	}
	if !mixed {
		t.Error("flexible LSTM h=2048 must offer a heterogeneous deployment")
	}
}

func TestOptionsStaticTargetSingleType(t *testing.T) {
	db := testDB(StaticTarget)
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 25}
	opts, err := db.Options(spec)
	if err != nil {
		t.Fatal(err)
	}
	target := opts[0].Pieces[0].Device
	for _, o := range opts {
		for _, piece := range o.Pieces {
			if piece.Device != target {
				t.Errorf("static-target option strays from %s: %+v", target, o)
			}
		}
	}
}

func quickSet(t *testing.T, comp workload.Composition, n int) []workload.Task {
	t.Helper()
	tasks, err := workload.Generate(comp, workload.Options{
		NumTasks: n, MeanInterarrival: 50 * time.Microsecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestSimulateCompletesAllTasks(t *testing.T) {
	tasks := quickSet(t, workload.Table1()[6], 120)
	res, err := Simulate(tasks, Config{
		Cluster: resource.PaperCluster(), Mode: Flexible, DB: testDB(Flexible),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != len(tasks) {
		t.Errorf("completed %d + rejected %d != %d", res.Completed, res.Rejected, len(tasks))
	}
	if res.Rejected > 0 {
		t.Errorf("no task in the menu should be cluster-infeasible, got %d rejections", res.Rejected)
	}
	if res.ThroughputPerSec <= 0 || res.Makespan <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.AvgLatency <= 0 || res.AvgSojourn < res.AvgLatency {
		t.Errorf("latency accounting wrong: %+v", res)
	}
	if res.PeakUtilization <= 0 || res.PeakUtilization > 1 {
		t.Errorf("peak utilization = %v", res.PeakUtilization)
	}
}

func TestSimulateBaselineCompletes(t *testing.T) {
	tasks := quickSet(t, workload.Table1()[6], 120)
	res, err := SimulateBaseline(tasks, resource.PaperCluster(), perf.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(tasks) {
		t.Errorf("baseline completed %d of %d", res.Completed, len(tasks))
	}
}

// The headline Fig. 12 property: the virtualized framework beats the
// per-device baseline on aggregated throughput for every composition, by
// >2x on average (paper: 2.54x).
func TestFig12ThroughputGain(t *testing.T) {
	p := perf.DefaultParams()
	var sum float64
	comps := workload.Table1()
	// One engine Reset and reused across the ten sequential simulations
	// rather than reallocating per set.
	engine := des.New()
	for _, comp := range comps {
		tasks, err := workload.Generate(comp, workload.Options{
			NumTasks: 200, MeanInterarrival: 20 * time.Microsecond, Seed: int64(comp.Index),
		})
		if err != nil {
			t.Fatal(err)
		}
		base, err := SimulateBaseline(tasks, resource.PaperCluster(), p)
		if err != nil {
			t.Fatal(err)
		}
		flex, err := Simulate(tasks, Config{
			Cluster: resource.PaperCluster(), Mode: Flexible, DB: testDB(Flexible),
			Engine: engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		ratio := flex.ThroughputPerSec / base.ThroughputPerSec
		if ratio < 1.0 {
			t.Errorf("%v: virtualized (%.0f/s) lost to baseline (%.0f/s)",
				comp, flex.ThroughputPerSec, base.ThroughputPerSec)
		}
		sum += ratio
	}
	avg := sum / float64(len(comps))
	if avg < 2.0 || avg > 4.0 {
		t.Errorf("average throughput gain = %.2fx, want 2-4x (paper: 2.54x)", avg)
	}
}

// TestSimulateEngineReuse pins the Config.Engine contract: a Reset-and-
// reused engine produces the same Result as a freshly allocated one.
func TestSimulateEngineReuse(t *testing.T) {
	tasks := quickSet(t, workload.Table1()[6], 120)
	fresh, err := Simulate(tasks, Config{
		Cluster: resource.PaperCluster(), Mode: Flexible, DB: testDB(Flexible),
	})
	if err != nil {
		t.Fatal(err)
	}
	engine := des.New()
	// Dirty the engine so Reset has real work to do.
	engine.At(time.Second, func(time.Duration) {})
	engine.Run(0)
	for i := 0; i < 2; i++ {
		reused, err := Simulate(tasks, Config{
			Cluster: resource.PaperCluster(), Mode: Flexible, DB: testDB(Flexible),
			Engine: engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if reused != fresh {
			t.Errorf("run %d with reused engine: %+v, want %+v", i, reused, fresh)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	tasks := quickSet(t, workload.Table1()[0], 5)
	if _, err := Simulate(tasks, Config{Cluster: resource.PaperCluster(), DB: nil}); err == nil {
		t.Error("nil database must fail")
	}
	if _, err := Simulate(tasks, Config{Cluster: resource.ClusterSpec{}, DB: testDB(Flexible)}); err == nil {
		t.Error("empty cluster must fail")
	}
	if _, err := SimulateBaseline(tasks, resource.ClusterSpec{}, perf.DefaultParams()); err == nil {
		t.Error("baseline empty cluster must fail")
	}
}

func TestSortTasksByArrival(t *testing.T) {
	tasks := []workload.Task{
		{ID: 0, Arrival: 3 * time.Millisecond},
		{ID: 1, Arrival: time.Millisecond},
	}
	sortTasksByArrival(tasks)
	if tasks[0].ID != 1 {
		t.Error("sort failed")
	}
}

func TestDeploymentAccessors(t *testing.T) {
	d := Deployment{Pieces: []PieceReq{{Device: "XCVU37P", Blocks: 3}, {Device: "XCKU115", Blocks: 4}}}
	if d.NumPieces() != 2 || d.TotalBlocks() != 7 {
		t.Errorf("accessors wrong: %d pieces, %d blocks", d.NumPieces(), d.TotalBlocks())
	}
}

func TestPolicyModeString(t *testing.T) {
	if Flexible.String() != "flexible" || SameTypeOnly.String() != "restricted" || StaticTarget.String() != "static-target" {
		t.Error("policy names wrong")
	}
}
