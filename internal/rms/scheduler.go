package rms

import (
	"fmt"
	"sort"
	"time"

	"mlvfpga/internal/des"
	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/workload"
)

// QueueDiscipline selects how queued tasks are considered when blocks
// free up. The paper uses a simple policy and leaves "more comprehensive
// runtime policy" as future work; SJF is implemented as that extension.
type QueueDiscipline int

const (
	// FIFOBackfill scans the queue in arrival order, starting whatever
	// fits (the default).
	FIFOBackfill QueueDiscipline = iota
	// SJF considers shorter tasks (by best modelled latency) first.
	SJF
)

func (q QueueDiscipline) String() string {
	if q == SJF {
		return "sjf"
	}
	return "fifo-backfill"
}

// Config parameterizes the virtualized-system simulation.
type Config struct {
	Cluster resource.ClusterSpec
	Mode    PolicyMode
	DB      *Database
	// Discipline selects the queue policy (default FIFOBackfill).
	Discipline QueueDiscipline
	// Engine, when non-nil, is Reset and reused for the simulation instead
	// of allocating a fresh one — handy for back-to-back runs. The engine's
	// FIFO tie-break among equal timestamps holds after Reset, so a reused
	// engine yields the same Result as a fresh one. Engines must not be
	// shared across concurrent Simulate calls.
	Engine *des.Engine
}

// Result summarizes one system-level run (a Fig. 12 data point).
type Result struct {
	Completed int
	Rejected  int // tasks with no feasible deployment at all
	Makespan  time.Duration
	// ThroughputPerSec is completed tasks over makespan — the paper's
	// aggregated system throughput metric.
	ThroughputPerSec float64
	AvgLatency       time.Duration // service time (dispatch to completion)
	AvgSojourn       time.Duration // arrival to completion
	PeakQueue        int
	// PeakUtilization is the maximum fraction of occupied virtual blocks.
	PeakUtilization float64
}

// placement records where a running task's pieces live.
type placement struct {
	fpgas  []int
	blocks []int
}

// Simulate runs a task sequence through the virtualized framework on the
// given cluster: the system controller consults the mapping database,
// allocates virtual blocks greedily (fewest soft blocks first), and queued
// tasks dispatch as completions free blocks.
func Simulate(tasks []workload.Task, cfg Config) (Result, error) {
	ctrl, err := hsvital.NewController(cfg.Cluster)
	if err != nil {
		return Result{}, err
	}
	db := cfg.DB
	if db == nil {
		return Result{}, fmt.Errorf("rms: nil database")
	}

	engine := cfg.Engine
	if engine == nil {
		engine = des.New()
	} else {
		engine.Reset()
	}
	var res Result
	var queue []workload.Task
	var sumLatency, sumSojourn time.Duration
	var lastCompletion time.Duration

	// tryPlace attempts to allocate a deployment's pieces on distinct
	// FPGAs, best-fit (least free blocks that still fit) to limit
	// fragmentation. Returns the chosen FPGA ids or nil.
	tryPlace := func(dep Deployment) *placement {
		used := map[int]bool{}
		pl := &placement{}
		for _, piece := range dep.Pieces {
			bestID, bestFree := -1, 1<<30
			for _, f := range ctrl.Devices() {
				if used[f.ID] || f.Spec.Device.Name != piece.Device {
					continue
				}
				if free := f.FreeBlocks(); free >= piece.Blocks && free < bestFree {
					bestID, bestFree = f.ID, free
				}
			}
			if bestID < 0 {
				return nil
			}
			used[bestID] = true
			pl.fpgas = append(pl.fpgas, bestID)
			pl.blocks = append(pl.blocks, piece.Blocks)
		}
		return pl
	}

	var dispatchQueued func(now time.Duration)

	start := func(now time.Duration, task workload.Task, dep Deployment, pl *placement) error {
		for i, id := range pl.fpgas {
			if err := ctrl.Configure(id, pl.blocks[i]); err != nil {
				return err
			}
		}
		if u := ctrl.Utilization(); u > res.PeakUtilization {
			res.PeakUtilization = u
		}
		sumLatency += dep.Latency
		sumSojourn += now - task.Arrival + dep.Latency
		done := now + dep.Latency
		return engine.At(done, func(n time.Duration) {
			for i, id := range pl.fpgas {
				if err := ctrl.Release(id, pl.blocks[i]); err != nil {
					panic(fmt.Sprintf("rms: release: %v", err))
				}
			}
			res.Completed++
			if n > lastCompletion {
				lastCompletion = n
			}
			dispatchQueued(n)
		})
	}

	// clusterFeasible reports whether a deployment could ever be placed on
	// this cluster (enough devices of each type, even when idle).
	countByType := map[string]int{}
	for _, f := range ctrl.Devices() {
		countByType[f.Spec.Device.Name]++
	}
	clusterFeasible := func(dep Deployment) bool {
		need := map[string]int{}
		for _, piece := range dep.Pieces {
			need[piece.Device]++
		}
		for ty, n := range need {
			if n > countByType[ty] {
				return false
			}
		}
		return true
	}

	// tryDispatch starts a task if any deployment option fits right now,
	// walking the database's greedy order (fewest soft blocks, then lowest
	// latency) and taking the first placeable option.
	tryDispatch := func(now time.Duration, task workload.Task) (bool, error) {
		opts, err := db.Options(task.Spec)
		if err != nil {
			res.Rejected++
			return true, nil // drop: no deployment exists at all
		}
		anyFeasible := false
		for _, dep := range opts {
			if !clusterFeasible(dep) {
				continue
			}
			anyFeasible = true
			if pl := tryPlace(dep); pl != nil {
				return true, start(now, task, dep, pl)
			}
		}
		if !anyFeasible {
			res.Rejected++
			return true, nil // drop: this cluster can never host the task
		}
		return false, nil
	}

	// bestLatency is the SJF sort key: the task's fastest deployment.
	bestLatency := func(task workload.Task) time.Duration {
		opts, err := db.Options(task.Spec)
		if err != nil || len(opts) == 0 {
			return 1 << 62
		}
		best := opts[0].Latency
		for _, o := range opts[1:] {
			if o.Latency < best {
				best = o.Latency
			}
		}
		return best
	}

	dispatchQueued = func(now time.Duration) {
		if cfg.Discipline == SJF {
			sort.SliceStable(queue, func(i, j int) bool {
				return bestLatency(queue[i]) < bestLatency(queue[j])
			})
		}
		// Scan in (arrival or SJF) order, keep what will not start.
		remaining := queue[:0]
		for _, task := range queue {
			started, err := tryDispatch(now, task)
			if err != nil {
				panic(fmt.Sprintf("rms: dispatch: %v", err))
			}
			if !started {
				remaining = append(remaining, task)
			}
		}
		queue = remaining
	}

	for _, task := range tasks {
		task := task
		if err := engine.At(task.Arrival, func(now time.Duration) {
			started, err := tryDispatch(now, task)
			if err != nil {
				panic(fmt.Sprintf("rms: dispatch: %v", err))
			}
			if !started {
				queue = append(queue, task)
				if len(queue) > res.PeakQueue {
					res.PeakQueue = len(queue)
				}
			}
		}); err != nil {
			return Result{}, err
		}
	}

	engine.Run(0)

	if len(queue) > 0 {
		return Result{}, fmt.Errorf("rms: %d tasks stuck in queue after drain", len(queue))
	}
	res.Makespan = lastCompletion
	if res.Completed > 0 {
		res.AvgLatency = sumLatency / time.Duration(res.Completed)
		res.AvgSojourn = sumSojourn / time.Duration(res.Completed)
	}
	if res.Makespan > 0 {
		res.ThroughputPerSec = float64(res.Completed) / res.Makespan.Seconds()
	}
	return res, nil
}

// sortTasksByArrival is a helper for callers assembling custom sequences.
func sortTasksByArrival(tasks []workload.Task) {
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival })
}
