package rms

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/tenant"
)

// Service is the long-lived system controller of Fig. 7, exposed to the
// high-level system (e.g. a hypervisor): Deploy admits an accelerator for
// a layer and returns a lease over concrete virtual blocks, Release frees
// them, Status reports cluster occupancy. Unlike Simulate, which replays a
// task trace through virtual time, Service is the interactive admission
// API a real deployment would integrate against.
type Service struct {
	mu   sync.Mutex
	ctrl *hsvital.Controller
	db   *Database

	nextID int
	leases map[int]*Lease

	// filter, when set, vetoes devices for every placement (the cluster
	// control plane installs its health view here).
	filter func(fpgaID int) bool
	// drainer, when set, runs before a lease's placements are freed so the
	// data plane can drain in-flight batches (see SetDrainer).
	drainer func(leaseID int)
	// compiler, when set, ensures the layer's full compilation product is
	// in the artifact store before placement (see SetCompiler).
	compiler *Compiler
	// tenants, when set, turns on quota enforcement: deploys and
	// migrations carrying a tenant id are checked against the registry's
	// lease/device/block quotas (see SetTenants).
	tenants *tenant.Registry
}

// Placement locates one soft block of a lease.
type Placement struct {
	// FPGA is the physical device id (ring position).
	FPGA int `json:"fpga"`
	// Device is the device type name.
	Device string `json:"device"`
	// Blocks is the number of virtual blocks held.
	Blocks int `json:"blocks"`
}

// Lease is one admitted accelerator deployment.
type Lease struct {
	ID int `json:"id"`
	// Tenant is the owning tenant id (empty in anonymous mode).
	Tenant string `json:"tenant,omitempty"`
	// Spec is the layer the accelerator serves.
	Spec kernels.LayerSpec `json:"-"`
	// SpecString renders the layer for API clients.
	SpecString string `json:"spec"`
	// Placements are the held virtual blocks, one per soft block.
	Placements []Placement `json:"placements"`
	// Latency is the modelled per-inference latency of this deployment.
	Latency time.Duration `json:"latency_ns"`
	// Depth is the deployment's piece count — its rung on the partition
	// ladder (1, 2 or 4 devices).
	Depth int `json:"depth"`
	// Migrations counts how many times the control plane re-placed this
	// lease (depth changes and evacuations).
	Migrations int `json:"migrations"`
	// ArtifactKey is the content address of the lease's compilation
	// product in the artifact store (empty when no compiler is installed).
	ArtifactKey string `json:"artifact_key,omitempty"`
	// WarmDeploy reports that the deploy was served from the compilation
	// cache and skipped straight to placement.
	WarmDeploy bool `json:"warm_deploy,omitempty"`
}

// ClusterStatus is a point-in-time occupancy snapshot.
type ClusterStatus struct {
	FPGAs []FPGAStatus `json:"fpgas"`
	// Utilization is occupied/total virtual blocks.
	Utilization float64 `json:"utilization"`
	// ActiveLeases counts admitted deployments.
	ActiveLeases int `json:"active_leases"`
}

// FPGAStatus is one device's occupancy.
type FPGAStatus struct {
	ID          int    `json:"id"`
	Device      string `json:"device"`
	TotalBlocks int    `json:"total_blocks"`
	FreeBlocks  int    `json:"free_blocks"`
}

// ErrNoCapacity is returned when no deployment of the layer fits the
// cluster's current free blocks.
var ErrNoCapacity = errors.New("rms: no capacity for layer right now")

// ErrUnknownLease is returned by Release for an unknown id.
var ErrUnknownLease = errors.New("rms: unknown lease")

// ErrNoSuchDepth is returned when the mapping database has no deployment
// with the requested piece count for a layer.
var ErrNoSuchDepth = errors.New("rms: no deployment at requested depth")

// ErrQuotaExceeded is returned when an admission would push the tenant
// over its lease, device or block quota. Unlike ErrNoCapacity the cluster
// has room — the tenant has spent its share (HTTP maps this to 429).
var ErrQuotaExceeded = errors.New("rms: tenant quota exceeded")

// ErrUnknownTenant is returned when a request names a tenant the service's
// registry does not know (only possible through the programmatic API — the
// HTTP guard rejects unknown tenants with 401 before admission).
var ErrUnknownTenant = errors.New("rms: unknown tenant")

// NewService builds a service over a fresh cluster.
func NewService(cluster map[string]int, db *Database) (*Service, error) {
	if db == nil {
		return nil, fmt.Errorf("rms: nil database")
	}
	ctrl, err := hsvital.NewController(cluster)
	if err != nil {
		return nil, err
	}
	return &Service{ctrl: ctrl, db: db, leases: map[int]*Lease{}}, nil
}

// PlaceOptions constrains a deployment beyond the default greedy policy.
type PlaceOptions struct {
	// Depth restricts placement to deployments with exactly this many
	// pieces (0 = any, walked in the database's greedy order).
	Depth int
	// Avoid vetoes devices for this placement, in addition to the
	// service-wide placement filter.
	Avoid func(fpgaID int) bool
	// Tenant attributes the lease to a tenant id; when the service has a
	// registry installed the tenant's quotas gate the admission. Empty
	// means anonymous (no quota checks).
	Tenant string
}

// SetTenants installs the tenant registry, turning on quota enforcement
// for deploys and migrations that carry a tenant id. A nil registry
// restores anonymous admission.
func (s *Service) SetTenants(reg *tenant.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants = reg
}

// TenantUsage reports a tenant's currently granted resources, summed over
// its live leases.
func (s *Service) TenantUsage(id string) (leases, devices, blocks int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usageLocked(id, 0)
}

// usageLocked sums the tenant's grants, skipping skipLease (0 = none) so
// migrations can cost the destination against quota without
// double-counting the placement being vacated.
func (s *Service) usageLocked(id string, skipLease int) (leases, devices, blocks int) {
	for _, l := range s.leases {
		if l.Tenant != id || l.ID == skipLease {
			continue
		}
		leases++
		devices += len(l.Placements)
		for _, pl := range l.Placements {
			blocks += pl.Blocks
		}
	}
	return leases, devices, blocks
}

// quotaAdmits reports whether granting dep on top of the tenant's current
// usage (minus skipLease) stays within q. MaxLeases is checked only when
// the grant adds a lease (skipLease == 0).
func quotaAdmits(q tenant.Quotas, leases, devices, blocks int, dep Deployment, skipLease int) bool {
	if skipLease == 0 && q.MaxLeases > 0 && leases+1 > q.MaxLeases {
		return false
	}
	if q.MaxDevices > 0 && devices+dep.NumPieces() > q.MaxDevices {
		return false
	}
	if q.MaxBlocks > 0 && blocks+dep.TotalBlocks() > q.MaxBlocks {
		return false
	}
	return true
}

// SetPlacementFilter installs a device veto consulted by every placement:
// ok(fpgaID) must return true for a device to receive soft blocks. The
// cluster control plane uses this to keep new placements off suspect,
// dead and draining devices. A nil filter allows every device.
func (s *Service) SetPlacementFilter(ok func(fpgaID int) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.filter = ok
}

// SetCompiler installs the warm-start compile path: every Deploy first
// ensures the layer's full compilation product is present in the artifact
// store (a known design hits the cache in microseconds and skips straight
// to placement; an unknown one compiles exactly once even under
// concurrent deploys, via the store's singleflight guard). A nil compiler
// restores the placement-only behaviour.
func (s *Service) SetCompiler(c *Compiler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compiler = c
}

// SetDrainer registers fn to run before Release frees a lease's
// placements. The data plane installs its engine drain here so a release
// can never race an enqueued micro-batch: queued requests are served and
// in-flight batches finish before the virtual blocks are freed.
func (s *Service) SetDrainer(fn func(leaseID int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainer = fn
}

// Deploy admits an accelerator for the layer using the greedy policy
// (fewest soft blocks first) and returns the lease. It fails with
// ErrNoCapacity when nothing fits right now and ErrUndeployable when the
// layer can never be deployed.
func (s *Service) Deploy(spec kernels.LayerSpec) (*Lease, error) {
	return s.DeployWith(spec, PlaceOptions{})
}

// DeployWith admits an accelerator under the given placement constraints.
func (s *Service) DeployWith(spec kernels.LayerSpec, po PlaceOptions) (*Lease, error) {
	opts, err := s.db.Options(spec)
	if err != nil {
		return nil, err
	}
	// Ensure the compilation product before taking the service lock:
	// compiles must never serialize admissions, and the store's own
	// singleflight already coalesces concurrent deploys of one design.
	// The artifact stays cached even if placement fails below — the next
	// attempt warm-starts.
	var (
		artifactKey string
		warmDeploy  bool
	)
	s.mu.Lock()
	compiler := s.compiler
	s.mu.Unlock()
	if compiler != nil {
		_, key, warm, cerr := compiler.Ensure(spec)
		if cerr != nil {
			return nil, fmt.Errorf("rms: compiling %v: %w", spec, cerr)
		}
		artifactKey, warmDeploy = string(key), warm
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		quotas    tenant.Quotas
		enforce   bool
		tLeases   int
		tDevices  int
		tBlocks   int
		quotaRoom bool // some depth-eligible candidate passed the quota gate
	)
	if po.Tenant != "" {
		metrics.TenantRequests.Add(po.Tenant, 1)
	}
	if po.Tenant != "" && s.tenants != nil {
		t, ok := s.tenants.Lookup(po.Tenant)
		if !ok {
			metrics.TenantRejections.Add(po.Tenant, 1)
			return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, po.Tenant)
		}
		quotas, enforce = t.Quotas, true
		tLeases, tDevices, tBlocks = s.usageLocked(po.Tenant, 0)
	}
	sawDepth := false
	for _, dep := range opts {
		if po.Depth > 0 && dep.NumPieces() != po.Depth {
			continue
		}
		sawDepth = true
		if enforce && !quotaAdmits(quotas, tLeases, tDevices, tBlocks, dep, 0) {
			continue
		}
		quotaRoom = true
		placements, ok := s.tryPlaceLocked(dep, po.Avoid)
		if !ok {
			continue
		}
		if err := s.configureLocked(placements); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoCapacity, err)
		}
		s.nextID++
		lease := &Lease{
			ID:          s.nextID,
			Tenant:      po.Tenant,
			Spec:        spec,
			SpecString:  spec.String(),
			Placements:  placements,
			Latency:     dep.Latency,
			Depth:       dep.NumPieces(),
			ArtifactKey: artifactKey,
			WarmDeploy:  warmDeploy,
		}
		s.leases[lease.ID] = lease
		metrics.LeasesActive.Add(1)
		return lease, nil
	}
	if po.Depth > 0 && !sawDepth {
		return nil, fmt.Errorf("%w: %d pieces for %v", ErrNoSuchDepth, po.Depth, spec)
	}
	if enforce && sawDepth && !quotaRoom {
		// Every depth-eligible deployment was quota-blocked: the cluster
		// may have room, but this tenant has spent its share.
		metrics.TenantRejections.Add(po.Tenant, 1)
		return nil, fmt.Errorf("%w: %s deploying %v", ErrQuotaExceeded, po.Tenant, spec)
	}
	return nil, fmt.Errorf("%w: %v", ErrNoCapacity, spec)
}

// Depths returns the piece counts (partition-ladder rungs) the database
// offers for a layer, ascending.
func (s *Service) Depths(spec kernels.LayerSpec) ([]int, error) {
	opts, err := s.db.Options(spec)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int
	for _, dep := range opts {
		if n := dep.NumPieces(); !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// FeasibleDepths filters Depths down to the rungs the physical cluster
// can host at all: depths with at least one deployment whose device-type
// requirements fit the inventory, ignoring current occupancy. The control
// plane plans against this ladder so it never chases a depth the fleet
// could not place even when empty (e.g. a 4×XCVU37P deployment on a
// cluster with three).
func (s *Service) FeasibleDepths(spec kernels.LayerSpec) ([]int, error) {
	opts, err := s.db.Options(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	inventory := map[string]int{}
	for _, f := range s.ctrl.Devices() {
		inventory[f.Spec.Device.Name]++
	}
	s.mu.Unlock()
	seen := map[int]bool{}
	var out []int
	for _, dep := range opts {
		if seen[dep.NumPieces()] {
			continue
		}
		need := map[string]int{}
		for _, p := range dep.Pieces {
			need[p.Device]++
		}
		fits := true
		for typ, n := range need {
			if inventory[typ] < n {
				fits = false
				break
			}
		}
		if fits {
			seen[dep.NumPieces()] = true
			out = append(out, dep.NumPieces())
		}
	}
	sort.Ints(out)
	return out, nil
}

// Migrate re-places a lease at the requested depth, avoiding the vetoed
// devices, while keeping its identity (the data plane keeps serving under
// the same id). The default protocol is make-before-break: the new pieces
// are configured while the old blocks are still held, so a migration needs
// headroom but never strands the lease. With force set (used when the old
// placement includes a dead device) the old blocks are freed first; if no
// new placement fits, the old one is restored and ErrNoCapacity returned
// so the control plane can back off and retry.
func (s *Service) Migrate(id, depth int, avoid func(fpgaID int) bool, force bool) (*Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lease, ok := s.leases[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	opts, err := s.db.Options(lease.Spec)
	if err != nil {
		return nil, err
	}
	var candidates []Deployment
	for _, dep := range opts {
		if dep.NumPieces() == depth {
			candidates = append(candidates, dep)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: %d pieces for %v", ErrNoSuchDepth, depth, lease.Spec)
	}
	if lease.Tenant != "" && s.tenants != nil {
		if t, ok := s.tenants.Lookup(lease.Tenant); ok {
			// Cost the destination against quota with the migrating lease's
			// own grants excluded, so a same-size evacuation always passes
			// and only genuine scale-ups can be quota-blocked.
			tl, td, tb := s.usageLocked(lease.Tenant, lease.ID)
			kept := candidates[:0]
			for _, dep := range candidates {
				if quotaAdmits(t.Quotas, tl, td, tb, dep, lease.ID) {
					kept = append(kept, dep)
				}
			}
			if len(kept) == 0 {
				metrics.TenantRejections.Add(lease.Tenant, 1)
				return nil, fmt.Errorf("%w: migrating lease %d of %s to depth %d",
					ErrQuotaExceeded, id, lease.Tenant, depth)
			}
			candidates = kept
		}
	}

	place := func() (Deployment, []Placement, bool) {
		for _, dep := range candidates {
			if pls, ok := s.tryPlaceLocked(dep, avoid); ok {
				return dep, pls, true
			}
		}
		return Deployment{}, nil, false
	}

	old := lease.Placements
	if dep, pls, ok := place(); ok {
		// Make-before-break: configure new, then free old.
		if err := s.configureLocked(pls); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoCapacity, err)
		}
		s.releasePlacementsLocked(old)
		lease.Placements, lease.Latency, lease.Depth = pls, dep.Latency, depth
		lease.Migrations++
		return lease, nil
	}
	if !force {
		return nil, fmt.Errorf("%w: migrating lease %d to depth %d", ErrNoCapacity, id, depth)
	}
	// Break-before-make: free the old blocks (a dead device's blocks are
	// unusable anyway) and try again; restore on failure.
	s.releasePlacementsLocked(old)
	if dep, pls, ok := place(); ok {
		if err := s.configureLocked(pls); err == nil {
			lease.Placements, lease.Latency, lease.Depth = pls, dep.Latency, depth
			lease.Migrations++
			return lease, nil
		}
	}
	if err := s.configureLocked(old); err != nil {
		// Cannot happen: we hold the lock, so the freed blocks are intact.
		panic(fmt.Sprintf("rms: restoring placements for lease %d: %v", id, err))
	}
	return nil, fmt.Errorf("%w: forced migration of lease %d to depth %d", ErrNoCapacity, id, depth)
}

// configureLocked occupies every placement's blocks, rolling back on
// failure.
func (s *Service) configureLocked(placements []Placement) error {
	for i, pl := range placements {
		if err := s.ctrl.Configure(pl.FPGA, pl.Blocks); err != nil {
			for _, done := range placements[:i] {
				_ = s.ctrl.Release(done.FPGA, done.Blocks)
			}
			return err
		}
	}
	return nil
}

// releasePlacementsLocked frees every placement's blocks.
func (s *Service) releasePlacementsLocked(placements []Placement) {
	for _, pl := range placements {
		if err := s.ctrl.Release(pl.FPGA, pl.Blocks); err != nil {
			panic(fmt.Sprintf("rms: release: %v", err))
		}
	}
}

// tryPlaceLocked mirrors the simulator's best-fit placement, skipping
// devices vetoed by the service-wide filter or the per-call avoid set.
func (s *Service) tryPlaceLocked(dep Deployment, avoid func(int) bool) ([]Placement, bool) {
	used := map[int]bool{}
	var out []Placement
	for _, piece := range dep.Pieces {
		bestID, bestFree := -1, 1<<30
		for _, f := range s.ctrl.Devices() {
			if used[f.ID] || f.Spec.Device.Name != piece.Device {
				continue
			}
			if s.filter != nil && !s.filter(f.ID) {
				continue
			}
			if avoid != nil && avoid(f.ID) {
				continue
			}
			if free := f.FreeBlocks(); free >= piece.Blocks && free < bestFree {
				bestID, bestFree = f.ID, free
			}
		}
		if bestID < 0 {
			return nil, false
		}
		used[bestID] = true
		out = append(out, Placement{FPGA: bestID, Device: piece.Device, Blocks: piece.Blocks})
	}
	return out, true
}

// Release frees a lease's virtual blocks, draining the lease's data-plane
// engine first (when one is registered) so no enqueued micro-batch races
// the deallocation.
func (s *Service) Release(id int) error {
	s.mu.Lock()
	_, ok := s.leases[id]
	drainer := s.drainer
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	if drainer != nil {
		drainer(id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lease, ok := s.leases[id]
	if !ok {
		// A concurrent Release won the race after the drain.
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	s.releasePlacementsLocked(lease.Placements)
	delete(s.leases, id)
	metrics.LeasesActive.Add(-1)
	return nil
}

// snapshotLocked copies a lease so callers never observe a concurrent
// migration mutating placements in place.
func snapshotLocked(l *Lease) *Lease {
	cp := *l
	cp.Placements = append([]Placement{}, l.Placements...)
	return &cp
}

// Leases returns snapshots of the active leases sorted by id (used by
// graceful shutdown to drain every deployment, and by the control plane's
// deterministic rebalance sweep).
func (s *Service) Leases() []*Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Lease, 0, len(s.leases))
	for _, l := range s.leases {
		out = append(out, snapshotLocked(l))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lease returns a snapshot of an active lease by id.
func (s *Service) Lease(id int) (*Lease, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok {
		return nil, false
	}
	return snapshotLocked(l), true
}

// Status snapshots the cluster.
func (s *Service) Status() ClusterStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ClusterStatus{
		Utilization:  s.ctrl.Utilization(),
		ActiveLeases: len(s.leases),
	}
	for _, f := range s.ctrl.Devices() {
		st.FPGAs = append(st.FPGAs, FPGAStatus{
			ID:          f.ID,
			Device:      f.Spec.Device.Name,
			TotalBlocks: f.Spec.BlocksPerDevice,
			FreeBlocks:  f.FreeBlocks(),
		})
	}
	return st
}
