package rms

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
)

// Service is the long-lived system controller of Fig. 7, exposed to the
// high-level system (e.g. a hypervisor): Deploy admits an accelerator for
// a layer and returns a lease over concrete virtual blocks, Release frees
// them, Status reports cluster occupancy. Unlike Simulate, which replays a
// task trace through virtual time, Service is the interactive admission
// API a real deployment would integrate against.
type Service struct {
	mu   sync.Mutex
	ctrl *hsvital.Controller
	db   *Database

	nextID int
	leases map[int]*Lease
}

// Placement locates one soft block of a lease.
type Placement struct {
	// FPGA is the physical device id (ring position).
	FPGA int `json:"fpga"`
	// Device is the device type name.
	Device string `json:"device"`
	// Blocks is the number of virtual blocks held.
	Blocks int `json:"blocks"`
}

// Lease is one admitted accelerator deployment.
type Lease struct {
	ID int `json:"id"`
	// Spec is the layer the accelerator serves.
	Spec kernels.LayerSpec `json:"-"`
	// SpecString renders the layer for API clients.
	SpecString string `json:"spec"`
	// Placements are the held virtual blocks, one per soft block.
	Placements []Placement `json:"placements"`
	// Latency is the modelled per-inference latency of this deployment.
	Latency time.Duration `json:"latency_ns"`
}

// ClusterStatus is a point-in-time occupancy snapshot.
type ClusterStatus struct {
	FPGAs []FPGAStatus `json:"fpgas"`
	// Utilization is occupied/total virtual blocks.
	Utilization float64 `json:"utilization"`
	// ActiveLeases counts admitted deployments.
	ActiveLeases int `json:"active_leases"`
}

// FPGAStatus is one device's occupancy.
type FPGAStatus struct {
	ID          int    `json:"id"`
	Device      string `json:"device"`
	TotalBlocks int    `json:"total_blocks"`
	FreeBlocks  int    `json:"free_blocks"`
}

// ErrNoCapacity is returned when no deployment of the layer fits the
// cluster's current free blocks.
var ErrNoCapacity = errors.New("rms: no capacity for layer right now")

// ErrUnknownLease is returned by Release for an unknown id.
var ErrUnknownLease = errors.New("rms: unknown lease")

// NewService builds a service over a fresh cluster.
func NewService(cluster map[string]int, db *Database) (*Service, error) {
	if db == nil {
		return nil, fmt.Errorf("rms: nil database")
	}
	ctrl, err := hsvital.NewController(cluster)
	if err != nil {
		return nil, err
	}
	return &Service{ctrl: ctrl, db: db, leases: map[int]*Lease{}}, nil
}

// Deploy admits an accelerator for the layer using the greedy policy
// (fewest soft blocks first) and returns the lease. It fails with
// ErrNoCapacity when nothing fits right now and ErrUndeployable when the
// layer can never be deployed.
func (s *Service) Deploy(spec kernels.LayerSpec) (*Lease, error) {
	opts, err := s.db.Options(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, dep := range opts {
		placements, ok := s.tryPlaceLocked(dep)
		if !ok {
			continue
		}
		for _, pl := range placements {
			if err := s.ctrl.Configure(pl.FPGA, pl.Blocks); err != nil {
				// Roll back anything already configured.
				for _, done := range placements {
					if done == pl {
						break
					}
					_ = s.ctrl.Release(done.FPGA, done.Blocks)
				}
				return nil, err
			}
		}
		s.nextID++
		lease := &Lease{
			ID:         s.nextID,
			Spec:       spec,
			SpecString: spec.String(),
			Placements: placements,
			Latency:    dep.Latency,
		}
		s.leases[lease.ID] = lease
		return lease, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrNoCapacity, spec)
}

// tryPlaceLocked mirrors the simulator's best-fit placement.
func (s *Service) tryPlaceLocked(dep Deployment) ([]Placement, bool) {
	used := map[int]bool{}
	var out []Placement
	for _, piece := range dep.Pieces {
		bestID, bestFree := -1, 1<<30
		for _, f := range s.ctrl.Devices() {
			if used[f.ID] || f.Spec.Device.Name != piece.Device {
				continue
			}
			if free := f.FreeBlocks(); free >= piece.Blocks && free < bestFree {
				bestID, bestFree = f.ID, free
			}
		}
		if bestID < 0 {
			return nil, false
		}
		used[bestID] = true
		out = append(out, Placement{FPGA: bestID, Device: piece.Device, Blocks: piece.Blocks})
	}
	return out, true
}

// Release frees a lease's virtual blocks.
func (s *Service) Release(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lease, ok := s.leases[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	for _, pl := range lease.Placements {
		if err := s.ctrl.Release(pl.FPGA, pl.Blocks); err != nil {
			return err
		}
	}
	delete(s.leases, id)
	return nil
}

// Leases returns the active leases sorted by id (used by graceful
// shutdown to drain every deployment).
func (s *Service) Leases() []*Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Lease, 0, len(s.leases))
	for _, l := range s.leases {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lease returns an active lease by id.
func (s *Service) Lease(id int) (*Lease, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	return l, ok
}

// Status snapshots the cluster.
func (s *Service) Status() ClusterStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ClusterStatus{
		Utilization:  s.ctrl.Utilization(),
		ActiveLeases: len(s.leases),
	}
	for _, f := range s.ctrl.Devices() {
		st.FPGAs = append(st.FPGAs, FPGAStatus{
			ID:          f.ID,
			Device:      f.Spec.Device.Name,
			TotalBlocks: f.Spec.BlocksPerDevice,
			FreeBlocks:  f.FreeBlocks(),
		})
	}
	return st
}
