package rms

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/resource"
)

func newService(t *testing.T) *Service {
	t.Helper()
	s, err := NewService(resource.PaperCluster(), testDB(Flexible))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServiceDeployReleaseCycle(t *testing.T) {
	s := newService(t)
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 25}

	lease, err := s.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lease.ID == 0 || len(lease.Placements) == 0 || lease.Latency <= 0 {
		t.Fatalf("lease = %+v", lease)
	}
	st := s.Status()
	if st.ActiveLeases != 1 || st.Utilization <= 0 {
		t.Errorf("status = %+v", st)
	}
	if got, ok := s.Lease(lease.ID); !ok || got.ID != lease.ID {
		t.Error("Lease lookup failed")
	}
	if err := s.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.ActiveLeases != 0 || st.Utilization != 0 {
		t.Errorf("status after release = %+v", st)
	}
	if err := s.Release(lease.ID); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("double release = %v", err)
	}
}

func TestServiceSaturationAndRecovery(t *testing.T) {
	s := newService(t)
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 100}
	var leases []*Lease
	for {
		lease, err := s.Deploy(spec)
		if errors.Is(err, ErrNoCapacity) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, lease)
		if len(leases) > 100 {
			t.Fatal("cluster never saturates")
		}
	}
	if len(leases) < 4 {
		t.Errorf("only %d concurrent GRU-1024 leases; sharing should admit several", len(leases))
	}
	// Freeing one admits one more.
	if err := s.Release(leases[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(spec); err != nil {
		t.Errorf("deploy after release failed: %v", err)
	}
}

func TestServiceMultiPieceLease(t *testing.T) {
	s := newService(t)
	// GRU h=2560 needs a multi-FPGA deployment.
	lease, err := s.Deploy(kernels.LayerSpec{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Placements) < 2 {
		t.Errorf("GRU h=2560 lease has %d placements, want >= 2", len(lease.Placements))
	}
	seen := map[int]bool{}
	for _, pl := range lease.Placements {
		if seen[pl.FPGA] {
			t.Error("one lease placed two pieces on the same FPGA")
		}
		seen[pl.FPGA] = true
	}
}

func TestServiceErrors(t *testing.T) {
	if _, err := NewService(resource.PaperCluster(), nil); err == nil {
		t.Error("nil database must fail")
	}
	if _, err := NewService(map[string]int{}, testDB(Flexible)); err == nil {
		t.Error("empty cluster must fail")
	}
}

func TestHTTPHandler(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Deploy.
	resp := post("/deploy", map[string]any{"kind": "LSTM", "hidden": 512, "timesteps": 25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lease.ID == 0 || len(lease.Placements) == 0 {
		t.Fatalf("lease = %+v", lease)
	}

	// Status.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ActiveLeases != 1 || len(st.FPGAs) != 4 {
		t.Errorf("status = %+v", st)
	}

	// Lease lookup.
	resp, err = http.Get(srv.URL + "/lease/1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lease lookup status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Release.
	resp = post("/release", map[string]int{"id": lease.ID})
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("release status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post("/release", map[string]int{"id": lease.ID})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double release status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPHandlerValidation(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	cases := []struct {
		path string
		body string
		want int
	}{
		{"/deploy", `{"kind":"CNN","hidden":512,"timesteps":1}`, http.StatusBadRequest},
		{"/deploy", `{"kind":"LSTM","hidden":-1,"timesteps":1}`, http.StatusBadRequest},
		{"/deploy", `not json`, http.StatusBadRequest},
		{"/release", `not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %q = %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}

	// GET on POST-only endpoints.
	resp, _ := http.Get(srv.URL + "/deploy")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /deploy = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad lease id.
	resp, _ = http.Get(srv.URL + "/lease/abc")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /lease/abc = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/lease/999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /lease/999 = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// A layer too large for the whole cluster must be rejected as
// undeployable through the API.
func TestHTTPUndeployable(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	body := []byte(`{"kind":"LSTM","hidden":8192,"timesteps":1}`)
	resp, err := http.Post(srv.URL+"/deploy", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("undeployable status = %d", resp.StatusCode)
	}
}
