package rms

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/tenant"
)

func quotaRegistry(t *testing.T, tenants ...tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenants...)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestDeployQuotaLeases(t *testing.T) {
	svc := newService(t)
	svc.SetTenants(quotaRegistry(t,
		tenant.Tenant{ID: "small", Key: "k", Quotas: tenant.Quotas{MaxLeases: 2}},
	))
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}

	before := metrics.TenantCounters()["mlv_tenant_rejections"]["small"]
	for i := 0; i < 2; i++ {
		if _, err := svc.DeployWith(spec, PlaceOptions{Tenant: "small"}); err != nil {
			t.Fatalf("deploy %d within quota: %v", i, err)
		}
	}
	_, err := svc.DeployWith(spec, PlaceOptions{Tenant: "small"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third deploy: %v, want ErrQuotaExceeded", err)
	}
	if got := metrics.TenantCounters()["mlv_tenant_rejections"]["small"]; got != before+1 {
		t.Fatalf("rejection counter delta = %d, want 1", got-before)
	}

	// The cluster has plenty of room: an unconstrained tenant still fits.
	if _, err := svc.DeployWith(spec, PlaceOptions{Tenant: ""}); err != nil {
		t.Fatalf("anonymous deploy after quota rejection: %v", err)
	}
}

func TestDeployQuotaBlocksAndDevices(t *testing.T) {
	svc := newService(t)
	svc.SetTenants(quotaRegistry(t,
		tenant.Tenant{ID: "narrow", Key: "k", Quotas: tenant.Quotas{MaxDevices: 1}},
		tenant.Tenant{ID: "thin", Key: "k", Quotas: tenant.Quotas{MaxBlocks: 1}},
	))
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}

	// A 256-LSTM fits one device, so MaxDevices=1 admits it.
	l, err := svc.DeployWith(spec, PlaceOptions{Tenant: "narrow"})
	if err != nil {
		t.Fatalf("single-device deploy: %v", err)
	}
	if len(l.Placements) != 1 {
		t.Fatalf("placements = %d, want 1", len(l.Placements))
	}
	// The second single-device lease would exceed the device quota.
	if _, err := svc.DeployWith(spec, PlaceOptions{Tenant: "narrow"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-device deploy: %v, want ErrQuotaExceeded", err)
	}
	// A deployment always needs more than one block: MaxBlocks=1 can
	// never admit anything.
	if _, err := svc.DeployWith(spec, PlaceOptions{Tenant: "thin"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("block-starved deploy: %v, want ErrQuotaExceeded", err)
	}

	leases, devices, blocks := svc.TenantUsage("narrow")
	if leases != 1 || devices != 1 || blocks != l.Placements[0].Blocks {
		t.Fatalf("TenantUsage = (%d,%d,%d), want (1,1,%d)", leases, devices, blocks, l.Placements[0].Blocks)
	}
}

func TestDeployUnknownTenant(t *testing.T) {
	svc := newService(t)
	svc.SetTenants(quotaRegistry(t, tenant.Tenant{ID: "a", Key: "k"}))
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
	if _, err := svc.DeployWith(spec, PlaceOptions{Tenant: "ghost"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("deploy as unknown tenant: %v, want ErrUnknownTenant", err)
	}
}

func TestMigrateRespectsQuotaButAllowsEvacuation(t *testing.T) {
	svc := newService(t)
	svc.SetTenants(quotaRegistry(t,
		tenant.Tenant{ID: "cap", Key: "k", Quotas: tenant.Quotas{MaxDevices: 1}},
	))
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
	l, err := svc.DeployWith(spec, PlaceOptions{Tenant: "cap", Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same-depth migration (an evacuation) keeps usage flat: must pass
	// even at the quota ceiling.
	from := l.Placements[0].FPGA
	if _, err := svc.Migrate(l.ID, 1, func(id int) bool { return id == from }, false); err != nil {
		t.Fatalf("same-depth migration at quota ceiling: %v", err)
	}
	// Scaling up to two devices breaches MaxDevices=1.
	depths, err := svc.Depths(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantDeeper := 0
	for _, d := range depths {
		if d > 1 {
			wantDeeper = d
			break
		}
	}
	if wantDeeper == 0 {
		t.Skip("database offers no deeper deployment for this layer")
	}
	if _, err := svc.Migrate(l.ID, wantDeeper, nil, false); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("scale-up past device quota: %v, want ErrQuotaExceeded", err)
	}
}

func TestInferAsInFlightCap(t *testing.T) {
	opts := DefaultInferOptions()
	// One machine and a long flush delay so requests demonstrably pile up
	// behind the first batch while we probe the cap.
	opts.Machines = 1
	opts.MaxBatch = 2
	opts.FlushDelay = 50 * time.Millisecond
	svc, dp, lease := testPlane(t, opts)
	reg := quotaRegistry(t,
		tenant.Tenant{ID: "capped", Key: "k", Quotas: tenant.Quotas{MaxInFlight: 2}},
	)
	svc.SetTenants(reg)
	dp.SetTenants(reg)
	inputs := testInputs(lease.Spec, 7)

	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			if _, err := dp.InferAs("capped", lease.ID, inputs); err != nil {
				t.Errorf("in-cap infer: %v", err)
			}
		}()
	}
	// Occupy both in-flight slots, then probe the third.
	st := dp.stripe("capped")
	st.mu.Lock()
	st.n["capped"] = 2
	st.mu.Unlock()
	before := metrics.TenantCounters()["mlv_tenant_rejections"]["capped"]
	if _, err := dp.InferAs("capped", lease.ID, inputs); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("over-cap infer: %v, want ErrTenantBusy", err)
	}
	if got := metrics.TenantCounters()["mlv_tenant_rejections"]["capped"]; got != before+1 {
		t.Fatalf("rejection delta = %d, want 1", got-before)
	}
	st.mu.Lock()
	st.n["capped"] = 0
	st.mu.Unlock()
	close(release)
	wg.Wait()

	// All requests answered: the in-flight table must be empty again and
	// the served counter must cover both successes.
	left := 0
	for i := range dp.inflight {
		dp.inflight[i].mu.Lock()
		left += len(dp.inflight[i].n)
		dp.inflight[i].mu.Unlock()
	}
	if left != 0 {
		t.Fatalf("inflight table has %d stale entries", left)
	}
}

func TestInferAsUnknownTenant(t *testing.T) {
	svc, dp, lease := testPlane(t, DefaultInferOptions())
	reg := quotaRegistry(t, tenant.Tenant{ID: "a", Key: "k"})
	svc.SetTenants(reg)
	dp.SetTenants(reg)
	if _, err := dp.InferAs("ghost", lease.ID, testInputs(lease.Spec, 1)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("InferAs ghost: %v, want ErrUnknownTenant", err)
	}
}

func TestInferAsCountsTenantMetrics(t *testing.T) {
	svc, dp, lease := testPlane(t, DefaultInferOptions())
	reg := quotaRegistry(t, tenant.Tenant{ID: "meter", Key: "k", Class: tenant.Batch})
	svc.SetTenants(reg)
	dp.SetTenants(reg)

	before := metrics.TenantCounters()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := dp.InferAs("meter", lease.ID, testInputs(lease.Spec, int64(i))); err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
	}
	after := metrics.TenantCounters()
	delta := func(name string) int64 {
		return after[name]["meter"] - before[name]["meter"]
	}
	if got := delta("mlv_tenant_requests"); got != n {
		t.Errorf("requests delta = %d, want %d", got, n)
	}
	if got := delta("mlv_tenant_infers_served"); got != n {
		t.Errorf("served delta = %d, want %d", got, n)
	}
	if got := delta("mlv_tenant_queue_depth"); got != 0 {
		t.Errorf("queue depth delta = %d, want 0 (all answered)", got)
	}
	if riders := delta("mlv_tenant_batch_riders"); riders != n {
		t.Errorf("batch riders delta = %d, want %d", riders, n)
	}
	if batches := delta("mlv_tenant_batches"); batches < 1 || batches > n {
		t.Errorf("batches delta = %d, want 1..%d", batches, n)
	}
}

func TestLeaseCarriesTenant(t *testing.T) {
	svc := newService(t)
	svc.SetTenants(quotaRegistry(t, tenant.Tenant{ID: "owner", Key: "k"}))
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
	l, err := svc.DeployWith(spec, PlaceOptions{Tenant: "owner"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := svc.Lease(l.ID)
	if !ok || got.Tenant != "owner" {
		t.Fatalf("lease tenant = %q, want owner", got.Tenant)
	}
}

func TestQuotaUnenforcedWithoutRegistry(t *testing.T) {
	svc := newService(t)
	spec := kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 2}
	// A tenant id without a registry is label-only: no lookup, no quota.
	l, err := svc.DeployWith(spec, PlaceOptions{Tenant: "whoever"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Tenant != "whoever" {
		t.Fatalf("lease tenant = %q", l.Tenant)
	}
}

// TestSubmitShedsAtQueueBound asserts engine backpressure surfaces as
// ErrBusy when the fair queue hits its bound.
func TestSubmitShedsAtQueueBound(t *testing.T) {
	opts := DefaultInferOptions()
	opts.Machines = 1
	opts.MaxBatch = 1
	opts.FlushDelay = 0
	_, dp, lease := testPlane(t, opts)
	e, err := dp.engine(mustLease(t, dp.svc, lease.ID))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue past its bound without running the scheduler (steal
	// the pending count directly): submit must shed with ErrBusy.
	ce := e.(*contEngine)
	ce.pending.Store(int64(ce.queueCap))
	req := &inferRequest{inputs: testInputs(lease.Spec, 1), enqueued: time.Now(), resp: make(chan inferResponse, 1)}
	if err := e.submit(req); !errors.Is(err, ErrBusy) {
		t.Fatalf("submit at bound: %v, want ErrBusy", err)
	}
	ce.pending.Store(0)
}

func mustLease(t *testing.T, svc *Service, id int) *Lease {
	t.Helper()
	l, ok := svc.Lease(id)
	if !ok {
		t.Fatalf("lease %d not found", id)
	}
	return l
}
