// Package rtl implements a structural Verilog subset: lexer, parser,
// design elaboration, a two-valued simulator, module equivalence checking
// and FPGA resource estimation.
//
// This is the substrate the paper's decomposing step (§2.2.1) operates on.
// The decomposer needs exactly what the subset captures: the module
// hierarchy, basic modules (modules that instantiate no other module), port
// connectivity with bit widths (communication bandwidth), and an oracle for
// "are these two blocks identical hardware" (data-parallelism detection).
//
// Supported constructs:
//
//	module m #(parameter N = 8) (input [N-1:0] a, output reg [N-1:0] q);
//	  wire [N-1:0] w;
//	  localparam M = N * 2;
//	  assign w = a + 1'b1;
//	  always @(posedge clk) begin q <= w; end
//	  sub #(.W(N)) u0 (.x(w), .y(q));
//	endmodule
//
// Expressions cover the usual bit-vector operators, concatenation,
// replication, indexing, part select and the conditional operator.
// Instances of modules with no definition in the design are "blackboxes" —
// the resource estimator treats known Xilinx primitive names (RAMB36E2,
// URAM288, DSP48E2, FDRE, LUT6, ...) as hard resources.
package rtl

import (
	"fmt"
	"strings"
)

// Dir is a port direction.
type Dir int

// Port directions.
const (
	Input Dir = iota
	Output
	Inout
)

func (d Dir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	case Inout:
		return "inout"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Expr is any expression node.
type Expr interface {
	exprNode()
	// String renders the expression as Verilog source.
	String() string
}

// Ident is a net, port or parameter reference.
type Ident struct{ Name string }

// Number is a literal. Width 0 means unsized.
type Number struct {
	Value uint64
	Width int // declared width in bits; 0 if unsized
}

// Unary is a unary operator: ~ - ! and the reductions & | ^.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator.
type Binary struct {
	Op   string
	L, R Expr
}

// Cond is the ?: conditional operator.
type Cond struct {
	If, Then, Else Expr
}

// Index is a single-bit select x[i].
type Index struct {
	X  Expr
	At Expr
}

// Slice is a part select x[msb:lsb].
type Slice struct {
	X        Expr
	Msb, Lsb Expr
}

// Concat is {a, b, c}.
type Concat struct{ Parts []Expr }

// Repl is a replication {n{x}}.
type Repl struct {
	Count Expr
	X     Expr
}

func (*Ident) exprNode()  {}
func (*Number) exprNode() {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Cond) exprNode()   {}
func (*Index) exprNode()  {}
func (*Slice) exprNode()  {}
func (*Concat) exprNode() {}
func (*Repl) exprNode()   {}

func (e *Ident) String() string { return e.Name }

func (e *Number) String() string {
	if e.Width == 0 {
		return fmt.Sprintf("%d", e.Value)
	}
	return fmt.Sprintf("%d'h%x", e.Width, e.Value)
}

func (e *Unary) String() string  { return e.Op + "(" + e.X.String() + ")" }
func (e *Binary) String() string { return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")" }
func (e *Cond) String() string {
	return "(" + e.If.String() + " ? " + e.Then.String() + " : " + e.Else.String() + ")"
}
func (e *Index) String() string { return e.X.String() + "[" + e.At.String() + "]" }
func (e *Slice) String() string {
	return e.X.String() + "[" + e.Msb.String() + ":" + e.Lsb.String() + "]"
}
func (e *Concat) String() string {
	parts := make([]string, len(e.Parts))
	for i, p := range e.Parts {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (e *Repl) String() string {
	return "{" + e.Count.String() + "{" + e.X.String() + "}}"
}

// Range is a bit range [Msb:Lsb] with possibly-symbolic bounds.
type Range struct {
	Msb, Lsb Expr // nil for scalar (1-bit)
}

// IsScalar reports whether the range denotes a single bit.
func (r Range) IsScalar() bool { return r.Msb == nil }

// Port declares a module port.
type Port struct {
	Name  string
	Dir   Dir
	Range Range
	IsReg bool
}

// Net declares an internal wire or reg.
type Net struct {
	Name  string
	Range Range
	IsReg bool
}

// Param declares a parameter or localparam with its default value.
type Param struct {
	Name    string
	Default Expr
	IsLocal bool
}

// Assign is a continuous assignment.
type Assign struct {
	LHS Expr // Ident, Index, Slice or Concat of those
	RHS Expr
}

// SeqAssign is a nonblocking assignment inside an always block.
type SeqAssign struct {
	LHS Expr
	RHS Expr
	// Guard is the chain of if-conditions enclosing this assignment
	// (all must be true), nil when unconditional.
	Guard []Expr
}

// Always is a clocked process. The subset supports a single posedge/negedge
// clock with optional if/else chains of nonblocking assignments.
type Always struct {
	Clock   string // clock signal name
	Negedge bool
	Body    []SeqAssign
}

// Instance instantiates another module (or a blackbox primitive).
type Instance struct {
	ModuleName string
	Name       string
	// Params are named parameter overrides (#(.N(8))).
	Params map[string]Expr
	// Conns maps formal port name -> actual expression. Positional
	// connections are resolved to names during parsing when the target
	// module is known, otherwise kept as "" keyed entries in Order.
	Conns map[string]Expr
	// Order preserves connection order for positional resolution.
	Order []string
}

// Module is one parsed module definition.
type Module struct {
	Name      string
	Params    []Param
	Ports     []Port
	Nets      []Net
	Assigns   []Assign
	Alwayses  []Always
	Instances []Instance
	// SrcLine is the line of the module keyword, for diagnostics.
	SrcLine int
}

// PortByName returns the port declaration, if present.
func (m *Module) PortByName(name string) (Port, bool) {
	for _, p := range m.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// IsBasic reports whether the module instantiates no other module — the
// paper's definition of a basic module (§2.1). Blackbox primitive instances
// (RAMB36E2, DSP48E2, ...) do not disqualify a module from being basic:
// they are leaf cells, not Verilog modules of the design.
func (m *Module) IsBasic(isPrimitive func(string) bool) bool {
	for _, inst := range m.Instances {
		if !isPrimitive(inst.ModuleName) {
			return false
		}
	}
	return true
}
