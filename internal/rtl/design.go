package rtl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrNotFound is returned when a referenced module does not exist.
var ErrNotFound = errors.New("rtl: module not found")

// Design is a set of modules plus the name of the top module.
type Design struct {
	Modules map[string]*Module
	Top     string
}

// NewDesign builds a design from parsed modules. The top module must exist.
func NewDesign(mods []*Module, top string) (*Design, error) {
	d := &Design{Modules: map[string]*Module{}, Top: top}
	for _, m := range mods {
		if _, dup := d.Modules[m.Name]; dup {
			return nil, fmt.Errorf("rtl: duplicate module %q", m.Name)
		}
		d.Modules[m.Name] = m
	}
	if _, ok := d.Modules[top]; !ok {
		return nil, fmt.Errorf("%w: top module %q", ErrNotFound, top)
	}
	return d, nil
}

// ParseDesign parses source text and wraps it into a Design.
func ParseDesign(src, top string) (*Design, error) {
	mods, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewDesign(mods, top)
}

// ParseDesignParallel is ParseDesign with per-module parsing fanned out
// over up to workers goroutines; the resulting design is identical.
func ParseDesignParallel(src, top string, workers int) (*Design, error) {
	mods, err := ParseParallel(src, workers)
	if err != nil {
		return nil, err
	}
	return NewDesign(mods, top)
}

// Module returns a module by name.
func (d *Design) Module(name string) (*Module, bool) {
	m, ok := d.Modules[name]
	return m, ok
}

// IsPrimitive reports whether name refers to a hard primitive cell rather
// than a module of the design. Any instance whose module has no definition
// in the design is treated as a blackbox primitive; the well-known Xilinx
// primitives additionally carry resource costs (see estimate.go).
func (d *Design) IsPrimitive(name string) bool {
	_, defined := d.Modules[name]
	return !defined
}

// SortedModuleNames returns the module names in lexical order.
func (d *Design) SortedModuleNames() []string {
	names := make([]string, 0, len(d.Modules))
	for n := range d.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BasicModules returns the names of all basic modules — modules that
// instantiate no other design module (paper §2.1).
func (d *Design) BasicModules() []string {
	var out []string
	for _, name := range d.SortedModuleNames() {
		if d.Modules[name].IsBasic(d.IsPrimitive) {
			out = append(out, name)
		}
	}
	return out
}

// Validate checks that every instance connects to declared ports of defined
// modules, and that positional connections can be resolved.
func (d *Design) Validate() error {
	for _, name := range d.SortedModuleNames() {
		m := d.Modules[name]
		for _, inst := range m.Instances {
			child, defined := d.Modules[inst.ModuleName]
			if !defined {
				continue // blackbox primitive: nothing to check
			}
			for key := range inst.Conns {
				if idx, pos := isPositionalKey(key); pos {
					if idx >= len(child.Ports) {
						return fmt.Errorf("rtl: %s.%s: positional connection %d exceeds %d ports of %s",
							name, inst.Name, idx, len(child.Ports), child.Name)
					}
					continue
				}
				if _, ok := child.PortByName(key); !ok {
					return fmt.Errorf("rtl: %s.%s: no port %q on module %s",
						name, inst.Name, key, child.Name)
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Constant evaluation

// EvalConst evaluates a constant expression under a parameter environment.
func EvalConst(e Expr, env map[string]uint64) (uint64, error) {
	switch v := e.(type) {
	case *Number:
		return v.Value, nil
	case *Ident:
		if val, ok := env[v.Name]; ok {
			return val, nil
		}
		return 0, fmt.Errorf("rtl: %q is not a constant", v.Name)
	case *Unary:
		x, err := EvalConst(v.X, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		default:
			return 0, fmt.Errorf("rtl: unary %q not constant-foldable", v.Op)
		}
	case *Binary:
		l, err := EvalConst(v.L, env)
		if err != nil {
			return 0, err
		}
		r, err := EvalConst(v.R, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, errors.New("rtl: constant division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, errors.New("rtl: constant modulo by zero")
			}
			return l % r, nil
		case "<<":
			if r >= 64 {
				return 0, nil
			}
			return l << r, nil
		case ">>":
			if r >= 64 {
				return 0, nil
			}
			return l >> r, nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		case "==":
			return b2u(l == r), nil
		case "!=":
			return b2u(l != r), nil
		case "<":
			return b2u(l < r), nil
		case ">":
			return b2u(l > r), nil
		case "<=":
			return b2u(l <= r), nil
		case ">=":
			return b2u(l >= r), nil
		case "&&":
			return b2u(l != 0 && r != 0), nil
		case "||":
			return b2u(l != 0 || r != 0), nil
		}
		return 0, fmt.Errorf("rtl: binary %q not constant-foldable", v.Op)
	case *Cond:
		c, err := EvalConst(v.If, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalConst(v.Then, env)
		}
		return EvalConst(v.Else, env)
	}
	return 0, fmt.Errorf("rtl: expression %s is not constant", e)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// rangeWidth returns the bit width of a resolved range under env.
func rangeWidth(r Range, env map[string]uint64) (int, error) {
	if r.IsScalar() {
		return 1, nil
	}
	msb, err := EvalConst(r.Msb, env)
	if err != nil {
		return 0, err
	}
	lsb, err := EvalConst(r.Lsb, env)
	if err != nil {
		return 0, err
	}
	if lsb > msb {
		return 0, fmt.Errorf("rtl: descending range [%d:%d] not supported", msb, lsb)
	}
	w := int(msb-lsb) + 1
	if w <= 0 || w > 64 {
		return 0, fmt.Errorf("rtl: range width %d out of supported range [1,64]", w)
	}
	return w, nil
}

// paramEnv resolves a module's parameter environment given overrides
// (already evaluated to constants). Parameters and localparams are
// evaluated in declaration order so later ones may reference earlier ones.
func (d *Design) paramEnv(m *Module, overrides map[string]uint64) (map[string]uint64, error) {
	env := map[string]uint64{}
	for _, p := range m.Params {
		if v, ok := overrides[p.Name]; ok && !p.IsLocal {
			env[p.Name] = v
			continue
		}
		v, err := EvalConst(p.Default, env)
		if err != nil {
			return nil, fmt.Errorf("rtl: module %s parameter %s: %w", m.Name, p.Name, err)
		}
		env[p.Name] = v
	}
	for name := range overrides {
		found := false
		for _, p := range m.Params {
			if p.Name == name && !p.IsLocal {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("rtl: module %s has no parameter %q", m.Name, name)
		}
	}
	return env, nil
}

// ---------------------------------------------------------------------------
// Elaboration

// ElabKey names an elaborated module: module name plus sorted parameter
// bindings, e.g. "mvm_tile(COLS=128,ROWS=128)".
func ElabKey(name string, params map[string]uint64) string {
	if len(params) == 0 {
		return name
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%d", k, params[k])
	}
	sb.WriteByte(')')
	return sb.String()
}

// ElabModule is one module elaborated under concrete parameter values.
type ElabModule struct {
	Module *Module
	// Env is the full parameter environment (params + localparams).
	Env map[string]uint64
	// Key identifies this elaboration uniquely within a design.
	Key string
	// PortWidths holds the resolved width of every port.
	PortWidths map[string]int
	// Children are the elaborated sub-instances, in declaration order.
	// Blackbox primitive instances have a nil Elab.
	Children []ElabInstance
}

// ElabInstance is one instantiation inside an elaborated module.
type ElabInstance struct {
	Inst *Instance
	Elab *ElabModule // nil for blackbox primitives
}

// Elaborate resolves a module and its whole subtree under the given
// parameter overrides. The same (module, params) pair elaborates to a shared
// *ElabModule via the cache, so elaboration of wide data-parallel designs is
// cheap.
func (d *Design) Elaborate(name string, overrides map[string]uint64) (*ElabModule, error) {
	cache := map[string]*ElabModule{}
	return d.elaborate(name, overrides, cache, 0)
}

const maxElabDepth = 64

func (d *Design) elaborate(name string, overrides map[string]uint64, cache map[string]*ElabModule, depth int) (*ElabModule, error) {
	if depth > maxElabDepth {
		return nil, fmt.Errorf("rtl: module hierarchy deeper than %d (recursive instantiation?)", maxElabDepth)
	}
	m, ok := d.Modules[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	env, err := d.paramEnv(m, overrides)
	if err != nil {
		return nil, err
	}
	// Cache key uses only non-local parameter bindings.
	public := map[string]uint64{}
	for _, p := range m.Params {
		if !p.IsLocal {
			public[p.Name] = env[p.Name]
		}
	}
	key := ElabKey(name, public)
	if em, hit := cache[key]; hit {
		if em == nil {
			return nil, fmt.Errorf("rtl: recursive instantiation of %s", key)
		}
		return em, nil
	}
	cache[key] = nil // mark in progress to detect recursion
	em := &ElabModule{Module: m, Env: env, Key: key, PortWidths: map[string]int{}}
	for _, p := range m.Ports {
		w, err := rangeWidth(p.Range, env)
		if err != nil {
			return nil, fmt.Errorf("rtl: module %s port %s: %w", name, p.Name, err)
		}
		em.PortWidths[p.Name] = w
	}
	for i := range m.Instances {
		inst := &m.Instances[i]
		if d.IsPrimitive(inst.ModuleName) {
			em.Children = append(em.Children, ElabInstance{Inst: inst})
			continue
		}
		childOverrides := map[string]uint64{}
		for pname, pexpr := range inst.Params {
			v, err := EvalConst(pexpr, env)
			if err != nil {
				return nil, fmt.Errorf("rtl: %s.%s parameter %s: %w", name, inst.Name, pname, err)
			}
			childOverrides[pname] = v
		}
		child, err := d.elaborate(inst.ModuleName, childOverrides, cache, depth+1)
		if err != nil {
			return nil, err
		}
		em.Children = append(em.Children, ElabInstance{Inst: inst, Elab: child})
	}
	cache[key] = em
	return em, nil
}

// resolveConns returns the instance's connections keyed by formal port name,
// resolving positional connections against the child module's port order.
func resolveConns(inst *Instance, child *Module) (map[string]Expr, error) {
	out := map[string]Expr{}
	for key, val := range inst.Conns {
		if idx, pos := isPositionalKey(key); pos {
			if child == nil {
				return nil, fmt.Errorf("rtl: positional connection on blackbox %s", inst.ModuleName)
			}
			if idx >= len(child.Ports) {
				return nil, fmt.Errorf("rtl: instance %s: positional connection %d out of range", inst.Name, idx)
			}
			out[child.Ports[idx].Name] = val
			continue
		}
		out[key] = val
	}
	return out, nil
}

// NetWidths resolves the width of every port and net of an elaborated
// module, keyed by name.
func (em *ElabModule) NetWidths() (map[string]int, error) {
	widths := map[string]int{}
	for name, w := range em.PortWidths {
		widths[name] = w
	}
	for _, n := range em.Module.Nets {
		w, err := rangeWidth(n.Range, em.Env)
		if err != nil {
			return nil, fmt.Errorf("rtl: module %s net %s: %w", em.Module.Name, n.Name, err)
		}
		widths[n.Name] = w
	}
	return widths, nil
}

// InferWidth computes the bit width of an expression given net widths and
// the parameter environment. Parameters evaluate as 32-bit values.
func InferWidth(e Expr, widths map[string]int, env map[string]uint64) (int, error) {
	switch v := e.(type) {
	case *Ident:
		if w, ok := widths[v.Name]; ok {
			return w, nil
		}
		if _, ok := env[v.Name]; ok {
			return 32, nil
		}
		return 0, fmt.Errorf("rtl: unknown net %q", v.Name)
	case *Number:
		if v.Width > 0 {
			return v.Width, nil
		}
		return 32, nil
	case *Unary:
		switch v.Op {
		case "&", "|", "^", "!":
			return 1, nil
		}
		return InferWidth(v.X, widths, env)
	case *Binary:
		switch v.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			return 1, nil
		case "<<", ">>":
			return InferWidth(v.L, widths, env)
		}
		lw, err := InferWidth(v.L, widths, env)
		if err != nil {
			return 0, err
		}
		rw, err := InferWidth(v.R, widths, env)
		if err != nil {
			return 0, err
		}
		if lw > rw {
			return lw, nil
		}
		return rw, nil
	case *Cond:
		tw, err := InferWidth(v.Then, widths, env)
		if err != nil {
			return 0, err
		}
		ew, err := InferWidth(v.Else, widths, env)
		if err != nil {
			return 0, err
		}
		if tw > ew {
			return tw, nil
		}
		return ew, nil
	case *Index:
		return 1, nil
	case *Slice:
		msb, err := EvalConst(v.Msb, env)
		if err != nil {
			return 0, err
		}
		lsb, err := EvalConst(v.Lsb, env)
		if err != nil {
			return 0, err
		}
		if lsb > msb {
			return 0, fmt.Errorf("rtl: bad slice [%d:%d]", msb, lsb)
		}
		return int(msb-lsb) + 1, nil
	case *Concat:
		total := 0
		for _, p := range v.Parts {
			w, err := InferWidth(p, widths, env)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	case *Repl:
		n, err := EvalConst(v.Count, env)
		if err != nil {
			return 0, err
		}
		w, err := InferWidth(v.X, widths, env)
		if err != nil {
			return 0, err
		}
		return int(n) * w, nil
	}
	return 0, fmt.Errorf("rtl: cannot infer width of %s", e)
}
