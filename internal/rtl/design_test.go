package rtl

import (
	"strings"
	"testing"
)

const adderDesign = `
module add8(input [7:0] a, input [7:0] b, output [8:0] y);
  assign y = {1'b0, a} + {1'b0, b};
endmodule

module top(input [7:0] x1, input [7:0] x2, output [8:0] s);
  add8 u0 (.a(x1), .b(x2), .y(s));
endmodule
`

func TestNewDesign(t *testing.T) {
	mods := mustParse(t, adderDesign)
	d, err := NewDesign(mods, "top")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Module("add8"); !ok {
		t.Error("add8 missing")
	}
	if d.IsPrimitive("add8") || !d.IsPrimitive("DSP48E2") {
		t.Error("IsPrimitive misclassifies")
	}
	if _, err := NewDesign(mods, "nope"); err == nil {
		t.Error("missing top must error")
	}
	if _, err := NewDesign(append(mods, mods[0]), "top"); err == nil {
		t.Error("duplicate module must error")
	}
}

func TestBasicModules(t *testing.T) {
	d, err := ParseDesign(adderDesign, "top")
	if err != nil {
		t.Fatal(err)
	}
	basics := d.BasicModules()
	if len(basics) != 1 || basics[0] != "add8" {
		t.Errorf("BasicModules = %v, want [add8]", basics)
	}
}

func TestValidate(t *testing.T) {
	good, _ := ParseDesign(adderDesign, "top")
	if err := good.Validate(); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
	bad, err := ParseDesign(`
		module sub(input a, output y); assign y = a; endmodule
		module top(input x, output z);
		  sub u0 (.nosuch(x), .y(z));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Error("bad port connection must fail validation")
	}
}

func TestEvalConst(t *testing.T) {
	env := map[string]uint64{"W": 8}
	cases := map[string]uint64{
		"1 + 2*3":        7,
		"W - 1":          7,
		"(W == 8) ? 4:2": 4,
		"1 << W":         256,
		"W / 2":          4,
		"W % 3":          2,
		"!(W > 4)":       0,
		"W >= 8 && 1":    1,
	}
	for src, want := range cases {
		mods := mustParse(t, "module m(); localparam X = "+src+"; endmodule")
		got, err := EvalConst(mods[0].Params[0].Default, env)
		if err != nil {
			t.Errorf("EvalConst(%q): %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("EvalConst(%q) = %d, want %d", src, got, want)
		}
	}
}

func TestEvalConstErrors(t *testing.T) {
	mods := mustParse(t, "module m(input x); localparam A = x + 1; localparam B = 1/0; endmodule")
	if _, err := EvalConst(mods[0].Params[0].Default, nil); err == nil {
		t.Error("net reference must not be constant")
	}
	if _, err := EvalConst(mods[0].Params[1].Default, nil); err == nil {
		t.Error("division by zero must error")
	}
}

func TestElaborateParams(t *testing.T) {
	d, err := ParseDesign(`
		module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
		  assign y = a;
		endmodule
		module top #(parameter N = 8) (input [N-1:0] x, output [N-1:0] z);
		  leaf #(.W(N)) u0 (.a(x), .y(z));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	em, err := d.Elaborate("top", nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.PortWidths["x"] != 8 {
		t.Errorf("top port width = %d, want 8", em.PortWidths["x"])
	}
	if em.Children[0].Elab.PortWidths["a"] != 8 {
		t.Errorf("leaf elaborated width = %d, want 8", em.Children[0].Elab.PortWidths["a"])
	}
	// Override at the top.
	em16, err := d.Elaborate("top", map[string]uint64{"N": 16})
	if err != nil {
		t.Fatal(err)
	}
	if em16.Children[0].Elab.PortWidths["a"] != 16 {
		t.Errorf("override not propagated: %d", em16.Children[0].Elab.PortWidths["a"])
	}
	if em16.Key == em.Key {
		t.Error("different params must give different keys")
	}
}

func TestElaborateSharing(t *testing.T) {
	d, err := ParseDesign(`
		module leaf(input a, output y); assign y = a; endmodule
		module top(input x, output z);
		  wire w;
		  leaf u0 (.a(x), .y(w));
		  leaf u1 (.a(w), .y(z));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	em, err := d.Elaborate("top", nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.Children[0].Elab != em.Children[1].Elab {
		t.Error("identical elaborations must be shared")
	}
}

func TestElaborateErrors(t *testing.T) {
	d, _ := ParseDesign(adderDesign, "top")
	if _, err := d.Elaborate("missing", nil); err == nil {
		t.Error("unknown module must error")
	}
	if _, err := d.Elaborate("top", map[string]uint64{"NOPE": 1}); err == nil {
		t.Error("unknown parameter override must error")
	}
	// Recursive instantiation must be caught.
	rec, err := ParseDesign("module a(input x); a u (.x(x)); endmodule", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Elaborate("a", nil); err == nil {
		t.Error("recursive instantiation must error")
	}
}

func TestElabKey(t *testing.T) {
	if ElabKey("m", nil) != "m" {
		t.Error("no-param key must be bare name")
	}
	k := ElabKey("m", map[string]uint64{"B": 2, "A": 1})
	if k != "m(A=1,B=2)" {
		t.Errorf("key = %q, want sorted params", k)
	}
}

func TestInferWidth(t *testing.T) {
	widths := map[string]int{"a": 8, "b": 16, "c": 1}
	cases := []struct {
		src  string
		want int
	}{
		{"a", 8},
		{"a + b", 16},
		{"a == b", 1},
		{"{a, b}", 24},
		{"{3{a}}", 24},
		{"a[3]", 1},
		{"a[5:2]", 4},
		{"c ? a : b", 16},
		{"a << 2", 8},
		{"~a", 8},
		{"&a", 1},
	}
	for _, cse := range cases {
		mods := mustParse(t, "module m(input [7:0] a, input [15:0] b, input c, output [31:0] y); assign y = "+cse.src+"; endmodule")
		got, err := InferWidth(mods[0].Assigns[0].RHS, widths, nil)
		if err != nil {
			t.Errorf("InferWidth(%q): %v", cse.src, err)
			continue
		}
		if got != cse.want {
			t.Errorf("InferWidth(%q) = %d, want %d", cse.src, got, cse.want)
		}
	}
}

func TestRangeWidthErrors(t *testing.T) {
	d, err := ParseDesign(`module m(input [0:7] a); endmodule`, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Elaborate("m", nil); err == nil || !strings.Contains(err.Error(), "descending") {
		t.Errorf("ascending range must be rejected, got %v", err)
	}
	d2, _ := ParseDesign(`module m(input [99:0] a); endmodule`, "m")
	if _, err := d2.Elaborate("m", nil); err == nil {
		t.Error("width > 64 must be rejected")
	}
}
