package rtl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// This file provides the "are these two blocks identical hardware" oracle
// that the decomposing step (§2.2.1) needs to detect data parallelism. The
// paper cites SAT-based combinational equivalence checking [20,35,46]; we
// implement the standard lightweight front-end of such checkers:
//
//  1. a canonical structural hash (alpha-renamed nets, recursive child
//     hashes), which proves equivalence for identical structure, and
//  2. random-simulation equivalence over the flattened designs, which
//     catches structurally different but functionally identical modules
//     with high probability.
//
// Random simulation cannot *prove* equivalence, but for parallelism
// extraction a false positive only costs mapping quality, not correctness
// of the oracle's user: the copies it groups really did agree on every
// tested stimulus.

// StructuralHash returns a canonical hash of an elaborated module. Two
// elaborations with identical structure — up to net names, instance names
// and child module names — share a hash.
func (d *Design) StructuralHash(em *ElabModule) string {
	memo := map[*ElabModule]string{}
	return d.structuralHash(em, memo)
}

func (d *Design) structuralHash(em *ElabModule, memo map[*ElabModule]string) string {
	if h, ok := memo[em]; ok {
		return h
	}
	var sb strings.Builder
	rename := newRenamer()
	// Ports: names are part of the interface and therefore of the hash.
	for _, p := range em.Module.Ports {
		fmt.Fprintf(&sb, "port %s %s %d %v;", p.Name, p.Dir, em.PortWidths[p.Name], p.IsReg)
		rename.keep(p.Name)
	}
	widths, err := em.NetWidths()
	if err != nil {
		// Width errors surface during elaboration; treat as unique.
		fmt.Fprintf(&sb, "widtherr %v;", err)
	}
	for _, n := range em.Module.Nets {
		fmt.Fprintf(&sb, "net %s %d %v;", rename.of(n.Name), widths[n.Name], n.IsReg)
	}
	for _, a := range em.Module.Assigns {
		fmt.Fprintf(&sb, "assign %s = %s;", canonExpr(a.LHS, rename, em.Env), canonExpr(a.RHS, rename, em.Env))
	}
	for _, alw := range em.Module.Alwayses {
		fmt.Fprintf(&sb, "always %s %v {", rename.of(alw.Clock), alw.Negedge)
		for _, sa := range alw.Body {
			for _, g := range sa.Guard {
				fmt.Fprintf(&sb, "[%s]", canonExpr(g, rename, em.Env))
			}
			fmt.Fprintf(&sb, "%s <= %s;", canonExpr(sa.LHS, rename, em.Env), canonExpr(sa.RHS, rename, em.Env))
		}
		sb.WriteString("}")
	}
	for _, child := range em.Children {
		inst := child.Inst
		var childID string
		if child.Elab != nil {
			childID = d.structuralHash(child.Elab, memo)
		} else {
			// Blackbox primitives are identified by name and parameters.
			childID = "prim:" + inst.ModuleName + canonParams(inst.Params, em.Env)
		}
		fmt.Fprintf(&sb, "inst %s (", childID)
		var conns map[string]Expr
		if child.Elab != nil {
			conns, err = resolveConns(inst, child.Elab.Module)
			if err != nil {
				conns = inst.Conns
			}
		} else {
			conns = inst.Conns
		}
		keys := make([]string, 0, len(conns))
		for k := range conns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if conns[k] == nil {
				fmt.Fprintf(&sb, ".%s(),", k)
				continue
			}
			fmt.Fprintf(&sb, ".%s(%s),", k, canonExpr(conns[k], rename, em.Env))
		}
		sb.WriteString(");")
	}
	sum := sha256.Sum256([]byte(sb.String()))
	h := hex.EncodeToString(sum[:16])
	memo[em] = h
	return h
}

// renamer assigns canonical names to nets in first-use order; port names
// are kept verbatim.
type renamer struct {
	m    map[string]string
	next int
}

func newRenamer() *renamer { return &renamer{m: map[string]string{}} }

func (r *renamer) keep(name string) { r.m[name] = name }

func (r *renamer) of(name string) string {
	if c, ok := r.m[name]; ok {
		return c
	}
	c := fmt.Sprintf("n%d", r.next)
	r.next++
	r.m[name] = c
	return c
}

// canonExpr serializes an expression with canonical net names and
// parameters folded to constants.
func canonExpr(e Expr, r *renamer, env map[string]uint64) string {
	switch v := e.(type) {
	case *Ident:
		if val, isParam := env[v.Name]; isParam {
			if _, alsoNet := r.m[v.Name]; !alsoNet {
				return fmt.Sprintf("#%d", val)
			}
		}
		return r.of(v.Name)
	case *Number:
		return fmt.Sprintf("#%d/%d", v.Value, v.Width)
	case *Unary:
		return v.Op + "(" + canonExpr(v.X, r, env) + ")"
	case *Binary:
		return "(" + canonExpr(v.L, r, env) + v.Op + canonExpr(v.R, r, env) + ")"
	case *Cond:
		return "(" + canonExpr(v.If, r, env) + "?" + canonExpr(v.Then, r, env) + ":" + canonExpr(v.Else, r, env) + ")"
	case *Index:
		return canonExpr(v.X, r, env) + "[" + canonExpr(v.At, r, env) + "]"
	case *Slice:
		return canonExpr(v.X, r, env) + "[" + canonExpr(v.Msb, r, env) + ":" + canonExpr(v.Lsb, r, env) + "]"
	case *Concat:
		parts := make([]string, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = canonExpr(p, r, env)
		}
		return "{" + strings.Join(parts, ",") + "}"
	case *Repl:
		return "{" + canonExpr(v.Count, r, env) + "{" + canonExpr(v.X, r, env) + "}}"
	}
	return fmt.Sprintf("?%T", e)
}

func canonParams(params map[string]Expr, env map[string]uint64) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('#')
	for _, k := range keys {
		v, err := EvalConst(params[k], env)
		if err != nil {
			fmt.Fprintf(&sb, "%s=?,", k)
			continue
		}
		fmt.Fprintf(&sb, "%s=%d,", k, v)
	}
	return sb.String()
}

// EquivChecker decides whether two elaborated modules implement identical
// hardware.
type EquivChecker struct {
	d   *Design
	rng *rand.Rand
	// Vectors is the number of random input vectors applied per
	// equivalence query (default 64).
	Vectors int
	// Cycles is the number of clock ticks applied after each vector to
	// exercise sequential behaviour (default 4).
	Cycles int

	hashMemo map[*ElabModule]string
	simMemo  map[[2]string]bool
}

// NewEquivChecker builds a checker with a deterministic random source.
func NewEquivChecker(d *Design, seed int64) *EquivChecker {
	return &EquivChecker{
		d:        d,
		rng:      rand.New(rand.NewSource(seed)),
		Vectors:  64,
		Cycles:   4,
		hashMemo: map[*ElabModule]string{},
		simMemo:  map[[2]string]bool{},
	}
}

// Hash returns the memoized structural hash of em.
func (c *EquivChecker) Hash(em *ElabModule) string {
	if h, ok := c.hashMemo[em]; ok {
		return h
	}
	h := c.d.structuralHash(em, c.hashMemo)
	return h
}

// Equivalent reports whether a and b implement identical hardware. The fast
// path is the structural hash; the slow path is random-simulation
// equivalence over the flattened modules. Modules containing blackbox
// primitives can only be proven equivalent structurally.
func (c *EquivChecker) Equivalent(a, b *ElabModule) (bool, error) {
	if a == b || a.Key == b.Key {
		return true, nil
	}
	ha, hb := c.Hash(a), c.Hash(b)
	if ha == hb {
		return true, nil
	}
	if !sameInterface(a, b) {
		return false, nil
	}
	memoKey := [2]string{ha, hb}
	if hb < ha {
		memoKey = [2]string{hb, ha}
	}
	if r, ok := c.simMemo[memoKey]; ok {
		return r, nil
	}
	eq, err := c.simEquivalent(a, b)
	if err != nil {
		if err == ErrNotSimulable || strings.Contains(err.Error(), "blackbox") {
			// Cannot decide functionally; structural mismatch stands.
			c.simMemo[memoKey] = false
			return false, nil
		}
		return false, err
	}
	c.simMemo[memoKey] = eq
	return eq, nil
}

// sameInterface reports whether two elaborations expose identical port
// lists (name, direction, width), which data-parallel interchangeable
// copies must.
func sameInterface(a, b *ElabModule) bool {
	if len(a.Module.Ports) != len(b.Module.Ports) {
		return false
	}
	bports := map[string]Port{}
	for _, p := range b.Module.Ports {
		bports[p.Name] = p
	}
	for _, pa := range a.Module.Ports {
		pb, ok := bports[pa.Name]
		if !ok || pa.Dir != pb.Dir {
			return false
		}
		if a.PortWidths[pa.Name] != b.PortWidths[pb.Name] {
			return false
		}
	}
	return true
}

// publicParams extracts the non-local parameter bindings of an elaboration,
// suitable for re-elaboration or flattening.
func publicParams(em *ElabModule) map[string]uint64 {
	out := map[string]uint64{}
	for _, p := range em.Module.Params {
		if !p.IsLocal {
			out[p.Name] = em.Env[p.Name]
		}
	}
	return out
}

// clockLike reports whether a port name looks like a clock or reset, which
// the random driver toggles via Tick rather than random data.
func clockLike(name string) bool {
	n := strings.ToLower(name)
	return n == "clk" || n == "clock" || strings.HasSuffix(n, "_clk") ||
		n == "rst" || n == "reset" || strings.HasSuffix(n, "_rst")
}

func (c *EquivChecker) simEquivalent(a, b *ElabModule) (bool, error) {
	simA, err := NewSimulator(c.d, a.Module.Name, publicParams(a))
	if err != nil {
		return false, err
	}
	simB, err := NewSimulator(c.d, b.Module.Name, publicParams(b))
	if err != nil {
		return false, err
	}
	inputs := simA.InputPorts()
	outputs := simA.OutputPorts()
	for v := 0; v < c.Vectors; v++ {
		for _, in := range inputs {
			if clockLike(in) {
				continue
			}
			val := c.rng.Uint64()
			if err := simA.SetInput(in, val); err != nil {
				return false, err
			}
			if err := simB.SetInput(in, val); err != nil {
				return false, err
			}
		}
		if err := simA.Settle(); err != nil {
			return false, err
		}
		if err := simB.Settle(); err != nil {
			return false, err
		}
		for cyc := 0; cyc <= c.Cycles; cyc++ {
			for _, out := range outputs {
				va, err := simA.Peek(out)
				if err != nil {
					return false, err
				}
				vb, err := simB.Peek(out)
				if err != nil {
					return false, err
				}
				if va != vb {
					return false, nil
				}
			}
			if cyc < c.Cycles {
				if err := simA.Tick(); err != nil {
					return false, err
				}
				if err := simB.Tick(); err != nil {
					return false, err
				}
			}
		}
	}
	return true, nil
}
