package rtl

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"mlvfpga/internal/metrics"
	"mlvfpga/internal/parpool"
)

// This file provides the "are these two blocks identical hardware" oracle
// that the decomposing step (§2.2.1) needs to detect data parallelism. The
// paper cites SAT-based combinational equivalence checking [20,35,46]; we
// implement the standard lightweight front-end of such checkers:
//
//  1. a canonical structural hash (alpha-renamed nets, recursive child
//     hashes), which proves equivalence for identical structure, and
//  2. random-simulation equivalence over the flattened designs, which
//     catches structurally different but functionally identical modules
//     with high probability.
//
// Random simulation cannot *prove* equivalence, but for parallelism
// extraction a false positive only costs mapping quality, not correctness
// of the oracle's user: the copies it groups really did agree on every
// tested stimulus.

// StructuralHash returns a canonical hash of an elaborated module. Two
// elaborations with identical structure — up to net names, instance names
// and child module names — share a hash.
func (d *Design) StructuralHash(em *ElabModule) string {
	memo := map[*ElabModule]string{}
	return d.structuralHash(em, memo)
}

func (d *Design) structuralHash(em *ElabModule, memo map[*ElabModule]string) string {
	if h, ok := memo[em]; ok {
		return h
	}
	var sb strings.Builder
	rename := newRenamer()
	// Ports: names are part of the interface and therefore of the hash.
	for _, p := range em.Module.Ports {
		fmt.Fprintf(&sb, "port %s %s %d %v;", p.Name, p.Dir, em.PortWidths[p.Name], p.IsReg)
		rename.keep(p.Name)
	}
	widths, err := em.NetWidths()
	if err != nil {
		// Width errors surface during elaboration; treat as unique.
		fmt.Fprintf(&sb, "widtherr %v;", err)
	}
	for _, n := range em.Module.Nets {
		fmt.Fprintf(&sb, "net %s %d %v;", rename.of(n.Name), widths[n.Name], n.IsReg)
	}
	for _, a := range em.Module.Assigns {
		fmt.Fprintf(&sb, "assign %s = %s;", canonExpr(a.LHS, rename, em.Env), canonExpr(a.RHS, rename, em.Env))
	}
	for _, alw := range em.Module.Alwayses {
		fmt.Fprintf(&sb, "always %s %v {", rename.of(alw.Clock), alw.Negedge)
		for _, sa := range alw.Body {
			for _, g := range sa.Guard {
				fmt.Fprintf(&sb, "[%s]", canonExpr(g, rename, em.Env))
			}
			fmt.Fprintf(&sb, "%s <= %s;", canonExpr(sa.LHS, rename, em.Env), canonExpr(sa.RHS, rename, em.Env))
		}
		sb.WriteString("}")
	}
	for _, child := range em.Children {
		inst := child.Inst
		var childID string
		if child.Elab != nil {
			childID = d.structuralHash(child.Elab, memo)
		} else {
			// Blackbox primitives are identified by name and parameters.
			childID = "prim:" + inst.ModuleName + canonParams(inst.Params, em.Env)
		}
		fmt.Fprintf(&sb, "inst %s (", childID)
		var conns map[string]Expr
		if child.Elab != nil {
			conns, err = resolveConns(inst, child.Elab.Module)
			if err != nil {
				conns = inst.Conns
			}
		} else {
			conns = inst.Conns
		}
		keys := make([]string, 0, len(conns))
		for k := range conns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if conns[k] == nil {
				fmt.Fprintf(&sb, ".%s(),", k)
				continue
			}
			fmt.Fprintf(&sb, ".%s(%s),", k, canonExpr(conns[k], rename, em.Env))
		}
		sb.WriteString(");")
	}
	sum := sha256.Sum256([]byte(sb.String()))
	h := hex.EncodeToString(sum[:16])
	memo[em] = h
	return h
}

// renamer assigns canonical names to nets in first-use order; port names
// are kept verbatim.
type renamer struct {
	m    map[string]string
	next int
}

func newRenamer() *renamer { return &renamer{m: map[string]string{}} }

func (r *renamer) keep(name string) { r.m[name] = name }

func (r *renamer) of(name string) string {
	if c, ok := r.m[name]; ok {
		return c
	}
	c := fmt.Sprintf("n%d", r.next)
	r.next++
	r.m[name] = c
	return c
}

// canonExpr serializes an expression with canonical net names and
// parameters folded to constants.
func canonExpr(e Expr, r *renamer, env map[string]uint64) string {
	switch v := e.(type) {
	case *Ident:
		if val, isParam := env[v.Name]; isParam {
			if _, alsoNet := r.m[v.Name]; !alsoNet {
				return fmt.Sprintf("#%d", val)
			}
		}
		return r.of(v.Name)
	case *Number:
		return fmt.Sprintf("#%d/%d", v.Value, v.Width)
	case *Unary:
		return v.Op + "(" + canonExpr(v.X, r, env) + ")"
	case *Binary:
		return "(" + canonExpr(v.L, r, env) + v.Op + canonExpr(v.R, r, env) + ")"
	case *Cond:
		return "(" + canonExpr(v.If, r, env) + "?" + canonExpr(v.Then, r, env) + ":" + canonExpr(v.Else, r, env) + ")"
	case *Index:
		return canonExpr(v.X, r, env) + "[" + canonExpr(v.At, r, env) + "]"
	case *Slice:
		return canonExpr(v.X, r, env) + "[" + canonExpr(v.Msb, r, env) + ":" + canonExpr(v.Lsb, r, env) + "]"
	case *Concat:
		parts := make([]string, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = canonExpr(p, r, env)
		}
		return "{" + strings.Join(parts, ",") + "}"
	case *Repl:
		return "{" + canonExpr(v.Count, r, env) + "{" + canonExpr(v.X, r, env) + "}}"
	}
	return fmt.Sprintf("?%T", e)
}

func canonParams(params map[string]Expr, env map[string]uint64) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('#')
	for _, k := range keys {
		v, err := EvalConst(params[k], env)
		if err != nil {
			fmt.Fprintf(&sb, "%s=?,", k)
			continue
		}
		fmt.Fprintf(&sb, "%s=%d,", k, v)
	}
	return sb.String()
}

// EquivStats counts what the equivalence oracle did. The memoization cache
// (keyed by the ordered pair of structural hashes) is what keeps repeated
// queries during the decomposer's fixpoint iteration cheap: every
// structurally-repeated pair after the first resolves without simulation.
type EquivStats struct {
	// Queries counts Equivalent calls.
	Queries int
	// StructuralHits counts queries decided by elaboration identity or by
	// equal structural hashes (no simulation considered).
	StructuralHits int
	// CacheHits counts queries answered from the hash-pair memo cache.
	CacheHits int
	// SimRuns counts cache misses that ran random-simulation equivalence.
	SimRuns int
}

// EquivChecker decides whether two elaborated modules implement identical
// hardware. A checker is safe for concurrent use; every verdict is a pure
// function of (seed, pair of modules), independent of query order and of
// Parallelism, so cached and parallel runs reproduce sequential results.
type EquivChecker struct {
	d    *Design
	seed int64
	// Vectors is the number of random input vectors applied per
	// equivalence query (default 64).
	Vectors int
	// Cycles is the number of clock ticks applied after each vector to
	// exercise sequential behaviour (default 4).
	Cycles int
	// Parallelism bounds the goroutines sharding one query's simulation
	// batches (<= 1 sequential, < 1 never set here: the zero value keeps
	// the sequential path so plain NewEquivChecker use stays single-core).
	Parallelism int

	mu       sync.Mutex
	hashMemo map[*ElabModule]string
	simMemo  map[[2]string]bool
	stats    EquivStats
}

// NewEquivChecker builds a checker with a deterministic random source.
func NewEquivChecker(d *Design, seed int64) *EquivChecker {
	return &EquivChecker{
		d:           d,
		seed:        seed,
		Vectors:     64,
		Cycles:      4,
		Parallelism: 1,
		hashMemo:    map[*ElabModule]string{},
		simMemo:     map[[2]string]bool{},
	}
}

// Stats returns a snapshot of the oracle's hit/miss counters.
func (c *EquivChecker) Stats() EquivStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Hash returns the memoized structural hash of em.
func (c *EquivChecker) Hash(em *ElabModule) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.d.structuralHash(em, c.hashMemo)
}

// Equivalent reports whether a and b implement identical hardware. The fast
// path is the structural hash; the slow path is random-simulation
// equivalence over the flattened modules, memoized on the ordered pair of
// structural hashes. Modules containing blackbox primitives can only be
// proven equivalent structurally.
func (c *EquivChecker) Equivalent(a, b *ElabModule) (bool, error) {
	c.mu.Lock()
	c.stats.Queries++
	metrics.EquivQueries.Add(1)
	if a == b || a.Key == b.Key {
		c.stats.StructuralHits++
		c.mu.Unlock()
		metrics.EquivStructuralHits.Add(1)
		return true, nil
	}
	ha := c.d.structuralHash(a, c.hashMemo)
	hb := c.d.structuralHash(b, c.hashMemo)
	if ha == hb {
		c.stats.StructuralHits++
		c.mu.Unlock()
		metrics.EquivStructuralHits.Add(1)
		return true, nil
	}
	if !sameInterface(a, b) {
		c.mu.Unlock()
		return false, nil
	}
	memoKey := [2]string{ha, hb}
	if hb < ha {
		memoKey = [2]string{hb, ha}
	}
	if r, ok := c.simMemo[memoKey]; ok {
		c.stats.CacheHits++
		c.mu.Unlock()
		metrics.EquivCacheHits.Add(1)
		return r, nil
	}
	c.stats.SimRuns++
	c.mu.Unlock()
	metrics.EquivSimRuns.Add(1)

	eq, err := c.simEquivalent(a, b, pairSeed(c.seed, memoKey))
	if err != nil {
		if err == ErrNotSimulable || strings.Contains(err.Error(), "blackbox") {
			// Cannot decide functionally; structural mismatch stands.
			eq, err = false, nil
		} else {
			return false, err
		}
	}
	c.mu.Lock()
	c.simMemo[memoKey] = eq
	c.mu.Unlock()
	return eq, nil
}

// pairSeed derives the simulation seed for one hash pair. Keying the seed
// on the (ordered) pair rather than on a shared stream makes every verdict
// independent of query order, which is what lets the cache and the parallel
// offline flow reproduce sequential results bit-for-bit.
func pairSeed(seed int64, memoKey [2]string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, memoKey[0], memoKey[1])
	return int64(h.Sum64())
}

// CanonHash generalizes this file's FNV-64a derivations (pairSeed, the
// blob checksums built on it) into a canonical field hasher for
// content-addressed keys: a salt names the keyspace and its format
// version, and every field folds in as "name=value;" so reordering,
// omitting, or renaming a field changes the digest. It is the key
// machinery behind the artifact store (core.CompileKey hashes
// kernels.LayerSpec / core.Options fields plus the per-device calibration
// resource vectors through it).
type CanonHash struct {
	h hash.Hash64
}

// NewCanonHash starts a digest over the named keyspace. Bump the salt
// (e.g. "compiled/v1" -> "compiled/v2") whenever the hashed structure or
// the artifact's wire format changes, so stale cache entries miss instead
// of decoding wrongly.
func NewCanonHash(salt string) *CanonHash {
	c := &CanonHash{h: fnv.New64a()}
	fmt.Fprintf(c.h, "salt=%s;", salt)
	return c
}

// Field folds one named value into the digest using its canonical %v
// rendering (stable for ints, bools, strings, and flat structs of them).
func (c *CanonHash) Field(name string, v any) *CanonHash {
	fmt.Fprintf(c.h, "%s=%v;", name, v)
	return c
}

// Raw folds pre-rendered canonical bytes — a memoized block of Field-
// formatted pairs — without re-formatting them. The digest is identical
// to emitting the same fields one by one.
func (c *CanonHash) Raw(b []byte) *CanonHash {
	c.h.Write(b)
	return c
}

// Sum returns the 64-bit digest.
func (c *CanonHash) Sum() uint64 { return c.h.Sum64() }

// Hex renders the digest as fixed-width lowercase hex, the form artifact
// keys embed.
func (c *CanonHash) Hex() string { return fmt.Sprintf("%016x", c.h.Sum64()) }

// sameInterface reports whether two elaborations expose identical port
// lists (name, direction, width), which data-parallel interchangeable
// copies must.
func sameInterface(a, b *ElabModule) bool {
	if len(a.Module.Ports) != len(b.Module.Ports) {
		return false
	}
	bports := map[string]Port{}
	for _, p := range b.Module.Ports {
		bports[p.Name] = p
	}
	for _, pa := range a.Module.Ports {
		pb, ok := bports[pa.Name]
		if !ok || pa.Dir != pb.Dir {
			return false
		}
		if a.PortWidths[pa.Name] != b.PortWidths[pb.Name] {
			return false
		}
	}
	return true
}

// publicParams extracts the non-local parameter bindings of an elaboration,
// suitable for re-elaboration or flattening.
func publicParams(em *ElabModule) map[string]uint64 {
	out := map[string]uint64{}
	for _, p := range em.Module.Params {
		if !p.IsLocal {
			out[p.Name] = em.Env[p.Name]
		}
	}
	return out
}

// clockLike reports whether a port name looks like a clock or reset, which
// the random driver toggles via Tick rather than random data.
func clockLike(name string) bool {
	n := strings.ToLower(name)
	return n == "clk" || n == "clock" || strings.HasSuffix(n, "_clk") ||
		n == "rst" || n == "reset" || strings.HasSuffix(n, "_rst")
}

// simEquivalent applies c.Vectors random input vectors (plus c.Cycles
// clock ticks each) to fresh simulators of a and b. The vector stream is
// sharded into per-worker batches; every vector draws its stimulus from an
// own *rand.Rand seeded by (pairSeed, vector index), so the verdict does
// not depend on how many goroutines ran the batches.
func (c *EquivChecker) simEquivalent(a, b *ElabModule, seed int64) (bool, error) {
	// Probe construction once, sequentially: ErrNotSimulable (blackbox
	// primitives) must surface deterministically before any fan-out.
	if _, err := NewSimulator(c.d, a.Module.Name, publicParams(a)); err != nil {
		return false, err
	}
	if _, err := NewSimulator(c.d, b.Module.Name, publicParams(b)); err != nil {
		return false, err
	}

	workers := c.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > c.Vectors {
		workers = c.Vectors
	}
	// Contiguous vector ranges, one batch per worker. Simulators carry
	// state across SetInput/Settle/Tick, so each batch builds its own
	// pair. A batch stops at its first mismatch or error; batches are
	// reduced in index order so the reported outcome is deterministic.
	type verdict struct {
		mismatch bool
		err      error
	}
	per := (c.Vectors + workers - 1) / workers
	batches := (c.Vectors + per - 1) / per
	results, err := parpool.Map(context.Background(), workers, batches, func(_ context.Context, bi int) (verdict, error) {
		lo := bi * per
		hi := lo + per
		if hi > c.Vectors {
			hi = c.Vectors
		}
		mismatch, err := c.simBatch(a, b, seed, lo, hi)
		return verdict{mismatch: mismatch, err: err}, nil
	})
	if err != nil {
		return false, err
	}
	for _, v := range results {
		if v.err != nil {
			return false, v.err
		}
		if v.mismatch {
			return false, nil
		}
	}
	return true, nil
}

// simBatch runs vectors [lo, hi) against fresh simulators and reports
// whether any vector exposed an output mismatch.
func (c *EquivChecker) simBatch(a, b *ElabModule, seed int64, lo, hi int) (mismatch bool, err error) {
	simA, err := NewSimulator(c.d, a.Module.Name, publicParams(a))
	if err != nil {
		return false, err
	}
	simB, err := NewSimulator(c.d, b.Module.Name, publicParams(b))
	if err != nil {
		return false, err
	}
	inputs := simA.InputPorts()
	outputs := simA.OutputPorts()
	for v := lo; v < hi; v++ {
		// Per-vector source: stimulus depends only on (seed, v), never on
		// batch boundaries.
		rng := rand.New(rand.NewSource(seed + int64(v)*0x9E3779B9))
		for _, in := range inputs {
			if clockLike(in) {
				continue
			}
			val := rng.Uint64()
			if err := simA.SetInput(in, val); err != nil {
				return false, err
			}
			if err := simB.SetInput(in, val); err != nil {
				return false, err
			}
		}
		if err := simA.Settle(); err != nil {
			return false, err
		}
		if err := simB.Settle(); err != nil {
			return false, err
		}
		for cyc := 0; cyc <= c.Cycles; cyc++ {
			for _, out := range outputs {
				va, err := simA.Peek(out)
				if err != nil {
					return false, err
				}
				vb, err := simB.Peek(out)
				if err != nil {
					return false, err
				}
				if va != vb {
					return true, nil
				}
			}
			if cyc < c.Cycles {
				if err := simA.Tick(); err != nil {
					return false, err
				}
				if err := simB.Tick(); err != nil {
					return false, err
				}
			}
		}
	}
	return false, nil
}
