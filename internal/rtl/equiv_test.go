package rtl

import "testing"

func elab(t *testing.T, d *Design, name string) *ElabModule {
	t.Helper()
	em, err := d.Elaborate(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return em
}

func TestStructuralHashIdenticalModules(t *testing.T) {
	// Same structure, different module and net names.
	d, err := ParseDesign(`
		module alpha(input [7:0] a, output [7:0] y);
		  wire [7:0] inner;
		  assign inner = a + 8'd1;
		  assign y = inner;
		endmodule
		module beta(input [7:0] a, output [7:0] y);
		  wire [7:0] other;
		  assign other = a + 8'd1;
		  assign y = other;
		endmodule
		module top(input [7:0] x, output [7:0] p, output [7:0] q);
		  alpha u0 (.a(x), .y(p));
		  beta  u1 (.a(x), .y(q));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	ha := d.StructuralHash(elab(t, d, "alpha"))
	hb := d.StructuralHash(elab(t, d, "beta"))
	if ha != hb {
		t.Error("alpha and beta must share a structural hash")
	}
}

func TestStructuralHashDifferentLogic(t *testing.T) {
	d, err := ParseDesign(`
		module inc(input [7:0] a, output [7:0] y); assign y = a + 8'd1; endmodule
		module dec(input [7:0] a, output [7:0] y); assign y = a - 8'd1; endmodule
		module top(input [7:0] x, output [7:0] p, output [7:0] q);
		  inc u0 (.a(x), .y(p));
		  dec u1 (.a(x), .y(q));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	if d.StructuralHash(elab(t, d, "inc")) == d.StructuralHash(elab(t, d, "dec")) {
		t.Error("inc and dec must not collide")
	}
}

func TestStructuralHashHierarchy(t *testing.T) {
	// Two wrappers around structurally identical children with different
	// names must still hash equal.
	d, err := ParseDesign(`
		module c1(input a, output y); assign y = ~a; endmodule
		module c2(input a, output y); assign y = ~a; endmodule
		module w1(input x, output z); c1 u (.a(x), .y(z)); endmodule
		module w2(input x, output z); c2 u (.a(x), .y(z)); endmodule
		module top(input i, output o1, output o2);
		  w1 a (.x(i), .z(o1));
		  w2 b (.x(i), .z(o2));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	if d.StructuralHash(elab(t, d, "w1")) != d.StructuralHash(elab(t, d, "w2")) {
		t.Error("wrappers of identical children must hash equal")
	}
}

func TestEquivalentStructural(t *testing.T) {
	d, err := ParseDesign(`
		module a(input [3:0] x, output [3:0] y); assign y = x ^ 4'hF; endmodule
		module b(input [3:0] x, output [3:0] y); assign y = x ^ 4'hF; endmodule
		module top(input [3:0] i, output [3:0] o); a u (.x(i), .y(o)); endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	eq, err := c.Equivalent(elab(t, d, "a"), elab(t, d, "b"))
	if err != nil || !eq {
		t.Errorf("Equivalent = %v, %v; want true", eq, err)
	}
}

func TestEquivalentFunctionalNotStructural(t *testing.T) {
	// x+x and x<<1 are functionally identical but structurally different:
	// only random simulation can join them.
	d, err := ParseDesign(`
		module dbl1(input [7:0] x, output [8:0] y); assign y = {1'b0,x} + {1'b0,x}; endmodule
		module dbl2(input [7:0] x, output [8:0] y); assign y = {x, 1'b0}; endmodule
		module top(input [7:0] i, output [8:0] o); dbl1 u (.x(i), .y(o)); endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	a, b := elab(t, d, "dbl1"), elab(t, d, "dbl2")
	if c.Hash(a) == c.Hash(b) {
		t.Fatal("test premise broken: hashes collide")
	}
	eq, err := c.Equivalent(a, b)
	if err != nil || !eq {
		t.Errorf("Equivalent = %v, %v; want true via simulation", eq, err)
	}
}

func TestNotEquivalent(t *testing.T) {
	d, err := ParseDesign(`
		module inc(input [7:0] x, output [7:0] y); assign y = x + 8'd1; endmodule
		module dec(input [7:0] x, output [7:0] y); assign y = x - 8'd1; endmodule
		module top(input [7:0] i, output [7:0] o); inc u (.x(i), .y(o)); endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	eq, err := c.Equivalent(elab(t, d, "inc"), elab(t, d, "dec"))
	if err != nil || eq {
		t.Errorf("Equivalent = %v, %v; want false", eq, err)
	}
}

func TestNotEquivalentInterfaceMismatch(t *testing.T) {
	d, err := ParseDesign(`
		module a(input [7:0] x, output [7:0] y); assign y = x; endmodule
		module b(input [3:0] x, output [3:0] y); assign y = x; endmodule
		module cports(input [7:0] z, output [7:0] y); assign y = z; endmodule
		module top(input [7:0] i, output [7:0] o); a u (.x(i), .y(o)); endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	if eq, _ := c.Equivalent(elab(t, d, "a"), elab(t, d, "b")); eq {
		t.Error("different widths must not be equivalent")
	}
	if eq, _ := c.Equivalent(elab(t, d, "a"), elab(t, d, "cports")); eq {
		t.Error("different port names must not be equivalent")
	}
}

func TestEquivalentSequential(t *testing.T) {
	d, err := ParseDesign(`
		module r1(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d;
		endmodule
		module r2(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) begin q <= d; end
		endmodule
		module r3(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d + 8'd1;
		endmodule
		module top(input clk, input [7:0] i, output [7:0] o);
		  r1 u (.clk(clk), .d(i), .q(o));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	if eq, err := c.Equivalent(elab(t, d, "r1"), elab(t, d, "r2")); err != nil || !eq {
		t.Errorf("r1/r2: %v, %v; want equivalent", eq, err)
	}
	if eq, err := c.Equivalent(elab(t, d, "r1"), elab(t, d, "r3")); err != nil || eq {
		t.Errorf("r1/r3: %v, %v; want not equivalent", eq, err)
	}
}

func TestEquivalentBlackboxStructuralOnly(t *testing.T) {
	d, err := ParseDesign(`
		module m1(input [17:0] a, input [17:0] b, output [47:0] p);
		  DSP48E2 u (.A(a), .B(b), .P(p));
		endmodule
		module m2(input [17:0] a, input [17:0] b, output [47:0] p);
		  DSP48E2 u0 (.A(a), .B(b), .P(p));
		endmodule
		module m3(input [17:0] a, input [17:0] b, output [47:0] p);
		  DSP48E2 u0 (.A(b), .B(a), .P(p));
		endmodule
		module top(input [17:0] x, output [47:0] y);
		  m1 u (.a(x), .b(x), .p(y));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	if eq, err := c.Equivalent(elab(t, d, "m1"), elab(t, d, "m2")); err != nil || !eq {
		t.Errorf("identical blackbox wrappers: %v, %v; want equivalent", eq, err)
	}
	// Swapped operands are structurally different and cannot be simulated:
	// the checker must conservatively say no rather than fail.
	if eq, err := c.Equivalent(elab(t, d, "m1"), elab(t, d, "m3")); err != nil || eq {
		t.Errorf("swapped blackbox conns: %v, %v; want not equivalent", eq, err)
	}
}

// statsSrc has three modules: dbl1 and dbl2 are functionally identical but
// structurally different (only simulation joins them); dbl3 is structurally
// identical to dbl2 under another name, so (dbl1, dbl3) lands on the same
// hash-pair cache entry as (dbl1, dbl2).
const statsSrc = `
	module dbl1(input [7:0] x, output [8:0] y); assign y = {1'b0,x} + {1'b0,x}; endmodule
	module dbl2(input [7:0] x, output [8:0] y); assign y = {x, 1'b0}; endmodule
	module dbl3(input [7:0] x, output [8:0] y); assign y = {x, 1'b0}; endmodule
	module top(input [7:0] i, output [8:0] o); dbl1 u (.x(i), .y(o)); endmodule`

func TestEquivStatsCounters(t *testing.T) {
	d, err := ParseDesign(statsSrc, "top")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEquivChecker(d, 1)
	a, b, b2 := elab(t, d, "dbl1"), elab(t, d, "dbl2"), elab(t, d, "dbl3")

	if eq, err := c.Equivalent(a, a); err != nil || !eq {
		t.Fatalf("self query: %v, %v", eq, err)
	}
	if st := c.Stats(); st.Queries != 1 || st.StructuralHits != 1 || st.SimRuns != 0 {
		t.Fatalf("after self query: %+v", st)
	}

	if eq, err := c.Equivalent(b, b2); err != nil || !eq {
		t.Fatalf("hash-equal query: %v, %v", eq, err)
	}
	if st := c.Stats(); st.StructuralHits != 2 || st.SimRuns != 0 {
		t.Fatalf("identical structure must hit the hash fast path: %+v", st)
	}

	// First structurally-different pair simulates...
	if eq, err := c.Equivalent(a, b); err != nil || !eq {
		t.Fatalf("sim query: %v, %v", eq, err)
	}
	if st := c.Stats(); st.SimRuns != 1 || st.CacheHits != 0 {
		t.Fatalf("first miss must simulate: %+v", st)
	}
	// ...the repeat hits the memo, in either argument order...
	if eq, err := c.Equivalent(b, a); err != nil || !eq {
		t.Fatalf("repeat query: %v, %v", eq, err)
	}
	// ...and so does a structurally-identical stand-in for either side.
	if eq, err := c.Equivalent(a, b2); err != nil || !eq {
		t.Fatalf("stand-in query: %v, %v", eq, err)
	}
	st := c.Stats()
	if st.SimRuns != 1 || st.CacheHits != 2 {
		t.Errorf("repeats must be cache hits, not new simulations: %+v", st)
	}
	if st.Queries != 5 {
		t.Errorf("Queries = %d, want 5", st.Queries)
	}
}

// TestEquivalentParallelMatchesSequential pins the sharding contract: the
// verdict is a pure function of (seed, pair), independent of Parallelism.
func TestEquivalentParallelMatchesSequential(t *testing.T) {
	src := statsSrc + `
	module inc(input [7:0] x, output [8:0] y); assign y = {1'b0,x} + 9'd1; endmodule`
	pairs := [][2]string{{"dbl1", "dbl2"}, {"dbl1", "inc"}, {"dbl2", "inc"}}
	var want []bool
	for _, par := range []int{1, 8} {
		d, err := ParseDesign(src, "top")
		if err != nil {
			t.Fatal(err)
		}
		c := NewEquivChecker(d, 7)
		c.Parallelism = par
		var got []bool
		for _, p := range pairs {
			eq, err := c.Equivalent(elab(t, d, p[0]), elab(t, d, p[1]))
			if err != nil {
				t.Fatalf("parallelism %d, pair %v: %v", par, p, err)
			}
			got = append(got, eq)
		}
		if par == 1 {
			want = got
			if !want[0] || want[1] || want[2] {
				t.Fatalf("sequential verdicts %v, want [true false false]", want)
			}
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("pair %v: parallelism %d says %v, sequential says %v",
					pairs[i], par, got[i], want[i])
			}
		}
	}
}

func TestEquivalentParameterized(t *testing.T) {
	d, err := ParseDesign(`
		module pas #(parameter W = 8) (input [W-1:0] x, output [W-1:0] y);
		  assign y = x;
		endmodule
		module top(input [7:0] i, output [7:0] o, output [3:0] o4, input [3:0] i4);
		  pas #(.W(8)) u0 (.x(i), .y(o));
		  pas #(.W(4)) u1 (.x(i4), .y(o4));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	em := elab(t, d, "top")
	c := NewEquivChecker(d, 1)
	w8, w4 := em.Children[0].Elab, em.Children[1].Elab
	if eq, _ := c.Equivalent(w8, w4); eq {
		t.Error("different parameterizations must not be equivalent")
	}
	if eq, _ := c.Equivalent(w8, w8); !eq {
		t.Error("same elaboration must be equivalent")
	}
}
