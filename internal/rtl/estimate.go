package rtl

import (
	"strings"

	"mlvfpga/internal/resource"
)

// Primitive resource costs for the blackbox cells the generated accelerator
// RTL instantiates. These mirror the Xilinx UltraScale(+) primitive library:
// a DSP48E2 slice, 36Kb/18Kb block RAMs, a 288Kb UltraRAM, flip-flops and
// LUTs.
var primitiveCosts = map[string]resource.Vector{
	"DSP48E2":  {DSPs: 1},
	"RAMB36E2": {BRAMKb: 36},
	"RAMB18E2": {BRAMKb: 18},
	"URAM288":  {URAMKb: 288},
	"FDRE":     {DFFs: 1},
	"CARRY8":   {LUTs: 8},
}

// PrimitiveCost returns the resource cost of a blackbox primitive, and
// whether the name is a known primitive. LUT1..LUT6 cost one LUT each.
func PrimitiveCost(name string) (resource.Vector, bool) {
	if v, ok := primitiveCosts[name]; ok {
		return v, true
	}
	if strings.HasPrefix(name, "LUT") && len(name) == 4 && name[3] >= '1' && name[3] <= '6' {
		return resource.Vector{LUTs: 1}, true
	}
	return resource.Vector{}, false
}

// EstimateResources estimates the FPGA resources of an elaborated module
// and its whole subtree: known primitives contribute their hard cost,
// behavioural code is estimated operator-by-operator, and every reg bit
// costs one flip-flop. Unknown blackboxes contribute nothing (they are
// assumed to be interface stubs).
//
// The estimate feeds the soft-block resource annotations that the
// partitioner and the runtime manager pack against device capacities.
func (d *Design) EstimateResources(em *ElabModule) (resource.Vector, error) {
	memo := map[*ElabModule]resource.Vector{}
	return d.estimate(em, memo)
}

func (d *Design) estimate(em *ElabModule, memo map[*ElabModule]resource.Vector) (resource.Vector, error) {
	if v, ok := memo[em]; ok {
		return v, nil
	}
	var total resource.Vector
	widths, err := em.NetWidths()
	if err != nil {
		return resource.Vector{}, err
	}

	// Registers: one DFF per reg bit (ports and nets).
	for _, p := range em.Module.Ports {
		if p.IsReg {
			total.DFFs += int64(em.PortWidths[p.Name])
		}
	}
	for _, n := range em.Module.Nets {
		if n.IsReg {
			total.DFFs += int64(widths[n.Name])
		}
	}

	// Combinational logic from assigns and always bodies.
	for _, a := range em.Module.Assigns {
		total = total.Add(estimateExpr(a.RHS, widths, em.Env))
	}
	for _, alw := range em.Module.Alwayses {
		for _, sa := range alw.Body {
			total = total.Add(estimateExpr(sa.RHS, widths, em.Env))
			for _, g := range sa.Guard {
				total = total.Add(estimateExpr(g, widths, em.Env))
			}
			// Guarded register loads need an input mux.
			if len(sa.Guard) > 0 {
				if w, err := InferWidth(sa.LHS, widths, em.Env); err == nil {
					total.LUTs += int64(w)
				}
			}
		}
	}

	// Children: primitives by table, modules recursively.
	for _, child := range em.Children {
		if child.Elab == nil {
			if cost, known := PrimitiveCost(child.Inst.ModuleName); known {
				total = total.Add(cost)
			}
			continue
		}
		sub, err := d.estimate(child.Elab, memo)
		if err != nil {
			return resource.Vector{}, err
		}
		total = total.Add(sub)
	}
	memo[em] = total
	return total, nil
}

// estimateExpr walks an expression and accumulates operator costs:
//
//	add/sub          width LUTs (carry chain)
//	bitwise/mux/cmp  width LUTs
//	multiply         ceil(wl/18)*ceil(wr/18) DSP slices
//	variable shift   2*width LUTs (barrel shifter stages)
//	reductions       width/4 LUTs
func estimateExpr(e Expr, widths map[string]int, env map[string]uint64) resource.Vector {
	var total resource.Vector
	w := func(x Expr) int64 {
		ww, err := InferWidth(x, widths, env)
		if err != nil {
			return 1
		}
		return int64(ww)
	}
	switch v := e.(type) {
	case *Ident, *Number:
		// free
	case *Unary:
		total = estimateExpr(v.X, widths, env)
		switch v.Op {
		case "~", "-":
			total.LUTs += w(v.X)
		case "&", "|", "^":
			total.LUTs += (w(v.X) + 3) / 4
		case "!":
			total.LUTs += (w(v.X) + 3) / 4
		}
	case *Binary:
		total = estimateExpr(v.L, widths, env).Add(estimateExpr(v.R, widths, env))
		wl, wr := w(v.L), w(v.R)
		wmax := wl
		if wr > wmax {
			wmax = wr
		}
		switch v.Op {
		case "+", "-":
			total.LUTs += wmax
		case "*":
			total.DSPs += ((wl + 17) / 18) * ((wr + 17) / 18)
		case "&", "|", "^":
			total.LUTs += wmax
		case "==", "!=", "<", ">", "<=", ">=":
			total.LUTs += (wmax + 1) / 2
		case "&&", "||":
			total.LUTs++
		case "<<", ">>":
			if _, isConst := v.R.(*Number); !isConst {
				total.LUTs += 2 * wl
			}
		}
	case *Cond:
		total = estimateExpr(v.If, widths, env).
			Add(estimateExpr(v.Then, widths, env)).
			Add(estimateExpr(v.Else, widths, env))
		wt, we := w(v.Then), w(v.Else)
		if we > wt {
			wt = we
		}
		total.LUTs += wt // 2:1 mux per bit
	case *Index:
		total = estimateExpr(v.X, widths, env)
		if _, isConst := v.At.(*Number); !isConst {
			total = total.Add(estimateExpr(v.At, widths, env))
			total.LUTs += w(v.X) / 4 // bit mux tree
		}
	case *Slice:
		total = estimateExpr(v.X, widths, env)
	case *Concat:
		for _, p := range v.Parts {
			total = total.Add(estimateExpr(p, widths, env))
		}
	case *Repl:
		total = estimateExpr(v.X, widths, env)
	}
	return total
}
