package rtl

import (
	"fmt"
)

// Flatten inlines the whole hierarchy below module top (with the given
// parameter overrides) into a single-level module: instance nets are
// prefixed with their instance path, parameters are substituted with
// constants, and port connections become continuous assignments. Blackbox
// primitive instances are kept as instances with rewritten connections.
//
// The result is what the simulator and the simulation-based equivalence
// checker run on.
func (d *Design) Flatten(top string, overrides map[string]uint64) (*Module, error) {
	em, err := d.Elaborate(top, overrides)
	if err != nil {
		return nil, err
	}
	flat := &Module{Name: top + "$flat"}
	for _, p := range em.Module.Ports {
		w := em.PortWidths[p.Name]
		flat.Ports = append(flat.Ports, Port{Name: p.Name, Dir: p.Dir, Range: concreteRange(w), IsReg: p.IsReg})
	}
	if err := d.flattenInto(flat, em, ""); err != nil {
		return nil, err
	}
	return flat, nil
}

// concreteRange builds a Range with numeric bounds for a width.
func concreteRange(w int) Range {
	if w == 1 {
		return Range{}
	}
	return Range{Msb: &Number{Value: uint64(w - 1)}, Lsb: &Number{Value: 0}}
}

// flattenInto appends em's resolved contents into flat under the given
// instance prefix ("" for the top level).
func (d *Design) flattenInto(flat *Module, em *ElabModule, prefix string) error {
	widths, err := em.NetWidths()
	if err != nil {
		return err
	}
	// rewrite substitutes parameters with constants and prefixes net names.
	rewrite := func(e Expr) (Expr, error) {
		return substExpr(e, func(name string) (Expr, error) {
			if _, isNet := widths[name]; isNet {
				return &Ident{Name: prefix + name}, nil
			}
			if v, isParam := em.Env[name]; isParam {
				return &Number{Value: v, Width: 32}, nil
			}
			return nil, fmt.Errorf("rtl: module %s: unknown identifier %q", em.Module.Name, name)
		})
	}

	for _, n := range em.Module.Nets {
		w, err := rangeWidth(n.Range, em.Env)
		if err != nil {
			return err
		}
		flat.Nets = append(flat.Nets, Net{Name: prefix + n.Name, Range: concreteRange(w), IsReg: n.IsReg})
	}

	for _, a := range em.Module.Assigns {
		lhs, err := rewrite(a.LHS)
		if err != nil {
			return err
		}
		rhs, err := rewrite(a.RHS)
		if err != nil {
			return err
		}
		flat.Assigns = append(flat.Assigns, Assign{LHS: lhs, RHS: rhs})
	}

	for _, alw := range em.Module.Alwayses {
		out := Always{Clock: prefix + alw.Clock, Negedge: alw.Negedge}
		if _, isNet := widths[alw.Clock]; !isNet {
			return fmt.Errorf("rtl: module %s: clock %q is not a net", em.Module.Name, alw.Clock)
		}
		for _, sa := range alw.Body {
			lhs, err := rewrite(sa.LHS)
			if err != nil {
				return err
			}
			rhs, err := rewrite(sa.RHS)
			if err != nil {
				return err
			}
			guards := make([]Expr, len(sa.Guard))
			for i, g := range sa.Guard {
				guards[i], err = rewrite(g)
				if err != nil {
					return err
				}
			}
			out.Body = append(out.Body, SeqAssign{LHS: lhs, RHS: rhs, Guard: guards})
		}
		flat.Alwayses = append(flat.Alwayses, out)
	}

	for ci := range em.Children {
		child := &em.Children[ci]
		inst := child.Inst
		if child.Elab == nil {
			// Blackbox primitive: keep, with rewritten connections.
			kept := Instance{
				ModuleName: inst.ModuleName,
				Name:       prefix + inst.Name,
				Conns:      map[string]Expr{},
				Order:      append([]string{}, inst.Order...),
			}
			for k, v := range inst.Conns {
				if v == nil {
					kept.Conns[k] = nil
					continue
				}
				rv, err := rewrite(v)
				if err != nil {
					return err
				}
				kept.Conns[k] = rv
			}
			flat.Instances = append(flat.Instances, kept)
			continue
		}

		childPrefix := prefix + inst.Name + "."
		conns, err := resolveConns(inst, child.Elab.Module)
		if err != nil {
			return err
		}
		// Declare the child's ports as nets of the flat module.
		for _, p := range child.Elab.Module.Ports {
			w := child.Elab.PortWidths[p.Name]
			flat.Nets = append(flat.Nets, Net{Name: childPrefix + p.Name, Range: concreteRange(w), IsReg: p.IsReg})
		}
		// Bind connections.
		for _, p := range child.Elab.Module.Ports {
			actual, connected := conns[p.Name]
			formal := &Ident{Name: childPrefix + p.Name}
			switch {
			case !connected || actual == nil:
				if p.Dir == Input {
					// Tie floating inputs low for determinism.
					flat.Assigns = append(flat.Assigns, Assign{LHS: formal, RHS: &Number{Value: 0, Width: child.Elab.PortWidths[p.Name]}})
				}
			case p.Dir == Input:
				ra, err := rewrite(actual)
				if err != nil {
					return err
				}
				flat.Assigns = append(flat.Assigns, Assign{LHS: formal, RHS: ra})
			case p.Dir == Output:
				ra, err := rewrite(actual)
				if err != nil {
					return err
				}
				if !isLValue(ra) {
					return fmt.Errorf("rtl: %s%s.%s: output connected to non-assignable expression %s",
						prefix, inst.Name, p.Name, ra)
				}
				flat.Assigns = append(flat.Assigns, Assign{LHS: ra, RHS: formal})
			default:
				return fmt.Errorf("rtl: %s%s.%s: inout ports are not supported by flattening",
					prefix, inst.Name, p.Name)
			}
		}
		if err := d.flattenInto(flat, child.Elab, childPrefix); err != nil {
			return err
		}
	}
	return nil
}

// substExpr rewrites every identifier in e through fn, rebuilding the tree.
func substExpr(e Expr, fn func(string) (Expr, error)) (Expr, error) {
	switch v := e.(type) {
	case *Ident:
		return fn(v.Name)
	case *Number:
		return v, nil
	case *Unary:
		x, err := substExpr(v.X, fn)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: v.Op, X: x}, nil
	case *Binary:
		l, err := substExpr(v.L, fn)
		if err != nil {
			return nil, err
		}
		r, err := substExpr(v.R, fn)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: v.Op, L: l, R: r}, nil
	case *Cond:
		c, err := substExpr(v.If, fn)
		if err != nil {
			return nil, err
		}
		t, err := substExpr(v.Then, fn)
		if err != nil {
			return nil, err
		}
		el, err := substExpr(v.Else, fn)
		if err != nil {
			return nil, err
		}
		return &Cond{If: c, Then: t, Else: el}, nil
	case *Index:
		x, err := substExpr(v.X, fn)
		if err != nil {
			return nil, err
		}
		at, err := substExpr(v.At, fn)
		if err != nil {
			return nil, err
		}
		return &Index{X: x, At: at}, nil
	case *Slice:
		x, err := substExpr(v.X, fn)
		if err != nil {
			return nil, err
		}
		msb, err := substExpr(v.Msb, fn)
		if err != nil {
			return nil, err
		}
		lsb, err := substExpr(v.Lsb, fn)
		if err != nil {
			return nil, err
		}
		return &Slice{X: x, Msb: msb, Lsb: lsb}, nil
	case *Concat:
		parts := make([]Expr, len(v.Parts))
		for i, p := range v.Parts {
			np, err := substExpr(p, fn)
			if err != nil {
				return nil, err
			}
			parts[i] = np
		}
		return &Concat{Parts: parts}, nil
	case *Repl:
		c, err := substExpr(v.Count, fn)
		if err != nil {
			return nil, err
		}
		x, err := substExpr(v.X, fn)
		if err != nil {
			return nil, err
		}
		return &Repl{Count: c, X: x}, nil
	}
	return nil, fmt.Errorf("rtl: substExpr: unknown node %T", e)
}

// isLValue reports whether an expression may appear on the left-hand side of
// an assignment: identifiers, bit/part selects of identifiers, and
// concatenations of those.
func isLValue(e Expr) bool {
	switch v := e.(type) {
	case *Ident:
		return true
	case *Index:
		return isLValue(v.X)
	case *Slice:
		return isLValue(v.X)
	case *Concat:
		for _, p := range v.Parts {
			if !isLValue(p) {
				return false
			}
		}
		return len(v.Parts) > 0
	}
	return false
}
