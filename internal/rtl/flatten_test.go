package rtl

import (
	"strings"
	"testing"
)

func TestFlattenStructure(t *testing.T) {
	d, err := ParseDesign(`
		module stage(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d;
		endmodule
		module top(input clk, input [7:0] in, output [7:0] out);
		  wire [7:0] mid;
		  stage s0 (.clk(clk), .d(in), .q(mid));
		  stage s1 (.clk(clk), .d(mid), .q(out));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := d.Flatten("top", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Instances) != 0 {
		t.Errorf("flat module keeps %d instances", len(flat.Instances))
	}
	// Prefixed nets from both stages exist.
	names := map[string]bool{}
	for _, n := range flat.Nets {
		names[n.Name] = true
	}
	for _, want := range []string{"mid", "s0.d", "s0.q", "s1.d", "s1.q", "s0.clk", "s1.clk"} {
		if !names[want] {
			t.Errorf("flat net %q missing; have %v", want, flat.Nets)
		}
	}
	// Two always blocks survive, with prefixed clocks.
	if len(flat.Alwayses) != 2 {
		t.Fatalf("alwayses = %d", len(flat.Alwayses))
	}
	clocks := []string{flat.Alwayses[0].Clock, flat.Alwayses[1].Clock}
	if clocks[0] != "s0.clk" && clocks[1] != "s0.clk" {
		t.Errorf("clocks = %v", clocks)
	}
}

func TestFlattenParameterSubstitution(t *testing.T) {
	d, err := ParseDesign(`
		module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
		  assign y = a + W;
		endmodule
		module top(input [7:0] x, output [7:0] z);
		  leaf #(.W(8)) u (.a(x), .y(z));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := d.Flatten("top", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The parameter W must be folded into a constant in the assign.
	found := false
	for _, a := range flat.Assigns {
		if strings.Contains(a.RHS.String(), "32'h8") {
			found = true
		}
	}
	if !found {
		t.Errorf("parameter not folded; assigns: %v", flat.Assigns)
	}
	// Simulate: y = x + 8.
	s, err := NewFlatSimulator(flat)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("x", 5)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("z"); v != 13 {
		t.Errorf("z = %d, want 13", v)
	}
}

func TestFlattenOutputToSliceLValue(t *testing.T) {
	d, err := ParseDesign(`
		module half(input [3:0] a, output [3:0] y); assign y = ~a; endmodule
		module top(input [7:0] x, output [7:0] z);
		  half lo (.a(x[3:0]), .y(z[3:0]));
		  half hi (.a(x[7:4]), .y(z[7:4]));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(d, "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("x", 0xA5)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("z"); v != 0x5A {
		t.Errorf("z = %#x, want 0x5a", v)
	}
}

func TestFlattenRejectsNonLValueOutput(t *testing.T) {
	d, err := ParseDesign(`
		module sub(input a, output y); assign y = a; endmodule
		module top(input x, output z);
		  sub u (.a(x), .y(z & x));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Flatten("top", nil); err == nil {
		t.Error("output bound to an expression must fail")
	}
}

func TestFlattenRejectsInout(t *testing.T) {
	d, err := ParseDesign(`
		module sub(inout io); endmodule
		module top(inout p);
		  sub u (.io(p));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Flatten("top", nil); err == nil || !strings.Contains(err.Error(), "inout") {
		t.Errorf("inout flattening = %v", err)
	}
}

func TestFlattenDeepHierarchy(t *testing.T) {
	d, err := ParseDesign(`
		module l0(input [3:0] a, output [3:0] y); assign y = a + 4'd1; endmodule
		module l1(input [3:0] a, output [3:0] y);
		  wire [3:0] m;
		  l0 i0 (.a(a), .y(m));
		  l0 i1 (.a(m), .y(y));
		endmodule
		module l2(input [3:0] a, output [3:0] y);
		  wire [3:0] m;
		  l1 i0 (.a(a), .y(m));
		  l1 i1 (.a(m), .y(y));
		endmodule`, "l2")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(d, "l2", nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("a", 3)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("y"); v != 7 {
		t.Errorf("4 chained increments of 3 = %d, want 7", v)
	}
}
