package rtl

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics, and that whenever a
// design parses cleanly the writer's output re-parses to modules with the
// same names and item counts. Run `go test -fuzz=FuzzParse ./internal/rtl`
// to explore beyond the seed corpus; the seeds alone run as regression
// tests under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"module m(); endmodule",
		adderDesign,
		chainDesign,
		"module m #(parameter W=8)(input [W-1:0] a, output reg [W-1:0] q);\n" +
			"  always @(posedge a) q <= a + 1; endmodule",
		"module m(input a); DSP48E2 d (.A(a), .B(), .P()); endmodule",
		"module m(); assign {a, b[3:0]} = {2{c}} ^ (d ? e : f); endmodule",
		"module m(\\escaped.id ); endmodule",
		"module m(); wire [63:0] w; assign w = 64'hDEAD_BEEF_CAFE_F00D; endmodule",
		"module m(); // comment\n /* block */ endmodule",
		"module", "endmodule", "module m(input", "assign x = ;", "{{{", "16'h", "\\",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mods, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, m := range mods {
			rendered := WriteModule(m)
			again, err := Parse(rendered)
			if err != nil {
				t.Fatalf("writer output does not re-parse: %v\nmodule %s rendered as:\n%s",
					err, m.Name, rendered)
			}
			if len(again) != 1 || again[0].Name != m.Name {
				t.Fatalf("round trip changed module identity: %q", m.Name)
			}
			if len(again[0].Ports) != len(m.Ports) ||
				len(again[0].Assigns) != len(m.Assigns) ||
				len(again[0].Instances) != len(m.Instances) {
				t.Fatalf("round trip changed item counts for %q", m.Name)
			}
		}
	})
}

// FuzzAssemble does the same for the ISA assembler via its text round
// trip: successful assembly must disassemble and re-assemble stably. (The
// assembler lives in internal/isa, but the fuzz seed sharing with RTL text
// keeps both parsers honest against each other's inputs.)
func FuzzLexer(f *testing.F) {
	f.Add("module m(); endmodule")
	f.Add("8'hFF + 4'b1010")
	f.Add("\\weird id /* x */ // y")
	f.Fuzz(func(t *testing.T, src string) {
		// The lexer must terminate and never panic on arbitrary input.
		toks, err := lexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream must end with EOF")
		}
		if len(toks) > len(src)+1 {
			t.Fatalf("more tokens (%d) than bytes (%d)", len(toks), len(src))
		}
		_ = strings.TrimSpace(src)
	})
}
