package rtl

import (
	"fmt"
	"sort"
)

// This file extracts the "block graph" of §2.2.1 step 1: the design is
// walked down to its basic modules (modules that instantiate no other
// design module); each basic-module instance becomes a node, and edges
// carry the connection bit width (the communication bandwidth the
// partitioner later minimizes across cuts).
//
// Connectivity is computed with a union-find over hierarchical net names:
// port bindings alias the child's formal net with the nets referenced by
// the actual expression. Aliasing through non-trivial expressions (slices,
// concats, glue logic) is conservative — all referenced nets join one
// class — which can only over-connect, never miss a connection.

// BasicInst is one basic-module instance in the design.
type BasicInst struct {
	// Path is the hierarchical instance path from the root elaboration,
	// e.g. "datapath.tile0.mvm".
	Path string
	// Elab is the elaborated basic module.
	Elab *ElabModule
}

// BasicEdge is a directed connection between basic instances.
// From/To index into BasicGraph.Insts; Boundary (-1) denotes the design's
// top-level ports.
type BasicEdge struct {
	From, To int
	Bits     int
}

// Boundary is the pseudo-node index for top-level ports.
const Boundary = -1

// BasicGraph is the block graph over basic-module instances.
type BasicGraph struct {
	Insts []BasicInst
	Edges []BasicEdge
}

// Bandwidth sums the bits of all edges between nodes a and b (either
// direction).
func (g *BasicGraph) Bandwidth(a, b int) int {
	total := 0
	for _, e := range g.Edges {
		if (e.From == a && e.To == b) || (e.From == b && e.To == a) {
			total += e.Bits
		}
	}
	return total
}

// netClasses is a union-find over hierarchical net names.
type netClasses struct {
	parent map[string]string
}

func newNetClasses() *netClasses { return &netClasses{parent: map[string]string{}} }

func (nc *netClasses) find(x string) string {
	p, ok := nc.parent[x]
	if !ok {
		nc.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := nc.find(p)
	nc.parent[x] = root
	return root
}

func (nc *netClasses) union(a, b string) {
	ra, rb := nc.find(a), nc.find(b)
	if ra != rb {
		nc.parent[ra] = rb
	}
}

// attachment is one point where a basic instance or the boundary touches a
// net class.
type attachment struct {
	inst  int // index into Insts, or Boundary
	dir   Dir // direction as seen by the attached node
	width int
}

// BasicGraph builds the block graph of the elaborated design em.
func (d *Design) BasicGraph(em *ElabModule) (*BasicGraph, error) {
	g := &BasicGraph{}
	nc := newNetClasses()
	attachments := map[string][]attachment{} // net-class root resolved later

	var rawAttach []struct {
		net string
		att attachment
	}
	addAttach := func(net string, att attachment) {
		rawAttach = append(rawAttach, struct {
			net string
			att attachment
		}{net, att})
	}

	// Top-level ports attach to the boundary. From the graph's perspective
	// a top input is driven by the boundary, so the boundary acts as an
	// Output attachment (a driver), and vice versa.
	for _, p := range em.Module.Ports {
		boundaryDir := Output
		if p.Dir == Output {
			boundaryDir = Input
		}
		addAttach(p.Name, attachment{inst: Boundary, dir: boundaryDir, width: em.PortWidths[p.Name]})
	}

	var walk func(m *ElabModule, prefix string) error
	walk = func(m *ElabModule, prefix string) error {
		// Glue assigns alias their nets conservatively.
		widths, err := m.NetWidths()
		if err != nil {
			return err
		}
		aliasExpr := func(anchor string, e Expr) {
			for _, n := range referencedNets(e, widths) {
				nc.union(anchor, prefix+n.name)
			}
		}
		for _, a := range m.Module.Assigns {
			lhsNets := referencedNets(a.LHS, widths)
			if len(lhsNets) == 0 {
				continue
			}
			anchor := prefix + lhsNets[0].name
			for _, n := range lhsNets[1:] {
				nc.union(anchor, prefix+n.name)
			}
			aliasExpr(anchor, a.RHS)
		}
		for ci := range m.Children {
			child := &m.Children[ci]
			inst := child.Inst
			if child.Elab == nil {
				continue // primitive cells inside non-basic modules: decoration
			}
			childPrefix := prefix + inst.Name + "."
			conns, err := resolveConns(inst, child.Elab.Module)
			if err != nil {
				return err
			}
			// Union each formal port with its actual's nets.
			for _, p := range child.Elab.Module.Ports {
				actual, ok := conns[p.Name]
				if !ok || actual == nil {
					continue
				}
				aliasExpr(childPrefix+p.Name, actual)
			}
			if child.Elab.Module.IsBasic(d.IsPrimitive) {
				idx := len(g.Insts)
				g.Insts = append(g.Insts, BasicInst{
					Path: prefix + inst.Name,
					Elab: child.Elab,
				})
				for _, p := range child.Elab.Module.Ports {
					addAttach(childPrefix+p.Name, attachment{
						inst:  idx,
						dir:   p.Dir,
						width: child.Elab.PortWidths[p.Name],
					})
				}
				continue
			}
			if err := walk(child.Elab, childPrefix); err != nil {
				return err
			}
		}
		return nil
	}

	if em.Module.IsBasic(d.IsPrimitive) {
		// A design whose top is already basic decomposes to one node.
		g.Insts = append(g.Insts, BasicInst{Path: em.Module.Name, Elab: em})
		return g, nil
	}
	if err := walk(em, ""); err != nil {
		return nil, err
	}

	// Resolve attachments to final class roots.
	for _, ra := range rawAttach {
		root := nc.find(ra.net)
		attachments[root] = append(attachments[root], ra.att)
	}

	// Build edges: every driver (Output attachment) feeds every reader
	// (Input attachment) in its class.
	type edgeKey struct{ from, to int }
	acc := map[edgeKey]int{}
	roots := make([]string, 0, len(attachments))
	for root := range attachments {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		atts := attachments[root]
		for _, drv := range atts {
			if drv.dir != Output {
				continue
			}
			for _, snk := range atts {
				if snk.dir != Input {
					continue
				}
				if drv.inst == snk.inst {
					continue
				}
				bits := snk.width
				if drv.width < bits {
					bits = drv.width
				}
				acc[edgeKey{drv.inst, snk.inst}] += bits
			}
		}
	}
	keys := make([]edgeKey, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		g.Edges = append(g.Edges, BasicEdge{From: k.from, To: k.to, Bits: acc[k]})
	}
	return g, nil
}

// netRef is one net referenced by an expression with the bit width of the
// reference.
type netRef struct {
	name string
	bits int
}

// referencedNets lists the nets an expression touches. Widths are
// best-effort (full net width for plain identifiers, slice width for part
// selects).
func referencedNets(e Expr, widths map[string]int) []netRef {
	var out []netRef
	var walk func(x Expr, bits int)
	walk = func(x Expr, bits int) {
		switch v := x.(type) {
		case *Ident:
			if w, ok := widths[v.Name]; ok {
				if bits <= 0 || bits > w {
					bits = w
				}
				out = append(out, netRef{v.Name, bits})
			}
		case *Number:
		case *Unary:
			walk(v.X, 0)
		case *Binary:
			walk(v.L, 0)
			walk(v.R, 0)
		case *Cond:
			walk(v.If, 0)
			walk(v.Then, 0)
			walk(v.Else, 0)
		case *Index:
			walk(v.X, 1)
			walk(v.At, 0)
		case *Slice:
			w := 0
			if msb, err := EvalConst(v.Msb, nil); err == nil {
				if lsb, err := EvalConst(v.Lsb, nil); err == nil && msb >= lsb {
					w = int(msb-lsb) + 1
				}
			}
			walk(v.X, w)
		case *Concat:
			for _, p := range v.Parts {
				walk(p, 0)
			}
		case *Repl:
			walk(v.X, 0)
		}
	}
	walk(e, 0)
	return out
}

// String renders the graph for debugging.
func (g *BasicGraph) String() string {
	s := fmt.Sprintf("BasicGraph{%d insts, %d edges}\n", len(g.Insts), len(g.Edges))
	for i, n := range g.Insts {
		s += fmt.Sprintf("  [%d] %s : %s\n", i, n.Path, n.Elab.Key)
	}
	for _, e := range g.Edges {
		s += fmt.Sprintf("  %d -> %d (%d bits)\n", e.From, e.To, e.Bits)
	}
	return s
}
